(* Fault-injection demo (`bench/main.exe --faults [SEED]`) and the
   resilience benchmark record for `--json` / `--smoke`.

   The record times packed tiled Cholesky at n=432/nb=48 in interleaved
   rounds (medians, so clock drift cancels out of the ratios): plain
   kernels, op-DAG execution, restart-only FT, and full FT with ABFT. The
   in-DAG ABFT overhead is the FT vs restart-only ablation, compared
   against the Abft.overhead_model flop prediction. A seeded corruption
   storm then runs through the runtime harness — every run must detect,
   repair and land bitwise identical to the fault-free factorization. *)

open Xsc_linalg
module PD = Xsc_tile.Packed.D
module Ft = Xsc_core.Ft
module Cholesky = Xsc_core.Cholesky
module Real_exec = Xsc_runtime.Real_exec
module Harness = Xsc_resilience.Harness
module Abft = Xsc_resilience.Abft
module Rng = Xsc_util.Rng
module Clock = Xsc_obs.Clock

let n = 432
let nb = 48

let fixture () =
  let rng = Rng.create 11 in
  let a = Mat.random_spd rng n in
  let p0 = PD.of_mat ~nb a in
  let reference = PD.copy p0 in
  PD.potrf reference;
  (p0, reference)

let buf_equal a b =
  let la = Bigarray.Array1.dim a.PD.buf in
  let rec go i =
    i >= la
    || Int64.bits_of_float (Bigarray.Array1.get a.PD.buf i)
       = Int64.bits_of_float (Bigarray.Array1.get b.PD.buf i)
       && go (i + 1)
  in
  go 0

(* Four variants in interleaved rounds (per-variant medians, so load
   drift cancels out of the ratios): the raw sequential kernel loop, the
   same factorization as an op-DAG through the real executor, the FT
   driver in restart-only mode ([~abft:false] — step-synchronised
   execution, snapshots and rollback, but no checksum row), and the full
   FT driver. The in-DAG ABFT overhead is the FT vs restart-only ratio —
   a single-variable ablation where the two runs differ only by the
   checksum border, its update kernels and per-panel verification, which
   is exactly what Abft.overhead_model budgets. *)
let overhead_quad ~runs p0 =
  let dag = Cholesky.dag_ops ~nt:(p0.PD.nt) ~nb:(p0.PD.nb) in
  let tp = Array.make runs 0.0
  and td = Array.make runs 0.0
  and tr = Array.make runs 0.0
  and tf = Array.make runs 0.0 in
  (let p = PD.copy p0 in
   PD.potrf p);
  (let p = PD.copy p0 in
   ignore (Real_exec.run_sequential ~interp:(Cholesky.packed_interp p) dag));
  ignore (Ft.potrf_ft ~abft:false (PD.copy p0));
  ignore (Ft.potrf_ft (PD.copy p0));
  for r = 0 to runs - 1 do
    let p = PD.copy p0 in
    let t0 = Clock.now_s () in
    PD.potrf p;
    tp.(r) <- Clock.now_s () -. t0;
    let p = PD.copy p0 in
    let interp = Cholesky.packed_interp p in
    let t0 = Clock.now_s () in
    ignore (Real_exec.run_sequential ~interp dag);
    td.(r) <- Clock.now_s () -. t0;
    let q = PD.copy p0 in
    let t0 = Clock.now_s () in
    ignore (Ft.potrf_ft ~abft:false q);
    tr.(r) <- Clock.now_s () -. t0;
    let q = PD.copy p0 in
    let t0 = Clock.now_s () in
    ignore (Ft.potrf_ft q);
    tf.(r) <- Clock.now_s () -. t0
  done;
  ( Xsc_util.Stats.median tp,
    Xsc_util.Stats.median td,
    Xsc_util.Stats.median tr,
    Xsc_util.Stats.median tf )

let storm ~seeds ~p_corrupt (p0, reference) =
  let detected = ref 0 and repaired = ref 0 and replayed = ref 0 in
  let injected = ref 0 and bitwise = ref true in
  List.iter
    (fun seed ->
      let h =
        Harness.create { Harness.default with seed; p_corrupt; magnitude = 1.0 }
      in
      let p = PD.copy p0 in
      let r = Ft.potrf_ft ~harness:h p in
      detected := !detected + r.Ft.detected;
      repaired := !repaired + r.Ft.repaired_tiles;
      replayed := !replayed + r.Ft.replayed_kernels;
      injected := !injected + Harness.corrupted h;
      if not (buf_equal p reference) then bitwise := false)
    seeds;
  (!injected, !detected, !repaired, !replayed, !bitwise)

let record ?(runs = 7) ?(storm_seeds = 8) () =
  let p0, reference = fixture () in
  let plain_t, dag_t, restart_t, ft_t = overhead_quad ~runs p0 in
  let overhead = (ft_t -. restart_t) /. restart_t in
  let model = Abft.overhead_model ~n ~nb in
  let seeds = List.init storm_seeds (fun i -> 100 + i) in
  let injected, detected, repaired, replayed, bitwise =
    storm ~seeds ~p_corrupt:0.12 (p0, reference)
  in
  Printf.sprintf
    "{\"n\": %d, \"nb\": %d, \"plain_potrf_s\": %.6f, \"dag_potrf_s\": %.6f, \
     \"ft_restart_s\": %.6f, \"ft_potrf_s\": %.6f, \"abft_overhead\": %.4f, \
     \"abft_overhead_model\": %.4f, \"storm_runs\": %d, \"injected\": %d, \
     \"detected\": %d, \"repaired_tiles\": %d, \"replayed_kernels\": %d, \
     \"bitwise_identical\": %b}"
    n nb plain_t dag_t restart_t ft_t overhead model (List.length seeds) injected detected
    repaired replayed bitwise

(* Human-readable storm at one seed: corruption + task-body raises through
   the fault-tolerant driver, then the overhead summary. *)
let run ~seed =
  Printf.printf "fault storm: packed tiled Cholesky n=%d nb=%d, seed %d\n" n nb seed;
  let p0, reference = fixture () in
  let h =
    Harness.create
      { Harness.default with seed; p_raise = 0.05; p_corrupt = 0.10; magnitude = 1.0 }
  in
  let p = PD.copy p0 in
  let r = Ft.potrf_ft ~harness:h p in
  Printf.printf "  injected   : %d task-body raises, %d silent corruptions\n"
    (Harness.raised h) (Harness.corrupted h);
  Printf.printf
    "  recovered  : %d detections, %d tiles repaired, %d kernels replayed, %d restarts\n"
    r.Ft.detected r.Ft.repaired_tiles r.Ft.replayed_kernels r.Ft.restarts;
  Printf.printf "  result bitwise identical to fault-free run: %b\n" (buf_equal p reference);
  let plain_t, dag_t, restart_t, ft_t = overhead_quad ~runs:3 p0 in
  Printf.printf
    "  ABFT overhead: measured %.1f%% over restart-only FT (plain %.4fs, dag %.4fs, \
     restart-only %.4fs, ft %.4fs), flop model %.1f%%\n"
    (100.0 *. ((ft_t -. restart_t) /. restart_t))
    plain_t dag_t restart_t ft_t
    (100.0 *. Abft.overhead_model ~n ~nb)
