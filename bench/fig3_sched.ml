(* FIG-3: fork-join (BSP) vs dynamic DAG scheduling for tiled Cholesky —
   simulated across worker counts, plus a real run on host domains.
   Includes the scheduler-priority ablation (critical path vs FIFO vs
   random work stealing). *)

module Tile = Xsc_tile.Tile
module Cholesky = Xsc_core.Cholesky
module Sim_exec = Xsc_runtime.Sim_exec
module Real_exec = Xsc_runtime.Real_exec
module Dag = Xsc_runtime.Dag
module Table = Xsc_util.Table
module Units = Xsc_util.Units
module Mat = Xsc_linalg.Mat
module Rng = Xsc_util.Rng

let simulated () =
  let nt = 16 and nb = 256 in
  let t = Tile.create ~rows:(nt * nb) ~cols:(nt * nb) ~nb in
  let dag = Cholesky.dag ~with_closures:false t in
  Printf.printf "tiled Cholesky: nt=%d (%d tasks, %d edges, depth %d, parallelism %.1f)\n\n"
    nt (Dag.n_tasks dag) (Dag.n_edges dag) (Dag.depth dag)
    (Dag.total_flops dag /. Dag.critical_path_flops dag);
  let table =
    Table.create
      ~headers:
        [ "workers"; "BSP"; "util"; "DAG(cp)"; "util"; "DAG/BSP"; "FIFO"; "steal" ]
  in
  List.iter
    (fun workers ->
      let cfg = Sim_exec.config ~workers ~rate:1e9 () in
      let bsp = Sim_exec.run cfg Sim_exec.Bsp dag in
      let dyn = Sim_exec.run cfg Sim_exec.List_critical_path dag in
      let fifo = Sim_exec.run cfg Sim_exec.List_fifo dag in
      let steal = Sim_exec.run cfg (Sim_exec.Work_stealing 17) dag in
      Table.add_row table
        [
          string_of_int workers;
          Units.seconds bsp.Sim_exec.makespan;
          Units.percent bsp.Sim_exec.utilization;
          Units.seconds dyn.Sim_exec.makespan;
          Units.percent dyn.Sim_exec.utilization;
          Units.ratio (bsp.Sim_exec.makespan /. dyn.Sim_exec.makespan);
          Units.ratio (bsp.Sim_exec.makespan /. fifo.Sim_exec.makespan);
          Units.ratio (bsp.Sim_exec.makespan /. steal.Sim_exec.makespan);
        ])
    [ 4; 8; 16; 32; 64; 128; 256 ];
  Table.print table

let real_host () =
  let nb = 72 and nt = 6 in
  let n = nb * nt in
  let rng = Rng.create 7 in
  let a = Mat.random_spd rng n in
  let workers = max 2 (Real_exec.default_workers ()) in
  let run exec =
    let tiles = Tile.of_mat ~nb a in
    let dag = Cholesky.dag tiles in
    match exec with
    | `Seq -> Real_exec.run_sequential dag
    | `Forkjoin -> Real_exec.run_forkjoin ~workers dag
    | `Steal ->
      (* pure work stealing: no priority, successors run in discovery order *)
      Real_exec.run_dataflow ~workers dag
    | `Steal_cp ->
      (* the critical-path ablation: rank ready tasks by bottom level *)
      Real_exec.run_dataflow
        ~priority:(Xsc_core.Runtime_api.critical_path_priority dag)
        ~workers dag
    | `Steal_fifo ->
      (* FIFO program order: prefer the oldest ready task *)
      Real_exec.run_dataflow ~priority:(fun id -> -id) ~workers dag
  in
  (* median of 3 to tame noise *)
  let timed name exec =
    let rs = Array.init 3 (fun _ -> run exec) in
    let xs = Array.map (fun s -> s.Real_exec.elapsed) rs in
    (name, Xsc_util.Stats.median xs, rs.(0))
  in
  let seq = timed "sequential" `Seq in
  let rows =
    [
      seq;
      timed "fork-join" `Forkjoin;
      timed "steal" `Steal;
      timed "steal+cp" `Steal_cp;
      timed "steal+fifo" `Steal_fifo;
    ]
  in
  Printf.printf "\nreal execution on %d domains (n=%d, nb=%d, median of 3):\n\n" workers n nb;
  if Real_exec.default_workers () <= 1 then
    Printf.printf
      "NOTE: this machine exposes %d core(s); with a single physical core the\n\
       domain executors demonstrate correctness and overhead only — real\n\
       speedups require real cores (the simulated table above carries the\n\
       scaling claim).\n\n"
      (Domain.recommended_domain_count ());
  let table =
    Table.create ~headers:[ "executor"; "time"; "speedup vs seq"; "steals"; "parks" ]
  in
  let (_, seq_t, _) = seq in
  List.iter
    (fun (name, t, stats) ->
      Table.add_row table
        [
          name;
          Units.seconds t;
          Units.ratio (seq_t /. t);
          string_of_int stats.Real_exec.steals;
          string_of_int stats.Real_exec.parks;
        ])
    rows;
  Table.print table

let run () =
  Bk.header "FIG-3: fork-join vs DAG scheduling (tiled Cholesky)";
  simulated ();
  real_host ();
  Printf.printf
    "\npaper claim: DAG scheduling removes the barrier idle time of fork-join;\nthe gap widens with core count.\n"
