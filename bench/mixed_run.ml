(* Mixed-workload serving benchmark (`bench/main.exe --serve-mixed FILE`,
   CI-sized via `--serve-mixed --smoke FILE`): HPL-vs-HPCG as a serving
   phenomenon.

   The paper's machine-level contrast — dense factorizations near peak
   flops, sparse iterative solves pinned at a few percent by memory
   bandwidth — reappears inside one server the moment both kinds share an
   execution pool: a sparse CG chain is a long train of bandwidth-bound
   chunks, and when those chunks occupy every pool lane, a compute-bound
   dense request arriving with a much tighter deadline waits out chunk
   residuals on every lane. Three points, identical seeded loads:

     dense-alone  the dense stream only — baseline dense p99
     naive        dense + sparse CG streams, no class caps: sparse chunks
                  freely occupy both lanes
     capped       same mix, class_caps [("cg", 1)]: at most one sparse
                  chain lives in the pool at once, so one lane always
                  turns over dense work

   Self-check gates (exit 1 from `run` when any fails):
     (a) every completed sparse request bitwise-identical to the
         sequential sparse oracle (Route.direct — the chunked chain is the
         stepper driven to completion), and dense completions bitwise
         against theirs; no typed failures at any fault-free point
     (b) the naive mix degrades dense p99 by a measured factor:
         naive >= degrade_floor x alone (the phenomenon exists)
     (c) class-aware dispatch recovers it: capped dense p99 <=
         bound_multiple x alone while sparse goodput stays > 0 (the cap
         must not starve the sparse class)
     (d) accounting: per class, offered = admitted + rejected and
         admitted = completed + failed; server totals equal the
         class-wise sums; nothing left in flight
     (e) the fleet simulator accepts the sparse class: a storm over
         Scenario.mixed_classes reconciles its recovery-lattice counters,
         serves the cg class, and replays bit-identically by seed. *)

module Server = Xsc_serve.Server
module Loadgen = Xsc_serve.Loadgen
module Request = Xsc_serve.Request
module Sim = Xsc_fleet.Sim
module Scenario = Xsc_fleet.Scenario

let lanes = 2

(* Gate thresholds. The naive mix must inflate dense p99 by at least
   [degrade_floor]; observed inflation on the CI container sits far above
   it (sparse chunks are multi-ms against a sub-ms dense service). The
   capped recovery bound reuses the isolation bench's generous multiple —
   shared-CI jitter, not the mechanism, sets the slack. *)
let degrade_floor = 1.25
let bound_multiple = 8.0

let dense_load ~count =
  { Loadgen.default with seed = 47; rate_hz = 150.0; count; n = 48; deadline_s = 0.25 }

(* Grid 24 -> 13824-row 7-point operator: each CG chunk (32 iterations)
   streams for multiple milliseconds — long against a dense solve, the
   regime where lane occupancy matters. *)
let sparse_load ~count =
  {
    Loadgen.seed = 61;
    rate_hz = 75.0;
    count;
    n = 24;
    kinds = [| Loadgen.Cg |];
    deadline_s = 5.0;
  }

let server_cfg ~caps =
  {
    Server.default_config with
    dispatch = Server.Shared lanes;
    capacity = 512;
    default_deadline_s = 5.0;
    class_caps = caps;
  }

let class_ok (r : Loadgen.report) =
  r.Loadgen.offered = r.Loadgen.admitted + r.Loadgen.rejected
  && r.Loadgen.admitted = r.Loadgen.completed + r.Loadgen.failed

let bitwise_ok cfg pairs =
  List.for_all
    (fun (a, (c : Request.completion)) ->
      match c.Request.outcome with
      | Ok sol -> Loadgen.solutions_bitwise_equal sol (Loadgen.reference_routed cfg a)
      | Error _ -> false)
    pairs

(* ---- the dense-alone baseline ---- *)

let run_alone ~dense_count =
  let cfg = dense_load ~count:dense_count in
  let srv = Server.start (server_cfg ~caps:[]) in
  let r = Loadgen.run_open srv cfg in
  Server.stop srv;
  (* counters read only after [stop]: the quiescent point where the
     admitted = completed + failed identity is guaranteed *)
  let sc = Server.counters srv in
  let in_flight = Server.in_flight srv in
  let ok =
    class_ok r && r.Loadgen.failed = 0 && in_flight = 0
    && sc.Server.admitted = sc.Server.completed + sc.Server.failed
  in
  let json =
    Printf.sprintf "{\"label\": \"dense-alone\", \"dense\": %s, \"checks\": %b}"
      (Loadgen.report_json r) ok
  in
  (r, ok, json)

(* ---- the two mixed points ---- *)

type mixed_point = {
  mp_label : string;
  mp : Loadgen.mixed;
  mp_cap_deferred : int;
  mp_ok : bool;
  mp_json : string;
}

let run_mixed_point ~label ~caps ~dense_count ~sparse_count =
  let dense = dense_load ~count:dense_count in
  let sparse = sparse_load ~count:sparse_count in
  let srv = Server.start (server_cfg ~caps) in
  let m = Loadgen.run_mixed srv ~dense ~sparse in
  Server.stop srv;
  let sc = Server.counters srv in
  let in_flight = Server.in_flight srv in
  let d = m.Loadgen.m_dense and s = m.Loadgen.m_sparse in
  let accounting =
    (* gate (d): per-class arithmetic plus the cross-check that the
       server's totals are exactly the class-wise sums *)
    class_ok d && class_ok s && in_flight = 0
    && sc.Server.admitted = d.Loadgen.admitted + s.Loadgen.admitted
    && sc.Server.rejected = d.Loadgen.rejected + s.Loadgen.rejected
    && sc.Server.completed = d.Loadgen.completed + s.Loadgen.completed
    && sc.Server.failed = d.Loadgen.failed + s.Loadgen.failed
  in
  let bitwise =
    bitwise_ok dense m.Loadgen.m_dense_pairs && bitwise_ok sparse m.Loadgen.m_sparse_pairs
  in
  let ok = accounting && bitwise && d.Loadgen.failed = 0 && s.Loadgen.failed = 0 in
  let json =
    Printf.sprintf
      "{\"label\": \"%s\", \"class_caps\": %s, \"dense\": %s, \"sparse\": %s, \
       \"cap_deferred\": %d, \"bitwise_ok\": %b, \"accounting_ok\": %b}"
      label
      (match caps with
      | [] -> "[]"
      | l ->
        "["
        ^ String.concat ", "
            (List.map (fun (k, c) -> Printf.sprintf "{\"kind\": \"%s\", \"cap\": %d}" k c) l)
        ^ "]")
      (Loadgen.report_json d) (Loadgen.report_json s) sc.Server.cap_deferred bitwise
      accounting
  in
  { mp_label = label; mp = m; mp_cap_deferred = sc.Server.cap_deferred; mp_ok = ok; mp_json = json }

(* ---- gate (e): the fleet simulator accepts the sparse class ---- *)

let run_fleet () =
  let cfg =
    Scenario.config ~classes:Scenario.mixed_classes ~nodes:400 ~node_mtbf:2000.0
      ~rate_hz:0.5 ~count:60 ~seed:13 ()
  in
  let r1 = Sim.run cfg in
  let r2 = Sim.run cfg in
  let sparse_completed =
    Array.fold_left
      (fun acc (rc : Sim.record) ->
        if
          rc.Sim.cls = Scenario.sparse_class.Xsc_fleet.Model.name
          && match rc.Sim.outcome with Sim.Completed _ -> true | _ -> false
        then acc + 1
        else acc)
      0 r1.Sim.records
  in
  let replays = r1.Sim.outcome_hash = r2.Sim.outcome_hash in
  let ok =
    Sim.reconciles r1.Sim.counters && (not r1.Sim.wedged) && sparse_completed > 0 && replays
  in
  let json =
    Printf.sprintf
      "{\"classes\": %d, \"nodes\": 400, \"node_mtbf_s\": 2000, \"offered\": %d, \
       \"sparse_class\": \"%s\", \"sparse_completed\": %d, \"failures_injected\": %d, \
       \"counters_reconcile\": %b, \"replays_bitwise\": %b, \"outcome_hash\": \"%Lx\"}"
      (Array.length Scenario.mixed_classes)
      r1.Sim.counters.Sim.offered Scenario.sparse_class.Xsc_fleet.Model.name
      sparse_completed r1.Sim.counters.Sim.failures_total
      (Sim.reconciles r1.Sim.counters)
      replays r1.Sim.outcome_hash
  in
  (json, ok)

(* ---- the record ---- *)

let record ?(dense_count = 100) ?(sparse_count = 60) () =
  let alone, alone_ok, alone_json = run_alone ~dense_count in
  let naive =
    run_mixed_point ~label:"naive" ~caps:[] ~dense_count ~sparse_count
  in
  let capped =
    run_mixed_point ~label:"capped" ~caps:[ ("cg", 1) ] ~dense_count ~sparse_count
  in
  let p99_alone = alone.Loadgen.p99_ms in
  let p99_naive = naive.mp.Loadgen.m_dense.Loadgen.p99_ms in
  let p99_capped = capped.mp.Loadgen.m_dense.Loadgen.p99_ms in
  let degrade = if p99_alone > 0.0 then p99_naive /. p99_alone else 0.0 in
  let recover = if p99_alone > 0.0 then p99_capped /. p99_alone else 0.0 in
  let gate_b = degrade >= degrade_floor in
  let gate_c =
    p99_capped <= bound_multiple *. p99_alone
    && capped.mp.Loadgen.m_sparse.Loadgen.goodput > 0.0
  in
  let fleet_json, fleet_ok = run_fleet () in
  let ok = alone_ok && naive.mp_ok && capped.mp_ok && gate_b && gate_c && fleet_ok in
  let json =
    Printf.sprintf
      "{\"lanes\": %d, \"dense_n\": %d, \"sparse_grid\": %d,\n\
      \    \"alone\": %s,\n\
      \    \"naive\": %s,\n\
      \    \"capped\": %s,\n\
      \    \"dispatch\": {\"alone_dense_p99_ms\": %.3f, \"naive_dense_p99_ms\": %.3f, \
       \"capped_dense_p99_ms\": %.3f, \"naive_over_alone\": %.3f, \
       \"capped_over_alone\": %.3f, \"degrade_floor\": %.2f, \"bound_multiple\": %.1f, \
       \"naive_degrades\": %b, \"capped_recovers\": %b},\n\
      \    \"fleet\": %s,\n\
      \    \"checks_passed\": %b}"
      lanes (dense_load ~count:1).Loadgen.n (sparse_load ~count:1).Loadgen.n alone_json
      naive.mp_json capped.mp_json p99_alone p99_naive p99_capped degrade recover
      degrade_floor bound_multiple gate_b gate_c fleet_json ok
  in
  (json, ok, (alone, naive, capped))

let print_summary (alone, naive, capped) =
  let p99_alone = alone.Loadgen.p99_ms in
  let dn = naive.mp.Loadgen.m_dense and dc = capped.mp.Loadgen.m_dense in
  let sn = naive.mp.Loadgen.m_sparse and sc = capped.mp.Loadgen.m_sparse in
  Printf.printf "-- dense alone --\n%s\n" (Loadgen.report_human alone);
  Printf.printf "-- naive mix: dense --\n%s\n" (Loadgen.report_human dn);
  Printf.printf "-- naive mix: sparse --\n%s\n" (Loadgen.report_human sn);
  Printf.printf "-- capped mix: dense --\n%s\n" (Loadgen.report_human dc);
  Printf.printf "-- capped mix: sparse (cap_deferred %d) --\n%s\n" capped.mp_cap_deferred
    (Loadgen.report_human sc);
  Printf.printf
    "dense p99: alone %.2f ms | naive mix %.2f ms (%.1fx) | capped mix %.2f ms \
     (%.2fx alone); sparse goodput naive %.0f/s -> capped %.0f/s\n"
    p99_alone dn.Loadgen.p99_ms
    (if p99_alone > 0.0 then dn.Loadgen.p99_ms /. p99_alone else 0.0)
    dc.Loadgen.p99_ms
    (if p99_alone > 0.0 then dc.Loadgen.p99_ms /. p99_alone else 0.0)
    sn.Loadgen.goodput sc.Loadgen.goodput

let write_and_gate ~file ~json ~ok ~points =
  let oc = open_out file in
  output_string oc ("{\n  \"serve_mixed\": " ^ json ^ "\n}\n");
  close_out oc;
  Printf.printf "wrote %s\n" file;
  print_summary points;
  if not ok then begin
    Printf.eprintf "serve-mixed self-checks FAILED (see %s)\n" file;
    exit 1
  end;
  print_endline "serve-mixed self-checks passed"

let run ~file =
  let json, ok, points = record () in
  write_and_gate ~file ~json ~ok ~points

let smoke ~file =
  let json, ok, points = record ~dense_count:60 ~sparse_count:30 () in
  write_and_gate ~file ~json ~ok ~points
