(* Fleet capacity-planning benchmark (`bench/main.exe --fleet FILE`): the
   BENCH_0009 record.

   Sweeps the fleet simulator (Xsc_fleet.Sim — the real serve
   batching/EDF/admission structures in DES time over a simulated machine
   with a Poisson failure injector and the lib/ca cost models) across the
   paper's regime: ~1000 nodes, offered load near capacity, system MTBF
   far shorter than one large solve. Produces:

   - an availability/goodput/p99 curve vs node MTBF (the storm knob);
   - a weak-scaling curve vs node count (offered load scaled with nodes);
   - a policy-comparison table: admission window x batch size x
     checkpoint cadence at the storm point;
   - a seeded-replay check and the recovery-lattice reconciliation.

   Self-checking: exits 1 unless
   (a) availability degrades monotonically in expectation as MTBF shrinks
       at fixed policy (averaged over seeds);
   (b) the Young cadence beats both checkpoint-every-step and
       never-checkpoint on goodput in the short-MTBF regime;
   (c) a replayed storm reproduces identical request outcomes — bitwise
       equal records, equal outcome hash;
   (d) recovery-lattice counters reconcile on every run (each injected
       failure in exactly one of abft/cone/restart/reject, each request
       in exactly one outcome), and the Young cadence used is the one
       sqrt(2CM) prescribes for the Failure process's MTBF, with the
       empirical failure count within tolerance of rate x makespan.

   A failing gate dumps the flight-recorder ring (the replay runs tee
   their simulated spans into it) next to the record, same as the serve
   bench. All file writes go through Fun.protect so a failing gate or a
   full disk never leaks a handle. *)

module Sim = Xsc_fleet.Sim
module Model = Xsc_fleet.Model
module Machine = Xsc_simmachine.Machine
module Network = Xsc_simmachine.Network
module Presets = Xsc_simmachine.Presets
module Failure = Xsc_simmachine.Failure
module Checkpoint = Xsc_resilience.Checkpoint
module Flight = Xsc_resilience.Flight
module Rng = Xsc_util.Rng
module Mat = Xsc_linalg.Mat
module Dist_cholesky = Xsc_ca.Dist_cholesky
module Summa = Xsc_ca.Summa

module Scenario = Xsc_fleet.Scenario

let fleet_machine ~nodes ~node_mtbf = Scenario.machine ~nodes ~node_mtbf

(* Two request classes (Scenario.default_classes): a 16-rank distributed
   Cholesky whose per-rank checkpoint costs about one step (the cadence
   choice has teeth: at the storm point the allocation's MTBF is shorter
   than one solve), and a shorter 16-rank SUMMA filling the mix. *)
let classes = Scenario.default_classes

type params = {
  nodes : int;
  count : int;
  rate_hz : float;
  seeds : int list;
  mtbf_sweep : float list;  (* node MTBF, longest first *)
  mtbf_storm : float;  (* collapse point: repair can't keep up *)
  mtbf_cadence : float;
  (* short-MTBF but pre-collapse: allocation MTBF shorter than one
     solve, queues finite — where checkpoint-cadence economics decide
     outcomes rather than the admission queue *)
  scaling_nodes : int list;
  capacities : int list;
  batches : int list;
}

let full =
  {
    nodes = 1000;
    count = 400;
    rate_hz = 1.25;
    seeds = [ 1; 2; 3 ];
    mtbf_sweep = [ 30.0 *. 86400.0; 3600.0; 400.0 ];
    mtbf_storm = 400.0;
    mtbf_cadence = 1000.0;
    scaling_nodes = [ 250; 1000; 4000 ];
    capacities = [ 64; 256 ];
    batches = [ 1; 4 ];
  }

let smoke_params =
  {
    nodes = 400;
    count = 120;
    rate_hz = 0.5;
    seeds = [ 1; 2 ];
    mtbf_sweep = [ 30.0 *. 86400.0; 3600.0; 400.0 ];
    mtbf_storm = 400.0;
    mtbf_cadence = 1000.0;
    scaling_nodes = [ 250; 400 ];
    capacities = [ 256 ];
    batches = [ 1; 4 ];
  }

let mk_config ?cadence ?abft ?capacity ?max_batch ?(spans = false) ?rate_hz
    ?nodes ~p ~mtbf ~seed () =
  let nodes = match nodes with Some n -> n | None -> p.nodes in
  let rate_hz = match rate_hz with Some r -> r | None -> p.rate_hz in
  Scenario.config ?cadence ?abft ?capacity ?max_batch ~spans ~nodes
    ~node_mtbf:mtbf ~rate_hz ~count:p.count ~seed ()

(* ---- per-run JSON summary ---- *)

let run_json ?(label = "") (cfg : Sim.config) (r : Sim.result) =
  let c = r.Sim.counters in
  Printf.sprintf
    "{\"label\": \"%s\", \"seed\": %d, \"nodes\": %d, \"node_mtbf_s\": %.0f, \
     \"system_mtbf_s\": %.2f, \"rate_hz\": %.2f, \"offered\": %d, \
     \"availability\": %.4f, \"goodput_rps\": %.4f, \"p50_ms\": %.0f, \
     \"p99_ms\": %.0f, \"util\": %.3f, \"makespan_s\": %.1f, \
     \"failures\": %d, \"failures_busy\": %d, \"abft_repairs\": %d, \
     \"cone_replays\": %d, \"restarts\": %d, \"recovery_rejects\": %d, \
     \"admission_rejects\": %d, \"checkpoints\": %d, \"batches\": %d, \
     \"expected_failures\": %.1f, \"outcome_hash\": \"%Lx\", \
     \"reconciles\": %b, \"wedged\": %b}"
    (String.escaped label) cfg.Sim.seed cfg.Sim.machine.Machine.node_count
    cfg.Sim.machine.Machine.node_mtbf
    (Machine.system_mtbf cfg.Sim.machine)
    cfg.Sim.rate_hz c.Sim.offered r.Sim.availability r.Sim.goodput_rps r.Sim.p50_ms
    r.Sim.p99_ms r.Sim.util r.Sim.makespan_s c.Sim.failures_total c.Sim.failures_busy
    c.Sim.abft_repairs c.Sim.cone_replays c.Sim.restarts c.Sim.rejected_recovery
    c.Sim.rejected_admission c.Sim.checkpoints c.Sim.batches r.Sim.expected_failures
    r.Sim.outcome_hash (Sim.reconciles c) r.Sim.wedged

let mean xs = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

(* Every run feeds gate (d): lattice reconciliation, a clean finish, and
   the Poisson injector delivering its advertised rate (empirical failure
   count within tolerance of rate x makespan, once enough events). *)
let all_sound = ref true

let sound (r : Sim.result) =
  let injector_ok =
    r.Sim.expected_failures < 20.0
    || Float.abs (float_of_int r.Sim.empirical_failures -. r.Sim.expected_failures)
       <= Float.max 10.0 (0.35 *. r.Sim.expected_failures)
  in
  let ok = Sim.reconciles r.Sim.counters && (not r.Sim.wedged) && injector_ok in
  if not ok then all_sound := false;
  ok

let run_one ?label cfg =
  let r = Sim.run cfg in
  ignore (sound r);
  (r, run_json ?label cfg r)

(* ---- gate (a): availability vs MTBF, monotone in expectation ---- *)

let mtbf_sweep ~p =
  let pts =
    List.map
      (fun mtbf ->
        let runs =
          List.map
            (fun seed ->
              run_one ~label:(Printf.sprintf "mtbf=%.0fs" mtbf)
                (mk_config ~p ~mtbf ~seed ()))
            p.seeds
        in
        let avail = mean (List.map (fun (r, _) -> r.Sim.availability) runs) in
        (mtbf, avail, runs))
      p.mtbf_sweep
  in
  (* adjacent points may tie within noise; the endpoints must strictly
     degrade — that is the curve the paper's arithmetic predicts *)
  let rec adjacent_ok = function
    | (_, a1, _) :: ((_, a2, _) :: _ as tl) -> a1 >= a2 -. 0.02 && adjacent_ok tl
    | _ -> true
  in
  let avail_of i = match List.nth pts i with _, a, _ -> a in
  let gate_a =
    adjacent_ok pts && avail_of 0 > avail_of (List.length pts - 1) +. 0.02
  in
  let json =
    Printf.sprintf "{\"points\": [%s], \"monotone\": %b}"
      (String.concat ", "
         (List.map
            (fun (mtbf, avail, runs) ->
              Printf.sprintf
                "{\"node_mtbf_s\": %.0f, \"availability_mean\": %.4f, \"runs\": [%s]}"
                mtbf avail
                (String.concat ", " (List.map snd runs)))
            pts))
      gate_a
  in
  (gate_a, json)

(* ---- gate (b): cadence comparison at the storm point ---- *)

let cadence_name = function
  | Sim.Every_step -> "every-step"
  | Sim.Young -> "young"
  | Sim.Never -> "never"
  | Sim.Every k -> Printf.sprintf "every-%d" k

let cadence_compare ~p =
  let arms =
    List.map
      (fun cadence ->
        let runs =
          List.map
            (fun seed ->
              run_one
                ~label:(Printf.sprintf "cadence=%s" (cadence_name cadence))
                (mk_config ~p ~cadence ~mtbf:p.mtbf_cadence ~seed ()))
            p.seeds
        in
        let good = mean (List.map (fun (r, _) -> r.Sim.goodput_rps) runs) in
        (cadence, good, runs))
      [ Sim.Every_step; Sim.Young; Sim.Never ]
  in
  let good_of c =
    match List.find (fun (c', _, _) -> c' = c) arms with _, g, _ -> g
  in
  let gate_b =
    good_of Sim.Young > good_of Sim.Every_step && good_of Sim.Young > good_of Sim.Never
  in
  let json =
    Printf.sprintf "{\"arms\": [%s], \"young_wins\": %b}"
      (String.concat ", "
         (List.map
            (fun (c, g, runs) ->
              Printf.sprintf
                "{\"cadence\": \"%s\", \"goodput_mean_rps\": %.4f, \"runs\": [%s]}"
                (cadence_name c) g
                (String.concat ", " (List.map snd runs)))
            arms))
      gate_b
  in
  (gate_b, json, arms)

(* ---- gate (c): seeded storm replay ---- *)

let replay ~p =
  (* spans on, teed into the flight recorder: a failing gate dumps the
     last simulated spans as the post-mortem *)
  let cfg = mk_config ~p ~mtbf:p.mtbf_storm ~seed:7 ~spans:true () in
  let r1, j1 = run_one ~label:"replay-a" cfg in
  let r2, _ = run_one ~label:"replay-b" cfg in
  List.iter Flight.note_span r1.Sim.sim_spans;
  let bitwise =
    Array.length r1.Sim.records = Array.length r2.Sim.records
    && Array.for_all2 (fun (a : Sim.record) b -> a = b) r1.Sim.records r2.Sim.records
  in
  let gate_c = bitwise && Int64.equal r1.Sim.outcome_hash r2.Sim.outcome_hash in
  let rejects r =
    Array.to_list r.Sim.records
    |> List.filter_map (fun (rec_ : Sim.record) ->
           match rec_.Sim.outcome with
           | Sim.Rejected_recovery _ -> Some rec_.Sim.id
           | _ -> None)
  in
  let same_rejects = rejects r1 = rejects r2 in
  let json =
    Printf.sprintf
      "{\"run\": %s, \"hash_a\": \"%Lx\", \"hash_b\": \"%Lx\", \
       \"records_bitwise_equal\": %b, \"typed_reject_set_equal\": %b, \
       \"sim_spans\": %d}"
      j1 r1.Sim.outcome_hash r2.Sim.outcome_hash bitwise same_rejects
      (List.length r1.Sim.sim_spans)
  in
  (gate_c && same_rejects, json)

(* ---- Young cadence vs the Failure process (part of gate d) ---- *)

let young_validation ~p =
  let machine = fleet_machine ~nodes:p.nodes ~node_mtbf:p.mtbf_storm in
  let proc = Failure.of_machine (Rng.create 1) machine in
  let checks =
    Array.to_list classes
    |> List.map (fun cls ->
           let costs = Model.costs ~machine cls in
           let k = Model.young_steps ~machine cls ~costs in
           (* the allocation's MTBF, expressed through the Failure
              process's system MTBF: M_alloc = M_sys * nodes / ranks *)
           let m_alloc =
             Failure.mtbf proc *. float_of_int p.nodes /. float_of_int cls.Model.ranks
           in
           let tau =
             Checkpoint.young_interval
               {
                 Checkpoint.work = costs.Model.work_s;
                 checkpoint_cost = costs.Model.checkpoint_s;
                 restart_cost = costs.Model.restart_s;
                 mtbf = m_alloc;
               }
           in
           (* the cadence must be tau rounded to whole steps: off by at
              most one step (and never below one) *)
           let ok =
             k >= 1
             && Float.abs ((float_of_int k *. costs.Model.step_s) -. tau)
                <= costs.Model.step_s
           in
           (cls.Model.name, k, tau, costs.Model.step_s, ok))
  in
  let ok = List.for_all (fun (_, _, _, _, ok) -> ok) checks in
  let json =
    Printf.sprintf "{\"classes\": [%s], \"cadence_matches_young\": %b}"
      (String.concat ", "
         (List.map
            (fun (name, k, tau, step, ok) ->
              Printf.sprintf
                "{\"class\": \"%s\", \"young_steps\": %d, \"tau_s\": %.2f, \
                 \"step_s\": %.2f, \"ok\": %b}"
                name k tau step ok)
            checks))
      ok
  in
  (ok, json)

(* ---- policy table ---- *)

let policy_table ~p =
  let rows = ref [] in
  List.iter
    (fun capacity ->
      List.iter
        (fun max_batch ->
          List.iter
            (fun cadence ->
              let cfg =
                mk_config ~p ~capacity ~max_batch ~cadence ~mtbf:p.mtbf_cadence
                  ~seed:1 ()
              in
              let r, _ = run_one cfg in
              let row =
                Printf.sprintf
                  "{\"capacity\": %d, \"max_batch\": %d, \"cadence\": \"%s\", \
                   \"availability\": %.4f, \"goodput_rps\": %.4f, \
                   \"p99_ms\": %.0f, \"admission_rejects\": %d, \
                   \"recovery_rejects\": %d}"
                  capacity max_batch (cadence_name cadence) r.Sim.availability
                  r.Sim.goodput_rps r.Sim.p99_ms
                  r.Sim.counters.Sim.rejected_admission
                  r.Sim.counters.Sim.rejected_recovery
              in
              rows := row :: !rows)
            [ Sim.Every_step; Sim.Young; Sim.Never ])
        p.batches)
    p.capacities;
  Printf.sprintf "[%s]" (String.concat ", " (List.rev !rows))

(* ---- scaling curve: weak-scaled offered load vs node count ---- *)

let scaling ~p =
  let pts =
    List.map
      (fun nodes ->
        let rate_hz = p.rate_hz *. float_of_int nodes /. float_of_int p.nodes in
        let cfg = mk_config ~p ~nodes ~rate_hz ~mtbf:3600.0 ~seed:1 () in
        let _, j = run_one ~label:(Printf.sprintf "nodes=%d" nodes) cfg in
        j)
      p.scaling_nodes
  in
  Printf.sprintf "[%s]" (String.concat ", " pts)

(* ---- real lib/ca tie-in ----

   The simulator prices requests with the closed-form models; here the
   real virtual-grid kernels run at small scale so the record carries the
   measured-vs-model communication ratio, and a repeated factorization
   must be bitwise identical — the same determinism the simulated storms
   gate on, on the real arithmetic. *)

let ca_tie_in () =
  let n = 96 and nb = 24 and pgrid = 4 in
  let a = Mat.random_spd (Rng.create 42) n in
  let r1 = Dist_cholesky.factor ~pr:2 ~pc:2 ~nb a in
  let r2 = Dist_cholesky.factor ~pr:2 ~pc:2 ~nb a in
  let bitwise_chol = ref true in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if
        Int64.bits_of_float (Mat.get r1.Dist_cholesky.l i j)
        <> Int64.bits_of_float (Mat.get r2.Dist_cholesky.l i j)
      then bitwise_chol := false
    done
  done;
  let m = Dist_cholesky.model_2d ~n ~nb ~p:pgrid in
  let chol_words_ratio =
    r1.Dist_cholesky.words /. float_of_int pgrid /. m.Dist_cholesky.words_per_rank
  in
  let ng = 64 in
  let rng = Rng.create 43 in
  let b1 = Mat.random rng ng ng and b2 = Mat.random rng ng ng in
  let s1 = Summa.summa ~p:pgrid b1 b2 in
  let s2 = Summa.summa ~p:pgrid b1 b2 in
  let bitwise_summa = ref true in
  for i = 0 to ng - 1 do
    for j = 0 to ng - 1 do
      if
        Int64.bits_of_float (Mat.get s1.Summa.product i j)
        <> Int64.bits_of_float (Mat.get s2.Summa.product i j)
      then bitwise_summa := false
    done
  done;
  let sm = Summa.model_2d ~n:ng ~p:pgrid in
  let summa_words_ratio =
    s1.Summa.words /. float_of_int pgrid /. sm.Summa.words_per_rank
  in
  let ok = !bitwise_chol && !bitwise_summa in
  let json =
    Printf.sprintf
      "{\"chol\": {\"n\": %d, \"nb\": %d, \"p\": %d, \"bitwise_repeat\": %b, \
       \"measured_words\": %.0f, \"model_words_per_rank\": %.0f, \
       \"words_ratio\": %.3f}, \"summa\": {\"n\": %d, \"p\": %d, \
       \"bitwise_repeat\": %b, \"words_ratio\": %.3f}, \"deterministic\": %b}"
      n nb pgrid !bitwise_chol r1.Dist_cholesky.words m.Dist_cholesky.words_per_rank
      chol_words_ratio ng pgrid !bitwise_summa summa_words_ratio ok
  in
  (ok, json)

(* ---- the record ---- *)

let record ~p =
  all_sound := true;
  let gate_a, sweep_json = mtbf_sweep ~p in
  let gate_b, cadence_json, _ = cadence_compare ~p in
  let gate_c, replay_json = replay ~p in
  let young_ok, young_json = young_validation ~p in
  let table_json = policy_table ~p in
  let scaling_json = scaling ~p in
  let ca_ok, ca_json = ca_tie_in () in
  let gate_d = !all_sound && young_ok in
  let ok = gate_a && gate_b && gate_c && gate_d && ca_ok in
  let machine = fleet_machine ~nodes:p.nodes ~node_mtbf:p.mtbf_storm in
  let json =
    Printf.sprintf
      "{\"schema\": \"xsc-bench-fleet-v1\",\n\
      \  \"machine\": {\"nodes\": %d, \"storm_node_mtbf_s\": %.0f, \
       \"storm_system_mtbf_s\": %.2f, \"alpha_s\": %g, \"beta_s_per_byte\": %g},\n\
      \  \"classes\": [%s],\n\
      \  \"offered\": {\"rate_hz\": %.2f, \"count\": %d, \"seeds\": [%s]},\n\
      \  \"mtbf_sweep\": %s,\n\
      \  \"cadence_compare\": %s,\n\
      \  \"replay\": %s,\n\
      \  \"young_validation\": %s,\n\
      \  \"policy_table\": %s,\n\
      \  \"scaling\": %s,\n\
      \  \"ca_tie_in\": %s,\n\
      \  \"gates\": {\"availability_monotone\": %b, \"young_wins_storm\": %b, \
       \"replay_bitwise\": %b, \"lattice_reconciles\": %b, \
       \"ca_deterministic\": %b, \"all\": %b}}"
      p.nodes p.mtbf_storm
      (Machine.system_mtbf machine)
      machine.Machine.network.Network.alpha machine.Machine.network.Network.beta
      (String.concat ", "
         (Array.to_list classes
         |> List.map (fun c ->
                let costs = Model.costs ~machine c in
                Printf.sprintf
                  "{\"name\": \"%s\", \"kind\": \"%s\", \"n\": %d, \"nb\": %d, \
                   \"ranks\": %d, \"deadline_s\": %.0f, \"weight\": %.0f, \
                   \"steps\": %d, \"step_s\": %.2f, \"work_s\": %.2f, \
                   \"checkpoint_s\": %.2f, \"restart_s\": %.2f}"
                  c.Model.name
                  (match c.Model.kind with
                  | Model.Chol -> "chol"
                  | Model.Gemm -> "gemm"
                  | Model.Cg _ -> "cg")
                  c.Model.n c.Model.nb c.Model.ranks c.Model.deadline_s c.Model.weight
                  costs.Model.steps costs.Model.step_s costs.Model.work_s
                  costs.Model.checkpoint_s costs.Model.restart_s)))
      p.rate_hz p.count
      (String.concat ", " (List.map string_of_int p.seeds))
      sweep_json cadence_json replay_json young_json table_json scaling_json ca_json
      gate_a gate_b gate_c gate_d ca_ok ok
  in
  (json, ok)

let human ~p json_ok =
  Printf.printf "fleet: %d nodes, storm node-MTBF %.0f s (system MTBF %.1f s), %d req @ %.1f rps\n"
    p.nodes p.mtbf_storm
    (Machine.system_mtbf (fleet_machine ~nodes:p.nodes ~node_mtbf:p.mtbf_storm))
    p.count p.rate_hz;
  Printf.printf "gates %s\n" (if json_ok then "passed" else "FAILED")

let write_file ~file contents =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

let run_with ~p ~file =
  let json, ok = record ~p in
  write_file ~file ("{\n  \"fleet\": " ^ json ^ "\n}\n");
  Printf.printf "wrote %s\n" file;
  human ~p ok;
  if not ok then begin
    (* gate failing: ship the flight ring (holding the replay storm's
       simulated spans) next to the red record *)
    let base = Filename.remove_extension file in
    ignore
      (Flight.dump_once ~path:(base ^ "_gate_flight.bin")
         ~reason:"bench-fleet-gate-failure");
    Printf.eprintf "fleet record self-checks FAILED (see %s)\n" file;
    exit 1
  end;
  print_endline "fleet record self-checks passed"

let run ~file = run_with ~p:full ~file
let smoke ~file = run_with ~p:smoke_params ~file
