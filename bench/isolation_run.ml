(* Multi-tenant latency-isolation benchmark (`bench/main.exe
   --serve-isolation FILE`) and the serve_isolation record for `--smoke`.

   The experiment behind the shared task pool: a Poisson stream of small
   SPD solves (the latency-sensitive tenant) against one large solve kept
   continuously streaming (the throughput tenant), on ONE execution lane
   so the two tenants genuinely contend. Three points, identical seeded
   small load:

     alone   small stream only, shared-pool dispatch — the baseline p99
     slot    smalls + large under request-granular slot dispatch (the
             legacy executor, kept as the ablation): an admitted large
             holds the lane for its whole service time, so a small
             arriving mid-solve waits the large's residual service
     shared  smalls + large through the shared deadline-aware task pool:
             the large's DAG is interleaved at task granularity, so the
             small's EDF key preempts at the next task boundary

   Self-check gates (exit 1 from `run` when any fails):
     - shared small-class p99 < slot small-class p99 (the isolation win)
     - shared small-class p99 <= bound_multiple x alone p99 (the wait is
       bounded by ~one task's service, not the large DAG's tail)
     - every completed small bitwise-identical to its per-request oracle:
       Route.direct for pool points, the direct kernel call for slot
     - a transient fault storm through the pool converges: zero typed
       failures, every retried answer still bitwise-identical
     - counters reconcile and the large actually streamed (>= 1 done)
     - scratch A/B: with the domain-local pools on, buffer-reuse hits
       dominate misses (alloc-per-request means recorded either way via
       the serve.alloc_minor_words_per_req histogram) *)

module Server = Xsc_serve.Server
module Loadgen = Xsc_serve.Loadgen
module Request = Xsc_serve.Request
module Scratch = Xsc_serve.Scratch
module Harness = Xsc_resilience.Harness
module Metrics = Xsc_obs.Metrics

(* The shared pool must keep the small class within this multiple of its
   alone-on-the-lane p99 even while the large streams. Task-granularity
   preemption bounds the added wait to ~one tile kernel plus one batcher
   linger; the slack on top covers shared-CI jitter (observed multiples
   sit well under half of this). *)
let bound_multiple = 8.0

let lanes = 1

let small_load ~count =
  { Loadgen.default with seed = 47; rate_hz = 150.0; count; n = 48; deadline_s = 0.25 }

let large = { Loadgen.default_large with l_n = 512; l_deadline_s = 5.0 }

let server_cfg dispatch =
  { Server.default_config with
    workers = lanes;
    dispatch;
    capacity = 512;
    default_deadline_s = 5.0;
  }

let reconciles srv =
  let c = Server.counters srv in
  Server.in_flight srv = 0 && c.Server.admitted = c.Server.completed + c.Server.failed

let alloc_mean_of_delta d =
  match List.assoc_opt "serve.alloc_minor_words_per_req" d with
  | Some (Metrics.Histogram h) when h.Metrics.count > 0 ->
    h.Metrics.sum /. float_of_int h.Metrics.count
  | _ -> 0.0

(* ---- the three load points ---- *)

type point = {
  p_label : string;
  p_iso : Loadgen.isolation;
  p_bitwise_ok : bool;
  p_recon : bool;
  p_json : string;
}

let run_point ~label ~dispatch ~with_large load =
  let before = Metrics.snapshot () in
  let srv = Server.start (server_cfg dispatch) in
  let iso =
    Loadgen.run_isolation srv ?large:(if with_large then Some large else None) load
  in
  Server.stop srv;
  let oracle =
    (* slot dispatch solves through the direct kernel path; pool dispatch
       executes the Route plan — each point checks against its own
       bitwise oracle *)
    match dispatch with
    | Server.Slot -> Loadgen.reference load
    | Server.Shared _ -> Loadgen.reference_routed load
  in
  let bitwise_ok =
    List.for_all
      (fun (a, (c : Request.completion)) ->
        match c.Request.outcome with
        | Ok sol -> Loadgen.solutions_bitwise_equal sol (oracle a)
        | Error _ -> false)
      iso.Loadgen.pairs
  in
  let recon = reconciles srv in
  let alloc =
    alloc_mean_of_delta (Metrics.delta ~before ~after:(Metrics.snapshot ()))
  in
  let json =
    Printf.sprintf
      "{\"label\": \"%s\", \"dispatch\": \"%s\", \"with_large\": %b, \
       \"report\": %s, \"larges_done\": %d, \"larges_failed\": %d, \
       \"large_mean_s\": %.4f, \"bitwise_ok\": %b, \"counters_reconcile\": %b, \
       \"alloc_minor_words_per_req\": %.1f}"
      label
      (match dispatch with Server.Slot -> "slot" | Server.Shared _ -> "shared")
      with_large
      (Loadgen.report_json iso.Loadgen.smalls)
      iso.Loadgen.larges_done iso.Loadgen.larges_failed iso.Loadgen.large_mean_s
      bitwise_ok recon alloc
  in
  { p_label = label; p_iso = iso; p_bitwise_ok = bitwise_ok; p_recon = recon; p_json = json }

(* ---- transient fault storm through the shared pool ---- *)

let storm_load ~count =
  {
    Loadgen.seed = 31;
    count;
    rate_hz = 5000.0;
    n = 48;
    kinds = [| Loadgen.Spd; Loadgen.General |];
    deadline_s = 5.0;
  }

let run_storm ~count =
  let cfg = storm_load ~count in
  let h = Harness.create { Harness.default with seed = 9; p_raise = 0.25; transient = true } in
  let srv =
    Server.start ~harness:h
      { (server_cfg (Server.Shared lanes)) with capacity = 2 * count; max_retries = 4 }
  in
  let arrivals = Loadgen.schedule cfg in
  let tickets =
    Array.map
      (fun a ->
        match
          Server.submit srv ~deadline_s:cfg.Loadgen.deadline_s (Loadgen.payload_of cfg a)
        with
        | Ok tk -> tk
        | Error e -> failwith ("isolation storm submit rejected: " ^ Request.error_message e))
      arrivals
  in
  let completions = Array.map (Server.await srv) tickets in
  Server.stop srv;
  let wrong = ref 0
  and failures = ref 0
  and retried = ref 0 in
  Array.iteri
    (fun i c ->
      retried := !retried + c.Request.retries;
      match c.Request.outcome with
      | Ok sol ->
        if not (Loadgen.solutions_bitwise_equal sol (Loadgen.reference_routed cfg arrivals.(i)))
        then incr wrong
      | Error _ -> incr failures)
    completions;
  let recon = reconciles srv in
  let ok =
    recon && !wrong = 0 && !failures = 0 && Harness.raised h > 0
    && !retried = Harness.raised h
  in
  let json =
    Printf.sprintf
      "{\"count\": %d, \"p_raise\": 0.25, \"seed\": 9, \"injected_raises\": %d, \
       \"retried\": %d, \"typed_failures\": %d, \"mismatches\": %d, \
       \"counters_reconcile\": %b, \"converged_bitwise\": %b}"
      count (Harness.raised h) !retried !failures !wrong recon ok
  in
  (json, ok)

(* ---- scratch pool A/B ---- *)

let run_scratch_ab ~count =
  let load = { (small_load ~count) with seed = 53 } in
  let leg enabled =
    Scratch.set_enabled enabled;
    let before = Metrics.snapshot () in
    let h0 = Scratch.hits () and m0 = Scratch.misses () in
    let srv = Server.start (server_cfg (Server.Shared lanes)) in
    let r = Loadgen.run_closed srv ~outstanding:4 load in
    Server.stop srv;
    let alloc = alloc_mean_of_delta (Metrics.delta ~before ~after:(Metrics.snapshot ())) in
    (r, Scratch.hits () - h0, Scratch.misses () - m0, alloc)
  in
  let r_off, hits_off, misses_off, alloc_off = leg false in
  let r_on, hits_on, misses_on, alloc_on = leg true in
  Scratch.set_enabled true;
  let ok =
    hits_off = 0 && hits_on > misses_on && r_off.Loadgen.failed = 0
    && r_on.Loadgen.failed = 0
  in
  let json =
    Printf.sprintf
      "{\"count\": %d, \"off\": {\"hits\": %d, \"misses\": %d, \
       \"alloc_minor_words_per_req\": %.1f}, \"on\": {\"hits\": %d, \"misses\": %d, \
       \"alloc_minor_words_per_req\": %.1f}, \"reuse_ok\": %b}"
      count hits_off misses_off alloc_off hits_on misses_on alloc_on ok
  in
  (json, ok)

(* ---- the record ---- *)

let record ?(small_count = 100) ?(storm_count = 60) ?(ab_count = 60) () =
  let load = small_load ~count:small_count in
  let alone = run_point ~label:"alone" ~dispatch:(Server.Shared lanes) ~with_large:false load in
  let slot = run_point ~label:"slot" ~dispatch:Server.Slot ~with_large:true load in
  let shared = run_point ~label:"shared" ~dispatch:(Server.Shared lanes) ~with_large:true load in
  let p99 p = p.p_iso.Loadgen.smalls.Loadgen.p99_ms in
  let beats_slot = p99 shared < p99 slot in
  let within_bound = p99 shared <= bound_multiple *. p99 alone in
  let large_streamed =
    slot.p_iso.Loadgen.larges_done >= 1 && shared.p_iso.Loadgen.larges_done >= 1
  in
  let points_ok =
    List.for_all
      (fun p -> p.p_bitwise_ok && p.p_recon && p.p_iso.Loadgen.smalls.Loadgen.failed = 0)
      [ alone; slot; shared ]
  in
  let storm_json, storm_ok = run_storm ~count:storm_count in
  let ab_json, ab_ok = run_scratch_ab ~count:ab_count in
  let ok = beats_slot && within_bound && large_streamed && points_ok && storm_ok && ab_ok in
  let json =
    Printf.sprintf
      "{\"lanes\": %d, \"small_n\": %d, \"small_rate_hz\": %.0f, \"large_n\": %d,\n\
      \    \"alone\": %s,\n\
      \    \"slot\": %s,\n\
      \    \"shared\": %s,\n\
      \    \"isolation\": {\"alone_p99_ms\": %.3f, \"slot_p99_ms\": %.3f, \
       \"shared_p99_ms\": %.3f, \"shared_over_slot\": %.4f, \"shared_over_alone\": \
       %.3f, \"bound_multiple\": %.1f, \"beats_slot\": %b, \"within_bound\": %b},\n\
      \    \"storm\": %s,\n\
      \    \"scratch_ab\": %s,\n\
      \    \"checks_passed\": %b}"
      lanes load.Loadgen.n load.Loadgen.rate_hz large.Loadgen.l_n alone.p_json
      slot.p_json shared.p_json (p99 alone) (p99 slot) (p99 shared)
      (p99 shared /. p99 slot)
      (p99 shared /. p99 alone)
      bound_multiple beats_slot within_bound storm_json ab_json ok
  in
  (json, ok, [ alone; slot; shared ])

let run ~file =
  let json, ok, points = record () in
  let oc = open_out file in
  output_string oc ("{\n  \"serve_isolation\": " ^ json ^ "\n}\n");
  close_out oc;
  Printf.printf "wrote %s\n" file;
  List.iter
    (fun p ->
      Printf.printf "-- %s (large: %d done, mean %.1f ms) --\n%s\n" p.p_label
        p.p_iso.Loadgen.larges_done
        (1e3 *. p.p_iso.Loadgen.large_mean_s)
        (Loadgen.report_human p.p_iso.Loadgen.smalls))
    points;
  (match points with
  | [ alone; slot; shared ] ->
    let p99 p = p.p_iso.Loadgen.smalls.Loadgen.p99_ms in
    Printf.printf
      "small-class p99: alone %.2f ms | slot+large %.2f ms | shared+large %.2f ms \
       (%.1fx better than slot, %.2fx alone)\n"
      (p99 alone) (p99 slot) (p99 shared)
      (p99 slot /. p99 shared)
      (p99 shared /. p99 alone)
  | _ -> ());
  if not ok then begin
    Printf.eprintf "serve-isolation self-checks FAILED (see %s)\n" file;
    exit 1
  end;
  print_endline "serve-isolation self-checks passed"
