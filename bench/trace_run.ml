(* `bench/main.exe -- --trace FILE`: one real traced Cholesky DAG run on 4
   domains. Writes a Chrome trace-event JSON (load in chrome://tracing or
   ui.perfetto.dev), then prints the ASCII Gantt and the per-kernel achieved
   rates against their roofline roofs on the workstation preset — the
   "achieved vs roof" view of a real run. *)

open Xsc_linalg
module Tile = Xsc_tile.Tile
module Cholesky = Xsc_core.Cholesky
module Real_exec = Xsc_runtime.Real_exec
module Trace = Xsc_runtime.Trace
module Roofline = Xsc_hpcbench.Roofline

(* Tile-kernel arithmetic intensity: task flops over the 8 nb^2 bytes of
   each distinct tile the kernel touches (potrf 1 tile, trsm/syrk 2,
   gemm 3). *)
let intensity_of ~nb family =
  let f = float_of_int nb in
  let tiles_bytes t = 8.0 *. f *. f *. float_of_int t in
  match family with
  | "potrf" -> f *. f *. f /. 3.0 /. tiles_bytes 1
  | "trsm" -> f *. f *. f /. tiles_bytes 2
  | "syrk" -> f *. f *. f /. tiles_bytes 2
  | "gemm" -> 2.0 *. f *. f *. f /. tiles_bytes 3
  | _ -> 1.0

let run ~file =
  let nt = 6 and nb = 72 and workers = 4 in
  let n = nt * nb in
  let rng = Xsc_util.Rng.create 7 in
  let a = Mat.random_spd rng n in
  let tiles = Tile.of_mat ~nb a in
  let dag = Cholesky.dag tiles in
  let stats =
    Real_exec.run_dataflow
      ~priority:(Xsc_core.Runtime_api.critical_path_priority dag)
      ~trace:true ~workers dag
  in
  let tr =
    match stats.Real_exec.trace with
    | Some tr -> tr
    | None -> failwith "Trace_run: tracing was enabled but no trace came back"
  in
  let oc = open_out file in
  output_string oc (Trace.to_chrome_json tr);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s: %d events from a %dx%d Cholesky on %d workers\n"
    file
    (List.length (Trace.entries tr))
    n n workers;
  Printf.printf "(open in chrome://tracing or ui.perfetto.dev)\n\n";
  print_string (Trace.gantt tr);
  print_newline ();
  let flops_of id = dag.Xsc_runtime.Dag.tasks.(id).Xsc_runtime.Task.flops in
  let rates = Trace.by_kernel_rates tr ~flops_of in
  let node = Xsc_simmachine.(Presets.workstation.Machine.node) in
  let achieved =
    List.map
      (fun (family, _busy, _count, rate) ->
        Roofline.achieved_point node ~kernel:family ~intensity:(intensity_of ~nb family)
          ~measured:rate)
      rates
  in
  print_string (Roofline.render_achieved achieved);
  print_newline ()
