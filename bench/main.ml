(* Benchmark harness: regenerates every figure and table of the reproduced
   evaluation (see DESIGN.md section 4 for the experiment index).

   Usage:
     dune exec bench/main.exe                 # run everything
     dune exec bench/main.exe -- fig3 tab1    # run a subset
     dune exec bench/main.exe -- --list       # show experiment ids
     dune exec bench/main.exe -- --json FILE  # machine-readable perf record
     dune exec bench/main.exe -- --smoke FILE # CI perf-sanity subset (record-only)
     dune exec bench/main.exe -- --trace FILE # Chrome trace of a real DAG run
     dune exec bench/main.exe -- --overhead [PCT]  # tracing cost (gate if PCT)
     dune exec bench/main.exe -- --serve-overhead [PCT] # spans-on serving cost
     dune exec bench/main.exe -- --faults [SEED]   # seeded fault storm + recovery
     dune exec bench/main.exe -- --serve FILE # solver-service load/latency record
     dune exec bench/main.exe -- --serve-isolation FILE # shared-pool latency isolation
     dune exec bench/main.exe -- --serve-mixed FILE # dense+sparse class-aware dispatch
     dune exec bench/main.exe -- --serve-mixed --smoke FILE # CI-sized mixed record
     dune exec bench/main.exe -- --fleet FILE # simulated-fleet failure-storm record
     dune exec bench/main.exe -- --fleet --smoke FILE # CI-sized fleet record *)

let experiments =
  [
    ("fig1", "Top500 performance development and projection", Fig1_top500.run);
    ("fig2", "peak vs HPL vs HPCG", Fig2_hpl_hpcg.run);
    ("fig3", "fork-join vs DAG scheduling", Fig3_sched.run);
    ("fig4", "mixed-precision iterative refinement", Fig4_mixed.run);
    ("fig5", "communication-avoiding algorithms", Fig5_comm.run);
    ("fig6", "resilience: checkpointing and ABFT", Fig6_resilience.run);
    ("fig7", "heterogeneous workers: BSP vs DAG (extension)", Fig7_hetero.run);
    ("tab1", "autotuning the tile size", Tab1_autotune.run);
    ("tab2", "reproducible reductions", Tab2_repro.run);
    ("tab3", "strong scaling on the simulated machine", Tab3_scaling.run);
    ("tab4", "power wall and energy to solution (extension)", Tab4_energy.run);
    ("tab5", "batched small factorizations (extension)", Tab5_batched.run);
    ("tab6", "weak vs strong scaling (extension)", Tab6_weak.run);
    ("micro", "bechamel kernel microbenchmarks", Micro.run);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  match args with
  | [ "--list" ] ->
    List.iter (fun (id, desc, _) -> Printf.printf "%-6s %s\n" id desc) experiments
  | [ "--json"; file ] -> Bench_json.run ~file
  | [ "--json" ] ->
    Printf.eprintf "--json requires an output file argument\n";
    exit 1
  | [ "--smoke"; file ] -> Bench_json.smoke ~file
  | [ "--smoke" ] ->
    Printf.eprintf "--smoke requires an output file argument\n";
    exit 1
  | [ "--trace"; file ] -> Trace_run.run ~file
  | [ "--trace" ] ->
    Printf.eprintf "--trace requires an output file argument\n";
    exit 1
  | [ "--overhead" ] -> Overhead.run ~threshold:None
  | [ "--overhead"; pct ] -> (
    match float_of_string_opt pct with
    | Some t -> Overhead.run ~threshold:(Some t)
    | None ->
      Printf.eprintf "--overhead: %S is not a number\n" pct;
      exit 1)
  | [ "--serve-overhead" ] -> Overhead.run_serve ~threshold:None
  | [ "--serve-overhead"; pct ] -> (
    match float_of_string_opt pct with
    | Some t -> Overhead.run_serve ~threshold:(Some t)
    | None ->
      Printf.eprintf "--serve-overhead: %S is not a number\n" pct;
      exit 1)
  | [ "--serve"; file ] -> Serve_run.run ~file
  | [ "--serve" ] ->
    Printf.eprintf "--serve requires an output file argument\n";
    exit 1
  | [ "--serve-isolation"; file ] -> Isolation_run.run ~file
  | [ "--serve-isolation" ] ->
    Printf.eprintf "--serve-isolation requires an output file argument\n";
    exit 1
  | [ "--serve-mixed"; "--smoke"; file ] -> Mixed_run.smoke ~file
  | [ "--serve-mixed"; "--smoke" ] | [ "--serve-mixed" ] ->
    Printf.eprintf "--serve-mixed requires an output file argument\n";
    exit 1
  | [ "--serve-mixed"; file ] -> Mixed_run.run ~file
  | [ "--fleet"; "--smoke"; file ] -> Fleet_run.smoke ~file
  | [ "--fleet"; "--smoke" ] | [ "--fleet" ] ->
    Printf.eprintf "--fleet requires an output file argument\n";
    exit 1
  | [ "--fleet"; file ] -> Fleet_run.run ~file
  | [ "--faults" ] -> Faults_run.run ~seed:1
  | [ "--faults"; seed ] -> (
    match int_of_string_opt seed with
    | Some s -> Faults_run.run ~seed:s
    | None ->
      Printf.eprintf "--faults: %S is not an integer seed\n" seed;
      exit 1)
  | [] ->
    Printf.printf "reproduction benchmarks: %d experiments (see DESIGN.md)\n" (List.length experiments);
    List.iter (fun (_, _, run) -> run ()) experiments
  | ids ->
    List.iter
      (fun id ->
        match List.find_opt (fun (eid, _, _) -> eid = id) experiments with
        | Some (_, _, run) -> run ()
        | None ->
          Printf.eprintf "unknown experiment %S (use --list)\n" id;
          exit 1)
      ids
