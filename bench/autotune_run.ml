(* Autotune record for `bench --json` / `--smoke`: per-kernel default vs
   tuned GFLOP/s with each rate's achieved-vs-roof ratio on the
   workstation preset — the roofline gate of BENCH_0006.

   The tuned configs come from the persisted cache when XSC_TUNE_CACHE
   points at one (CI: the file `xsc tune --quick` just wrote), otherwise
   from an in-process search. Either way both sides are RE-measured here,
   back to back on this process's data — a stale cache cannot smuggle in
   rates measured under different conditions.

   Self-checks (hard gates, not perf archaeology): the cache named by
   XSC_TUNE_CACHE must load, and no tuned kernel may fall below its own
   freshly measured default beyond timing noise. A failed gate fails the
   smoke run. *)

module P = Xsc_linalg.Pblas
module Kconfig = Xsc_linalg.Kconfig
module KT = Xsc_autotune.Kernel_tune
module Roofline = Xsc_hpcbench.Roofline
module Node = Xsc_simmachine.Node

(* Same traffic model as Pblas's tally: gemm touches 3 tiles + c reread,
   syrk 1 tile + triangular c read/write, trsm a triangle + b twice. *)
let intensity kernel prec nb =
  let w = match prec with P.F64 -> 8.0 | P.F32 -> 4.0 in
  let f = float_of_int nb in
  let flops, words =
    match kernel with
    | P.Gemm_nn | P.Gemm_nt -> (P.gemm_flops nb, 4.0 *. f *. f)
    | P.Syrk_ln -> (P.syrk_flops nb, (f *. f) +. (f *. (f +. 1.0)))
    | P.Trsm_rlt -> (P.trsm_flops nb, (f *. (f +. 1.0) /. 2.0) +. (2.0 *. f *. f))
  in
  flops /. (w *. words)

let node_precision = function P.F64 -> Node.FP64 | P.F32 -> Node.FP32

(* Timing noise floor for the no-regression gate: the tuner's head-to-head
   already guarantees tuned <= default on its own measurements; this
   re-measurement only has to catch real inversions, not jitter. *)
let noise_floor = 0.85

let record ?(quick = true) () =
  let node = Xsc_simmachine.(Presets.workstation.Machine.node) in
  let env_path = Sys.getenv_opt "XSC_TUNE_CACHE" in
  let source, load_error, cache =
    match env_path with
    | Some path -> (
        match Kconfig.load ~path () with
        | Ok t ->
            Kconfig.apply t;
            ("cache", None, t)
        | Error e ->
            (* the gate below fails; still emit a record with in-process
               results so the artifact shows what the host can do *)
            let r = KT.tune ~quick () in
            ("in-process", Some (Kconfig.describe_error e), KT.to_cache r))
    | None ->
        let r = KT.tune ~quick () in
        ("in-process", None, KT.to_cache r)
  in
  let nb = cache.Kconfig.nb in
  let kernels =
    List.map
      (fun e ->
        let prec = e.Kconfig.prec and kernel = e.Kconfig.kernel in
        let default_gf, tuned_gf =
          KT.measure_pair ~nb prec kernel P.default_cfg e.Kconfig.cfg
        in
        (* a cache entry that kept the default measured the same kernel on
           both sides: same config, same rate (no noise-born "speedup") *)
        let default_gf, tuned_gf =
          if e.Kconfig.cfg = P.default_cfg then
            let r = max default_gf tuned_gf in
            (r, r)
          else (default_gf, tuned_gf)
        in
        let roof g =
          (Roofline.achieved_point ~precision:(node_precision prec) node
             ~kernel:(P.kernel_name kernel)
             ~intensity:(intensity kernel prec nb) ~measured:(g *. 1e9))
            .Roofline.roof_fraction
        in
        let ok = tuned_gf >= noise_floor *. default_gf in
        let mr, nr = P.shapes.(e.Kconfig.cfg.P.shape) in
        let json =
          Printf.sprintf
            "{\"prec\": \"%s\", \"kernel\": \"%s\", \"mr\": %d, \"nr\": %d, \
             \"pack\": %b, \"prefetch\": %b, \"default_gflops\": %.4f, \
             \"tuned_gflops\": %.4f, \"speedup\": %.4f, \
             \"default_roof_fraction\": %.4f, \"tuned_roof_fraction\": %.4f, \
             \"no_regression\": %b}"
            (P.prec_name prec) (P.kernel_name kernel) mr nr e.Kconfig.cfg.P.pack
            e.Kconfig.cfg.P.prefetch default_gf tuned_gf
            (if default_gf > 0.0 then tuned_gf /. default_gf else 1.0)
            (roof default_gf) (roof tuned_gf) ok
        in
        (json, ok))
      cache.Kconfig.entries
  in
  let cache_ok = load_error = None in
  let no_regression = List.for_all snd kernels in
  let ok = cache_ok && no_regression in
  if not cache_ok then
    Printf.eprintf "autotune: XSC_TUNE_CACHE did not load: %s\n"
      (Option.value ~default:"?" load_error);
  List.iter2
    (fun (_, k_ok) e ->
      if not k_ok then
        Printf.eprintf "autotune: tuned %s %s regressed below its default\n"
          (P.prec_name e.Kconfig.prec)
          (P.kernel_name e.Kconfig.kernel))
    kernels cache.Kconfig.entries;
  let json =
    Printf.sprintf
      "{\"source\": \"%s\", \"cache_loaded\": %b, \"nb\": %d, \
       \"search_seconds\": %.6f, \"host_key\": \"%s\", \"kernels\": [\n      %s\n\
      \    ], \"no_regression\": %b, \"ok\": %b}"
      source cache_ok nb cache.Kconfig.search_seconds
      (Xsc_util.Json.escape cache.Kconfig.host_key)
      (String.concat ",\n      " (List.map fst kernels))
      no_regression ok
  in
  (json, ok)
