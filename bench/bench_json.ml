(* Machine-readable benchmark mode: `bench/main.exe --json FILE` emits one
   JSON record with GEMM kernel rates (naive vs blocked vs packed-tile),
   float32-vs-float64 packed kernel rates, a measured real-f32 iterative
   refinement solve, real-domain scheduler results over the packed
   closure-free DAG (dataflow vs fork-join, with steal/park telemetry) and
   a metrics object: per-kernel achieved GFLOP/s from a traced run plus the
   full Xsc_obs.Metrics registry snapshot, and a resilience record (ABFT
   overhead vs model, seeded corruption storm — see Faults_run). This seeds
   the BENCH_*.json perf trajectory: each PR can append a record and diff
   GFLOP/s and speedups against the previous ones.

   `--smoke FILE` is the CI perf-sanity subset: one scheduler record
   (n=432, 2 workers) plus the registry, record-only — the shared CI
   container gives no stable core count, so numbers are archived, not
   gated. *)

open Xsc_linalg
module Tile = Xsc_tile.Tile
module Packed = Xsc_tile.Packed
module Cholesky = Xsc_core.Cholesky
module Ir = Xsc_precision.Ir
module Real_exec = Xsc_runtime.Real_exec
module Trace = Xsc_runtime.Trace
module Rng = Xsc_util.Rng
module Clock = Xsc_obs.Clock
module Gcstat = Xsc_obs.Gcstat
module Flight = Xsc_resilience.Flight

let time f reps =
  f ();
  (* warm-up: first call touches cold caches and packing buffers *)
  let t0 = Clock.now_s () in
  for _ = 1 to reps do
    f ()
  done;
  (Clock.now_s () -. t0) /. float_of_int reps

(* Tile size for the packed-layout records: big enough that the contiguous
   inner loops amortise the loop nest, small enough that three tiles sit in
   L2 — and it divides every benchmarked n. *)
let packed_nb = 64

let gemm_record ~n ~reps =
  let rng = Rng.create n in
  let a = Mat.random rng n n and b = Mat.random rng n n in
  let c = Mat.create n n in
  let flops = Blas.gemm_flops n n n in
  let naive = flops /. time (fun () -> Blas.gemm_unblocked ~alpha:1.0 a b ~beta:0.0 c) reps /. 1e9 in
  let blocked = flops /. time (fun () -> Blas.gemm ~alpha:1.0 a b ~beta:0.0 c) reps /. 1e9 in
  (* packed: operands already tile-major (the layout's contract is pack
     once, run many kernels), so the timed region is pure kernel *)
  let pa = Packed.D.of_mat ~nb:packed_nb a and pb = Packed.D.of_mat ~nb:packed_nb b in
  let pc = Packed.D.create ~n ~nb:packed_nb in
  let packed =
    flops /. time (fun () -> Packed.D.gemm ~alpha:1.0 pa pb ~beta:0.0 pc) reps /. 1e9
  in
  Printf.sprintf
    "{\"n\": %d, \"naive_gflops\": %.4f, \"blocked_gflops\": %.4f, \"packed_gflops\": \
     %.4f, \"speedup\": %.3f, \"packed_vs_blocked\": %.3f}"
    n naive blocked packed (blocked /. naive) (packed /. blocked)

(* Float32 vs float64 packed kernel rates: same tile algorithm, half the
   bytes per element (paper rule 4 — flops are free, bandwidth is not) and
   twice the SIMD lanes. POTRF rates time a buffer restore + factor; the
   restore is an O(n²) memcpy against the O(n³/3) factorization. The two
   precisions are timed in interleaved pairs and reported as per-run
   medians, so clock/load drift on a shared machine cancels out of the
   ratio instead of landing on whichever precision ran last. *)
let f32_record ~n ~reps =
  let nb = packed_nb in
  let rng = Rng.create 19 in
  let a = Mat.random_spd rng n in
  let potrf_flops = Cholesky.flops ~nt:(n / nb) ~nb in
  let pd0 = Packed.D.of_mat ~nb a in
  let pd = Packed.D.copy pd0 in
  let ps0 = Packed.S.of_mat ~nb a in
  let ps = Packed.S.create ~n ~nb in
  let run_d () =
    Bigarray.Array1.blit pd0.Packed.D.buf pd.Packed.D.buf;
    Packed.D.potrf pd
  in
  let run_s () =
    Bigarray.Array1.blit ps0.Packed.S.buf ps.Packed.S.buf;
    Packed.S.potrf ps
  in
  run_d ();
  run_s ();
  let runs = max 15 reps in
  let td = Array.make runs 0.0 and ts = Array.make runs 0.0 in
  for r = 0 to runs - 1 do
    let t0 = Clock.now_s () in
    run_d ();
    td.(r) <- Clock.now_s () -. t0;
    let t0 = Clock.now_s () in
    run_s ();
    ts.(r) <- Clock.now_s () -. t0
  done;
  let f64 = potrf_flops /. Xsc_util.Stats.median td /. 1e9 in
  let f32 = potrf_flops /. Xsc_util.Stats.median ts /. 1e9 in
  (* single-tile GEMM rates at the same nb, NT shape (the Cholesky update) *)
  let gnb = 128 in
  let grng = Rng.create 23 in
  let ga = Mat.random grng gnb gnb and gb = Mat.random grng gnb gnb in
  let gflops = Blas.gemm_flops gnb gnb gnb in
  let da = Packed.D.of_mat ~nb:gnb ga and db = Packed.D.of_mat ~nb:gnb gb in
  let dc = Packed.D.create ~n:gnb ~nb:gnb in
  let g64 =
    gflops
    /. time (fun () -> Pblas.D.gemm_nt ~alpha:1.0 da.Packed.D.buf 0 db.Packed.D.buf 0 dc.Packed.D.buf 0 ~nb:gnb) (8 * reps)
    /. 1e9
  in
  let sa = Packed.S.of_mat ~nb:gnb ga and sb = Packed.S.of_mat ~nb:gnb gb in
  let sc = Packed.S.create ~n:gnb ~nb:gnb in
  let g32 =
    gflops
    /. time (fun () -> Pblas.S.gemm_nt ~alpha:1.0 sa.Packed.S.buf 0 sb.Packed.S.buf 0 sc.Packed.S.buf 0 ~nb:gnb) (8 * reps)
    /. 1e9
  in
  Printf.sprintf
    "{\"n\": %d, \"nb\": %d, \"potrf_f64_gflops\": %.4f, \"potrf_f32_gflops\": %.4f, \
     \"potrf_f32_over_f64\": %.3f, \"gemm_nb\": %d, \"gemm_f64_gflops\": %.4f, \
     \"gemm_f32_gflops\": %.4f, \"gemm_f32_over_f64\": %.3f}"
    n nb f64 f32 (f32 /. f64) gnb g64 g32 (g32 /. g64)

(* Measured mixed-precision solve through the real float32 factorization:
   the accuracy story (converges to double) next to the speed story (the
   f32 rates above). *)
let ir_record ~n =
  let rng = Rng.create 29 in
  let a = Mat.random_spd rng n in
  let x_true = Vec.random rng n in
  let b = Mat.mul_vec a x_true in
  let t0 = Clock.now_s () in
  let r = Ir.chol_ir32 ~nb:packed_nb a b in
  let elapsed = Clock.now_s () -. t0 in
  let err = Vec.dist_inf r.Ir.x x_true /. Vec.norm_inf x_true in
  Printf.sprintf
    "{\"n\": %d, \"iterations\": %d, \"converged\": %b, \"backward_error\": %.3e, \
     \"forward_error\": %.3e, \"solve_s\": %.4f}"
    n r.Ir.iterations r.Ir.converged r.Ir.backward_error err elapsed

(* Scheduler comparison over the packed closure-free DAG (op-encoded tasks,
   Pblas kernels) plus one extra traced dataflow run (outside the timed
   medians, so the trace cannot perturb them) for the per-kernel achieved
   rates. The DAG shape is storage-independent, so it is built once and
   reused across runs and executors. *)
let sched_record ~nt ~nb ~workers =
  let n = nt * nb in
  let rng = Rng.create 7 in
  let a = Mat.random_spd rng n in
  let dag = Cholesky.dag_ops ~nt ~nb in
  let priority = Xsc_core.Runtime_api.critical_path_priority dag in
  let run exec =
    let p = Packed.D.of_mat ~nb a in
    let interp = Cholesky.packed_interp p in
    match exec with
    | `Seq -> Real_exec.run_sequential ~interp dag
    | `Forkjoin -> Real_exec.run_forkjoin ~interp ~workers dag
    | `Dataflow -> Real_exec.run_dataflow ~interp ~priority ~workers dag
  in
  let median exec =
    let rs = Array.init 5 (fun _ -> run exec) in
    let xs = Array.map (fun s -> s.Real_exec.elapsed) rs in
    (Xsc_util.Stats.median xs, rs.(0))
  in
  let seq_t, _ = median `Seq in
  let fj_t, _ = median `Forkjoin in
  let df_t, df = median `Dataflow in
  let attempts_per_steal =
    if df.Real_exec.steals = 0 then 0.0
    else float_of_int df.Real_exec.steal_attempts /. float_of_int df.Real_exec.steals
  in
  let sched =
    Printf.sprintf
      "{\"n\": %d, \"nb\": %d, \"workers\": %d, \"sequential_s\": %.6f, \"forkjoin_s\": \
       %.6f, \"dataflow_s\": %.6f, \"forkjoin_speedup\": %.3f, \"dataflow_speedup\": \
       %.3f, \"dataflow_over_forkjoin\": %.3f, \"seq_gflops\": %.4f, \"steals\": %d, \
       \"steal_attempts\": %d, \"attempts_per_steal\": %.1f, \"parks\": %d, \
       \"park_time_s\": %.6f}"
      n nb workers seq_t fj_t df_t (seq_t /. fj_t) (seq_t /. df_t) (fj_t /. df_t)
      (Cholesky.flops ~nt ~nb /. seq_t /. 1e9)
      df.Real_exec.steals df.Real_exec.steal_attempts attempts_per_steal
      df.Real_exec.parks df.Real_exec.park_time
  in
  let per_kernel =
    let p = Packed.D.of_mat ~nb a in
    let traced =
      Real_exec.run_dataflow ~interp:(Cholesky.packed_interp p) ~priority ~trace:true
        ~workers dag
    in
    match traced.Real_exec.trace with
    | None -> []
    | Some tr ->
      let flops_of id = dag.Xsc_runtime.Dag.tasks.(id).Xsc_runtime.Task.flops in
      List.map
        (fun (family, busy, count, rate) ->
          Printf.sprintf
            "{\"kernel\": \"%s\", \"busy_s\": %.6f, \"tasks\": %d, \"gflops\": %.4f}"
            (Xsc_util.Json.escape family) busy count (rate /. 1e9))
        (Trace.by_kernel_rates tr ~flops_of)
  in
  (sched, per_kernel)

(* Sparse kernel roofline: SpMV and SymGS rates on the 3-D stencil
   operators, with flop/byte totals read back from the [blas.*] tallies
   the Csr kernels publish — the same accounting the dense kernels use —
   so the reported intensity is the kernels' own, then judged against
   the workstation roof. Both land near 0.2 flop/byte, an order of
   magnitude below the ridge point: the bandwidth-bound regime whose
   serving-side consequences [--serve-mixed] measures. *)
let sparse_record ~n ~reps =
  let module Csr = Xsc_sparse.Csr in
  let module Stencil = Xsc_sparse.Stencil in
  let module Roofline = Xsc_hpcbench.Roofline in
  let module Metrics = Xsc_obs.Metrics in
  let node = Xsc_simmachine.(Presets.workstation.Machine.node) in
  let rows = n * n * n in
  let rng = Rng.create 41 in
  let x = Vec.random rng rows in
  let y = Vec.create rows in
  let measure name f =
    let counter key snap =
      match List.assoc_opt key snap with
      | Some (Metrics.Counter c) -> float_of_int c
      | _ -> 0.0
    in
    let before = Metrics.snapshot () in
    let t = time f reps in
    let d = Metrics.delta ~before ~after:(Metrics.snapshot ()) in
    let calls = counter ("blas." ^ name ^ ".calls") d in
    let flops = counter ("blas." ^ name ^ ".flops") d in
    let bytes = counter ("blas." ^ name ^ ".bytes") d in
    (* [time] runs warm-up + reps; per-call figures come from the tally
       itself, so the arithmetic stays honest if reps change *)
    let per_call_flops = flops /. calls in
    let intensity = flops /. bytes in
    let measured = per_call_flops /. t in
    let a = Roofline.achieved_point node ~kernel:name ~intensity ~measured in
    Printf.sprintf
      "{\"kernel\": \"%s\", \"n\": %d, \"rows\": %d, \"intensity\": %.4f, \
       \"gflops\": %.4f, \"gbytes_per_s\": %.3f, \"roof_gflops\": %.4f, \
       \"roof_fraction\": %.4f}"
      (Xsc_util.Json.escape name) n rows intensity (measured /. 1e9)
      (measured /. intensity /. 1e9)
      (a.Roofline.point.Roofline.attainable /. 1e9)
      a.Roofline.roof_fraction
  in
  let a7 = Stencil.poisson_3d n in
  let a27 = Stencil.hpcg_27pt n in
  let b = Vec.random rng rows in
  let spmv = measure "spmv" (fun () -> Csr.mul_vec_into a27 x y) in
  let symgs = measure "symgs" (fun () -> Csr.symgs_sweep a27 ~b ~x:y) in
  (* the 7-point operator under the same kernel name shows intensity is a
     property of the operator (nnz/row), not the kernel *)
  let spmv7 = measure "spmv" (fun () -> Csr.mul_vec_into a7 x y) in
  Printf.sprintf "[%s,\n    %s,\n    %s]" spmv7 spmv symgs

(* Whole-run GC figures: quick_stat deltas around the record's phases.
   The per-phase gauges ([gc.<phase>.*], published by Gcstat.phase) land
   in the registry snapshot that already ships with the record. *)
let gc_json (d : Gcstat.snap) =
  Printf.sprintf
    "{\"minor_words\": %.0f, \"promoted_words\": %.0f, \"major_words\": %.0f, \
     \"minor_collections\": %d, \"major_collections\": %d, \"compactions\": %d, \
     \"heap_words\": %d}"
    d.Gcstat.minor_words d.Gcstat.promoted_words d.Gcstat.major_words
    d.Gcstat.minor_collections d.Gcstat.major_collections d.Gcstat.compactions
    d.Gcstat.heap_words

(* A failed gate ships its post-mortem: whatever the flight ring holds
   (the serve storms tee into it) lands next to the record for CI to
   upload with the red run. *)
let gate_fail ~file what =
  let path = Filename.remove_extension file ^ "_gate_flight.bin" in
  ignore (Flight.dump ~path ~reason:("bench-gate-failure: " ^ what));
  Printf.eprintf "%s FAILED (flight dump: %s)\n" what path;
  exit 1

let write_json ~file lines =
  let json = String.concat "\n" lines in
  let oc = open_out file in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n" file;
  print_string json;
  print_newline ()

let run ~file =
  let base = Filename.remove_extension file in
  let gc0 = Gcstat.snap () in
  let gemm_sizes = [ (128, 20); (256, 5); (512, 3) ] in
  let gemms =
    Gcstat.phase "gemm" (fun () ->
        List.map (fun (n, reps) -> "    " ^ gemm_record ~n ~reps) gemm_sizes)
  in
  let f32 = Gcstat.phase "f32" (fun () -> f32_record ~n:768 ~reps:2) in
  let ir = Gcstat.phase "ir" (fun () -> ir_record ~n:256) in
  let workers = max 2 (Real_exec.default_workers ()) in
  let scheds, per_kernel =
    Gcstat.phase "sched" (fun () ->
        let s1, pk = sched_record ~nt:6 ~nb:72 ~workers in
        let s2, _ = sched_record ~nt:8 ~nb:96 ~workers in
        ([ "    " ^ s1; "    " ^ s2 ], pk))
  in
  let sparse = Gcstat.phase "sparse" (fun () -> sparse_record ~n:32 ~reps:10) in
  let resilience = Gcstat.phase "resilience" (fun () -> Faults_run.record ()) in
  let serve, serve_ok, _ =
    Gcstat.phase "serve" (fun () ->
        Serve_run.record ~flight_file:(base ^ "_flight.bin")
          ~span_trace_file:(base ^ "_trace.json") ())
  in
  let autotune, autotune_ok =
    Gcstat.phase "autotune" (fun () -> Autotune_run.record ~quick:false ())
  in
  let isolation, isolation_ok, _ =
    Gcstat.phase "isolation" (fun () -> Isolation_run.record ())
  in
  let gc = gc_json (Gcstat.delta ~before:gc0 ~after:(Gcstat.snap ())) in
  write_json ~file
    ([ "{"; "  \"gemm\": [" ]
    @ [ String.concat ",\n" gemms ]
    @ [
        "  ],";
        "  \"f32\": " ^ f32 ^ ",";
        "  \"ir\": " ^ ir ^ ",";
        "  \"sparse\": " ^ sparse ^ ",";
        "  \"autotune\": " ^ autotune ^ ",";
        "  \"resilience\": " ^ resilience ^ ",";
        "  \"serve\": " ^ serve ^ ",";
        "  \"serve_isolation\": " ^ isolation ^ ",";
        "  \"gc\": " ^ gc ^ ",";
        "  \"sched\": [";
      ]
    @ [ String.concat ",\n" scheds ]
    @ [ "  ],"; "  \"metrics\": {"; "    \"per_kernel\": [" ]
    @ [ String.concat ",\n" (List.map (fun s -> "      " ^ s) per_kernel) ]
    @ [ "    ],"; "    \"registry\": " ^ Xsc_obs.Metrics.to_json (); "  }"; "}" ]);
  (* hard-invariant gates: serve self-checks (typed rejects, storm
     reconciliation, span chains, SLO edges, flight round-trip) and the
     autotune roofline — a tuned kernel falling below its own freshly
     measured default is a dispatch bug, not a perf datum *)
  if not serve_ok then gate_fail ~file "bench: serve record self-checks";
  if not autotune_ok then gate_fail ~file "bench: autotune roofline gate";
  if not isolation_ok then gate_fail ~file "bench: serve-isolation self-checks"

(* CI perf-sanity subset: the n=432 Cholesky on 2 workers plus a reduced
   resilience record (fewer timing pairs and storm seeds), record-only. *)
let smoke ~file =
  let base = Filename.remove_extension file in
  let gc0 = Gcstat.snap () in
  let sched, _ = Gcstat.phase "sched" (fun () -> sched_record ~nt:6 ~nb:72 ~workers:2) in
  let sparse = Gcstat.phase "sparse" (fun () -> sparse_record ~n:20 ~reps:5) in
  let resilience =
    Gcstat.phase "resilience" (fun () -> Faults_run.record ~runs:3 ~storm_seeds:4 ())
  in
  let serve, serve_ok, _ =
    Gcstat.phase "serve" (fun () ->
        Serve_run.record ~nominal_count:60 ~burst_count:120 ~storm_count:40
          ~flight_file:(base ^ "_flight.bin")
          ~span_trace_file:(base ^ "_trace.json") ())
  in
  let autotune, autotune_ok =
    Gcstat.phase "autotune" (fun () -> Autotune_run.record ~quick:true ())
  in
  let gc = gc_json (Gcstat.delta ~before:gc0 ~after:(Gcstat.snap ())) in
  write_json ~file
    [
      "{";
      "  \"smoke\": true,";
      "  \"sched\": " ^ sched ^ ",";
      "  \"sparse\": " ^ sparse ^ ",";
      "  \"autotune\": " ^ autotune ^ ",";
      "  \"resilience\": " ^ resilience ^ ",";
      "  \"serve\": " ^ serve ^ ",";
      "  \"gc\": " ^ gc ^ ",";
      "  \"registry\": " ^ Xsc_obs.Metrics.to_json ();
      "}";
    ];
  (* the serve record self-checks (typed rejects at overload, storm
     reconciliation, bitwise correctness, span chains, SLO edges, flight
     round-trip) are hard invariants, not perf — gate on them even in the
     record-only smoke *)
  if not serve_ok then gate_fail ~file "smoke: serve record self-checks";
  (* likewise the autotune gates: XSC_TUNE_CACHE (when set) must load, and
     tuned kernels must not regress below their freshly measured defaults *)
  if not autotune_ok then gate_fail ~file "smoke: autotune cache/roofline gate"
