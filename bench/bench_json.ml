(* Machine-readable benchmark mode: `bench/main.exe --json FILE` emits one
   JSON record with GEMM kernel rates (naive vs blocked), real-domain
   scheduler results (dataflow vs fork-join, with steal/park telemetry) and
   a metrics object: per-kernel achieved GFLOP/s from a traced run plus the
   full Xsc_obs.Metrics registry snapshot. This seeds the BENCH_*.json perf
   trajectory: each PR can append a record and diff GFLOP/s and speedups
   against the previous ones. *)

open Xsc_linalg
module Tile = Xsc_tile.Tile
module Cholesky = Xsc_core.Cholesky
module Real_exec = Xsc_runtime.Real_exec
module Trace = Xsc_runtime.Trace
module Rng = Xsc_util.Rng
module Clock = Xsc_obs.Clock

let time f reps =
  f ();
  (* warm-up: first call touches cold caches and packing buffers *)
  let t0 = Clock.now_s () in
  for _ = 1 to reps do
    f ()
  done;
  (Clock.now_s () -. t0) /. float_of_int reps

let gemm_record ~n ~reps =
  let rng = Rng.create n in
  let a = Mat.random rng n n and b = Mat.random rng n n in
  let c = Mat.create n n in
  let flops = Blas.gemm_flops n n n in
  let naive = flops /. time (fun () -> Blas.gemm_unblocked ~alpha:1.0 a b ~beta:0.0 c) reps /. 1e9 in
  let blocked = flops /. time (fun () -> Blas.gemm ~alpha:1.0 a b ~beta:0.0 c) reps /. 1e9 in
  Printf.sprintf
    "{\"n\": %d, \"naive_gflops\": %.4f, \"blocked_gflops\": %.4f, \"speedup\": %.3f}" n
    naive blocked (blocked /. naive)

(* Scheduler comparison plus one extra traced dataflow run (outside the
   timed medians, so the trace cannot perturb them) for the per-kernel
   achieved rates. *)
let sched_record ~nt ~nb ~workers =
  let n = nt * nb in
  let rng = Rng.create 7 in
  let a = Mat.random_spd rng n in
  let run exec =
    let tiles = Tile.of_mat ~nb a in
    let dag = Cholesky.dag tiles in
    match exec with
    | `Seq -> Real_exec.run_sequential dag
    | `Forkjoin -> Real_exec.run_forkjoin ~workers dag
    | `Dataflow ->
      Real_exec.run_dataflow
        ~priority:(Xsc_core.Runtime_api.critical_path_priority dag)
        ~workers dag
  in
  let median exec =
    let rs = Array.init 5 (fun _ -> run exec) in
    let xs = Array.map (fun s -> s.Real_exec.elapsed) rs in
    (Xsc_util.Stats.median xs, rs.(0))
  in
  let seq_t, _ = median `Seq in
  let fj_t, _ = median `Forkjoin in
  let df_t, df = median `Dataflow in
  let sched =
    Printf.sprintf
      "{\"n\": %d, \"nb\": %d, \"workers\": %d, \"sequential_s\": %.6f, \"forkjoin_s\": \
       %.6f, \"dataflow_s\": %.6f, \"forkjoin_speedup\": %.3f, \"dataflow_speedup\": \
       %.3f, \"dataflow_over_forkjoin\": %.3f, \"steals\": %d, \"steal_attempts\": %d, \
       \"parks\": %d, \"park_time_s\": %.6f}"
      n nb workers seq_t fj_t df_t (seq_t /. fj_t) (seq_t /. df_t) (fj_t /. df_t)
      df.Real_exec.steals df.Real_exec.steal_attempts df.Real_exec.parks
      df.Real_exec.park_time
  in
  let per_kernel =
    let tiles = Tile.of_mat ~nb a in
    let dag = Cholesky.dag tiles in
    let traced =
      Real_exec.run_dataflow
        ~priority:(Xsc_core.Runtime_api.critical_path_priority dag)
        ~trace:true ~workers dag
    in
    match traced.Real_exec.trace with
    | None -> []
    | Some tr ->
      let flops_of id = dag.Xsc_runtime.Dag.tasks.(id).Xsc_runtime.Task.flops in
      List.map
        (fun (family, busy, count, rate) ->
          Printf.sprintf
            "{\"kernel\": \"%s\", \"busy_s\": %.6f, \"tasks\": %d, \"gflops\": %.4f}"
            (Xsc_util.Json.escape family) busy count (rate /. 1e9))
        (Trace.by_kernel_rates tr ~flops_of)
  in
  (sched, per_kernel)

let run ~file =
  let gemm_sizes = [ (128, 20); (256, 5); (512, 3) ] in
  let gemms = List.map (fun (n, reps) -> "    " ^ gemm_record ~n ~reps) gemm_sizes in
  let workers = max 2 (Real_exec.default_workers ()) in
  let sched, per_kernel = sched_record ~nt:6 ~nb:72 ~workers in
  let json =
    String.concat "\n"
      ([ "{"; "  \"gemm\": [" ]
      @ [ String.concat ",\n" gemms ]
      @ [ "  ],"; "  \"sched\": " ^ sched ^ ","; "  \"metrics\": {"; "    \"per_kernel\": [" ]
      @ [ String.concat ",\n" (List.map (fun s -> "      " ^ s) per_kernel) ]
      @ [ "    ],"; "    \"registry\": " ^ Xsc_obs.Metrics.to_json (); "  }"; "}" ])
  in
  let oc = open_out file in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n" file;
  print_string json;
  print_newline ()
