(* Serving-layer benchmark (`bench/main.exe --serve FILE`) and the serve
   record for `--json` / `--smoke`.

   Three parts, every one seeded and reproducible:

   - offered-load points: a nominal open-loop Poisson run the pool keeps up
     with, and a pre-generated burst (Loadgen.run_burst) far beyond the
     admission window, where backpressure must engage — reject rate > 0 is
     part of the record's self-check, not just a reported number.
   - a transient fault storm: every injected fault retried to success,
     zero failures, every solution bitwise-identical to the direct kernel
     call on the same seeded instance.
   - a permanent fault storm: the injected set (predicted exactly by
     Harness.targets_key, since request ids are submission-ordered) fails
     typed with retries exhausted; everything else lands bitwise-correct.

   Each part also checks the counter reconciliation invariant
   (admitted = completed + failed, offered = admitted + rejected, nothing
   left in flight). `run ~file` exits non-zero if any self-check fails, so
   the CI smoke step gates on unexplained failures for free. *)

module Server = Xsc_serve.Server
module Loadgen = Xsc_serve.Loadgen
module Request = Xsc_serve.Request
module Harness = Xsc_resilience.Harness

let reconciles srv ~offered =
  let c = Server.counters srv in
  Server.in_flight srv = 0
  && c.Server.admitted = c.Server.completed + c.Server.failed
  && offered = c.Server.admitted + c.Server.rejected

(* ---- offered-load points ---- *)

type point = { label : string; burst : bool; server : Server.config; load : Loadgen.config }

let nominal ~count =
  {
    label = "nominal";
    burst = false;
    server = { Server.default_config with workers = 2; capacity = 64 };
    load = { Loadgen.default with seed = 42; rate_hz = 300.0; count; n = 48 };
  }

(* An instantaneous burst of [count] against an 8-slot window on one
   worker: offered >> capacity by construction, so rejects are guaranteed
   on any host — the demonstrably-engaged backpressure point. *)
let overload ~count =
  {
    label = "overload";
    burst = true;
    server =
      { Server.default_config with workers = 1; capacity = 8; max_batch = 4 };
    load =
      { Loadgen.default with seed = 43; rate_hz = 1.0e6; count; n = 48; deadline_s = 1.0 };
  }

let run_point p =
  let srv = Server.start p.server in
  let r = (if p.burst then Loadgen.run_burst else Loadgen.run_open) srv p.load in
  Server.stop srv;
  let recon = reconciles srv ~offered:p.load.Loadgen.count in
  let ok =
    recon && r.Loadgen.failed = 0
    && (not p.burst || r.Loadgen.reject_rate > 0.0)
  in
  let json =
    Printf.sprintf
      "{\"label\": \"%s\", \"workers\": %d, \"capacity\": %d, \"max_batch\": %d, \
       \"n\": %d, \"burst\": %b, \"report\": %s, \"counters_reconcile\": %b}"
      p.label p.server.Server.workers p.server.Server.capacity p.server.Server.max_batch
      p.load.Loadgen.n p.burst (Loadgen.report_json r) recon
  in
  (json, ok, r)

(* ---- fault storms ---- *)

let storm_load ~count =
  { Loadgen.default with seed = 31; count; rate_hz = 5000.0; n = 10; deadline_s = 5.0 }

(* Submit the whole seeded schedule, await every ticket, and check each
   completion against the direct kernel call on the same instance. Request
   ids are assigned in submission order (0..count-1), so the harness's
   per-key decision predicts exactly which requests were injected. *)
let run_storm ~transient ~count =
  let cfg = storm_load ~count in
  let h = Harness.create { Harness.default with seed = 9; p_raise = 0.25; transient } in
  let max_retries = if transient then 4 else 2 in
  let srv =
    Server.start ~harness:h
      { Server.default_config with workers = 2; capacity = 2 * count; max_retries }
  in
  let arrivals = Loadgen.schedule cfg in
  let tickets =
    Array.map
      (fun a ->
        match Server.submit srv ~deadline_s:cfg.Loadgen.deadline_s (Loadgen.payload_of cfg a) with
        | Ok tk -> tk
        | Error e -> failwith ("storm submit rejected: " ^ Request.error_message e))
      arrivals
  in
  let completions = Array.map (Server.await srv) tickets in
  Server.stop srv;
  let injected_requests = ref 0
  and typed_failures = ref 0
  and wrong = ref 0
  and completed = ref 0
  and retried = ref 0 in
  Array.iteri
    (fun i c ->
      retried := !retried + c.Request.retries;
      let should_fail = (not transient) && Harness.targets_key h i in
      if should_fail then incr injected_requests;
      match c.Request.outcome with
      | Ok sol ->
        incr completed;
        if should_fail
           || not (Loadgen.solutions_bitwise_equal sol (Loadgen.reference cfg arrivals.(i)))
        then incr wrong
      | Error (Request.Failed { attempts; _ }) ->
        incr typed_failures;
        if (not should_fail) || attempts <> max_retries + 1 then incr wrong
      | Error _ -> incr wrong)
    completions;
  let recon = reconciles srv ~offered:count in
  let ok =
    recon && !wrong = 0 && Harness.raised h > 0
    && (if transient then !typed_failures = 0 && !retried = Harness.raised h
        else !injected_requests > 0 && !typed_failures = !injected_requests)
  in
  let json =
    Printf.sprintf
      "{\"mode\": \"%s\", \"count\": %d, \"p_raise\": 0.25, \"seed\": 9, \
       \"max_retries\": %d, \"injected_raises\": %d, \"injected_requests\": %d, \
       \"completed\": %d, \"typed_failures\": %d, \"retried\": %d, \
       \"mismatches\": %d, \"counters_reconcile\": %b}"
      (if transient then "transient" else "permanent")
      count max_retries (Harness.raised h) !injected_requests !completed !typed_failures
      !retried !wrong recon
  in
  (json, ok)

(* ---- the record ---- *)

let record ?(nominal_count = 150) ?(burst_count = 240) ?(storm_count = 80) () =
  let pts = [ nominal ~count:nominal_count; overload ~count:burst_count ] in
  let loads = List.map run_point pts in
  let st_json, st_ok = run_storm ~transient:true ~count:storm_count in
  let sp_json, sp_ok = run_storm ~transient:false ~count:storm_count in
  let ok = List.for_all (fun (_, ok, _) -> ok) loads && st_ok && sp_ok in
  let json =
    Printf.sprintf
      "{\"loads\": [%s],\n\
      \    \"storm_transient\": %s,\n\
      \    \"storm_permanent\": %s,\n\
      \    \"checks_passed\": %b}"
      (String.concat ",\n    " (List.map (fun (j, _, _) -> j) loads))
      st_json sp_json ok
  in
  (json, ok, List.map (fun (_, _, r) -> r) loads)

let run ~file =
  let json, ok, reports = record () in
  let oc = open_out file in
  output_string oc ("{\n  \"serve\": " ^ json ^ "\n}\n");
  close_out oc;
  Printf.printf "wrote %s\n" file;
  List.iter2
    (fun label r -> Printf.printf "-- %s --\n%s\n" label (Loadgen.report_human r))
    [ "nominal (open loop, 300 req/s)"; "overload (burst vs 8-slot window)" ]
    reports;
  if not ok then begin
    Printf.eprintf "serve record self-checks FAILED (see %s)\n" file;
    exit 1
  end;
  print_endline "serve record self-checks passed"
