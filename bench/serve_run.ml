(* Serving-layer benchmark (`bench/main.exe --serve FILE`) and the serve
   record for `--json` / `--smoke`.

   Three parts, every one seeded and reproducible:

   - offered-load points: a nominal open-loop Poisson run the pool keeps up
     with, and a pre-generated burst (Loadgen.run_burst) far beyond the
     admission window, where backpressure must engage — reject rate > 0 is
     part of the record's self-check, not just a reported number.
   - a transient fault storm: every injected fault retried to success,
     zero failures, every solution bitwise-identical to the direct kernel
     call on the same seeded instance.
   - a permanent fault storm: the injected set (predicted exactly by
     Harness.targets_key, since request ids are submission-ordered) fails
     typed with retries exhausted; everything else lands bitwise-correct.

   Every part also self-checks the new observability plumbing: the counter
   reconciliation invariant (admitted = completed + failed, offered =
   admitted + rejected, nothing left in flight), the causal span tree
   (every completion has exactly one root span and one attempt span per
   execution — retries and EDF/batcher reordering included — with zero
   collector drops), and per-class SLO burn rates (the permanent storm
   must breach, the clean parts must not). The permanent storm arms the
   flight recorder and round-trips the dump through Flight.read, checking
   the CRC and that a failed request's full span chain survived.
   `run ~file` exits non-zero if any self-check fails, so the CI smoke
   step gates on unexplained failures for free. *)

module Server = Xsc_serve.Server
module Loadgen = Xsc_serve.Loadgen
module Request = Xsc_serve.Request
module Slo = Xsc_serve.Slo
module Harness = Xsc_resilience.Harness
module Flight = Xsc_resilience.Flight
module Span = Xsc_obs.Span
module Metrics = Xsc_obs.Metrics

let reconciles srv ~offered =
  let c = Server.counters srv in
  Server.in_flight srv = 0
  && c.Server.admitted = c.Server.completed + c.Server.failed
  && offered = c.Server.admitted + c.Server.rejected

(* Per-part metrics figures via the snapshot/delta helper — one call
   around each part replaces the ad-hoc before/after counter reads. *)
let metrics_delta_json before =
  let d = Metrics.delta ~before ~after:(Metrics.snapshot ()) in
  let counter name =
    match List.assoc_opt name d with Some (Metrics.Counter n) -> n | _ -> 0
  in
  let alloc =
    match List.assoc_opt "serve.alloc_minor_words_per_req" d with
    | Some (Metrics.Histogram h) when h.Metrics.count > 0 ->
      h.Metrics.sum /. float_of_int h.Metrics.count
    | _ -> 0.0
  in
  Printf.sprintf
    "{\"completed\": %d, \"retried\": %d, \"batches\": %d, \
     \"trace_dropped\": %d, \"span_dropped\": %d, \
     \"alloc_minor_words_per_req\": %.1f}"
    (counter "serve.completed") (counter "serve.retried")
    (counter "serve.batches")
    (counter "obs.trace.dropped")
    (counter "obs.span.dropped")
    alloc

let slo_json srv =
  match Server.slo_report_json srv with Some j -> j | None -> "null"

(* Completion-independent span invariant (load points hand back aggregate
   reports, not completions): every resolved request left exactly one root
   span, and the bounded collector shed nothing. *)
let span_roots_ok srv =
  let c = Server.counters srv in
  let roots =
    List.length
      (List.filter (fun s -> s.Span.phase = "request") (Server.span_records srv))
  in
  Server.span_dropped srv = 0 && roots = c.Server.completed + c.Server.failed

(* Per-completion span invariant for the storms, where we hold every
   completion: request id [i] owns exactly one root and one wait span, and
   exactly one attempt span per execution with attempt numbers 0..k-1 —
   i.e. the id survived batcher coalescing, EDF reordering and transient
   re-execution, and each attempt appears exactly once. *)
let span_chains_ok srv completions =
  let by_key = Hashtbl.create 512 in
  List.iter
    (fun s -> Hashtbl.add by_key (s.Span.request, s.Span.phase) s)
    (Server.span_records srv);
  let chain_ok i (c : Request.completion) =
    let executions =
      match c.Request.outcome with
      | Error (Request.Failed { attempts; _ }) -> attempts
      | _ -> c.Request.retries + 1
    in
    let atts = Hashtbl.find_all by_key (i, "attempt") in
    let attempt_nos =
      List.sort_uniq compare (List.map (fun s -> s.Span.attempt) atts)
    in
    List.length (Hashtbl.find_all by_key (i, "request")) = 1
    && List.length (Hashtbl.find_all by_key (i, "wait")) = 1
    && List.length atts = executions
    && attempt_nos = List.init executions Fun.id
  in
  Server.span_dropped srv = 0
  && Array.for_all Fun.id (Array.mapi chain_ok completions)

(* ---- offered-load points ---- *)

type point = { label : string; burst : bool; server : Server.config; load : Loadgen.config }

(* One catch-all SLO on the clean points: target = the load's deadline, a
   10% budget. Both points must finish with the monitor unbreached (the
   overload point sheds by typed reject, which is not an SLO violation —
   rejected requests are never admitted, so never observed). *)
let point_slos deadline_s =
  [ { Slo.kind = "*"; latency_s = deadline_s; error_budget = 0.1 } ]

let nominal ~count =
  let load = { Loadgen.default with seed = 42; rate_hz = 300.0; count; n = 48 } in
  {
    label = "nominal";
    burst = false;
    server =
      { Server.default_config with
        workers = 2;
        capacity = 64;
        slos = point_slos load.Loadgen.deadline_s;
      };
    load;
  }

(* An instantaneous burst of [count] against an 8-slot window on one
   worker: offered >> capacity by construction, so rejects are guaranteed
   on any host — the demonstrably-engaged backpressure point. *)
let overload ~count =
  let load =
    { Loadgen.default with seed = 43; rate_hz = 1.0e6; count; n = 48; deadline_s = 1.0 }
  in
  {
    label = "overload";
    burst = true;
    server =
      { Server.default_config with
        workers = 1;
        capacity = 8;
        max_batch = 4;
        slos = point_slos load.Loadgen.deadline_s;
      };
    load;
  }

let run_point p =
  let before = Metrics.snapshot () in
  let srv = Server.start p.server in
  let r = (if p.burst then Loadgen.run_burst else Loadgen.run_open) srv p.load in
  Server.stop srv;
  let recon = reconciles srv ~offered:p.load.Loadgen.count in
  let spans_ok = span_roots_ok srv in
  let ok =
    recon && spans_ok && r.Loadgen.failed = 0
    && (not (Server.slo_breached srv))
    && (not p.burst || r.Loadgen.reject_rate > 0.0)
  in
  let json =
    Printf.sprintf
      "{\"label\": \"%s\", \"workers\": %d, \"capacity\": %d, \"max_batch\": %d, \
       \"n\": %d, \"burst\": %b, \"report\": %s, \"counters_reconcile\": %b, \
       \"spans_ok\": %b, \"slo\": %s, \"metrics\": %s}"
      p.label p.server.Server.workers p.server.Server.capacity p.server.Server.max_batch
      p.load.Loadgen.n p.burst (Loadgen.report_json r) recon spans_ok (slo_json srv)
      (metrics_delta_json before)
  in
  (json, ok, r, srv)

(* ---- fault storms ---- *)

let storm_load ~count =
  { Loadgen.default with seed = 31; count; rate_hz = 5000.0; n = 10; deadline_s = 5.0 }

(* Round-trip the permanent storm's flight dump: the file must CRC-verify
   through the typed loader, and the failing request's whole span chain —
   root, every exhausted attempt, and the injected-fault markers recorded
   under the attempts' ambient context — must be among the survivors. *)
let flight_ok ~path ~max_retries completions =
  let fail_id =
    Array.to_list completions
    |> List.mapi (fun i c -> (i, c))
    |> List.find_map (fun (i, c) ->
           match c.Request.outcome with
           | Error (Request.Failed _) -> Some i
           | _ -> None)
  in
  match (fail_id, Flight.read path) with
  | None, _ | _, Error _ -> false
  | Some id, Ok d ->
    let mine =
      Array.to_list d.Flight.entries
      |> List.filter (fun (e : Flight.entry) -> e.Flight.request = id)
    in
    let count phase =
      List.length (List.filter (fun (e : Flight.entry) -> e.Flight.phase = phase) mine)
    in
    count "request" = 1
    && count "attempt" = max_retries + 1
    && count "inject" = max_retries + 1

(* Submit the whole seeded schedule, await every ticket, and check each
   completion against the direct kernel call on the same instance. Request
   ids are assigned in submission order (0..count-1), so the harness's
   per-key decision predicts exactly which requests were injected. *)
let run_storm ~transient ~count ?flight_path () =
  let before = Metrics.snapshot () in
  let cfg = storm_load ~count in
  let h = Harness.create { Harness.default with seed = 9; p_raise = 0.25; transient } in
  let max_retries = if transient then 4 else 2 in
  (* A tight 1% error budget: the clean transient storm must never breach
     it; the permanent storm must (its typed failures are violations),
     tripping the breach-edge flight dump on the way. *)
  let slos = [ { Slo.kind = "*"; latency_s = cfg.Loadgen.deadline_s; error_budget = 0.01 } ] in
  (match flight_path with
  | Some _ ->
    Flight.clear ();
    Flight.reset_dump_guard ()
  | None -> ());
  let srv =
    Server.start ~harness:h
      { Server.default_config with
        workers = 2;
        capacity = 2 * count;
        max_retries;
        slos;
        flight_path;
      }
  in
  let arrivals = Loadgen.schedule cfg in
  let tickets =
    Array.map
      (fun a ->
        match Server.submit srv ~deadline_s:cfg.Loadgen.deadline_s (Loadgen.payload_of cfg a) with
        | Ok tk -> tk
        | Error e -> failwith ("storm submit rejected: " ^ Request.error_message e))
      arrivals
  in
  let completions = Array.map (Server.await srv) tickets in
  Server.stop srv;
  let injected_requests = ref 0
  and typed_failures = ref 0
  and wrong = ref 0
  and completed = ref 0
  and retried = ref 0 in
  Array.iteri
    (fun i c ->
      retried := !retried + c.Request.retries;
      let should_fail = (not transient) && Harness.targets_key h i in
      if should_fail then incr injected_requests;
      match c.Request.outcome with
      | Ok sol ->
        incr completed;
        if should_fail
           || not (Loadgen.solutions_bitwise_equal sol (Loadgen.reference cfg arrivals.(i)))
        then incr wrong
      | Error (Request.Failed { attempts; _ }) ->
        incr typed_failures;
        if (not should_fail) || attempts <> max_retries + 1 then incr wrong
      | Error _ -> incr wrong)
    completions;
  let recon = reconciles srv ~offered:count in
  let spans_ok = span_chains_ok srv completions in
  let slo_ok = Server.slo_breached srv = not transient in
  let fl_ok =
    match flight_path with
    | None -> true
    | Some path -> flight_ok ~path ~max_retries completions
  in
  let ok =
    recon && spans_ok && slo_ok && fl_ok && !wrong = 0 && Harness.raised h > 0
    && (if transient then !typed_failures = 0 && !retried = Harness.raised h
        else !injected_requests > 0 && !typed_failures = !injected_requests)
  in
  let json =
    Printf.sprintf
      "{\"mode\": \"%s\", \"count\": %d, \"p_raise\": 0.25, \"seed\": 9, \
       \"max_retries\": %d, \"injected_raises\": %d, \"injected_requests\": %d, \
       \"completed\": %d, \"typed_failures\": %d, \"retried\": %d, \
       \"mismatches\": %d, \"counters_reconcile\": %b, \"spans_ok\": %b, \
       \"slo_breached_as_expected\": %b, \"flight_roundtrip_ok\": %b, \
       \"slo\": %s, \"metrics\": %s}"
      (if transient then "transient" else "permanent")
      count max_retries (Harness.raised h) !injected_requests !completed !typed_failures
      !retried !wrong recon spans_ok slo_ok fl_ok (slo_json srv)
      (metrics_delta_json before)
  in
  (json, ok)

(* ---- the record ---- *)

let default_flight_file =
  Filename.concat (Filename.get_temp_dir_name ()) "xsc_serve_flight.bin"

let record ?(nominal_count = 150) ?(burst_count = 240) ?(storm_count = 80)
    ?(flight_file = default_flight_file) ?span_trace_file () =
  let pts = [ nominal ~count:nominal_count; overload ~count:burst_count ] in
  let loads = List.map run_point pts in
  (* Per-request span lanes of the nominal point, exported as a standalone
     Chrome trace (pid 1, one tid per request, retries inlined). *)
  (match (span_trace_file, loads) with
  | Some path, (_, _, _, srv) :: _ ->
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc (Server.span_chrome_json srv))
  | _ -> ());
  let st_json, st_ok = run_storm ~transient:true ~count:storm_count () in
  let sp_json, sp_ok =
    run_storm ~transient:false ~count:storm_count ~flight_path:flight_file ()
  in
  let ok = List.for_all (fun (_, ok, _, _) -> ok) loads && st_ok && sp_ok in
  let json =
    Printf.sprintf
      "{\"loads\": [%s],\n\
      \    \"storm_transient\": %s,\n\
      \    \"storm_permanent\": %s,\n\
      \    \"flight_file\": \"%s\",\n\
      \    \"checks_passed\": %b}"
      (String.concat ",\n    " (List.map (fun (j, _, _, _) -> j) loads))
      st_json sp_json (String.escaped flight_file) ok
  in
  (json, ok, List.map (fun (_, _, r, _) -> r) loads)

let run ~file =
  let base = Filename.remove_extension file in
  let flight_file = base ^ "_flight.bin" in
  let span_trace_file = base ^ "_trace.json" in
  let json, ok, reports = record ~flight_file ~span_trace_file () in
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc ("{\n  \"serve\": " ^ json ^ "\n}\n"));
  Printf.printf "wrote %s (span lanes: %s, flight dump: %s)\n" file span_trace_file
    flight_file;
  List.iter2
    (fun label r -> Printf.printf "-- %s --\n%s\n" label (Loadgen.report_human r))
    [ "nominal (open loop, 300 req/s)"; "overload (burst vs 8-slot window)" ]
    reports;
  if not ok then begin
    (* Gate failing: dump whatever the flight ring still holds next to the
       record so the post-mortem ships with the red CI run. *)
    ignore (Flight.dump ~path:(base ^ "_gate_flight.bin") ~reason:"bench-serve-gate-failure");
    Printf.eprintf "serve record self-checks FAILED (see %s)\n" file;
    exit 1
  end;
  print_endline "serve record self-checks passed"
