(* `bench/main.exe -- --overhead [PCT]`: measure what tracing costs on the
   scheduler smoke (6x6 tiles of 72, dataflow executor). Runs the same
   Cholesky with tracing off and on, median of 7 each, and prints the
   relative difference; with a PCT argument, exits 1 when the overhead
   exceeds it — the CI regression gate for the "tracing must stay cheap"
   budget.

   `--serve-overhead [PCT]` is the same discipline for causal spans on the
   serving path: a saturated closed-loop run with spans off vs on,
   interleaved A/B pairs so drift hits both arms equally, gated on median
   goodput loss. *)

open Xsc_linalg
module Tile = Xsc_tile.Tile
module Cholesky = Xsc_core.Cholesky
module Real_exec = Xsc_runtime.Real_exec
module Server = Xsc_serve.Server
module Loadgen = Xsc_serve.Loadgen
module Metrics = Xsc_obs.Metrics

let median_elapsed ~trace ~workers ~nt ~nb ~reps =
  let n = nt * nb in
  let rng = Xsc_util.Rng.create 7 in
  let a = Mat.random_spd rng n in
  let once () =
    let tiles = Tile.of_mat ~nb a in
    let dag = Cholesky.dag tiles in
    let s =
      Real_exec.run_dataflow
        ~priority:(Xsc_core.Runtime_api.critical_path_priority dag)
        ~trace ~workers dag
    in
    s.Real_exec.elapsed
  in
  ignore (once ());
  (* warm-up *)
  Xsc_util.Stats.median (Array.init reps (fun _ -> once ()))

let run ~threshold =
  let workers = max 2 (Real_exec.default_workers ()) in
  let nt = 6 and nb = 72 and reps = 7 in
  let off = median_elapsed ~trace:false ~workers ~nt ~nb ~reps in
  let on = median_elapsed ~trace:true ~workers ~nt ~nb ~reps in
  let pct = (on -. off) /. off *. 100.0 in
  Printf.printf "sched smoke (%d workers, median of %d):\n" workers reps;
  Printf.printf "  tracing off  %.6f s\n" off;
  Printf.printf "  tracing on   %.6f s\n" on;
  Printf.printf "  overhead     %+.2f%%\n" pct;
  match threshold with
  | None -> ()
  | Some t ->
    if pct > t then begin
      Printf.eprintf "tracing overhead %.2f%% exceeds the %.2f%% budget\n" pct t;
      exit 1
    end

(* ---- spans-on serving overhead ---- *)

(* One saturated closed-loop arm: back-to-back arrivals, 16 outstanding
   against a 2-worker pool, so goodput is service-rate-bound and any span
   bookkeeping on the hot path shows up directly. *)
let serve_goodput ~spans ~count =
  let srv =
    Server.start { Server.default_config with workers = 2; capacity = 32; spans }
  in
  let load =
    { Loadgen.default with seed = 77; rate_hz = 1.0e6; count; n = 32; deadline_s = 5.0 }
  in
  let r = Loadgen.run_closed srv ~outstanding:16 load in
  Server.stop srv;
  if r.Loadgen.failed > 0 || r.Loadgen.rejected > 0 then
    failwith "serve overhead: unexpected failures/rejects in A/B arm";
  r.Loadgen.goodput

let run_serve ~threshold =
  let pairs = 5 and count = 256 in
  ignore (serve_goodput ~spans:false ~count);
  (* warm-up *)
  let off = Array.make pairs 0.0 and on = Array.make pairs 0.0 in
  let before = Metrics.snapshot () in
  (* Interleaved A/B: each pair runs both arms back to back, so thermal or
     scheduling drift across the measurement hits both arms equally. *)
  for i = 0 to pairs - 1 do
    off.(i) <- serve_goodput ~spans:false ~count;
    on.(i) <- serve_goodput ~spans:true ~count
  done;
  let d = Metrics.delta ~before ~after:(Metrics.snapshot ()) in
  let dropped =
    match List.assoc_opt "obs.span.dropped" d with
    | Some (Metrics.Counter n) -> n
    | _ -> 0
  in
  let m_off = Xsc_util.Stats.median off and m_on = Xsc_util.Stats.median on in
  let loss = (m_off -. m_on) /. m_off *. 100.0 in
  Printf.printf "serve smoke (closed loop, 16 outstanding, %d pairs of %d):\n"
    pairs count;
  Printf.printf "  spans off    %.1f req/s\n" m_off;
  Printf.printf "  spans on     %.1f req/s\n" m_on;
  Printf.printf "  goodput loss %+.2f%%  (span records dropped: %d)\n" loss dropped;
  match threshold with
  | None -> ()
  | Some t ->
    if loss > t then begin
      Printf.eprintf "spans-on goodput loss %.2f%% exceeds the %.2f%% budget\n" loss t;
      exit 1
    end
