(* `bench/main.exe -- --overhead [PCT]`: measure what tracing costs on the
   scheduler smoke (6x6 tiles of 72, dataflow executor). Runs the same
   Cholesky with tracing off and on, median of 7 each, and prints the
   relative difference; with a PCT argument, exits 1 when the overhead
   exceeds it — the CI regression gate for the "tracing must stay cheap"
   budget. *)

open Xsc_linalg
module Tile = Xsc_tile.Tile
module Cholesky = Xsc_core.Cholesky
module Real_exec = Xsc_runtime.Real_exec

let median_elapsed ~trace ~workers ~nt ~nb ~reps =
  let n = nt * nb in
  let rng = Xsc_util.Rng.create 7 in
  let a = Mat.random_spd rng n in
  let once () =
    let tiles = Tile.of_mat ~nb a in
    let dag = Cholesky.dag tiles in
    let s =
      Real_exec.run_dataflow
        ~priority:(Xsc_core.Runtime_api.critical_path_priority dag)
        ~trace ~workers dag
    in
    s.Real_exec.elapsed
  in
  ignore (once ());
  (* warm-up *)
  Xsc_util.Stats.median (Array.init reps (fun _ -> once ()))

let run ~threshold =
  let workers = max 2 (Real_exec.default_workers ()) in
  let nt = 6 and nb = 72 and reps = 7 in
  let off = median_elapsed ~trace:false ~workers ~nt ~nb ~reps in
  let on = median_elapsed ~trace:true ~workers ~nt ~nb ~reps in
  let pct = (on -. off) /. off *. 100.0 in
  Printf.printf "sched smoke (%d workers, median of %d):\n" workers reps;
  Printf.printf "  tracing off  %.6f s\n" off;
  Printf.printf "  tracing on   %.6f s\n" on;
  Printf.printf "  overhead     %+.2f%%\n" pct;
  match threshold with
  | None -> ()
  | Some t ->
    if pct > t then begin
      Printf.eprintf "tracing overhead %.2f%% exceeds the %.2f%% budget\n" pct t;
      exit 1
    end
