type 'a evaluation = { candidate : 'a; cost : float }

let best_of evals =
  match evals with
  | [] -> invalid_arg "Search: empty evaluation list"
  | first :: rest ->
    List.fold_left (fun acc e -> if e.cost < acc.cost then e else acc) first rest

let grid ~candidates ~f =
  if candidates = [] then invalid_arg "Search.grid: no candidates";
  let evals = List.map (fun c -> { candidate = c; cost = f c }) candidates in
  (evals, best_of evals)

let hill_climb ?(max_steps = 100) ~neighbours ~start f =
  let rec go current steps =
    if steps >= max_steps then current
    else begin
      let options = List.map (fun c -> { candidate = c; cost = f c }) (neighbours current.candidate) in
      match options with
      | [] -> current
      | _ ->
        let best = best_of options in
        if best.cost < current.cost then go best (steps + 1) else current
    end
  in
  go { candidate = start; cost = f start } 0

let simulated_annealing ?(steps = 200) ?temperature ?(cooling = 0.95) ~seed ~neighbours
    ~start f =
  if steps <= 0 then invalid_arg "Search.simulated_annealing: steps must be positive";
  if cooling <= 0.0 || cooling >= 1.0 then
    invalid_arg "Search.simulated_annealing: cooling must be in (0, 1)";
  let rng = Xsc_util.Rng.create seed in
  let start_cost = f start in
  let temp = ref (match temperature with Some t -> t | None -> max 1e-12 (abs_float start_cost)) in
  let current = ref { candidate = start; cost = start_cost } in
  let best = ref !current in
  for _ = 1 to steps do
    (match neighbours !current.candidate with
    | [] -> ()
    | options ->
      (* array-indexed pick: List.nth here was O(n) per step, quadratic
         over large neighbour lists *)
      let options = Array.of_list options in
      let pick = options.(Xsc_util.Rng.int rng (Array.length options)) in
      let cost = f pick in
      let delta = cost -. !current.cost in
      let accept =
        delta <= 0.0
        || (!temp > 0.0 && Xsc_util.Rng.uniform rng < exp (-.delta /. !temp))
      in
      if accept then current := { candidate = pick; cost };
      if cost < !best.cost then best := { candidate = pick; cost });
    temp := !temp *. cooling
  done;
  !best

let successive_halving ?(eta = 2) ~candidates ~budget0 f =
  if eta < 2 then invalid_arg "Search.successive_halving: eta must be >= 2";
  if candidates = [] then invalid_arg "Search.successive_halving: no candidates";
  if budget0 <= 0 then invalid_arg "Search.successive_halving: budget must be positive";
  let rec round pool budget =
    let evals = List.map (fun c -> { candidate = c; cost = f c ~budget }) pool in
    match evals with
    | [ only ] -> only
    | _ ->
      let sorted = List.sort (fun a b -> compare a.cost b.cost) evals in
      let keep = max 1 (List.length sorted / eta) in
      let survivors = List.filteri (fun i _ -> i < keep) sorted in
      if List.length survivors = 1 then List.hd survivors
      else round (List.map (fun e -> e.candidate) survivors) (budget * eta)
  in
  round candidates budget0
