(** Measurement-driven kernel tuning.

    Wraps monotonic-clock measurement ({!Xsc_obs.Clock}, immune to
    wall-clock jumps) with warmup and median-of-repeats so the search
    strategies in {!Search} can optimise over real kernel timings
    (e.g. the tile size of the tiled Cholesky — TAB-1). *)

type measurement = {
  param : int;
  seconds : float;  (** median elapsed time *)
  rate : float;  (** flops / seconds, 0 when flops unknown *)
}

val time_thunk : ?warmup:int -> ?repeats:int -> (unit -> unit) -> float
(** Median monotonic-clock seconds over [repeats] runs (default 3) after
    [warmup] discarded runs (default 1). *)

val sweep :
  ?warmup:int -> ?repeats:int -> candidates:int list -> flops:(int -> float) ->
  bench:(int -> unit -> unit) -> unit -> measurement list * measurement
(** Measure [bench p] for every candidate parameter; returns all
    measurements and the fastest. [bench p] should return a thunk with setup
    already done so only the kernel is timed. *)
