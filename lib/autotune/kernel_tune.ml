open Bigarray
module P = Xsc_linalg.Pblas
module Kconfig = Xsc_linalg.Kconfig
module Rng = Xsc_util.Rng

type tuned = {
  prec : P.prec;
  kernel : P.kernel;
  cfg : P.kcfg;
  default_gflops : float;
  tuned_gflops : float;
}

type report = {
  host : string;
  host_key : string;
  nb : int;
  search_seconds : float;
  evaluations : int;
  tuned : tuned list;
}

(* ---- candidate spaces ---- *)

let shape_id (mr, nr) =
  let found = ref (-1) in
  Array.iteri (fun i s -> if s = (mr, nr) then found := i) P.shapes;
  if !found < 0 then invalid_arg "Kernel_tune: shape not compiled in";
  !found

let all_shape_ids () = List.init (Array.length P.shapes) Fun.id

(* quick mode: one narrow-chain, one square, one row-heavy shape — enough
   to exercise dispatch end to end in CI without a full search *)
let quick_shape_ids () = List.map shape_id [ (1, 32); (4, 8); (8, 8) ]

(* syrk only uses the WIDTH of its shape; searching (mr>1) shapes would
   time duplicates of the 1 x nr variants *)
let width_shape_ids () = List.map shape_id [ (1, 8); (1, 16); (1, 32) ]

let product shapes packs prefetches =
  List.concat_map
    (fun shape ->
      List.concat_map
        (fun pack ->
          List.map
            (fun prefetch -> { P.shape; pack; prefetch })
            prefetches)
        packs)
    shapes

let candidates ~quick kernel =
  let shapes = if quick then quick_shape_ids () else all_shape_ids () in
  let prefetches = if quick then [ false ] else [ false; true ] in
  match kernel with
  | P.Gemm_nn -> product shapes [ true ] prefetches
  | P.Gemm_nt -> product shapes [ true; false ] prefetches
  | P.Syrk_ln ->
      let widths =
        if quick then List.map shape_id [ (1, 32); (1, 8) ]
        else width_shape_ids ()
      in
      product widths [ true; false ] prefetches
  | P.Trsm_rlt ->
      [ { P.default_cfg with pack = true }; { P.default_cfg with pack = false } ]

(* ---- measurement harness ----

   One heap-allocated tile per operand, filled with seeded uniforms so
   every candidate times the same data. The gemm/syrk thunks accumulate
   into c across repeats (values grow linearly — no overflow, no
   denormals); trsm restores b from a pristine copy before every solve so
   repeated in-place solves cannot drift toward denormal operands, at an
   identical per-candidate blit cost. The trsm matrix gets a dominant
   diagonal (= nb) to keep solutions O(1). *)

let flops_of kernel nb =
  match kernel with
  | P.Gemm_nn | P.Gemm_nt -> P.gemm_flops nb
  | P.Syrk_ln -> P.syrk_flops nb
  | P.Trsm_rlt -> P.trsm_flops nb

let thunk_f64 rng kernel nb =
  let n2 = nb * nb in
  let mk () =
    let buf = Array1.create float64 c_layout n2 in
    for i = 0 to n2 - 1 do
      buf.{i} <- Rng.uniform rng
    done;
    buf
  in
  match kernel with
  | P.Gemm_nn ->
      let a = mk () and b = mk () and c = mk () in
      fun () -> P.D.gemm_nn ~alpha:(-1.0) a 0 b 0 c 0 ~nb
  | P.Gemm_nt ->
      let a = mk () and b = mk () and c = mk () in
      fun () -> P.D.gemm_nt ~alpha:(-1.0) a 0 b 0 c 0 ~nb
  | P.Syrk_ln ->
      let a = mk () and c = mk () in
      fun () -> P.D.syrk_ln ~alpha:1.0 a 0 ~beta:0.5 c 0 ~nb
  | P.Trsm_rlt ->
      let a = mk () and b0 = mk () in
      let b = Array1.create float64 c_layout n2 in
      for j = 0 to nb - 1 do
        a.{(j * nb) + j} <- float_of_int nb
      done;
      fun () ->
        Array1.blit b0 b;
        P.D.trsm_rlt a 0 b 0 ~nb

let thunk_f32 rng kernel nb =
  let n2 = nb * nb in
  let mk () =
    let buf = Array1.create float32 c_layout n2 in
    for i = 0 to n2 - 1 do
      buf.{i} <- Rng.uniform rng
    done;
    buf
  in
  match kernel with
  | P.Gemm_nn ->
      let a = mk () and b = mk () and c = mk () in
      fun () -> P.S.gemm_nn ~alpha:(-1.0) a 0 b 0 c 0 ~nb
  | P.Gemm_nt ->
      let a = mk () and b = mk () and c = mk () in
      fun () -> P.S.gemm_nt ~alpha:(-1.0) a 0 b 0 c 0 ~nb
  | P.Syrk_ln ->
      let a = mk () and c = mk () in
      fun () -> P.S.syrk_ln ~alpha:1.0 a 0 ~beta:0.5 c 0 ~nb
  | P.Trsm_rlt ->
      let a = mk () and b0 = mk () in
      let b = Array1.create float32 c_layout n2 in
      for j = 0 to nb - 1 do
        a.{(j * nb) + j} <- float_of_int nb
      done;
      fun () ->
        Array1.blit b0 b;
        P.S.trsm_rlt a 0 b 0 ~nb

let make_thunk rng prec kernel nb =
  match prec with
  | P.F64 -> thunk_f64 rng kernel nb
  | P.F32 -> thunk_f32 rng kernel nb

(* Paired comparison of two configs of the SAME kernel: samples alternate
   a/b/a/b and each side takes its own median, so the slow clock and load
   drift of a shared host lands on both configs equally and cancels out of
   the comparison — the same interleaving trick the f32-vs-f64 bench uses.
   Each sample is a calibrated batch of calls (targeting ~0.3 ms) so a
   single timer read never times just a few microseconds of kernel. *)
let measure_pair ?(seed = 42) ?(rounds = 15) ~nb prec kernel cfg_a cfg_b =
  let prev = P.cfg prec kernel in
  let thunk = make_thunk (Rng.create seed) prec kernel nb in
  P.set_cfg prec kernel cfg_a;
  let t1 = Tuner.time_thunk ~warmup:2 ~repeats:3 thunk in
  let batch = max 1 (min 64 (int_of_float (ceil (3e-4 /. max 1e-9 t1)))) in
  let sample () =
    let t0 = Xsc_obs.Clock.now_ns () in
    for _ = 1 to batch do
      thunk ()
    done;
    Xsc_obs.Clock.ns_to_s (Xsc_obs.Clock.now_ns () - t0) /. float_of_int batch
  in
  (* warm cfg_b's code path too (icache, branch predictors) before timing *)
  P.set_cfg prec kernel cfg_b;
  ignore (Tuner.time_thunk ~warmup:2 ~repeats:1 thunk);
  let ta = Array.make rounds 0.0 and tb = Array.make rounds 0.0 in
  for r = 0 to rounds - 1 do
    P.set_cfg prec kernel cfg_a;
    ta.(r) <- sample ();
    P.set_cfg prec kernel cfg_b;
    tb.(r) <- sample ()
  done;
  P.set_cfg prec kernel prev;
  let fl = flops_of kernel nb in
  let rate t = if t > 0.0 then fl /. t /. 1e9 else 0.0 in
  (rate (Xsc_util.Stats.median ta), rate (Xsc_util.Stats.median tb))

(* ---- per-kernel search ---- *)

let tune_kernel ~quick ~rng ~evals prec kernel nb =
  let thunk = make_thunk rng prec kernel nb in
  let measure cfg ~repeats =
    P.set_cfg prec kernel cfg;
    incr evals;
    Tuner.time_thunk ~warmup:1 ~repeats thunk
  in
  let budget0 = if quick then 1 else 2 in
  let best =
    Search.successive_halving ~eta:2 ~candidates:(candidates ~quick kernel)
      ~budget0 (fun c ~budget -> measure c ~repeats:budget)
  in
  (* Paired head-to-head confirmation: the halving winner must beat the
     fixed default in an interleaved comparison or the default stays — a
     tuned config can never regress the host that elected it. *)
  let rounds = if quick then 7 else 15 in
  let r_default, r_winner =
    measure_pair ~rounds ~nb prec kernel P.default_cfg best.Search.candidate
  in
  evals := !evals + (2 * rounds);
  let cfg, default_gflops, tuned_gflops =
    if best.Search.candidate = P.default_cfg then
      (* the default itself won the search: both sides measured the SAME
         kernel, so reporting their ratio as a "speedup" would launder
         timing noise into the record — same config, same rate *)
      let r = max r_default r_winner in
      (P.default_cfg, r, r)
    else if r_winner >= r_default then
      (best.Search.candidate, r_default, r_winner)
    else (P.default_cfg, r_default, r_default)
  in
  P.set_cfg prec kernel cfg;
  { prec; kernel; cfg; default_gflops; tuned_gflops }

let hostname () =
  try Unix.gethostname () with _ -> "unknown-host"

let tune ?(quick = false) ?nbs ?(seed = 42) () =
  let nbs =
    match nbs with
    | Some l when l <> [] -> l
    | _ -> if quick then [ 64 ] else [ 48; 64; 96 ]
  in
  let t0 = Xsc_obs.Clock.now_s () in
  let rng = Rng.create seed in
  let evals = ref 0 in
  P.reset_cfgs ();
  (* Tile size first: elect nb on the dominant kernel (f64 gemm_nn — the
     O(n^3) bulk of every factorization), then tune each kernel's variant
     at that nb. *)
  let nb =
    match nbs with
    | [ nb ] -> nb
    | _ ->
        let scored =
          List.map
            (fun nb ->
              let t = tune_kernel ~quick ~rng ~evals P.F64 P.Gemm_nn nb in
              (nb, t.tuned_gflops))
            nbs
        in
        fst
          (List.fold_left
             (fun (bnb, brate) (nb, rate) ->
               if rate > brate then (nb, rate) else (bnb, brate))
             (List.hd scored) (List.tl scored))
  in
  P.reset_cfgs ();
  let tuned =
    List.concat_map
      (fun prec ->
        List.map
          (fun kernel -> tune_kernel ~quick ~rng ~evals prec kernel nb)
          P.all_kernels)
      P.all_precs
  in
  {
    host = hostname ();
    host_key = Kconfig.host_key ();
    nb;
    search_seconds = Xsc_obs.Clock.now_s () -. t0;
    evaluations = !evals;
    tuned;
  }

let to_cache r =
  {
    Kconfig.host_key = r.host_key;
    nb = r.nb;
    search_seconds = r.search_seconds;
    entries =
      List.map
        (fun t ->
          {
            Kconfig.prec = t.prec;
            kernel = t.kernel;
            cfg = t.cfg;
            default_gflops = t.default_gflops;
            tuned_gflops = t.tuned_gflops;
          })
        r.tuned;
  }

let apply r =
  P.reset_cfgs ();
  List.iter (fun t -> P.set_cfg t.prec t.kernel t.cfg) r.tuned

let ensure ?(quick = false) ?path () =
  let path = match path with Some p -> p | None -> Kconfig.default_path () in
  if Kconfig.autoload ~path () then
    match Kconfig.current () with
    | Some t -> `Loaded t
    | None -> assert false
  else begin
    let r = tune ~quick () in
    let c = to_cache r in
    Kconfig.save ~path c;
    (* load the file back rather than [apply r]: registers the result in
       {!Kconfig.current} (so [tuned_nb] sees it in-process) and proves
       the cache just written round-trips on this host *)
    if not (Kconfig.autoload ~path ()) then apply r;
    `Tuned (r, c)
  end

let report_json r =
  let buf = Buffer.create 1024 in
  Printf.bprintf buf
    "{\"host\": \"%s\", \"host_key\": \"%s\", \"nb\": %d, \
     \"search_seconds\": %.6f, \"evaluations\": %d, \"kernels\": ["
    (Xsc_util.Json.escape r.host)
    (Xsc_util.Json.escape r.host_key)
    r.nb r.search_seconds r.evaluations;
  List.iteri
    (fun i t ->
      if i > 0 then Buffer.add_string buf ", ";
      let mr, nr = P.shapes.(t.cfg.P.shape) in
      Printf.bprintf buf
        "{\"prec\": \"%s\", \"kernel\": \"%s\", \"mr\": %d, \"nr\": %d, \
         \"pack\": %b, \"prefetch\": %b, \"default_gflops\": %.4f, \
         \"tuned_gflops\": %.4f, \"speedup\": %.4f}"
        (P.prec_name t.prec) (P.kernel_name t.kernel) mr nr t.cfg.P.pack
        t.cfg.P.prefetch t.default_gflops t.tuned_gflops
        (if t.default_gflops > 0.0 then t.tuned_gflops /. t.default_gflops
         else 1.0))
    r.tuned;
  Buffer.add_string buf "]}";
  Buffer.contents buf
