type measurement = {
  param : int;
  seconds : float;
  rate : float;
}

(* Monotonic clock, not wall time: NTP slews and clock jumps would land
   inside a measurement and elect the wrong kernel for the life of the
   tuning cache. *)
let time_once thunk =
  let t0 = Xsc_obs.Clock.now_ns () in
  thunk ();
  Xsc_obs.Clock.ns_to_s (Xsc_obs.Clock.now_ns () - t0)

let time_thunk ?(warmup = 1) ?(repeats = 3) thunk =
  if repeats <= 0 then invalid_arg "Tuner.time_thunk: repeats must be positive";
  for _ = 1 to warmup do
    thunk ()
  done;
  let times = Array.init repeats (fun _ -> time_once thunk) in
  Xsc_util.Stats.median times

let sweep ?warmup ?repeats ~candidates ~flops ~bench () =
  if candidates = [] then invalid_arg "Tuner.sweep: no candidates";
  let measurements =
    List.map
      (fun p ->
        let seconds = time_thunk ?warmup ?repeats (bench p) in
        let fl = flops p in
        { param = p; seconds; rate = (if seconds > 0.0 then fl /. seconds else 0.0) })
      candidates
  in
  let best =
    List.fold_left
      (fun acc m -> if m.seconds < acc.seconds then m else acc)
      (List.hd measurements) (List.tl measurements)
  in
  (measurements, best)
