(** Install-time autotuning of the packed C microkernels.

    Searches the {!Xsc_linalg.Pblas} kernel-variant space (micro-tile
    shape x pack strategy x prefetch, per kernel per precision, plus the
    tile size [nb]) with {!Search.successive_halving} over median-of-
    repeats monotonic timings ({!Tuner.time_thunk}), then confirms the
    winner against the fixed default in a higher-repeat head-to-head —
    so a tuned config is never slower than the default it replaces on
    the host that tuned it.

    Every candidate computes bitwise-identical results (the variants
    only change which independent accumulator chains run concurrently),
    so the search is purely over speed; correctness never enters the
    objective.

    The result persists through {!Xsc_linalg.Kconfig} and is picked up
    by every later process on the same host: tune once per machine
    ([xsc tune]), benefit everywhere (paper rule 7). *)

type tuned = {
  prec : Xsc_linalg.Pblas.prec;
  kernel : Xsc_linalg.Pblas.kernel;
  cfg : Xsc_linalg.Pblas.kcfg;
  default_gflops : float;  (** measured rate of the fixed default config *)
  tuned_gflops : float;  (** measured rate of [cfg]; >= [default_gflops] *)
}

type report = {
  host : string;
  host_key : string;
  nb : int;  (** winning tile size *)
  search_seconds : float;
  evaluations : int;  (** total timed candidate evaluations *)
  tuned : tuned list;  (** one per kernel x precision *)
}

val tune : ?quick:bool -> ?nbs:int list -> ?seed:int -> unit -> report
(** Run the search on this host. [quick] shrinks the candidate set to a
    CI-sized smoke (3 shapes, single [nb]); default [nbs] is
    [[48; 64; 96]] (full) or [[64]] (quick). The kernel configs left
    installed afterwards are the tuned winners. *)

val to_cache : report -> Xsc_linalg.Kconfig.t
(** Convert for persisting with {!Xsc_linalg.Kconfig.save}. *)

val apply : report -> unit
(** (Re-)install the report's winners into the live kernel dispatch. *)

val ensure :
  ?quick:bool -> ?path:string -> unit ->
  [ `Loaded of Xsc_linalg.Kconfig.t | `Tuned of report * Xsc_linalg.Kconfig.t ]
(** Load the cache at [path] (default {!Xsc_linalg.Kconfig.default_path})
    and apply it; on any load error (absent, corrupt, tuned for another
    host) run {!tune}, save the fresh cache, and apply that. A second
    call on the same host returns [`Loaded] without re-searching. *)

val measure_pair :
  ?seed:int -> ?rounds:int -> nb:int ->
  Xsc_linalg.Pblas.prec -> Xsc_linalg.Pblas.kernel ->
  Xsc_linalg.Pblas.kcfg -> Xsc_linalg.Pblas.kcfg ->
  float * float
(** [measure_pair ~nb prec kernel a b]: GFLOP/s of configs [a] and [b] on
    seeded random tiles, sampled interleaved ([rounds] a/b pairs, default
    15, median per side, each sample a calibrated batch of calls) so host
    load and clock drift cancel out of the comparison. Restores the
    previously installed config. Used by the head-to-head election and by
    the benchmark gate to re-judge a loaded cache against the defaults. *)

val report_json : report -> string
(** The autotune record as a JSON object (one line per kernel entry),
    for [bench --json] and the CI artifact. *)
