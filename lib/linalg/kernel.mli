(** Cache-blocked, register-tiled GEMM microkernel (the BLIS/GotoBLAS
    structure in pure OCaml).

    The triple loop is restructured into three cache-level blockings —
    [NC]-wide column panels of B (shared across row panels), [KC]-deep rank
    updates, [MC]-tall row panels of A — with both operands packed into
    contiguous strip-major buffers so the innermost [MR]x[NR] microkernel
    streams them with unit stride and keeps its C accumulators in
    registers. Packing buffers are cached per domain, so tile kernels
    running on different workers never share or reallocate them.

    {!Blas.gemm} routes its NoTrans cases here above {!cutoff}; call
    {!Blas.gemm} rather than this module unless you are benchmarking the
    kernel itself. *)

val mc : int  (** A row-panel height: an [MC x KC] A pack stays L2-resident *)

val kc : int  (** rank-update depth of one packed panel pair *)

val nc : int  (** B column-panel width of one packed B pack *)

val mr : int  (** microkernel rows: C accumulator tile height *)

val nr : int  (** microkernel cols: C accumulator tile width *)

val cutoff : int
(** Minimum of [m], [n], [k] at which packing pays for itself; below it
    {!Blas.gemm} keeps the naive loop nest. *)

val add_matmul : trans_b:bool -> alpha:float -> Mat.t -> Mat.t -> Mat.t -> unit
(** [add_matmul ~trans_b ~alpha a b c] computes [C <- C + alpha A op(B)]
    with [op] transposing iff [trans_b]. Any beta scaling of [C] is the
    caller's job. Raises [Invalid_argument] on dimension mismatch. *)
