(** Level-2/3 BLAS subset in double precision.

    These are the hot kernels of the tile algorithms; they operate in place
    on {!Mat.t} storage with explicit transpose/side/uplo flags following
    BLAS conventions. Dimension mismatches raise [Invalid_argument].

    Every level-2/3 call tallies its flop count and modelled memory traffic
    into the {!Xsc_obs.Metrics} registry under
    [blas.<kernel>.{calls,flops,bytes}] (three sharded atomic adds per call
    — negligible next to the O(n²)–O(n³) arithmetic). Dividing a run's
    flops delta by its wall time gives achieved GFLOP/s; flops/bytes gives
    the arithmetic intensity placing the kernel on the roofline. *)

type trans = NoTrans | Trans
type side = Left | Right
type uplo = Upper | Lower
type diag = Unit | NonUnit

val gemm : ?transa:trans -> ?transb:trans -> alpha:float -> Mat.t -> Mat.t -> beta:float -> Mat.t -> unit
(** [gemm ~alpha a b ~beta c] computes [C <- alpha op(A) op(B) + beta C].
    NoTrans/NoTrans and NoTrans/Trans shapes with every dimension at least
    {!Kernel.cutoff} run on the packed, cache-blocked {!Kernel}; everything
    else uses the reference loop nests of {!gemm_unblocked}. The two paths
    associate the k-summation differently, so results may differ by normal
    rounding (order 1e-14 relative), never more. *)

val gemm_unblocked : ?transa:trans -> ?transb:trans -> alpha:float -> Mat.t -> Mat.t -> beta:float -> Mat.t -> unit
(** The reference (naive loop nest) gemm: the oracle blocked gemm is tested
    against, and the baseline the JSON bench reports speedups over. *)

val gemm_new : ?transa:trans -> ?transb:trans -> Mat.t -> Mat.t -> Mat.t
(** Allocating convenience: [op(A) op(B)]. *)

val gemv : ?trans:trans -> alpha:float -> Mat.t -> Vec.t -> beta:float -> Vec.t -> unit
(** [y <- alpha op(A) x + beta y]. *)

val ger : alpha:float -> Vec.t -> Vec.t -> Mat.t -> unit
(** Rank-1 update [A <- alpha x yᵀ + A]. *)

val syrk : ?uplo:uplo -> ?trans:trans -> alpha:float -> Mat.t -> beta:float -> Mat.t -> unit
(** Symmetric rank-k update touching only the [uplo] triangle of [C]:
    [C <- alpha A Aᵀ + beta C] ([NoTrans]) or [alpha Aᵀ A + beta C]
    ([Trans]). Default lower, matching the Cholesky kernels. *)

val trsm : ?side:side -> ?uplo:uplo -> ?trans:trans -> ?diag:diag -> alpha:float -> Mat.t -> Mat.t -> unit
(** Triangular solve with multiple right-hand sides, in place on the second
    argument: [B <- alpha op(A)⁻¹ B] ([Left]) or [B <- alpha B op(A)⁻¹]
    ([Right]). *)

val trsv : ?uplo:uplo -> ?trans:trans -> ?diag:diag -> Mat.t -> Vec.t -> unit
(** Triangular solve with a single right-hand side, in place. *)

val trmm : ?side:side -> ?uplo:uplo -> ?trans:trans -> ?diag:diag -> alpha:float -> Mat.t -> Mat.t -> unit
(** Triangular matrix multiply in place on the second argument. *)

val gemm_flops : int -> int -> int -> float
(** Flop count of an [m x k] by [k x n] multiply ([2 m n k]), used by the
    simulator's task weights and the Gflop/s reports. *)

val tally_kernel : string -> flops:float -> bytes:float -> unit
(** Find-or-create flop/byte accounting for a kernel outside this module:
    increments [blas.<kernel>.{calls,flops,bytes}] in the metrics registry.
    Counters are created on first call, so kernels that never run leave no
    zero-valued entries in the registry export. Used by {!Pblas}. *)
