(** Packed-tile BLAS/LAPACK microkernels (C stubs, unit-stride).

    Every kernel operates on one contiguous [nb x nb] row-major tile inside
    a flat Bigarray buffer, addressed as a (buffer, element-offset) pair.
    Contiguity is the point: the inner loops are unit-stride with
    independent accumulator chains, so the C compiler vectorizes them
    without gathers and — because the build passes [-ffp-contract=off] and
    no [-ffast-math] — without changing any rounding.

    Bitwise contract (float64): each kernel performs the same floating-point
    operations in the same order as its OCaml counterpart in {!Blas} /
    {!Lapack} (gemm: per-element k-ascending accumulate then one
    [c += alpha*acc]; syrk: [c = alpha*acc + beta*c]; trsm / potrf /
    getrf_nopiv: literal transcriptions), so packed factorizations are
    bit-identical to the strided reference. The float32 kernels compute in
    genuine single precision — half the bytes moved per flop, double the
    SIMD lanes — and feed the real mixed-precision path in [Precision.Ir].

    All wrappers tally flops/bytes through {!Blas.tally_kernel} under
    [blas.{pgemm,psyrk,ptrsm,ppotrf,pgetrf}] (f64) and
    [blas.{sgemm,ssyrk,strsm,spotrf}] (f32). *)

type f64 = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
type f32 = (float, Bigarray.float32_elt, Bigarray.c_layout) Bigarray.Array1.t

exception Singular of int
(** Raised by [potrf] (non-positive pivot) and [getrf_nopiv] (zero pivot)
    with the failing index within the tile. *)

(** {1 Runtime kernel configuration}

    The compute kernels (gemm / syrk / trsm) dispatch through a per-kernel,
    per-precision config record: micro-tile shape (how many independent
    accumulator chains run concurrently), pack strategy for the operands
    read along [k], and optional software prefetch. Every variant performs
    the identical floating-point operations in the identical order per
    output element, so changing the config changes speed only — results
    stay bitwise-identical. The autotuner ({!Xsc_autotune.Kernel_tune})
    searches this space and {!Kconfig} persists the winner per host. *)

type kernel = Gemm_nn | Gemm_nt | Syrk_ln | Trsm_rlt
(** The tunable kernels. [potrf] / [getrf_nopiv] and the LU panel trsms are
    O(nb^2·nb) sequential-chain kernels with no variant space worth
    searching; they always run the reference code. *)

type prec = F64 | F32

type kcfg = { shape : int; pack : bool; prefetch : bool }
(** [shape] indexes {!shapes}. [pack] selects transpose-to-scratch (true,
    the historical behavior) vs direct row-dot / row-sequential access for
    the NT / syrk / trsm_rlt paths; gemm_nn ignores it. [syrk_ln] uses only
    the width of its shape (triangular store masks per row). *)

val shapes : (int * int) array
(** The (mr, nr) micro-tile family compiled into the C stubs. *)

val default_cfg : kcfg
(** The untuned default: 1 x 32 chains, pack, no prefetch — exactly the
    behavior the kernels had when the shapes were hard-coded. *)

val all_kernels : kernel list
val all_precs : prec list
val kernel_name : kernel -> string
val prec_name : prec -> string
val kernel_of_name : string -> kernel option
val prec_of_name : string -> prec option

val set_cfg : prec -> kernel -> kcfg -> unit
(** Install a config. Raises [Invalid_argument] on an out-of-range shape.
    Not synchronised: call at startup or from a single-threaded tuner, not
    while other domains are inside a kernel. *)

val cfg : prec -> kernel -> kcfg

val reset_cfgs : unit -> unit
(** Restore {!default_cfg} for every kernel and precision. *)

(** {1 Flop counts} (used by the tuner and benchmarks to convert measured
    seconds into rates) *)

val gemm_flops : int -> float
val syrk_flops : int -> float
val trsm_flops : int -> float
val potrf_flops : int -> float
val getrf_flops : int -> float

(** Double-precision kernels. Offsets are element (not byte) offsets of the
    tile's first element; all tiles are [nb x nb] row-major. *)
module D : sig
  type buf = f64

  val gemm_nn : alpha:float -> buf -> int -> buf -> int -> buf -> int -> nb:int -> unit
  (** [gemm_nn ~alpha a oa b ob c oc ~nb]: [C += alpha A B]. *)

  val gemm_nt : alpha:float -> buf -> int -> buf -> int -> buf -> int -> nb:int -> unit
  (** [C += alpha A Bᵀ] (the Cholesky update shape). *)

  val syrk_ln : alpha:float -> buf -> int -> beta:float -> buf -> int -> nb:int -> unit
  (** Lower triangle only: [C <- alpha A Aᵀ + beta C]. *)

  val trsm_rlt : buf -> int -> buf -> int -> nb:int -> unit
  (** [B <- B A⁻ᵀ], [A] lower triangular non-unit (Cholesky panel). *)

  val trsm_llu : buf -> int -> buf -> int -> nb:int -> unit
  (** [B <- A⁻¹ B], [A] unit lower triangular (LU row panel). *)

  val trsm_ru : buf -> int -> buf -> int -> nb:int -> unit
  (** [B <- B A⁻¹], [A] upper triangular non-unit (LU column panel). *)

  val potrf : buf -> int -> nb:int -> unit
  (** In-place lower Cholesky of one tile; raises {!Singular}. *)

  val getrf_nopiv : buf -> int -> nb:int -> unit
  (** In-place unpivoted LU of one tile; raises {!Singular}. *)
end

(** Single-precision kernels: genuine C [float] arithmetic end to end. The
    subset needed by the packed float32 Cholesky. *)
module S : sig
  type buf = f32

  val gemm_nn : alpha:float -> buf -> int -> buf -> int -> buf -> int -> nb:int -> unit
  val gemm_nt : alpha:float -> buf -> int -> buf -> int -> buf -> int -> nb:int -> unit
  val syrk_ln : alpha:float -> buf -> int -> beta:float -> buf -> int -> nb:int -> unit
  val trsm_rlt : buf -> int -> buf -> int -> nb:int -> unit
  val potrf : buf -> int -> nb:int -> unit
end
