type entry = {
  prec : Pblas.prec;
  kernel : Pblas.kernel;
  cfg : Pblas.kcfg;
  default_gflops : float;
  tuned_gflops : float;
}

type t = {
  host_key : string;
  nb : int;
  search_seconds : float;
  entries : entry list;
}

type load_error =
  | No_such_file
  | Truncated
  | Bad_magic
  | Bad_version of int
  | Bad_crc
  | Host_mismatch of { expected : string; found : string }

let describe_error = function
  | No_such_file -> "no such file"
  | Truncated -> "truncated or torn file"
  | Bad_magic -> "bad magic (not a tuning cache)"
  | Bad_version v -> Printf.sprintf "unsupported tuning-cache version %d" v
  | Bad_crc -> "payload CRC mismatch or malformed payload (corrupt cache)"
  | Host_mismatch { expected; found } ->
      Printf.sprintf "cache tuned for a different host (this host %S, cache %S)"
        expected found

(* ---- host identity ---- *)

let cpu_model () =
  match open_in "/proc/cpuinfo" with
  | exception _ -> "unknown-cpu"
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let rec scan () =
            match input_line ic with
            | exception End_of_file -> "unknown-cpu"
            | line -> (
                match String.index_opt line ':' with
                | Some i
                  when String.length line >= 10
                       && String.sub line 0 10 = "model name" ->
                    String.trim
                      (String.sub line (i + 1) (String.length line - i - 1))
                | _ -> scan ())
          in
          scan ())

let hostname () =
  try Unix.gethostname () with _ -> (
    match Sys.getenv_opt "HOSTNAME" with Some h -> h | None -> "unknown-host")

let host_key () =
  Printf.sprintf "%s|%s|%d" (hostname ()) (cpu_model ()) Sys.word_size

(* ---- file format ---- *)

let magic = "XSCKTUNE"
let version = Char.chr 1
let header_len = 8 + 1 + 8 + 4

let default_path () =
  match Sys.getenv_opt "XSC_TUNE_CACHE" with
  | Some p when p <> "" -> p
  | _ ->
      let cache_root =
        match Sys.getenv_opt "XDG_CACHE_HOME" with
        | Some d when d <> "" -> d
        | _ -> (
            match Sys.getenv_opt "HOME" with
            | Some h when h <> "" -> Filename.concat h ".cache"
            | _ -> Filename.current_dir_name)
      in
      Filename.concat (Filename.concat cache_root "xsc") "ktune.bin"

let add_le buf ~bytes v =
  for i = 0 to bytes - 1 do
    Buffer.add_char buf (Char.chr ((v lsr (8 * i)) land 0xFF))
  done

let add_f64 buf v =
  let bits = Int64.bits_of_float v in
  for i = 0 to 7 do
    Buffer.add_char buf
      (Char.chr (Int64.to_int (Int64.shift_right_logical bits (8 * i)) land 0xFF))
  done

exception Malformed

let get_le b ~pos ~bytes =
  if pos + bytes > Bytes.length b then raise Malformed;
  let v = ref 0 in
  for i = bytes - 1 downto 0 do
    v := (!v lsl 8) lor Char.code (Bytes.get b (pos + i))
  done;
  !v

let get_f64 b ~pos =
  if pos + 8 > Bytes.length b then raise Malformed;
  let bits = ref 0L in
  for i = 7 downto 0 do
    bits :=
      Int64.logor (Int64.shift_left !bits 8)
        (Int64.of_int (Char.code (Bytes.get b (pos + i))))
  done;
  Int64.float_of_bits !bits

let encode_payload t =
  let buf = Buffer.create 256 in
  add_le buf ~bytes:4 (String.length t.host_key);
  Buffer.add_string buf t.host_key;
  add_le buf ~bytes:4 t.nb;
  add_f64 buf t.search_seconds;
  add_le buf ~bytes:4 (List.length t.entries);
  List.iter
    (fun e ->
      let b01 v = if v then 1 else 0 in
      add_le buf ~bytes:1 (match e.prec with Pblas.F64 -> 0 | Pblas.F32 -> 1);
      add_le buf ~bytes:1
        (match e.kernel with
        | Pblas.Gemm_nn -> 0
        | Pblas.Gemm_nt -> 1
        | Pblas.Syrk_ln -> 2
        | Pblas.Trsm_rlt -> 3);
      add_le buf ~bytes:1 e.cfg.Pblas.shape;
      add_le buf ~bytes:1 (b01 e.cfg.Pblas.pack);
      add_le buf ~bytes:1 (b01 e.cfg.Pblas.prefetch);
      add_f64 buf e.default_gflops;
      add_f64 buf e.tuned_gflops)
    t.entries;
  Buffer.to_bytes buf

(* Raises [Malformed] on any CRC-valid-but-nonsense payload (a crafted
   file, or a format drift the version byte failed to catch); the caller
   maps that to [Bad_crc], mirroring the Checkpoint loader's guard. *)
let decode_payload b =
  let pos = ref 0 in
  let le bytes =
    let v = get_le b ~pos:!pos ~bytes in
    pos := !pos + bytes;
    v
  in
  let f64 () =
    let v = get_f64 b ~pos:!pos in
    pos := !pos + 8;
    v
  in
  let key_len = le 4 in
  if key_len < 0 || !pos + key_len > Bytes.length b then raise Malformed;
  let host_key = Bytes.sub_string b !pos key_len in
  pos := !pos + key_len;
  let nb = le 4 in
  if nb <= 0 then raise Malformed;
  let search_seconds = f64 () in
  let count = le 4 in
  if count < 0 || count > 64 then raise Malformed;
  let entries =
    List.init count (fun _ ->
        let prec =
          match le 1 with 0 -> Pblas.F64 | 1 -> Pblas.F32 | _ -> raise Malformed
        in
        let kernel =
          match le 1 with
          | 0 -> Pblas.Gemm_nn
          | 1 -> Pblas.Gemm_nt
          | 2 -> Pblas.Syrk_ln
          | 3 -> Pblas.Trsm_rlt
          | _ -> raise Malformed
        in
        let shape = le 1 in
        if shape >= Array.length Pblas.shapes then raise Malformed;
        let bool01 =
          function 0 -> false | 1 -> true | _ -> raise Malformed
        in
        let pack = bool01 (le 1) in
        let prefetch = bool01 (le 1) in
        let default_gflops = f64 () in
        let tuned_gflops = f64 () in
        {
          prec;
          kernel;
          cfg = { Pblas.shape; pack; prefetch };
          default_gflops;
          tuned_gflops;
        })
  in
  { host_key; nb; search_seconds; entries }

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let save ?path t =
  let path = match path with Some p -> p | None -> default_path () in
  mkdir_p (Filename.dirname path);
  let payload = encode_payload t in
  let crc = Xsc_util.Crc32.bytes payload in
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc magic;
      output_char oc version;
      let put_le ~bytes v =
        for i = 0 to bytes - 1 do
          output_char oc (Char.chr ((v lsr (8 * i)) land 0xFF))
        done
      in
      put_le ~bytes:8 (Bytes.length payload);
      put_le ~bytes:4 crc;
      output_bytes oc payload);
  Sys.rename tmp path

let load ?path () : (t, load_error) result =
  let path = match path with Some p -> p | None -> default_path () in
  if not (Sys.file_exists path) then Error No_such_file
  else begin
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let len = in_channel_length ic in
        if len < header_len then Error Truncated
        else begin
          let header = Bytes.create header_len in
          really_input ic header 0 header_len;
          if Bytes.sub_string header 0 8 <> magic then Error Bad_magic
          else if Bytes.get header 8 <> version then
            Error (Bad_version (Char.code (Bytes.get header 8)))
          else begin
            let payload_len = get_le header ~pos:9 ~bytes:8 in
            let crc = get_le header ~pos:17 ~bytes:4 in
            if len - header_len < payload_len then Error Truncated
            else begin
              let payload = Bytes.create payload_len in
              really_input ic payload 0 payload_len;
              if Xsc_util.Crc32.bytes payload <> crc then Error Bad_crc
              else
                match decode_payload payload with
                | exception Malformed -> Error Bad_crc
                | t ->
                    let here = host_key () in
                    if t.host_key <> here then
                      Error (Host_mismatch { expected = here; found = t.host_key })
                    else Ok t
            end
          end
        end)
  end

let apply t =
  Pblas.reset_cfgs ();
  List.iter (fun e -> Pblas.set_cfg e.prec e.kernel e.cfg) t.entries

let installed : t option ref = ref None
let current () = !installed

let autoload ?path () =
  match load ?path () with
  | Ok t ->
      apply t;
      installed := Some t;
      true
  | Error _ -> false
