(* Blocked GEMM with packing, after the GotoBLAS/BLIS decomposition:
   jc over NC columns of B, pc over KC ranks, ic over MC rows of A, and an
   MRxNR register-tiled microkernel over the packed panels. All flops
   happen in [micro] on contiguous data; everything else is data movement
   arranged so each level of blocking reuses what the cache level above it
   just loaded. *)

let mr = 4
let nr = 4
let kc = 256
let mc = 128
let nc = 512
let cutoff = 48

let ( .!() ) = Array.unsafe_get
let ( .!()<- ) = Array.unsafe_set

(* Per-domain packing buffers: apack holds an MC x KC panel of A in
   MR-strips, bpack a KC x NC panel of B in NR-strips. Cached in
   domain-local storage so concurrent tile kernels on different workers
   each pack into their own buffer, and repeated small GEMMs (the tile hot
   path) never reallocate. *)
let apack_key = Domain.DLS.new_key (fun () -> ref [||])
let bpack_key = Domain.DLS.new_key (fun () -> ref [||])

let buffer key needed =
  let cell = Domain.DLS.get key in
  if Array.length !cell < needed then cell := Array.make needed 0.0;
  !cell

(* Pack rows [row0, row0+m) x cols [col0, col0+k) of A into MR-strips:
   strip s holds rows [s*MR, s*MR+MR), laid out k-major so the microkernel
   reads MR consecutive elements per k step. Short strips are zero-padded —
   the microkernel then needs no row fringe cases. *)
let pack_a ad ~lda ~row0 ~col0 ~m ~k apack =
  let nstrips = (m + mr - 1) / mr in
  for s = 0 to nstrips - 1 do
    let i0 = s * mr in
    let base = s * k * mr in
    let full = i0 + mr <= m in
    for p = 0 to k - 1 do
      let dst = base + (p * mr) in
      let src = ((row0 + i0) * lda) + col0 + p in
      if full then begin
        apack.!(dst) <- ad.!(src);
        apack.!(dst + 1) <- ad.!(src + lda);
        apack.!(dst + 2) <- ad.!(src + (2 * lda));
        apack.!(dst + 3) <- ad.!(src + (3 * lda))
      end
      else
        for i = 0 to mr - 1 do
          apack.!(dst + i) <- (if i0 + i < m then ad.!(src + (i * lda)) else 0.0)
        done
    done
  done

(* Pack rows [row0, row0+k) x cols [col0, col0+n) of op(B) into NR-strips,
   k-major, zero-padding short strips. For [trans] the source is B^T, i.e.
   element (p, j) comes from B[col0+j][row0+p]. *)
let pack_b bd ~ldb ~trans ~row0 ~col0 ~k ~n bpack =
  let nstrips = (n + nr - 1) / nr in
  for s = 0 to nstrips - 1 do
    let j0 = s * nr in
    let base = s * k * nr in
    let full = j0 + nr <= n in
    if not trans then
      for p = 0 to k - 1 do
        let dst = base + (p * nr) in
        let src = ((row0 + p) * ldb) + col0 + j0 in
        if full then begin
          bpack.!(dst) <- bd.!(src);
          bpack.!(dst + 1) <- bd.!(src + 1);
          bpack.!(dst + 2) <- bd.!(src + 2);
          bpack.!(dst + 3) <- bd.!(src + 3)
        end
        else
          for j = 0 to nr - 1 do
            bpack.!(dst + j) <- (if j0 + j < n then bd.!(src + j) else 0.0)
          done
      done
    else
      (* walk B's rows (contiguous) rather than its columns: for each of the
         NR B-rows in this strip, scatter its KC slice down the strip *)
      for j = 0 to nr - 1 do
        if j0 + j < n then begin
          let src = ((col0 + j0 + j) * ldb) + row0 in
          for p = 0 to k - 1 do
            bpack.!(base + (p * nr) + j) <- bd.!(src + p)
          done
        end
        else
          for p = 0 to k - 1 do
            bpack.!(base + (p * nr) + j) <- 0.0
          done
      done
  done

(* The MRxNR = 4x4 microkernel: 16 accumulators live in registers across
   the whole k loop, so the inner iteration is 8 loads and 16 multiply-adds
   with zero C traffic. C is touched exactly once, at the end, masked to
   the valid fringe. *)
let micro apack abase bpack bbase ~k cd ~ldc ~ci ~cj ~mrem ~nrem ~alpha =
  let c00 = ref 0.0 and c01 = ref 0.0 and c02 = ref 0.0 and c03 = ref 0.0 in
  let c10 = ref 0.0 and c11 = ref 0.0 and c12 = ref 0.0 and c13 = ref 0.0 in
  let c20 = ref 0.0 and c21 = ref 0.0 and c22 = ref 0.0 and c23 = ref 0.0 in
  let c30 = ref 0.0 and c31 = ref 0.0 and c32 = ref 0.0 and c33 = ref 0.0 in
  for p = 0 to k - 1 do
    let ab = abase + (p * mr) and bb = bbase + (p * nr) in
    let a0 = apack.!(ab)
    and a1 = apack.!(ab + 1)
    and a2 = apack.!(ab + 2)
    and a3 = apack.!(ab + 3) in
    let b0 = bpack.!(bb)
    and b1 = bpack.!(bb + 1)
    and b2 = bpack.!(bb + 2)
    and b3 = bpack.!(bb + 3) in
    c00 := !c00 +. (a0 *. b0);
    c01 := !c01 +. (a0 *. b1);
    c02 := !c02 +. (a0 *. b2);
    c03 := !c03 +. (a0 *. b3);
    c10 := !c10 +. (a1 *. b0);
    c11 := !c11 +. (a1 *. b1);
    c12 := !c12 +. (a1 *. b2);
    c13 := !c13 +. (a1 *. b3);
    c20 := !c20 +. (a2 *. b0);
    c21 := !c21 +. (a2 *. b1);
    c22 := !c22 +. (a2 *. b2);
    c23 := !c23 +. (a2 *. b3);
    c30 := !c30 +. (a3 *. b0);
    c31 := !c31 +. (a3 *. b1);
    c32 := !c32 +. (a3 *. b2);
    c33 := !c33 +. (a3 *. b3)
  done;
  let store i j v =
    if i < mrem && j < nrem then begin
      let idx = ((ci + i) * ldc) + cj + j in
      cd.!(idx) <- cd.!(idx) +. (alpha *. v)
    end
  in
  store 0 0 !c00;
  store 0 1 !c01;
  store 0 2 !c02;
  store 0 3 !c03;
  store 1 0 !c10;
  store 1 1 !c11;
  store 1 2 !c12;
  store 1 3 !c13;
  store 2 0 !c20;
  store 2 1 !c21;
  store 2 2 !c22;
  store 2 3 !c23;
  store 3 0 !c30;
  store 3 1 !c31;
  store 3 2 !c32;
  store 3 3 !c33

let add_matmul ~trans_b ~alpha (a : Mat.t) (b : Mat.t) (c : Mat.t) =
  let m = a.Mat.rows and k = a.Mat.cols in
  let kb, n = if trans_b then (b.Mat.cols, b.Mat.rows) else (b.Mat.rows, b.Mat.cols) in
  if kb <> k then invalid_arg "Kernel.add_matmul: inner dimension mismatch";
  if c.Mat.rows <> m || c.Mat.cols <> n then
    invalid_arg "Kernel.add_matmul: output dimension mismatch";
  if m = 0 || n = 0 || k = 0 || alpha = 0.0 then ()
  else begin
    let ad = a.Mat.data and bd = b.Mat.data and cd = c.Mat.data in
    let lda = a.Mat.cols and ldb = b.Mat.cols and ldc = c.Mat.cols in
    let apack = buffer apack_key (((min m mc + mr - 1) / mr * mr) * min k kc) in
    let bpack = buffer bpack_key (((min n nc + nr - 1) / nr * nr) * min k kc) in
    let jc = ref 0 in
    while !jc < n do
      let nn = min nc (n - !jc) in
      let pc = ref 0 in
      while !pc < k do
        let kk = min kc (k - !pc) in
        pack_b bd ~ldb ~trans:trans_b ~row0:!pc ~col0:!jc ~k:kk ~n:nn bpack;
        let ic = ref 0 in
        while !ic < m do
          let mm = min mc (m - !ic) in
          pack_a ad ~lda ~row0:!ic ~col0:!pc ~m:mm ~k:kk apack;
          let nstrips_m = (mm + mr - 1) / mr and nstrips_n = (nn + nr - 1) / nr in
          for sj = 0 to nstrips_n - 1 do
            let bbase = sj * kk * nr in
            for si = 0 to nstrips_m - 1 do
              micro apack (si * kk * mr) bpack bbase ~k:kk cd ~ldc
                ~ci:(!ic + (si * mr))
                ~cj:(!jc + (sj * nr))
                ~mrem:(mm - (si * mr))
                ~nrem:(nn - (sj * nr))
                ~alpha
            done
          done;
          ic := !ic + mc
        done;
        pc := !pc + kc
      done;
      jc := !jc + nc
    done
  end
