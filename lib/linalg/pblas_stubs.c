/* Packed-tile BLAS kernels over contiguous nb x nb tiles.
 *
 * Every kernel here operates on one (or a few) tiles of a tile-major packed
 * matrix: a single Bigarray buffer in which tile (i, j) occupies the
 * contiguous slice [off, off + nb*nb) in row-major order.  Contiguity is the
 * whole point — the inner loops below are unit-stride, so the compiler can
 * keep them in SIMD registers without gather/scatter.
 *
 * Bitwise contract (float64): each kernel performs exactly the same
 * floating-point operations in exactly the same order as its OCaml
 * counterpart in Blas/Lapack:
 *
 *   - gemm:  per element, a k-ascending accumulation into a fresh
 *            accumulator followed by ONE update c += alpha * acc
 *            (the order shared by Blas.gemm_unblocked and Kernel.micro);
 *   - syrk:  per element, k-ascending acc, then c = alpha*acc + beta*c;
 *   - trsm:  sequential axpy-style substitution in the same l-order as
 *            the corresponding Blas.trsm branch;
 *   - potrf / getrf_nopiv: literal transcriptions of Lapack.potrf and
 *            Lapack.getrf_nopiv.
 *
 * The compute kernels (gemm_nn / gemm_nt / syrk / trsm_rlt) are
 * PARAMETERISED over a small family of micro-tile shapes, selected at
 * runtime through a per-kernel, per-precision config record (set from
 * OCaml via xsc_pk_set_kcfg; searched by the autotuner in
 * lib/autotune/kernel_tune.ml).  A micro-tile of shape MR x NR keeps
 * MR*NR INDEPENDENT accumulator chains live (NR fills one or more
 * 256/512-bit vectors; MR rows reuse each loaded b-line and add
 * instruction-level parallelism that breaks the FP-add latency chain).
 * Vectorizing ACROSS chains never reassociates any single chain: every
 * output element accumulates k-ascending into its own scalar regardless
 * of the shape, so ALL variants produce bitwise-identical results — the
 * tuner searches over speed, never over rounding.  The j-remainder of a
 * row always cascades NR -> 8 -> scalar, and the i-remainder falls back
 * to the 1 x NR shape, so odd nb values keep wide-SIMD rates.
 *
 * Two further tuning knobs:
 *   - pack: gemm_nt and syrk read their second operand along k.  pack=1
 *     transposes it once into per-thread scratch (O(nb^2)) so the inner
 *     loops go unit-stride; pack=0 skips the transpose and runs the
 *     micro-tile directly on rows of the untransposed operand (each
 *     accumulator chain is then a plain dot product of two contiguous
 *     rows — same chain, same bits, no scratch traffic).  For trsm_rlt,
 *     pack=0 is a row-sequential in-place substitution with no
 *     transpose round trip.
 *   - prefetch: optional software prefetch of the next row block.
 *
 * The build passes -ffp-contract=off so no multiply-add is contracted
 * into an FMA (an FMA rounds once where the OCaml code rounds twice).
 * No -ffast-math.
 *
 * The float32 kernels compute in genuine C `float` arithmetic — this is the
 * real reduced-precision path (half the bytes moved per element, twice the
 * SIMD lanes), not double arithmetic rounded on store.
 */

#include <caml/mlvalues.h>
#include <caml/bigarray.h>
#include <math.h>
#include <stdlib.h>
#include <string.h>

/* Per-thread scratch for transposed operands (gemm_nt / syrk read their
 * second operand along k; transposing it once, O(nb^2), turns the O(nb^3)
 * inner loops unit-stride).  Domains are threads, so __thread gives each
 * worker its own buffer with no locking; the buffer only grows and is
 * reused across calls, so steady-state cost is zero allocation. */
static __thread double *tbuf_d = NULL;
static __thread long tbuf_d_len = 0;
static __thread float *tbuf_s = NULL;
static __thread long tbuf_s_len = 0;

static double *scratch_d(long n)
{
  if (tbuf_d_len < n) {
    free(tbuf_d);
    tbuf_d = (double *)malloc((size_t)n * sizeof(double));
    tbuf_d_len = tbuf_d ? n : 0;
  }
  return tbuf_d;
}

static float *scratch_s(long n)
{
  if (tbuf_s_len < n) {
    free(tbuf_s);
    tbuf_s = (float *)malloc((size_t)n * sizeof(float));
    tbuf_s_len = tbuf_s ? n : 0;
  }
  return tbuf_s;
}

/* ---------------- kernel configuration ---------------- */

/* Micro-tile shape family.  The first three entries MUST stay the
 * 1 x {8,16,32} shapes in that order: the i-remainder and row-tail paths
 * index them by width (see widx below). */
#define SHAPE_LIST(X) \
  X(1, 8) X(1, 16) X(1, 32) X(2, 16) X(2, 32) X(4, 8) X(4, 16) X(6, 16) X(8, 8)

#define SHAPE_ENTRY(MR, NR) { MR, NR },
static const struct { int mr, nr; } shapes[] = { SHAPE_LIST(SHAPE_ENTRY) };
#define NSHAPES ((int)(sizeof(shapes) / sizeof(shapes[0])))

/* shape id of 1x32: the historical hard-coded kernel, and the default. */
#define DEFAULT_SHAPE 2

typedef struct {
  int shape;    /* index into shapes[] */
  int pack;     /* 1 = transpose second operand into scratch (NT/syrk),
                   transposed column sweep (trsm); 0 = direct */
  int prefetch; /* 1 = software-prefetch the next row block */
} kcfg;

enum { K_NN = 0, K_NT = 1, K_SYRK = 2, K_TRSM = 3, K_NKERNELS = 4 };

#define DEFAULT_KCFG { DEFAULT_SHAPE, 1, 0 }
static kcfg cfg_d[K_NKERNELS] = { DEFAULT_KCFG, DEFAULT_KCFG, DEFAULT_KCFG,
                                  DEFAULT_KCFG };
static kcfg cfg_s[K_NKERNELS] = { DEFAULT_KCFG, DEFAULT_KCFG, DEFAULT_KCFG,
                                  DEFAULT_KCFG };

/* width index for the 1 x {8,16,32} shapes and the syrk width tables */
static inline int widx(int nr) { return nr == 8 ? 0 : nr == 16 ? 1 : 2; }

CAMLprim value xsc_pk_shape_count(value unit)
{
  (void)unit;
  return Val_long(NSHAPES);
}

/* mr * 1000 + nr for shape id, so OCaml can mirror the table. */
CAMLprim value xsc_pk_shape_dims(value vi)
{
  long i = Long_val(vi);
  if (i < 0 || i >= NSHAPES) return Val_long(-1);
  return Val_long((long)shapes[i].mr * 1000 + shapes[i].nr);
}

/* Set the config for (precision, kernel): 0 on success, -1 on a bad id.
 * Configs are plain ints read by the kernels without synchronisation;
 * they are set at startup (cache load) or by the single-threaded tuner. */
CAMLprim value xsc_pk_set_kcfg(value vprec, value vkernel, value vshape,
                               value vpack, value vprefetch)
{
  long prec = Long_val(vprec), k = Long_val(vkernel), s = Long_val(vshape);
  if (prec < 0 || prec > 1 || k < 0 || k >= K_NKERNELS || s < 0 || s >= NSHAPES)
    return Val_long(-1);
  {
    kcfg *t = (prec == 0) ? cfg_d : cfg_s;
    t[k].shape = (int)s;
    t[k].pack = Bool_val(vpack) ? 1 : 0;
    t[k].prefetch = Bool_val(vprefetch) ? 1 : 0;
  }
  return Val_long(0);
}

/* ---------------- micro-tile bodies (macro-generated) ----------------
 *
 * tile_nn_MRxNR:  c[i0..i0+MR)[j0..j0+NR) += alpha * a * b with b packed
 *                 row-major along j (gemm_nn, or gemm_nt/syrk after the
 *                 pack transpose).
 * tile_dot_MRxNR: same update but the second operand is read as ROWS
 *                 (b[j][k], contiguous in k) — the no-pack strategy for
 *                 gemm_nt.  Each accumulator is a dot product of two
 *                 contiguous rows; chains stay k-ascending.
 */

#define DEF_TILE_NN(T, SUF, MR, NR)                                          \
  static void tile_nn_##MR##x##NR##_##SUF(                                   \
      const T *restrict a, const T *restrict b, T *restrict c, long nb,      \
      long i0, long j0, T alpha)                                             \
  {                                                                          \
    T s[MR][NR];                                                             \
    const T *bj = b + j0;                                                    \
    for (int m = 0; m < MR; m++)                                             \
      for (int q = 0; q < NR; q++) s[m][q] = (T)0;                           \
    for (long k = 0; k < nb; k++) {                                          \
      const T *bk = bj + k * nb;                                             \
      for (int m = 0; m < MR; m++) {                                         \
        T av = a[(i0 + m) * nb + k];                                         \
        for (int q = 0; q < NR; q++) s[m][q] += av * bk[q];                  \
      }                                                                      \
    }                                                                        \
    for (int m = 0; m < MR; m++) {                                           \
      T *ci = c + (i0 + m) * nb + j0;                                        \
      for (int q = 0; q < NR; q++) ci[q] += alpha * s[m][q];                 \
    }                                                                        \
  }

#define DEF_TILE_DOT(T, SUF, MR, NR)                                         \
  static void tile_dot_##MR##x##NR##_##SUF(                                  \
      const T *restrict a, const T *restrict b, T *restrict c, long nb,      \
      long i0, long j0, T alpha)                                             \
  {                                                                          \
    T s[MR][NR];                                                             \
    for (int m = 0; m < MR; m++)                                             \
      for (int q = 0; q < NR; q++) s[m][q] = (T)0;                           \
    for (long k = 0; k < nb; k++) {                                          \
      for (int m = 0; m < MR; m++) {                                         \
        T av = a[(i0 + m) * nb + k];                                         \
        for (int q = 0; q < NR; q++) s[m][q] += av * b[(j0 + q) * nb + k];   \
      }                                                                      \
    }                                                                        \
    for (int m = 0; m < MR; m++) {                                           \
      T *ci = c + (i0 + m) * nb + j0;                                        \
      for (int q = 0; q < NR; q++) ci[q] += alpha * s[m][q];                 \
    }                                                                        \
  }

#define DEF_TILES(MR, NR)         \
  DEF_TILE_NN(double, d, MR, NR)  \
  DEF_TILE_DOT(double, d, MR, NR) \
  DEF_TILE_NN(float, s, MR, NR)   \
  DEF_TILE_DOT(float, s, MR, NR)

SHAPE_LIST(DEF_TILES)

typedef void (*tile_d_fn)(const double *restrict, const double *restrict,
                          double *restrict, long, long, long, double);
typedef void (*tile_s_fn)(const float *restrict, const float *restrict,
                          float *restrict, long, long, long, float);

#define NN_D_ENTRY(MR, NR) tile_nn_##MR##x##NR##_d,
#define DOT_D_ENTRY(MR, NR) tile_dot_##MR##x##NR##_d,
#define NN_S_ENTRY(MR, NR) tile_nn_##MR##x##NR##_s,
#define DOT_S_ENTRY(MR, NR) tile_dot_##MR##x##NR##_s,
static const tile_d_fn nn_tab_d[] = { SHAPE_LIST(NN_D_ENTRY) };
static const tile_d_fn dot_tab_d[] = { SHAPE_LIST(DOT_D_ENTRY) };
static const tile_s_fn nn_tab_s[] = { SHAPE_LIST(NN_S_ENTRY) };
static const tile_s_fn dot_tab_s[] = { SHAPE_LIST(DOT_S_ENTRY) };

/* Row tails: finish one row from column j with an 8-wide tier then scalar
 * (the cascade the historical kernel used), for both operand layouts. */
#define DEF_ROW_TAILS(T, SUF)                                                \
  static void row_tail_nn_##SUF(const T *restrict a, const T *restrict b,    \
                                T *restrict c, long nb, long i, long j,      \
                                T alpha)                                     \
  {                                                                          \
    const T *ai = a + i * nb;                                                \
    T *ci = c + i * nb;                                                      \
    for (; j + 8 <= nb; j += 8) {                                            \
      T s[8];                                                                \
      const T *bj = b + j;                                                   \
      for (int q = 0; q < 8; q++) s[q] = (T)0;                               \
      for (long k = 0; k < nb; k++) {                                        \
        T av = ai[k];                                                        \
        const T *bk = bj + k * nb;                                           \
        for (int q = 0; q < 8; q++) s[q] += av * bk[q];                      \
      }                                                                      \
      for (int q = 0; q < 8; q++) ci[j + q] += alpha * s[q];                 \
    }                                                                        \
    for (; j < nb; j++) {                                                    \
      T s = (T)0;                                                            \
      for (long k = 0; k < nb; k++) s += ai[k] * b[k * nb + j];              \
      ci[j] += alpha * s;                                                    \
    }                                                                        \
  }                                                                          \
  static void row_tail_dot_##SUF(const T *restrict a, const T *restrict b,   \
                                 T *restrict c, long nb, long i, long j,     \
                                 T alpha)                                    \
  {                                                                          \
    const T *ai = a + i * nb;                                                \
    T *ci = c + i * nb;                                                      \
    for (; j + 8 <= nb; j += 8) {                                            \
      T s[8];                                                                \
      for (int q = 0; q < 8; q++) s[q] = (T)0;                               \
      for (long k = 0; k < nb; k++) {                                        \
        T av = ai[k];                                                        \
        for (int q = 0; q < 8; q++) s[q] += av * b[(j + q) * nb + k];        \
      }                                                                      \
      for (int q = 0; q < 8; q++) ci[j + q] += alpha * s[q];                 \
    }                                                                        \
    for (; j < nb; j++) {                                                    \
      T s = (T)0;                                                            \
      for (long k = 0; k < nb; k++) s += ai[k] * b[j * nb + k];              \
      ci[j] += alpha * s;                                                    \
    }                                                                        \
  }

DEF_ROW_TAILS(double, d)
DEF_ROW_TAILS(float, s)

/* ---------------- gemm cores ---------------- */

#define DEF_GEMM_CORE(T, SUF, TILE_FN)                                       \
  static void gemm_core_##SUF(const T *restrict a, const T *restrict b,      \
                              T *restrict c, long nb, T alpha,               \
                              const kcfg *cf, int dot)                       \
  {                                                                          \
    const int mr = shapes[cf->shape].mr, nr = shapes[cf->shape].nr;          \
    TILE_FN fn = dot ? dot_tab_##SUF[cf->shape] : nn_tab_##SUF[cf->shape];   \
    TILE_FN fn1 = dot ? dot_tab_##SUF[widx(nr)] : nn_tab_##SUF[widx(nr)];    \
    long i = 0;                                                              \
    for (; i + mr <= nb; i += mr) {                                          \
      long j = 0;                                                            \
      if (cf->prefetch)                                                      \
        for (int m = 0; m < mr && i + mr + m < nb; m++)                      \
          __builtin_prefetch(a + (i + mr + m) * nb, 0, 3);                   \
      for (; j + nr <= nb; j += nr) fn(a, b, c, nb, i, j, alpha);            \
      if (j < nb)                                                            \
        for (int m = 0; m < mr; m++) {                                       \
          if (dot) row_tail_dot_##SUF(a, b, c, nb, i + m, j, alpha);         \
          else row_tail_nn_##SUF(a, b, c, nb, i + m, j, alpha);              \
        }                                                                    \
    }                                                                        \
    for (; i < nb; i++) {                                                    \
      long j = 0;                                                            \
      for (; j + nr <= nb; j += nr) fn1(a, b, c, nb, i, j, alpha);           \
      if (j < nb) {                                                          \
        if (dot) row_tail_dot_##SUF(a, b, c, nb, i, j, alpha);               \
        else row_tail_nn_##SUF(a, b, c, nb, i, j, alpha);                    \
      }                                                                      \
    }                                                                        \
  }

DEF_GEMM_CORE(double, d, tile_d_fn)
DEF_GEMM_CORE(float, s, tile_s_fn)

/* ---------------- syrk bodies and core ----------------
 *
 * Lower triangle of c: c = alpha * a a^T + beta * c (Blas.syrk NoTrans).
 * The triangular store boundary does not shrink the compute tier: a full
 * NR-wide block is accumulated whenever it fits in the row (reads stay
 * in-bounds), and only the j <= i columns are stored.  Stored elements
 * see exactly their own k-ascending chain; the discarded accumulators
 * are independent, so this wastes a few flops but keeps the wide-SIMD
 * rate on every row.  Row-group (MR > 1) tiling does not compose with
 * the per-row triangular bound, so syrk uses only the WIDTH of the
 * configured shape. */

#define DEF_SYRK(T, SUF, NR)                                                 \
  static void syrk_pk_##NR##_##SUF(const T *restrict a, const T *restrict at,\
      T *restrict c, long nb, long i, long j0, T alpha, T beta)              \
  {                                                                          \
    const T *ai = a + i * nb;                                                \
    const T *atj = at + j0;                                                  \
    T *ci = c + i * nb;                                                      \
    T s[NR];                                                                 \
    long m;                                                                  \
    for (int q = 0; q < NR; q++) s[q] = (T)0;                                \
    for (long k = 0; k < nb; k++) {                                          \
      T av = ai[k];                                                          \
      const T *atk = atj + k * nb;                                           \
      for (int q = 0; q < NR; q++) s[q] += av * atk[q];                      \
    }                                                                        \
    m = i - j0 + 1;                                                          \
    if (m > NR) m = NR;                                                      \
    for (long q = 0; q < m; q++)                                             \
      ci[j0 + q] = alpha * s[q] + beta * ci[j0 + q];                         \
  }                                                                          \
  static void syrk_dot_##NR##_##SUF(const T *restrict a, const T *restrict b,\
      T *restrict c, long nb, long i, long j0, T alpha, T beta)              \
  {                                                                          \
    const T *ai = a + i * nb;                                                \
    T *ci = c + i * nb;                                                      \
    T s[NR];                                                                 \
    long m;                                                                  \
    for (int q = 0; q < NR; q++) s[q] = (T)0;                                \
    for (long k = 0; k < nb; k++) {                                          \
      T av = ai[k];                                                          \
      for (int q = 0; q < NR; q++) s[q] += av * b[(j0 + q) * nb + k];        \
    }                                                                        \
    m = i - j0 + 1;                                                          \
    if (m > NR) m = NR;                                                      \
    for (long q = 0; q < m; q++)                                             \
      ci[j0 + q] = alpha * s[q] + beta * ci[j0 + q];                         \
  }

DEF_SYRK(double, d, 8)
DEF_SYRK(double, d, 16)
DEF_SYRK(double, d, 32)
DEF_SYRK(float, s, 8)
DEF_SYRK(float, s, 16)
DEF_SYRK(float, s, 32)

typedef void (*syrk_d_fn)(const double *restrict, const double *restrict,
                          double *restrict, long, long, long, double, double);
typedef void (*syrk_s_fn)(const float *restrict, const float *restrict,
                          float *restrict, long, long, long, float, float);

static const syrk_d_fn syrk_pk_tab_d[] = { syrk_pk_8_d, syrk_pk_16_d,
                                           syrk_pk_32_d };
static const syrk_d_fn syrk_dot_tab_d[] = { syrk_dot_8_d, syrk_dot_16_d,
                                            syrk_dot_32_d };
static const syrk_s_fn syrk_pk_tab_s[] = { syrk_pk_8_s, syrk_pk_16_s,
                                           syrk_pk_32_s };
static const syrk_s_fn syrk_dot_tab_s[] = { syrk_dot_8_s, syrk_dot_16_s,
                                            syrk_dot_32_s };

/* bsrc is the transposed scratch (pack=1) or a itself (pack=0). */
#define DEF_SYRK_CORE(T, SUF, FN)                                            \
  static void syrk_core_##SUF(const T *restrict a, const T *restrict bsrc,   \
                              T *restrict c, long nb, T alpha, T beta,       \
                              const kcfg *cf)                                \
  {                                                                          \
    const int nr = shapes[cf->shape].nr;                                     \
    const int pk = cf->pack;                                                 \
    FN fw = pk ? syrk_pk_tab_##SUF[widx(nr)] : syrk_dot_tab_##SUF[widx(nr)]; \
    FN f8 = pk ? syrk_pk_tab_##SUF[0] : syrk_dot_tab_##SUF[0];               \
    for (long i = 0; i < nb; i++) {                                          \
      const T *ai = a + i * nb;                                              \
      T *ci = c + i * nb;                                                    \
      long j = 0;                                                            \
      if (cf->prefetch && i + 1 < nb)                                        \
        __builtin_prefetch(a + (i + 1) * nb, 0, 3);                          \
      for (; j <= i && j + nr <= nb; j += nr)                                \
        fw(a, bsrc, c, nb, i, j, alpha, beta);                               \
      if (nr > 8)                                                            \
        for (; j <= i && j + 8 <= nb; j += 8)                                \
          f8(a, bsrc, c, nb, i, j, alpha, beta);                             \
      for (; j <= i; j++) {                                                  \
        T s = (T)0;                                                          \
        if (pk)                                                              \
          for (long k = 0; k < nb; k++) s += ai[k] * bsrc[k * nb + j];       \
        else                                                                 \
          for (long k = 0; k < nb; k++) s += ai[k] * bsrc[j * nb + k];       \
        ci[j] = alpha * s + beta * ci[j];                                    \
      }                                                                      \
    }                                                                        \
  }

DEF_SYRK_CORE(double, d, syrk_d_fn)
DEF_SYRK_CORE(float, s, syrk_s_fn)

/* ---------------- float64 kernels ---------------- */

CAMLprim value xsc_pk_gemm_nn_d(value va, value voa, value vb, value vob,
                                value vc, value voc, value vnb, value valpha)
{
  long nb = Long_val(vnb);
  const double *a = (const double *)Caml_ba_data_val(va) + Long_val(voa);
  const double *b = (const double *)Caml_ba_data_val(vb) + Long_val(vob);
  double *c = (double *)Caml_ba_data_val(vc) + Long_val(voc);
  gemm_core_d(a, b, c, nb, Double_val(valpha), &cfg_d[K_NN], 0);
  return Val_unit;
}

CAMLprim value xsc_pk_gemm_nn_d_byte(value *argv, int argn)
{
  (void)argn;
  return xsc_pk_gemm_nn_d(argv[0], argv[1], argv[2], argv[3], argv[4], argv[5],
                          argv[6], argv[7]);
}

/* c += alpha * a * b^T.  pack=1: transpose b once, then run the unit-stride
 * packed core; pack=0: run the dot core on rows of b directly.  Either way
 * each element accumulates a[i][k] * b[j][k] in k-ascending order. */
CAMLprim value xsc_pk_gemm_nt_d(value va, value voa, value vb, value vob,
                                value vc, value voc, value vnb, value valpha)
{
  long nb = Long_val(vnb);
  const double *a = (const double *)Caml_ba_data_val(va) + Long_val(voa);
  const double *b = (const double *)Caml_ba_data_val(vb) + Long_val(vob);
  double *c = (double *)Caml_ba_data_val(vc) + Long_val(voc);
  const kcfg *cf = &cfg_d[K_NT];
  if (cf->pack) {
    double *bt = scratch_d(nb * nb);
    if (bt == NULL) return Val_long(-2); /* allocation failure: no-op */
    for (long j = 0; j < nb; j++) {
      const double *bj = b + j * nb;
      for (long k = 0; k < nb; k++) bt[k * nb + j] = bj[k];
    }
    gemm_core_d(a, bt, c, nb, Double_val(valpha), cf, 0);
  }
  else
    gemm_core_d(a, b, c, nb, Double_val(valpha), cf, 1);
  return Val_unit;
}

CAMLprim value xsc_pk_gemm_nt_d_byte(value *argv, int argn)
{
  (void)argn;
  return xsc_pk_gemm_nt_d(argv[0], argv[1], argv[2], argv[3], argv[4], argv[5],
                          argv[6], argv[7]);
}

/* Lower triangle of c: c = alpha * a a^T + beta * c (Blas.syrk NoTrans). */
CAMLprim value xsc_pk_syrk_ln_d(value va, value voa, value vc, value voc,
                                value vnb, value valpha, value vbeta)
{
  long nb = Long_val(vnb);
  const double *a = (const double *)Caml_ba_data_val(va) + Long_val(voa);
  double *c = (double *)Caml_ba_data_val(vc) + Long_val(voc);
  const kcfg *cf = &cfg_d[K_SYRK];
  const double *bsrc = a;
  if (cf->pack) {
    double *at = scratch_d(nb * nb);
    if (at == NULL) return Val_long(-2);
    for (long j = 0; j < nb; j++) {
      const double *aj = a + j * nb;
      for (long k = 0; k < nb; k++) at[k * nb + j] = aj[k];
    }
    bsrc = at;
  }
  syrk_core_d(a, bsrc, c, nb, Double_val(valpha), Double_val(vbeta), cf);
  return Val_unit;
}

CAMLprim value xsc_pk_syrk_ln_d_byte(value *argv, int argn)
{
  (void)argn;
  return xsc_pk_syrk_ln_d(argv[0], argv[1], argv[2], argv[3], argv[4], argv[5],
                          argv[6]);
}

/* b <- b * a^-T with a lower triangular, alpha = 1 (Cholesky trsm).
 * Mirrors the Right/effective-Upper branch of Blas.trsm.
 *
 * pack=1: the substitution chain of one element runs over its row's
 * earlier columns, but the rows themselves are independent — so b is
 * transposed into scratch, the column sweep becomes a unit-stride axpy
 * across rows (vectorizable without touching any element's own chain),
 * and the result is transposed back.
 *
 * pack=0: row-sequential in place — element b[i][j] runs its own
 * l-ascending subtraction chain then divides, with no transpose round
 * trip (less traffic, no cross-row SIMD).
 *
 * Element b[i][j] sees the same sequential l-ascending subtractions and
 * final divide, on the same operand values, either way: bitwise identical. */
static void trsm_rlt_direct_d(const double *restrict a, double *restrict b,
                              long nb)
{
  for (long i = 0; i < nb; i++) {
    double *bi = b + i * nb;
    for (long j = 0; j < nb; j++) {
      const double *aj = a + j * nb;
      double x = bi[j];
      double d;
      for (long l = 0; l < j; l++) {
        double alj = aj[l];
        if (alj != 0.0) x -= bi[l] * alj;
      }
      d = aj[j];
      if (d != 1.0) x /= d;
      bi[j] = x;
    }
  }
}

CAMLprim value xsc_pk_trsm_rlt_d(value va, value voa, value vb, value vob,
                                 value vnb)
{
  long nb = Long_val(vnb);
  const double *a = (const double *)Caml_ba_data_val(va) + Long_val(voa);
  double *b = (double *)Caml_ba_data_val(vb) + Long_val(vob);
  double *bt;
  if (!cfg_d[K_TRSM].pack) {
    trsm_rlt_direct_d(a, b, nb);
    return Val_unit;
  }
  bt = scratch_d(nb * nb);
  if (bt == NULL) return Val_long(-2);
  for (long i = 0; i < nb; i++)
    for (long j = 0; j < nb; j++) bt[j * nb + i] = b[i * nb + j];
  for (long j = 0; j < nb; j++) {
    const double *aj = a + j * nb;
    double *btj = bt + j * nb;
    for (long l = 0; l < j; l++) {
      double alj = aj[l];
      if (alj != 0.0) {
        const double *btl = bt + l * nb;
        for (long i = 0; i < nb; i++) btj[i] -= btl[i] * alj;
      }
    }
    double d = aj[j];
    if (d != 1.0)
      for (long i = 0; i < nb; i++) btj[i] /= d;
  }
  for (long i = 0; i < nb; i++)
    for (long j = 0; j < nb; j++) b[i * nb + j] = bt[j * nb + i];
  return Val_unit;
}

/* b <- a^-1 b with a unit lower triangular (LU panel trsm, Left/Lower/Unit). */
CAMLprim value xsc_pk_trsm_llu_d(value va, value voa, value vb, value vob,
                                 value vnb)
{
  long nb = Long_val(vnb);
  const double *a = (const double *)Caml_ba_data_val(va) + Long_val(voa);
  double *b = (double *)Caml_ba_data_val(vb) + Long_val(vob);
  for (long i = 0; i < nb; i++) {
    const double *ai = a + i * nb;
    double *bi = b + i * nb;
    for (long l = 0; l < i; l++) {
      double ail = ai[l];
      if (ail != 0.0) {
        const double *bl = b + l * nb;
        for (long j = 0; j < nb; j++) bi[j] -= ail * bl[j];
      }
    }
  }
  return Val_unit;
}

/* b <- b * a^-1 with a upper triangular (LU panel trsm, Right/Upper).
 * Same transposed column-sweep as trsm_rlt above, same bitwise argument. */
CAMLprim value xsc_pk_trsm_ru_d(value va, value voa, value vb, value vob,
                                value vnb)
{
  long nb = Long_val(vnb);
  const double *a = (const double *)Caml_ba_data_val(va) + Long_val(voa);
  double *b = (double *)Caml_ba_data_val(vb) + Long_val(vob);
  double *bt = scratch_d(nb * nb);
  if (bt == NULL) return Val_long(-2);
  for (long i = 0; i < nb; i++)
    for (long j = 0; j < nb; j++) bt[j * nb + i] = b[i * nb + j];
  for (long j = 0; j < nb; j++) {
    double *btj = bt + j * nb;
    for (long l = 0; l < j; l++) {
      double alj = a[l * nb + j];
      if (alj != 0.0) {
        const double *btl = bt + l * nb;
        for (long i = 0; i < nb; i++) btj[i] -= btl[i] * alj;
      }
    }
    double d = a[j * nb + j];
    if (d != 1.0)
      for (long i = 0; i < nb; i++) btj[i] /= d;
  }
  for (long i = 0; i < nb; i++)
    for (long j = 0; j < nb; j++) b[i * nb + j] = bt[j * nb + i];
  return Val_unit;
}

/* In-place lower Cholesky of one tile; literal Lapack.potrf.
 * Returns -1 on success, the failing column index on a non-positive pivot. */
CAMLprim value xsc_pk_potrf_d(value va, value voa, value vnb)
{
  long nb = Long_val(vnb);
  double *a = (double *)Caml_ba_data_val(va) + Long_val(voa);
  for (long j = 0; j < nb; j++) {
    double *aj = a + j * nb;
    double d = aj[j];
    for (long k = 0; k < j; k++) {
      double l = aj[k];
      d -= l * l;
    }
    if (d <= 0.0) return Val_long(j);
    double ljj = sqrt(d);
    aj[j] = ljj;
    for (long i = j + 1; i < nb; i++) {
      double *ai = a + i * nb;
      double acc = ai[j];
      for (long k = 0; k < j; k++) acc -= ai[k] * aj[k];
      ai[j] = acc / ljj;
    }
  }
  return Val_long(-1);
}

/* In-place LU without pivoting; literal Lapack.getrf_nopiv.
 * Returns -1 on success, the failing column on a zero pivot. */
CAMLprim value xsc_pk_getrf_nopiv_d(value va, value voa, value vnb)
{
  long nb = Long_val(vnb);
  double *a = (double *)Caml_ba_data_val(va) + Long_val(voa);
  for (long k = 0; k < nb; k++) {
    const double *ak = a + k * nb;
    double akk = ak[k];
    if (akk == 0.0) return Val_long(k);
    for (long i = k + 1; i < nb; i++) {
      double *ai = a + i * nb;
      double lik = ai[k] / akk;
      ai[k] = lik;
      if (lik != 0.0)
        for (long j = k + 1; j < nb; j++) ai[j] -= lik * ak[j];
    }
  }
  return Val_long(-1);
}

/* ---------------- float32 kernels ---------------- */

/* Genuine single-precision arithmetic: every operation rounds to float.
 * Same micro-tile family as the double kernels — at equal tile width that
 * is twice the lanes per vector at half the memory traffic, which is
 * exactly the "rule 4" advantage the mixed-precision path measures. */

CAMLprim value xsc_pk_gemm_nt_s(value va, value voa, value vb, value vob,
                                value vc, value voc, value vnb, value valpha)
{
  long nb = Long_val(vnb);
  const float *a = (const float *)Caml_ba_data_val(va) + Long_val(voa);
  const float *b = (const float *)Caml_ba_data_val(vb) + Long_val(vob);
  float *c = (float *)Caml_ba_data_val(vc) + Long_val(voc);
  const kcfg *cf = &cfg_s[K_NT];
  if (cf->pack) {
    float *bt = scratch_s(nb * nb);
    if (bt == NULL) return Val_long(-2);
    for (long j = 0; j < nb; j++) {
      const float *bj = b + j * nb;
      for (long k = 0; k < nb; k++) bt[k * nb + j] = bj[k];
    }
    gemm_core_s(a, bt, c, nb, (float)Double_val(valpha), cf, 0);
  }
  else
    gemm_core_s(a, b, c, nb, (float)Double_val(valpha), cf, 1);
  return Val_unit;
}

CAMLprim value xsc_pk_gemm_nt_s_byte(value *argv, int argn)
{
  (void)argn;
  return xsc_pk_gemm_nt_s(argv[0], argv[1], argv[2], argv[3], argv[4], argv[5],
                          argv[6], argv[7]);
}

CAMLprim value xsc_pk_gemm_nn_s(value va, value voa, value vb, value vob,
                                value vc, value voc, value vnb, value valpha)
{
  long nb = Long_val(vnb);
  const float *a = (const float *)Caml_ba_data_val(va) + Long_val(voa);
  const float *b = (const float *)Caml_ba_data_val(vb) + Long_val(vob);
  float *c = (float *)Caml_ba_data_val(vc) + Long_val(voc);
  gemm_core_s(a, b, c, nb, (float)Double_val(valpha), &cfg_s[K_NN], 0);
  return Val_unit;
}

CAMLprim value xsc_pk_gemm_nn_s_byte(value *argv, int argn)
{
  (void)argn;
  return xsc_pk_gemm_nn_s(argv[0], argv[1], argv[2], argv[3], argv[4], argv[5],
                          argv[6], argv[7]);
}

CAMLprim value xsc_pk_syrk_ln_s(value va, value voa, value vc, value voc,
                                value vnb, value valpha, value vbeta)
{
  long nb = Long_val(vnb);
  const float *a = (const float *)Caml_ba_data_val(va) + Long_val(voa);
  float *c = (float *)Caml_ba_data_val(vc) + Long_val(voc);
  const kcfg *cf = &cfg_s[K_SYRK];
  const float *bsrc = a;
  if (cf->pack) {
    float *at = scratch_s(nb * nb);
    if (at == NULL) return Val_long(-2);
    for (long j = 0; j < nb; j++) {
      const float *aj = a + j * nb;
      for (long k = 0; k < nb; k++) at[k * nb + j] = aj[k];
    }
    bsrc = at;
  }
  syrk_core_s(a, bsrc, c, nb, (float)Double_val(valpha),
              (float)Double_val(vbeta), cf);
  return Val_unit;
}

CAMLprim value xsc_pk_syrk_ln_s_byte(value *argv, int argn)
{
  (void)argn;
  return xsc_pk_syrk_ln_s(argv[0], argv[1], argv[2], argv[3], argv[4], argv[5],
                          argv[6]);
}

static void trsm_rlt_direct_s(const float *restrict a, float *restrict b,
                              long nb)
{
  for (long i = 0; i < nb; i++) {
    float *bi = b + i * nb;
    for (long j = 0; j < nb; j++) {
      const float *aj = a + j * nb;
      float x = bi[j];
      float d;
      for (long l = 0; l < j; l++) {
        float alj = aj[l];
        if (alj != 0.0f) x -= bi[l] * alj;
      }
      d = aj[j];
      if (d != 1.0f) x /= d;
      bi[j] = x;
    }
  }
}

CAMLprim value xsc_pk_trsm_rlt_s(value va, value voa, value vb, value vob,
                                 value vnb)
{
  long nb = Long_val(vnb);
  const float *a = (const float *)Caml_ba_data_val(va) + Long_val(voa);
  float *b = (float *)Caml_ba_data_val(vb) + Long_val(vob);
  float *bt;
  if (!cfg_s[K_TRSM].pack) {
    trsm_rlt_direct_s(a, b, nb);
    return Val_unit;
  }
  bt = scratch_s(nb * nb);
  if (bt == NULL) return Val_long(-2);
  for (long i = 0; i < nb; i++)
    for (long j = 0; j < nb; j++) bt[j * nb + i] = b[i * nb + j];
  for (long j = 0; j < nb; j++) {
    const float *aj = a + j * nb;
    float *btj = bt + j * nb;
    for (long l = 0; l < j; l++) {
      float alj = aj[l];
      if (alj != 0.0f) {
        const float *btl = bt + l * nb;
        for (long i = 0; i < nb; i++) btj[i] -= btl[i] * alj;
      }
    }
    float d = aj[j];
    if (d != 1.0f)
      for (long i = 0; i < nb; i++) btj[i] /= d;
  }
  for (long i = 0; i < nb; i++)
    for (long j = 0; j < nb; j++) b[i * nb + j] = bt[j * nb + i];
  return Val_unit;
}

CAMLprim value xsc_pk_potrf_s(value va, value voa, value vnb)
{
  long nb = Long_val(vnb);
  float *a = (float *)Caml_ba_data_val(va) + Long_val(voa);
  for (long j = 0; j < nb; j++) {
    float *aj = a + j * nb;
    float d = aj[j];
    for (long k = 0; k < j; k++) {
      float l = aj[k];
      d -= l * l;
    }
    if (d <= 0.0f) return Val_long(j);
    float ljj = sqrtf(d);
    aj[j] = ljj;
    for (long i = j + 1; i < nb; i++) {
      float *ai = a + i * nb;
      float acc = ai[j];
      for (long k = 0; k < j; k++) acc -= ai[k] * aj[k];
      ai[j] = acc / ljj;
    }
  }
  return Val_long(-1);
}
