/* Packed-tile BLAS kernels over contiguous nb x nb tiles.
 *
 * Every kernel here operates on one (or a few) tiles of a tile-major packed
 * matrix: a single Bigarray buffer in which tile (i, j) occupies the
 * contiguous slice [off, off + nb*nb) in row-major order.  Contiguity is the
 * whole point — the inner loops below are unit-stride, so the compiler can
 * keep them in SIMD registers without gather/scatter.
 *
 * Bitwise contract (float64): each kernel performs exactly the same
 * floating-point operations in exactly the same order as its OCaml
 * counterpart in Blas/Lapack:
 *
 *   - gemm:  per element, a k-ascending accumulation into a fresh
 *            accumulator followed by ONE update c += alpha * acc
 *            (the order shared by Blas.gemm_unblocked and Kernel.micro);
 *   - syrk:  per element, k-ascending acc, then c = alpha*acc + beta*c;
 *   - trsm:  sequential axpy-style substitution in the same l-order as
 *            the corresponding Blas.trsm branch;
 *   - potrf / getrf_nopiv: literal transcriptions of Lapack.potrf and
 *            Lapack.getrf_nopiv.
 *
 * The j-blocked loops keep tiers of 32 / 8 INDEPENDENT accumulator chains
 * (32 fills multiple 512-bit vectors, breaking the add-latency chain that a
 * single vector accumulator would serialize on); vectorizing across chains
 * never reassociates any single chain, so -O3 auto-vectorization preserves
 * results bitwise.  The build passes -ffp-contract=off so no multiply-add
 * is contracted into an FMA (an FMA rounds once where the OCaml code rounds
 * twice).  No -ffast-math.
 *
 * The float32 kernels compute in genuine C `float` arithmetic — this is the
 * real reduced-precision path (half the bytes moved per element, twice the
 * SIMD lanes), not double arithmetic rounded on store.
 */

#include <caml/mlvalues.h>
#include <caml/bigarray.h>
#include <math.h>
#include <stdlib.h>
#include <string.h>

/* Per-thread scratch for transposed operands (gemm_nt / syrk read their
 * second operand along k; transposing it once, O(nb^2), turns the O(nb^3)
 * inner loops unit-stride).  Domains are threads, so __thread gives each
 * worker its own buffer with no locking; the buffer only grows and is
 * reused across calls, so steady-state cost is zero allocation. */
static __thread double *tbuf_d = NULL;
static __thread long tbuf_d_len = 0;
static __thread float *tbuf_s = NULL;
static __thread long tbuf_s_len = 0;

static double *scratch_d(long n)
{
  if (tbuf_d_len < n) {
    free(tbuf_d);
    tbuf_d = (double *)malloc((size_t)n * sizeof(double));
    tbuf_d_len = tbuf_d ? n : 0;
  }
  return tbuf_d;
}

static float *scratch_s(long n)
{
  if (tbuf_s_len < n) {
    free(tbuf_s);
    tbuf_s = (float *)malloc((size_t)n * sizeof(float));
    tbuf_s_len = tbuf_s ? n : 0;
  }
  return tbuf_s;
}

/* ---------------- float64 kernels ---------------- */

/* c += alpha * a * b, all nb x nb row-major contiguous. */
static void nn_body_d(const double *a, const double *b, double *c, long nb,
                      double alpha)
{
  for (long i = 0; i < nb; i++) {
    const double *ai = a + i * nb;
    double *ci = c + i * nb;
    long j = 0;
    for (; j + 32 <= nb; j += 32) {
      double s[32];
      for (int q = 0; q < 32; q++) s[q] = 0.0;
      const double *bj = b + j;
      for (long k = 0; k < nb; k++) {
        double av = ai[k];
        const double *bk = bj + k * nb;
        for (int q = 0; q < 32; q++) s[q] += av * bk[q];
      }
      for (int q = 0; q < 32; q++) ci[j + q] += alpha * s[q];
    }
    for (; j + 8 <= nb; j += 8) {
      double s[8];
      for (int q = 0; q < 8; q++) s[q] = 0.0;
      const double *bj = b + j;
      for (long k = 0; k < nb; k++) {
        double av = ai[k];
        const double *bk = bj + k * nb;
        for (int q = 0; q < 8; q++) s[q] += av * bk[q];
      }
      for (int q = 0; q < 8; q++) ci[j + q] += alpha * s[q];
    }
    for (; j < nb; j++) {
      double s = 0.0;
      for (long k = 0; k < nb; k++) s += ai[k] * b[k * nb + j];
      ci[j] += alpha * s;
    }
  }
}

CAMLprim value xsc_pk_gemm_nn_d(value va, value voa, value vb, value vob,
                                value vc, value voc, value vnb, value valpha)
{
  long nb = Long_val(vnb);
  const double *a = (const double *)Caml_ba_data_val(va) + Long_val(voa);
  const double *b = (const double *)Caml_ba_data_val(vb) + Long_val(vob);
  double *c = (double *)Caml_ba_data_val(vc) + Long_val(voc);
  nn_body_d(a, b, c, nb, Double_val(valpha));
  return Val_unit;
}

CAMLprim value xsc_pk_gemm_nn_d_byte(value *argv, int argn)
{
  (void)argn;
  return xsc_pk_gemm_nn_d(argv[0], argv[1], argv[2], argv[3], argv[4], argv[5],
                          argv[6], argv[7]);
}

/* c += alpha * a * b^T: transpose b once, then run the unit-stride body.
 * Each element still accumulates a[i][k] * b[j][k] in k-ascending order. */
CAMLprim value xsc_pk_gemm_nt_d(value va, value voa, value vb, value vob,
                                value vc, value voc, value vnb, value valpha)
{
  long nb = Long_val(vnb);
  const double *a = (const double *)Caml_ba_data_val(va) + Long_val(voa);
  const double *b = (const double *)Caml_ba_data_val(vb) + Long_val(vob);
  double *c = (double *)Caml_ba_data_val(vc) + Long_val(voc);
  double *bt = scratch_d(nb * nb);
  if (bt == NULL) return Val_long(-2); /* allocation failure: caller raises */
  for (long j = 0; j < nb; j++) {
    const double *bj = b + j * nb;
    for (long k = 0; k < nb; k++) bt[k * nb + j] = bj[k];
  }
  nn_body_d(a, bt, c, nb, Double_val(valpha));
  return Val_unit;
}

CAMLprim value xsc_pk_gemm_nt_d_byte(value *argv, int argn)
{
  (void)argn;
  return xsc_pk_gemm_nt_d(argv[0], argv[1], argv[2], argv[3], argv[4], argv[5],
                          argv[6], argv[7]);
}

/* Lower triangle of c: c = alpha * a a^T + beta * c (Blas.syrk NoTrans). */
CAMLprim value xsc_pk_syrk_ln_d(value va, value voa, value vc, value voc,
                                value vnb, value valpha, value vbeta)
{
  long nb = Long_val(vnb);
  const double *a = (const double *)Caml_ba_data_val(va) + Long_val(voa);
  double *c = (double *)Caml_ba_data_val(vc) + Long_val(voc);
  double alpha = Double_val(valpha), beta = Double_val(vbeta);
  double *at = scratch_d(nb * nb);
  if (at == NULL) return Val_long(-2);
  for (long j = 0; j < nb; j++) {
    const double *aj = a + j * nb;
    for (long k = 0; k < nb; k++) at[k * nb + j] = aj[k];
  }
  /* The triangular store boundary does not shrink the compute tier: a full
   * 32-wide block is accumulated whenever it fits in the row (reads stay
   * in-bounds), and only the j <= i columns are stored.  Stored elements
   * see exactly their own k-ascending chain; the discarded accumulators
   * are independent, so this wastes a few flops but keeps the wide-SIMD
   * rate on every row — without it, rows below the tier width fall back
   * to latency-bound narrow blocks. */
  for (long i = 0; i < nb; i++) {
    const double *ai = a + i * nb;
    double *ci = c + i * nb;
    long j = 0;
    for (; j <= i && j + 32 <= nb; j += 32) {
      double s[32];
      for (int q = 0; q < 32; q++) s[q] = 0.0;
      const double *atj = at + j;
      for (long k = 0; k < nb; k++) {
        double av = ai[k];
        const double *atk = atj + k * nb;
        for (int q = 0; q < 32; q++) s[q] += av * atk[q];
      }
      long m = i - j + 1;
      if (m > 32) m = 32;
      for (long q = 0; q < m; q++) ci[j + q] = alpha * s[q] + beta * ci[j + q];
    }
    for (; j <= i && j + 8 <= nb; j += 8) {
      double s[8];
      for (int q = 0; q < 8; q++) s[q] = 0.0;
      const double *atj = at + j;
      for (long k = 0; k < nb; k++) {
        double av = ai[k];
        const double *atk = atj + k * nb;
        for (int q = 0; q < 8; q++) s[q] += av * atk[q];
      }
      long m = i - j + 1;
      if (m > 8) m = 8;
      for (long q = 0; q < m; q++) ci[j + q] = alpha * s[q] + beta * ci[j + q];
    }
    for (; j <= i; j++) {
      double s = 0.0;
      for (long k = 0; k < nb; k++) s += ai[k] * at[k * nb + j];
      ci[j] = alpha * s + beta * ci[j];
    }
  }
  return Val_unit;
}

CAMLprim value xsc_pk_syrk_ln_d_byte(value *argv, int argn)
{
  (void)argn;
  return xsc_pk_syrk_ln_d(argv[0], argv[1], argv[2], argv[3], argv[4], argv[5],
                          argv[6]);
}

/* b <- b * a^-T with a lower triangular, alpha = 1 (Cholesky trsm).
 * Mirrors the Right/effective-Upper branch of Blas.trsm.  The substitution
 * chain of one element runs over its row's earlier columns, but the rows
 * themselves are independent — so b is transposed into scratch, the column
 * sweep becomes a unit-stride axpy across rows (vectorizable without
 * touching any element's own chain), and the result is transposed back.
 * Element b[i][j] sees the same sequential l-ascending subtractions and
 * final divide, on the same operand values: bitwise identical. */
CAMLprim value xsc_pk_trsm_rlt_d(value va, value voa, value vb, value vob,
                                 value vnb)
{
  long nb = Long_val(vnb);
  const double *a = (const double *)Caml_ba_data_val(va) + Long_val(voa);
  double *b = (double *)Caml_ba_data_val(vb) + Long_val(vob);
  double *bt = scratch_d(nb * nb);
  if (bt == NULL) return Val_long(-2);
  for (long i = 0; i < nb; i++)
    for (long j = 0; j < nb; j++) bt[j * nb + i] = b[i * nb + j];
  for (long j = 0; j < nb; j++) {
    const double *aj = a + j * nb;
    double *btj = bt + j * nb;
    for (long l = 0; l < j; l++) {
      double alj = aj[l];
      if (alj != 0.0) {
        const double *btl = bt + l * nb;
        for (long i = 0; i < nb; i++) btj[i] -= btl[i] * alj;
      }
    }
    double d = aj[j];
    if (d != 1.0)
      for (long i = 0; i < nb; i++) btj[i] /= d;
  }
  for (long i = 0; i < nb; i++)
    for (long j = 0; j < nb; j++) b[i * nb + j] = bt[j * nb + i];
  return Val_unit;
}

/* b <- a^-1 b with a unit lower triangular (LU panel trsm, Left/Lower/Unit). */
CAMLprim value xsc_pk_trsm_llu_d(value va, value voa, value vb, value vob,
                                 value vnb)
{
  long nb = Long_val(vnb);
  const double *a = (const double *)Caml_ba_data_val(va) + Long_val(voa);
  double *b = (double *)Caml_ba_data_val(vb) + Long_val(vob);
  for (long i = 0; i < nb; i++) {
    const double *ai = a + i * nb;
    double *bi = b + i * nb;
    for (long l = 0; l < i; l++) {
      double ail = ai[l];
      if (ail != 0.0) {
        const double *bl = b + l * nb;
        for (long j = 0; j < nb; j++) bi[j] -= ail * bl[j];
      }
    }
  }
  return Val_unit;
}

/* b <- b * a^-1 with a upper triangular (LU panel trsm, Right/Upper).
 * Same transposed column-sweep as trsm_rlt above, same bitwise argument. */
CAMLprim value xsc_pk_trsm_ru_d(value va, value voa, value vb, value vob,
                                value vnb)
{
  long nb = Long_val(vnb);
  const double *a = (const double *)Caml_ba_data_val(va) + Long_val(voa);
  double *b = (double *)Caml_ba_data_val(vb) + Long_val(vob);
  double *bt = scratch_d(nb * nb);
  if (bt == NULL) return Val_long(-2);
  for (long i = 0; i < nb; i++)
    for (long j = 0; j < nb; j++) bt[j * nb + i] = b[i * nb + j];
  for (long j = 0; j < nb; j++) {
    double *btj = bt + j * nb;
    for (long l = 0; l < j; l++) {
      double alj = a[l * nb + j];
      if (alj != 0.0) {
        const double *btl = bt + l * nb;
        for (long i = 0; i < nb; i++) btj[i] -= btl[i] * alj;
      }
    }
    double d = a[j * nb + j];
    if (d != 1.0)
      for (long i = 0; i < nb; i++) btj[i] /= d;
  }
  for (long i = 0; i < nb; i++)
    for (long j = 0; j < nb; j++) b[i * nb + j] = bt[j * nb + i];
  return Val_unit;
}

/* In-place lower Cholesky of one tile; literal Lapack.potrf.
 * Returns -1 on success, the failing column index on a non-positive pivot. */
CAMLprim value xsc_pk_potrf_d(value va, value voa, value vnb)
{
  long nb = Long_val(vnb);
  double *a = (double *)Caml_ba_data_val(va) + Long_val(voa);
  for (long j = 0; j < nb; j++) {
    double *aj = a + j * nb;
    double d = aj[j];
    for (long k = 0; k < j; k++) {
      double l = aj[k];
      d -= l * l;
    }
    if (d <= 0.0) return Val_long(j);
    double ljj = sqrt(d);
    aj[j] = ljj;
    for (long i = j + 1; i < nb; i++) {
      double *ai = a + i * nb;
      double acc = ai[j];
      for (long k = 0; k < j; k++) acc -= ai[k] * aj[k];
      ai[j] = acc / ljj;
    }
  }
  return Val_long(-1);
}

/* In-place LU without pivoting; literal Lapack.getrf_nopiv.
 * Returns -1 on success, the failing column on a zero pivot. */
CAMLprim value xsc_pk_getrf_nopiv_d(value va, value voa, value vnb)
{
  long nb = Long_val(vnb);
  double *a = (double *)Caml_ba_data_val(va) + Long_val(voa);
  for (long k = 0; k < nb; k++) {
    const double *ak = a + k * nb;
    double akk = ak[k];
    if (akk == 0.0) return Val_long(k);
    for (long i = k + 1; i < nb; i++) {
      double *ai = a + i * nb;
      double lik = ai[k] / akk;
      ai[k] = lik;
      if (lik != 0.0)
        for (long j = k + 1; j < nb; j++) ai[j] -= lik * ak[j];
    }
  }
  return Val_long(-1);
}

/* ---------------- float32 kernels ---------------- */

/* Genuine single-precision arithmetic: every operation rounds to float.
 * Same 32 / 8 accumulator tiers as the double kernels — at equal tier
 * width that is twice the lanes per vector at half the memory traffic,
 * which is exactly the "rule 4" advantage the mixed-precision path
 * measures. */

static void nn_body_s(const float *a, const float *b, float *c, long nb,
                      float alpha)
{
  for (long i = 0; i < nb; i++) {
    const float *ai = a + i * nb;
    float *ci = c + i * nb;
    long j = 0;
    for (; j + 32 <= nb; j += 32) {
      float s[32];
      for (int q = 0; q < 32; q++) s[q] = 0.0f;
      const float *bj = b + j;
      for (long k = 0; k < nb; k++) {
        float av = ai[k];
        const float *bk = bj + k * nb;
        for (int q = 0; q < 32; q++) s[q] += av * bk[q];
      }
      for (int q = 0; q < 32; q++) ci[j + q] += alpha * s[q];
    }
    for (; j + 8 <= nb; j += 8) {
      float s[8];
      for (int q = 0; q < 8; q++) s[q] = 0.0f;
      const float *bj = b + j;
      for (long k = 0; k < nb; k++) {
        float av = ai[k];
        const float *bk = bj + k * nb;
        for (int q = 0; q < 8; q++) s[q] += av * bk[q];
      }
      for (int q = 0; q < 8; q++) ci[j + q] += alpha * s[q];
    }
    for (; j < nb; j++) {
      float s = 0.0f;
      for (long k = 0; k < nb; k++) s += ai[k] * b[k * nb + j];
      ci[j] += alpha * s;
    }
  }
}

CAMLprim value xsc_pk_gemm_nt_s(value va, value voa, value vb, value vob,
                                value vc, value voc, value vnb, value valpha)
{
  long nb = Long_val(vnb);
  const float *a = (const float *)Caml_ba_data_val(va) + Long_val(voa);
  const float *b = (const float *)Caml_ba_data_val(vb) + Long_val(vob);
  float *c = (float *)Caml_ba_data_val(vc) + Long_val(voc);
  float *bt = scratch_s(nb * nb);
  if (bt == NULL) return Val_long(-2);
  for (long j = 0; j < nb; j++) {
    const float *bj = b + j * nb;
    for (long k = 0; k < nb; k++) bt[k * nb + j] = bj[k];
  }
  nn_body_s(a, bt, c, nb, (float)Double_val(valpha));
  return Val_unit;
}

CAMLprim value xsc_pk_gemm_nt_s_byte(value *argv, int argn)
{
  (void)argn;
  return xsc_pk_gemm_nt_s(argv[0], argv[1], argv[2], argv[3], argv[4], argv[5],
                          argv[6], argv[7]);
}

CAMLprim value xsc_pk_gemm_nn_s(value va, value voa, value vb, value vob,
                                value vc, value voc, value vnb, value valpha)
{
  long nb = Long_val(vnb);
  const float *a = (const float *)Caml_ba_data_val(va) + Long_val(voa);
  const float *b = (const float *)Caml_ba_data_val(vb) + Long_val(vob);
  float *c = (float *)Caml_ba_data_val(vc) + Long_val(voc);
  nn_body_s(a, b, c, nb, (float)Double_val(valpha));
  return Val_unit;
}

CAMLprim value xsc_pk_gemm_nn_s_byte(value *argv, int argn)
{
  (void)argn;
  return xsc_pk_gemm_nn_s(argv[0], argv[1], argv[2], argv[3], argv[4], argv[5],
                          argv[6], argv[7]);
}

CAMLprim value xsc_pk_syrk_ln_s(value va, value voa, value vc, value voc,
                                value vnb, value valpha, value vbeta)
{
  long nb = Long_val(vnb);
  const float *a = (const float *)Caml_ba_data_val(va) + Long_val(voa);
  float *c = (float *)Caml_ba_data_val(vc) + Long_val(voc);
  float alpha = (float)Double_val(valpha), beta = (float)Double_val(vbeta);
  float *at = scratch_s(nb * nb);
  if (at == NULL) return Val_long(-2);
  for (long j = 0; j < nb; j++) {
    const float *aj = a + j * nb;
    for (long k = 0; k < nb; k++) at[k * nb + j] = aj[k];
  }
  /* Full-width compute tier with triangular masked store — see the f64
   * syrk above for the bitwise argument. */
  for (long i = 0; i < nb; i++) {
    const float *ai = a + i * nb;
    float *ci = c + i * nb;
    long j = 0;
    for (; j <= i && j + 32 <= nb; j += 32) {
      float s[32];
      for (int q = 0; q < 32; q++) s[q] = 0.0f;
      const float *atj = at + j;
      for (long k = 0; k < nb; k++) {
        float av = ai[k];
        const float *atk = atj + k * nb;
        for (int q = 0; q < 32; q++) s[q] += av * atk[q];
      }
      long m = i - j + 1;
      if (m > 32) m = 32;
      for (long q = 0; q < m; q++) ci[j + q] = alpha * s[q] + beta * ci[j + q];
    }
    for (; j <= i && j + 8 <= nb; j += 8) {
      float s[8];
      for (int q = 0; q < 8; q++) s[q] = 0.0f;
      const float *atj = at + j;
      for (long k = 0; k < nb; k++) {
        float av = ai[k];
        const float *atk = atj + k * nb;
        for (int q = 0; q < 8; q++) s[q] += av * atk[q];
      }
      long m = i - j + 1;
      if (m > 8) m = 8;
      for (long q = 0; q < m; q++) ci[j + q] = alpha * s[q] + beta * ci[j + q];
    }
    for (; j <= i; j++) {
      float s = 0.0f;
      for (long k = 0; k < nb; k++) s += ai[k] * at[k * nb + j];
      ci[j] = alpha * s + beta * ci[j];
    }
  }
  return Val_unit;
}

CAMLprim value xsc_pk_syrk_ln_s_byte(value *argv, int argn)
{
  (void)argn;
  return xsc_pk_syrk_ln_s(argv[0], argv[1], argv[2], argv[3], argv[4], argv[5],
                          argv[6]);
}

CAMLprim value xsc_pk_trsm_rlt_s(value va, value voa, value vb, value vob,
                                 value vnb)
{
  long nb = Long_val(vnb);
  const float *a = (const float *)Caml_ba_data_val(va) + Long_val(voa);
  float *b = (float *)Caml_ba_data_val(vb) + Long_val(vob);
  float *bt = scratch_s(nb * nb);
  if (bt == NULL) return Val_long(-2);
  for (long i = 0; i < nb; i++)
    for (long j = 0; j < nb; j++) bt[j * nb + i] = b[i * nb + j];
  for (long j = 0; j < nb; j++) {
    const float *aj = a + j * nb;
    float *btj = bt + j * nb;
    for (long l = 0; l < j; l++) {
      float alj = aj[l];
      if (alj != 0.0f) {
        const float *btl = bt + l * nb;
        for (long i = 0; i < nb; i++) btj[i] -= btl[i] * alj;
      }
    }
    float d = aj[j];
    if (d != 1.0f)
      for (long i = 0; i < nb; i++) btj[i] /= d;
  }
  for (long i = 0; i < nb; i++)
    for (long j = 0; j < nb; j++) b[i * nb + j] = bt[j * nb + i];
  return Val_unit;
}

CAMLprim value xsc_pk_potrf_s(value va, value voa, value vnb)
{
  long nb = Long_val(vnb);
  float *a = (float *)Caml_ba_data_val(va) + Long_val(voa);
  for (long j = 0; j < nb; j++) {
    float *aj = a + j * nb;
    float d = aj[j];
    for (long k = 0; k < j; k++) {
      float l = aj[k];
      d -= l * l;
    }
    if (d <= 0.0f) return Val_long(j);
    float ljj = sqrtf(d);
    aj[j] = ljj;
    for (long i = j + 1; i < nb; i++) {
      float *ai = a + i * nb;
      float acc = ai[j];
      for (long k = 0; k < j; k++) acc -= ai[k] * aj[k];
      ai[j] = acc / ljj;
    }
  }
  return Val_long(-1);
}
