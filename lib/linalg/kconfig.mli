(** Persisted, host-keyed kernel-tuning cache.

    [xsc tune] searches the {!Pblas} kernel-variant space and saves the
    winners here; every later process loads the cache at startup
    ({!autoload}) and runs with the tuned configs — autotune once per
    host, not per run (paper rule 7: at scale, search replaces
    hand-tuning, and the search result is a per-host artifact).

    File format: the same header discipline as [Checkpoint] — 8-byte
    magic ["XSCKTUNE"], 1 version byte, 8-byte LE payload length, 4-byte
    LE CRC-32 of the payload, then an explicit little-endian binary
    payload (no [Marshal]: the file must stay readable across compiler
    versions). Writes go to a temp file renamed into place, so a crash
    mid-write never leaves a torn file under the cache name.

    The payload is keyed by {!host_key} (hostname + CPU model + word
    size). A cache copied from another machine — where the measured
    winners are meaningless — fails the key check with [Host_mismatch]
    and the caller re-tunes. Any torn, truncated or bit-flipped file
    fails the length or CRC check with a typed error, and the kernels
    simply keep their defaults: a bad cache can never produce wrong
    results, only default speed. *)

type entry = {
  prec : Pblas.prec;
  kernel : Pblas.kernel;
  cfg : Pblas.kcfg;
  default_gflops : float;  (** measured rate of {!Pblas.default_cfg} *)
  tuned_gflops : float;  (** measured rate of [cfg]; >= default by search *)
}

type t = {
  host_key : string;
  nb : int;  (** tuned tile size for the packed drivers *)
  search_seconds : float;  (** wall-clock cost of the search that produced this *)
  entries : entry list;
}

type load_error =
  | No_such_file
  | Truncated
  | Bad_magic
  | Bad_version of int
  | Bad_crc
  | Host_mismatch of { expected : string; found : string }

val describe_error : load_error -> string

val host_key : unit -> string
(** Identity of this machine for cache keying: hostname, CPU model name
    (from /proc/cpuinfo when available) and word size. *)

val default_path : unit -> string
(** [$XSC_TUNE_CACHE] if set, else [$XDG_CACHE_HOME/xsc/ktune.bin]
    (falling back to [~/.cache], then the current directory). *)

val save : ?path:string -> t -> unit
(** Atomic write (temp file + rename); creates the parent directory. *)

val load : ?path:string -> unit -> (t, load_error) result
(** Read and validate. [Host_mismatch] if the file was tuned on a
    different machine. Never raises on a corrupt file. *)

val apply : t -> unit
(** Install the cached configs: reset everything to defaults, then set
    each entry, so kernels missing from the cache run the default. *)

val autoload : ?path:string -> unit -> bool
(** [load] + [apply]; [false] (leaving the defaults installed) on any
    load error. Remembers the result for {!current}. *)

val current : unit -> t option
(** The cache installed by the last successful {!autoload}, if any. *)
