type trans = NoTrans | Trans
type side = Left | Right
type uplo = Upper | Lower
type diag = Unit | NonUnit

let op_dims trans (m : Mat.t) =
  match trans with NoTrans -> (m.rows, m.cols) | Trans -> (m.cols, m.rows)

(* FLOP/byte accounting: every level-2/3 call tallies its arithmetic and
   (modelled) memory traffic into the process-wide registry, so achieved
   GFLOP/s and arithmetic intensity of a real run can be read back without
   re-deriving them from the algorithm. The cost is three sharded atomic
   adds per kernel call — O(1) against the O(n^3) (or O(n^2)) work of the
   call itself. Counter names: blas.<kernel>.{calls,flops,bytes}.

   Tallies are created on first use, not at module init: a kernel that is
   never called leaves no zero-valued counters in the registry export. *)
module Metrics = Xsc_obs.Metrics

type tally = { calls : Metrics.counter; flops : Metrics.counter; bytes : Metrics.counter }

let make_tally kernel =
  {
    calls = Metrics.counter (Printf.sprintf "blas.%s.calls" kernel);
    flops = Metrics.counter (Printf.sprintf "blas.%s.flops" kernel);
    bytes = Metrics.counter (Printf.sprintf "blas.%s.bytes" kernel);
  }

let t_gemm = lazy (make_tally "gemm")
let t_syrk = lazy (make_tally "syrk")
let t_trsm = lazy (make_tally "trsm")
let t_gemv = lazy (make_tally "gemv")

let[@inline] tally lt ~flops ~bytes =
  let t = Lazy.force lt in
  Metrics.incr t.calls;
  Metrics.add t.flops (int_of_float flops);
  Metrics.add t.bytes (int_of_float bytes)

(* Find-or-create tally for out-of-module kernels (the packed-tile kernels
   in Pblas route their accounting through here so roofline reports see one
   unified blas.* namespace). Guarded by a lock only on the miss path. *)
let tally_tbl : (string, tally) Hashtbl.t = Hashtbl.create 16
let tally_mu = Mutex.create ()

let tally_kernel kernel ~flops ~bytes =
  let t =
    match Hashtbl.find_opt tally_tbl kernel with
    | Some t -> t
    | None ->
      Mutex.lock tally_mu;
      let t =
        match Hashtbl.find_opt tally_tbl kernel with
        | Some t -> t
        | None ->
          let t = make_tally kernel in
          Hashtbl.add tally_tbl kernel t;
          t
      in
      Mutex.unlock tally_mu;
      t
  in
  Metrics.incr t.calls;
  Metrics.add t.flops (int_of_float flops);
  Metrics.add t.bytes (int_of_float bytes)

(* operands read once, C read and written: the cold-cache traffic bound *)
let gemm_traffic m n k = 8.0 *. float_of_int ((m * k) + (k * n) + (2 * m * n))

(* C <- alpha op(A) op(B) + beta C, reference loop nests.

   Each transpose combination gets its own loop nest so the inner loop walks
   contiguous row-major storage wherever possible (the i-k-j order streams
   both B and C rows for the NoTrans/NoTrans case). [gemm] proper routes
   large NoTrans cases to the packed {!Kernel} instead; this unblocked
   version stays the oracle the blocked path is tested against. *)
let gemm_unblocked_raw ~transa ~transb ~alpha (a : Mat.t) (b : Mat.t) ~beta (c : Mat.t) =
  let ma, ka = op_dims transa a in
  let kb, nb = op_dims transb b in
  if ka <> kb then invalid_arg "Blas.gemm: inner dimension mismatch";
  if c.rows <> ma || c.cols <> nb then invalid_arg "Blas.gemm: output dimension mismatch";
  let m = ma and n = nb and k = ka in
  let ad = a.data and bd = b.data and cd = c.data in
  if beta <> 1.0 then
    for i = 0 to (m * n) - 1 do
      cd.(i) <- beta *. cd.(i)
    done;
  if alpha <> 0.0 then
    match (transa, transb) with
    | NoTrans, NoTrans ->
      (* Dot-product form (accumulate over k, then one update of C): the
         same per-element operation order as the NoTrans/Trans branch, the
         blocked {!Kernel.micro} and the packed {!Pblas} kernels, so every
         NN gemm path in the library rounds identically. *)
      for i = 0 to m - 1 do
        let arow = i * a.cols and crow = i * n in
        for j = 0 to n - 1 do
          let acc = ref 0.0 in
          for l = 0 to k - 1 do
            acc := !acc +. (ad.(arow + l) *. bd.((l * b.cols) + j))
          done;
          cd.(crow + j) <- cd.(crow + j) +. (alpha *. !acc)
        done
      done
    | NoTrans, Trans ->
      for i = 0 to m - 1 do
        let arow = i * a.cols and crow = i * n in
        for j = 0 to n - 1 do
          let brow = j * b.cols in
          let acc = ref 0.0 in
          for l = 0 to k - 1 do
            acc := !acc +. (ad.(arow + l) *. bd.(brow + l))
          done;
          cd.(crow + j) <- cd.(crow + j) +. (alpha *. !acc)
        done
      done
    | Trans, NoTrans ->
      for l = 0 to k - 1 do
        let arow = l * a.cols and brow = l * b.cols in
        for i = 0 to m - 1 do
          let aik = alpha *. ad.(arow + i) in
          if aik <> 0.0 then begin
            let crow = i * n in
            for j = 0 to n - 1 do
              cd.(crow + j) <- cd.(crow + j) +. (aik *. bd.(brow + j))
            done
          end
        done
      done
    | Trans, Trans ->
      for i = 0 to m - 1 do
        let crow = i * n in
        for j = 0 to n - 1 do
          let brow = j * b.cols in
          let acc = ref 0.0 in
          for l = 0 to k - 1 do
            acc := !acc +. (ad.((l * a.cols) + i) *. bd.(brow + l))
          done;
          cd.(crow + j) <- cd.(crow + j) +. (alpha *. !acc)
        done
      done

let gemm_unblocked ?(transa = NoTrans) ?(transb = NoTrans) ~alpha (a : Mat.t) (b : Mat.t)
    ~beta (c : Mat.t) =
  gemm_unblocked_raw ~transa ~transb ~alpha a b ~beta c;
  let m, k = op_dims transa a and _, n = op_dims transb b in
  tally t_gemm
    ~flops:(2.0 *. float_of_int m *. float_of_int n *. float_of_int k)
    ~bytes:(gemm_traffic m n k)

let gemm ?(transa = NoTrans) ?(transb = NoTrans) ~alpha (a : Mat.t) (b : Mat.t) ~beta
    (c : Mat.t) =
  let ma, ka = op_dims transa a in
  let kb, nb = op_dims transb b in
  if ka <> kb then invalid_arg "Blas.gemm: inner dimension mismatch";
  if c.rows <> ma || c.cols <> nb then invalid_arg "Blas.gemm: output dimension mismatch";
  let m = ma and n = nb and k = ka in
  (* Blocked path for the shapes the tile kernels hit: packing pays for
     itself once every dimension clears the cutoff. *)
  let blocked = m >= Kernel.cutoff && n >= Kernel.cutoff && k >= Kernel.cutoff in
  (match (transa, transb) with
  | NoTrans, NoTrans when blocked ->
    if beta <> 1.0 then
      for i = 0 to (m * n) - 1 do
        c.data.(i) <- beta *. c.data.(i)
      done;
    Kernel.add_matmul ~trans_b:false ~alpha a b c
  | NoTrans, Trans when blocked ->
    if beta <> 1.0 then
      for i = 0 to (m * n) - 1 do
        c.data.(i) <- beta *. c.data.(i)
      done;
    Kernel.add_matmul ~trans_b:true ~alpha a b c
  | _ -> gemm_unblocked_raw ~transa ~transb ~alpha a b ~beta c);
  tally t_gemm
    ~flops:(2.0 *. float_of_int m *. float_of_int n *. float_of_int k)
    ~bytes:(gemm_traffic m n k)

let gemm_new ?(transa = NoTrans) ?(transb = NoTrans) a b =
  let m, _ = op_dims transa a and _, n = op_dims transb b in
  let c = Mat.create m n in
  gemm ~transa ~transb ~alpha:1.0 a b ~beta:0.0 c;
  c

let gemv ?(trans = NoTrans) ~alpha (a : Mat.t) x ~beta y =
  let m, n = op_dims trans a in
  if Array.length x <> n then invalid_arg "Blas.gemv: x dimension mismatch";
  if Array.length y <> m then invalid_arg "Blas.gemv: y dimension mismatch";
  if beta <> 1.0 then
    for i = 0 to m - 1 do
      y.(i) <- beta *. y.(i)
    done;
  let ad = a.data in
  (match trans with
  | NoTrans ->
    for i = 0 to m - 1 do
      let base = i * a.cols in
      let acc = ref 0.0 in
      for j = 0 to n - 1 do
        acc := !acc +. (ad.(base + j) *. x.(j))
      done;
      y.(i) <- y.(i) +. (alpha *. !acc)
    done
  | Trans ->
    for j = 0 to a.rows - 1 do
      let base = j * a.cols in
      let xv = alpha *. x.(j) in
      if xv <> 0.0 then
        for i = 0 to m - 1 do
          y.(i) <- y.(i) +. (xv *. ad.(base + i))
        done
    done);
  tally t_gemv
    ~flops:(2.0 *. float_of_int m *. float_of_int n)
    ~bytes:(8.0 *. float_of_int ((m * n) + n + (2 * m)))

let ger ~alpha x y (a : Mat.t) =
  if Array.length x <> a.rows || Array.length y <> a.cols then
    invalid_arg "Blas.ger: dimension mismatch";
  let ad = a.data in
  for i = 0 to a.rows - 1 do
    let xi = alpha *. x.(i) in
    if xi <> 0.0 then begin
      let base = i * a.cols in
      for j = 0 to a.cols - 1 do
        ad.(base + j) <- ad.(base + j) +. (xi *. y.(j))
      done
    end
  done

(* Raw index arithmetic throughout: syrk sits on the tiled Cholesky hot
   path, and per-element Mat.get/Mat.set costs a multiply and bounds logic
   per flop. NoTrans dots rows of A (contiguous); Trans dots columns
   (stride lda), still without per-element recomputation of bases. *)
let syrk ?(uplo = Lower) ?(trans = NoTrans) ~alpha (a : Mat.t) ~beta (c : Mat.t) =
  let n, k = op_dims trans a in
  if c.rows <> n || c.cols <> n then invalid_arg "Blas.syrk: output dimension mismatch";
  let ad = a.data and cd = c.data in
  let lda = a.cols and ldc = c.cols in
  for i = 0 to n - 1 do
    let jlo, jhi = match uplo with Lower -> (0, i) | Upper -> (i, n - 1) in
    let crow = i * ldc in
    match trans with
    | NoTrans ->
      let arow_i = i * lda in
      for j = jlo to jhi do
        let arow_j = j * lda in
        let acc = ref 0.0 in
        for l = 0 to k - 1 do
          acc := !acc +. (ad.(arow_i + l) *. ad.(arow_j + l))
        done;
        cd.(crow + j) <- (alpha *. !acc) +. (beta *. cd.(crow + j))
      done
    | Trans ->
      for j = jlo to jhi do
        let acc = ref 0.0 in
        for l = 0 to k - 1 do
          let arow_l = l * lda in
          acc := !acc +. (ad.(arow_l + i) *. ad.(arow_l + j))
        done;
        cd.(crow + j) <- (alpha *. !acc) +. (beta *. cd.(crow + j))
      done
  done;
  (* n(n+1)/2 triangle entries, 2k flops each; A streamed once, the
     triangle of C read and written *)
  tally t_syrk
    ~flops:(float_of_int n *. float_of_int (n + 1) *. float_of_int k)
    ~bytes:(8.0 *. float_of_int ((n * k) + (n * (n + 1))))

let diag_value diag a i = match diag with Unit -> 1.0 | NonUnit -> Mat.get a i i

(* B <- alpha op(A)^-1 B (Left) or alpha B op(A)^-1 (Right). The four
   triangular orientations reduce to forward or backward substitution over
   rows (Left) or columns (Right) of B. *)
let trsm ?(side = Left) ?(uplo = Lower) ?(trans = NoTrans) ?(diag = NonUnit) ~alpha
    (a : Mat.t) (b : Mat.t) =
  if a.rows <> a.cols then invalid_arg "Blas.trsm: A not square";
  let n = a.rows in
  (match side with
  | Left -> if b.rows <> n then invalid_arg "Blas.trsm: dimension mismatch"
  | Right -> if b.cols <> n then invalid_arg "Blas.trsm: dimension mismatch");
  if alpha <> 1.0 then
    for i = 0 to Array.length b.data - 1 do
      b.data.(i) <- alpha *. b.data.(i)
    done;
  (* Effective orientation: a transposed triangle flips Lower <-> Upper with
     element access swapped. All four substitution loops run on raw offsets
     into the data arrays — trsm is on the tile hot path (both Cholesky and
     LU panels), and the inner loops sweep whole rows of B. *)
  let ad = a.data and bd = b.data in
  let lda = a.cols and ldb = b.cols in
  let aget i j = match trans with NoTrans -> ad.((i * lda) + j) | Trans -> ad.((j * lda) + i) in
  let eff_uplo =
    match (uplo, trans) with
    | Lower, NoTrans | Upper, Trans -> Lower
    | Upper, NoTrans | Lower, Trans -> Upper
  in
  (match (side, eff_uplo) with
  | Left, Lower ->
    (* forward substitution on block rows of B *)
    for i = 0 to n - 1 do
      let brow_i = i * ldb in
      for l = 0 to i - 1 do
        let ail = aget i l in
        if ail <> 0.0 then begin
          let brow_l = l * ldb in
          for j = 0 to ldb - 1 do
            bd.(brow_i + j) <- bd.(brow_i + j) -. (ail *. bd.(brow_l + j))
          done
        end
      done;
      let d = diag_value diag a i in
      if d <> 1.0 then
        for j = 0 to ldb - 1 do
          bd.(brow_i + j) <- bd.(brow_i + j) /. d
        done
    done
  | Left, Upper ->
    for i = n - 1 downto 0 do
      let brow_i = i * ldb in
      for l = i + 1 to n - 1 do
        let ail = aget i l in
        if ail <> 0.0 then begin
          let brow_l = l * ldb in
          for j = 0 to ldb - 1 do
            bd.(brow_i + j) <- bd.(brow_i + j) -. (ail *. bd.(brow_l + j))
          done
        end
      done;
      let d = diag_value diag a i in
      if d <> 1.0 then
        for j = 0 to ldb - 1 do
          bd.(brow_i + j) <- bd.(brow_i + j) /. d
        done
    done
  | Right, Lower ->
    (* X A = B with A lower: solve columns right-to-left. *)
    for j = n - 1 downto 0 do
      for l = j + 1 to n - 1 do
        let alj = aget l j in
        if alj <> 0.0 then
          for i = 0 to b.rows - 1 do
            let brow = i * ldb in
            bd.(brow + j) <- bd.(brow + j) -. (bd.(brow + l) *. alj)
          done
      done;
      let d = diag_value diag a j in
      if d <> 1.0 then
        for i = 0 to b.rows - 1 do
          bd.((i * ldb) + j) <- bd.((i * ldb) + j) /. d
        done
    done
  | Right, Upper ->
    for j = 0 to n - 1 do
      for l = 0 to j - 1 do
        let alj = aget l j in
        if alj <> 0.0 then
          for i = 0 to b.rows - 1 do
            let brow = i * ldb in
            bd.(brow + j) <- bd.(brow + j) -. (bd.(brow + l) *. alj)
          done
      done;
      let d = diag_value diag a j in
      if d <> 1.0 then
        for i = 0 to b.rows - 1 do
          bd.((i * ldb) + j) <- bd.((i * ldb) + j) /. d
        done
    done);
  (* one triangular solve of size n per right-hand side *)
  let nrhs = match side with Left -> b.cols | Right -> b.rows in
  tally t_trsm
    ~flops:(float_of_int n *. float_of_int n *. float_of_int nrhs)
    ~bytes:(8.0 *. float_of_int ((n * (n + 1) / 2) + (2 * b.rows * b.cols)))

let trsv ?(uplo = Lower) ?(trans = NoTrans) ?(diag = NonUnit) (a : Mat.t) x =
  if a.rows <> a.cols then invalid_arg "Blas.trsv: A not square";
  if Array.length x <> a.rows then invalid_arg "Blas.trsv: dimension mismatch";
  let n = a.rows in
  let aget i j = match trans with NoTrans -> Mat.get a i j | Trans -> Mat.get a j i in
  let eff_uplo =
    match (uplo, trans) with
    | Lower, NoTrans | Upper, Trans -> Lower
    | Upper, NoTrans | Lower, Trans -> Upper
  in
  match eff_uplo with
  | Lower ->
    for i = 0 to n - 1 do
      let acc = ref x.(i) in
      for l = 0 to i - 1 do
        acc := !acc -. (aget i l *. x.(l))
      done;
      x.(i) <- (match diag with Unit -> !acc | NonUnit -> !acc /. Mat.get a i i)
    done
  | Upper ->
    for i = n - 1 downto 0 do
      let acc = ref x.(i) in
      for l = i + 1 to n - 1 do
        acc := !acc -. (aget i l *. x.(l))
      done;
      x.(i) <- (match diag with Unit -> !acc | NonUnit -> !acc /. Mat.get a i i)
    done

let trmm ?(side = Left) ?(uplo = Lower) ?(trans = NoTrans) ?(diag = NonUnit) ~alpha
    (a : Mat.t) (b : Mat.t) =
  if a.rows <> a.cols then invalid_arg "Blas.trmm: A not square";
  let n = a.rows in
  (match side with
  | Left -> if b.rows <> n then invalid_arg "Blas.trmm: dimension mismatch"
  | Right -> if b.cols <> n then invalid_arg "Blas.trmm: dimension mismatch");
  (* Build the effective triangular operand explicitly — trmm is not on the
     critical path of any kernel, so clarity wins over blocking. *)
  let tri =
    Mat.init n n (fun i j ->
        let v = match trans with NoTrans -> Mat.get a i j | Trans -> Mat.get a j i in
        let eff_uplo =
          match (uplo, trans) with
          | Lower, NoTrans | Upper, Trans -> Lower
          | Upper, NoTrans | Lower, Trans -> Upper
        in
        let inside = match eff_uplo with Lower -> i >= j | Upper -> i <= j in
        if i = j then (match diag with Unit -> 1.0 | NonUnit -> v)
        else if inside then v
        else 0.0)
  in
  let result =
    match side with
    | Left -> gemm_new tri b
    | Right -> gemm_new b tri
  in
  for i = 0 to Array.length b.data - 1 do
    b.data.(i) <- alpha *. result.data.(i)
  done

let gemm_flops m n k = 2.0 *. float_of_int m *. float_of_int n *. float_of_int k
