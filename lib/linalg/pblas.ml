(* Packed-tile kernels: thin bindings over the C microkernels in
   pblas_stubs.c, operating on contiguous nb x nb tiles addressed as
   (buffer, element offset) pairs inside one Bigarray.Array1.

   Each wrapper routes its flop count and cold-cache byte traffic through
   Blas.tally_kernel so packed runs appear in the same blas.* roofline
   namespace as the strided kernels — under distinct names (pgemm, ...,
   sgemm, ...) so packed and strided rates can be compared side by side. *)

open Bigarray

type f64 = (float, float64_elt, c_layout) Array1.t
type f32 = (float, float32_elt, c_layout) Array1.t

exception Singular of int

let gemm_flops nb = 2.0 *. float_of_int nb *. float_of_int nb *. float_of_int nb
let syrk_flops nb = float_of_int nb *. float_of_int (nb + 1) *. float_of_int nb
let trsm_flops nb = float_of_int nb *. float_of_int nb *. float_of_int nb

let potrf_flops nb =
  let n = float_of_int nb in
  (n *. n *. n /. 3.0) +. (n *. n /. 2.0) +. (n /. 6.0)

let getrf_flops nb =
  let n = float_of_int nb in
  2.0 *. n *. n *. n /. 3.0

(* three tiles touched; C read and written *)
let gemm_bytes w nb = float_of_int w *. float_of_int (4 * nb * nb)
let syrk_bytes w nb = float_of_int w *. float_of_int ((nb * nb) + (nb * (nb + 1)))
let trsm_bytes w nb = float_of_int w *. float_of_int ((nb * (nb + 1) / 2) + (2 * nb * nb))
let fact_bytes w nb = float_of_int w *. float_of_int (2 * nb * nb)

(* ---- runtime kernel configuration ----

   The C stubs dispatch the compute kernels through per-kernel,
   per-precision config records (micro-tile shape, pack strategy,
   prefetch). Every variant is bitwise-identical — each output element
   keeps its own k-ascending accumulator chain regardless of shape — so
   switching configs trades only speed, never results. The authoritative
   table lives in C; an OCaml mirror makes [cfg] readable without a
   read-back stub. *)

type kernel = Gemm_nn | Gemm_nt | Syrk_ln | Trsm_rlt
type prec = F64 | F32
type kcfg = { shape : int; pack : bool; prefetch : bool }

external shape_count_raw : unit -> int = "xsc_pk_shape_count" [@@noalloc]
external shape_dims_raw : int -> int = "xsc_pk_shape_dims" [@@noalloc]

external set_kcfg_raw : int -> int -> int -> bool -> bool -> int = "xsc_pk_set_kcfg"
  [@@noalloc]

let shapes =
  Array.init (shape_count_raw ()) (fun i ->
      let d = shape_dims_raw i in
      (d / 1000, d mod 1000))

let default_cfg =
  (* (1, 32): the shape the kernels were historically hard-coded to *)
  let shape =
    let found = ref 0 in
    Array.iteri (fun i s -> if s = (1, 32) then found := i) shapes;
    !found
  in
  { shape; pack = true; prefetch = false }

let all_kernels = [ Gemm_nn; Gemm_nt; Syrk_ln; Trsm_rlt ]
let all_precs = [ F64; F32 ]

let kernel_id = function Gemm_nn -> 0 | Gemm_nt -> 1 | Syrk_ln -> 2 | Trsm_rlt -> 3
let prec_id = function F64 -> 0 | F32 -> 1

let kernel_name = function
  | Gemm_nn -> "gemm_nn"
  | Gemm_nt -> "gemm_nt"
  | Syrk_ln -> "syrk_ln"
  | Trsm_rlt -> "trsm_rlt"

let prec_name = function F64 -> "f64" | F32 -> "f32"

let kernel_of_name = function
  | "gemm_nn" -> Some Gemm_nn
  | "gemm_nt" -> Some Gemm_nt
  | "syrk_ln" -> Some Syrk_ln
  | "trsm_rlt" -> Some Trsm_rlt
  | _ -> None

let prec_of_name = function "f64" -> Some F64 | "f32" -> Some F32 | _ -> None
let mirror = Array.init 2 (fun _ -> Array.make 4 default_cfg)

let set_cfg prec kernel c =
  if c.shape < 0 || c.shape >= Array.length shapes then
    invalid_arg "Pblas.set_cfg: shape id out of range";
  let st = set_kcfg_raw (prec_id prec) (kernel_id kernel) c.shape c.pack c.prefetch in
  if st <> 0 then invalid_arg "Pblas.set_cfg: rejected by kernel dispatch";
  mirror.(prec_id prec).(kernel_id kernel) <- c

let cfg prec kernel = mirror.(prec_id prec).(kernel_id kernel)

let reset_cfgs () =
  List.iter
    (fun p -> List.iter (fun k -> set_cfg p k default_cfg) all_kernels)
    all_precs

module D = struct
  type buf = f64

  external gemm_nn_raw : buf -> int -> buf -> int -> buf -> int -> int -> float -> unit
    = "xsc_pk_gemm_nn_d_byte" "xsc_pk_gemm_nn_d"
    [@@noalloc]

  external gemm_nt_raw : buf -> int -> buf -> int -> buf -> int -> int -> float -> unit
    = "xsc_pk_gemm_nt_d_byte" "xsc_pk_gemm_nt_d"
    [@@noalloc]

  external syrk_ln_raw : buf -> int -> buf -> int -> int -> float -> float -> unit
    = "xsc_pk_syrk_ln_d_byte" "xsc_pk_syrk_ln_d"
    [@@noalloc]

  external trsm_rlt_raw : buf -> int -> buf -> int -> int -> unit = "xsc_pk_trsm_rlt_d"
    [@@noalloc]

  external trsm_llu_raw : buf -> int -> buf -> int -> int -> unit = "xsc_pk_trsm_llu_d"
    [@@noalloc]

  external trsm_ru_raw : buf -> int -> buf -> int -> int -> unit = "xsc_pk_trsm_ru_d"
    [@@noalloc]

  external potrf_raw : buf -> int -> int -> int = "xsc_pk_potrf_d" [@@noalloc]
  external getrf_nopiv_raw : buf -> int -> int -> int = "xsc_pk_getrf_nopiv_d" [@@noalloc]

  let gemm_nn ~alpha a oa b ob c oc ~nb =
    gemm_nn_raw a oa b ob c oc nb alpha;
    Blas.tally_kernel "pgemm" ~flops:(gemm_flops nb) ~bytes:(gemm_bytes 8 nb)

  let gemm_nt ~alpha a oa b ob c oc ~nb =
    gemm_nt_raw a oa b ob c oc nb alpha;
    Blas.tally_kernel "pgemm" ~flops:(gemm_flops nb) ~bytes:(gemm_bytes 8 nb)

  let syrk_ln ~alpha a oa ~beta c oc ~nb =
    syrk_ln_raw a oa c oc nb alpha beta;
    Blas.tally_kernel "psyrk" ~flops:(syrk_flops nb) ~bytes:(syrk_bytes 8 nb)

  let trsm_rlt a oa b ob ~nb =
    trsm_rlt_raw a oa b ob nb;
    Blas.tally_kernel "ptrsm" ~flops:(trsm_flops nb) ~bytes:(trsm_bytes 8 nb)

  let trsm_llu a oa b ob ~nb =
    trsm_llu_raw a oa b ob nb;
    Blas.tally_kernel "ptrsm" ~flops:(trsm_flops nb) ~bytes:(trsm_bytes 8 nb)

  let trsm_ru a oa b ob ~nb =
    trsm_ru_raw a oa b ob nb;
    Blas.tally_kernel "ptrsm" ~flops:(trsm_flops nb) ~bytes:(trsm_bytes 8 nb)

  let potrf a oa ~nb =
    let st = potrf_raw a oa nb in
    if st >= 0 then raise (Singular st);
    Blas.tally_kernel "ppotrf" ~flops:(potrf_flops nb) ~bytes:(fact_bytes 8 nb)

  let getrf_nopiv a oa ~nb =
    let st = getrf_nopiv_raw a oa nb in
    if st >= 0 then raise (Singular st);
    Blas.tally_kernel "pgetrf" ~flops:(getrf_flops nb) ~bytes:(fact_bytes 8 nb)
end

module S = struct
  type buf = f32

  external gemm_nn_raw : buf -> int -> buf -> int -> buf -> int -> int -> float -> unit
    = "xsc_pk_gemm_nn_s_byte" "xsc_pk_gemm_nn_s"
    [@@noalloc]

  external gemm_nt_raw : buf -> int -> buf -> int -> buf -> int -> int -> float -> unit
    = "xsc_pk_gemm_nt_s_byte" "xsc_pk_gemm_nt_s"
    [@@noalloc]

  external syrk_ln_raw : buf -> int -> buf -> int -> int -> float -> float -> unit
    = "xsc_pk_syrk_ln_s_byte" "xsc_pk_syrk_ln_s"
    [@@noalloc]

  external trsm_rlt_raw : buf -> int -> buf -> int -> int -> unit = "xsc_pk_trsm_rlt_s"
    [@@noalloc]

  external potrf_raw : buf -> int -> int -> int = "xsc_pk_potrf_s" [@@noalloc]

  let gemm_nn ~alpha a oa b ob c oc ~nb =
    gemm_nn_raw a oa b ob c oc nb alpha;
    Blas.tally_kernel "sgemm" ~flops:(gemm_flops nb) ~bytes:(gemm_bytes 4 nb)

  let gemm_nt ~alpha a oa b ob c oc ~nb =
    gemm_nt_raw a oa b ob c oc nb alpha;
    Blas.tally_kernel "sgemm" ~flops:(gemm_flops nb) ~bytes:(gemm_bytes 4 nb)

  let syrk_ln ~alpha a oa ~beta c oc ~nb =
    syrk_ln_raw a oa c oc nb alpha beta;
    Blas.tally_kernel "ssyrk" ~flops:(syrk_flops nb) ~bytes:(syrk_bytes 4 nb)

  let trsm_rlt a oa b ob ~nb =
    trsm_rlt_raw a oa b ob nb;
    Blas.tally_kernel "strsm" ~flops:(trsm_flops nb) ~bytes:(trsm_bytes 4 nb)

  let potrf a oa ~nb =
    let st = potrf_raw a oa nb in
    if st >= 0 then raise (Singular st);
    Blas.tally_kernel "spotrf" ~flops:(potrf_flops nb) ~bytes:(fact_bytes 4 nb)
end
