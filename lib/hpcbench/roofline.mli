(** Roofline model: attainable performance as a function of arithmetic
    intensity. This single picture explains the paper's HPL/HPCG gap: dense
    factorizations sit on the compute roof, sparse solvers on the bandwidth
    slope, and the machine balance (flops per byte) decides how far apart
    the two are. *)

type point = {
  kernel : string;
  intensity : float;  (** flops per byte of memory traffic *)
  attainable : float;  (** flop/s on the given node, [min(peak, I * BW)] *)
  fraction_of_peak : float;
}

val gemm_intensity : nb:int -> float
(** Blocked GEMM working on [nb x nb] tiles: [2nb³ / (3 · 8 · nb²)] =
    [nb/12]. *)

val spmv_intensity : Xsc_sparse.Csr.t -> float
val stencil27_intensity : float
(** Asymptotic intensity of the 27-point-stencil SpMV (what bounds HPCG). *)

val stream_triad_intensity : float

val point :
  ?precision:Xsc_simmachine.Node.precision ->
  Xsc_simmachine.Node.t -> kernel:string -> intensity:float -> point
(** Roof at the given [intensity]; [precision] (default [FP64]) selects the
    compute ceiling — an f32 kernel is judged against the f32 roof. *)

val standard_points : ?nb:int -> Xsc_simmachine.Node.t -> point list
(** Triad, SpMV (27pt), small/large blocked GEMM — the canonical chart. *)

val ridge_point : Xsc_simmachine.Node.t -> float
(** Intensity at which the node transitions from bandwidth- to
    compute-bound ([peak / BW], the machine balance). *)

type achieved = {
  point : point;  (** the model side: intensity and its roof *)
  measured : float;  (** flop/s actually observed for the kernel *)
  roof_fraction : float;  (** [measured / point.attainable] *)
}

val achieved_point :
  ?precision:Xsc_simmachine.Node.precision ->
  Xsc_simmachine.Node.t -> kernel:string -> intensity:float -> measured:float -> achieved
(** Pair a measured rate (e.g. from {!Xsc_runtime.Trace.by_kernel_rates} or
    the [blas.*.flops] registry counters) with the model roof at the
    kernel's intensity — the "achieved vs roof" comparison that turns a
    roofline chart from a bound into a diagnosis. *)

val render_achieved : achieved list -> string
(** ASCII table: kernel, intensity, roof, achieved, % of roof. *)
