type point = {
  kernel : string;
  intensity : float;
  attainable : float;
  fraction_of_peak : float;
}

let gemm_intensity ~nb =
  if nb <= 0 then invalid_arg "Roofline.gemm_intensity: nb must be positive";
  float_of_int nb /. 12.0

let spmv_intensity a = Xsc_sparse.Csr.spmv_flops a /. Xsc_sparse.Csr.spmv_bytes a

(* 27 nonzeros per row: flops = 54, bytes ~ 12*27 + 16 = 340 *)
let stencil27_intensity = 54.0 /. 340.0

(* a(i) = b(i) + q*c(i): 2 flops per 24 bytes *)
let stream_triad_intensity = 2.0 /. 24.0

let point ?(precision = Xsc_simmachine.Node.FP64) node ~kernel ~intensity =
  let open Xsc_simmachine in
  let attainable = Node.roofline_rate node precision ~intensity in
  {
    kernel;
    intensity;
    attainable;
    fraction_of_peak = attainable /. Node.node_rate node precision;
  }

let standard_points ?(nb = 256) node =
  [
    point node ~kernel:"stream-triad" ~intensity:stream_triad_intensity;
    point node ~kernel:"spmv-27pt" ~intensity:stencil27_intensity;
    point node ~kernel:"gemm-nb32" ~intensity:(gemm_intensity ~nb:32);
    point node ~kernel:(Printf.sprintf "gemm-nb%d" nb) ~intensity:(gemm_intensity ~nb);
  ]

let ridge_point node = Xsc_simmachine.Node.machine_balance node

type achieved = {
  point : point;
  measured : float;
  roof_fraction : float;
}

let achieved_point ?precision node ~kernel ~intensity ~measured =
  let p = point ?precision node ~kernel ~intensity in
  let roof_fraction = if p.attainable > 0.0 then measured /. p.attainable else 0.0 in
  { point = p; measured; roof_fraction }

let render_achieved points =
  let tbl =
    Xsc_util.Table.create
      ~headers:[ "kernel"; "intensity"; "roof"; "achieved"; "% of roof" ]
  in
  List.iter
    (fun a ->
      Xsc_util.Table.add_row tbl
        [
          a.point.kernel;
          Printf.sprintf "%.2f" a.point.intensity;
          Xsc_util.Units.flops a.point.attainable;
          Xsc_util.Units.flops a.measured;
          Xsc_util.Units.percent a.roof_fraction;
        ])
    points;
  Xsc_util.Table.render tbl
