type params = {
  work : float;
  checkpoint_cost : float;
  restart_cost : float;
  mtbf : float;
}

module Metrics = Xsc_obs.Metrics

let m_writes = Metrics.counter "checkpoint.writes"
let m_bytes = Metrics.counter "checkpoint.bytes_written"
let m_write_seconds = Metrics.histogram "checkpoint.write_seconds"
let m_sim_failures = Metrics.counter "checkpoint.sim_failures"
let m_sim_checkpoints = Metrics.counter "checkpoint.sim_checkpoints"

(* ---- Real checkpoint files: atomic, self-validating ----

   Layout: 7-byte magic "XSCCKPT", 1 version byte, 8-byte LE payload
   length, 4-byte LE CRC-32 of the payload, then the Marshal payload. The
   file is written to [path ^ ".tmp"] and renamed into place, so a crash
   mid-write can never leave a half-written file under the checkpoint
   name; a file torn by the filesystem (truncation, bit rot) fails the
   length or CRC check and [load] reports a typed error instead of letting
   [Marshal] crash on garbage. *)

let magic = "XSCCKPT"
let version = Char.chr 1
let header_len = 7 + 1 + 8 + 4

type load_error =
  | No_such_file
  | Truncated
  | Bad_magic
  | Bad_version of int
  | Bad_crc

let describe_error = function
  | No_such_file -> "no such file"
  | Truncated -> "truncated or torn file"
  | Bad_magic -> "bad magic (not a checkpoint file)"
  | Bad_version v -> Printf.sprintf "unsupported checkpoint version %d" v
  | Bad_crc -> "payload CRC mismatch (corrupt checkpoint)"

let crc32 = Xsc_util.Crc32.bytes

let put_le oc ~bytes v =
  for i = 0 to bytes - 1 do
    output_char oc (Char.chr ((v lsr (8 * i)) land 0xFF))
  done

let get_le b ~pos ~bytes =
  let v = ref 0 in
  for i = bytes - 1 downto 0 do
    v := (!v lsl 8) lor Char.code (Bytes.get b (pos + i))
  done;
  !v

(* The header discipline is parameterised by the 7-byte magic so sibling
   subsystems (the flight recorder) can write the same atomic,
   self-validating file format under their own magic — a checkpoint read
   as a flight dump (or vice versa) fails [Bad_magic] instead of
   Marshal-crashing on a type confusion. *)
let check_magic m =
  if String.length m <> 7 then
    invalid_arg "Checkpoint: magic must be exactly 7 bytes"

let save_value_with ~magic:m path (v : 'a) =
  check_magic m;
  let t0 = Xsc_obs.Clock.now_s () in
  let payload = Marshal.to_bytes v [] in
  let crc = crc32 payload in
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  let bytes =
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc m;
        output_char oc version;
        put_le oc ~bytes:8 (Bytes.length payload);
        put_le oc ~bytes:4 crc;
        output_bytes oc payload;
        pos_out oc)
  in
  Sys.rename tmp path;
  Metrics.incr m_writes;
  Metrics.add m_bytes bytes;
  Metrics.observe m_write_seconds (Xsc_obs.Clock.now_s () -. t0);
  bytes

let load_value_with ~magic:m path : ('a, load_error) result =
  check_magic m;
  if not (Sys.file_exists path) then Error No_such_file
  else begin
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let len = in_channel_length ic in
        if len < header_len then Error Truncated
        else begin
          let header = Bytes.create header_len in
          really_input ic header 0 header_len;
          if Bytes.sub_string header 0 7 <> m then Error Bad_magic
          else if Bytes.get header 7 <> version then
            Error (Bad_version (Char.code (Bytes.get header 7)))
          else begin
            let payload_len = get_le header ~pos:8 ~bytes:8 in
            let crc = get_le header ~pos:16 ~bytes:4 in
            if len - header_len < payload_len then Error Truncated
            else begin
              let payload = Bytes.create payload_len in
              really_input ic payload 0 payload_len;
              if crc32 payload <> crc then Error Bad_crc
              else
                (* CRC already vouches for the bytes; the guard covers a
                   crafted file with a valid CRC over a non-Marshal body *)
                match Marshal.from_bytes payload 0 with
                | v -> Ok v
                | exception _ -> Error Bad_crc
            end
          end
        end)
  end

let save_value path (v : 'a) = save_value_with ~magic path v
let load_value path : ('a, load_error) result = load_value_with ~magic path

(* A real checkpoint of a matrix. This is the measured counterpart of
   [checkpoint_cost] — running [save] on a representative state gives a
   defensible C for the Young/Daly analysis instead of a guess. *)
let save path (m : Xsc_linalg.Mat.t) = save_value path m

let load path : (Xsc_linalg.Mat.t, load_error) result = load_value path

let validate p =
  if p.work <= 0.0 || p.checkpoint_cost < 0.0 || p.restart_cost < 0.0 || p.mtbf <= 0.0
  then invalid_arg "Checkpoint: invalid parameters"

let young_interval p =
  validate p;
  sqrt (2.0 *. p.checkpoint_cost *. p.mtbf)

let daly_interval p =
  validate p;
  let c = p.checkpoint_cost and m = p.mtbf in
  if c >= 2.0 *. m then m
  else begin
    (* Daly 2006, eq. (20): tau = sqrt(2 c M) [1 + 1/3 sqrt(c/2M) + c/18M] - c *)
    let x = sqrt (c /. (2.0 *. m)) in
    (sqrt (2.0 *. c *. m) *. (1.0 +. (x /. 3.0) +. (c /. (18.0 *. m)))) -. c
  end

let expected_time p ~interval =
  validate p;
  if interval <= 0.0 then invalid_arg "Checkpoint.expected_time: interval must be positive";
  let m = p.mtbf and c = p.checkpoint_cost and r = p.restart_cost in
  let segments = p.work /. interval in
  (* expected time per attempted segment of useful length tau with a
     checkpoint: M e^{R/M} (e^{(tau+C)/M} - 1) per Daly's model *)
  m *. exp (r /. m) *. (exp ((interval +. c) /. m) -. 1.0) *. segments

let simulate rng p ~interval =
  validate p;
  if interval <= 0.0 then invalid_arg "Checkpoint.simulate: interval must be positive";
  let clock = ref 0.0 in
  let done_work = ref 0.0 in
  (* exponential inter-arrival; memorylessness lets us draw the time to the
     next failure fresh at the start of each segment attempt *)
  let time_to_failure () = Xsc_util.Rng.exponential rng (1.0 /. p.mtbf) in
  let next_failure = ref (time_to_failure ()) in
  while !done_work < p.work do
    let segment = min interval (p.work -. !done_work) in
    let need = segment +. (if !done_work +. segment >= p.work then 0.0 else p.checkpoint_cost) in
    if !next_failure >= need then begin
      (* segment (and checkpoint) completed before the next failure *)
      clock := !clock +. need;
      next_failure := !next_failure -. need;
      done_work := !done_work +. segment;
      if need > segment then Metrics.incr m_sim_checkpoints
    end
    else begin
      (* failure mid-segment: lose the partial segment, pay restart *)
      Metrics.incr m_sim_failures;
      clock := !clock +. !next_failure +. p.restart_cost;
      next_failure := time_to_failure ()
      (* done_work unchanged: we restart from the last checkpoint *)
    end
  done;
  !clock

let simulate_mean ?(runs = 200) rng p ~interval =
  if runs <= 0 then invalid_arg "Checkpoint.simulate_mean: runs must be positive";
  let acc = ref 0.0 in
  for _ = 1 to runs do
    acc := !acc +. simulate rng p ~interval
  done;
  !acc /. float_of_int runs

let efficiency p ~interval = p.work /. expected_time p ~interval
