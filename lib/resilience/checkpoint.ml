type params = {
  work : float;
  checkpoint_cost : float;
  restart_cost : float;
  mtbf : float;
}

module Metrics = Xsc_obs.Metrics

let m_writes = Metrics.counter "checkpoint.writes"
let m_bytes = Metrics.counter "checkpoint.bytes_written"
let m_write_seconds = Metrics.histogram "checkpoint.write_seconds"
let m_sim_failures = Metrics.counter "checkpoint.sim_failures"
let m_sim_checkpoints = Metrics.counter "checkpoint.sim_checkpoints"

(* A real checkpoint of a matrix: Marshal to a file, tallying the bytes and
   the write time. This is the measured counterpart of [checkpoint_cost] —
   running [save] on a representative state gives a defensible C for the
   Young/Daly analysis instead of a guess. *)
let save path (m : Xsc_linalg.Mat.t) =
  let t0 = Xsc_obs.Clock.now_s () in
  let oc = open_out_bin path in
  let bytes =
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        Marshal.to_channel oc m [];
        pos_out oc)
  in
  Metrics.incr m_writes;
  Metrics.add m_bytes bytes;
  Metrics.observe m_write_seconds (Xsc_obs.Clock.now_s () -. t0);
  bytes

let load path : Xsc_linalg.Mat.t =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> Marshal.from_channel ic)

let validate p =
  if p.work <= 0.0 || p.checkpoint_cost < 0.0 || p.restart_cost < 0.0 || p.mtbf <= 0.0
  then invalid_arg "Checkpoint: invalid parameters"

let young_interval p =
  validate p;
  sqrt (2.0 *. p.checkpoint_cost *. p.mtbf)

let daly_interval p =
  validate p;
  let c = p.checkpoint_cost and m = p.mtbf in
  if c >= 2.0 *. m then m
  else begin
    (* Daly 2006, eq. (20): tau = sqrt(2 c M) [1 + 1/3 sqrt(c/2M) + c/18M] - c *)
    let x = sqrt (c /. (2.0 *. m)) in
    (sqrt (2.0 *. c *. m) *. (1.0 +. (x /. 3.0) +. (c /. (18.0 *. m)))) -. c
  end

let expected_time p ~interval =
  validate p;
  if interval <= 0.0 then invalid_arg "Checkpoint.expected_time: interval must be positive";
  let m = p.mtbf and c = p.checkpoint_cost and r = p.restart_cost in
  let segments = p.work /. interval in
  (* expected time per attempted segment of useful length tau with a
     checkpoint: M e^{R/M} (e^{(tau+C)/M} - 1) per Daly's model *)
  m *. exp (r /. m) *. (exp ((interval +. c) /. m) -. 1.0) *. segments

let simulate rng p ~interval =
  validate p;
  if interval <= 0.0 then invalid_arg "Checkpoint.simulate: interval must be positive";
  let clock = ref 0.0 in
  let done_work = ref 0.0 in
  (* exponential inter-arrival; memorylessness lets us draw the time to the
     next failure fresh at the start of each segment attempt *)
  let time_to_failure () = Xsc_util.Rng.exponential rng (1.0 /. p.mtbf) in
  let next_failure = ref (time_to_failure ()) in
  while !done_work < p.work do
    let segment = min interval (p.work -. !done_work) in
    let need = segment +. (if !done_work +. segment >= p.work then 0.0 else p.checkpoint_cost) in
    if !next_failure >= need then begin
      (* segment (and checkpoint) completed before the next failure *)
      clock := !clock +. need;
      next_failure := !next_failure -. need;
      done_work := !done_work +. segment;
      if need > segment then Metrics.incr m_sim_checkpoints
    end
    else begin
      (* failure mid-segment: lose the partial segment, pay restart *)
      Metrics.incr m_sim_failures;
      clock := !clock +. !next_failure +. p.restart_cost;
      next_failure := time_to_failure ()
      (* done_work unchanged: we restart from the last checkpoint *)
    end
  done;
  !clock

let simulate_mean ?(runs = 200) rng p ~interval =
  if runs <= 0 then invalid_arg "Checkpoint.simulate_mean: runs must be positive";
  let acc = ref 0.0 in
  for _ = 1 to runs do
    acc := !acc +. simulate rng p ~interval
  done;
  !acc /. float_of_int runs

let efficiency p ~interval = p.work /. expected_time p ~interval
