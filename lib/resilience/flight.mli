(** Crash flight recorder: a bounded, always-on ring of the most recent
    span records, dumped to a CRC-headed file when something goes wrong.

    The recorder keeps the {e last} N entries (overwrite-oldest) — the
    opposite bias from tracer rings and the span collector, because a
    post-mortem wants what happened just before the failure, not the
    start of the run. Entries arrive either directly via {!record} or by
    teeing a span collector through {!note_span}
    ([Span.collector ~tee:Flight.note_span ()]).

    Dumps reuse {!Checkpoint}'s header discipline (atomic tmp+rename,
    magic/version/length/CRC-32) under the flight recorder's own magic,
    so a torn or corrupt dump is rejected with the same typed
    {!Checkpoint.load_error}s and a checkpoint file read as a flight dump
    fails [Bad_magic] rather than confusing [Marshal]. *)

type entry = {
  t_ns : int;  (** monotonic start timestamp of the segment *)
  domain : int;  (** recording domain id *)
  request : int;
  span : int;
  parent : int;
  attempt : int;
  phase : string;
  name : string;
  dur_ns : int;
}

type dump = {
  reason : string;
  wall_unix : float;  (** [Unix.gettimeofday] at dump time *)
  recorded : int;  (** entries ever offered, including those overwritten *)
  entries : entry array;  (** survivors, oldest first *)
}

val configure : capacity:int -> unit
(** Resize the ring (total across shards; default 4096) and clear it.
    Raises [Invalid_argument] if [capacity <= 0]. *)

val record : entry -> unit
(** Append to the calling domain's shard; overwrites the oldest entry
    when full. Counted on [flight.records]. *)

val note_span : Xsc_obs.Span.record -> unit
(** {!record} adapted to span records — the [tee] hook for
    {!Xsc_obs.Span.collector}. *)

val snapshot : unit -> entry array * int
(** Surviving entries sorted by timestamp, plus the total ever offered. *)

val clear : unit -> unit

val dump : path:string -> reason:string -> (int * int)
(** Write the current ring as a CRC-headed dump file; returns
    [(bytes_written, entries_dumped)]. Counted on [flight.dumps]. *)

val read : string -> (dump, Checkpoint.load_error) result
(** Parse and CRC-verify a dump file. *)

val dump_once : path:string -> reason:string -> (int * int) option
(** {!dump}, but at most once per [path] per process run — a
    permanent-fault storm triggers one post-mortem, not an IO storm.
    Returns [None] when this path was already dumped. *)

val reset_dump_guard : unit -> unit
(** Forget which paths {!dump_once} has written (for tests and repeated
    bench phases in one process). *)

val pp_dump : Format.formatter -> dump -> unit
(** Human-readable rendering: dump header, then per-request span chains
    in time order, indented by causal depth — what [xsc flight --read]
    prints. *)
