(** Checkpoint/restart under Poisson failures.

    At exascale the system MTBF drops below the application runtime, so the
    checkpoint interval becomes a first-order design parameter. This module
    provides the Young/Daly analysis and a stochastic simulation that
    validates it (FIG-6): expected completion time is convex in the interval
    with its minimum at [sqrt(2 C M)]. *)

type params = {
  work : float;  (** failure-free compute time of the job, seconds *)
  checkpoint_cost : float;  (** C: time to write one checkpoint *)
  restart_cost : float;  (** R: time to reboot/reload after a failure *)
  mtbf : float;  (** M: system mean time between failures *)
}

val young_interval : params -> float
(** Young's first-order optimum [sqrt(2 C M)]. *)

val daly_interval : params -> float
(** Daly's higher-order optimum (reduces to Young when [C << M]). *)

val expected_time : params -> interval:float -> float
(** Daly's closed-form expected completion time with checkpoints every
    [interval] seconds of useful work. *)

(** {1 Real checkpoint files}

    Checkpoints are written atomically (to [path ^ ".tmp"], then renamed
    into place) with a self-validating header: magic, format version,
    payload length and a CRC-32 of the Marshal payload. A crash mid-write
    can therefore never leave a half-written file under the checkpoint
    name, and a file torn after the fact (truncation, bit rot) is rejected
    with a typed error instead of crashing [Marshal] on garbage. *)

type load_error =
  | No_such_file
  | Truncated  (** file shorter than the header, or than the declared payload *)
  | Bad_magic  (** not a checkpoint file *)
  | Bad_version of int  (** written by an incompatible format version *)
  | Bad_crc  (** payload does not match its checksum: corrupt checkpoint *)

val describe_error : load_error -> string

val save_value : string -> 'a -> int
(** Write any marshallable value (Bigarray-backed state included) as an
    atomic, checksummed checkpoint; returns the file size in bytes.
    Tallies [checkpoint.writes], [checkpoint.bytes_written] and the
    [checkpoint.write_seconds] histogram in the {!Xsc_obs.Metrics}
    registry — measuring saves on representative state gives a defensible
    [checkpoint_cost] for the interval analysis. *)

val load_value : string -> ('a, load_error) result
(** Read back a value written by {!save_value}, validating the header and
    CRC first. The type is the caller's claim, as with [Marshal]. *)

val save_value_with : magic:string -> string -> 'a -> int
(** {!save_value} under a caller-chosen 7-byte magic: the same atomic
    tmp+rename write and self-validating header, but files from different
    subsystems (e.g. the flight recorder) reject each other with
    [Bad_magic] instead of Marshal-crashing on a type confusion. Raises
    [Invalid_argument] unless the magic is exactly 7 bytes. *)

val load_value_with : magic:string -> string -> ('a, load_error) result
(** Read back a value written by {!save_value_with} under the same
    magic. *)

val save : string -> Xsc_linalg.Mat.t -> int
(** [save_value] specialised to a matrix. *)

val load : string -> (Xsc_linalg.Mat.t, load_error) result
(** [load_value] specialised to a matrix. *)

val simulate : Xsc_util.Rng.t -> params -> interval:float -> float
(** One stochastic run: exponential failures, work lost back to the last
    checkpoint, restart cost paid per failure. Returns total wall time.
    Tallies [checkpoint.sim_failures] and [checkpoint.sim_checkpoints]. *)

val simulate_mean : ?runs:int -> Xsc_util.Rng.t -> params -> interval:float -> float
(** Mean of [runs] (default 200) independent simulations. *)

val efficiency : params -> interval:float -> float
(** [work / expected_time] — the fraction of the machine doing science. *)
