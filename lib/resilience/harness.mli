(** Runtime fault injection for real DAG executions.

    Wraps any closure-free task interpreter ([Task.op -> unit]) so that
    faults fire {e during} execution: a task body raises {!Injected} with
    probability [p_raise], or silently corrupts one entry of the tile it
    just wrote with probability [p_corrupt]. Decisions are a pure hash of
    [(seed, op)] — no shared RNG state — so a seeded storm injects exactly
    the same faults at the same tasks on every run, regardless of how the
    work-stealing executor interleaves them, from any number of domains.

    Raises fire {e before} the kernel runs (a crash mid-task: the output
    tile is left stale, which the restart path recomputes); corruption
    fires {e after} (a silent error on produced data, which in-DAG ABFT
    must detect downstream). Every fault is tallied in the
    {!Xsc_obs.Metrics} registry ([resilience.harness.raised],
    [resilience.harness.corrupted], and [resilience.faults_injected] via
    {!Inject}) and in per-harness counters. *)

exception Injected of string
(** The synthetic task-body failure; carries the op name. Surfaces from
    executors wrapped in [Real_exec.Task_failed]. *)

type policy = {
  seed : int;
  p_raise : float;  (** per-task probability of a task-body exception *)
  p_corrupt : float;  (** per-task probability of silent tile corruption *)
  magnitude : float;  (** corruption delta scale (delta in [m, 2m), ± sign) *)
  transient : bool;
      (** when true (the default), an op that raised once runs clean on
          replay — the transient-fault model that lets checkpoint/restart
          converge; when false the fault is permanent and every retry
          re-raises. *)
}

val default : policy
(** [seed = 1], both probabilities 0, [magnitude = 1.0], transient. *)

type t

val create : policy -> t
(** Raises [Invalid_argument] unless [p_raise, p_corrupt >= 0] and their
    sum is [<= 1]. *)

val wrap_packed :
  t -> Xsc_tile.Packed.D.t -> (Xsc_runtime.Task.op -> unit) -> Xsc_runtime.Task.op -> unit
(** [wrap_packed t p interp] is an interpreter that runs [interp] and
    injects faults into the packed matrix [p] per the policy. Corruption
    lands on a deterministic entry of the tile the op writes (diagonal
    tiles: lower triangle only — their strictly-upper entries are never
    read by any kernel, so damage there would be dead by construction).
    Safe to call from any number of executor domains. *)

val targets_key : t -> int -> bool
(** Whether the policy selects integer key [key] for a raise — a pure
    hash of [(seed, key)], so a seeded load run injects the same faults
    at the same request ids on every run. Lets a caller predict the
    injected set without executing anything. *)

val wrap_thunk : t -> key:int -> (unit -> 'a) -> 'a
(** Request-level injection for the serving layer: runs the thunk, but
    raises {!Injected} first when [targets_key] selects [key]. Transient
    policy means a key that raised once runs clean on the next attempt
    (retry-with-backoff converges); permanent means every attempt
    re-raises. Raise-only — [p_corrupt] has no effect at whole-request
    granularity. Safe from any number of domains. *)

val wrap_interp_key :
  t ->
  key:int ->
  (Xsc_runtime.Task.op -> unit) ->
  Xsc_runtime.Task.op ->
  unit
(** Request-keyed injection at {e task} granularity, for requests executed
    as DAG submissions into the shared pool (no single thunk to wrap):
    when [targets_key] selects [key], the returned interpreter raises
    {!Injected} at the first op it executes; otherwise (and on a
    transient key's replay) it is [interp] unchanged. Keyed decisions
    share {!wrap_thunk}'s hash and fired-set, so a seeded storm injects
    the same request set whichever execution path serves it. Wrap once
    per attempt. Safe from any number of domains. *)

val raised : t -> int
(** Task-body exceptions fired through this harness so far. *)

val corrupted : t -> int
(** Silent corruptions injected through this harness so far. *)

val reset : t -> unit
(** Clear the per-harness counters and the transient fired-sets (registry
    counters are not touched). *)
