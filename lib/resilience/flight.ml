(* Crash flight recorder: a process-wide bounded ring of the most recent
   span records, kept cheap enough to leave on always, dumped to a
   CRC-headed file (Checkpoint's header discipline under its own magic)
   when something goes wrong — a permanent request failure, an SLO
   breach, a bench gate tripping. Unlike the span collector (which keeps
   the *first* N records so a trace has its parents), the recorder keeps
   the *last* N: a post-mortem wants what happened just before the
   crash. *)

module Metrics = Xsc_obs.Metrics
module Span = Xsc_obs.Span

type entry = {
  t_ns : int;
  domain : int;
  request : int;
  span : int;
  parent : int;
  attempt : int;
  phase : string;
  name : string;
  dur_ns : int;
}

type dump = {
  reason : string;
  wall_unix : float;
  recorded : int;  (* total entries ever offered, including overwritten *)
  entries : entry array;  (* oldest first *)
}

let magic = "XSCFLTR"

let m_records = Metrics.counter "flight.records"
let m_dumps = Metrics.counter "flight.dumps"

(* Sharded by domain id so concurrent recorders (server completion path,
   executor workers) rarely contend on one lock. Each shard is a circular
   overwrite buffer: [seq] counts everything offered, the array keeps the
   last [cap]. *)
type shard = {
  mu : Mutex.t;
  mutable buf : entry option array;
  mutable seq : int;
}

let n_shards = 8
let default_capacity = 4096

let make_shards capacity =
  let per = max 1 (capacity / n_shards) in
  Array.init n_shards (fun _ -> { mu = Mutex.create (); buf = Array.make per None; seq = 0 })

let shards = ref (make_shards default_capacity)

let configure ~capacity =
  if capacity <= 0 then invalid_arg "Flight.configure: capacity must be positive";
  shards := make_shards capacity

let record (e : entry) =
  let s = !shards.((e.domain land max_int) land (n_shards - 1)) in
  Mutex.lock s.mu;
  s.buf.(s.seq mod Array.length s.buf) <- Some e;
  s.seq <- s.seq + 1;
  Mutex.unlock s.mu;
  Metrics.incr m_records

(* Adapter for Span collectors: [Span.collector ~tee:Flight.note_span]
   mirrors every span record into the recorder as it happens. *)
let note_span (r : Span.record) =
  record
    {
      t_ns = r.Span.start_ns;
      domain = (Domain.self () :> int);
      request = r.Span.request;
      span = r.Span.span;
      parent = r.Span.parent;
      attempt = r.Span.attempt;
      phase = r.Span.phase;
      name = r.Span.name;
      dur_ns = max 0 (r.Span.finish_ns - r.Span.start_ns);
    }

let snapshot () =
  let all = ref [] and total = ref 0 in
  Array.iter
    (fun s ->
      Mutex.lock s.mu;
      Array.iter (function Some e -> all := e :: !all | None -> ()) s.buf;
      total := !total + s.seq;
      Mutex.unlock s.mu)
    !shards;
  let arr = Array.of_list !all in
  Array.sort (fun a b -> compare a.t_ns b.t_ns) arr;
  (arr, !total)

let clear () =
  Array.iter
    (fun s ->
      Mutex.lock s.mu;
      Array.fill s.buf 0 (Array.length s.buf) None;
      s.seq <- 0;
      Mutex.unlock s.mu)
    !shards

let dump ~path ~reason =
  let entries, recorded = snapshot () in
  let d = { reason; wall_unix = Unix.gettimeofday (); recorded; entries } in
  let bytes = Checkpoint.save_value_with ~magic path d in
  Metrics.incr m_dumps;
  (bytes, Array.length entries)

let read path : (dump, Checkpoint.load_error) result = Checkpoint.load_value_with ~magic path

(* One dump per (path, reason-class) per process run would be ideal; a
   permanent-fault storm can fail dozens of requests in a burst, and
   re-marshalling the ring for each would turn a diagnostic into an IO
   storm. Callers use [dump_once] keyed by path: first failure wins, the
   final state can still be captured explicitly at shutdown. *)
let dumped : (string, unit) Hashtbl.t = Hashtbl.create 4
let dumped_mu = Mutex.create ()

let dump_once ~path ~reason =
  Mutex.lock dumped_mu;
  let fresh = not (Hashtbl.mem dumped path) in
  if fresh then Hashtbl.add dumped path ();
  Mutex.unlock dumped_mu;
  if fresh then Some (dump ~path ~reason) else None

let reset_dump_guard () =
  Mutex.lock dumped_mu;
  Hashtbl.reset dumped;
  Mutex.unlock dumped_mu

(* ---- human-readable rendering for `xsc flight --read` ---- *)

let pp_dump fmt (d : dump) =
  Format.fprintf fmt "flight dump: reason=%S entries=%d recorded=%d wall=%.3f@."
    d.reason (Array.length d.entries) d.recorded d.wall_unix;
  (* group by request, chains in time order, indent by parent depth *)
  let by_req : (int, entry list) Hashtbl.t = Hashtbl.create 16 in
  Array.iter (fun e -> Hashtbl.replace by_req e.request (e :: Option.value ~default:[] (Hashtbl.find_opt by_req e.request))) d.entries;
  let reqs = Hashtbl.fold (fun r _ acc -> r :: acc) by_req [] |> List.sort compare in
  let depth_cache = Hashtbl.create 64 in
  let parent_of = Hashtbl.create 64 in
  Array.iter (fun e -> Hashtbl.replace parent_of e.span e.parent) d.entries;
  let rec depth span =
    if span < 0 then 0
    else
      match Hashtbl.find_opt depth_cache span with
      | Some d -> d
      | None ->
        let d =
          match Hashtbl.find_opt parent_of span with
          | Some p when p <> span -> 1 + depth p
          | _ -> 0
        in
        Hashtbl.replace depth_cache span d;
        d
  in
  List.iter
    (fun r ->
      Format.fprintf fmt "request %d:@." r;
      List.iter
        (fun e ->
          Format.fprintf fmt "  %s%-8s %-24s span=%d parent=%d attempt=%d dom=%d t=%dns dur=%dns@."
            (String.make (2 * max 0 (depth e.span - 1)) ' ')
            e.phase e.name e.span e.parent e.attempt e.domain e.t_ns e.dur_ns)
        (List.sort (fun a b -> compare (a.t_ns, a.span) (b.t_ns, b.span))
           (Option.value ~default:[] (Hashtbl.find_opt by_req r))))
    reqs
