open Xsc_linalg

(* every injected fault is tallied so experiments can cross-check the
   detection rate: resilience.faults_detected / resilience.faults_injected *)
let faults_injected = Xsc_obs.Metrics.counter "resilience.faults_injected"

let corrupt_entry m i j ~delta =
  Xsc_obs.Metrics.incr faults_injected;
  Mat.set m i j (Mat.get m i j +. delta)

let corrupt_random_entry rng (m : Mat.t) ~magnitude =
  let i = Xsc_util.Rng.int rng m.rows and j = Xsc_util.Rng.int rng m.cols in
  let sign = if Xsc_util.Rng.uniform rng < 0.5 then -1.0 else 1.0 in
  corrupt_entry m i j ~delta:(sign *. magnitude);
  (i, j)

let flip_mantissa_bit rng (m : Mat.t) =
  let i = Xsc_util.Rng.int rng m.rows and j = Xsc_util.Rng.int rng m.cols in
  let bit = Xsc_util.Rng.int rng 51 in
  let bits = Int64.bits_of_float (Mat.get m i j) in
  let flipped = Int64.logxor bits (Int64.shift_left 1L bit) in
  Xsc_obs.Metrics.incr faults_injected;
  Mat.set m i j (Int64.float_of_bits flipped);
  (i, j)

let corrupt_lower_entry rng (m : Mat.t) ~magnitude =
  if m.rows < 2 then invalid_arg "Inject.corrupt_lower_entry: matrix too small";
  let i = 1 + Xsc_util.Rng.int rng (m.rows - 1) in
  let j = Xsc_util.Rng.int rng i in
  let sign = if Xsc_util.Rng.uniform rng < 0.5 then -1.0 else 1.0 in
  corrupt_entry m i j ~delta:(sign *. magnitude);
  (i, j)
