open Xsc_linalg

(* every injected fault is tallied so experiments can cross-check the
   detection rate: resilience.faults_detected / resilience.faults_injected *)
let faults_injected = Xsc_obs.Metrics.counter "resilience.faults_injected"

let corrupt_entry m i j ~delta =
  Xsc_obs.Metrics.incr faults_injected;
  Mat.set m i j (Mat.get m i j +. delta)

let corrupt_random_entry rng (m : Mat.t) ~magnitude =
  let i = Xsc_util.Rng.int rng m.rows and j = Xsc_util.Rng.int rng m.cols in
  let sign = if Xsc_util.Rng.uniform rng < 0.5 then -1.0 else 1.0 in
  corrupt_entry m i j ~delta:(sign *. magnitude);
  (i, j)

let flip_mantissa_bit rng (m : Mat.t) =
  let i = Xsc_util.Rng.int rng m.rows and j = Xsc_util.Rng.int rng m.cols in
  let bit = Xsc_util.Rng.int rng 51 in
  let bits = Int64.bits_of_float (Mat.get m i j) in
  let flipped = Int64.logxor bits (Int64.shift_left 1L bit) in
  Xsc_obs.Metrics.incr faults_injected;
  Mat.set m i j (Int64.float_of_bits flipped);
  (i, j)

let corrupt_lower_entry rng (m : Mat.t) ~magnitude =
  if m.rows < 2 then invalid_arg "Inject.corrupt_lower_entry: matrix too small";
  let i = 1 + Xsc_util.Rng.int rng (m.rows - 1) in
  let j = Xsc_util.Rng.int rng i in
  let sign = if Xsc_util.Rng.uniform rng < 0.5 then -1.0 else 1.0 in
  corrupt_entry m i j ~delta:(sign *. magnitude);
  (i, j)

(* ---- Packed tile-major storage (the real kernel path) ---- *)

module PD = Xsc_tile.Packed.D
module PS = Xsc_tile.Packed.S

let corrupt_packed_entry (p : PD.t) i j ~delta =
  Xsc_obs.Metrics.incr faults_injected;
  PD.set p i j (PD.get p i j +. delta)

let corrupt_random_packed_entry rng (p : PD.t) ~magnitude =
  let i = Xsc_util.Rng.int rng p.PD.n and j = Xsc_util.Rng.int rng p.PD.n in
  let sign = if Xsc_util.Rng.uniform rng < 0.5 then -1.0 else 1.0 in
  corrupt_packed_entry p i j ~delta:(sign *. magnitude);
  (i, j)

let corrupt_random_packed_tile rng (p : PD.t) ~magnitude =
  let ti = Xsc_util.Rng.int rng p.PD.nt and tj = Xsc_util.Rng.int rng p.PD.nt in
  let r = Xsc_util.Rng.int rng p.PD.nb and c = Xsc_util.Rng.int rng p.PD.nb in
  let sign = if Xsc_util.Rng.uniform rng < 0.5 then -1.0 else 1.0 in
  corrupt_packed_entry p ((ti * p.PD.nb) + r) ((tj * p.PD.nb) + c)
    ~delta:(sign *. magnitude);
  (ti, tj)

let flip_packed_mantissa_bit rng (p : PD.t) =
  let i = Xsc_util.Rng.int rng p.PD.n and j = Xsc_util.Rng.int rng p.PD.n in
  let bit = Xsc_util.Rng.int rng 51 in
  let bits = Int64.bits_of_float (PD.get p i j) in
  let flipped = Int64.logxor bits (Int64.shift_left 1L bit) in
  Xsc_obs.Metrics.incr faults_injected;
  PD.set p i j (Int64.float_of_bits flipped);
  (i, j)

let corrupt_packed32_entry (p : PS.t) i j ~delta =
  Xsc_obs.Metrics.incr faults_injected;
  PS.set p i j (PS.get p i j +. delta)

let corrupt_random_packed32_entry rng (p : PS.t) ~magnitude =
  let i = Xsc_util.Rng.int rng p.PS.n and j = Xsc_util.Rng.int rng p.PS.n in
  let sign = if Xsc_util.Rng.uniform rng < 0.5 then -1.0 else 1.0 in
  corrupt_packed32_entry p i j ~delta:(sign *. magnitude);
  (i, j)

let corrupt_random_packed32_tile rng (p : PS.t) ~magnitude =
  let ti = Xsc_util.Rng.int rng p.PS.nt and tj = Xsc_util.Rng.int rng p.PS.nt in
  let r = Xsc_util.Rng.int rng p.PS.nb and c = Xsc_util.Rng.int rng p.PS.nb in
  let sign = if Xsc_util.Rng.uniform rng < 0.5 then -1.0 else 1.0 in
  corrupt_packed32_entry p ((ti * p.PS.nb) + r) ((tj * p.PS.nb) + c)
    ~delta:(sign *. magnitude);
  (ti, tj)

let flip_packed32_mantissa_bit rng (p : PS.t) =
  let i = Xsc_util.Rng.int rng p.PS.n and j = Xsc_util.Rng.int rng p.PS.n in
  (* float32: 23 mantissa bits; stay among the low 22 so the exponent is
     untouched and the value cannot become NaN/Inf *)
  let bit = Xsc_util.Rng.int rng 22 in
  let stored = Int32.bits_of_float (PS.get p i j) in
  let flipped = Int32.logxor stored (Int32.shift_left 1l bit) in
  Xsc_obs.Metrics.incr faults_injected;
  PS.set p i j (Int32.float_of_bits flipped);
  (i, j)
