(** Fault injection for the resilience experiments: soft errors modelled as
    silent corruption of matrix entries. *)

open Xsc_linalg

val corrupt_entry : Mat.t -> int -> int -> delta:float -> unit
(** Add [delta] to one entry (the canonical silent-error model). *)

val corrupt_random_entry : Xsc_util.Rng.t -> Mat.t -> magnitude:float -> int * int
(** Corrupt a uniformly random entry by a delta of the given magnitude
    (random sign); returns the coordinates. *)

val flip_mantissa_bit : Xsc_util.Rng.t -> Mat.t -> int * int
(** Flip one random bit among the low 51 mantissa bits of a random entry —
    a bit-level soft error that changes the value without producing
    NaN/Inf. Returns the coordinates. *)

val corrupt_lower_entry : Xsc_util.Rng.t -> Mat.t -> magnitude:float -> int * int
(** Corrupt a random entry strictly inside the lower triangle (for factor
    matrices). Requires a matrix of size at least 2. *)

(** {1 Packed tile-major storage}

    The same fault models aimed at {!Xsc_tile.Packed} buffers, so the
    harness reaches the real C-kernel path (f64 and genuine f32). All
    variants tally [resilience.faults_injected]. *)

val corrupt_packed_entry : Xsc_tile.Packed.D.t -> int -> int -> delta:float -> unit
(** Add [delta] to one entry addressed by global (row, col). *)

val corrupt_random_packed_entry :
  Xsc_util.Rng.t -> Xsc_tile.Packed.D.t -> magnitude:float -> int * int
(** Corrupt a uniformly random entry (random sign); returns global coords. *)

val corrupt_random_packed_tile :
  Xsc_util.Rng.t -> Xsc_tile.Packed.D.t -> magnitude:float -> int * int
(** Corrupt one random entry of a uniformly random tile; returns the tile
    coordinates [(ti, tj)] — the granularity the in-DAG ABFT recovery
    locates and replays. *)

val flip_packed_mantissa_bit : Xsc_util.Rng.t -> Xsc_tile.Packed.D.t -> int * int
(** Flip one of the low 51 mantissa bits of a random entry (never NaN/Inf);
    returns global coords. *)

val corrupt_packed32_entry : Xsc_tile.Packed.S.t -> int -> int -> delta:float -> unit

val corrupt_random_packed32_entry :
  Xsc_util.Rng.t -> Xsc_tile.Packed.S.t -> magnitude:float -> int * int

val corrupt_random_packed32_tile :
  Xsc_util.Rng.t -> Xsc_tile.Packed.S.t -> magnitude:float -> int * int

val flip_packed32_mantissa_bit : Xsc_util.Rng.t -> Xsc_tile.Packed.S.t -> int * int
(** Flip one of the low 22 mantissa bits of the stored float32 value. *)
