open Xsc_linalg

(* detected/corrected tallies pair with resilience.faults_injected from
   {!Inject} to give coverage ratios across a whole experiment run *)
let faults_detected = Xsc_obs.Metrics.counter "resilience.faults_detected"
let faults_corrected = Xsc_obs.Metrics.counter "resilience.faults_corrected"

type protected_product = {
  full : Mat.t;
  m : int;
  n : int;
}

let append_checksum_row (a : Mat.t) =
  let out = Mat.create (a.rows + 1) a.cols in
  Mat.blit_block ~src:a ~dst:out ~src_row:0 ~src_col:0 ~dst_row:0 ~dst_col:0 ~rows:a.rows
    ~cols:a.cols;
  for j = 0 to a.cols - 1 do
    let acc = ref 0.0 in
    for i = 0 to a.rows - 1 do
      acc := !acc +. Mat.get a i j
    done;
    Mat.set out a.rows j !acc
  done;
  out

let append_checksum_col (b : Mat.t) =
  let out = Mat.create b.rows (b.cols + 1) in
  Mat.blit_block ~src:b ~dst:out ~src_row:0 ~src_col:0 ~dst_row:0 ~dst_col:0 ~rows:b.rows
    ~cols:b.cols;
  for i = 0 to b.rows - 1 do
    let acc = ref 0.0 in
    for j = 0 to b.cols - 1 do
      acc := !acc +. Mat.get b i j
    done;
    Mat.set out i b.cols !acc
  done;
  out

let gemm_protected a b =
  if a.Mat.cols <> b.Mat.rows then invalid_arg "Abft.gemm_protected: dimension mismatch";
  let af = append_checksum_row a in
  let bf = append_checksum_col b in
  let full = Blas.gemm_new af bf in
  { full; m = a.Mat.rows; n = b.Mat.cols }

let default_tol p = 1e-8 *. max 1.0 (Mat.max_abs p.full) *. float_of_int (max p.m p.n)

let checksum_mismatches ?tol p =
  let tol = match tol with Some t -> t | None -> default_tol p in
  let bad_rows = ref [] and bad_cols = ref [] in
  for i = 0 to p.m - 1 do
    let acc = ref 0.0 in
    for j = 0 to p.n - 1 do
      acc := !acc +. Mat.get p.full i j
    done;
    if abs_float (!acc -. Mat.get p.full i p.n) > tol then bad_rows := i :: !bad_rows
  done;
  for j = 0 to p.n - 1 do
    let acc = ref 0.0 in
    for i = 0 to p.m - 1 do
      acc := !acc +. Mat.get p.full i j
    done;
    if abs_float (!acc -. Mat.get p.full p.m j) > tol then bad_cols := j :: !bad_cols
  done;
  (List.rev !bad_rows, List.rev !bad_cols)

let verify_product ?tol p =
  let rows, cols = checksum_mismatches ?tol p in
  let corrupt = List.concat_map (fun i -> List.map (fun j -> (i, j)) cols) rows in
  Xsc_obs.Metrics.add faults_detected (List.length corrupt);
  corrupt

let correct_product ?tol p =
  let corrupt = verify_product ?tol p in
  let corrected =
    match corrupt with
    | [] -> 0
    | [ (i, j) ] ->
    (* single error: the row checksum discrepancy is exactly the delta *)
    let acc = ref 0.0 in
    for jj = 0 to p.n - 1 do
      acc := !acc +. Mat.get p.full i jj
    done;
      let delta = !acc -. Mat.get p.full i p.n in
      Mat.set p.full i j (Mat.get p.full i j -. delta);
      1
    | multiple ->
    (* several candidate intersections: correct only when unambiguous,
       i.e. exactly one bad row and one bad column pair remains after each
       fix. Fix greedily row by row. *)
    let fixed = ref 0 in
    List.iter
      (fun (i, j) ->
        let row_mismatch =
          let acc = ref 0.0 in
          for jj = 0 to p.n - 1 do
            acc := !acc +. Mat.get p.full i jj
          done;
          !acc -. Mat.get p.full i p.n
        in
        let col_mismatch =
          let acc = ref 0.0 in
          for ii = 0 to p.m - 1 do
            acc := !acc +. Mat.get p.full ii j
          done;
          !acc -. Mat.get p.full p.m j
        in
        (* only a genuine single error at (i,j) shows the same discrepancy
           on both its row and its column *)
        let tol = match tol with Some t -> t | None -> default_tol p in
        if abs_float (row_mismatch -. col_mismatch) <= tol && abs_float row_mismatch > tol
        then begin
          Mat.set p.full i j (Mat.get p.full i j -. row_mismatch);
          incr fixed
        end)
        multiple;
      !fixed
  in
  Xsc_obs.Metrics.add faults_corrected corrected;
  corrected

let decode_product p = Mat.sub_block p.full ~row:0 ~col:0 ~rows:p.m ~cols:p.n

(* ---- Cholesky verification through checksum vectors ---- *)

let verify_cholesky ?tol ~l a =
  let n = a.Mat.rows in
  if n <> a.Mat.cols || l.Mat.rows <> n || l.Mat.cols <> n then
    invalid_arg "Abft.verify_cholesky: dimension mismatch";
  let tol =
    match tol with
    | Some t -> t
    | None -> 1e-8 *. max 1.0 (Mat.norm_inf a) *. float_of_int n
  in
  (* With any vector v: A v must equal L (Lᵀ v); a corrupted row i of L
     perturbs (L Lᵀ v)_i for every v with v_i involvement, so the residual
     of the plain checksum locates the row. The weighted checksum guards
     against coincidental cancellation. *)
  let check v =
    let ltv = Array.make n 0.0 in
    for i = 0 to n - 1 do
      (* (Lᵀ v)_i = sum_k L_ki v_k, L lower triangular: k >= i *)
      let acc = ref 0.0 in
      for k = i to n - 1 do
        acc := !acc +. (Mat.get l k i *. v.(k))
      done;
      ltv.(i) <- !acc
    done;
    let lltv = Array.make n 0.0 in
    for i = 0 to n - 1 do
      let acc = ref 0.0 in
      for k = 0 to i do
        acc := !acc +. (Mat.get l i k *. ltv.(k))
      done;
      lltv.(i) <- !acc
    done;
    let av = Mat.mul_vec a v in
    let bad = ref None in
    for i = n - 1 downto 0 do
      if abs_float (av.(i) -. lltv.(i)) > tol then bad := Some i
    done;
    !bad
  in
  let ones = Array.make n 1.0 in
  let weighted = Array.init n (fun i -> 1.0 +. (float_of_int i /. float_of_int n)) in
  let bad = match check ones with Some i -> Some i | None -> check weighted in
  if bad <> None then Xsc_obs.Metrics.incr faults_detected;
  bad

let recover_row ~a ~l ~row =
  let n = a.Mat.rows in
  for j = 0 to row - 1 do
    let acc = ref (Mat.get a row j) in
    for k = 0 to j - 1 do
      acc := !acc -. (Mat.get l row k *. Mat.get l j k)
    done;
    Mat.set l row j (!acc /. Mat.get l j j)
  done;
  let d = ref (Mat.get a row row) in
  for k = 0 to row - 1 do
    let v = Mat.get l row k in
    d := !d -. (v *. v)
  done;
  if !d <= 0.0 then raise (Lapack.Singular row);
  Mat.set l row row (sqrt !d);
  (* entries right of the diagonal in a lower factor are zero *)
  for j = row + 1 to n - 1 do
    Mat.set l row j 0.0
  done

let recover_cholesky_rows ~a ~l ~from =
  let n = a.Mat.rows in
  if from < 0 || from >= n then invalid_arg "Abft.recover_cholesky_rows: row out of range";
  for row = from to n - 1 do
    recover_row ~a ~l ~row
  done

(* ---- LU verification (no-pivoting packed factor) ---- *)

let verify_lu ?tol ~lu a =
  let n = a.Mat.rows in
  if n <> a.Mat.cols || lu.Mat.rows <> n || lu.Mat.cols <> n then
    invalid_arg "Abft.verify_lu: dimension mismatch";
  let tol =
    match tol with
    | Some t -> t
    | None -> 1e-8 *. max 1.0 (Mat.norm_inf a) *. float_of_int n
  in
  let check v =
    (* u = U v (upper incl. diagonal), then w = L u (unit lower) *)
    let u = Array.make n 0.0 in
    for i = 0 to n - 1 do
      let acc = ref 0.0 in
      for j = i to n - 1 do
        acc := !acc +. (Mat.get lu i j *. v.(j))
      done;
      u.(i) <- !acc
    done;
    let w = Array.make n 0.0 in
    for i = 0 to n - 1 do
      let acc = ref u.(i) in
      for j = 0 to i - 1 do
        acc := !acc +. (Mat.get lu i j *. u.(j))
      done;
      w.(i) <- !acc
    done;
    let av = Mat.mul_vec a v in
    let bad = ref None in
    for i = n - 1 downto 0 do
      if abs_float (av.(i) -. w.(i)) > tol then bad := Some i
    done;
    !bad
  in
  let ones = Array.make n 1.0 in
  let weighted = Array.init n (fun i -> 1.0 +. (float_of_int i /. float_of_int n)) in
  let bad = match check ones with Some i -> Some i | None -> check weighted in
  if bad <> None then Xsc_obs.Metrics.incr faults_detected;
  bad

let recover_lu_rows ~a ~lu ~from =
  let n = a.Mat.rows in
  if from < 0 || from >= n then invalid_arg "Abft.recover_lu_rows: row out of range";
  (* row-wise Doolittle: row i needs U rows < i (intact or already
     recomputed) and builds L(i, <i) then U(i, >=i) left to right *)
  for i = from to n - 1 do
    for j = 0 to n - 1 do
      let kmax = min i j in
      let acc = ref (Mat.get a i j) in
      for k = 0 to kmax - 1 do
        acc := !acc -. (Mat.get lu i k *. Mat.get lu k j)
      done;
      if j < i then begin
        let ujj = Mat.get lu j j in
        if ujj = 0.0 then raise (Lapack.Singular j);
        Mat.set lu i j (!acc /. ujj)
      end
      else Mat.set lu i j !acc
    done
  done

let overhead_model ~n ~nb =
  if n <= 0 || nb <= 0 || n mod nb <> 0 then invalid_arg "Abft.overhead_model: bad sizes";
  let nt = float_of_int (n / nb) in
  ((nt +. 1.0) ** 2.0 /. (nt ** 2.0)) -. 1.0
