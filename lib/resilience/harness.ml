(* Runtime fault harness: wraps a task interpreter so faults fire *during*
   execution of a real DAG run, per a seeded policy.

   Determinism is the whole design: the fault decision for a task is a pure
   hash of (seed, op) — not a draw from shared mutable RNG state — so a
   given seed injects the same faults at the same tasks regardless of how
   the work-stealing executor interleaves them, and a storm of N seeded
   runs is exactly reproducible. (A shared RNG would make the fault set
   depend on the racey order workers reach the draw.) *)

module Task = Xsc_runtime.Task
module PD = Xsc_tile.Packed.D
module Metrics = Xsc_obs.Metrics
module Span = Xsc_obs.Span

exception Injected of string

let () =
  Printexc.register_printer (function
    | Injected op -> Some (Printf.sprintf "Harness.Injected(%s)" op)
    | _ -> None)

let m_raised = Metrics.counter "resilience.harness.raised"
let m_corrupted = Metrics.counter "resilience.harness.corrupted"

(* Mark an injected fault on the ambient request's span chain (zero
   duration, phase "inject"): a retried attempt in the exported trace
   shows *why* it retried. No-op unless spans are active. *)
let note_inject name =
  if Span.active () then begin
    let t = Xsc_obs.Clock.now_ns () in
    Span.note ~phase:"inject" ~name ~lane:(-1) ~attempt:0 ~start_ns:t ~finish_ns:t
  end

type policy = {
  seed : int;
  p_raise : float;
  p_corrupt : float;
  magnitude : float;
  transient : bool;
}

let default =
  { seed = 1; p_raise = 0.0; p_corrupt = 0.0; magnitude = 1.0; transient = true }

type t = {
  policy : policy;
  fired : (Task.op, unit) Hashtbl.t;
  fired_keys : (int, unit) Hashtbl.t;
  lock : Mutex.t;
  raised : int Atomic.t;
  corrupted : int Atomic.t;
}

let create policy =
  if policy.p_raise < 0.0 || policy.p_corrupt < 0.0
     || policy.p_raise +. policy.p_corrupt > 1.0
  then invalid_arg "Harness.create: probabilities must be >= 0 and sum to <= 1";
  {
    policy;
    fired = Hashtbl.create 16;
    fired_keys = Hashtbl.create 16;
    lock = Mutex.create ();
    raised = Atomic.make 0;
    corrupted = Atomic.make 0;
  }

let raised t = Atomic.get t.raised
let corrupted t = Atomic.get t.corrupted

(* splitmix64 finalizer: a well-mixed 64-bit hash of (seed, op). *)
let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let op_code = function
  | Task.Potrf k -> (1, k, 0, 0)
  | Task.Trsm (k, i) -> (2, k, i, 0)
  | Task.Syrk (i, k) -> (3, i, k, 0)
  | Task.Gemm (i, j, k) -> (4, i, j, k)
  | Task.Getrf k -> (5, k, 0, 0)
  | Task.Trsm_l (k, j) -> (6, k, j, 0)
  | Task.Trsm_u (i, k) -> (7, i, k, 0)

let hash_op seed op =
  let tag, a, b, c = op_code op in
  let h = mix64 (Int64.of_int seed) in
  let h = mix64 (Int64.add h (Int64.of_int ((tag lsl 24) lxor a))) in
  let h = mix64 (Int64.add h (Int64.of_int ((b lsl 12) lxor c))) in
  h

(* uniform in [0,1) from the top 52 bits *)
let uniform_of h =
  Int64.to_float (Int64.shift_right_logical h 12) *. (1.0 /. 4503599627370496.0)

(* The tile an op writes — where silent corruption lands, so the fault is
   always on freshly produced (and therefore consumed-downstream) data. *)
let write_tile = function
  | Task.Potrf k | Task.Getrf k -> (k, k)
  | Task.Trsm (k, i) -> (i, k)
  | Task.Syrk (i, _) -> (i, i)
  | Task.Gemm (i, j, _) -> (i, j)
  | Task.Trsm_l (k, j) -> (k, j)
  | Task.Trsm_u (i, k) -> (i, k)

type decision = Clean | Raise | Corrupt

let decide t op =
  let p = t.policy in
  let u = uniform_of (hash_op p.seed op) in
  if u < p.p_raise then Raise
  else if u < p.p_raise +. p.p_corrupt then Corrupt
  else Clean

(* Deterministic in-tile target and delta, drawn from an independent hash
   stream. Diagonal tiles are corrupted in their lower triangle only: the
   Cholesky kernels never read a diagonal tile's strictly-upper entries, so
   damage there is dead — undetectable by construction and irrelevant to
   the result. The delta magnitude is spread over [m, 2m) so two faults in
   one tile column cannot cancel below detection tolerance. *)
let corrupt_packed t (p : PD.t) op =
  let ti, tj = write_tile op in
  let nb = p.PD.nb in
  let h = mix64 (Int64.add (hash_op t.policy.seed op) 0x9E3779B97F4A7C15L) in
  let r = Int64.to_int (Int64.logand h 0xFFFFL) mod nb in
  let h2 = mix64 h in
  let c0 = Int64.to_int (Int64.logand h2 0xFFFFL) mod nb in
  let c = if ti = tj && c0 > r then c0 mod (r + 1) else c0 in
  let h3 = mix64 h2 in
  let sign = if Int64.logand h3 1L = 0L then 1.0 else -1.0 in
  let spread = 1.0 +. uniform_of h3 in
  let delta = sign *. t.policy.magnitude *. spread in
  Inject.corrupt_packed_entry p ((ti * nb) + r) ((tj * nb) + c) ~delta;
  (ti, tj)

let wrap_packed t (p : PD.t) interp (op : Task.op) =
  match decide t op with
  | Clean -> interp op
  | Raise ->
    let fire =
      (not t.policy.transient)
      ||
      (Mutex.lock t.lock;
       let seen = Hashtbl.mem t.fired op in
       if not seen then Hashtbl.add t.fired op ();
       Mutex.unlock t.lock;
       not seen)
    in
    if fire then begin
      Atomic.incr t.raised;
      Metrics.incr m_raised;
      note_inject (Task.op_name op);
      raise (Injected (Task.op_name op))
    end
    else interp op
  | Corrupt ->
    interp op;
    ignore (corrupt_packed t p op);
    Atomic.incr t.corrupted;
    Metrics.incr m_corrupted

(* Request-level injection for the serving layer: the same pure-hash
   determinism as [wrap_packed], but keyed by an integer (a request id)
   instead of a task op, and raise-only — corruption is a tile-storage
   concept, meaningless at whole-request granularity, so p_corrupt is
   folded into the clean mass here. *)

let hash_key seed key =
  let h = mix64 (Int64.of_int seed) in
  mix64 (Int64.add h (Int64.of_int (key lxor 0x5E41)))

let targets_key t key =
  uniform_of (hash_key t.policy.seed key) < t.policy.p_raise

let wrap_thunk t ~key thunk =
  if not (targets_key t key) then thunk ()
  else begin
    let fire =
      (not t.policy.transient)
      ||
      (Mutex.lock t.lock;
       let seen = Hashtbl.mem t.fired_keys key in
       if not seen then Hashtbl.add t.fired_keys key ();
       Mutex.unlock t.lock;
       not seen)
    in
    if fire then begin
      Atomic.incr t.raised;
      Metrics.incr m_raised;
      note_inject (Printf.sprintf "req(%d)" key);
      raise (Injected (Printf.sprintf "req(%d)" key))
    end
    else thunk ()
  end

(* Request-keyed injection at *task* granularity, for requests executed as
   DAG submissions into the shared pool (where there is no single request
   thunk to wrap): the returned interpreter raises on the first op it
   executes in this attempt. Keyed decisions match [wrap_thunk] exactly —
   same hash, same fired-set — so a storm's injected request set is
   identical whichever execution path serves it. *)
let wrap_interp_key t ~key interp =
  if not (targets_key t key) then interp
  else begin
    let already =
      t.policy.transient
      &&
      (Mutex.lock t.lock;
       let seen = Hashtbl.mem t.fired_keys key in
       Mutex.unlock t.lock;
       seen)
    in
    if already then interp
    else begin
      let fired_this = Atomic.make false in
      fun op ->
        (* first op of the attempt wins the CAS and raises; tasks already
           in flight on other workers run clean *)
        if Atomic.compare_and_set fired_this false true then begin
          if t.policy.transient then begin
            Mutex.lock t.lock;
            if not (Hashtbl.mem t.fired_keys key) then Hashtbl.add t.fired_keys key ();
            Mutex.unlock t.lock
          end;
          Atomic.incr t.raised;
          Metrics.incr m_raised;
          note_inject (Printf.sprintf "req(%d)" key);
          raise (Injected (Printf.sprintf "req(%d)" key))
        end
        else interp op
    end
  end

let reset t =
  Mutex.lock t.lock;
  Hashtbl.reset t.fired;
  Hashtbl.reset t.fired_keys;
  Mutex.unlock t.lock;
  Atomic.set t.raised 0;
  Atomic.set t.corrupted 0
