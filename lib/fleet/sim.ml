(* The fleet simulator: the real serve policy pipeline running in
   discrete-event time over a simulated machine under a Poisson failure
   storm.

   Composition (the point of the module):
   - admission window / dynamic batching / EDF dispatch are the *actual*
     `lib/serve` structures — the polymorphic [Batcher] and [Scheduler]
     instantiated at simulated requests, with the same admission rule
     [Server.submit] applies (occupancy vs capacity);
   - nodes, the alpha-beta network and the failure process come from
     `lib/simmachine` ([Des], [Machine], [Failure]);
   - solve costs come from the `lib/ca` closed forms ([Model]);
   - a node failure mid-request walks the recovery lattice of
     `lib/resilience`: ABFT checksum repair < cone replay <
     checkpoint-restart at Young cadence < typed reject — cheapest rung
     that still meets the member's deadline, and reject when none can.

   Determinism: arrival times and failure times are drawn from seeded,
   split RNG streams in event order (the DES is FIFO-stable), and every
   per-failure decision (victim node, fault kind) is a pure hash of
   (seed, failure index) in the `Harness` discipline — no draw depends on
   simulation state, so a replayed storm makes bit-identical decisions.
   Batch formation is deterministic because [Batcher.flush_due] orders
   ties by class key, never by hash-table iteration. Two runs of the same
   config produce equal [records] arrays (float-bitwise) and equal
   [outcome_hash] fingerprints; the fleet bench gates on exactly that. *)

module Des = Xsc_simmachine.Des
module Failure = Xsc_simmachine.Failure
module Machine = Xsc_simmachine.Machine
module Rng = Xsc_util.Rng
module Stats = Xsc_util.Stats
module Batcher = Xsc_serve.Batcher
module Scheduler = Xsc_serve.Scheduler
module Metrics = Xsc_obs.Metrics
module Span = Xsc_obs.Span

type cadence =
  | Every_step
  | Young
  | Never
  | Every of int

type policy = {
  capacity : int;  (* admission window, as Server.config.capacity *)
  max_batch : int;
  linger_s : float;
  cadence : cadence;
  abft : bool;  (* keep checksums: pay per-step overhead, repair tiles *)
}

type faults = {
  p_tile : float;  (* busy-node failure is a single-tile corruption *)
  p_cone : float;  (* ... a wider corruption needing cone replay *)
  (* remaining mass: a hard rank loss (checkpoint-restart territory) *)
  repair_s : float;  (* downed node rejoins after this long *)
}

type config = {
  seed : int;
  machine : Machine.t;
  classes : Model.cls array;
  rate_hz : float;  (* offered Poisson arrival rate *)
  count : int;  (* offered requests *)
  policy : policy;
  faults : faults;
  spans : bool;  (* keep simulated span records (chrome-exportable) *)
}

type outcome =
  | Completed of { finish_s : float; on_time : bool; recoveries : int }
  | Rejected_admission
  | Rejected_recovery of { at_s : float; recoveries : int }

type record = {
  id : int;
  cls : string;
  arrive_s : float;
  deadline_s : float;  (* absolute *)
  outcome : outcome;
}

type counters = {
  mutable offered : int;
  mutable admitted : int;
  mutable rejected_admission : int;
  mutable completed : int;
  mutable on_time : int;
  mutable rejected_recovery : int;
  mutable batches : int;
  mutable checkpoints : int;
  mutable failures_total : int;
  mutable failures_idle : int;
      (* landed on a free node, a downed node, or an allocation draining
         a recovery tail with no member left to expose *)
  mutable failures_busy : int;  (* landed on an active allocation *)
  mutable abft_repairs : int;
  mutable cone_replays : int;
  mutable restarts : int;
  mutable reject_hits : int;  (* failures whose only surviving rung was reject *)
}

type result = {
  records : record array;
  counters : counters;
  makespan_s : float;
  goodput_rps : float;  (* on-time completions per simulated second *)
  availability : float;  (* on-time completions / offered *)
  p50_ms : float;
  p99_ms : float;
  util : float;  (* busy node-seconds / (nodes * makespan) *)
  young_by_class : (string * int) list;  (* cadence (steps) actually used *)
  failure_rate : float;  (* configured system failures/s *)
  empirical_failures : int;
  expected_failures : float;
  outcome_hash : int64;
  wedged : bool;  (* horizon hit before every request settled: a bug *)
  sim_spans : Span.record list;  (* simulated-time spans, origin 0 *)
}

(* ---- the Harness discipline: pure-hash per-failure decisions ---- *)

let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 33)) 0xff51afd7ed558ccdL in
  let z = mul (logxor z (shift_right_logical z 33)) 0xc4ceb9fe1a85ec53L in
  logxor z (shift_right_logical z 33)

let hash_fail ~seed ~index ~salt =
  mix64
    (Int64.add
       (mix64 (Int64.of_int seed))
       (Int64.add (Int64.mul (Int64.of_int index) 0x9e3779b97f4a7c15L) (Int64.of_int salt)))

let uniform_fail ~seed ~index ~salt =
  let bits = Int64.shift_right_logical (hash_fail ~seed ~index ~salt) 12 in
  Int64.to_float bits /. 4503599627370496.0 (* 2^52 *)

(* ---- replay fingerprint ---- *)

let hash_record acc (r : record) =
  let h = ref acc in
  let feed v = h := mix64 (Int64.add (Int64.mul !h 0x100000001b3L) v) in
  feed (Int64.of_int r.id);
  feed (Int64.bits_of_float r.arrive_s);
  (match r.outcome with
  | Completed { finish_s; on_time; recoveries } ->
    feed 1L;
    feed (Int64.bits_of_float finish_s);
    feed (if on_time then 1L else 0L);
    feed (Int64.of_int recoveries)
  | Rejected_admission -> feed 2L
  | Rejected_recovery { at_s; recoveries } ->
    feed 3L;
    feed (Int64.bits_of_float at_s);
    feed (Int64.of_int recoveries));
  !h

(* ---- metrics (tallied once per run) ---- *)

let m_offered = Metrics.counter "fleet.offered"
let m_completed = Metrics.counter "fleet.completed"
let m_failures = Metrics.counter "fleet.failures_injected"
let m_abft = Metrics.counter "fleet.abft_repairs"
let m_cone = Metrics.counter "fleet.cone_replays"
let m_restart = Metrics.counter "fleet.restarts"
let m_reject = Metrics.counter "fleet.recovery_rejects"
let m_latency = Metrics.histogram "fleet.latency_s"

(* ---- simulated requests ---- *)

type sreq = {
  sr_id : int;
  sr_cls : int;
  sr_arrive_s : float;
  sr_deadline_s : float;  (* absolute *)
  mutable sr_recoveries : int;
}

type seg_kind =
  | Setup
  | Step of { ck : bool }  (* a checkpoint write rides this segment *)

type alloc = {
  a_id : int;
  a_cls : int;
  a_batch : sreq Batcher.batch;
  mutable a_nodes : int list;
  mutable a_member : int;  (* index of the member currently running *)
  mutable a_step : int;  (* completed steps of the current member *)
  mutable a_last_ck : int;
  mutable a_epoch : int;  (* invalidates in-flight segment events *)
  mutable a_seg_end : float;
  mutable a_seg_kind : seg_kind;
  a_started : float;
}

let fresh_counters () =
  {
    offered = 0;
    admitted = 0;
    rejected_admission = 0;
    completed = 0;
    on_time = 0;
    rejected_recovery = 0;
    batches = 0;
    checkpoints = 0;
    failures_total = 0;
    failures_idle = 0;
    failures_busy = 0;
    abft_repairs = 0;
    cone_replays = 0;
    restarts = 0;
    reject_hits = 0;
  }

let ns_of s = int_of_float (s *. 1e9)

let validate cfg =
  if cfg.count < 1 then invalid_arg "Fleet.Sim: count must be >= 1";
  if cfg.rate_hz <= 0.0 then invalid_arg "Fleet.Sim: rate_hz must be positive";
  if cfg.policy.capacity < 1 then invalid_arg "Fleet.Sim: capacity must be >= 1";
  if cfg.policy.max_batch < 1 then invalid_arg "Fleet.Sim: max_batch must be >= 1";
  if cfg.policy.linger_s < 0.0 then invalid_arg "Fleet.Sim: linger must be >= 0";
  (match cfg.policy.cadence with
  | Every k when k < 1 -> invalid_arg "Fleet.Sim: cadence Every k needs k >= 1"
  | _ -> ());
  if Array.length cfg.classes = 0 then invalid_arg "Fleet.Sim: no request classes";
  Array.iter
    (fun c ->
      Model.validate c;
      if c.Model.ranks > cfg.machine.Machine.node_count then
        invalid_arg
          (Printf.sprintf "Fleet.Sim: class %s needs %d ranks > %d nodes" c.Model.name
             c.Model.ranks cfg.machine.Machine.node_count))
    cfg.classes;
  let f = cfg.faults in
  if f.p_tile < 0.0 || f.p_cone < 0.0 || f.p_tile +. f.p_cone > 1.0 then
    invalid_arg "Fleet.Sim: fault split must be probabilities summing <= 1";
  if f.repair_s <= 0.0 then invalid_arg "Fleet.Sim: repair_s must be positive"

let cadence_steps cfg cls (costs : Model.costs) =
  match cfg.policy.cadence with
  | Every_step -> 1
  | Never -> max_int
  | Every k -> k
  | Young -> Model.young_steps ~machine:cfg.machine cls ~costs

let run cfg =
  validate cfg;
  let machine = cfg.machine in
  let nodes = machine.Machine.node_count in
  let ncls = Array.length cfg.classes in
  let costs = Array.map (fun c -> Model.costs ~machine c) cfg.classes in
  let cadence = Array.init ncls (fun i -> cadence_steps cfg cfg.classes.(i) costs.(i)) in
  let eff_step i =
    costs.(i).Model.step_s
    *. (if cfg.policy.abft then costs.(i).Model.abft_step_factor else 1.0)
  in
  (* stream split order is part of the seed contract — do not reorder *)
  let root = Rng.create cfg.seed in
  let rng_arrive = Rng.split root in
  let rng_fail = Rng.split root in
  let fail_proc = Failure.of_machine rng_fail machine in
  let des = Des.create () in
  let c = fresh_counters () in
  let records = Array.make cfg.count None in
  let cls_index = Hashtbl.create 8 in
  Array.iteri (fun i cl -> Hashtbl.replace cls_index cl.Model.name i) cfg.classes;

  (* node ownership: -1 free, -2 down, >= 0 the allocation id *)
  let owner = Array.make nodes (-1) in
  let free = ref nodes in
  let allocs : (int, alloc) Hashtbl.t = Hashtbl.create 64 in
  let next_alloc = ref 0 in
  let busy_node_s = ref 0.0 in

  let in_system = ref 0 in
  let settled = ref 0 in
  let done_ = ref false in
  let sim_spans = ref [] in

  let batcher =
    Batcher.create_keyed
      ~classify:(fun r -> cfg.classes.(r.sr_cls).Model.name)
      ~deadline_of:(fun r -> ns_of r.sr_deadline_s)
      { Batcher.max_batch = cfg.policy.max_batch; linger_ns = ns_of cfg.policy.linger_s }
  in
  let sched : sreq Scheduler.t = Scheduler.create () in

  let note_span ~request ~phase ~name ~lane ~attempt ~start_s ~finish_s =
    if cfg.spans then
      sim_spans :=
        {
          Span.request;
          span = Span.fresh_id ();
          parent = -1;
          phase;
          name;
          lane;
          attempt;
          start_ns = ns_of start_s;
          finish_ns = ns_of finish_s;
        }
        :: !sim_spans
  in

  let settle (r : sreq) outcome =
    let cls = cfg.classes.(r.sr_cls) in
    records.(r.sr_id) <-
      Some
        {
          id = r.sr_id;
          cls = cls.Model.name;
          arrive_s = r.sr_arrive_s;
          deadline_s = r.sr_deadline_s;
          outcome;
        };
    (match outcome with
    | Rejected_admission -> ()
    | _ ->
      decr in_system;
      note_span ~request:r.sr_id ~phase:"request" ~name:cls.Model.name ~lane:(-1)
        ~attempt:r.sr_recoveries ~start_s:r.sr_arrive_s
        ~finish_s:
          (match outcome with
          | Completed { finish_s; _ } -> finish_s
          | Rejected_recovery { at_s; _ } -> at_s
          | Rejected_admission -> r.sr_arrive_s));
    incr settled;
    if !settled = cfg.count then begin
      done_ := true;
      Des.stop des
    end
  in

  (* ---- dispatch ---- *)

  let rec try_dispatch () =
    if not !done_ then begin
      match Scheduler.pop sched with
      | None -> ()
      | Some b ->
        let ci = Hashtbl.find cls_index b.Batcher.class_key in
        let ranks = cfg.classes.(ci).Model.ranks in
        if !free < ranks then
          (* head-of-line blocking, deliberately: the earliest deadline
             waits for nodes even when a smaller batch behind could have
             squeezed in — push it back, keeping its EDF position *)
          Scheduler.push sched b
        else begin
          let taken = ref [] and need = ref ranks in
          let a_id = !next_alloc in
          incr next_alloc;
          Array.iteri
            (fun i o ->
              if !need > 0 && o = -1 then begin
                owner.(i) <- a_id;
                taken := i :: !taken;
                decr need
              end)
            owner;
          free := !free - ranks;
          c.batches <- c.batches + 1;
          let now = Des.now des in
          let a =
            {
              a_id;
              a_cls = ci;
              a_batch = b;
              a_nodes = !taken;
              a_member = 0;
              a_step = 0;
              a_last_ck = 0;
              a_epoch = 0;
              a_seg_end = now;
              a_seg_kind = Setup;
              a_started = now;
            }
          in
          Hashtbl.replace allocs a_id a;
          start_segment a Setup ~dur:costs.(ci).Model.setup_s;
          try_dispatch ()
        end
    end

  and start_segment a kind ~dur =
    a.a_epoch <- a.a_epoch + 1;
    let epoch = a.a_epoch in
    a.a_seg_kind <- kind;
    a.a_seg_end <- Des.now des +. dur;
    Des.schedule_after des dur (fun () ->
        if (not !done_) && a.a_epoch = epoch && Hashtbl.mem allocs a.a_id then
          segment_done a)

  and next_step_segment a =
    let ci = a.a_cls in
    let next = a.a_step + 1 in
    let ck =
      cadence.(ci) <> max_int
      && next < costs.(ci).Model.steps
      && next mod cadence.(ci) = 0
    in
    let dur = eff_step ci +. (if ck then costs.(ci).Model.checkpoint_s else 0.0) in
    start_segment a (Step { ck }) ~dur

  and segment_done a =
    let ci = a.a_cls in
    match a.a_seg_kind with
    | Setup ->
      (* a [Setup] segment also fronts restart delays between members, so
         it must not reset [a_member] *)
      a.a_step <- 0;
      a.a_last_ck <- 0;
      next_step_segment a
    | Step { ck } ->
      a.a_step <- a.a_step + 1;
      if ck then begin
        a.a_last_ck <- a.a_step;
        c.checkpoints <- c.checkpoints + 1
      end;
      if a.a_step >= costs.(ci).Model.steps then begin
        (* member finished *)
        let r = a.a_batch.Batcher.requests.(a.a_member) in
        let now = Des.now des in
        let on_time = now <= r.sr_deadline_s in
        c.completed <- c.completed + 1;
        if on_time then c.on_time <- c.on_time + 1;
        settle r (Completed { finish_s = now; on_time; recoveries = r.sr_recoveries });
        advance_member a
      end
      else next_step_segment a

  and advance_member a =
    a.a_member <- a.a_member + 1;
    if a.a_member >= Array.length a.a_batch.Batcher.requests then free_alloc a
    else begin
      a.a_step <- 0;
      a.a_last_ck <- 0;
      next_step_segment a
    end

  and free_alloc a =
    let now = Des.now des in
    busy_node_s :=
      !busy_node_s +. (float_of_int (List.length a.a_nodes) *. (now -. a.a_started));
    List.iter
      (fun v ->
        owner.(v) <- -1;
        incr free)
      a.a_nodes;
    a.a_epoch <- a.a_epoch + 1;
    Hashtbl.remove allocs a.a_id;
    try_dispatch ()
  in

  (* ---- the recovery lattice ---- *)

  (* Expected remaining service time of the current member if recovery
     succeeds: steps left at the effective step rate plus the checkpoint
     writes the cadence will interleave. *)
  let remaining_after a ~from_step =
    let ci = a.a_cls in
    let steps = costs.(ci).Model.steps in
    let left = steps - from_step in
    let cks =
      if cadence.(ci) = max_int then 0
      else max 0 (((steps - 1) / cadence.(ci)) - (from_step / cadence.(ci)))
    in
    (float_of_int left *. eff_step ci)
    +. (float_of_int cks *. costs.(ci).Model.checkpoint_s)
  in

  let on_busy_failure a ~victim ~findex =
    let ci = a.a_cls in
    let now = Des.now des in
    let r = a.a_batch.Batcher.requests.(a.a_member) in
    let remaining_seg = Float.max 0.0 (a.a_seg_end -. now) in
    let u = uniform_fail ~seed:cfg.seed ~index:findex ~salt:1 in
    (* the rungs, cheapest first; a tile hit without checksums escalates
       to cone replay (nothing cheaper can see it) *)
    let kind =
      if u < cfg.faults.p_tile then if cfg.policy.abft then `Tile else `Cone
      else if u < cfg.faults.p_tile +. cfg.faults.p_cone then `Cone
      else `Hard
    in
    (* hard failures take the node down whatever the verdict on the
       request; replace from spares when possible, else hold the failed
       node through its own repair *)
    let hard_extra =
      match kind with
      | `Hard ->
        let spare = ref (-1) in
        Array.iteri (fun i o -> if !spare < 0 && o = -1 then spare := i) owner;
        if !spare >= 0 then begin
          owner.(!spare) <- a.a_id;
          decr free;
          a.a_nodes <- !spare :: List.filter (fun n -> n <> victim) a.a_nodes;
          owner.(victim) <- -2;
          Des.schedule_after des cfg.faults.repair_s (fun () ->
              if owner.(victim) = -2 then begin
                owner.(victim) <- -1;
                incr free;
                try_dispatch ()
              end);
          0.0
        end
        else
          (* no spare: the allocation keeps its dead rank and waits out
             the repair — ownership is conserved, the price is time *)
          cfg.faults.repair_s
      | `Tile | `Cone -> 0.0
    in
    let setup_phase = a.a_seg_kind = Setup in
    let proj_after cost ~rollback_to =
      if setup_phase then now +. cost +. remaining_seg +. remaining_after a ~from_step:0
      else
        match rollback_to with
        | None -> now +. cost +. remaining_seg +. remaining_after a ~from_step:a.a_step
        | Some k -> now +. cost +. remaining_after a ~from_step:k
    in
    let rung, cost, rollback =
      match kind with
      | `Tile -> (`Abft, costs.(ci).Model.abft_repair_s, None)
      | `Cone -> (`Cone, costs.(ci).Model.cone_replay_s, None)
      | `Hard ->
        ( `Restart,
          costs.(ci).Model.restart_s +. hard_extra,
          Some (if setup_phase then 0 else a.a_last_ck) )
    in
    let projected = proj_after cost ~rollback_to:rollback in
    if projected > r.sr_deadline_s then begin
      (* no rung gets this member home: typed reject, lattice floor *)
      c.reject_hits <- c.reject_hits + 1;
      c.rejected_recovery <- c.rejected_recovery + 1;
      note_span ~request:r.sr_id ~phase:"recover" ~name:"reject" ~lane:a.a_id
        ~attempt:findex ~start_s:now ~finish_s:now;
      settle r (Rejected_recovery { at_s = now; recoveries = r.sr_recoveries });
      (* the allocation moves on to its next member; a hard loss still
         pays the restart before anything else runs on it *)
      let delay = match rung with `Restart -> cost | `Abft | `Cone -> 0.0 in
      a.a_member <- a.a_member + 1;
      if a.a_member >= Array.length a.a_batch.Batcher.requests then
        if delay = 0.0 then free_alloc a
        else begin
          a.a_epoch <- a.a_epoch + 1;
          let epoch = a.a_epoch in
          Des.schedule_after des delay (fun () ->
              if (not !done_) && a.a_epoch = epoch && Hashtbl.mem allocs a.a_id then
                free_alloc a)
        end
      else begin
        a.a_step <- 0;
        a.a_last_ck <- 0;
        if delay = 0.0 then next_step_segment a
        else start_segment a Setup ~dur:delay
      end
    end
    else begin
      r.sr_recoveries <- r.sr_recoveries + 1;
      match rung with
      | `Abft ->
        c.abft_repairs <- c.abft_repairs + 1;
        note_span ~request:r.sr_id ~phase:"recover" ~name:"abft" ~lane:a.a_id
          ~attempt:findex ~start_s:now ~finish_s:(now +. cost);
        (* checksum repair in place, then the interrupted segment resumes *)
        start_segment a a.a_seg_kind ~dur:(cost +. remaining_seg)
      | `Cone ->
        c.cone_replays <- c.cone_replays + 1;
        note_span ~request:r.sr_id ~phase:"recover" ~name:"cone" ~lane:a.a_id
          ~attempt:findex ~start_s:now ~finish_s:(now +. cost);
        start_segment a a.a_seg_kind ~dur:(cost +. remaining_seg)
      | `Restart ->
        c.restarts <- c.restarts + 1;
        note_span ~request:r.sr_id ~phase:"recover" ~name:"restart" ~lane:a.a_id
          ~attempt:findex ~start_s:now ~finish_s:(now +. cost);
        if setup_phase then start_segment a Setup ~dur:(cost +. remaining_seg)
        else begin
          a.a_step <- a.a_last_ck;
          (* the restart pays its cost, then the step segment re-runs *)
          let ck_next =
            cadence.(ci) <> max_int
            && a.a_step + 1 < costs.(ci).Model.steps
            && (a.a_step + 1) mod cadence.(ci) = 0
          in
          let dur =
            cost +. eff_step ci
            +. (if ck_next then costs.(ci).Model.checkpoint_s else 0.0)
          in
          start_segment a (Step { ck = ck_next }) ~dur
        end
    end
  in

  (* ---- failure storm ---- *)

  let findex = ref 0 in
  let rec arm_failure () =
    if not !done_ then begin
      let t = Failure.next_after fail_proc (Des.now des) in
      Des.schedule des t (fun () ->
          if not !done_ then begin
            let i = !findex in
            incr findex;
            c.failures_total <- c.failures_total + 1;
            let victim =
              Int64.to_int
                (Int64.rem
                   (Int64.shift_right_logical (hash_fail ~seed:cfg.seed ~index:i ~salt:0) 1)
                   (Int64.of_int nodes))
            in
            (match owner.(victim) with
            | -1 ->
              c.failures_idle <- c.failures_idle + 1;
              owner.(victim) <- -2;
              decr free;
              Des.schedule_after des cfg.faults.repair_s (fun () ->
                  if owner.(victim) = -2 then begin
                    owner.(victim) <- -1;
                    incr free;
                    try_dispatch ()
                  end)
            | -2 -> c.failures_idle <- c.failures_idle + 1
            | a_id -> (
              match Hashtbl.find_opt allocs a_id with
              | Some a when a.a_member >= Array.length a.a_batch.Batcher.requests ->
                (* the allocation is draining a recovery tail after its
                   last member settled: no request is exposed *)
                c.failures_idle <- c.failures_idle + 1
              | Some a ->
                c.failures_busy <- c.failures_busy + 1;
                on_busy_failure a ~victim ~findex:i
              | None ->
                (* ownership says busy but the allocation is gone: a
                   bookkeeping bug — make it loud *)
                failwith "Fleet.Sim: node owned by a freed allocation"));
            arm_failure ()
          end)
    end
  in
  arm_failure ();

  (* ---- offered load ---- *)

  let total_weight = Array.fold_left (fun s cl -> s +. cl.Model.weight) 0.0 cfg.classes in
  let t = ref 0.0 in
  for id = 0 to cfg.count - 1 do
    t := !t +. Rng.exponential rng_arrive cfg.rate_hz;
    let u = Rng.uniform rng_arrive *. total_weight in
    let ci =
      let acc = ref 0.0 and pick = ref (ncls - 1) in
      (try
         Array.iteri
           (fun i cl ->
             acc := !acc +. cl.Model.weight;
             if u < !acc then begin
               pick := i;
               raise Exit
             end)
           cfg.classes
       with Exit -> ());
      !pick
    in
    let arrive = !t in
    Des.schedule des arrive (fun () ->
        c.offered <- c.offered + 1;
        if !in_system >= cfg.policy.capacity then begin
          c.rejected_admission <- c.rejected_admission + 1;
          let r =
            {
              sr_id = id;
              sr_cls = ci;
              sr_arrive_s = arrive;
              sr_deadline_s = arrive +. cfg.classes.(ci).Model.deadline_s;
              sr_recoveries = 0;
            }
          in
          settle r Rejected_admission
        end
        else begin
          incr in_system;
          c.admitted <- c.admitted + 1;
          let r =
            {
              sr_id = id;
              sr_cls = ci;
              sr_arrive_s = arrive;
              sr_deadline_s = arrive +. cfg.classes.(ci).Model.deadline_s;
              sr_recoveries = 0;
            }
          in
          let now_ns = ns_of arrive in
          (match Batcher.add batcher ~now_ns r with
          | Some b ->
            Scheduler.push sched b;
            try_dispatch ()
          | None -> ());
          (* time-triggered flush: one event per add keeps the calendar
             small and bounds any slot's wait by the linger *)
          Des.schedule_after des cfg.policy.linger_s (fun () ->
              if not !done_ then begin
                let flushed = Batcher.flush_due batcher ~now_ns:(ns_of (Des.now des)) in
                List.iter (Scheduler.push sched) flushed;
                if flushed <> [] then try_dispatch ()
              end)
        end)
  done;

  (* generous horizon: if the sim wedges we return with [wedged] set
     rather than spinning the failure process forever *)
  let horizon = (!t +. 1.0) *. 1000.0 in
  let final = Des.run ~until:horizon des in
  let wedged = !settled < cfg.count in
  let makespan = final in

  let records =
    Array.mapi
      (fun i r ->
        match r with
        | Some r -> r
        | None ->
          if wedged then
            {
              id = i;
              cls = "?";
              arrive_s = 0.0;
              deadline_s = 0.0;
              outcome = Rejected_recovery { at_s = -1.0; recoveries = 0 };
            }
          else failwith "Fleet.Sim: unsettled request after clean run")
      records
  in
  let latencies =
    Array.to_list records
    |> List.filter_map (fun r ->
           match r.outcome with
           | Completed { finish_s; _ } -> Some ((finish_s -. r.arrive_s) *. 1e3)
           | _ -> None)
    |> Array.of_list
  in
  let pct p = if Array.length latencies = 0 then 0.0 else Stats.percentile latencies p in
  let outcome_hash = Array.fold_left hash_record 0xcbf29ce484222325L records in
  Metrics.add m_offered c.offered;
  Metrics.add m_completed c.completed;
  Metrics.add m_failures c.failures_total;
  Metrics.add m_abft c.abft_repairs;
  Metrics.add m_cone c.cone_replays;
  Metrics.add m_restart c.restarts;
  Metrics.add m_reject c.reject_hits;
  Array.iter (fun l -> Metrics.observe m_latency (l /. 1e3)) latencies;
  {
    records;
    counters = c;
    makespan_s = makespan;
    goodput_rps = (if makespan > 0.0 then float_of_int c.on_time /. makespan else 0.0);
    availability = float_of_int c.on_time /. float_of_int cfg.count;
    p50_ms = pct 50.0;
    p99_ms = pct 99.0;
    util =
      (if makespan > 0.0 then !busy_node_s /. (float_of_int nodes *. makespan) else 0.0);
    young_by_class =
      Array.to_list
        (Array.mapi
           (fun i cl ->
             (cl.Model.name, if cadence.(i) = max_int then 0 else cadence.(i)))
           cfg.classes);
    failure_rate = Failure.rate fail_proc;
    empirical_failures = c.failures_total;
    expected_failures = Failure.rate fail_proc *. makespan;
    outcome_hash;
    wedged;
    sim_spans = List.rev !sim_spans;
  }

(* The recovery-lattice accounting identity, gate (d) of the fleet bench:
   every injected failure lands in exactly one bucket. *)
let reconciles (c : counters) =
  c.failures_total = c.failures_idle + c.failures_busy
  && c.failures_busy = c.abft_repairs + c.cone_replays + c.restarts + c.reject_hits
  && c.reject_hits = c.rejected_recovery
  && c.offered = c.admitted + c.rejected_admission
  && c.admitted = c.completed + c.rejected_recovery
