(* Cost model of one distributed solve class on a simulated machine.

   A request class is a distributed factorization (2-D block-cyclic
   Cholesky) or multiplication (SUMMA) of size [n] on a square grid of
   [ranks] nodes. The simulator never runs the arithmetic at these sizes;
   it runs the *models* the `lib/ca` kernels validate at small scale:

   - step count and per-rank communication volume come straight from
     [Dist_cholesky.model_2d] / [Summa.model_2d] — the same closed forms
     whose message/word counts the real virtual-grid executions measure;
   - per-message and per-word costs come from the machine's alpha-beta
     [Network], exactly as [Pgrid.time_of_counter] prices recorded
     traffic;
   - compute time is the class's flops spread over the allocation's nodes
     at a derated node rate (dense factorizations do not run at peak; the
     derate is the model's honesty knob, not a tuning screw).

   Everything downstream (checkpoint cadence, recovery costs, deadline
   feasibility) derives from these few numbers, so a fleet sweep is
   internally consistent: double the network beta and steps slow down,
   Young intervals stretch, availability moves. *)

module Machine = Xsc_simmachine.Machine
module Network = Xsc_simmachine.Network
module Node = Xsc_simmachine.Node
module Dist_cholesky = Xsc_ca.Dist_cholesky
module Summa = Xsc_ca.Summa
module Cg = Xsc_sparse.Cg
module Checkpoint = Xsc_resilience.Checkpoint

type kind =
  | Chol
  | Gemm
  | Cg of { iters : int }  (* row-partitioned classic CG on a 7-pt stencil *)

type cls = {
  name : string;
  kind : kind;
  n : int;
  nb : int;  (* panel width: n/nb sequential steps for Chol *)
  ranks : int;  (* nodes one solve occupies (a square grid) *)
  deadline_s : float;  (* relative deadline granted at admission *)
  weight : float;  (* workload mix weight *)
}

type costs = {
  steps : int;  (* sequential panel steps of one member *)
  step_s : float;  (* failure-free time of one step (compute + comm) *)
  work_s : float;  (* steps * step_s: failure-free service time *)
  setup_s : float;  (* once per batch: scatter onto the grid *)
  checkpoint_s : float;  (* C: write the allocation's state *)
  restart_s : float;  (* R: replace the rank and reload the checkpoint *)
  abft_step_factor : float;  (* step multiplier when checksums are kept *)
  abft_repair_s : float;  (* recover one corrupted tile from checksums *)
  cone_replay_s : float;  (* replay the corrupted step's dependence cone *)
}

(* Fraction of node peak a distributed dense kernel sustains: the measured
   packed kernels on the workstation preset run at ~0.1-0.15 of peak, and
   scaling studies put blocked distributed kernels in the same band. *)
let derate = 0.125

(* Checkpoint bandwidth per rank (bytes/s to stable storage): burst-buffer
   class, deliberately far below memory bandwidth. *)
let checkpoint_bw = 2e9

(* Sparse class arithmetic: [n] is the ROW count of a 7-point stencil
   operator (nnz ~ 7n), partitioned by rows — no square grid, no panels.
   One classic CG iteration moves ~[12 nnz + 16 n] SpMV bytes plus ~10
   vector-length reads/writes and does ~[2 nnz + 10 n] flops: an
   arithmetic intensity near 1/4 flop/byte, pinned under every machine's
   memory-bandwidth roof. The class is therefore costed by
   iteration-count x streamed bytes at [Node.mem_bandwidth] — flops never
   enter the time — with the synchronisation priced by the same
   [Cg.modeled_iteration_time] closed form the sparse bench validates
   (Classic CG: two allreduces per iteration). *)
let cg_spmv_bytes rows = (12.0 *. 7.0 *. rows) +. (16.0 *. rows)
let cg_vector_bytes rows = 10.0 *. 8.0 *. rows

let flops_of cls =
  let n = float_of_int cls.n in
  match cls.kind with
  | Chol -> n *. n *. n /. 3.0
  | Gemm -> 2.0 *. n *. n *. n
  | Cg { iters } -> float_of_int iters *. ((2.0 *. 7.0 *. n) +. (10.0 *. n))

let validate cls =
  (match cls.kind with
  | Chol | Gemm ->
    if cls.n <= 0 || cls.nb <= 0 || cls.n mod cls.nb <> 0 then
      invalid_arg (Printf.sprintf "Fleet.Model: class %s: nb must divide n" cls.name);
    let side = int_of_float (sqrt (float_of_int cls.ranks) +. 0.5) in
    if side * side <> cls.ranks || cls.ranks < 1 then
      invalid_arg
        (Printf.sprintf "Fleet.Model: class %s: ranks must be a positive square"
           cls.name)
  | Cg { iters } ->
    (* row partition: any positive rank count, no panel width *)
    if cls.n <= 0 then
      invalid_arg (Printf.sprintf "Fleet.Model: class %s: rows must be positive" cls.name);
    if iters < 1 then
      invalid_arg (Printf.sprintf "Fleet.Model: class %s: iters must be >= 1" cls.name);
    if cls.ranks < 1 then
      invalid_arg
        (Printf.sprintf "Fleet.Model: class %s: ranks must be positive" cls.name));
  if cls.deadline_s <= 0.0 then
    invalid_arg (Printf.sprintf "Fleet.Model: class %s: deadline must be positive" cls.name);
  if cls.weight <= 0.0 then
    invalid_arg (Printf.sprintf "Fleet.Model: class %s: weight must be positive" cls.name)

(* Bandwidth-bound sparse class: every time in the record is a streamed-
   bytes count over [Node.mem_bandwidth] plus alpha-beta synchronisation —
   node flop rate and [derate] never appear. *)
let cg_costs ~(machine : Machine.t) cls ~iters =
  let net = machine.Machine.network in
  let p = cls.ranks in
  let fp = float_of_int p in
  let rows = float_of_int cls.n in
  let bw = machine.Machine.node.Node.mem_bandwidth in
  let spmv_time = cg_spmv_bytes rows /. fp /. bw in
  let vector_time = cg_vector_bytes rows /. fp /. bw in
  let step_s =
    Cg.modeled_iteration_time Cg.Classic ~network:net ~ranks:p ~spmv_time ~vector_time
  in
  (* solver state is three vectors (x, r, p): O(n) bytes, so the
     checkpoint economics invert relative to the dense classes — C is tiny
     against the allocation MTBF and Young's interval stretches to many
     steps *)
  let state_bytes = 3.0 *. 8.0 *. rows in
  let setup_s = (fp -. 1.0) *. Network.ptp_avg net ~bytes:(8.0 *. rows /. fp) in
  let checkpoint_s =
    (state_bytes /. fp /. checkpoint_bw) +. Network.barrier_time net ~ranks:p
  in
  let restart_s = (2.0 *. checkpoint_s) +. (10.0 *. Network.barrier_time net ~ranks:p) in
  {
    steps = iters;
    step_s;
    work_s = step_s *. float_of_int iters;
    setup_s;
    checkpoint_s;
    restart_s;
    (* iterate-integrity is a true-residual recompute (an extra SpMV pass
       on checked steps), not a checksum row *)
    abft_step_factor = 1.0 +. (0.5 *. spmv_time /. step_s);
    abft_repair_s = 1.5 *. step_s;
    cone_replay_s = 2.0 *. step_s;
  }

let costs ~(machine : Machine.t) cls =
  validate cls;
  match cls.kind with
  | Cg { iters } -> cg_costs ~machine cls ~iters
  | Chol | Gemm ->
  let net = machine.Machine.network in
  let p = cls.ranks in
  let fp = float_of_int p in
  let n2_bytes = 8.0 *. float_of_int cls.n *. float_of_int cls.n in
  let steps, msgs_per_rank, words_per_rank =
    match cls.kind with
    | Chol ->
      let m = Dist_cholesky.model_2d ~n:cls.n ~nb:cls.nb ~p in
      (cls.n / cls.nb, m.Dist_cholesky.msgs_per_rank, m.Dist_cholesky.words_per_rank)
    | Gemm ->
      let m = Summa.model_2d ~n:cls.n ~p in
      (* SUMMA advances in sqrt(p) panel broadcasts *)
      (int_of_float (sqrt fp +. 0.5), m.Summa.msgs, m.Summa.words_per_rank)
    | Cg _ -> assert false (* dispatched to [cg_costs] above *)
  in
  let steps = max 1 steps in
  let compute_s =
    flops_of cls /. (fp *. Node.node_rate machine.Machine.node Node.FP64 *. derate)
  in
  let comm_s =
    (* alpha-beta price of the per-rank critical-path traffic, as
       Pgrid.time_of_counter prices measured counters *)
    (msgs_per_rank *. Network.ptp_avg net ~bytes:0.0)
    +. (words_per_rank *. 8.0 *. net.Network.beta)
  in
  let work_s = compute_s +. comm_s in
  let step_s = work_s /. float_of_int steps in
  let setup_s =
    (* rank 0 scatters p-1 blocks of n^2/p words each *)
    (fp -. 1.0) *. Network.ptp_avg net ~bytes:(n2_bytes /. fp)
  in
  let checkpoint_s = n2_bytes /. fp /. checkpoint_bw +. Network.barrier_time net ~ranks:p in
  let restart_s = (2.0 *. checkpoint_s) +. (10.0 *. Network.barrier_time net ~ranks:p) in
  {
    steps;
    step_s;
    work_s = step_s *. float_of_int steps;
    setup_s;
    checkpoint_s;
    restart_s;
    (* checksum row/column per panel: ~1/sqrt(p) extra updates per step,
       bounded well under the 2x ABFT flop bound the kernels measure *)
    abft_step_factor = 1.0 +. (0.25 /. sqrt fp);
    abft_repair_s = 1.5 *. step_s;
    cone_replay_s = 3.0 *. step_s;
  }

let alloc_mtbf ~(machine : Machine.t) cls =
  machine.Machine.node_mtbf /. float_of_int cls.ranks

(* Checkpoint-every-k-steps cadence from Young's interval, computed
   against the allocation's own failure process (its [ranks] nodes):
   tau = sqrt(2 C M), floored at one step. The fleet bench validates this
   k against [Failure.mtbf] of the simulated process. *)
let young_steps ~(machine : Machine.t) cls ~(costs : costs) =
  let m = alloc_mtbf ~machine cls in
  let tau =
    Checkpoint.young_interval
      {
        Checkpoint.work = costs.work_s;
        checkpoint_cost = costs.checkpoint_s;
        restart_cost = costs.restart_s;
        mtbf = m;
      }
  in
  max 1 (int_of_float (Float.round (tau /. costs.step_s)))
