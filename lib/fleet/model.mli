(** Cost model of distributed solve classes on a simulated machine.

    A request class is a distributed Cholesky (2-D block-cyclic) or SUMMA
    multiplication of size [n] over a square grid of [ranks] nodes. Step
    counts and per-rank communication volumes come from the closed forms
    the real {!Xsc_ca} virtual-grid executions validate
    ({!Xsc_ca.Dist_cholesky.model_2d}, {!Xsc_ca.Summa.model_2d}); message
    and word costs are priced by the machine's alpha-beta
    {!Xsc_simmachine.Network} exactly as
    {!Xsc_ca.Pgrid.time_of_counter} prices measured traffic; compute time
    is the class flops over the allocation at a derated node rate. *)

type kind =
  | Chol  (** 2-D block-cyclic Cholesky, [n/nb] sequential panel steps *)
  | Gemm  (** SUMMA, [sqrt ranks] panel-broadcast steps *)
  | Cg of { iters : int }
      (** row-partitioned classic CG on a 7-point stencil of [n] rows,
          [iters] sequential iteration steps. Bandwidth-bound: costed by
          streamed bytes over {!Xsc_simmachine.Node.t.mem_bandwidth} plus
          two allreduces per iteration
          ({!Xsc_sparse.Cg.modeled_iteration_time}) — node flop rate never
          enters. Solver state is three vectors, so checkpoints are O(n)
          and Young's interval stretches to many steps: the HPL-vs-HPCG
          contrast as a fleet economics statement. *)

type cls = {
  name : string;  (** batching class key *)
  kind : kind;
  n : int;  (** global problem size: matrix order, or rows for [Cg] *)
  nb : int;  (** panel width (must divide [n]); ignored by [Cg] *)
  ranks : int;  (** nodes one solve occupies; a square for [Chol]/[Gemm],
                    any positive count for the row-partitioned [Cg] *)
  deadline_s : float;  (** relative deadline granted at admission *)
  weight : float;  (** workload mix weight *)
}

type costs = {
  steps : int;  (** sequential panel steps of one member *)
  step_s : float;  (** failure-free time of one step (compute + comm) *)
  work_s : float;  (** [steps * step_s]: failure-free service time *)
  setup_s : float;  (** once per batch: scatter onto the grid *)
  checkpoint_s : float;  (** C: write the allocation's state *)
  restart_s : float;  (** R: replace the rank and reload the checkpoint *)
  abft_step_factor : float;  (** step multiplier when checksums are kept *)
  abft_repair_s : float;  (** recover one corrupted tile from checksums *)
  cone_replay_s : float;  (** replay the corrupted step's dependence cone *)
}

val validate : cls -> unit
(** Raises [Invalid_argument] on malformed classes (nb not dividing n or
    non-square ranks for the dense kinds, non-positive rows/iters/ranks
    for [Cg], non-positive deadline/weight). *)

val flops_of : cls -> float

val costs : machine:Xsc_simmachine.Machine.t -> cls -> costs

val alloc_mtbf : machine:Xsc_simmachine.Machine.t -> cls -> float
(** [node_mtbf / ranks]: MTBF of one allocation — the paper's
    system-MTBF-collapse arithmetic applied to a sub-grid. *)

val young_steps : machine:Xsc_simmachine.Machine.t -> cls -> costs:costs -> int
(** Young's optimal interval [sqrt (2 C M)] against the allocation's own
    failure process, converted to a checkpoint-every-k-steps cadence
    (floored at 1). *)
