(* The reference fleet scenario shared by `bench --fleet` and `xsc fleet`:
   a titan-like node scaled to the requested fleet size, with the node
   MTBF as the storm knob (failure timescales compressed far below the
   hardware's real rating — accelerated fault injection, not a hardware
   claim), and a two-class workload whose checkpoint economics have teeth:
   the Cholesky class's per-rank checkpoint costs about one step, and at
   storm MTBFs the 16-node allocation fails more often than once per
   solve. *)

module Machine = Xsc_simmachine.Machine
module Presets = Xsc_simmachine.Presets

let machine ~nodes ~node_mtbf =
  let m = Presets.scale_nodes (Presets.find "titan-like") nodes in
  Machine.create
    ~name:(Printf.sprintf "fleet@%d" nodes)
    ~node_mtbf ~node:m.Machine.node ~node_count:nodes ~network:m.Machine.network ()

let default_classes =
  [|
    {
      Model.name = "chol-64k";
      kind = Model.Chol;
      n = 65536;
      nb = 2048;
      ranks = 16;
      deadline_s = 240.0;
      weight = 3.0;
    };
    {
      Model.name = "gemm-32k";
      kind = Model.Gemm;
      n = 32768;
      nb = 32768;
      ranks = 16;
      deadline_s = 180.0;
      weight = 1.0;
    };
  |]

(* The sparse member of the mixed workload: a 300^3-grid CG class, sized
   so one solve streams ~130 GB through 16 ranks — seconds of wall time on
   the titan-like node, bandwidth-bound throughout. Kept out of
   [default_classes] so every existing two-class record (BENCH_0009,
   seeded storm replays) is untouched. *)
let sparse_class =
  {
    Model.name = "cg-27m";
    kind = Model.Cg { iters = 500 };
    n = 27_000_000;
    nb = 1;
    ranks = 16;
    deadline_s = 120.0;
    weight = 2.0;
  }

let mixed_classes = Array.append default_classes [| sparse_class |]

let default_faults = { Sim.p_tile = 0.35; p_cone = 0.25; repair_s = 300.0 }

let config ?(cadence = Sim.Young) ?(abft = true) ?(capacity = 256)
    ?(max_batch = 4) ?(linger_s = 0.5) ?(spans = false) ?(classes = default_classes)
    ~nodes ~node_mtbf ~rate_hz ~count ~seed () =
  {
    Sim.seed;
    machine = machine ~nodes ~node_mtbf;
    classes;
    rate_hz;
    count;
    policy = { Sim.capacity; max_batch; linger_s; cadence; abft };
    faults = default_faults;
    spans;
  }
