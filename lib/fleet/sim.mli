(** The fleet simulator: serve policies under failure storms at scale.

    Runs the {e real} serve coalescing and dispatch structures — the
    polymorphic {!Xsc_serve.Batcher} and EDF {!Xsc_serve.Scheduler}, under
    the same admission rule {!Xsc_serve.Server.submit} applies — in
    discrete-event time ({!Xsc_simmachine.Des}) over a simulated
    {!Xsc_simmachine.Machine} whose nodes fail as a Poisson process
    ({!Xsc_simmachine.Failure}). Request service costs are the `lib/ca`
    closed forms priced by the alpha-beta network ({!Model}).

    A node failure that lands on an active allocation walks the recovery
    lattice, cheapest rung first: ABFT checksum repair (tile corruption,
    checksums kept), cone replay (wider corruption, or tile corruption
    without checksums), checkpoint-restart from the last Young-cadence
    checkpoint (hard rank loss), and typed reject when no rung's projected
    finish meets the member's deadline. Every injected failure is
    accounted to exactly one bucket ({!reconciles} — gate (d) of the
    fleet bench).

    Determinism: arrivals and failure times come from seeded split RNG
    streams drawn in (FIFO-stable) event order; per-failure victim and
    fault-kind decisions are pure hashes of [(seed, failure index)] in
    the {!Xsc_resilience.Harness} discipline, so a replayed storm makes
    bit-identical decisions: equal configs give float-bitwise equal
    [records] and equal [outcome_hash]. *)

(** Checkpoint cadence policy, in steps of the solve. *)
type cadence =
  | Every_step  (** maximal protection, maximal overhead *)
  | Young  (** {!Model.young_steps}: sqrt(2CM) against the allocation MTBF *)
  | Never  (** a hard failure rolls back to the start of the member *)
  | Every of int

type policy = {
  capacity : int;  (** admission window, as [Server.config.capacity] *)
  max_batch : int;
  linger_s : float;
  cadence : cadence;
  abft : bool;  (** keep checksums: per-step overhead buys tile repair *)
}

type faults = {
  p_tile : float;  (** busy-node failure is a single-tile corruption *)
  p_cone : float;  (** ... a wider corruption needing cone replay;
                       remaining mass is a hard rank loss *)
  repair_s : float;  (** downed node rejoins after this long *)
}

type config = {
  seed : int;
  machine : Xsc_simmachine.Machine.t;
  classes : Model.cls array;
  rate_hz : float;  (** offered Poisson arrival rate *)
  count : int;  (** offered requests *)
  policy : policy;
  faults : faults;
  spans : bool;  (** keep simulated span records (chrome-exportable) *)
}

type outcome =
  | Completed of { finish_s : float; on_time : bool; recoveries : int }
  | Rejected_admission  (** window full at arrival — never entered *)
  | Rejected_recovery of { at_s : float; recoveries : int }
      (** a failure left no recovery rung inside the deadline *)

type record = {
  id : int;
  cls : string;
  arrive_s : float;
  deadline_s : float;  (** absolute *)
  outcome : outcome;
}

type counters = {
  mutable offered : int;
  mutable admitted : int;
  mutable rejected_admission : int;
  mutable completed : int;
  mutable on_time : int;
  mutable rejected_recovery : int;
  mutable batches : int;
  mutable checkpoints : int;
  mutable failures_total : int;
  mutable failures_idle : int;
      (** landed on a free node, a downed node, or an allocation draining
          a recovery tail with no member left to expose *)
  mutable failures_busy : int;  (** landed on an active allocation *)
  mutable abft_repairs : int;
  mutable cone_replays : int;
  mutable restarts : int;
  mutable reject_hits : int;  (** failures whose only surviving rung was reject *)
}

type result = {
  records : record array;  (** indexed by request id *)
  counters : counters;
  makespan_s : float;
  goodput_rps : float;  (** on-time completions per simulated second *)
  availability : float;  (** on-time completions / offered *)
  p50_ms : float;
  p99_ms : float;
  util : float;  (** busy node-seconds / (nodes x makespan) *)
  young_by_class : (string * int) list;
      (** checkpoint cadence (steps) actually used; 0 = never *)
  failure_rate : float;  (** configured system failures/s *)
  empirical_failures : int;
  expected_failures : float;  (** [rate x makespan] *)
  outcome_hash : int64;  (** replay fingerprint over [records] *)
  wedged : bool;  (** horizon hit before every request settled: a bug *)
  sim_spans : Xsc_obs.Span.record list;
      (** simulated-time spans ([origin_ns = 0]); excluded from the
          fingerprint (span ids are process-global) *)
}

val run : config -> result
(** One seeded storm. Raises [Invalid_argument] on malformed configs
    (class larger than the machine, bad fault split, ...). *)

val reconciles : counters -> bool
(** The recovery-lattice accounting identity: every injected failure in
    exactly one bucket, every offered request in exactly one outcome. *)
