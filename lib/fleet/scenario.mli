(** The reference fleet scenario shared by [bench --fleet] and
    [xsc fleet]: a titan-like node scaled to the requested fleet size,
    node MTBF as the (accelerated) storm knob, and a two-class workload
    whose checkpoint-cadence economics have teeth. *)

val machine : nodes:int -> node_mtbf:float -> Xsc_simmachine.Machine.t
(** Titan-like node and network scaled to [nodes], with the per-node MTBF
    overridden — the storm knob compresses failure timescales far below
    the hardware rating (accelerated fault injection). *)

val default_classes : Model.cls array
(** [chol-64k] (16 ranks, 32 steps, checkpoint ~ one step) weighted 3:1
    against [gemm-32k] (16 ranks, 4 steps). *)

val sparse_class : Model.cls
(** [cg-27m]: a 300³-grid (27M-row) classic-CG class on 16 ranks, 500
    iteration steps, costed purely by memory bandwidth
    ({!Model.kind.Cg}). *)

val mixed_classes : Model.cls array
(** {!default_classes} plus {!sparse_class} — the HPL-vs-HPCG mixed fleet
    workload. [default_classes] itself is unchanged, so prior seeded
    records replay bit-identically. *)

val default_faults : Sim.faults
(** 35% tile / 25% cone / 40% hard, 300 s node repair. *)

val config :
  ?cadence:Sim.cadence ->
  ?abft:bool ->
  ?capacity:int ->
  ?max_batch:int ->
  ?linger_s:float ->
  ?spans:bool ->
  ?classes:Model.cls array ->
  nodes:int ->
  node_mtbf:float ->
  rate_hz:float ->
  count:int ->
  seed:int ->
  unit ->
  Sim.config
(** A full simulator config over the reference scenario; every policy
    knob defaults to the bench's baseline (capacity 256, batches of 4
    with a 0.5 s linger, Young cadence, ABFT on). *)
