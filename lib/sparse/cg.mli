(** Conjugate gradient variants with synchronisation accounting.

    At scale every dot product is a blocking allreduce across the whole
    machine, so the "rule change" is to reformulate CG to synchronise less:

    - {!Classic}: textbook (P)CG — two reduction points per iteration;
    - {!Chronopoulos_gear}: the fused three-term variant — both dot products
      in ONE reduction per iteration;
    - {!Pipelined}: Ghysels-Vanroose — one reduction per iteration that
      overlaps the SpMV, so its latency hides entirely.

    All variants produce the same iterates in exact arithmetic; the
    experiment (FIG-5) shows equal convergence with fewer/hidden
    synchronisations, and the cost model turns the counts into time on a
    simulated machine. *)

open Xsc_linalg

type variant = Classic | Chronopoulos_gear | Pipelined

type result = {
  x : Vec.t;
  iterations : int;
  converged : bool;
  residual_norm : float;  (** final true residual 2-norm *)
  sync_points : int;  (** blocking reduction points executed *)
  spmv_count : int;
  flops : float;
}

val solve :
  ?variant:variant -> ?precond:(Vec.t -> Vec.t) -> ?max_iter:int -> ?tol:float ->
  ?x0:Vec.t -> Csr.t -> Vec.t -> result
(** Solve [A x = b], SPD [A]. [tol] is the relative residual target
    (default 1e-10 on ||r||/||b||). [precond] (an application of M⁻¹) is
    honoured by the [Classic] variant only — raises [Invalid_argument] if
    given with a fused variant. *)

(** {2 Resumable stepper}

    The classic variant exposed as a resumable iteration: the serve routing
    layer advances a solve a chunk of iterations at a time as pool tasks.
    [solve ~variant:Classic] is itself the stepper driven to completion, so
    a chunked solve is bitwise-identical to the sequential one by
    construction — the sequential solve is a valid oracle for any chunking. *)

type stepper

val stepper :
  ?precond:(Vec.t -> Vec.t) -> ?max_iter:int -> ?tol:float -> ?x0:Vec.t ->
  Csr.t -> Vec.t -> stepper
(** Initialise a classic-(P)CG solve of [A x = b] (same defaults and
    validation as {!solve}). The initial residual/search-direction setup
    runs here. *)

val step : stepper -> int -> unit
(** [step s k] advances up to [k] iterations; stops early at convergence,
    breakdown, or the iteration cap. No-op once {!finished}. *)

val finished : stepper -> bool
val iterations_done : stepper -> int

val result : stepper -> result
(** Finalise: recomputes the TRUE residual [b - A x] (never trusts the
    recurrence), so a corrupted or stagnated solve reports
    [converged = false] rather than silently returning a wrong answer. *)

val symgs_preconditioner : Csr.t -> Vec.t -> Vec.t
(** One symmetric Gauss-Seidel sweep from a zero initial guess — the HPCG
    preconditioner. Usage: [solve ~precond:(symgs_preconditioner a) a b]. *)

val variant_name : variant -> string

val modeled_iteration_time :
  variant -> network:Xsc_simmachine.Network.t -> ranks:int -> spmv_time:float ->
  vector_time:float -> float
(** Per-iteration wall time on the modelled machine: local kernel times plus
    the variant's synchronisation cost (fused variants pay one allreduce;
    the pipelined variant pays only what the SpMV fails to hide). *)

val modeled_sstep_iteration_time :
  s:int -> network:Xsc_simmachine.Network.t -> ranks:int -> spmv_time:float ->
  vector_time:float -> float
(** Amortised per-iteration time of s-step CG: one block reduction
    ([O(s²)] words) every [s] iterations plus ~15% extra local work for the
    basis construction (Hoemmen's accounting). The numerical-stability
    limits of large [s] are outside this model (documented, not modelled). *)
