open Xsc_linalg

type variant = Classic | Chronopoulos_gear | Pipelined

type result = {
  x : Vec.t;
  iterations : int;
  converged : bool;
  residual_norm : float;
  sync_points : int;
  spmv_count : int;
  flops : float;
}

type counters = { mutable syncs : int; mutable spmvs : int; mutable flops : float }

let finish a b x counters ~iterations ~tol =
  let r = Array.copy b in
  let ax = Csr.mul_vec a x in
  Vec.axpy (-1.0) ax r;
  let rn = Vec.nrm2 r in
  let bn = Vec.nrm2 b in
  {
    x;
    iterations;
    converged = rn <= tol *. (if bn = 0.0 then 1.0 else bn);
    residual_norm = rn;
    sync_points = counters.syncs;
    spmv_count = counters.spmvs;
    flops = counters.flops;
  }

(* Resumable classic-(P)CG stepper. All loop state lives in the record, so
   the solve can be advanced a few iterations at a time — the serve routing
   layer runs chunks of iterations as pool tasks, and because [solve_classic]
   below is itself the stepper driven to completion, a chunked solve is
   bitwise-identical to the sequential one by construction. *)
type stepper = {
  st_a : Csr.t;
  st_b : Vec.t;
  st_x : Vec.t;
  st_precond : (Vec.t -> Vec.t) option;
  st_max_iter : int;
  st_tol : float;
  st_c : counters;
  st_r : Vec.t;
  st_p : Vec.t;
  mutable st_rz : float;
  st_target : float;
  mutable st_iterations : int;
  mutable st_break : bool;
}

let st_spmv c a v =
  c.spmvs <- c.spmvs + 1;
  c.flops <- c.flops +. Csr.spmv_flops a;
  Csr.mul_vec a v

let st_dot_sync c ~fn u v =
  c.syncs <- c.syncs + 1;
  c.flops <- c.flops +. (2.0 *. fn);
  Vec.dot u v

let st_apply_m c a precond r =
  match precond with
  | None -> Array.copy r
  | Some m ->
    (* one SymGS sweep ~ two SpMV's worth of flops *)
    c.flops <- c.flops +. (2.0 *. Csr.spmv_flops a);
    m r

let make_stepper ?precond ~max_iter ~tol a b x =
  let c = { syncs = 0; spmvs = 0; flops = 0.0 } in
  let fn = float_of_int (Array.length b) in
  let r = Array.copy b in
  let ax = st_spmv c a x in
  Vec.axpy (-1.0) ax r;
  let z = st_apply_m c a precond r in
  let p = Array.copy z in
  let rz = st_dot_sync c ~fn r z in
  let bn = Vec.nrm2 b in
  let target = tol *. (if bn = 0.0 then 1.0 else bn) in
  { st_a = a; st_b = b; st_x = x; st_precond = precond; st_max_iter = max_iter;
    st_tol = tol; st_c = c; st_r = r; st_p = p; st_rz = rz; st_target = target;
    st_iterations = 0; st_break = false }

let finished s = s.st_break || s.st_iterations >= s.st_max_iter

let step_one s =
  let n = Array.length s.st_b in
  let fn = float_of_int n in
  let c = s.st_c in
  let ap = st_spmv c s.st_a s.st_p in
  let pap = st_dot_sync c ~fn s.st_p ap in
  if pap <= 0.0 then s.st_break <- true
  else begin
    let alpha = s.st_rz /. pap in
    Vec.axpy alpha s.st_p s.st_x;
    Vec.axpy (-.alpha) ap s.st_r;
    c.flops <- c.flops +. (4.0 *. fn);
    s.st_iterations <- s.st_iterations + 1;
    (* convergence check shares the r.z reduction *)
    let z' = st_apply_m c s.st_a s.st_precond s.st_r in
    let rz' = st_dot_sync c ~fn s.st_r z' in
    let rn2 = if s.st_precond = None then rz' else Vec.dot s.st_r s.st_r in
    if sqrt (abs_float rn2) <= s.st_target then s.st_break <- true
    else begin
      let beta = rz' /. s.st_rz in
      for i = 0 to n - 1 do
        s.st_p.(i) <- z'.(i) +. (beta *. s.st_p.(i))
      done;
      c.flops <- c.flops +. (2.0 *. fn);
      s.st_rz <- rz'
    end
  end

let step s k =
  let left = ref k in
  while !left > 0 && not (finished s) do
    step_one s;
    decr left
  done

let iterations_done s = s.st_iterations

let result s =
  finish s.st_a s.st_b s.st_x s.st_c ~iterations:s.st_iterations ~tol:s.st_tol

let solve_classic ?precond ~max_iter ~tol a b x =
  let s = make_stepper ?precond ~max_iter ~tol a b x in
  while not (finished s) do
    step_one s
  done;
  result s

(* Chronopoulos-Gear and pipelined CG share the single-reduction
   recurrences; the pipelined variant additionally maintains w = A r and
   z = A p through vector updates so the SpMV can overlap the reduction. *)
let solve_fused ~pipelined ~max_iter ~tol a b x =
  let n = Array.length b in
  let c = { syncs = 0; spmvs = 0; flops = 0.0 } in
  let fn = float_of_int n in
  let spmv v =
    c.spmvs <- c.spmvs + 1;
    c.flops <- c.flops +. Csr.spmv_flops a;
    Csr.mul_vec a v
  in
  let fused_dots u v w1 w2 =
    (* both reductions in one synchronisation *)
    c.syncs <- c.syncs + 1;
    c.flops <- c.flops +. (4.0 *. fn);
    (Vec.dot u v, Vec.dot w1 w2)
  in
  let r = Array.copy b in
  let ax = spmv x in
  Vec.axpy (-1.0) ax r;
  let w = ref (spmv r) in
  let p = Array.make n 0.0 in
  let s = Array.make n 0.0 in
  (* s = A p *)
  let z = Array.make n 0.0 in
  (* z = A w (pipelined only) *)
  let q = Array.make n 0.0 in
  let bn = Vec.nrm2 b in
  let target = tol *. (if bn = 0.0 then 1.0 else bn) in
  let gamma_prev = ref 0.0 and alpha_prev = ref 0.0 in
  let iterations = ref 0 in
  let break = ref false in
  while (not !break) && !iterations < max_iter do
    let gamma, delta = fused_dots r r !w r in
    if sqrt gamma <= target then break := true
    else begin
      (* the SpMV below is what the pipelined variant overlaps with the
         reduction above *)
      if pipelined then begin
        let aw = spmv !w in
        Array.blit aw 0 q 0 n
      end;
      let beta, alpha =
        if !iterations = 0 then (0.0, gamma /. delta)
        else begin
          let beta = gamma /. !gamma_prev in
          (beta, gamma /. (delta -. (beta *. gamma /. !alpha_prev)))
        end
      in
      for i = 0 to n - 1 do
        p.(i) <- r.(i) +. (beta *. p.(i))
      done;
      if pipelined then begin
        for i = 0 to n - 1 do
          s.(i) <- !w.(i) +. (beta *. s.(i));
          z.(i) <- q.(i) +. (beta *. z.(i))
        done;
        c.flops <- c.flops +. (6.0 *. fn)
      end
      else begin
        for i = 0 to n - 1 do
          s.(i) <- !w.(i) +. (beta *. s.(i))
        done;
        c.flops <- c.flops +. (4.0 *. fn)
      end;
      Vec.axpy alpha p x;
      Vec.axpy (-.alpha) s r;
      c.flops <- c.flops +. (4.0 *. fn);
      if pipelined then begin
        let wv = !w in
        for i = 0 to n - 1 do
          wv.(i) <- wv.(i) -. (alpha *. z.(i))
        done;
        c.flops <- c.flops +. (2.0 *. fn)
      end
      else w := spmv r;
      gamma_prev := gamma;
      alpha_prev := alpha;
      incr iterations
    end
  done;
  finish a b x c ~iterations:!iterations ~tol

let solve ?(variant = Classic) ?precond ?(max_iter = 10_000) ?(tol = 1e-10) ?x0 a b =
  if a.Csr.rows <> a.Csr.cols then invalid_arg "Cg.solve: matrix not square";
  if Array.length b <> a.Csr.rows then invalid_arg "Cg.solve: dimension mismatch";
  let x =
    match x0 with
    | None -> Array.make (Array.length b) 0.0
    | Some v ->
      if Array.length v <> Array.length b then invalid_arg "Cg.solve: x0 dimension mismatch";
      Array.copy v
  in
  match variant with
  | Classic -> solve_classic ?precond ~max_iter ~tol a b x
  | Chronopoulos_gear | Pipelined ->
    if precond <> None then
      invalid_arg "Cg.solve: preconditioning is supported for the Classic variant only";
    solve_fused ~pipelined:(variant = Pipelined) ~max_iter ~tol a b x

let stepper ?precond ?(max_iter = 10_000) ?(tol = 1e-10) ?x0 a b =
  if a.Csr.rows <> a.Csr.cols then invalid_arg "Cg.stepper: matrix not square";
  if Array.length b <> a.Csr.rows then invalid_arg "Cg.stepper: dimension mismatch";
  let x =
    match x0 with
    | None -> Array.make (Array.length b) 0.0
    | Some v ->
      if Array.length v <> Array.length b then
        invalid_arg "Cg.stepper: x0 dimension mismatch";
      Array.copy v
  in
  make_stepper ?precond ~max_iter ~tol a b x

let symgs_preconditioner a r =
  let z = Array.make (Array.length r) 0.0 in
  Csr.symgs_sweep a ~b:r ~x:z;
  z

let variant_name = function
  | Classic -> "classic"
  | Chronopoulos_gear -> "chronopoulos-gear"
  | Pipelined -> "pipelined"

let modeled_sstep_iteration_time ~s ~network ~ranks ~spmv_time ~vector_time =
  if s < 1 then invalid_arg "Cg.modeled_sstep_iteration_time: s must be >= 1";
  let open Xsc_simmachine in
  let fs = float_of_int s in
  (* one Gram-matrix reduction of ~(2s+1)^2 doubles per s iterations *)
  let words = ((2.0 *. fs) +. 1.0) ** 2.0 in
  let allreduce = Network.allreduce_time network ~ranks ~bytes:(8.0 *. words) in
  (1.15 *. (spmv_time +. vector_time)) +. (allreduce /. fs)

let modeled_iteration_time variant ~network ~ranks ~spmv_time ~vector_time =
  let open Xsc_simmachine in
  let allreduce = Network.allreduce_time network ~ranks ~bytes:16.0 in
  match variant with
  | Classic -> spmv_time +. vector_time +. (2.0 *. allreduce)
  | Chronopoulos_gear -> spmv_time +. vector_time +. allreduce
  | Pipelined ->
    (* the reduction rides the SpMV; only the excess is exposed *)
    max spmv_time allreduce +. vector_time
