(** Geometric multigrid on the 3-D stencil problems.

    The real HPCG preconditioner is a short V-cycle with symmetric
    Gauss-Seidel smoothing over a hierarchy of coarsened grids. This module
    builds that hierarchy for an [n³] grid (n halving per level, injection
    restriction, trilinear-ish prolongation by replication) and exposes the
    V-cycle both as a standalone solver and as a CG preconditioner. *)

type t

type smoother = Symgs | Jacobi

val create : ?levels:int -> ?smoother:smoother -> ?stencil:(int -> Csr.t) -> int -> t
(** [create n] builds the hierarchy for an [n³] fine grid ([n] even;
    coarsening stops after [levels] (default 4, HPCG's depth) or when the
    grid would drop below 2). [stencil] defaults to {!Stencil.hpcg_27pt};
    [smoother] to [Symgs] (HPCG's choice — [Jacobi] trades a weaker smoother
    for full row-parallelism). *)

val levels : t -> int
val fine_matrix : t -> Csr.t

val v_cycle : t -> b:Xsc_linalg.Vec.t -> x:Xsc_linalg.Vec.t -> unit
(** One V-cycle on [A x = b], in place on [x] (pre/post smoothing = one
    SymGS sweep each, exact-ish bottom solve by repeated smoothing). *)

val preconditioner : t -> Xsc_linalg.Vec.t -> Xsc_linalg.Vec.t
(** [M⁻¹ r] = one V-cycle from a zero initial guess — plug into
    [Cg.solve ~precond]. Symmetric positive by construction (SymGS
    smoothers), so CG theory applies. *)

val solve : ?tol:float -> ?max_cycles:int -> t -> Xsc_linalg.Vec.t -> Xsc_linalg.Vec.t * int
(** Stationary V-cycle iteration until the relative residual drops below
    [tol] (default 1e-8); returns the solution and cycle count. *)

(** {2 Resumable stepper}

    The stationary iteration exposed a chunk of V-cycles at a time, for the
    serve routing layer. {!solve} is the stepper driven to completion, so
    chunked solves are bitwise-identical to sequential ones by construction.
    A hierarchy [t] holds mutable per-level scratch: a stepper borrows it
    exclusively until finished. *)

type stepper

val stepper : ?tol:float -> ?max_cycles:int -> t -> Xsc_linalg.Vec.t -> stepper
(** Initialise a solve of [A x = b] from a zero guess; the convergence
    check (TRUE residual [b - A x], never a recurrence) runs here and
    after every cycle, so {!finished}/{!converged} are always decided. *)

val step : stepper -> int -> unit
(** Advance up to [k] V-cycles; stops early at convergence or the cycle
    cap. No-op once finished. *)

val finished : stepper -> bool

val converged : stepper -> bool
(** True residual at or below target — [false] after a cap-out means the
    answer is NOT trusted. *)

val cycles_done : stepper -> int
val solution : stepper -> Xsc_linalg.Vec.t * int
