open Xsc_linalg

type t = {
  rows : int;
  cols : int;
  row_ptr : int array;
  col_idx : int array;
  values : float array;
}

let of_triplets ~rows ~cols triplets =
  if rows < 0 || cols < 0 then invalid_arg "Csr.of_triplets: negative dimension";
  List.iter
    (fun (i, j, _) ->
      if i < 0 || i >= rows || j < 0 || j >= cols then
        invalid_arg "Csr.of_triplets: coordinate out of bounds")
    triplets;
  (* sum duplicates via a per-coordinate table, then sort rows *)
  let tbl : (int * int, float) Hashtbl.t = Hashtbl.create (List.length triplets) in
  List.iter
    (fun (i, j, v) ->
      let key = (i, j) in
      let cur = Option.value ~default:0.0 (Hashtbl.find_opt tbl key) in
      Hashtbl.replace tbl key (cur +. v))
    triplets;
  let entries = Hashtbl.fold (fun (i, j) v acc -> (i, j, v) :: acc) tbl [] in
  let entries =
    List.sort (fun (i1, j1, _) (i2, j2, _) -> compare (i1, j1) (i2, j2)) entries
  in
  let n = List.length entries in
  let row_ptr = Array.make (rows + 1) 0 in
  let col_idx = Array.make n 0 in
  let values = Array.make n 0.0 in
  List.iteri
    (fun k (i, j, v) ->
      row_ptr.(i + 1) <- row_ptr.(i + 1) + 1;
      col_idx.(k) <- j;
      values.(k) <- v)
    entries;
  for i = 0 to rows - 1 do
    row_ptr.(i + 1) <- row_ptr.(i + 1) + row_ptr.(i)
  done;
  { rows; cols; row_ptr; col_idx; values }

let of_dense (m : Mat.t) =
  let triplets = ref [] in
  for i = m.rows - 1 downto 0 do
    for j = m.cols - 1 downto 0 do
      let v = Mat.get m i j in
      if v <> 0.0 then triplets := (i, j, v) :: !triplets
    done
  done;
  of_triplets ~rows:m.rows ~cols:m.cols !triplets

let to_dense t =
  let m = Mat.create t.rows t.cols in
  for i = 0 to t.rows - 1 do
    for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      Mat.set m i t.col_idx.(k) t.values.(k)
    done
  done;
  m

let nnz t = Array.length t.values

let get t i j =
  if i < 0 || i >= t.rows || j < 0 || j >= t.cols then invalid_arg "Csr.get: out of bounds";
  let result = ref 0.0 in
  for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
    if t.col_idx.(k) = j then result := t.values.(k)
  done;
  !result

let spmv_flops t = 2.0 *. float_of_int (Array.length t.values)

let spmv_bytes t =
  (* values (8B) + column indices (4B equivalent) per nonzero, plus the
     x read and y write per row (two 8B streams, ignoring cache reuse of x) *)
  (12.0 *. float_of_int (Array.length t.values)) +. (16.0 *. float_of_int t.rows)

let mul_vec_into t x y =
  if Array.length x <> t.cols || Array.length y <> t.rows then
    invalid_arg "Csr.mul_vec_into: dimension mismatch";
  Blas.tally_kernel "spmv" ~flops:(spmv_flops t) ~bytes:(spmv_bytes t);
  for i = 0 to t.rows - 1 do
    let acc = ref 0.0 in
    for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      acc := !acc +. (t.values.(k) *. x.(t.col_idx.(k)))
    done;
    y.(i) <- !acc
  done

let mul_vec t x =
  let y = Array.make t.rows 0.0 in
  mul_vec_into t x y;
  y

let mul_vec_par ?workers t x =
  if Array.length x <> t.cols then invalid_arg "Csr.mul_vec_par: dimension mismatch";
  let workers =
    match workers with
    | Some w when w >= 1 -> w
    | Some _ -> invalid_arg "Csr.mul_vec_par: workers must be >= 1"
    | None -> min 8 (Domain.recommended_domain_count ())
  in
  Blas.tally_kernel "spmv" ~flops:(spmv_flops t) ~bytes:(spmv_bytes t);
  let y = Array.make t.rows 0.0 in
  let workers = min workers (max 1 t.rows) in
  let chunk w =
    let lo = w * t.rows / workers and hi = (w + 1) * t.rows / workers in
    for i = lo to hi - 1 do
      let acc = ref 0.0 in
      for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
        acc := !acc +. (t.values.(k) *. x.(t.col_idx.(k)))
      done;
      y.(i) <- !acc
    done
  in
  if workers = 1 then chunk 0
  else begin
    let domains = List.init (workers - 1) (fun w -> Domain.spawn (fun () -> chunk (w + 1))) in
    chunk 0;
    List.iter Domain.join domains
  end;
  y

let diagonal t =
  let d = Array.make (min t.rows t.cols) 0.0 in
  for i = 0 to Array.length d - 1 do
    for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      if t.col_idx.(k) = i then d.(i) <- t.values.(k)
    done
  done;
  d

let symgs_sweep t ~b ~x =
  if t.rows <> t.cols then invalid_arg "Csr.symgs_sweep: not square";
  if Array.length b <> t.rows || Array.length x <> t.rows then
    invalid_arg "Csr.symgs_sweep: dimension mismatch";
  let sweep_row i =
    let acc = ref b.(i) in
    let diag = ref 0.0 in
    for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      let j = t.col_idx.(k) in
      if j = i then diag := t.values.(k) else acc := !acc -. (t.values.(k) *. x.(j))
    done;
    if !diag = 0.0 then invalid_arg "Csr.symgs_sweep: zero diagonal";
    x.(i) <- !acc /. !diag
  in
  (* forward + backward pass: twice the SpMV's nonzero traffic *)
  Blas.tally_kernel "symgs"
    ~flops:(2.0 *. spmv_flops t)
    ~bytes:(2.0 *. spmv_bytes t);
  for i = 0 to t.rows - 1 do
    sweep_row i
  done;
  for i = t.rows - 1 downto 0 do
    sweep_row i
  done

let jacobi_sweep ?(omega = 2.0 /. 3.0) t ~b ~x =
  if t.rows <> t.cols then invalid_arg "Csr.jacobi_sweep: not square";
  if Array.length b <> t.rows || Array.length x <> t.rows then
    invalid_arg "Csr.jacobi_sweep: dimension mismatch";
  Blas.tally_kernel "jacobi"
    ~flops:(spmv_flops t +. (2.0 *. float_of_int t.rows))
    ~bytes:(spmv_bytes t);
  let r = Array.make t.rows 0.0 in
  let d = Array.make t.rows 0.0 in
  for i = 0 to t.rows - 1 do
    let acc = ref b.(i) in
    for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      let j = t.col_idx.(k) in
      if j = i then d.(i) <- t.values.(k);
      acc := !acc -. (t.values.(k) *. x.(j))
    done;
    r.(i) <- !acc
  done;
  for i = 0 to t.rows - 1 do
    if d.(i) = 0.0 then invalid_arg "Csr.jacobi_sweep: zero diagonal";
    x.(i) <- x.(i) +. (omega *. r.(i) /. d.(i))
  done

let is_symmetric ?(tol = 0.0) t =
  t.rows = t.cols
  &&
  let ok = ref true in
  for i = 0 to t.rows - 1 do
    for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      let j = t.col_idx.(k) in
      if abs_float (t.values.(k) -. get t j i) > tol then ok := false
    done
  done;
  !ok
