(** Compressed sparse row matrices.

    The substrate of the HPCG-style experiments: SpMV and symmetric
    Gauss-Seidel are the memory-bandwidth-bound kernels whose low arithmetic
    intensity creates the HPL/HPCG gap.

    Every SpMV/sweep entry point tallies its flop and byte traffic through
    {!Xsc_linalg.Blas.tally_kernel} (counters [blas.spmv.*], [blas.symgs.*],
    [blas.jacobi.*]), so sparse kernels appear in the same roofline
    achieved-vs-roof tables as the dense ones. *)

open Xsc_linalg

type t = {
  rows : int;
  cols : int;
  row_ptr : int array;  (** length [rows + 1] *)
  col_idx : int array;
  values : float array;
}

val of_triplets : rows:int -> cols:int -> (int * int * float) list -> t
(** Duplicate coordinates are summed; entries are sorted within each row.
    Explicit zeros are kept (HPCG keeps the full stencil pattern). *)

val of_dense : Mat.t -> t
(** Drops exact zeros. *)

val to_dense : t -> Mat.t
val nnz : t -> int
val get : t -> int -> int -> float
val mul_vec : t -> Vec.t -> Vec.t
val mul_vec_into : t -> Vec.t -> Vec.t -> unit
(** [mul_vec_into a x y] sets [y <- A x] (no aliasing). *)

val mul_vec_par : ?workers:int -> t -> Vec.t -> Vec.t
(** SpMV with the rows block-partitioned across OCaml domains (row blocks
    write disjoint output ranges, so no synchronisation is needed beyond
    the join). Defaults to the host's recommended domain count. *)

val diagonal : t -> float array
(** Diagonal entries (zero when absent). *)

val symgs_sweep : t -> b:Vec.t -> x:Vec.t -> unit
(** One symmetric Gauss-Seidel sweep (forward then backward) on [A x = b],
    in place on [x] — HPCG's smoother. Requires nonzero diagonal.
    Inherently sequential along the row order (each update reads earlier
    updates) — the scalability liability that motivates {!jacobi_sweep}
    and multi-colouring in practice. *)

val jacobi_sweep : ?omega:float -> t -> b:Vec.t -> x:Vec.t -> unit
(** One weighted-Jacobi sweep [x <- x + omega D⁻¹ (b - A x)] (default
    [omega = 2/3], the smoothing-optimal weight for Poisson-like problems).
    Every row update is independent — the fully parallel smoother. *)

val spmv_flops : t -> float
(** [2 nnz]. *)

val spmv_bytes : t -> float
(** Approximate memory traffic of one SpMV (values + indices + vectors),
    used by the roofline model. *)

val is_symmetric : ?tol:float -> t -> bool
