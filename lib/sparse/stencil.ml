let poisson_1d n =
  if n <= 0 then invalid_arg "Stencil.poisson_1d: n must be positive";
  let triplets = ref [] in
  for i = 0 to n - 1 do
    triplets := (i, i, 2.0) :: !triplets;
    if i > 0 then triplets := (i, i - 1, -1.0) :: !triplets;
    if i < n - 1 then triplets := (i, i + 1, -1.0) :: !triplets
  done;
  Csr.of_triplets ~rows:n ~cols:n !triplets

let poisson_2d n =
  if n <= 0 then invalid_arg "Stencil.poisson_2d: n must be positive";
  let idx x y = (x * n) + y in
  let triplets = ref [] in
  for x = 0 to n - 1 do
    for y = 0 to n - 1 do
      let i = idx x y in
      triplets := (i, i, 4.0) :: !triplets;
      if x > 0 then triplets := (i, idx (x - 1) y, -1.0) :: !triplets;
      if x < n - 1 then triplets := (i, idx (x + 1) y, -1.0) :: !triplets;
      if y > 0 then triplets := (i, idx x (y - 1), -1.0) :: !triplets;
      if y < n - 1 then triplets := (i, idx x (y + 1), -1.0) :: !triplets
    done
  done;
  Csr.of_triplets ~rows:(n * n) ~cols:(n * n) !triplets

let convection_diffusion_2d ?(cx = 1.0) ?(cy = 1.0) n =
  if n <= 0 then invalid_arg "Stencil.convection_diffusion_2d: n must be positive";
  if cx < 0.0 || cy < 0.0 then
    invalid_arg "Stencil.convection_diffusion_2d: upwinding assumes c >= 0";
  let idx x y = (x * n) + y in
  let triplets = ref [] in
  for x = 0 to n - 1 do
    for y = 0 to n - 1 do
      let i = idx x y in
      (* diffusion 5-point plus first-order upwind convection: the flow
         (cx, cy) strengthens the west/south couplings and the diagonal *)
      triplets := (i, i, 4.0 +. cx +. cy) :: !triplets;
      if x > 0 then triplets := (i, idx (x - 1) y, -1.0 -. cx) :: !triplets;
      if x < n - 1 then triplets := (i, idx (x + 1) y, -1.0) :: !triplets;
      if y > 0 then triplets := (i, idx x (y - 1), -1.0 -. cy) :: !triplets;
      if y < n - 1 then triplets := (i, idx x (y + 1), -1.0) :: !triplets
    done
  done;
  Csr.of_triplets ~rows:(n * n) ~cols:(n * n) !triplets

let grid_index ~n x y z = (((x * n) + y) * n) + z

(* The 3-D stencils assemble CSR directly — no triplet list, no hashtable,
   no sort. A serving-layer sparse request generates its operator inline at
   submit time, so assembly must be O(nnz) with small constants (the
   triplet path costs ~100 ms for a 24^3 grid; this path is ~1 ms).
   Correctness hinges on emission order: within a row the neighbour column
   indices are produced strictly ascending (grid_index is lexicographic in
   (x, y, z)), so the result is bit-identical to what [Csr.of_triplets]
   builds from the same entries — the tests assert exactly that. *)

let assemble_3d ~n ~max_degree ~emit_row =
  let nn = n * n * n in
  let row_ptr = Array.make (nn + 1) 0 in
  let col_idx = Array.make (nn * max_degree) 0 in
  let values = Array.make (nn * max_degree) 0.0 in
  let k = ref 0 in
  for x = 0 to n - 1 do
    for y = 0 to n - 1 do
      for z = 0 to n - 1 do
        emit_row x y z (fun j v ->
            col_idx.(!k) <- j;
            values.(!k) <- v;
            incr k);
        row_ptr.(grid_index ~n x y z + 1) <- !k
      done
    done
  done;
  {
    Csr.rows = nn;
    cols = nn;
    row_ptr;
    col_idx = Array.sub col_idx 0 !k;
    values = Array.sub values 0 !k;
  }

let poisson_3d n =
  if n <= 0 then invalid_arg "Stencil.poisson_3d: n must be positive";
  (* neighbours in ascending index order: -x < -y < -z < diag < +z < +y < +x *)
  assemble_3d ~n ~max_degree:7 ~emit_row:(fun x y z push ->
      if x > 0 then push (grid_index ~n (x - 1) y z) (-1.0);
      if y > 0 then push (grid_index ~n x (y - 1) z) (-1.0);
      if z > 0 then push (grid_index ~n x y (z - 1)) (-1.0);
      push (grid_index ~n x y z) 6.0;
      if z < n - 1 then push (grid_index ~n x y (z + 1)) (-1.0);
      if y < n - 1 then push (grid_index ~n x (y + 1) z) (-1.0);
      if x < n - 1 then push (grid_index ~n (x + 1) y z) (-1.0))

let hpcg_27pt n =
  if n <= 0 then invalid_arg "Stencil.hpcg_27pt: n must be positive";
  (* ascending (dx, dy, dz) loops emit ascending indices: lexicographic *)
  assemble_3d ~n ~max_degree:27 ~emit_row:(fun x y z push ->
      for dx = -1 to 1 do
        for dy = -1 to 1 do
          for dz = -1 to 1 do
            let nx = x + dx and ny = y + dy and nz = z + dz in
            if nx >= 0 && nx < n && ny >= 0 && ny < n && nz >= 0 && nz < n then
              if dx = 0 && dy = 0 && dz = 0 then push (grid_index ~n x y z) 26.0
              else push (grid_index ~n nx ny nz) (-1.0)
          done
        done
      done)

let exact_rhs a =
  let x = Array.make a.Csr.cols 1.0 in
  let b = Csr.mul_vec a x in
  (x, b)
