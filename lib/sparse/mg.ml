open Xsc_linalg

type level = {
  matrix : Csr.t;
  grid : int;
  (* scratch vectors reused across cycles *)
  x : Vec.t;
  b : Vec.t;
  r : Vec.t;
}

type smoother = Symgs | Jacobi

type t = { levels : level array; smoother : smoother }

let smooth t level =
  match t.smoother with
  | Symgs -> Csr.symgs_sweep level.matrix ~b:level.b ~x:level.x
  | Jacobi ->
    (* two weighted-Jacobi sweeps roughly match one symmetric GS sweep *)
    Csr.jacobi_sweep level.matrix ~b:level.b ~x:level.x;
    Csr.jacobi_sweep level.matrix ~b:level.b ~x:level.x

let make_level stencil grid =
  let matrix = stencil grid in
  let n = matrix.Csr.rows in
  { matrix; grid; x = Array.make n 0.0; b = Array.make n 0.0; r = Array.make n 0.0 }

let create ?(levels = 4) ?(smoother = Symgs) ?(stencil = Stencil.hpcg_27pt) n =
  if n < 2 then invalid_arg "Mg.create: grid too small";
  if levels < 1 then invalid_arg "Mg.create: need at least one level";
  (* include every grid down to the level budget; recurse only while the
     current grid halves evenly into a grid of at least 2 *)
  let rec grids acc g remaining =
    let acc = g :: acc in
    if remaining > 1 && g mod 2 = 0 && g / 2 >= 2 then grids acc (g / 2) (remaining - 1)
    else List.rev acc
  in
  let gs = grids [] n levels in
  { levels = Array.of_list (List.map (make_level stencil) gs); smoother }

let levels t = Array.length t.levels
let fine_matrix t = t.levels.(0).matrix

(* coarse grid point (x,y,z) on an nc-grid sits at (2x,2y,2z) on the fine
   2nc-grid *)
let fine_index ~nc i =
  let x = i / (nc * nc) and y = i / nc mod nc and z = i mod nc in
  let nf = 2 * nc in
  Stencil.grid_index ~n:nf (2 * x) (2 * y) (2 * z)

let residual_into level =
  Csr.mul_vec_into level.matrix level.x level.r;
  for i = 0 to Array.length level.r - 1 do
    level.r.(i) <- level.b.(i) -. level.r.(i)
  done

let rec cycle t l =
  let level = t.levels.(l) in
  if l = Array.length t.levels - 1 then
    (* bottom: smooth hard — the grid is tiny *)
    for _ = 1 to 8 do
      smooth t level
    done
  else begin
    (* pre-smooth *)
    smooth t level;
    residual_into level;
    (* restrict the residual by injection *)
    let coarse = t.levels.(l + 1) in
    let nc = coarse.grid in
    Array.fill coarse.x 0 (Array.length coarse.x) 0.0;
    for i = 0 to Array.length coarse.b - 1 do
      coarse.b.(i) <- level.r.(fine_index ~nc i)
    done;
    cycle t (l + 1);
    (* prolong the correction by injection *)
    for i = 0 to Array.length coarse.x - 1 do
      let fi = fine_index ~nc i in
      level.x.(fi) <- level.x.(fi) +. coarse.x.(i)
    done;
    (* post-smooth *)
    smooth t level
  end

let v_cycle t ~b ~x =
  let fine = t.levels.(0) in
  if Array.length b <> Array.length fine.b || Array.length x <> Array.length fine.x then
    invalid_arg "Mg.v_cycle: dimension mismatch";
  Array.blit b 0 fine.b 0 (Array.length b);
  Array.blit x 0 fine.x 0 (Array.length x);
  cycle t 0;
  Array.blit fine.x 0 x 0 (Array.length x)

let preconditioner t r =
  let z = Array.make (Array.length r) 0.0 in
  v_cycle t ~b:r ~x:z;
  z

(* Resumable V-cycle stepper: the convergence check runs at creation and
   after every cycle, so [finished] is always decided and a chunked solve
   performs exactly the cycle sequence of the sequential loop — same
   scratch, same order, bitwise-identical x. *)
type stepper = {
  mg_t : t;
  mg_b : Vec.t;
  mg_x : Vec.t;
  mg_target : float;
  mg_max_cycles : int;
  mutable mg_cycles : int;
  mutable mg_done : bool;
  mutable mg_converged : bool;
}

let true_residual_norm a ~b ~x =
  let r = Csr.mul_vec a x in
  Vec.axpy (-1.0) b r;
  Vec.nrm2 r

let mg_check s =
  if true_residual_norm (fine_matrix s.mg_t) ~b:s.mg_b ~x:s.mg_x <= s.mg_target then begin
    s.mg_done <- true;
    s.mg_converged <- true
  end
  else if s.mg_cycles >= s.mg_max_cycles then s.mg_done <- true

let stepper ?(tol = 1e-8) ?(max_cycles = 200) t b =
  let fine = t.levels.(0) in
  if Array.length b <> Array.length fine.b then
    invalid_arg "Mg.stepper: dimension mismatch";
  let bn = Vec.nrm2 b in
  let target = tol *. (if bn = 0.0 then 1.0 else bn) in
  let s =
    { mg_t = t; mg_b = b; mg_x = Array.make (Array.length b) 0.0;
      mg_target = target; mg_max_cycles = max_cycles; mg_cycles = 0;
      mg_done = false; mg_converged = false }
  in
  mg_check s;
  s

let step s k =
  let left = ref k in
  while !left > 0 && not s.mg_done do
    v_cycle s.mg_t ~b:s.mg_b ~x:s.mg_x;
    s.mg_cycles <- s.mg_cycles + 1;
    decr left;
    mg_check s
  done

let finished s = s.mg_done
let converged s = s.mg_converged
let cycles_done s = s.mg_cycles
let solution s = (s.mg_x, s.mg_cycles)

let solve ?(tol = 1e-8) ?(max_cycles = 200) t b =
  let s = stepper ~tol ~max_cycles t b in
  step s max_cycles;
  solution s
