(* Chase–Lev work-stealing deque (Chase & Lev, SPAA'05), in the formulation
   of Lê et al., PPoPP'13, with OCaml [Atomic]s providing the (stronger
   than required) SC orderings.

   Invariants that make the unsynchronised buffer reads safe:
   - [top] is monotonically non-decreasing; an index is consumed exactly
     once, by whoever wins the CAS on [top] (a thief, or the owner racing
     for the last element).
   - the owner writes slot [b land mask] only while [b - top < capacity]
     (guaranteed by growing first), so a pending thief's read of slot
     [t land mask] can never be overwritten before its CAS decides;
   - growth copies the live range into a fresh array and publishes it with
     an atomic store; thieves that still hold the old array read values the
     copy preserved, and the GC keeps the old array alive for them. *)

type t = {
  top : int Atomic.t;
  bottom : int Atomic.t;
  buf : int array Atomic.t;
}

type steal_result = Stolen of int | Empty | Abort

let rec next_pow2 n acc = if acc >= n then acc else next_pow2 n (acc * 2)

let create ?(capacity = 64) () =
  if capacity < 1 then invalid_arg "Deque.create: capacity < 1";
  let cap = next_pow2 capacity 1 in
  { top = Atomic.make 0; bottom = Atomic.make 0; buf = Atomic.make (Array.make cap 0) }

let size d = max 0 (Atomic.get d.bottom - Atomic.get d.top)

(* Owner only: double the buffer, copying the live range [t, b). *)
let grow d t b a =
  let cap = Array.length a in
  let na = Array.make (2 * cap) 0 in
  for i = t to b - 1 do
    na.(i land ((2 * cap) - 1)) <- a.(i land (cap - 1))
  done;
  Atomic.set d.buf na;
  na

let push d v =
  let b = Atomic.get d.bottom in
  let t = Atomic.get d.top in
  let a = Atomic.get d.buf in
  let a = if b - t >= Array.length a - 1 then grow d t b a else a in
  a.(b land (Array.length a - 1)) <- v;
  Atomic.set d.bottom (b + 1)

let pop d =
  let b = Atomic.get d.bottom - 1 in
  let a = Atomic.get d.buf in
  (* publish the claim on slot b before reading top: thieves racing for the
     same slot now must win their CAS against us *)
  Atomic.set d.bottom b;
  let t = Atomic.get d.top in
  if b < t then begin
    (* empty: restore the canonical empty state *)
    Atomic.set d.bottom t;
    None
  end
  else if b > t then Some a.(b land (Array.length a - 1))
  else begin
    (* single element left: race thieves for it via top *)
    let won = Atomic.compare_and_set d.top t (t + 1) in
    Atomic.set d.bottom (t + 1);
    if won then Some a.(b land (Array.length a - 1)) else None
  end

let steal d =
  let t = Atomic.get d.top in
  let b = Atomic.get d.bottom in
  if b - t <= 0 then Empty
  else begin
    let a = Atomic.get d.buf in
    let v = a.(t land (Array.length a - 1)) in
    if Atomic.compare_and_set d.top t (t + 1) then Stolen v else Abort
  end
