(** Host execution of task DAGs on OCaml 5 domains.

    Two executors embody the paper's comparison on real cores:

    - {!run_dataflow} — a dynamic superscalar executor on per-domain
      work-stealing deques ({!Deque}): a worker that completes a task pushes
      the successors it made ready onto its *own* deque (the child's input
      tiles are warm in that core's cache), pops LIFO locally, and steals
      FIFO from a random victim only when its own deque runs dry; idle
      workers spin over the victims briefly and then park on a condvar, so
      there is no global queue and no global broadcast on the task fast
      path;
    - {!run_forkjoin} — a bulk-synchronous executor: dependence levels are
      executed one at a time over a fixed pool of domains with a real
      barrier between levels (the classical loop-parallel style; the pool
      is reused across levels so the comparison measures barrier idle time,
      not domain spawn cost).

    Tasks must carry [run] closures. Closures of independent tasks must be
    safe to run from different domains — the tile kernels are, as they write
    disjoint tiles. *)

type stats = {
  elapsed : float;  (** wall-clock seconds *)
  tasks : int;
  workers : int;
  steals : int;  (** successful steals (dataflow; 0 for the others) *)
  parks : int;  (** condvar waits by idle workers (dataflow; 0 otherwise) *)
}

val run_dataflow : ?priority:(int -> int) -> workers:int -> Dag.t -> stats
(** [priority] ranks ready tasks (higher runs sooner on the worker that
    made them ready — e.g. a bottom-level rank for critical-path-first, or
    [fun id -> -id] for FIFO program order); omitted, successors run in
    discovery order. Raises [Invalid_argument] if a task lacks a closure or
    [workers < 1]. *)

val run_forkjoin : workers:int -> Dag.t -> stats

val run_sequential : Dag.t -> stats
(** Program-order execution on the calling domain (baseline and test
    oracle). *)

val default_workers : unit -> int
(** [Domain.recommended_domain_count], capped at 8 to stay polite on shared
    CI machines. *)
