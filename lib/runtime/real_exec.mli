(** Host execution of task DAGs on OCaml 5 domains.

    Two executors embody the paper's comparison on real cores:

    - {!run_dataflow} — a dynamic superscalar executor on per-domain
      work-stealing deques ({!Deque}): a worker that completes a task pushes
      the successors it made ready onto its *own* deque (the child's input
      tiles are warm in that core's cache), pops LIFO locally, and steals
      FIFO from a random victim only when its own deque runs dry; idle
      workers spin over the victims briefly and then park on a condvar, so
      there is no global queue and no global broadcast on the task fast
      path;
    - {!run_forkjoin} — a bulk-synchronous executor: dependence levels are
      executed one at a time over a fixed pool of domains with a real
      barrier between levels (the classical loop-parallel style; the pool
      is reused across levels so the comparison measures barrier idle time,
      not domain spawn cost).

    Tasks must carry a body: a [run] closure, or a closure-free {!Task.op}
    when the caller passes an [interp] interpreter (the op wins if both are
    present, so an op-encoded DAG can also carry oracle closures). Bodies of
    independent tasks must be safe to run from different domains — the tile
    kernels are, as they write disjoint tiles. Op dispatch is one branch on
    an immediate tag: no per-task closure allocation, nothing for the GC to
    scan in the steal loop.

    Idle dataflow workers retry failed steal sweeps with bounded exponential
    backoff ({!Domain.cpu_relax} pauses doubling per failed sweep) and park
    on a condvar after [max_sweeps] dry sweeps — the probe budget per idle
    episode is bounded, so steal_attempts stays proportional to steals
    rather than to idle time.

    {2 Telemetry}

    All timing uses the monotonic {!Xsc_obs.Clock} (wall-clock is not
    monotonic; an NTP step mid-run would corrupt [elapsed]). Scheduler
    counters feed the {!Xsc_obs.Metrics} registry ([runtime.steals],
    [runtime.steal_attempts], [runtime.parks], [runtime.park_ns],
    [runtime.barrier_wait_ns], [runtime.tasks_executed]); the per-run
    figures in {!stats} are before/after registry deltas, which assumes
    executor runs within one process do not overlap (true for the bench
    harness and tests).

    With [~trace:true] (or [XSC_TRACE=1] in the environment) each worker
    records task start/finish, steal, park/unpark and barrier events into a
    preallocated domain-local ring ({!Xsc_obs.Tracer}); after the join the
    rings are merged into the returned {!Trace.t}, so {!Trace.gantt},
    {!Trace.to_chrome_json} and {!Trace.by_kernel} work on real runs. With
    tracing off the executors skip recording entirely — the disabled
    overhead is one predictable branch per event site (measured < 2% on the
    scheduler smoke). *)

type stats = {
  elapsed : float;  (** monotonic seconds *)
  tasks : int;
  workers : int;
  steals : int;  (** successful steals (dataflow; 0 for the others) *)
  steal_attempts : int;
      (** all steal attempts, successful + failed (dataflow; 0 otherwise).
          [steal_attempts - steals] failed probes distinguishes contention
          (many failures, few parks) from starvation (few attempts, long
          parks). *)
  parks : int;  (** condvar waits by idle workers (dataflow; 0 otherwise) *)
  park_time : float;
      (** cumulative seconds workers spent blocked: on the idle condvar
          (dataflow) or in level barriers (fork-join) *)
  trace : Trace.t option;  (** present iff tracing was enabled for the run *)
}

type failure = {
  failed_task : int;  (** id of the task whose body raised *)
  failed_name : string;
  failed_worker : int;  (** worker (domain index) that ran it *)
  error : exn;  (** the original exception from the task body *)
}

exception Task_failed of failure
(** Raised by every executor when a task body raises, after the run has
    been aborted cleanly: remaining ready tasks are dropped, parked
    workers are woken and drained, and every spawned domain is joined
    before the exception propagates — a fault can never leave a worker
    blocked on a condvar or barrier. Only the first failure is reported
    (concurrent failures race on a CAS; the winner's is kept). The
    [runtime.task_failures] counter tallies every captured failure. *)

val run_dataflow :
  ?interp:(Task.op -> unit) -> ?priority:(int -> int) -> ?trace:bool ->
  workers:int -> Dag.t -> stats
(** [interp] executes closure-free op-encoded tasks (see {!Task.op});
    [priority] ranks ready tasks (higher runs sooner on the worker that
    made them ready — e.g. a bottom-level rank for critical-path-first, or
    [fun id -> -id] for FIFO program order); omitted, successors run in
    discovery order. [trace] defaults to [XSC_TRACE] in the environment.
    Raises [Invalid_argument] if a task lacks a body or [workers < 1], and
    {!Task_failed} (after aborting and joining all workers) if a body
    raises. *)

val run_forkjoin :
  ?interp:(Task.op -> unit) -> ?trace:bool -> workers:int -> Dag.t -> stats
(** [park_time] reports the cumulative level-barrier wait — the BSP idle
    time the paper's DAG-scheduling argument is about. *)

val run_sequential : ?interp:(Task.op -> unit) -> ?trace:bool -> Dag.t -> stats
(** Program-order execution on the calling domain (baseline and test
    oracle). A trace of a sequential run is the per-kernel time breakdown
    with zero scheduling noise. *)

val default_workers : unit -> int
(** [Domain.recommended_domain_count], capped at 8 to stay polite on shared
    CI machines. *)

(** {2 Shared with the long-lived pool executor}

    {!Pool} reuses the executor's task-body dispatch, span recording and
    idle-backoff policy so the two runtimes stay behaviourally identical
    per task. *)

val exec_body : (Task.op -> unit) option -> Task.t -> unit
(** Run one task body: the op through [interp] when both are present,
    else the [run] closure. Raises [Invalid_argument] when neither
    applies. *)

val check_bodies : (Task.op -> unit) option -> Dag.t -> unit
(** Validate every task is runnable under [interp] (op, or closure). *)

val with_task_span :
  Xsc_obs.Span.ctx option -> wid:int -> Task.t -> (unit -> 'a) -> 'a
(** Record a phase-["task"] child span of [ctx] around [f] (recorded even
    when [f] raises); identity when [ctx] is [None]. *)

val max_sweeps : int
(** Failed steal sweeps before an idle worker parks. *)

val backoff : int -> unit
(** Exponential [Domain.cpu_relax] pause after the given failed sweep. *)
