(** Shared deadline-aware task pool: one long-lived work-stealing runtime
    serving the DAGs of every in-flight computation at once.

    Where {!Real_exec.run_dataflow} is run-to-completion (spawn domains,
    drain one DAG, barrier, join), the pool keeps a fixed set of
    persistent worker domains and accepts DAG submissions dynamically.
    Each {!submit} registers a job — its DAG, interpreter, deadline and
    completion callback — injects the job's source tasks into a global
    priority queue and returns immediately; tasks from any number of jobs
    interleave on the same Chase–Lev deques, ordered by the composite
    {!Prio} key (request deadline first, flops-weighted bottom level as
    the critical-path tie-break, then FIFO).

    The latency-isolation mechanism: between consecutive local tasks every
    worker makes one atomic-load check whether the injection queue holds
    work with a strictly earlier deadline than its current job; if so it
    parks its popped task back on its own deque and runs the urgent
    arrival first. A small request entering while a large factorization
    streams therefore waits ~one task's service time, not the remainder of
    the large DAG.

    Failure isolation is per job: the first task body of a job that raises
    marks that job aborted; its remaining tasks drain through the deques
    with bodies skipped (so counters complete and the callback fires
    exactly once, with the failure), and every other job is untouched.

    Span parentage is per job: each job carries the span context given at
    submission, re-seated around every one of its task bodies, so
    task-level spans attach to the right request even when many requests'
    tasks interleave on one domain. *)

type t

val create : ?max_jobs:int -> workers:int -> unit -> t
(** Spawn [workers] persistent domains. [max_jobs] (default 4096) bounds
    concurrently registered jobs (slots recycle on completion). Raises
    [Invalid_argument] if [workers < 1] or [max_jobs < 1]. *)

val submit :
  ?interp:(Task.op -> unit) ->
  ?deadline_ns:int ->
  ?sctx:Xsc_obs.Span.ctx ->
  t ->
  Dag.t ->
  on_done:(Real_exec.failure option -> worker:int -> unit) ->
  unit
(** Register a job and inject its sources; returns immediately. [interp]
    executes op-encoded tasks exactly as in {!Real_exec.run_dataflow};
    [deadline_ns] (absolute, monotonic clock; default [max_int]) is the
    EDF component of every task's priority; [sctx] is the span context the
    job's task spans parent onto. [on_done] runs on the pool worker that
    completed (or drained) the last task, with [None] on success or the
    first captured failure; it must be fast and must not block — it may
    {!submit} follow-up jobs (dynamic insertion). An empty DAG completes
    inline on the calling thread ([worker = -1]).

    Raises [Invalid_argument] if a task lacks a body, the pool is shut
    down, or all [max_jobs] slots are in flight. *)

val run :
  ?interp:(Task.op -> unit) -> ?deadline_ns:int -> t -> Dag.t -> Real_exec.stats
(** Blocking convenience: {!submit} then wait for completion; raises
    {!Real_exec.Task_failed} on job failure. Steal/park figures in the
    returned stats are zero — they are pool-lifetime quantities, not
    attributable to one job. Must not be called from a pool worker (a
    worker waiting on its own pool is a lost lane; with one worker, a
    deadlock). *)

val shutdown : t -> unit
(** Reject further submissions, let in-flight jobs drain, then join all
    worker domains. Idempotent; blocks until the workers exit. *)

val live_jobs : t -> int
(** Jobs submitted but not yet completed. *)

val injected_pending : t -> int
(** Entries currently waiting in the injection queue. *)

val workers : t -> int
