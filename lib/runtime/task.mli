(** Tasks: the unit of scheduling.

    A task declares the data it touches as access annotations on abstract
    datum identifiers (tile coordinates, vector chunks, ...). The DAG builder
    derives all dependences from these annotations — the "superscalar"
    data-flow model of PLASMA/QUARK/StarPU that replaces fork-join
    synchronisation.

    A task's body is either a [run] closure (arbitrary host code) or a
    closure-free {!op} variant interpreted by the executor: op-encoded DAGs
    allocate one immediate-tagged word per task body instead of a closure
    block capturing tile views, so building and running a large DAG puts no
    pressure on the GC and the steal loop touches no heap. *)

type access =
  | Read of int
  | Write of int
  | Read_write of int  (** accumulation-style update *)

(** Closure-free encoding of the dense-factorization kernels over tile
    coordinates. Executors receive an interpreter [op -> unit] that binds
    the coordinates to actual storage — the same DAG can therefore run over
    strided or packed tiles, traced or untraced, without rebuilding. *)
type op =
  | Potrf of int  (** Cholesky: factor diagonal tile [k] *)
  | Trsm of int * int
      (** [Trsm (k, i)], Cholesky panel: [A(i,k) <- A(i,k) L(k,k)^-T] *)
  | Syrk of int * int
      (** [Syrk (i, k)], Cholesky update: [A(i,i) -= A(i,k) A(i,k)^T] *)
  | Gemm of int * int * int
      (** [Gemm (i, j, k)]: [A(i,j) -= A(i,k) A(j,k)^T] (Cholesky) or
          [A(i,j) -= A(i,k) A(k,j)] (LU) — the interpreter knows which *)
  | Getrf of int  (** LU: factor diagonal tile [k] (no pivoting) *)
  | Trsm_l of int * int
      (** [Trsm_l (k, j)], LU row panel: [A(k,j) <- L(k,k)^-1 A(k,j)] *)
  | Trsm_u of int * int
      (** [Trsm_u (i, k)], LU column panel: [A(i,k) <- A(i,k) U(k,k)^-1] *)

type t = {
  id : int;
  name : string;  (** kernel name, e.g. ["potrf(2,2)"] — used by traces *)
  flops : float;  (** arithmetic weight, drives simulated durations *)
  bytes : float;  (** datum footprint moved if the task runs remotely *)
  accesses : access list;
  run : (unit -> unit) option;
      (** real closure for host execution; [None] for model-only or
          op-encoded DAGs *)
  op : op option;  (** closure-free body, dispatched via an interpreter *)
}

val make :
  id:int -> name:string -> flops:float -> ?bytes:float -> ?run:(unit -> unit) ->
  ?op:op -> access list -> t

val op_name : op -> string
(** Canonical display name, matching the closure task naming convention
    (["potrf(2,2)"], ["gemm(3,1,0)"], ...). *)

val reads : t -> int list
(** Data read (including read-write). *)

val writes : t -> int list
(** Data written (including read-write). *)

val datum : int -> int -> stride:int -> int
(** Helper to linearise 2-D tile coordinates into datum ids:
    [datum i j ~stride = i * stride + j]. *)
