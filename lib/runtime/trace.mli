(** Execution traces: what ran where and when — the evidence behind the
    utilization plots (dense Gantt for DAG scheduling, comb-shaped gaps for
    fork-join). *)

type entry = { task : int; name : string; worker : int; start : float; finish : float }

type t

val create : workers:int -> t
val add : t -> entry -> unit
val entries : t -> entry list
(** In increasing start order. *)

val makespan : t -> float
val busy_time : t -> float
val utilization : t -> float
(** [busy / (workers * makespan)]; 1.0 is a perfectly packed schedule. *)

val workers : t -> int

val gantt : ?width:int -> t -> string
(** ASCII Gantt chart, one row per worker ([#] busy, [.] idle). *)

val to_chrome_json : t -> string
(** Chrome trace-event JSON (open in chrome://tracing or Perfetto): one
    complete event per task, workers as threads, microsecond timestamps. *)

val to_chrome_json_with : ?extra:string list -> t -> string
(** {!to_chrome_json} with extra pre-rendered trace-event objects merged
    into the same array — used to interleave request-lane span events
    ({!Xsc_obs.Span.chrome_events}, pid 1) with the worker-lane task
    events (pid 0) in one file. *)

val by_kernel : t -> (string * float * int) list
(** Profile summary: per kernel family (the task-name prefix before ['(']),
    total busy time and task count, sorted by descending time — "where did
    the time go". *)

val by_kernel_rates : t -> flops_of:(int -> float) -> (string * float * int * float) list
(** {!by_kernel} extended with achieved flop/s per family:
    [(family, busy_seconds, count, flops_per_second)], where the flops of
    each traced task come from [flops_of task_id] (typically
    [dag.tasks.(id).flops]). This is the measured side of the roofline's
    "achieved vs roof" comparison. *)
