module Clock = Xsc_obs.Clock
module Metrics = Xsc_obs.Metrics
module Tracer = Xsc_obs.Tracer
module Span = Xsc_obs.Span

type stats = {
  elapsed : float;
  tasks : int;
  workers : int;
  steals : int;
  steal_attempts : int;
  parks : int;
  park_time : float;
  trace : Trace.t option;
}

type failure = {
  failed_task : int;
  failed_name : string;
  failed_worker : int;
  error : exn;
}

exception Task_failed of failure

let () =
  Printexc.register_printer (function
    | Task_failed f ->
      Some
        (Printf.sprintf "Real_exec.Task_failed(task %d %s on worker %d: %s)"
           f.failed_task f.failed_name f.failed_worker (Printexc.to_string f.error))
    | _ -> None)

(* Scheduler counters live in the process-wide registry (cumulative);
   per-run stats are before/after deltas. Shards are indexed by worker id,
   so a pool of up to 16 workers never contends on a shard. *)
let m_tasks = Metrics.counter "runtime.tasks_executed"
let m_steals = Metrics.counter "runtime.steals"
let m_steal_attempts = Metrics.counter "runtime.steal_attempts"
let m_parks = Metrics.counter "runtime.parks"
let m_park_ns = Metrics.counter "runtime.park_ns"
let m_barrier_ns = Metrics.counter "runtime.barrier_wait_ns"
let m_failures = Metrics.counter "runtime.task_failures"

type baseline = { b_steals : int; b_attempts : int; b_parks : int; b_park_ns : int }

let read_baseline () =
  {
    b_steals = Metrics.counter_value m_steals;
    b_attempts = Metrics.counter_value m_steal_attempts;
    b_parks = Metrics.counter_value m_parks;
    b_park_ns = Metrics.counter_value m_park_ns;
  }

let closure_of (task : Task.t) =
  match task.Task.run with
  | Some f -> f
  | None -> invalid_arg ("Real_exec: task without closure: " ^ task.Task.name)

(* Task bodies come in two forms: a [run] closure, or a closure-free
   [Task.op] dispatched through the caller's interpreter. With an
   interpreter present the op wins (the DAG may carry closures too, e.g.
   for an oracle comparison); without one, only closures are runnable. The
   dispatch is one branch on an immediate tag — no allocation, nothing for
   the GC to scan in the steal loop. *)
let[@inline] exec_body interp (task : Task.t) =
  match interp with
  | Some f -> (
    match task.Task.op with Some op -> f op | None -> closure_of task ())
  | None -> closure_of task ()

let check_bodies interp (dag : Dag.t) =
  Array.iter
    (fun (t : Task.t) ->
      let ok =
        match (interp, t.Task.op) with
        | Some _, Some _ -> true
        | _ -> Option.is_some t.Task.run
      in
      if not ok then invalid_arg ("Real_exec: task without body: " ^ t.Task.name))
    dag.Dag.tasks

let want_trace = function Some b -> b | None -> Tracer.enabled_by_env ()

(* Every event site is a [match] on the option, so with tracing off the
   executors pay one branch per site and no clock reads — that is the whole
   <2% disabled-overhead budget. *)
let[@inline] event tracer ~domain kind ~arg =
  match tracer with None -> () | Some t -> Tracer.record t ~domain kind ~arg

(* Causal spans: the submitting domain's ambient request context is
   captured once at run entry and re-seated in every spawned worker, so a
   task executed by a steal still parents onto the request that submitted
   the DAG. Only active when a collector is installed AND the submitter
   had a context — otherwise the per-task cost is the [None] branch. *)
let span_ctx () = match Span.installed () with None -> None | Some _ -> Span.current ()

let[@inline] with_task_span sctx ~wid (task : Task.t) f =
  match sctx with
  | None -> f ()
  | Some ctx ->
    let t0 = Clock.now_ns () in
    let note () =
      match Span.installed () with
      | None -> ()
      | Some col ->
        let c = Span.child ctx in
        Span.record col
          {
            Span.request = c.Span.request;
            span = c.Span.span;
            parent = c.Span.parent;
            phase = "task";
            name = task.Task.name;
            lane = wid;
            attempt = 0;
            start_ns = t0;
            finish_ns = Clock.now_ns ();
          }
    in
    (match f () with
    | v ->
      note ();
      v
    | exception e ->
      note ();
      raise e)

(* Ring capacity per worker: every task contributes at most 2 events to one
   ring, steals at most 1, and park/sweep events are rare by construction
   (a park costs a condvar round trip). The slack covers pathological
   starvation; if it ever overflows, Tracer.dropped reports it and the
   merged trace is marked partial rather than wrong. *)
let ring_capacity n = (4 * n) + 4096

(* Merge per-domain rings into a Trace.t: pair each Task_start with the
   following Task_finish of the same id (task bodies never nest within a
   worker), timestamps rebased to [t0_ns] so the Gantt starts at zero. *)
let trace_of_tracer (dag : Dag.t) ~workers ~t0_ns tracer =
  let tr = Trace.create ~workers in
  for d = 0 to workers - 1 do
    let pending_id = ref (-1) and pending_ns = ref 0 in
    List.iter
      (fun (e : Tracer.event) ->
        match e.Tracer.kind with
        | Tracer.Task_start ->
          pending_id := e.arg;
          pending_ns := e.t_ns
        | Tracer.Task_finish when !pending_id = e.arg ->
          (* clamp to the timed region: a fork-join worker can start its
             first task a hair before worker 0 records t0 *)
          let start = Float.max 0.0 (Clock.ns_to_s (!pending_ns - t0_ns)) in
          let finish = Float.max start (Clock.ns_to_s (e.t_ns - t0_ns)) in
          Trace.add tr
            {
              Trace.task = e.arg;
              name = dag.Dag.tasks.(e.arg).Task.name;
              worker = d;
              start;
              finish;
            };
          pending_id := -1
        | _ -> ())
      (Tracer.events tracer ~domain:d)
  done;
  tr

let run_sequential ?interp ?trace (dag : Dag.t) =
  check_bodies interp dag;
  let n = Dag.n_tasks dag in
  let tracer =
    if want_trace trace && n > 0 then Some (Tracer.create ~domains:1 ~capacity:(ring_capacity n))
    else None
  in
  let sctx = span_ctx () in
  let t0 = Clock.now_ns () in
  Array.iter
    (fun task ->
      event tracer ~domain:0 Tracer.Task_start ~arg:task.Task.id;
      (match with_task_span sctx ~wid:0 task (fun () -> exec_body interp task) with
      | () -> ()
      | exception e ->
        Metrics.incr m_failures;
        raise
          (Task_failed
             {
               failed_task = task.Task.id;
               failed_name = task.Task.name;
               failed_worker = 0;
               error = e;
             }));
      event tracer ~domain:0 Tracer.Task_finish ~arg:task.Task.id)
    dag.Dag.tasks;
  let elapsed = Clock.ns_to_s (Clock.now_ns () - t0) in
  Metrics.add m_tasks n;
  {
    elapsed;
    tasks = n;
    workers = 1;
    steals = 0;
    steal_attempts = 0;
    parks = 0;
    park_time = 0.0;
    trace = Option.map (trace_of_tracer dag ~workers:1 ~t0_ns:t0) tracer;
  }

(* How many failed steal sweeps before a worker parks, with exponential
   backoff between sweeps. Parking is the slow path (a mutex + condvar
   round trip against one CAS per steal), so an idle worker re-probes the
   victims a few times first — but each failed sweep doubles the pause
   before the next, so a starved worker stops hammering the victims'
   deque tops with CAS traffic. BENCH_0002 measured 16 attempts per
   successful steal with fixed 32-sweep spinning; bounded backoff cuts
   the probe budget per idle episode ~5x while the growing pauses keep
   the latency to discover new work comparable. *)
let max_sweeps = 6

let[@inline] backoff sweeps =
  let spins = 16 lsl min sweeps 8 in
  for _ = 1 to spins do
    Domain.cpu_relax ()
  done

let run_dataflow ?interp ?priority ?trace ~workers (dag : Dag.t) =
  if workers < 1 then invalid_arg "Real_exec.run_dataflow: workers < 1";
  let n = Dag.n_tasks dag in
  check_bodies interp dag;
  if n = 0 then
    {
      elapsed = 0.0;
      tasks = 0;
      workers;
      steals = 0;
      steal_attempts = 0;
      parks = 0;
      park_time = 0.0;
      trace = None;
    }
  else begin
    let tracer =
      if want_trace trace then Some (Tracer.create ~domains:workers ~capacity:(ring_capacity n))
      else None
    in
    let sctx = span_ctx () in
    let remaining = Array.map Atomic.make dag.Dag.indegree in
    let completed = Atomic.make 0 in
    (* Abort protocol: the first task body that raises CASes its failure in,
       sets [aborted] and broadcasts the idle condvar. [aborted] folds into
       [finished ()], so every worker — popping locally, mid-steal-sweep or
       waking from a park — observes the abort on its next check and falls
       through to the joins; leftover deque entries are simply dropped. The
       run then re-raises [Task_failed] after every domain has joined, so no
       worker is left parked on a condvar that nobody will signal. *)
    let aborted = Atomic.make false in
    let failure = Atomic.make None in
    let finished () = Atomic.get completed >= n || Atomic.get aborted in
    (* Per-worker deques: a worker pushes the successors it makes ready onto
       its own bottom (their input tiles are warm in this core's cache), pops
       LIFO, and steals FIFO from the top of a random victim — stolen tasks
       are the oldest, hence the coldest, so stealing them costs the least
       locality. Sized so no deque can ever grow mid-run. *)
    let deques = Array.init workers (fun _ -> Deque.create ~capacity:(n + 1) ()) in
    (* Spin-then-park idling: [parked] is the Dekker-style handshake with
       producers — a parker increments it *before* rescanning the deques, a
       producer pushes *before* reading it, so (with SC atomics) either the
       producer sees the parker and broadcasts, or the parker sees the new
       work and never sleeps. The condvar is hit only when the whole system
       runs dry, not on every push like a global-queue executor. *)
    let parked = Atomic.make 0 in
    let park_mutex = Mutex.create () in
    let park_cond = Condition.create () in
    let some_work () = Array.exists (fun d -> Deque.size d > 0) deques in
    let wake_parked () =
      if Atomic.get parked > 0 then begin
        Mutex.lock park_mutex;
        Condition.broadcast park_cond;
        Mutex.unlock park_mutex
      end
    in
    (* Newly-ready successors are pushed in ascending priority so the
       highest-priority child is on top of the LIFO end — it runs next,
       on this worker, while its parent's output is still in cache. *)
    let ordered ids =
      match priority with
      | None -> ids
      | Some p -> List.stable_sort (fun a b -> compare (p a) (p b)) ids
    in
    let complete wid id =
      let ready =
        List.filter
          (fun s -> Atomic.fetch_and_add remaining.(s) (-1) = 1)
          dag.Dag.succs.(id)
      in
      (match ready with
      | [] -> ()
      | ready ->
        List.iter (Deque.push deques.(wid)) (ordered ready);
        wake_parked ());
      if Atomic.fetch_and_add completed 1 = n - 1 then begin
        (* everything done: wake all sleepers so they can exit *)
        Mutex.lock park_mutex;
        Condition.broadcast park_cond;
        Mutex.unlock park_mutex
      end
    in
    let fail wid id e =
      let f =
        {
          failed_task = id;
          failed_name = dag.Dag.tasks.(id).Task.name;
          failed_worker = wid;
          error = e;
        }
      in
      ignore (Atomic.compare_and_set failure None (Some f));
      Metrics.incr m_failures;
      Atomic.set aborted true;
      (* wake every parked worker so it observes the abort and exits; the
         broadcast cannot be lost — a parker holds the mutex from its
         [finished] recheck until Condition.wait releases it *)
      Mutex.lock park_mutex;
      Condition.broadcast park_cond;
      Mutex.unlock park_mutex
    in
    let run_task wid id =
      event tracer ~domain:wid Tracer.Task_start ~arg:id;
      match
        with_task_span sctx ~wid dag.Dag.tasks.(id) (fun () -> exec_body interp dag.Dag.tasks.(id))
      with
      | () ->
        (* finish marks the closure only: the per-kernel profile measures
           kernel time, successor release is scheduler time *)
        event tracer ~domain:wid Tracer.Task_finish ~arg:id;
        complete wid id
      | exception e ->
        event tracer ~domain:wid Tracer.Task_finish ~arg:id;
        fail wid id e
    in
    let worker wid =
      let my = deques.(wid) in
      (* worker-local statistics, flushed once to the registry at exit; the
         hot loop touches no shared counter *)
      let l_steals = ref 0 and l_attempts = ref 0 in
      let l_parks = ref 0 and l_park_ns = ref 0 and l_tasks = ref 0 in
      (* per-worker xorshift for victim selection; no shared RNG state *)
      let rand_state = ref ((wid * 0x9E3779B1) lor 1) in
      let rand_victim () =
        let x = !rand_state in
        let x = x lxor (x lsl 13) in
        let x = x lxor (x lsr 17) in
        let x = x lxor (x lsl 5) in
        rand_state := x;
        let v = x land max_int mod (workers - 1) in
        if v >= wid then v + 1 else v
      in
      let park () =
        Mutex.lock park_mutex;
        Atomic.incr parked;
        (* recheck under the lock: a producer that missed our increment
           published its push before reading [parked], so we see it here *)
        if not (finished ()) && not (some_work ()) then begin
          incr l_parks;
          event tracer ~domain:wid Tracer.Park ~arg:0;
          let t0 = Clock.now_ns () in
          Condition.wait park_cond park_mutex;
          l_park_ns := !l_park_ns + (Clock.now_ns () - t0);
          event tracer ~domain:wid Tracer.Unpark ~arg:0
        end;
        Atomic.decr parked;
        Mutex.unlock park_mutex
      in
      let rec local () =
        if Atomic.get aborted then ()
        else
          match Deque.pop my with
          | Some id ->
            incr l_tasks;
            run_task wid id;
            local ()
          | None -> if not (finished ()) then hunt 0
      and hunt sweeps =
        if finished () then ()
        else if workers = 1 then begin
          (* no victims to steal from: wait for the last closure to finish *)
          park ();
          hunt 0
        end
        else if sweeps >= max_sweeps then begin
          park ();
          hunt 0
        end
        else begin
          let rec sweep attempts =
            if attempts >= workers - 1 then begin
              event tracer ~domain:wid Tracer.Steal_fail ~arg:sweeps;
              backoff sweeps;
              hunt (sweeps + 1)
            end
            else begin
              let victim = rand_victim () in
              incr l_attempts;
              match Deque.steal deques.(victim) with
              | Deque.Stolen id ->
                incr l_steals;
                incr l_tasks;
                event tracer ~domain:wid Tracer.Steal ~arg:victim;
                run_task wid id;
                local ()
              | Deque.Empty | Deque.Abort -> sweep (attempts + 1)
            end
          in
          sweep 0
        end
      in
      local ();
      Metrics.add_to_shard m_steals ~shard:wid !l_steals;
      Metrics.add_to_shard m_steal_attempts ~shard:wid !l_attempts;
      Metrics.add_to_shard m_parks ~shard:wid !l_parks;
      Metrics.add_to_shard m_park_ns ~shard:wid !l_park_ns;
      Metrics.add_to_shard m_tasks ~shard:wid !l_tasks
    in
    (* Seed the sources round-robin across the deques (pre-spawn, so no
       ownership races), each deque's share in ascending priority so its
       best task sits at the LIFO end. *)
    let sources = ordered (Dag.sources dag) in
    List.iteri (fun i id -> Deque.push deques.(i mod workers) id) sources;
    let before = read_baseline () in
    let t0 = Clock.now_ns () in
    let domains =
      List.init
        (workers - 1)
        (fun i ->
          Domain.spawn (fun () ->
              Span.set_current sctx;
              worker (i + 1)))
    in
    worker 0;
    List.iter Domain.join domains;
    let elapsed = Clock.ns_to_s (Clock.now_ns () - t0) in
    (match Atomic.get failure with Some f -> raise (Task_failed f) | None -> ());
    assert (Atomic.get completed = n);
    {
      elapsed;
      tasks = n;
      workers;
      steals = Metrics.counter_value m_steals - before.b_steals;
      steal_attempts = Metrics.counter_value m_steal_attempts - before.b_attempts;
      parks = Metrics.counter_value m_parks - before.b_parks;
      park_time = Clock.ns_to_s (Metrics.counter_value m_park_ns - before.b_park_ns);
      trace = Option.map (trace_of_tracer dag ~workers ~t0_ns:t0) tracer;
    }
  end

(* Sense-reversing barrier for the fork-join pool. Its cost *is* the
   phenomenon run_forkjoin measures, so a plain mutex + condvar is the
   honest implementation of the classical BSP barrier. *)
type barrier = {
  bar_mutex : Mutex.t;
  bar_cond : Condition.t;
  mutable bar_count : int;
  mutable bar_sense : bool;
  bar_parties : int;
}

let barrier_make parties =
  {
    bar_mutex = Mutex.create ();
    bar_cond = Condition.create ();
    bar_count = 0;
    bar_sense = false;
    bar_parties = parties;
  }

let barrier_wait b =
  Mutex.lock b.bar_mutex;
  let my_sense = not b.bar_sense in
  b.bar_count <- b.bar_count + 1;
  if b.bar_count = b.bar_parties then begin
    b.bar_count <- 0;
    b.bar_sense <- my_sense;
    Condition.broadcast b.bar_cond
  end
  else
    while b.bar_sense <> my_sense do
      Condition.wait b.bar_cond b.bar_mutex
    done;
  Mutex.unlock b.bar_mutex

let run_forkjoin ?interp ?trace ~workers (dag : Dag.t) =
  if workers < 1 then invalid_arg "Real_exec.run_forkjoin: workers < 1";
  check_bodies interp dag;
  let n = Dag.n_tasks dag in
  let levels = Array.map Array.of_list dag.Dag.levels in
  let nlevels = Array.length levels in
  if n = 0 || workers = 1 then begin
    let tracer =
      if want_trace trace && n > 0 then Some (Tracer.create ~domains:1 ~capacity:(ring_capacity n))
      else None
    in
    let sctx = span_ctx () in
    let t0 = Clock.now_ns () in
    Array.iter
      (Array.iter (fun id ->
           event tracer ~domain:0 Tracer.Task_start ~arg:id;
           (match
              with_task_span sctx ~wid:0 dag.Dag.tasks.(id) (fun () ->
                  exec_body interp dag.Dag.tasks.(id))
            with
           | () -> ()
           | exception e ->
             Metrics.incr m_failures;
             raise
               (Task_failed
                  {
                    failed_task = id;
                    failed_name = dag.Dag.tasks.(id).Task.name;
                    failed_worker = 0;
                    error = e;
                  }));
           event tracer ~domain:0 Tracer.Task_finish ~arg:id))
      levels;
    let elapsed = Clock.ns_to_s (Clock.now_ns () - t0) in
    Metrics.add m_tasks n;
    {
      elapsed;
      tasks = n;
      workers;
      steals = 0;
      steal_attempts = 0;
      parks = 0;
      park_time = 0.0;
      trace = Option.map (trace_of_tracer dag ~workers:1 ~t0_ns:t0) tracer;
    }
  end
  else begin
    let tracer =
      if want_trace trace then
        Some (Tracer.create ~domains:workers ~capacity:((2 * n) + (4 * nlevels) + 1024))
      else None
    in
    (* One fixed pool of domains, one barrier per level: the BSP-vs-DAG gap
       then measures barrier idle time, not repeated domain spawn cost. *)
    let barrier = barrier_make workers in
    let barrier_ns = Array.make workers 0 in
    (* On a task-body exception the failing worker records the failure and
       raises the [aborted] flag, but every worker — including the failing
       one — keeps attending every remaining level barrier (skipping the
       task bodies): peers are never left waiting on a barrier that will
       not fill, and the joins below always complete. *)
    let aborted = Atomic.make false in
    let failure = Atomic.make None in
    let sctx = span_ctx () in
    let worker w =
      for l = 0 to nlevels - 1 do
        let tasks = levels.(l) in
        let ntasks = Array.length tasks in
        let lo = w * ntasks / workers and hi = (w + 1) * ntasks / workers in
        for i = lo to hi - 1 do
          let id = tasks.(i) in
          if not (Atomic.get aborted) then begin
            event tracer ~domain:w Tracer.Task_start ~arg:id;
            (match
               with_task_span sctx ~wid:w dag.Dag.tasks.(id) (fun () ->
                   exec_body interp dag.Dag.tasks.(id))
             with
            | () -> ()
            | exception e ->
              let f =
                {
                  failed_task = id;
                  failed_name = dag.Dag.tasks.(id).Task.name;
                  failed_worker = w;
                  error = e;
                }
              in
              ignore (Atomic.compare_and_set failure None (Some f));
              Metrics.incr m_failures;
              Atomic.set aborted true);
            event tracer ~domain:w Tracer.Task_finish ~arg:id
          end
        done;
        (* the wait below *is* the BSP idle time the trace should show *)
        event tracer ~domain:w Tracer.Barrier_enter ~arg:l;
        let t0 = Clock.now_ns () in
        barrier_wait barrier;
        barrier_ns.(w) <- barrier_ns.(w) + (Clock.now_ns () - t0);
        event tracer ~domain:w Tracer.Barrier_exit ~arg:l
      done
    in
    let domains =
      List.init (workers - 1) (fun w ->
          Domain.spawn (fun () ->
              Span.set_current sctx;
              (* start barrier: the timed region excludes the one-off spawns *)
              barrier_wait barrier;
              worker (w + 1)))
    in
    barrier_wait barrier;
    let t0 = Clock.now_ns () in
    worker 0;
    (* worker 0 passed the final barrier, so every task has completed *)
    let elapsed = Clock.ns_to_s (Clock.now_ns () - t0) in
    List.iter Domain.join domains;
    (match Atomic.get failure with Some f -> raise (Task_failed f) | None -> ());
    let total_barrier_ns = Array.fold_left ( + ) 0 barrier_ns in
    Metrics.add m_tasks n;
    Metrics.add m_barrier_ns total_barrier_ns;
    {
      elapsed;
      tasks = n;
      workers;
      steals = 0;
      steal_attempts = 0;
      parks = 0;
      park_time = Clock.ns_to_s total_barrier_ns;
      trace = Option.map (trace_of_tracer dag ~workers ~t0_ns:t0) tracer;
    }
  end

let default_workers () = min 8 (Domain.recommended_domain_count ())
