type stats = {
  elapsed : float;
  tasks : int;
  workers : int;
  steals : int;
  parks : int;
}

let now () = Unix.gettimeofday ()

let closure_of (task : Task.t) =
  match task.Task.run with
  | Some f -> f
  | None -> invalid_arg ("Real_exec: task without closure: " ^ task.Task.name)

let check_closures (dag : Dag.t) =
  Array.iter (fun t -> ignore (closure_of t : unit -> unit)) dag.Dag.tasks

let run_sequential (dag : Dag.t) =
  check_closures dag;
  let t0 = now () in
  Array.iter (fun task -> closure_of task ()) dag.Dag.tasks;
  { elapsed = now () -. t0; tasks = Dag.n_tasks dag; workers = 1; steals = 0; parks = 0 }

(* How many failed steal sweeps before a worker parks. Parking is the slow
   path: steals are one CAS, a park is a mutex + condvar round trip, so we
   spin over the victims a few times first. *)
let spin_sweeps = 32

let run_dataflow ?priority ~workers (dag : Dag.t) =
  if workers < 1 then invalid_arg "Real_exec.run_dataflow: workers < 1";
  let n = Dag.n_tasks dag in
  check_closures dag;
  if n = 0 then { elapsed = 0.0; tasks = 0; workers; steals = 0; parks = 0 }
  else begin
    let remaining = Array.map Atomic.make dag.Dag.indegree in
    let completed = Atomic.make 0 in
    let finished () = Atomic.get completed >= n in
    (* Per-worker deques: a worker pushes the successors it makes ready onto
       its own bottom (their input tiles are warm in this core's cache), pops
       LIFO, and steals FIFO from the top of a random victim — stolen tasks
       are the oldest, hence the coldest, so stealing them costs the least
       locality. Sized so no deque can ever grow mid-run. *)
    let deques = Array.init workers (fun _ -> Deque.create ~capacity:(n + 1) ()) in
    let steal_count = Array.make workers 0 in
    let park_count = Array.make workers 0 in
    (* Spin-then-park idling: [parked] is the Dekker-style handshake with
       producers — a parker increments it *before* rescanning the deques, a
       producer pushes *before* reading it, so (with SC atomics) either the
       producer sees the parker and broadcasts, or the parker sees the new
       work and never sleeps. The condvar is hit only when the whole system
       runs dry, not on every push like a global-queue executor. *)
    let parked = Atomic.make 0 in
    let park_mutex = Mutex.create () in
    let park_cond = Condition.create () in
    let some_work () = Array.exists (fun d -> Deque.size d > 0) deques in
    let wake_parked () =
      if Atomic.get parked > 0 then begin
        Mutex.lock park_mutex;
        Condition.broadcast park_cond;
        Mutex.unlock park_mutex
      end
    in
    (* Newly-ready successors are pushed in ascending priority so the
       highest-priority child is on top of the LIFO end — it runs next,
       on this worker, while its parent's output is still in cache. *)
    let ordered ids =
      match priority with
      | None -> ids
      | Some p -> List.stable_sort (fun a b -> compare (p a) (p b)) ids
    in
    let complete wid id =
      let ready =
        List.filter
          (fun s -> Atomic.fetch_and_add remaining.(s) (-1) = 1)
          dag.Dag.succs.(id)
      in
      (match ready with
      | [] -> ()
      | ready ->
        List.iter (Deque.push deques.(wid)) (ordered ready);
        wake_parked ());
      if Atomic.fetch_and_add completed 1 = n - 1 then begin
        (* everything done: wake all sleepers so they can exit *)
        Mutex.lock park_mutex;
        Condition.broadcast park_cond;
        Mutex.unlock park_mutex
      end
    in
    let run_task wid id =
      closure_of dag.Dag.tasks.(id) ();
      complete wid id
    in
    let worker wid =
      let my = deques.(wid) in
      (* per-worker xorshift for victim selection; no shared RNG state *)
      let rand_state = ref ((wid * 0x9E3779B1) lor 1) in
      let rand_victim () =
        let x = !rand_state in
        let x = x lxor (x lsl 13) in
        let x = x lxor (x lsr 17) in
        let x = x lxor (x lsl 5) in
        rand_state := x;
        let v = x land max_int mod (workers - 1) in
        if v >= wid then v + 1 else v
      in
      let park () =
        Mutex.lock park_mutex;
        Atomic.incr parked;
        (* recheck under the lock: a producer that missed our increment
           published its push before reading [parked], so we see it here *)
        if not (finished ()) && not (some_work ()) then begin
          park_count.(wid) <- park_count.(wid) + 1;
          Condition.wait park_cond park_mutex
        end;
        Atomic.decr parked;
        Mutex.unlock park_mutex
      in
      let rec local () =
        match Deque.pop my with
        | Some id ->
          run_task wid id;
          local ()
        | None -> if not (finished ()) then hunt 0
      and hunt sweeps =
        if finished () then ()
        else if workers = 1 then begin
          (* no victims to steal from: wait for the last closure to finish *)
          park ();
          hunt 0
        end
        else if sweeps >= spin_sweeps then begin
          park ();
          hunt 0
        end
        else begin
          let rec sweep attempts =
            if attempts >= workers - 1 then begin
              Domain.cpu_relax ();
              hunt (sweeps + 1)
            end
            else
              match Deque.steal deques.(rand_victim ()) with
              | Deque.Stolen id ->
                steal_count.(wid) <- steal_count.(wid) + 1;
                run_task wid id;
                local ()
              | Deque.Empty | Deque.Abort -> sweep (attempts + 1)
          in
          sweep 0
        end
      in
      local ()
    in
    (* Seed the sources round-robin across the deques (pre-spawn, so no
       ownership races), each deque's share in ascending priority so its
       best task sits at the LIFO end. *)
    let sources = ordered (Dag.sources dag) in
    List.iteri (fun i id -> Deque.push deques.(i mod workers) id) sources;
    let t0 = now () in
    let domains = List.init (workers - 1) (fun i -> Domain.spawn (fun () -> worker (i + 1))) in
    worker 0;
    List.iter Domain.join domains;
    let elapsed = now () -. t0 in
    assert (Atomic.get completed = n);
    {
      elapsed;
      tasks = n;
      workers;
      steals = Array.fold_left ( + ) 0 steal_count;
      parks = Array.fold_left ( + ) 0 park_count;
    }
  end

(* Sense-reversing barrier for the fork-join pool. Its cost *is* the
   phenomenon run_forkjoin measures, so a plain mutex + condvar is the
   honest implementation of the classical BSP barrier. *)
type barrier = {
  bar_mutex : Mutex.t;
  bar_cond : Condition.t;
  mutable bar_count : int;
  mutable bar_sense : bool;
  bar_parties : int;
}

let barrier_make parties =
  {
    bar_mutex = Mutex.create ();
    bar_cond = Condition.create ();
    bar_count = 0;
    bar_sense = false;
    bar_parties = parties;
  }

let barrier_wait b =
  Mutex.lock b.bar_mutex;
  let my_sense = not b.bar_sense in
  b.bar_count <- b.bar_count + 1;
  if b.bar_count = b.bar_parties then begin
    b.bar_count <- 0;
    b.bar_sense <- my_sense;
    Condition.broadcast b.bar_cond
  end
  else
    while b.bar_sense <> my_sense do
      Condition.wait b.bar_cond b.bar_mutex
    done;
  Mutex.unlock b.bar_mutex

let run_forkjoin ~workers (dag : Dag.t) =
  if workers < 1 then invalid_arg "Real_exec.run_forkjoin: workers < 1";
  check_closures dag;
  let levels = Array.map Array.of_list dag.Dag.levels in
  let nlevels = Array.length levels in
  if Dag.n_tasks dag = 0 || workers = 1 then begin
    let t0 = now () in
    Array.iter (Array.iter (fun id -> closure_of dag.Dag.tasks.(id) ())) levels;
    { elapsed = now () -. t0; tasks = Dag.n_tasks dag; workers; steals = 0; parks = 0 }
  end
  else begin
    (* One fixed pool of domains, one barrier per level: the BSP-vs-DAG gap
       then measures barrier idle time, not repeated domain spawn cost. *)
    let barrier = barrier_make workers in
    let worker w =
      for l = 0 to nlevels - 1 do
        let tasks = levels.(l) in
        let ntasks = Array.length tasks in
        let lo = w * ntasks / workers and hi = (w + 1) * ntasks / workers in
        for i = lo to hi - 1 do
          closure_of dag.Dag.tasks.(tasks.(i)) ()
        done;
        barrier_wait barrier
      done
    in
    let domains =
      List.init (workers - 1) (fun w ->
          Domain.spawn (fun () ->
              (* start barrier: the timed region excludes the one-off spawns *)
              barrier_wait barrier;
              worker (w + 1)))
    in
    barrier_wait barrier;
    let t0 = now () in
    worker 0;
    (* worker 0 passed the final barrier, so every task has completed *)
    let elapsed = now () -. t0 in
    List.iter Domain.join domains;
    { elapsed; tasks = Dag.n_tasks dag; workers; steals = 0; parks = 0 }
  end

let default_workers () = min 8 (Domain.recommended_domain_count ())
