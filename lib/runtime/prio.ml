(* Composite task priority for the shared deadline-aware pool.

   Ordering, most significant first:
   - [deadline_ns] ascending — EDF dominates: a task belonging to a
     request due sooner always outranks one due later, however deep the
     later one sits on its own critical path;
   - [bl] descending — within a deadline, the flops-weighted bottom level
     (critical-path distance to the job's sink, normalised per job):
     panel factorizations and the updates feeding them run before
     trailing-matrix updates, the list-scheduling heuristic the
     run-to-completion executor already applies per DAG;
   - [seq] ascending — submission order of the owning job: equal-deadline
     equal-criticality work dispatches FIFO, so no request is overtaken
     by an equally urgent latecomer;
   - [tid] ascending — program order within one job, the final total-order
     tie-break (two ready siblings of one job with equal bottom level). *)

type t = {
  deadline_ns : int;
  bl : int;
  seq : int;
  tid : int;
}

let make ~deadline_ns ~bl ~seq ~tid = { deadline_ns; bl; seq; tid }

(* Smaller = more urgent (min-heap convention). *)
let compare a b =
  if a.deadline_ns <> b.deadline_ns then Stdlib.compare a.deadline_ns b.deadline_ns
  else if a.bl <> b.bl then Stdlib.compare b.bl a.bl (* deeper bottom level first *)
  else if a.seq <> b.seq then Stdlib.compare a.seq b.seq
  else Stdlib.compare a.tid b.tid

let before a b = compare a b < 0

(* Per-job bottom-level ranks, normalised to a common [0, 1e6] integer
   scale (flops-weighted bottom level over the job's critical path) so the
   tie-break is comparable across jobs of different absolute flop counts —
   the same normalisation [Runtime_api.critical_path_priority] applies
   within one run-to-completion DAG. *)
let bl_ranks (dag : Dag.t) =
  let bl = Dag.bottom_level dag in
  let cp = Dag.critical_path_flops dag in
  if cp <= 0.0 then Array.make (Dag.n_tasks dag) 0
  else Array.map (fun b -> int_of_float (1e6 *. b /. cp)) bl

let to_string k =
  Printf.sprintf "{deadline=%d bl=%d seq=%d tid=%d}" k.deadline_ns k.bl k.seq k.tid
