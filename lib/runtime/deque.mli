(** Chase–Lev work-stealing deque of task ids.

    Single-owner discipline: exactly one domain may call {!push} and {!pop}
    (the owner, operating LIFO on the bottom); any number of other domains
    may call {!steal} (thieves, operating FIFO on the top). The
    implementation is the classic Chase–Lev circular-array algorithm on
    OCaml [Atomic]s: the owner's fast path is two atomic reads and one
    atomic write, thieves serialise only on a compare-and-set of the top
    index. The buffer grows geometrically; old buffers are reclaimed by the
    GC, which sidesteps the memory-reclamation subtlety of the original
    C algorithm. *)

type t

type steal_result =
  | Stolen of int  (** the oldest task id, removed exactly once *)
  | Empty  (** the deque looked empty — try another victim *)
  | Abort  (** lost a race with the owner or another thief — retry is fine *)

val create : ?capacity:int -> unit -> t
(** [capacity] (default 64) is rounded up to a power of two. The deque
    grows on demand, so this is only the initial allocation. *)

val push : t -> int -> unit
(** Owner only: push onto the bottom. *)

val pop : t -> int option
(** Owner only: pop the most recently pushed id (LIFO), [None] if empty. *)

val steal : t -> steal_result
(** Any domain: take the oldest id (FIFO). *)

val size : t -> int
(** Racy estimate of the current length; safe from any domain. Used for
    idle-worker heuristics, never for correctness. *)
