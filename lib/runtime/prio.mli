(** Composite task priority key for the shared deadline-aware task pool.

    Lexicographic, most significant first: request deadline ascending
    (EDF dominates — an earlier deadline beats any critical-path depth),
    then flops-weighted bottom level descending (within a deadline the
    critical path runs first), then job submission sequence ascending
    (FIFO between equal-priority jobs), then task id ascending (program
    order inside one job). Smaller compares as more urgent. *)

type t = {
  deadline_ns : int;  (** owning request's absolute deadline *)
  bl : int;  (** normalised bottom-level rank (0..1e6), deeper = larger *)
  seq : int;  (** owning job's submission sequence number *)
  tid : int;  (** task id within the job *)
}

val make : deadline_ns:int -> bl:int -> seq:int -> tid:int -> t

val compare : t -> t -> int
(** Total order; negative when the first key is more urgent. *)

val before : t -> t -> bool
(** [compare a b < 0]. *)

val bl_ranks : Dag.t -> int array
(** Per-task bottom-level ranks normalised to [0, 1e6] over the DAG's
    critical path (comparable across jobs of different sizes). *)

val to_string : t -> string
