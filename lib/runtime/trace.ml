type entry = { task : int; name : string; worker : int; start : float; finish : float }

type t = { workers : int; mutable entries : entry list; mutable makespan : float; mutable busy : float }

let create ~workers =
  if workers <= 0 then invalid_arg "Trace.create: workers must be positive";
  { workers; entries = []; makespan = 0.0; busy = 0.0 }

let add t e =
  if e.finish < e.start then invalid_arg "Trace.add: finish before start";
  if e.worker < 0 || e.worker >= t.workers then invalid_arg "Trace.add: bad worker";
  t.entries <- e :: t.entries;
  if e.finish > t.makespan then t.makespan <- e.finish;
  t.busy <- t.busy +. (e.finish -. e.start)

let entries t = List.sort (fun a b -> compare a.start b.start) t.entries

let makespan t = t.makespan
let busy_time t = t.busy

let utilization t =
  if t.makespan <= 0.0 then 0.0 else t.busy /. (float_of_int t.workers *. t.makespan)

let workers t = t.workers

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_chrome_json_with ?(extra = []) t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf
           {|{"name":"%s","ph":"X","ts":%.3f,"dur":%.3f,"pid":0,"tid":%d,"args":{"task":%d}}|}
           (json_escape e.name) (e.start *. 1e6)
           ((e.finish -. e.start) *. 1e6)
           e.worker e.task))
    (entries t);
  List.iteri
    (fun i s ->
      if i > 0 || t.entries <> [] then Buffer.add_string buf ",\n";
      Buffer.add_string buf s)
    extra;
  Buffer.add_string buf "]";
  Buffer.contents buf

let to_chrome_json t = to_chrome_json_with t

let family_of name =
  match String.index_opt name '(' with
  | Some i -> String.sub name 0 i
  | None -> name

let by_kernel t =
  let tbl : (string, float * int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let family = family_of e.name in
      let time, count = Option.value ~default:(0.0, 0) (Hashtbl.find_opt tbl family) in
      Hashtbl.replace tbl family (time +. (e.finish -. e.start), count + 1))
    t.entries;
  Hashtbl.fold (fun name (time, count) acc -> (name, time, count) :: acc) tbl []
  |> List.sort (fun (_, t1, _) (_, t2, _) -> compare t2 t1)

let by_kernel_rates t ~flops_of =
  let tbl : (string, float * int * float) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let family = family_of e.name in
      let time, count, flops =
        Option.value ~default:(0.0, 0, 0.0) (Hashtbl.find_opt tbl family)
      in
      Hashtbl.replace tbl family
        (time +. (e.finish -. e.start), count + 1, flops +. flops_of e.task))
    t.entries;
  Hashtbl.fold
    (fun name (time, count, flops) acc ->
      let rate = if time > 0.0 then flops /. time else 0.0 in
      (name, time, count, rate) :: acc)
    tbl []
  |> List.sort (fun (_, t1, _, _) (_, t2, _, _) -> compare t2 t1)

let gantt ?(width = 72) t =
  if t.makespan <= 0.0 then "(empty trace)"
  else begin
    let rows = Array.init t.workers (fun _ -> Bytes.make width '.') in
    List.iter
      (fun e ->
        let c0 = int_of_float (e.start /. t.makespan *. float_of_int width) in
        let c0 = min (width - 1) (max 0 c0) in
        let c1 = int_of_float (e.finish /. t.makespan *. float_of_int width) in
        let c1 = min (width - 1) (max c0 c1) in
        for c = c0 to c1 do
          Bytes.set rows.(e.worker) c '#'
        done)
      t.entries;
    let buf = Buffer.create (t.workers * (width + 8)) in
    Array.iteri
      (fun w row -> Buffer.add_string buf (Printf.sprintf "w%02d |%s|\n" w (Bytes.to_string row)))
      rows;
    Buffer.add_string buf
      (Printf.sprintf "makespan %s, utilization %s\n"
         (Xsc_util.Units.seconds t.makespan)
         (Xsc_util.Units.percent (utilization t)));
    Buffer.contents buf
  end
