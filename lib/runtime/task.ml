type access =
  | Read of int
  | Write of int
  | Read_write of int

(* Closure-free task encoding: the dense-factorization kernels as plain
   variants over tile coordinates. A DAG built from ops carries no per-task
   closure — one word per task instead of a closure block capturing tile
   views — and the executor dispatches every task through a single
   interpreter function (one branch on an immediate tag), so the steal loop
   allocates nothing and the GC never scans task bodies. *)
type op =
  | Potrf of int  (** Cholesky: factor diagonal tile [k] *)
  | Trsm of int * int  (** Cholesky panel: [A(i,k) <- A(i,k) L(k,k)^-T] *)
  | Syrk of int * int  (** Cholesky update: [A(i,i) -= A(i,k) A(i,k)^T] *)
  | Gemm of int * int * int  (** update: [A(i,j) -= A(i,k) op(A(.,k))] *)
  | Getrf of int  (** LU: factor diagonal tile [k] (no pivoting) *)
  | Trsm_l of int * int  (** LU row panel: [A(k,j) <- L(k,k)^-1 A(k,j)] *)
  | Trsm_u of int * int  (** LU column panel: [A(i,k) <- A(i,k) U(k,k)^-1] *)

type t = {
  id : int;
  name : string;
  flops : float;
  bytes : float;
  accesses : access list;
  run : (unit -> unit) option;
  op : op option;
}

let make ~id ~name ~flops ?(bytes = 0.0) ?run ?op accesses =
  if flops < 0.0 || bytes < 0.0 then invalid_arg "Task.make: negative weight";
  { id; name; flops; bytes; accesses; run; op }

let op_name = function
  | Potrf k -> Printf.sprintf "potrf(%d,%d)" k k
  | Trsm (k, i) -> Printf.sprintf "trsm(%d,%d)" i k
  | Syrk (i, k) -> Printf.sprintf "syrk(%d,%d)" i k
  | Gemm (i, j, k) -> Printf.sprintf "gemm(%d,%d,%d)" i j k
  | Getrf k -> Printf.sprintf "getrf(%d,%d)" k k
  | Trsm_l (k, j) -> Printf.sprintf "trsm_l(%d,%d)" k j
  | Trsm_u (i, k) -> Printf.sprintf "trsm_u(%d,%d)" i k

let reads t =
  List.filter_map
    (function Read d | Read_write d -> Some d | Write _ -> None)
    t.accesses

let writes t =
  List.filter_map
    (function Write d | Read_write d -> Some d | Read _ -> None)
    t.accesses

let datum i j ~stride = (i * stride) + j
