(* The shared pool's injection queue: a mutex-protected binary min-heap of
   (Prio.t, task handle) pairs. Newly submitted jobs inject their source
   tasks here; workers pull from it when their local deque runs dry, and —
   the deadline-isolation hook — yield to it mid-stream when its head is
   more urgent than the task they just popped locally.

   [min_deadline] caches the head's deadline in an atomic so that the
   per-task urgency check on the worker hot path is one atomic load, not a
   mutex acquisition; the mutex is only taken when the cached value says
   there is genuinely more urgent work to fetch (or on push/pop). The
   cache is conservative under races: it is updated inside the lock, so a
   stale read can at worst cause one extra locked probe or delay a yield
   by one task. *)

type entry = { key : Prio.t; handle : int }

type t = {
  mutable heap : entry array;
  mutable size : int;
  mu : Mutex.t;
  min_deadline_cache : int Atomic.t;
  size_cache : int Atomic.t;
      (* lets [is_empty] be one atomic load — parked-worker wakeup checks
         must see queued work even when its deadline is [max_int] *)
}

let create () =
  {
    heap = [||];
    size = 0;
    mu = Mutex.create ();
    min_deadline_cache = Atomic.make max_int;
    size_cache = Atomic.make 0;
  }

let refresh_cache t =
  Atomic.set t.min_deadline_cache
    (if t.size = 0 then max_int else t.heap.(0).key.Prio.deadline_ns);
  Atomic.set t.size_cache t.size

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if Prio.before t.heap.(i).key t.heap.(parent).key then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && Prio.before t.heap.(l).key t.heap.(!smallest).key then smallest := l;
  if r < t.size && Prio.before t.heap.(r).key t.heap.(!smallest).key then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t key handle =
  Mutex.lock t.mu;
  if t.size = Array.length t.heap then begin
    let cap = max 16 (2 * t.size) in
    let heap = Array.make cap { key; handle } in
    Array.blit t.heap 0 heap 0 t.size;
    t.heap <- heap
  end;
  t.heap.(t.size) <- { key; handle };
  t.size <- t.size + 1;
  sift_up t (t.size - 1);
  refresh_cache t;
  Mutex.unlock t.mu

let pop_root t =
  let top = t.heap.(0) in
  t.size <- t.size - 1;
  if t.size > 0 then begin
    t.heap.(0) <- t.heap.(t.size);
    sift_down t 0
  end;
  refresh_cache t;
  top

let pop t =
  Mutex.lock t.mu;
  let r = if t.size = 0 then None else Some (pop_root t) in
  Mutex.unlock t.mu;
  Option.map (fun e -> (e.key, e.handle)) r

(* Pop only if the head's deadline is strictly before [deadline_ns] — the
   worker's yield check, re-validated under the lock so a racing pop
   cannot hand back less urgent work than promised. *)
let pop_if_deadline_before t deadline_ns =
  if Atomic.get t.min_deadline_cache >= deadline_ns then None
  else begin
    Mutex.lock t.mu;
    let r =
      if t.size > 0 && t.heap.(0).key.Prio.deadline_ns < deadline_ns then
        Some (pop_root t)
      else None
    in
    Mutex.unlock t.mu;
    Option.map (fun e -> (e.key, e.handle)) r
  end

let length t =
  Mutex.lock t.mu;
  let n = t.size in
  Mutex.unlock t.mu;
  n

let min_deadline t = Atomic.get t.min_deadline_cache
let is_empty t = Atomic.get t.size_cache = 0
