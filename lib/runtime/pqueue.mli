(** Priority injection queue for the shared task pool: a thread-safe
    min-heap of (composite {!Prio.t} key, task handle) pairs.

    Submitted jobs inject their source tasks here; idle workers drain it
    before stealing, and busy workers yield to it between tasks when its
    head carries a strictly earlier deadline than their local work — the
    mechanism that bounds a small request's wait by one task granularity
    rather than one whole factorization. *)

type t

val create : unit -> t

val push : t -> Prio.t -> int -> unit

val pop : t -> (Prio.t * int) option
(** Most urgent entry ({!Prio.compare} order), or [None] when empty. *)

val pop_if_deadline_before : t -> int -> (Prio.t * int) option
(** [pop_if_deadline_before q d] pops the head only when its deadline is
    strictly earlier than [d]. The fast path is a single atomic load of
    the cached head deadline, so calling this once per executed task is
    nearly free when no more urgent work exists. *)

val length : t -> int

val min_deadline : t -> int
(** Cached head deadline ([max_int] when empty). Conservative under
    concurrent mutation: may be momentarily stale, never locks. *)

val is_empty : t -> bool
(** One atomic load; momentarily stale under concurrent mutation (both
    cache updates happen inside the queue lock, so a worker that takes
    the lock afterwards sees the truth). *)
