(* The shared deadline-aware task pool: one long-lived work-stealing
   runtime serving the tiled DAGs of every in-flight computation at once.

   Where [Real_exec.run_dataflow] is run-to-completion — spawn domains,
   drain one DAG, barrier, join — the pool keeps a fixed set of persistent
   worker domains and accepts DAG submissions dynamically: each [submit]
   registers a job (its own DAG, indegree counters and completion
   callback), injects the job's source tasks into a global priority queue
   ({!Pqueue}), and returns immediately. Tasks from any number of jobs
   interleave on the same deques; a job's completion is signalled by a
   per-task countdown, not a barrier, so no worker ever idles behind one
   computation's tail while another has ready work.

   Priority is the composite {!Prio} key — request deadline first
   (EDF down to task granularity), flops-weighted bottom level as the
   critical-path tie-break, then FIFO. It orders the injection queue, and
   it orders the ready successors a worker pushes onto its own deque
   (ascending, so the most urgent child sits at the LIFO end and runs next
   while its parent's output is cache-warm). Between tasks, every worker
   makes one cheap check (an atomic load) whether the injection queue
   holds work with a strictly earlier deadline than the task it just
   popped; if so it pushes the popped task back and takes the urgent one —
   that single yield point is what bounds a small request's queueing
   behind a large factorization to one task's service time instead of the
   whole factorization's.

   Failure isolation is per job: the first task body of a job that raises
   records the failure and marks the job aborted; the job's remaining
   tasks still flow through the deques (so the countdown drains and no
   handle is ever orphaned) but their bodies are skipped. Other jobs are
   untouched — one poisoned request cannot take down the pool.

   Span parentage is per job, not per pool: each job carries the span
   context it was submitted under, and every task body runs with that
   context re-seated, so task-level spans parent onto the right request
   even when tasks from many requests interleave on one domain. *)

module Clock = Xsc_obs.Clock
module Metrics = Xsc_obs.Metrics
module Span = Xsc_obs.Span

let m_tasks = Metrics.counter "runtime.tasks_executed"
let m_steals = Metrics.counter "runtime.steals"
let m_steal_attempts = Metrics.counter "runtime.steal_attempts"
let m_parks = Metrics.counter "runtime.parks"
let m_park_ns = Metrics.counter "runtime.park_ns"
let m_failures = Metrics.counter "runtime.task_failures"
let m_jobs = Metrics.counter "pool.jobs_submitted"
let m_jobs_done = Metrics.counter "pool.jobs_completed"
let m_jobs_failed = Metrics.counter "pool.jobs_failed"
let m_injected = Metrics.counter "pool.tasks_injected"
let m_yields = Metrics.counter "pool.deadline_yields"

(* Task handles pack (job slot, task id) into one immediate int so the
   Chase-Lev deques keep carrying unboxed ints: nothing for the GC to
   scan in the steal loop, exactly as in the run-to-completion executor. *)
let tid_bits = 24
let tid_mask = (1 lsl tid_bits) - 1

type job = {
  slot : int;
  dag : Dag.t;
  interp : (Task.op -> unit) option;
  deadline_ns : int;
  jseq : int;
  bl : int array;  (* normalised bottom-level rank per task *)
  remaining : int Atomic.t array;
  completed : int Atomic.t;
  aborted : bool Atomic.t;
  failure : Real_exec.failure option Atomic.t;
  sctx : Span.ctx option;
  on_done : Real_exec.failure option -> worker:int -> unit;
}

type t = {
  workers : int;
  max_jobs : int;
  deques : Deque.t array;
  inj : Pqueue.t;
  jobs : job option Atomic.t array;
  mu : Mutex.t;  (* guards [free_slots] and [live] *)
  mutable free_slots : int list;
  mutable live : int;
  jseq_next : int Atomic.t;
  parked : int Atomic.t;
  park_mutex : Mutex.t;
  park_cond : Condition.t;
  stopping : bool Atomic.t;
  mutable domains : unit Domain.t array;
}

let key_of (job : job) tid =
  Prio.make ~deadline_ns:job.deadline_ns ~bl:job.bl.(tid) ~seq:job.jseq ~tid

let handle job tid = (job.slot lsl tid_bits) lor tid

let job_of t h =
  match Atomic.get t.jobs.(h lsr tid_bits) with
  | Some j -> j
  | None -> assert false (* a live handle always names a registered job *)

let wake_parked t =
  if Atomic.get t.parked > 0 then begin
    Mutex.lock t.park_mutex;
    Condition.broadcast t.park_cond;
    Mutex.unlock t.park_mutex
  end

let some_work t =
  Array.exists (fun d -> Deque.size d > 0) t.deques || not (Pqueue.is_empty t.inj)

(* ---- job completion ---- *)

let finish_job t (job : job) ~worker =
  let failure = Atomic.get job.failure in
  (match failure with
  | None -> Metrics.incr m_jobs_done
  | Some _ -> Metrics.incr m_jobs_failed);
  (* free the slot before the callback: [on_done] may itself submit a new
     job (dynamic insertion / continuation chaining) and must be able to
     claim this slot back *)
  Atomic.set t.jobs.(job.slot) None;
  Mutex.lock t.mu;
  t.free_slots <- job.slot :: t.free_slots;
  t.live <- t.live - 1;
  Mutex.unlock t.mu;
  job.on_done failure ~worker

(* ---- task execution on a worker ---- *)

let release_successors t wid (job : job) tid =
  let ready =
    List.filter
      (fun s -> Atomic.fetch_and_add job.remaining.(s) (-1) = 1)
      job.dag.Dag.succs.(tid)
  in
  (match ready with
  | [] -> ()
  | ready ->
    (* ascending priority, so the most urgent child ends on top of the
       LIFO end of this worker's deque and runs next *)
    let ordered =
      List.stable_sort (fun a b -> Prio.compare (key_of job a) (key_of job b)) ready
    in
    List.iter (fun s -> Deque.push t.deques.(wid) (handle job s)) ordered;
    wake_parked t);
  if Atomic.fetch_and_add job.completed 1 = Dag.n_tasks job.dag - 1 then
    finish_job t job ~worker:wid

let run_task t wid h =
  let job = job_of t h in
  let tid = h land tid_mask in
  let task = job.dag.Dag.tasks.(tid) in
  (if not (Atomic.get job.aborted) then
     match
       Span.with_current job.sctx (fun () ->
           Real_exec.with_task_span job.sctx ~wid task (fun () ->
               Real_exec.exec_body job.interp task))
     with
     | () -> ()
     | exception e ->
       let f =
         {
           Real_exec.failed_task = tid;
           failed_name = task.Task.name;
           failed_worker = wid;
           error = e;
         }
       in
       ignore (Atomic.compare_and_set job.failure None (Some f));
       Metrics.incr m_failures;
       Atomic.set job.aborted true);
  (* successors are released (and the countdown advanced) even for an
     aborted job, with bodies skipped: the job must drain so its slot can
     be freed and its callback fired exactly once *)
  release_successors t wid job tid

(* ---- worker loop ---- *)

let worker t wid =
  let my = t.deques.(wid) in
  let l_steals = ref 0 and l_attempts = ref 0 in
  let l_parks = ref 0 and l_park_ns = ref 0 and l_tasks = ref 0 and l_yields = ref 0 in
  let flush () =
    Metrics.add_to_shard m_steals ~shard:wid !l_steals;
    Metrics.add_to_shard m_steal_attempts ~shard:wid !l_attempts;
    Metrics.add_to_shard m_parks ~shard:wid !l_parks;
    Metrics.add_to_shard m_park_ns ~shard:wid !l_park_ns;
    Metrics.add_to_shard m_tasks ~shard:wid !l_tasks;
    Metrics.add_to_shard m_yields ~shard:wid !l_yields;
    l_steals := 0;
    l_attempts := 0;
    l_parks := 0;
    l_park_ns := 0;
    l_tasks := 0;
    l_yields := 0
  in
  let rand_state = ref (((wid + 1) * 0x9E3779B1) lor 1) in
  let rand_victim () =
    let x = !rand_state in
    let x = x lxor (x lsl 13) in
    let x = x lxor (x lsr 17) in
    let x = x lxor (x lsl 5) in
    rand_state := x;
    let v = x land max_int mod (t.workers - 1) in
    if v >= wid then v + 1 else v
  in
  let park () =
    Mutex.lock t.park_mutex;
    Atomic.incr t.parked;
    (* recheck under the lock: a producer publishes its push before
       reading [parked], so either it sees us and broadcasts, or we see
       its work here and never sleep *)
    if not (Atomic.get t.stopping) && not (some_work t) then begin
      incr l_parks;
      (* flush before sleeping: a long-lived pool's counters must be
         current while it idles, not held hostage in worker locals *)
      flush ();
      let t0 = Clock.now_ns () in
      Condition.wait t.park_cond t.park_mutex;
      l_park_ns := !l_park_ns + (Clock.now_ns () - t0)
    end;
    Atomic.decr t.parked;
    Mutex.unlock t.park_mutex
  in
  (* The deadline-isolation yield: a task just popped locally gives way
     when the injection queue holds strictly more urgent work (earlier
     deadline). The popped task goes back on our own LIFO end — it runs
     immediately after the urgent arrival, keeping its cache warmth. *)
  let yield_check h =
    let job = job_of t h in
    match Pqueue.pop_if_deadline_before t.inj job.deadline_ns with
    | Some (_, urgent) ->
      incr l_yields;
      Deque.push my h;
      urgent
    | None -> h
  in
  let rec local () =
    match Deque.pop my with
    | Some h ->
      let h = yield_check h in
      incr l_tasks;
      run_task t wid h;
      local ()
    | None -> (
      match Pqueue.pop t.inj with
      | Some (_, h) ->
        incr l_tasks;
        run_task t wid h;
        local ()
      | None -> hunt 0)
  and hunt sweeps =
    if Atomic.get t.stopping && not (some_work t) then ()
    else if t.workers = 1 || sweeps >= Real_exec.max_sweeps then begin
      park ();
      if Atomic.get t.stopping && not (some_work t) then () else local ()
    end
    else begin
      let rec sweep attempts =
        if attempts >= t.workers - 1 then begin
          Real_exec.backoff sweeps;
          hunt (sweeps + 1)
        end
        else begin
          let victim = rand_victim () in
          incr l_attempts;
          match Deque.steal t.deques.(victim) with
          | Deque.Stolen h ->
            incr l_steals;
            incr l_tasks;
            run_task t wid h;
            local ()
          | Deque.Empty | Deque.Abort -> sweep (attempts + 1)
        end
      in
      sweep 0
    end
  in
  local ();
  flush ()

(* ---- lifecycle ---- *)

let create ?(max_jobs = 4096) ~workers () =
  if workers < 1 then invalid_arg "Pool.create: workers < 1";
  if max_jobs < 1 then invalid_arg "Pool.create: max_jobs < 1";
  let t =
    {
      workers;
      max_jobs;
      deques = Array.init workers (fun _ -> Deque.create ~capacity:256 ());
      inj = Pqueue.create ();
      jobs = Array.init max_jobs (fun _ -> Atomic.make None);
      mu = Mutex.create ();
      free_slots = List.init max_jobs Fun.id;
      live = 0;
      jseq_next = Atomic.make 0;
      parked = Atomic.make 0;
      park_mutex = Mutex.create ();
      park_cond = Condition.create ();
      stopping = Atomic.make false;
      domains = [||];
    }
  in
  t.domains <- Array.init workers (fun wid -> Domain.spawn (fun () -> worker t wid));
  t

let live_jobs t =
  Mutex.lock t.mu;
  let n = t.live in
  Mutex.unlock t.mu;
  n

let submit ?interp ?(deadline_ns = max_int) ?sctx t dag ~on_done =
  if Atomic.get t.stopping then invalid_arg "Pool.submit: pool is shut down";
  Real_exec.check_bodies interp dag;
  let n = Dag.n_tasks dag in
  if n > tid_mask then invalid_arg "Pool.submit: DAG too large";
  if n = 0 then on_done None ~worker:(-1)
  else begin
    let slot =
      Mutex.lock t.mu;
      match t.free_slots with
      | [] ->
        Mutex.unlock t.mu;
        invalid_arg "Pool.submit: too many concurrent jobs"
      | s :: rest ->
        t.free_slots <- rest;
        t.live <- t.live + 1;
        Mutex.unlock t.mu;
        s
    in
    let job =
      {
        slot;
        dag;
        interp;
        deadline_ns;
        jseq = Atomic.fetch_and_add t.jseq_next 1;
        bl = Prio.bl_ranks dag;
        remaining = Array.map Atomic.make dag.Dag.indegree;
        completed = Atomic.make 0;
        aborted = Atomic.make false;
        failure = Atomic.make None;
        sctx;
        on_done;
      }
    in
    Atomic.set t.jobs.(slot) (Some job);
    Metrics.incr m_jobs;
    let sources = Dag.sources dag in
    List.iter
      (fun tid ->
        Metrics.incr m_injected;
        Pqueue.push t.inj (key_of job tid) (handle job tid))
      sources;
    wake_parked t
  end

(* Blocking convenience: submit and wait for the job to drain. Must not be
   called from a pool worker (a worker waiting on its own pool's work is a
   lost lane, and with one worker a deadlock). *)
let run ?interp ?deadline_ns t dag =
  let mu = Mutex.create () and cv = Condition.create () in
  let result = ref None in
  let t0 = Clock.now_ns () in
  submit ?interp ?deadline_ns t dag ~on_done:(fun failure ~worker:_ ->
      Mutex.lock mu;
      result := Some failure;
      Condition.broadcast cv;
      Mutex.unlock mu);
  Mutex.lock mu;
  while !result = None do
    Condition.wait cv mu
  done;
  let failure = Option.get !result in
  Mutex.unlock mu;
  (match failure with
  | Some f -> raise (Real_exec.Task_failed f)
  | None -> ());
  {
    Real_exec.elapsed = Clock.ns_to_s (Clock.now_ns () - t0);
    tasks = Dag.n_tasks dag;
    workers = t.workers;
    steals = 0;
    steal_attempts = 0;
    parks = 0;
    park_time = 0.0;
    trace = None;
  }

let shutdown t =
  if not (Atomic.exchange t.stopping true) then begin
    (* workers exit when stopping && no work; wake the sleepers so they
       observe the flag. Live jobs still drain: stopping only stops the
       pool from idling forever, submissions are rejected from now on. *)
    Mutex.lock t.park_mutex;
    Condition.broadcast t.park_cond;
    Mutex.unlock t.park_mutex;
    Array.iter Domain.join t.domains
  end

let workers t = t.workers
let injected_pending t = Pqueue.length t.inj
