(** Shared execution plumbing for the tiled algorithms. *)

type task = Xsc_runtime.Task.t
type dag = Xsc_runtime.Dag.t

type exec =
  | Sequential
  | Dataflow of int  (** dynamic superscalar executor on [n] domains *)
  | Forkjoin of int  (** level-synchronous executor on [n] domains *)
  | Pooled of Xsc_runtime.Pool.t
      (** submit into a shared long-lived pool and block until the job
          drains ({!Xsc_runtime.Pool.run}); the composite priority key
          supplies critical-path ordering. Must not be used from a pool
          worker (see {!Xsc_runtime.Pool.run}). *)

val execute : ?interp:(Xsc_runtime.Task.op -> unit) -> exec -> dag -> Xsc_runtime.Real_exec.stats
(** [Dataflow] runs with {!critical_path_priority} as its scheduling hint,
    so every tiled factorization (Cholesky, LU, QR, ...) gets
    critical-path-first ordering on real domains for free. [interp]
    dispatches closure-free op-encoded tasks (see {!Xsc_runtime.Task.op});
    without it, tasks must carry [run] closures. *)

val execute_exn :
  ?interp:(Xsc_runtime.Task.op -> unit) -> exec -> dag -> Xsc_runtime.Real_exec.stats
(** Like {!execute}, but a {!Xsc_runtime.Real_exec.Task_failed} abort
    re-raises the task body's original exception: [Cholesky.factor] on a
    non-SPD matrix raises [Singular], not the executor wrapper. Use
    {!execute} directly to observe task failures (as {!Ft} does). *)

val critical_path_priority : dag -> int -> int
(** Flops-weighted bottom level of each task, scaled to an int rank —
    higher means closer to the critical path. Suitable for
    [Real_exec.run_dataflow ~priority]. *)

val tile_bytes : nb:int -> float
(** Footprint of one tile, for task byte weights. *)

val datum : int -> int -> stride:int -> int
