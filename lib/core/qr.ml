open Xsc_linalg
module Tile = Xsc_tile.Tile
module Task = Xsc_runtime.Task
module Dag = Xsc_runtime.Dag

type factorization = {
  tiles : Tile.t;
  tau_diag : float array array;
  stacked : (Mat.t * float array) option array array;
}

let create (t : Tile.t) =
  if t.Tile.mt < t.Tile.nt then invalid_arg "Qr.create: requires mt >= nt";
  {
    tiles = t;
    tau_diag = Array.init t.Tile.nt (fun _ -> Array.make t.Tile.nb 0.0);
    stacked = Array.init t.Tile.mt (fun _ -> Array.make t.Tile.nt None);
  }

(* Stack the upper triangle of the current R_kk over tile a_ik and factor;
   returns (v, tau) with the new R written back into a_kk's upper part and
   a_ik zeroed. *)
let tsqrt_kernel ~nb a_kk a_ik =
  let s = Mat.create (2 * nb) nb in
  for i = 0 to nb - 1 do
    for j = i to nb - 1 do
      Mat.set s i j (Mat.get a_kk i j)
    done
  done;
  Mat.blit_block ~src:a_ik ~dst:s ~src_row:0 ~src_col:0 ~dst_row:nb ~dst_col:0 ~rows:nb
    ~cols:nb;
  let tau = Lapack.geqrf s in
  for i = 0 to nb - 1 do
    for j = i to nb - 1 do
      Mat.set a_kk i j (Mat.get s i j)
    done
  done;
  (* the tile is annihilated; its storage documents that *)
  for i = 0 to nb - 1 do
    for j = 0 to nb - 1 do
      Mat.set a_ik i j 0.0
    done
  done;
  (s, tau)

(* Apply the stacked reflectors to [c_top; c_bot] in place. *)
let tsmqr_kernel ~nb v tau c_top c_bot =
  let cols = c_top.Mat.cols in
  let c = Mat.create (2 * nb) cols in
  Mat.blit_block ~src:c_top ~dst:c ~src_row:0 ~src_col:0 ~dst_row:0 ~dst_col:0 ~rows:nb
    ~cols;
  Mat.blit_block ~src:c_bot ~dst:c ~src_row:0 ~src_col:0 ~dst_row:nb ~dst_col:0 ~rows:nb
    ~cols;
  Lapack.ormqr ~trans:Blas.Trans ~a:v ~tau c;
  Mat.blit_block ~src:c ~dst:c_top ~src_row:0 ~src_col:0 ~dst_row:0 ~dst_col:0 ~rows:nb
    ~cols;
  Mat.blit_block ~src:c ~dst:c_bot ~src_row:nb ~src_col:0 ~dst_row:0 ~dst_col:0 ~rows:nb
    ~cols

let kernel_flops nb =
  let fnb = float_of_int nb in
  let geqrt = Lapack.geqrf_flops nb nb in
  let unmqr = 2.0 *. fnb *. fnb *. fnb in
  let tsqrt = Lapack.geqrf_flops (2 * nb) nb in
  let tsmqr = 4.0 *. fnb *. fnb *. fnb in
  (geqrt, unmqr, tsqrt, tsmqr)

let tasks ?(with_closures = true) f =
  let t = f.tiles in
  let mt = t.Tile.mt and nt = t.Tile.nt and nb = t.Tile.nb in
  let geqrt_f, unmqr_f, tsqrt_f, tsmqr_f = kernel_flops nb in
  let bytes = Runtime_api.tile_bytes ~nb in
  let datum i j = Task.datum i j ~stride:nt in
  let acc = ref [] in
  let next_id = ref 0 in
  let emit name flops accesses run =
    let id = !next_id in
    incr next_id;
    let run = if with_closures then Some run else None in
    acc := Task.make ~id ~name ~flops ~bytes ?run accesses :: !acc
  in
  for k = 0 to nt - 1 do
    let akk = Tile.tile t k k in
    let tau_k = f.tau_diag.(k) in
    emit
      (Printf.sprintf "geqrt(%d)" k)
      geqrt_f
      [ Task.Read_write (datum k k) ]
      (fun () ->
        let tau = Lapack.geqrf akk in
        Array.blit tau 0 tau_k 0 (Array.length tau));
    for j = k + 1 to nt - 1 do
      let akj = Tile.tile t k j in
      emit
        (Printf.sprintf "unmqr(%d,%d)" k j)
        unmqr_f
        [ Task.Read (datum k k); Task.Read_write (datum k j) ]
        (fun () -> Lapack.ormqr ~trans:Blas.Trans ~a:akk ~tau:tau_k akj)
    done;
    for i = k + 1 to mt - 1 do
      let aik = Tile.tile t i k in
      emit
        (Printf.sprintf "tsqrt(%d,%d)" i k)
        tsqrt_f
        [ Task.Read_write (datum k k); Task.Read_write (datum i k) ]
        (fun () -> f.stacked.(i).(k) <- Some (tsqrt_kernel ~nb akk aik));
      for j = k + 1 to nt - 1 do
        let akj = Tile.tile t k j in
        let aij = Tile.tile t i j in
        emit
          (Printf.sprintf "tsmqr(%d,%d,%d)" i j k)
          tsmqr_f
          [ Task.Read (datum i k); Task.Read_write (datum k j); Task.Read_write (datum i j) ]
          (fun () ->
            match f.stacked.(i).(k) with
            | Some (v, tau) -> tsmqr_kernel ~nb v tau akj aij
            | None -> failwith "Qr: tsmqr before tsqrt")
      done
    done
  done;
  List.rev !acc

let dag ?with_closures f = Dag.build (tasks ?with_closures f)

let factor ?(exec = Runtime_api.Sequential) t =
  let f = create t in
  ignore (Runtime_api.execute_exn exec (dag f));
  f

let apply_qt f b =
  let t = f.tiles in
  let mt = t.Tile.mt and nt = t.Tile.nt and nb = t.Tile.nb in
  if Array.length b <> t.Tile.rows then invalid_arg "Qr.apply_qt: dimension mismatch";
  let chunks = Tile.tile_vec ~nb (Array.copy b) in
  let as_col v = Mat.init nb 1 (fun i _ -> v.(i)) in
  let of_col m v =
    for i = 0 to nb - 1 do
      v.(i) <- Mat.get m i 0
    done
  in
  for k = 0 to nt - 1 do
    (* replay geqrt(k) on chunk k *)
    let ck = as_col chunks.(k) in
    Lapack.ormqr ~trans:Blas.Trans ~a:(Tile.tile t k k) ~tau:f.tau_diag.(k) ck;
    of_col ck chunks.(k);
    for i = k + 1 to mt - 1 do
      match f.stacked.(i).(k) with
      | None -> failwith "Qr.apply_qt: incomplete factorization"
      | Some (v, tau) ->
        let c = Mat.create (2 * nb) 1 in
        for r = 0 to nb - 1 do
          Mat.set c r 0 chunks.(k).(r);
          Mat.set c (nb + r) 0 chunks.(i).(r)
        done;
        Lapack.ormqr ~trans:Blas.Trans ~a:v ~tau c;
        for r = 0 to nb - 1 do
          chunks.(k).(r) <- Mat.get c r 0;
          chunks.(i).(r) <- Mat.get c (nb + r) 0
        done
    done
  done;
  Tile.untile_vec chunks

(* Caveat: after geqrt/tsqrt the diagonal tile's strict lower part stores
   reflectors, so R_kk is only its upper triangle; off-diagonal row tiles
   are full R blocks. *)
let solve f b =
  let t = f.tiles in
  let nt = t.Tile.nt and nb = t.Tile.nb in
  let qtb = apply_qt f b in
  let y = Tile.tile_vec ~nb (Array.sub qtb 0 (nt * nb)) in
  for k = nt - 1 downto 0 do
    for j = k + 1 to nt - 1 do
      Blas.gemv ~alpha:(-1.0) (Tile.tile t k j) y.(j) ~beta:1.0 y.(k)
    done;
    Blas.trsv ~uplo:Blas.Upper (Tile.tile t k k) y.(k)
  done;
  Tile.untile_vec y

let factor_mat ?exec ~nb a =
  let t = Tile.of_mat ~nb a in
  factor ?exec t

let flops ~mt ~nt ~nb =
  let geqrt_f, unmqr_f, tsqrt_f, tsmqr_f = kernel_flops nb in
  let acc = ref 0.0 in
  for k = 0 to nt - 1 do
    acc := !acc +. geqrt_f;
    acc := !acc +. (float_of_int (nt - 1 - k) *. unmqr_f);
    let rows_below = mt - 1 - k in
    acc := !acc +. (float_of_int rows_below *. tsqrt_f);
    acc := !acc +. (float_of_int (rows_below * (nt - 1 - k)) *. tsmqr_f)
  done;
  !acc

let task_count ~mt ~nt =
  let acc = ref 0 in
  for k = 0 to nt - 1 do
    acc := !acc + 1 + (nt - 1 - k) + ((mt - 1 - k) * (1 + (nt - 1 - k)))
  done;
  !acc
