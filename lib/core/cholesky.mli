(** Tiled Cholesky factorization as a task DAG.

    The algorithm of the PLASMA story: [POTRF]/[TRSM]/[SYRK]/[GEMM] kernels
    on [nb x nb] tiles, with dependences inferred from tile accesses. The
    same task list drives (a) real execution on domains — closures mutate
    the tiles in place — and (b) the schedule simulator, which only needs
    the weights. *)

open Xsc_linalg

val tasks : ?with_closures:bool -> Xsc_tile.Tile.t -> Runtime_api.task list
(** Task list in program order for the lower-Cholesky of a square tiled
    matrix. With [with_closures] (default true) each task carries the kernel
    closure. *)

val dag : ?with_closures:bool -> Xsc_tile.Tile.t -> Runtime_api.dag

val factor : ?exec:Runtime_api.exec -> Xsc_tile.Tile.t -> unit
(** Factor in place ([L] in the lower tiles; strictly-upper tiles are left
    stale, as in LAPACK). Default execution is sequential. Raises
    [Lapack.Singular] if the matrix is not positive definite. *)

val solve : Xsc_tile.Tile.t -> Vec.t -> Vec.t
(** Given the factored tiles, solve [A x = b] by tiled forward/backward
    substitution. *)

val factor_mat : ?exec:Runtime_api.exec -> nb:int -> Mat.t -> Xsc_tile.Tile.t
(** Convenience: tile a dense SPD matrix and factor it. *)

val tasks_ops : nt:int -> nb:int -> Runtime_api.task list
(** Closure-free task list: same program order, accesses and flop/byte
    weights as {!tasks}, with {!Xsc_runtime.Task.op} bodies instead of
    closures. Storage-independent — bind it with an interpreter. *)

val dag_ops : nt:int -> nb:int -> Runtime_api.dag

val packed_interp : Xsc_tile.Packed.D.t -> Xsc_runtime.Task.op -> unit
(** Interpreter binding op coordinates to packed tile storage via the
    {!Xsc_linalg.Pblas} C kernels (bitwise-faithful to the strided path). *)

val factor_packed : ?exec:Runtime_api.exec -> Xsc_tile.Packed.D.t -> unit
(** Factor a packed matrix in place through the op-encoded DAG; bitwise
    identical to {!factor} on the same input for every executor. Raises
    [Pblas.Singular] if the matrix is not positive definite. *)

val flops : nt:int -> nb:int -> float
(** Total flops of the tiled algorithm (matches [n³/3] to leading order). *)

val task_count : nt:int -> int
(** [nt + nt(nt-1) + nt(nt-1)(nt+1)/6 ...] — closed-form count used by
    tests. *)
