(* Fault-tolerant tiled factorizations: in-DAG ABFT detection, dependence-cone
   replay repair, and online checkpoint/restart over packed storage.

   The design is step-synchronised: each outer step k runs its panel sub-DAG
   (diagonal factorization + triangular solves + the checksum solve) through
   the real executor, verifies the checksum invariant for panel k, and only
   then releases the update sub-DAG. A corrupted tile in column j is read by
   no other task before panel j's verification (trailing tiles are consumed
   only once they become the panel), so damage is always detected before it
   can propagate — the verification point doubles as the propagation fence.

   Checksum scheme (Cholesky): one extra row of tiles C with
   C0(j) = sum_bi A(bi,j) over the full symmetric matrix. The row rides the
   factorization as two extra task kinds — C(k) <- C(k) L(k,k)^-T at panel k
   and C(j) -= C(k) L(j,k)^T at update k — which is algebraically a right
   multiplication by L^-T, so after panel k the invariant is

     C(k) = sum_bi L(bi,k)

   (the diagonal tile contributes its lower triangle only; tiles above the
   diagonal are zero in L). Cost is one trsm + (nt-1-k) gemms per step —
   ~1/nt of the factorization, the Abft.overhead_model budget.

   Repair is dependence-cone replay, not refactorization: column k is
   recomputed from the pristine input plus the already-verified final panels
   < k, in the exact program order of the original kernels, so the replayed
   tiles are bitwise identical to a fault-free run. Bitwise comparison
   against the stored column then locates the damaged tiles exactly, and
   only those are overwritten.

   LU carries two borders: a row R protecting L (R(k) = sum_bi L(bi,k),
   unit-lower diagonal contribution) and a column C protecting U
   (C(k) = sum_bj U(k,bj), upper-including-diagonal contribution).

   Task-body exceptions surface from the executors as
   [Real_exec.Task_failed] after a clean abort; the driver rolls the matrix
   and checksums back to the last snapshot (the pristine input when no
   checkpoint policy is given) and replays the remaining steps. Snapshots
   are taken every [every] completed steps and optionally persisted through
   {!Xsc_resilience.Checkpoint} (atomic, CRC-validated), so a fresh process
   handed the same input matrix resumes mid-factorization. *)

open Xsc_linalg
module Task = Xsc_runtime.Task
module Dag = Xsc_runtime.Dag
module Real_exec = Xsc_runtime.Real_exec
module PD = Xsc_tile.Packed.D
module Harness = Xsc_resilience.Harness
module Checkpoint = Xsc_resilience.Checkpoint
module Metrics = Xsc_obs.Metrics
module Span = Xsc_obs.Span

(* ABFT cone replay shows up on the ambient request's span chain (phase
   "replay") so a recovered fault is visible in the exported per-request
   trace, not only as a counter. No-op unless spans are active. *)
let note_replay ~t0 k =
  if Span.active () then
    Span.note ~phase:"replay"
      ~name:(Printf.sprintf "replay(panel %d)" k)
      ~lane:(-1) ~attempt:0 ~start_ns:t0 ~finish_ns:(Xsc_obs.Clock.now_ns ())

let m_detected = Metrics.counter "resilience.ft.detected"
let m_repaired = Metrics.counter "resilience.ft.repaired_tiles"
let m_replayed = Metrics.counter "resilience.ft.replayed_kernels"
let m_restarts = Metrics.counter "resilience.ft.restarts"
let m_ckpts = Metrics.counter "resilience.ft.checkpoints"
let m_resumes = Metrics.counter "resilience.ft.resumes"
let m_faults_detected = Metrics.counter "resilience.faults_detected"

type report = {
  steps : int;
  detected : int;
  repaired_tiles : int;
  replayed_kernels : int;
  restarts : int;
  checkpoints_written : int;
  resumed : bool;
}

type ckpt_policy = { path : string option; every : int }

exception Unrecoverable of int

let () =
  Printexc.register_printer (function
    | Unrecoverable k ->
      Some (Printf.sprintf "Ft.Unrecoverable(panel %d still fails verification after replay)" k)
    | _ -> None)

(* Persisted snapshot: matrix buffer + checksum borders + step frontier,
   fingerprinted against the pristine input so a checkpoint can never be
   resumed against a different matrix. *)
type snapshot = {
  ck_kind : int;  (* 0 = cholesky, 1 = lu *)
  ck_n : int;
  ck_nb : int;
  ck_step : int;
  ck_fp : int64;
  ck_buf : Pblas.f64;
  ck_sums : Pblas.f64 array;
}

let f64_create len =
  Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout len

(* The checksum-border construction and per-panel verification are O(n²)
   streaming passes squeezed between O(nb³) kernels; bounds checks double
   their cost, so they use unsafe access like the kernel layer itself.
   The externals must be fully applied at a known element type to compile
   to direct loads — never bind them to a value. *)
module A1 = Bigarray.Array1

(* FNV-1a over the float bit patterns: cheap identity for "same input
   matrix", not a cryptographic claim. *)
let fingerprint (buf : Pblas.f64) =
  let h = ref 0xcbf29ce484222325L in
  for i = 0 to Bigarray.Array1.dim buf - 1 do
    h := Int64.mul (Int64.logxor !h (Int64.bits_of_float buf.{i})) 0x100000001b3L
  done;
  !h

let auto_every ~step_seconds ~checkpoint_seconds ~mtbf =
  if step_seconds <= 0.0 then invalid_arg "Ft.auto_every: step_seconds must be positive";
  let tau =
    Checkpoint.young_interval
      { Checkpoint.work = 1.0; checkpoint_cost = checkpoint_seconds; restart_cost = 0.0; mtbf }
  in
  max 1 (int_of_float (Float.round (tau /. step_seconds)))

(* ---- shared step-synchronised driver ---- *)

let drive ~kind ~n ~nb ~nt ~fp ~(buf : Pblas.f64) ~(sums : Pblas.f64 array)
    ~(pristine : Pblas.f64 * Pblas.f64 array) ~panel ~update ~verify ~repair ~exec_dag
    ~checkpoint ~max_restarts =
  (match checkpoint with
  | Some { every; _ } when every < 1 -> invalid_arg "Ft: checkpoint every must be >= 1"
  | _ -> ());
  (* Until the first checkpoint, rollback restores the caller's pristine
     copies directly (they already exist for replay), so the fault-free fast
     path allocates and copies nothing extra; [fp] is likewise forced only
     when a checkpoint file is read or written. *)
  let pristine_buf, pristine_sums = pristine in
  let snap = ref None in
  let snap_step = ref 0 in
  let save_mem step =
    let snap_buf, snap_sums =
      match !snap with
      | Some s -> s
      | None ->
        let s =
          ( f64_create (Bigarray.Array1.dim buf),
            Array.map (fun s -> f64_create (Bigarray.Array1.dim s)) sums )
        in
        snap := Some s;
        s
    in
    snap_step := step;
    Bigarray.Array1.blit buf snap_buf;
    Array.iteri (fun i s -> Bigarray.Array1.blit s snap_sums.(i)) sums;
    (snap_buf, snap_sums)
  in
  let rollback () =
    match !snap with
    | Some (snap_buf, snap_sums) ->
      Bigarray.Array1.blit snap_buf buf;
      Array.iteri (fun i s -> Bigarray.Array1.blit snap_sums.(i) s) sums
    | None ->
      Bigarray.Array1.blit pristine_buf buf;
      Array.iteri (fun i s -> Bigarray.Array1.blit pristine_sums.(i) s) sums
  in
  let resumed = ref false in
  (match checkpoint with
  | Some { path = Some path; _ } -> begin
    match Checkpoint.load_value path with
    | Ok ck
      when ck.ck_kind = kind && ck.ck_n = n && ck.ck_nb = nb
           && Int64.equal ck.ck_fp (Lazy.force fp)
           && Array.length ck.ck_sums = Array.length sums
           && ck.ck_step >= 0 && ck.ck_step <= nt ->
      Bigarray.Array1.blit ck.ck_buf buf;
      Array.iteri (fun i s -> Bigarray.Array1.blit ck.ck_sums.(i) s) sums;
      ignore (save_mem ck.ck_step);
      resumed := true;
      Metrics.incr m_resumes
    | Ok _ | Error _ -> ()  (* missing, torn, or foreign checkpoint: start fresh *)
  end
  | _ -> ());
  let restarts = ref 0 and written = ref 0 in
  let maybe_ckpt step =
    match checkpoint with
    | Some { every; path } when step mod every = 0 && step < nt ->
      let snap_buf, snap_sums = save_mem step in
      (match path with
      | Some path ->
        let ck =
          { ck_kind = kind; ck_n = n; ck_nb = nb; ck_step = step; ck_fp = Lazy.force fp;
            ck_buf = snap_buf; ck_sums = snap_sums }
        in
        ignore (Checkpoint.save_value path ck);
        incr written;
        Metrics.incr m_ckpts
      | None -> ())
    | _ -> ()
  in
  let step = ref !snap_step in
  while !step < nt do
    match
      let k = !step in
      exec_dag (panel k);
      if not (verify k) then repair k;
      match update k with [] -> () | ts -> exec_dag ts
    with
    | () ->
      incr step;
      maybe_ckpt !step
    | exception (Real_exec.Task_failed _ as e) ->
      incr restarts;
      Metrics.incr m_restarts;
      if !restarts > max_restarts then raise e;
      rollback ();
      step := !snap_step
  done;
  (* the job is done; a stale file would otherwise be resumed by the next
     run on the same input *)
  (match checkpoint with
  | Some { path = Some path; _ } when Sys.file_exists path -> Sys.remove path
  | _ -> ());
  (!restarts, !written, !resumed)

(* ---- Cholesky ---- *)

let potrf_ft ?(exec = Runtime_api.Sequential) ?harness ?(abft = true) ?(tol = 1e-6)
    ?checkpoint ?(max_restarts = 64) (p : PD.t) =
  let nt = p.PD.nt and nb = p.PD.nb and n = p.PD.n in
  let buf = p.PD.buf in
  let off = PD.off p in
  let tsz = nb * nb in
  let p0 = PD.copy p in
  let buf0 = p0.PD.buf in
  let fp = lazy (fingerprint buf0) in
  (* checksum row over the full symmetric matrix, built from the lower
     triangle (the only part the kernels ever read); skipped entirely in
     restart-only mode (abft = false) *)
  let cbuf = f64_create (nt * tsz) in
  Bigarray.Array1.fill cbuf 0.0;
  if abft then
    for j = 0 to nt - 1 do
      let base = j * tsz in
      for bi = 0 to nt - 1 do
        if bi > j then begin
          let o = off bi j in
          for e = 0 to tsz - 1 do
            A1.unsafe_set cbuf (base + e) (A1.unsafe_get cbuf (base + e) +. A1.unsafe_get buf (o + e))
          done
        end
        else if bi = j then begin
          (* symmetrise the stored lower triangle of the diagonal tile *)
          let o = off j j in
          for r = 0 to nb - 1 do
            for c = 0 to r do
              A1.unsafe_set cbuf (base + (r * nb) + c)
                (A1.unsafe_get cbuf (base + (r * nb) + c) +. A1.unsafe_get buf (o + (r * nb) + c))
            done;
            for c = r + 1 to nb - 1 do
              A1.unsafe_set cbuf (base + (r * nb) + c)
                (A1.unsafe_get cbuf (base + (r * nb) + c) +. A1.unsafe_get buf (o + (c * nb) + r))
            done
          done
        end
        else begin
          (* tile (bi, j) of the symmetric matrix with bi < j is the
             transpose of stored tile (j, bi); fixed c gives unit-stride
             reads in r *)
          let o = off j bi in
          for c = 0 to nb - 1 do
            for r = 0 to nb - 1 do
              A1.unsafe_set cbuf (base + (r * nb) + c)
                (A1.unsafe_get cbuf (base + (r * nb) + c) +. A1.unsafe_get buf (o + (c * nb) + r))
            done
          done
        end
      done
    done;
  let c0 = f64_create (nt * tsz) in
  Bigarray.Array1.blit cbuf c0;
  let interp0 = Cholesky.packed_interp p in
  let interp =
    match harness with Some h -> Harness.wrap_packed h p interp0 | None -> interp0
  in
  let exec_dag tasks = ignore (Runtime_api.execute ~interp exec (Dag.build tasks)) in
  let fnb = float_of_int nb in
  let potrf_f = fnb *. fnb *. fnb /. 3.0 in
  let trsm_f = fnb *. fnb *. fnb in
  let syrk_f = fnb *. fnb *. (fnb +. 1.0) in
  let gemm_f = 2.0 *. fnb *. fnb *. fnb in
  let bytes = Runtime_api.tile_bytes ~nb in
  let datum i j = Task.datum i j ~stride:nt in
  let cdatum k = (nt * nt) + k in
  let make_tasks build =
    let acc = ref [] and next = ref 0 in
    let emit ?run ?op name flops accesses =
      let id = !next in
      incr next;
      acc := Task.make ~id ~name ~flops ~bytes ?run ?op accesses :: !acc
    in
    build emit;
    List.rev !acc
  in
  let panel k =
    make_tasks (fun emit ->
        emit ~op:(Task.Potrf k) (Task.op_name (Task.Potrf k)) potrf_f
          [ Task.Read_write (datum k k) ];
        for i = k + 1 to nt - 1 do
          emit ~op:(Task.Trsm (k, i)) (Task.op_name (Task.Trsm (k, i))) trsm_f
            [ Task.Read (datum k k); Task.Read_write (datum i k) ]
        done;
        if abft then
          emit
            ~run:(fun () -> Pblas.D.trsm_rlt buf (off k k) cbuf (k * tsz) ~nb)
            (Printf.sprintf "csum_trsm(%d)" k)
            trsm_f
            [ Task.Read (datum k k); Task.Read_write (cdatum k) ])
  in
  let update k =
    if k = nt - 1 then []
    else
      make_tasks (fun emit ->
          for i = k + 1 to nt - 1 do
            emit ~op:(Task.Syrk (i, k)) (Task.op_name (Task.Syrk (i, k))) syrk_f
              [ Task.Read (datum i k); Task.Read_write (datum i i) ];
            for j = k + 1 to i - 1 do
              emit ~op:(Task.Gemm (i, j, k)) (Task.op_name (Task.Gemm (i, j, k))) gemm_f
                [ Task.Read (datum i k); Task.Read (datum j k); Task.Read_write (datum i j) ]
            done
          done;
          if abft then
            for j = k + 1 to nt - 1 do
              emit
                ~run:(fun () ->
                  Pblas.D.gemm_nt ~alpha:(-1.0) cbuf (k * tsz) buf (off j k) cbuf (j * tsz) ~nb)
                (Printf.sprintf "csum_gemm(%d,%d)" k j)
                gemm_f
                [ Task.Read (datum j k); Task.Read (cdatum k); Task.Read_write (cdatum j) ]
            done)
  in
  let vsum = Array.make tsz 0.0 in
  let verify k =
    Array.fill vsum 0 tsz 0.0;
    for bi = k to nt - 1 do
      let o = off bi k in
      if bi = k then
        for r = 0 to nb - 1 do
          for c = 0 to r do
            let e = (r * nb) + c in
            Array.unsafe_set vsum e (Array.unsafe_get vsum e +. A1.unsafe_get buf (o + e))
          done
        done
      else
        for e = 0 to tsz - 1 do
          Array.unsafe_set vsum e (Array.unsafe_get vsum e +. A1.unsafe_get buf (o + e))
        done
    done;
    let base = k * tsz in
    let err = ref 0.0 and scale = ref 1.0 in
    for e = 0 to tsz - 1 do
      let cv = A1.unsafe_get cbuf (base + e) and sv = Array.unsafe_get vsum e in
      let ac = abs_float cv and asv = abs_float sv in
      if ac > !scale then scale := ac;
      if asv > !scale then scale := asv;
      let d = abs_float (cv -. sv) in
      if d > !err then err := d
    done;
    !err <= tol *. !scale
  in
  let verify = if abft then verify else fun _ -> true in
  let detected = ref 0 and repaired = ref 0 and replayed = ref 0 in
  let scratch = f64_create tsz in
  let sub b o = Bigarray.Array1.sub b o tsz in
  let copy_tile src so dst dst_off = Bigarray.Array1.blit (sub src so) (sub dst dst_off) in
  let tiles_equal (a : Pblas.f64) ao (b : Pblas.f64) bo =
    let rec go e =
      e >= tsz
      || (Int64.equal (Int64.bits_of_float a.{ao + e}) (Int64.bits_of_float b.{bo + e})
          && go (e + 1))
    in
    go 0
  in
  (* Replay the dependence cone of column k — pristine input tiles plus the
     verified final panels < k, applied in original program order, so every
     recomputed tile is bitwise what a fault-free run produced. Bitwise
     comparison locates the damaged tiles; only those are overwritten. *)
  let replay k =
    let kernel f =
      f ();
      incr replayed;
      Metrics.incr m_replayed
    in
    copy_tile buf0 (off k k) scratch 0;
    for k' = 0 to k - 1 do
      kernel (fun () -> Pblas.D.syrk_ln ~alpha:(-1.0) buf (off k k') ~beta:1.0 scratch 0 ~nb)
    done;
    kernel (fun () -> Pblas.D.potrf scratch 0 ~nb);
    if not (tiles_equal buf (off k k) scratch 0) then begin
      copy_tile scratch 0 buf (off k k);
      incr repaired;
      Metrics.incr m_repaired
    end;
    for i = k + 1 to nt - 1 do
      copy_tile buf0 (off i k) scratch 0;
      for k' = 0 to k - 1 do
        kernel (fun () ->
            Pblas.D.gemm_nt ~alpha:(-1.0) buf (off i k') buf (off k k') scratch 0 ~nb)
      done;
      kernel (fun () -> Pblas.D.trsm_rlt buf (off k k) scratch 0 ~nb);
      if not (tiles_equal buf (off i k) scratch 0) then begin
        copy_tile scratch 0 buf (off i k);
        incr repaired;
        Metrics.incr m_repaired
      end
    done;
    (* rebuild the checksum tile along the same clean trajectory (its inputs
       C(k') are stationary after their own panel steps) *)
    copy_tile c0 (k * tsz) scratch 0;
    for k' = 0 to k - 1 do
      kernel (fun () ->
          Pblas.D.gemm_nt ~alpha:(-1.0) cbuf (k' * tsz) buf (off k k') scratch 0 ~nb)
    done;
    kernel (fun () -> Pblas.D.trsm_rlt buf (off k k) scratch 0 ~nb);
    copy_tile scratch 0 cbuf (k * tsz)
  in
  let repair k =
    incr detected;
    Metrics.incr m_detected;
    Metrics.incr m_faults_detected;
    let t0 = if Span.active () then Xsc_obs.Clock.now_ns () else 0 in
    replay k;
    note_replay ~t0 k;
    if not (verify k) then raise (Unrecoverable k)
  in
  let restarts, written, resumed =
    drive ~kind:0 ~n ~nb ~nt ~fp ~buf ~sums:[| cbuf |] ~pristine:(buf0, [| c0 |]) ~panel
      ~update ~verify ~repair ~exec_dag ~checkpoint ~max_restarts
  in
  {
    steps = nt;
    detected = !detected;
    repaired_tiles = !repaired;
    replayed_kernels = !replayed;
    restarts;
    checkpoints_written = written;
    resumed;
  }

(* ---- LU (no pivoting) ---- *)

let getrf_ft ?(exec = Runtime_api.Sequential) ?harness ?(abft = true) ?(tol = 1e-6)
    ?checkpoint ?(max_restarts = 64) (p : PD.t) =
  let nt = p.PD.nt and nb = p.PD.nb and n = p.PD.n in
  let buf = p.PD.buf in
  let off = PD.off p in
  let tsz = nb * nb in
  let p0 = PD.copy p in
  let buf0 = p0.PD.buf in
  let fp = lazy (fingerprint buf0) in
  (* row border R protects L (tile-column sums), column border C protects U
     (tile-row sums) — LU needs both because the two factors live on
     opposite sides of the diagonal *)
  let rbuf = f64_create (nt * tsz) in
  let ubuf = f64_create (nt * tsz) in
  Bigarray.Array1.fill rbuf 0.0;
  Bigarray.Array1.fill ubuf 0.0;
  if abft then
    for a = 0 to nt - 1 do
      let rb = a * tsz in
      for b = 0 to nt - 1 do
        let oc = off b a and orr = off a b in
        for e = 0 to tsz - 1 do
          A1.unsafe_set rbuf (rb + e)
            (A1.unsafe_get rbuf (rb + e) +. A1.unsafe_get buf (oc + e));
          A1.unsafe_set ubuf (rb + e)
            (A1.unsafe_get ubuf (rb + e) +. A1.unsafe_get buf (orr + e))
        done
      done
    done;
  let r0 = f64_create (nt * tsz) in
  let u0 = f64_create (nt * tsz) in
  Bigarray.Array1.blit rbuf r0;
  Bigarray.Array1.blit ubuf u0;
  let interp0 = Lu.packed_interp p in
  let interp =
    match harness with Some h -> Harness.wrap_packed h p interp0 | None -> interp0
  in
  let exec_dag tasks = ignore (Runtime_api.execute ~interp exec (Dag.build tasks)) in
  let fnb = float_of_int nb in
  let getrf_f = 2.0 *. fnb *. fnb *. fnb /. 3.0 in
  let trsm_f = fnb *. fnb *. fnb in
  let gemm_f = 2.0 *. fnb *. fnb *. fnb in
  let bytes = Runtime_api.tile_bytes ~nb in
  let datum i j = Task.datum i j ~stride:nt in
  let rdatum k = (nt * nt) + k in
  let udatum k = (nt * nt) + nt + k in
  let make_tasks build =
    let acc = ref [] and next = ref 0 in
    let emit ?run ?op name flops accesses =
      let id = !next in
      incr next;
      acc := Task.make ~id ~name ~flops ~bytes ?run ?op accesses :: !acc
    in
    build emit;
    List.rev !acc
  in
  let panel k =
    make_tasks (fun emit ->
        emit ~op:(Task.Getrf k) (Task.op_name (Task.Getrf k)) getrf_f
          [ Task.Read_write (datum k k) ];
        for j = k + 1 to nt - 1 do
          emit ~op:(Task.Trsm_l (k, j)) (Task.op_name (Task.Trsm_l (k, j))) trsm_f
            [ Task.Read (datum k k); Task.Read_write (datum k j) ]
        done;
        for i = k + 1 to nt - 1 do
          emit ~op:(Task.Trsm_u (i, k)) (Task.op_name (Task.Trsm_u (i, k))) trsm_f
            [ Task.Read (datum k k); Task.Read_write (datum i k) ]
        done;
        if abft then begin
          emit
            ~run:(fun () -> Pblas.D.trsm_ru buf (off k k) rbuf (k * tsz) ~nb)
            (Printf.sprintf "csum_r_trsm(%d)" k)
            trsm_f
            [ Task.Read (datum k k); Task.Read_write (rdatum k) ];
          emit
            ~run:(fun () -> Pblas.D.trsm_llu buf (off k k) ubuf (k * tsz) ~nb)
            (Printf.sprintf "csum_u_trsm(%d)" k)
            trsm_f
            [ Task.Read (datum k k); Task.Read_write (udatum k) ]
        end)
  in
  let update k =
    if k = nt - 1 then []
    else
      make_tasks (fun emit ->
          for i = k + 1 to nt - 1 do
            for j = k + 1 to nt - 1 do
              emit ~op:(Task.Gemm (i, j, k)) (Task.op_name (Task.Gemm (i, j, k))) gemm_f
                [ Task.Read (datum i k); Task.Read (datum k j); Task.Read_write (datum i j) ]
            done
          done;
          if abft then begin
            for j = k + 1 to nt - 1 do
              emit
                ~run:(fun () ->
                  Pblas.D.gemm_nn ~alpha:(-1.0) rbuf (k * tsz) buf (off k j) rbuf (j * tsz)
                    ~nb)
                (Printf.sprintf "csum_r_gemm(%d,%d)" k j)
                gemm_f
                [ Task.Read (datum k j); Task.Read (rdatum k); Task.Read_write (rdatum j) ]
            done;
            for i = k + 1 to nt - 1 do
              emit
                ~run:(fun () ->
                  Pblas.D.gemm_nn ~alpha:(-1.0) buf (off i k) ubuf (k * tsz) ubuf (i * tsz)
                    ~nb)
                (Printf.sprintf "csum_u_gemm(%d,%d)" k i)
                gemm_f
                [ Task.Read (datum i k); Task.Read (udatum k); Task.Read_write (udatum i) ]
            done
          end)
  in
  let check (cb : Pblas.f64) base (s : float array) =
    let err = ref 0.0 and scale = ref 1.0 in
    for e = 0 to tsz - 1 do
      let cv = A1.unsafe_get cb (base + e) and sv = Array.unsafe_get s e in
      let ac = abs_float cv and asv = abs_float sv in
      if ac > !scale then scale := ac;
      if asv > !scale then scale := asv;
      let d = abs_float (cv -. sv) in
      if d > !err then err := d
    done;
    !err <= tol *. !scale
  in
  let vsum = Array.make tsz 0.0 in
  let verify k =
    (* R(k) = sum_bi L(bi,k): unit-lower diagonal contribution *)
    let s = vsum in
    Array.fill s 0 tsz 0.0;
    let o = off k k in
    for r = 0 to nb - 1 do
      s.((r * nb) + r) <- 1.0;
      for c = 0 to r - 1 do
        let e = (r * nb) + c in
        Array.unsafe_set s e (A1.unsafe_get buf (o + e))
      done
    done;
    for bi = k + 1 to nt - 1 do
      let ob = off bi k in
      for e = 0 to tsz - 1 do
        Array.unsafe_set s e (Array.unsafe_get s e +. A1.unsafe_get buf (ob + e))
      done
    done;
    let r_ok = check rbuf (k * tsz) s in
    (* C(k) = sum_bj U(k,bj): upper-including-diagonal contribution *)
    Array.fill s 0 tsz 0.0;
    for r = 0 to nb - 1 do
      for c = r to nb - 1 do
        let e = (r * nb) + c in
        Array.unsafe_set s e (A1.unsafe_get buf (o + e))
      done
    done;
    for bj = k + 1 to nt - 1 do
      let ob = off k bj in
      for e = 0 to tsz - 1 do
        Array.unsafe_set s e (Array.unsafe_get s e +. A1.unsafe_get buf (ob + e))
      done
    done;
    let u_ok = check ubuf (k * tsz) s in
    r_ok && u_ok
  in
  let verify = if abft then verify else fun _ -> true in
  let detected = ref 0 and repaired = ref 0 and replayed = ref 0 in
  let scratch = f64_create tsz in
  let sub b o = Bigarray.Array1.sub b o tsz in
  let copy_tile src so dst dst_off = Bigarray.Array1.blit (sub src so) (sub dst dst_off) in
  let tiles_equal (a : Pblas.f64) ao (b : Pblas.f64) bo =
    let rec go e =
      e >= tsz
      || (Int64.equal (Int64.bits_of_float a.{ao + e}) (Int64.bits_of_float b.{bo + e})
          && go (e + 1))
    in
    go 0
  in
  let replay k =
    let kernel f =
      f ();
      incr replayed;
      Metrics.incr m_replayed
    in
    let repair_if_differs o =
      if not (tiles_equal buf o scratch 0) then begin
        copy_tile scratch 0 buf o;
        incr repaired;
        Metrics.incr m_repaired
      end
    in
    (* diagonal first: the whole cross depends on it *)
    copy_tile buf0 (off k k) scratch 0;
    for k' = 0 to k - 1 do
      kernel (fun () ->
          Pblas.D.gemm_nn ~alpha:(-1.0) buf (off k k') buf (off k' k) scratch 0 ~nb)
    done;
    kernel (fun () -> Pblas.D.getrf_nopiv scratch 0 ~nb);
    repair_if_differs (off k k);
    (* column panel: L(i,k) *)
    for i = k + 1 to nt - 1 do
      copy_tile buf0 (off i k) scratch 0;
      for k' = 0 to k - 1 do
        kernel (fun () ->
            Pblas.D.gemm_nn ~alpha:(-1.0) buf (off i k') buf (off k' k) scratch 0 ~nb)
      done;
      kernel (fun () -> Pblas.D.trsm_ru buf (off k k) scratch 0 ~nb);
      repair_if_differs (off i k)
    done;
    (* row panel: U(k,j) *)
    for j = k + 1 to nt - 1 do
      copy_tile buf0 (off k j) scratch 0;
      for k' = 0 to k - 1 do
        kernel (fun () ->
            Pblas.D.gemm_nn ~alpha:(-1.0) buf (off k k') buf (off k' j) scratch 0 ~nb)
      done;
      kernel (fun () -> Pblas.D.trsm_llu buf (off k k) scratch 0 ~nb);
      repair_if_differs (off k j)
    done;
    (* rebuild both border tiles along the clean trajectory *)
    copy_tile r0 (k * tsz) scratch 0;
    for k' = 0 to k - 1 do
      kernel (fun () ->
          Pblas.D.gemm_nn ~alpha:(-1.0) rbuf (k' * tsz) buf (off k' k) scratch 0 ~nb)
    done;
    kernel (fun () -> Pblas.D.trsm_ru buf (off k k) scratch 0 ~nb);
    copy_tile scratch 0 rbuf (k * tsz);
    copy_tile u0 (k * tsz) scratch 0;
    for k' = 0 to k - 1 do
      kernel (fun () ->
          Pblas.D.gemm_nn ~alpha:(-1.0) buf (off k k') ubuf (k' * tsz) scratch 0 ~nb)
    done;
    kernel (fun () -> Pblas.D.trsm_llu buf (off k k) scratch 0 ~nb);
    copy_tile scratch 0 ubuf (k * tsz)
  in
  let repair k =
    incr detected;
    Metrics.incr m_detected;
    Metrics.incr m_faults_detected;
    let t0 = if Span.active () then Xsc_obs.Clock.now_ns () else 0 in
    replay k;
    note_replay ~t0 k;
    if not (verify k) then raise (Unrecoverable k)
  in
  let restarts, written, resumed =
    drive ~kind:1 ~n ~nb ~nt ~fp ~buf ~sums:[| rbuf; ubuf |] ~pristine:(buf0, [| r0; u0 |])
      ~panel ~update ~verify ~repair ~exec_dag ~checkpoint ~max_restarts
  in
  {
    steps = nt;
    detected = !detected;
    repaired_tiles = !repaired;
    replayed_kernels = !replayed;
    restarts;
    checkpoints_written = written;
    resumed;
  }
