open Xsc_linalg
module Tile = Xsc_tile.Tile
module Task = Xsc_runtime.Task
module Dag = Xsc_runtime.Dag

let kernel_flops nb =
  let fnb = float_of_int nb in
  let getrf = 2.0 *. fnb *. fnb *. fnb /. 3.0 in
  let trsm = fnb *. fnb *. fnb in
  let gemm = 2.0 *. fnb *. fnb *. fnb in
  (getrf, trsm, gemm)

let tasks ?(with_closures = true) (t : Tile.t) =
  if t.Tile.mt <> t.Tile.nt then invalid_arg "Lu.tasks: matrix not square";
  let nt = t.Tile.nt and nb = t.Tile.nb in
  let getrf_f, trsm_f, gemm_f = kernel_flops nb in
  let bytes = Runtime_api.tile_bytes ~nb in
  let datum i j = Task.datum i j ~stride:nt in
  let acc = ref [] in
  let next_id = ref 0 in
  let emit name flops accesses run =
    let id = !next_id in
    incr next_id;
    let run = if with_closures then Some run else None in
    acc := Task.make ~id ~name ~flops ~bytes ?run accesses :: !acc
  in
  for k = 0 to nt - 1 do
    let akk = Tile.tile t k k in
    emit
      (Printf.sprintf "getrf(%d,%d)" k k)
      getrf_f
      [ Task.Read_write (datum k k) ]
      (fun () -> Lapack.getrf_nopiv akk);
    for j = k + 1 to nt - 1 do
      let akj = Tile.tile t k j in
      emit
        (Printf.sprintf "trsm_l(%d,%d)" k j)
        trsm_f
        [ Task.Read (datum k k); Task.Read_write (datum k j) ]
        (fun () ->
          (* A_kj <- L_kk^-1 A_kj *)
          Blas.trsm ~side:Blas.Left ~uplo:Blas.Lower ~diag:Blas.Unit ~alpha:1.0 akk akj)
    done;
    for i = k + 1 to nt - 1 do
      let aik = Tile.tile t i k in
      emit
        (Printf.sprintf "trsm_u(%d,%d)" i k)
        trsm_f
        [ Task.Read (datum k k); Task.Read_write (datum i k) ]
        (fun () ->
          (* A_ik <- A_ik U_kk^-1 *)
          Blas.trsm ~side:Blas.Right ~uplo:Blas.Upper ~alpha:1.0 akk aik)
    done;
    for i = k + 1 to nt - 1 do
      let aik = Tile.tile t i k in
      for j = k + 1 to nt - 1 do
        let akj = Tile.tile t k j in
        let aij = Tile.tile t i j in
        emit
          (Printf.sprintf "gemm(%d,%d,%d)" i j k)
          gemm_f
          [ Task.Read (datum i k); Task.Read (datum k j); Task.Read_write (datum i j) ]
          (fun () -> Blas.gemm ~alpha:(-1.0) aik akj ~beta:1.0 aij)
      done
    done
  done;
  List.rev !acc

let dag ?with_closures t = Dag.build (tasks ?with_closures t)

let factor ?(exec = Runtime_api.Sequential) t =
  ignore (Runtime_api.execute_exn exec (dag t))

(* Closure-free op-encoded task list; see Cholesky.tasks_ops. *)
let tasks_ops ~nt ~nb =
  let getrf_f, trsm_f, gemm_f = kernel_flops nb in
  let bytes = Runtime_api.tile_bytes ~nb in
  let datum i j = Task.datum i j ~stride:nt in
  let acc = ref [] in
  let next_id = ref 0 in
  let emit op flops accesses =
    let id = !next_id in
    incr next_id;
    acc := Task.make ~id ~name:(Task.op_name op) ~flops ~bytes ~op accesses :: !acc
  in
  for k = 0 to nt - 1 do
    emit (Task.Getrf k) getrf_f [ Task.Read_write (datum k k) ];
    for j = k + 1 to nt - 1 do
      emit (Task.Trsm_l (k, j)) trsm_f [ Task.Read (datum k k); Task.Read_write (datum k j) ]
    done;
    for i = k + 1 to nt - 1 do
      emit (Task.Trsm_u (i, k)) trsm_f [ Task.Read (datum k k); Task.Read_write (datum i k) ]
    done;
    for i = k + 1 to nt - 1 do
      for j = k + 1 to nt - 1 do
        emit
          (Task.Gemm (i, j, k))
          gemm_f
          [ Task.Read (datum i k); Task.Read (datum k j); Task.Read_write (datum i j) ]
      done
    done
  done;
  List.rev !acc

let dag_ops ~nt ~nb = Dag.build (tasks_ops ~nt ~nb)

let packed_interp (p : Xsc_tile.Packed.D.t) =
  let module P = Xsc_tile.Packed.D in
  let nb = p.P.nb in
  let buf = p.P.buf in
  let off = P.off p in
  fun (op : Task.op) ->
    match op with
    | Task.Getrf k -> Pblas.D.getrf_nopiv buf (off k k) ~nb
    | Task.Trsm_l (k, j) -> Pblas.D.trsm_llu buf (off k k) buf (off k j) ~nb
    | Task.Trsm_u (i, k) -> Pblas.D.trsm_ru buf (off k k) buf (off i k) ~nb
    | Task.Gemm (i, j, k) ->
      Pblas.D.gemm_nn ~alpha:(-1.0) buf (off i k) buf (off k j) buf (off i j) ~nb
    | op -> invalid_arg ("Lu.packed_interp: unexpected op " ^ Task.op_name op)

let factor_packed ?(exec = Runtime_api.Sequential) (p : Xsc_tile.Packed.D.t) =
  let dag = dag_ops ~nt:p.Xsc_tile.Packed.D.nt ~nb:p.Xsc_tile.Packed.D.nb in
  ignore (Runtime_api.execute_exn ~interp:(packed_interp p) exec dag)

let solve (t : Tile.t) b =
  let nt = t.Tile.nt and nb = t.Tile.nb in
  if Array.length b <> t.Tile.rows then invalid_arg "Lu.solve: dimension mismatch";
  let y = Tile.tile_vec ~nb b in
  (* forward: unit-lower L y = b *)
  for k = 0 to nt - 1 do
    for j = 0 to k - 1 do
      Blas.gemv ~alpha:(-1.0) (Tile.tile t k j) y.(j) ~beta:1.0 y.(k)
    done;
    Blas.trsv ~uplo:Blas.Lower ~diag:Blas.Unit (Tile.tile t k k) y.(k)
  done;
  (* backward: U x = y *)
  for k = nt - 1 downto 0 do
    for j = k + 1 to nt - 1 do
      Blas.gemv ~alpha:(-1.0) (Tile.tile t k j) y.(j) ~beta:1.0 y.(k)
    done;
    Blas.trsv ~uplo:Blas.Upper (Tile.tile t k k) y.(k)
  done;
  Tile.untile_vec y

let factor_mat ?exec ~nb a =
  let t = Tile.of_mat ~nb a in
  factor ?exec t;
  t

let flops ~nt ~nb =
  let getrf_f, trsm_f, gemm_f = kernel_flops nb in
  let fnt = float_of_int nt in
  let trsm_n = fnt *. (fnt -. 1.0) in
  let gemm_n = fnt *. (fnt -. 1.0) *. ((2.0 *. fnt) -. 1.0) /. 6.0 in
  (fnt *. getrf_f) +. (trsm_n *. trsm_f) +. (gemm_n *. gemm_f)

let task_count ~nt =
  (* getrf: nt, trsm: nt(nt-1), gemm: sum k (nt-1-k)^2 = nt(nt-1)(2nt-1)/6 *)
  nt + (nt * (nt - 1)) + (nt * (nt - 1) * ((2 * nt) - 1) / 6)
