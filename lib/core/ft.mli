(** Fault-tolerant tiled factorizations over packed storage: in-DAG ABFT
    detection, dependence-cone replay repair, and online checkpoint/restart.

    The recovery lattice, cheapest first:

    + {e ABFT detect + cone replay} — one checksum row of tiles rides the
      factorization ([Abft.overhead_model ~n ~nb] predicts the flop cost);
      each panel is verified before its consumers run, a mismatch triggers
      recomputation of just that panel's dependence cone from the pristine
      input plus already-verified panels, bitwise identical to a fault-free
      run;
    + {e checkpoint/restart} — task-body exceptions surface as
      {!Xsc_runtime.Real_exec.Task_failed} after a clean executor abort; the
      driver rolls back to the last snapshot (taken every [every] steps,
      optionally persisted atomically via {!Xsc_resilience.Checkpoint}) and
      replays only the remaining steps;
    + {e fail-stop} — after [max_restarts] failed restarts the last
      [Task_failed] propagates to the caller.

    Execution is step-synchronised: panel sub-DAG, verify, then update
    sub-DAG, all through the real executors (any {!Runtime_api.exec}). A
    corrupted tile in column [j] is read by no task before panel [j]'s
    verification, so damage is always detected before it can propagate. *)

type report = {
  steps : int;  (** outer steps executed ([nt]) *)
  detected : int;  (** panel verifications that failed (fault events) *)
  repaired_tiles : int;  (** tiles found damaged and overwritten by replay *)
  replayed_kernels : int;  (** kernels run during cone replay *)
  restarts : int;  (** rollbacks after an executor-reported task failure *)
  checkpoints_written : int;  (** checkpoint files persisted *)
  resumed : bool;  (** this run started from an on-disk checkpoint *)
}

type ckpt_policy = {
  path : string option;
      (** where to persist snapshots (atomic + CRC via
          {!Xsc_resilience.Checkpoint}); [None] keeps snapshots in memory
          only (rollback works, cross-process resume does not) *)
  every : int;  (** snapshot after every [every] completed steps; >= 1 *)
}

exception Unrecoverable of int
(** Panel [k] still fails verification after replay — the pristine copy or
    an already-verified panel was damaged outside the fault model. *)

val auto_every : step_seconds:float -> checkpoint_seconds:float -> mtbf:float -> int
(** Young-interval checkpoint cadence in steps:
    [sqrt(2 C M) / step_seconds], clamped to at least 1. *)

val potrf_ft :
  ?exec:Runtime_api.exec ->
  ?harness:Xsc_resilience.Harness.t ->
  ?abft:bool ->
  ?tol:float ->
  ?checkpoint:ckpt_policy ->
  ?max_restarts:int ->
  Xsc_tile.Packed.D.t ->
  report
(** Fault-tolerant packed tiled Cholesky (lower). The result buffer is
    bitwise identical to {!Xsc_tile.Packed.D.potrf} on the same input —
    replay repair recomputes clean values exactly, and kernel order per
    tile is schedule-independent. [harness] injects faults during
    execution (see {!Xsc_resilience.Harness}); [abft] (default [true])
    set to [false] drops to restart-only mode — no checksum row, no
    per-panel verification, so silent corruption passes undetected while
    task failures still roll back and replay; it is the recovery-lattice
    point below ABFT and the ablation baseline for measuring pure ABFT
    overhead. [tol] (default [1e-6]) is the relative checksum mismatch
    threshold; [max_restarts] (default 64) bounds rollbacks before the
    failure is re-raised. If [checkpoint] names a [path] holding a valid
    checkpoint of the same input matrix (fingerprint-matched), the run
    resumes from its step frontier; the file is removed on successful
    completion. Raises {!Unrecoverable} if a panel cannot be repaired,
    [Invalid_argument] if [every < 1]. *)

val getrf_ft :
  ?exec:Runtime_api.exec ->
  ?harness:Xsc_resilience.Harness.t ->
  ?abft:bool ->
  ?tol:float ->
  ?checkpoint:ckpt_policy ->
  ?max_restarts:int ->
  Xsc_tile.Packed.D.t ->
  report
(** Fault-tolerant packed tiled LU (no pivoting), bitwise identical to
    {!Xsc_tile.Packed.D.getrf_nopiv}. Carries two checksum borders: a row
    protecting [L] and a column protecting [U]. Same recovery lattice and
    parameters as {!potrf_ft}. *)
