(** High-level solver front end — the library's main entry point.

    Wraps the tiled factorizations with padding (so any size works, not just
    multiples of the tile size), execution policy selection, optional
    mixed-precision iterative refinement, and optional ABFT verification —
    i.e. the "new rules" packaged behind one call. *)

open Xsc_linalg

type options = {
  nb : int;  (** tile size *)
  exec : Runtime_api.exec;
}

val default : options
(** [nb = 64], [Sequential] — the untuned baseline. When [?opts] is
    omitted the solvers do {i not} use this record verbatim: they read the
    host's kernel-tuning cache at call time
    ({!Xsc_tile.Packed.tuned_nb}[ ~fallback:64]), so an [xsc tune] winner
    reaches every padding/tiling site without threading a parameter. *)

val tuned_default : unit -> options
(** The options an [?opts]-less call resolves to right now: tuned tile
    size (fallback 64), [Sequential]. *)

val with_workers : ?nb:int -> int -> options
(** Dataflow execution on [n] domains. [nb] defaults to the tuned tile
    size at call time, like the [?opts]-less solvers. *)

val solve_spd : ?opts:options -> Mat.t -> Vec.t -> Vec.t
(** SPD solve via tiled Cholesky. The matrix is padded to a tile multiple
    with an identity block (harmless for SPD). *)

val solve_general : ?opts:options -> Mat.t -> Vec.t -> Vec.t
(** General solve. Strictly diagonally dominant matrices go through the
    tiled no-pivoting LU (fastest DAG); everything else through the tiled
    incremental-pivoting LU ({!Lu_inc}) — still a scalable task DAG, with
    tile-local pivoting providing the stability. *)

val solve_ls : ?opts:options -> Mat.t -> Vec.t -> Vec.t
(** Overdetermined least squares via tiled QR (dimensions must be tile
    multiples with [rows >= cols]). *)

type mixed_report = {
  x : Vec.t;
  iterations : int;
  converged : bool;
  backward_error : float;
  modeled_speedup : float;
      (** modelled time(fp64 direct) / time(low-precision + refinement) on a
          machine with the given rate advantage *)
}

val solve_spd_mixed :
  ?opts:options -> ?precision:string -> ?low_rate_mult:float -> Mat.t -> Vec.t ->
  mixed_report
(** Mixed-precision SPD solve: Cholesky at [precision] (default ["fp32"]),
    iterative refinement in double. [low_rate_mult] is the modelled hardware
    rate advantage of the low format (default 2). *)

type protected_report = {
  x : Vec.t;
  corruption_detected : bool;
  recovered_from_row : int option;
}

val solve_spd_protected :
  ?opts:options -> ?inject:(Mat.t -> unit) -> Mat.t -> Vec.t -> protected_report
(** ABFT-verified SPD solve: factor, run the O(n²) checksum verification,
    recover by lineage recomputation if corruption is found (the [inject]
    hook corrupts the factor between factorization and verification — used
    by tests and the resilience experiment), then solve. *)

val residual : Mat.t -> Vec.t -> Vec.t -> float
(** Normwise relative backward error
    [||b - Ax||_inf / (||A||_inf ||x||_inf + ||b||_inf)]. *)
