(** Tiled LU factorization (without pivoting) as a task DAG.

    Tile LU trades the global pivot search — a scalability bottleneck,
    because it synchronises the whole panel — for a no-pivoting factorization
    that is valid for diagonally dominant (and most well-conditioned
    random-SPD-shifted) matrices; this is the standard trade the tile
    algorithms make (PLASMA offers incremental pivoting for the general
    case — here the partial-pivoting LAPACK path is the general fallback,
    see {!Xsc_linalg.Lapack.getrf}). *)

open Xsc_linalg

val tasks : ?with_closures:bool -> Xsc_tile.Tile.t -> Runtime_api.task list
val dag : ?with_closures:bool -> Xsc_tile.Tile.t -> Runtime_api.dag

val factor : ?exec:Runtime_api.exec -> Xsc_tile.Tile.t -> unit
(** In place: unit-lower [L] below the diagonal, [U] on and above. Raises
    [Lapack.Singular] on a zero pivot. *)

val solve : Xsc_tile.Tile.t -> Vec.t -> Vec.t
(** Solve from factored tiles (forward unit-lower, backward upper). *)

val factor_mat : ?exec:Runtime_api.exec -> nb:int -> Mat.t -> Xsc_tile.Tile.t

val tasks_ops : nt:int -> nb:int -> Runtime_api.task list
(** Closure-free task list (op bodies); see {!Cholesky.tasks_ops}. *)

val dag_ops : nt:int -> nb:int -> Runtime_api.dag

val packed_interp : Xsc_tile.Packed.D.t -> Xsc_runtime.Task.op -> unit
(** Interpreter binding op coordinates to packed tile storage. *)

val factor_packed : ?exec:Runtime_api.exec -> Xsc_tile.Packed.D.t -> unit
(** Unpivoted LU of a packed matrix in place through the op-encoded DAG;
    bitwise identical to {!factor} on the same input for every executor.
    Raises [Pblas.Singular] on a zero pivot. *)

val flops : nt:int -> nb:int -> float
val task_count : nt:int -> int
