open Xsc_linalg
module Task = Xsc_runtime.Task
module Dag = Xsc_runtime.Dag

(* Batched kernels are embarrassingly parallel: task i writes datum i. A
   kernel exception must not vanish inside a worker domain — and must not
   poison the siblings: the results variants capture each problem's outcome
   in its own slot, so one singular matrix fails one slot while the rest of
   the batch completes. The raising wrappers (the historical interface)
   re-raise the first failure in index order after the whole batch ran. *)

let run_batch_results ?(exec = Runtime_api.Sequential) kernels =
  let n = Array.length kernels in
  let out = Array.make n (Error Not_found) in
  let tasks =
    List.init n (fun id ->
        let run () = out.(id) <- (try Ok (kernels.(id) ()) with e -> Error e) in
        Task.make ~id ~name:(Printf.sprintf "batch(%d)" id) ~flops:1.0 ~run
          [ Task.Write id ])
  in
  ignore (Runtime_api.execute_exn exec (Dag.build tasks));
  out

let run_batch ?exec kernels =
  run_batch_results ?exec kernels
  |> Array.iter (function Ok () -> () | Error e -> raise e)

let potrf_batch_results ?exec batch =
  run_batch_results ?exec (Array.map (fun m () -> Lapack.potrf m) batch)

let potrf_batch ?exec batch =
  run_batch ?exec (Array.map (fun m () -> Lapack.potrf m) batch)

let getrf_batch_results ?exec batch =
  run_batch_results ?exec (Array.map (fun m () -> Lapack.getrf m) batch)

let getrf_batch ?exec batch =
  let pivots = Array.map (fun (m : Mat.t) -> Array.make m.rows 0) batch in
  run_batch ?exec
    (Array.mapi (fun i m () -> pivots.(i) <- Lapack.getrf m) batch);
  pivots

let gemm_batch ?exec ~alpha ~beta triples =
  run_batch ?exec
    (Array.map (fun (a, b, c) () -> Blas.gemm ~alpha a b ~beta c) triples)

let chol_solve_batch ?exec batch rhs =
  if Array.length batch <> Array.length rhs then
    invalid_arg "Batched.chol_solve_batch: batch size mismatch";
  let out = Array.map Array.copy rhs in
  run_batch ?exec
    (Array.mapi
       (fun i m () ->
         let f = Mat.copy m in
         Lapack.potrf f;
         Lapack.potrs f out.(i))
       batch);
  out

let tasks_potrf batch =
  Array.to_list
    (Array.mapi
       (fun id (m : Mat.t) ->
         Task.make ~id ~name:(Printf.sprintf "potrf(%d)" id)
           ~flops:(Lapack.potrf_flops m.rows)
           ~bytes:(8.0 *. float_of_int (m.rows * m.cols))
           ~run:(fun () -> Lapack.potrf m)
           [ Task.Write id ])
       batch)

let batch_flops_potrf batch =
  Array.fold_left (fun acc (m : Mat.t) -> acc +. Lapack.potrf_flops m.rows) 0.0 batch
