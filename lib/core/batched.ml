open Xsc_linalg
module Task = Xsc_runtime.Task
module Dag = Xsc_runtime.Dag

(* Batched kernels are embarrassingly parallel: task i writes datum i. Any
   kernel exception must not vanish inside a worker domain, so failures are
   stashed and re-raised on the caller. *)

let run_batch ?(exec = Runtime_api.Sequential) kernels =
  let n = Array.length kernels in
  let failure = Atomic.make None in
  let tasks =
    List.init n (fun id ->
        let run () =
          try kernels.(id) ()
          with e -> Atomic.set failure (Some e)
        in
        Task.make ~id ~name:(Printf.sprintf "batch(%d)" id) ~flops:1.0 ~run
          [ Task.Write id ])
  in
  ignore (Runtime_api.execute_exn exec (Dag.build tasks));
  match Atomic.get failure with Some e -> raise e | None -> ()

let potrf_batch ?exec batch =
  run_batch ?exec (Array.map (fun m () -> Lapack.potrf m) batch)

let getrf_batch ?exec batch =
  let pivots = Array.map (fun (m : Mat.t) -> Array.make m.rows 0) batch in
  run_batch ?exec
    (Array.mapi (fun i m () -> pivots.(i) <- Lapack.getrf m) batch);
  pivots

let gemm_batch ?exec ~alpha ~beta triples =
  run_batch ?exec
    (Array.map (fun (a, b, c) () -> Blas.gemm ~alpha a b ~beta c) triples)

let chol_solve_batch ?exec batch rhs =
  if Array.length batch <> Array.length rhs then
    invalid_arg "Batched.chol_solve_batch: batch size mismatch";
  let out = Array.map Array.copy rhs in
  run_batch ?exec
    (Array.mapi
       (fun i m () ->
         let f = Mat.copy m in
         Lapack.potrf f;
         Lapack.potrs f out.(i))
       batch);
  out

let tasks_potrf batch =
  Array.to_list
    (Array.mapi
       (fun id (m : Mat.t) ->
         Task.make ~id ~name:(Printf.sprintf "potrf(%d)" id)
           ~flops:(Lapack.potrf_flops m.rows)
           ~bytes:(8.0 *. float_of_int (m.rows * m.cols))
           ~run:(fun () -> Lapack.potrf m)
           [ Task.Write id ])
       batch)

let batch_flops_potrf batch =
  Array.fold_left (fun acc (m : Mat.t) -> acc +. Lapack.potrf_flops m.rows) 0.0 batch
