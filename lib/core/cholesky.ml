open Xsc_linalg
module Tile = Xsc_tile.Tile
module Task = Xsc_runtime.Task
module Dag = Xsc_runtime.Dag

let kernel_flops nb =
  let fnb = float_of_int nb in
  let potrf = fnb *. fnb *. fnb /. 3.0 in
  let trsm = fnb *. fnb *. fnb in
  let syrk = fnb *. fnb *. (fnb +. 1.0) in
  let gemm = 2.0 *. fnb *. fnb *. fnb in
  (potrf, trsm, syrk, gemm)

let tasks ?(with_closures = true) (t : Tile.t) =
  if t.Tile.mt <> t.Tile.nt then invalid_arg "Cholesky.tasks: matrix not square";
  let nt = t.Tile.nt and nb = t.Tile.nb in
  let potrf_f, trsm_f, syrk_f, gemm_f = kernel_flops nb in
  let bytes = Runtime_api.tile_bytes ~nb in
  let datum i j = Task.datum i j ~stride:nt in
  let acc = ref [] in
  let next_id = ref 0 in
  let emit name flops accesses run =
    let id = !next_id in
    incr next_id;
    let run = if with_closures then Some run else None in
    acc := Task.make ~id ~name ~flops ~bytes ?run accesses :: !acc
  in
  for k = 0 to nt - 1 do
    let akk = Tile.tile t k k in
    emit
      (Printf.sprintf "potrf(%d,%d)" k k)
      potrf_f
      [ Task.Read_write (datum k k) ]
      (fun () -> Lapack.potrf akk);
    for i = k + 1 to nt - 1 do
      let aik = Tile.tile t i k in
      emit
        (Printf.sprintf "trsm(%d,%d)" i k)
        trsm_f
        [ Task.Read (datum k k); Task.Read_write (datum i k) ]
        (fun () ->
          (* A_ik <- A_ik L_kk^-T *)
          Blas.trsm ~side:Blas.Right ~uplo:Blas.Lower ~trans:Blas.Trans ~alpha:1.0 akk aik)
    done;
    for i = k + 1 to nt - 1 do
      let aik = Tile.tile t i k in
      let aii = Tile.tile t i i in
      emit
        (Printf.sprintf "syrk(%d,%d)" i k)
        syrk_f
        [ Task.Read (datum i k); Task.Read_write (datum i i) ]
        (fun () -> Blas.syrk ~uplo:Blas.Lower ~alpha:(-1.0) aik ~beta:1.0 aii);
      for j = k + 1 to i - 1 do
        let ajk = Tile.tile t j k in
        let aij = Tile.tile t i j in
        emit
          (Printf.sprintf "gemm(%d,%d,%d)" i j k)
          gemm_f
          [ Task.Read (datum i k); Task.Read (datum j k); Task.Read_write (datum i j) ]
          (fun () -> Blas.gemm ~transb:Blas.Trans ~alpha:(-1.0) aik ajk ~beta:1.0 aij)
      done
    done
  done;
  List.rev !acc

let dag ?with_closures t = Dag.build (tasks ?with_closures t)

let factor ?(exec = Runtime_api.Sequential) t =
  ignore (Runtime_api.execute_exn exec (dag t))

(* Closure-free task list: same program order, accesses and weights as
   [tasks], but each body is a Task.op variant — one immediate-tagged word
   instead of a closure capturing tile views. Storage is bound only at
   execution time by the interpreter, so one DAG shape serves any backing
   layout. *)
let tasks_ops ~nt ~nb =
  let potrf_f, trsm_f, syrk_f, gemm_f = kernel_flops nb in
  let bytes = Runtime_api.tile_bytes ~nb in
  let datum i j = Task.datum i j ~stride:nt in
  let acc = ref [] in
  let next_id = ref 0 in
  let emit op flops accesses =
    let id = !next_id in
    incr next_id;
    acc := Task.make ~id ~name:(Task.op_name op) ~flops ~bytes ~op accesses :: !acc
  in
  for k = 0 to nt - 1 do
    emit (Task.Potrf k) potrf_f [ Task.Read_write (datum k k) ];
    for i = k + 1 to nt - 1 do
      emit (Task.Trsm (k, i)) trsm_f [ Task.Read (datum k k); Task.Read_write (datum i k) ]
    done;
    for i = k + 1 to nt - 1 do
      emit (Task.Syrk (i, k)) syrk_f [ Task.Read (datum i k); Task.Read_write (datum i i) ];
      for j = k + 1 to i - 1 do
        emit
          (Task.Gemm (i, j, k))
          gemm_f
          [ Task.Read (datum i k); Task.Read (datum j k); Task.Read_write (datum i j) ]
      done
    done
  done;
  List.rev !acc

let dag_ops ~nt ~nb = Dag.build (tasks_ops ~nt ~nb)

(* Interpreter binding the op coordinates to packed tile storage: the
   kernels are the Pblas C microkernels, whose operation order matches the
   strided Blas/Lapack reference bitwise. *)
let packed_interp (p : Xsc_tile.Packed.D.t) =
  let module P = Xsc_tile.Packed.D in
  let nb = p.P.nb in
  let buf = p.P.buf in
  let off = P.off p in
  fun (op : Task.op) ->
    match op with
    | Task.Potrf k -> Pblas.D.potrf buf (off k k) ~nb
    | Task.Trsm (k, i) -> Pblas.D.trsm_rlt buf (off k k) buf (off i k) ~nb
    | Task.Syrk (i, k) ->
      Pblas.D.syrk_ln ~alpha:(-1.0) buf (off i k) ~beta:1.0 buf (off i i) ~nb
    | Task.Gemm (i, j, k) ->
      Pblas.D.gemm_nt ~alpha:(-1.0) buf (off i k) buf (off j k) buf (off i j) ~nb
    | op -> invalid_arg ("Cholesky.packed_interp: unexpected op " ^ Task.op_name op)

let factor_packed ?(exec = Runtime_api.Sequential) (p : Xsc_tile.Packed.D.t) =
  let dag = dag_ops ~nt:p.Xsc_tile.Packed.D.nt ~nb:p.Xsc_tile.Packed.D.nb in
  ignore (Runtime_api.execute_exn ~interp:(packed_interp p) exec dag)

let solve (t : Tile.t) b =
  let nt = t.Tile.nt and nb = t.Tile.nb in
  if Array.length b <> t.Tile.rows then invalid_arg "Cholesky.solve: dimension mismatch";
  let y = Tile.tile_vec ~nb b in
  (* forward: L y = b over tile rows *)
  for k = 0 to nt - 1 do
    for j = 0 to k - 1 do
      Blas.gemv ~alpha:(-1.0) (Tile.tile t k j) y.(j) ~beta:1.0 y.(k)
    done;
    Blas.trsv ~uplo:Blas.Lower (Tile.tile t k k) y.(k)
  done;
  (* backward: Lᵀ x = y; Lᵀ's (k,j) block is L(j,k)ᵀ *)
  for k = nt - 1 downto 0 do
    for j = k + 1 to nt - 1 do
      Blas.gemv ~trans:Blas.Trans ~alpha:(-1.0) (Tile.tile t j k) y.(j) ~beta:1.0 y.(k)
    done;
    Blas.trsv ~uplo:Blas.Lower ~trans:Blas.Trans (Tile.tile t k k) y.(k)
  done;
  Tile.untile_vec y

let factor_mat ?exec ~nb a =
  let t = Tile.of_mat ~nb a in
  factor ?exec t;
  t

let flops ~nt ~nb =
  let potrf_f, trsm_f, syrk_f, gemm_f = kernel_flops nb in
  let fnt = float_of_int nt in
  let trsm_n = fnt *. (fnt -. 1.0) /. 2.0 in
  let syrk_n = trsm_n in
  let gemm_n = fnt *. (fnt -. 1.0) *. (fnt -. 2.0) /. 6.0 in
  (fnt *. potrf_f) +. (trsm_n *. trsm_f) +. (syrk_n *. syrk_f) +. (gemm_n *. gemm_f)

let task_count ~nt =
  nt + (nt * (nt - 1) / 2 * 2) + (nt * (nt - 1) * (nt - 2) / 6)
