type task = Xsc_runtime.Task.t
type dag = Xsc_runtime.Dag.t

type exec =
  | Sequential
  | Dataflow of int
  | Forkjoin of int
  | Pooled of Xsc_runtime.Pool.t

(* Locality/priority hint for the work-stealing executor: rank ready tasks
   by flops-weighted bottom level, normalised into an int scale. Tasks on
   the critical path (the panel factorizations and the updates feeding
   them) then run before trailing-matrix updates whenever a worker has the
   choice, which is exactly the list-scheduling heuristic the simulator's
   List_critical_path policy uses. *)
let critical_path_priority dag =
  let bl = Xsc_runtime.Dag.bottom_level dag in
  let cp = Xsc_runtime.Dag.critical_path_flops dag in
  if cp <= 0.0 then fun _ -> 0
  else fun id -> int_of_float (1e6 *. bl.(id) /. cp)

let execute ?interp exec dag =
  match exec with
  | Sequential -> Xsc_runtime.Real_exec.run_sequential ?interp dag
  | Dataflow workers ->
    Xsc_runtime.Real_exec.run_dataflow ?interp ~priority:(critical_path_priority dag)
      ~workers dag
  | Forkjoin workers -> Xsc_runtime.Real_exec.run_forkjoin ?interp ~workers dag
  | Pooled pool ->
    (* critical-path ordering comes from the pool's composite key (its
       bottom-level tie-break), so no explicit priority hint is needed *)
    Xsc_runtime.Pool.run ?interp pool dag

(* High-level drivers (Cholesky.factor & co.) surface the task body's own
   exception — Singular from a non-SPD matrix is the caller's contract,
   the Task_failed wrapper an executor detail. Fault-aware callers
   (Ft.drive) use [execute] and handle Task_failed themselves. *)
let execute_exn ?interp exec dag =
  try execute ?interp exec dag
  with Xsc_runtime.Real_exec.Task_failed f -> raise f.Xsc_runtime.Real_exec.error

let tile_bytes ~nb = 8.0 *. float_of_int (nb * nb)

let datum = Xsc_runtime.Task.datum
