open Xsc_linalg
module Tile = Xsc_tile.Tile
module Task = Xsc_runtime.Task
module Dag = Xsc_runtime.Dag

type factorization = {
  tiles : Tile.t;
  ipiv_diag : int array array;
  stacked : (Mat.t * int array) option array array;
}

let create (t : Tile.t) =
  if t.Tile.mt <> t.Tile.nt then invalid_arg "Lu_inc.create: matrix not square";
  {
    tiles = t;
    ipiv_diag = Array.init t.Tile.nt (fun _ -> Array.make t.Tile.nb 0);
    stacked = Array.init t.Tile.mt (fun _ -> Array.make t.Tile.nt None);
  }

(* LU with partial pivoting of a rectangular m x nb matrix (m >= nb),
   eliminating the first nb columns; returns ipiv of length nb. This is the
   shared kernel of GETRF(k) (m = nb) and TSGETRF(i, k) (m = 2 nb). *)
let panel_getrf (s : Mat.t) =
  let m = s.Mat.rows and nb = s.Mat.cols in
  let ipiv = Array.make nb 0 in
  for j = 0 to nb - 1 do
    let pivot_row = ref j in
    let pivot_val = ref (abs_float (Mat.get s j j)) in
    for i = j + 1 to m - 1 do
      let v = abs_float (Mat.get s i j) in
      if v > !pivot_val then begin
        pivot_val := v;
        pivot_row := i
      end
    done;
    ipiv.(j) <- !pivot_row;
    if !pivot_val = 0.0 then raise (Lapack.Singular j);
    if !pivot_row <> j then
      for c = 0 to nb - 1 do
        let tmp = Mat.get s j c in
        Mat.set s j c (Mat.get s !pivot_row c);
        Mat.set s !pivot_row c tmp
      done;
    let sjj = Mat.get s j j in
    for i = j + 1 to m - 1 do
      let lij = Mat.get s i j /. sjj in
      Mat.set s i j lij;
      if lij <> 0.0 then
        for c = j + 1 to nb - 1 do
          Mat.set s i c (Mat.get s i c -. (lij *. Mat.get s j c))
        done
    done
  done;
  ipiv

(* Apply the inverse of a panel factorization (P then the unit-lower
   eliminations) to a stacked right-hand block of matching height. *)
let panel_apply (s : Mat.t) ipiv (c : Mat.t) =
  let nb = Array.length ipiv in
  Lapack.laswp c ipiv;
  for q = 0 to nb - 1 do
    for r = q + 1 to s.Mat.rows - 1 do
      let l = Mat.get s r q in
      if l <> 0.0 then
        for col = 0 to c.Mat.cols - 1 do
          Mat.set c r col (Mat.get c r col -. (l *. Mat.get c q col))
        done
    done
  done

(* TSGETRF: stack the current U_kk over A_ik, factor the pair with pivoting
   across both tiles; the new U_kk replaces the old, A_ik is consumed. *)
let tsgetrf_kernel ~nb a_kk a_ik =
  let s = Mat.create (2 * nb) nb in
  for i = 0 to nb - 1 do
    for j = i to nb - 1 do
      Mat.set s i j (Mat.get a_kk i j)
    done
  done;
  Mat.blit_block ~src:a_ik ~dst:s ~src_row:0 ~src_col:0 ~dst_row:nb ~dst_col:0 ~rows:nb
    ~cols:nb;
  let ipiv = panel_getrf s in
  for i = 0 to nb - 1 do
    for j = i to nb - 1 do
      Mat.set a_kk i j (Mat.get s i j)
    done
  done;
  for i = 0 to nb - 1 do
    for j = 0 to nb - 1 do
      Mat.set a_ik i j 0.0
    done
  done;
  (s, ipiv)

(* TSMLU: apply a TSGETRF transformation to the stacked pair of trailing
   tiles [c_top; c_bot]. *)
let tsmlu_kernel ~nb s ipiv c_top c_bot =
  let cols = c_top.Mat.cols in
  let c = Mat.create (2 * nb) cols in
  Mat.blit_block ~src:c_top ~dst:c ~src_row:0 ~src_col:0 ~dst_row:0 ~dst_col:0 ~rows:nb
    ~cols;
  Mat.blit_block ~src:c_bot ~dst:c ~src_row:0 ~src_col:0 ~dst_row:nb ~dst_col:0 ~rows:nb
    ~cols;
  panel_apply s ipiv c;
  Mat.blit_block ~src:c ~dst:c_top ~src_row:0 ~src_col:0 ~dst_row:0 ~dst_col:0 ~rows:nb
    ~cols;
  Mat.blit_block ~src:c ~dst:c_bot ~src_row:nb ~src_col:0 ~dst_row:0 ~dst_col:0 ~rows:nb
    ~cols

let kernel_flops nb =
  let fnb = float_of_int nb in
  let getrf = 2.0 *. fnb *. fnb *. fnb /. 3.0 in
  let apply = fnb *. fnb *. fnb in
  (* getrf of a 2nb x nb panel: m n^2 - n^3/3 multiply-adds, doubled *)
  let tsgetrf = (2.0 *. 2.0 *. fnb *. fnb *. fnb) -. (2.0 *. fnb *. fnb *. fnb /. 3.0) in
  let tsmlu = 2.0 *. fnb *. fnb *. fnb in
  (getrf, apply, tsgetrf, tsmlu)

let tasks ?(with_closures = true) f =
  let t = f.tiles in
  let nt = t.Tile.nt and nb = t.Tile.nb in
  let getrf_f, apply_f, tsgetrf_f, tsmlu_f = kernel_flops nb in
  let bytes = Runtime_api.tile_bytes ~nb in
  let datum i j = Task.datum i j ~stride:nt in
  let acc = ref [] in
  let next_id = ref 0 in
  let emit name flops accesses run =
    let id = !next_id in
    incr next_id;
    let run = if with_closures then Some run else None in
    acc := Task.make ~id ~name ~flops ~bytes ?run accesses :: !acc
  in
  for k = 0 to nt - 1 do
    let akk = Tile.tile t k k in
    let ipiv_k = f.ipiv_diag.(k) in
    emit
      (Printf.sprintf "getrf(%d)" k)
      getrf_f
      [ Task.Read_write (datum k k) ]
      (fun () ->
        let ipiv = panel_getrf akk in
        Array.blit ipiv 0 ipiv_k 0 nb);
    for j = k + 1 to nt - 1 do
      let akj = Tile.tile t k j in
      emit
        (Printf.sprintf "apply(%d,%d)" k j)
        apply_f
        [ Task.Read (datum k k); Task.Read_write (datum k j) ]
        (fun () -> panel_apply akk ipiv_k akj)
    done;
    for i = k + 1 to nt - 1 do
      let aik = Tile.tile t i k in
      emit
        (Printf.sprintf "tsgetrf(%d,%d)" i k)
        tsgetrf_f
        [ Task.Read_write (datum k k); Task.Read_write (datum i k) ]
        (fun () -> f.stacked.(i).(k) <- Some (tsgetrf_kernel ~nb akk aik));
      for j = k + 1 to nt - 1 do
        let akj = Tile.tile t k j in
        let aij = Tile.tile t i j in
        emit
          (Printf.sprintf "tsmlu(%d,%d,%d)" i j k)
          tsmlu_f
          [ Task.Read (datum i k); Task.Read_write (datum k j); Task.Read_write (datum i j) ]
          (fun () ->
            match f.stacked.(i).(k) with
            | Some (s, ipiv) -> tsmlu_kernel ~nb s ipiv akj aij
            | None -> failwith "Lu_inc: tsmlu before tsgetrf")
      done
    done
  done;
  List.rev !acc

let dag ?with_closures f = Dag.build (tasks ?with_closures f)

let factor ?(exec = Runtime_api.Sequential) t =
  let f = create t in
  ignore (Runtime_api.execute_exn exec (dag f));
  f

let apply_transforms f b =
  let t = f.tiles in
  let nt = t.Tile.nt and nb = t.Tile.nb in
  if Array.length b <> t.Tile.rows then invalid_arg "Lu_inc.apply_transforms: dimension mismatch";
  let chunks = Tile.tile_vec ~nb (Array.copy b) in
  let as_col v = Mat.init nb 1 (fun i _ -> v.(i)) in
  let of_col m v =
    for i = 0 to nb - 1 do
      v.(i) <- Mat.get m i 0
    done
  in
  for k = 0 to nt - 1 do
    let ck = as_col chunks.(k) in
    panel_apply (Tile.tile t k k) f.ipiv_diag.(k) ck;
    of_col ck chunks.(k);
    for i = k + 1 to nt - 1 do
      match f.stacked.(i).(k) with
      | None -> failwith "Lu_inc.apply_transforms: incomplete factorization"
      | Some (s, ipiv) ->
        let c = Mat.create (2 * nb) 1 in
        for r = 0 to nb - 1 do
          Mat.set c r 0 chunks.(k).(r);
          Mat.set c (nb + r) 0 chunks.(i).(r)
        done;
        panel_apply s ipiv c;
        for r = 0 to nb - 1 do
          chunks.(k).(r) <- Mat.get c r 0;
          chunks.(i).(r) <- Mat.get c (nb + r) 0
        done
    done
  done;
  Tile.untile_vec chunks

let solve f b =
  let t = f.tiles in
  let nt = t.Tile.nt and nb = t.Tile.nb in
  let y = Tile.tile_vec ~nb (apply_transforms f b) in
  (* back-substitution with U (upper tile triangle; diagonal tiles upper) *)
  for k = nt - 1 downto 0 do
    for j = k + 1 to nt - 1 do
      Blas.gemv ~alpha:(-1.0) (Tile.tile t k j) y.(j) ~beta:1.0 y.(k)
    done;
    Blas.trsv ~uplo:Blas.Upper (Tile.tile t k k) y.(k)
  done;
  Tile.untile_vec y

let factor_mat ?exec ~nb a =
  let t = Tile.of_mat ~nb a in
  factor ?exec t

let flops ~nt ~nb =
  let getrf_f, apply_f, tsgetrf_f, tsmlu_f = kernel_flops nb in
  let acc = ref 0.0 in
  for k = 0 to nt - 1 do
    let below = nt - 1 - k in
    acc := !acc +. getrf_f +. (float_of_int below *. (apply_f +. tsgetrf_f));
    acc := !acc +. (float_of_int (below * below) *. tsmlu_f)
  done;
  !acc

let task_count ~nt =
  let acc = ref 0 in
  for k = 0 to nt - 1 do
    let below = nt - 1 - k in
    acc := !acc + 1 + (2 * below) + (below * below)
  done;
  !acc
