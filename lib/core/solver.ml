open Xsc_linalg
module Tile = Xsc_tile.Tile

type options = {
  nb : int;
  exec : Runtime_api.exec;
}

let default = { nb = 64; exec = Runtime_api.Sequential }

(* Tuned tile size read at call time, not module init: Kconfig.autoload
   runs from executable entry points, which may happen after this module
   is initialised. *)
let tuned_default () =
  { nb = Xsc_tile.Packed.tuned_nb ~fallback:default.nb; exec = default.exec }

let with_workers ?nb n =
  let nb =
    match nb with Some nb -> nb | None -> Xsc_tile.Packed.tuned_nb ~fallback:default.nb
  in
  { nb; exec = Runtime_api.Dataflow n }

let resolve = function Some o -> o | None -> tuned_default ()

let residual a x b =
  let r = Array.copy b in
  Blas.gemv ~alpha:(-1.0) a x ~beta:1.0 r;
  let denom = (Mat.norm_inf a *. Vec.norm_inf x) +. Vec.norm_inf b in
  if denom = 0.0 then 0.0 else Vec.norm_inf r /. denom

let pad_rhs b padded =
  let out = Array.make padded 0.0 in
  Array.blit b 0 out 0 (Array.length b);
  out

let solve_spd ?opts a b =
  let opts = resolve opts in
  let n = a.Mat.rows in
  if n <> a.Mat.cols || Array.length b <> n then invalid_arg "Solver.solve_spd: dimensions";
  let padded, _ = Tile.pad_to ~nb:opts.nb a in
  let t = Tile.of_mat ~nb:opts.nb padded in
  Cholesky.factor ~exec:opts.exec t;
  let x = Cholesky.solve t (pad_rhs b padded.Mat.rows) in
  Array.sub x 0 n

let strictly_diag_dominant a =
  let n = a.Mat.rows in
  let ok = ref true in
  for i = 0 to n - 1 do
    let off = ref 0.0 in
    for j = 0 to n - 1 do
      if j <> i then off := !off +. abs_float (Mat.get a i j)
    done;
    if abs_float (Mat.get a i i) <= !off then ok := false
  done;
  !ok

let solve_general ?opts a b =
  let opts = resolve opts in
  let n = a.Mat.rows in
  if n <> a.Mat.cols || Array.length b <> n then
    invalid_arg "Solver.solve_general: dimensions";
  let padded, _ = Tile.pad_to ~nb:opts.nb a in
  let t = Tile.of_mat ~nb:opts.nb padded in
  if strictly_diag_dominant a then begin
    Lu.factor ~exec:opts.exec t;
    let x = Lu.solve t (pad_rhs b padded.Mat.rows) in
    Array.sub x 0 n
  end
  else begin
    let f = Lu_inc.factor ~exec:opts.exec t in
    let x = Lu_inc.solve f (pad_rhs b padded.Mat.rows) in
    Array.sub x 0 n
  end

let solve_ls ?opts a b =
  let opts = resolve opts in
  let m, n = Mat.dims a in
  if m < n then invalid_arg "Solver.solve_ls: system must be overdetermined";
  if m mod opts.nb <> 0 || n mod opts.nb <> 0 then
    invalid_arg "Solver.solve_ls: dimensions must be multiples of the tile size";
  if Array.length b <> m then invalid_arg "Solver.solve_ls: rhs dimension";
  let t = Tile.of_mat ~nb:opts.nb a in
  let f = Qr.factor ~exec:opts.exec t in
  Qr.solve f b

type mixed_report = {
  x : Vec.t;
  iterations : int;
  converged : bool;
  backward_error : float;
  modeled_speedup : float;
}

let solve_spd_mixed ?(opts = default) ?(precision = "fp32") ?(low_rate_mult = 2.0) a b =
  ignore opts;
  let n = a.Mat.rows in
  let p = Scalar.of_name precision in
  let report = Xsc_precision.Ir.chol_ir ~precision:p a b in
  let high_rate = 1e9 in
  let t_mixed =
    Xsc_precision.Ir.ir_model_time ~n ~low_rate:(high_rate *. low_rate_mult) ~high_rate
      ~iterations:report.Xsc_precision.Ir.iterations
  in
  let t_full = Xsc_precision.Ir.plain_solve_flops n /. high_rate in
  {
    x = report.Xsc_precision.Ir.x;
    iterations = report.Xsc_precision.Ir.iterations;
    converged = report.Xsc_precision.Ir.converged;
    backward_error = report.Xsc_precision.Ir.backward_error;
    modeled_speedup = t_full /. t_mixed;
  }

type protected_report = {
  x : Vec.t;
  corruption_detected : bool;
  recovered_from_row : int option;
}

let solve_spd_protected ?opts ?inject a b =
  let opts = resolve opts in
  let n = a.Mat.rows in
  if n <> a.Mat.cols || Array.length b <> n then
    invalid_arg "Solver.solve_spd_protected: dimensions";
  let padded, _ = Tile.pad_to ~nb:opts.nb a in
  let t = Tile.of_mat ~nb:opts.nb padded in
  Cholesky.factor ~exec:opts.exec t;
  let l = Mat.lower (Tile.to_mat t) in
  (match inject with Some f -> f l | None -> ());
  let detected = Xsc_resilience.Abft.verify_cholesky ~l padded in
  let recovered_from_row =
    match detected with
    | None -> None
    | Some row ->
      Xsc_resilience.Abft.recover_cholesky_rows ~a:padded ~l ~from:row;
      Some row
  in
  (* solve with the (possibly repaired) dense factor *)
  let y = pad_rhs b padded.Mat.rows in
  Blas.trsv ~uplo:Blas.Lower l y;
  Blas.trsv ~uplo:Blas.Lower ~trans:Blas.Trans l y;
  {
    x = Array.sub y 0 n;
    corruption_detected = detected <> None;
    recovered_from_row;
  }
