(** Batched small linear algebra.

    The other end of the extreme-scale story: applications (FEM assembly,
    tensor contractions, block preconditioners) need thousands of
    *independent tiny* factorizations, where per-call overhead and idle
    cores — not flops — dominate. Batched interfaces expose the whole batch
    to the runtime as one task set.

    Fault blast-radius: the [_results] variants capture each problem's
    outcome in its own slot — one singular matrix fails one slot, never the
    batch — which is what a serving layer ({!Xsc_serve.Server}) needs for
    per-request isolation. The raising wrappers keep the historical
    contract: the whole batch still runs, then the first failure (in index
    order) is re-raised. *)

open Xsc_linalg

val run_batch_results :
  ?exec:Runtime_api.exec -> (unit -> 'a) array -> ('a, exn) result array
(** Run every thunk as an independent task; slot [i] holds thunk [i]'s
    value or the exception it raised. All slots are filled — no failure
    aborts the batch. *)

val potrf_batch_results :
  ?exec:Runtime_api.exec -> Mat.t array -> (unit, exn) result array
(** Cholesky-factor every (small SPD) matrix in place; slot [i] is
    [Error (Lapack.Singular _)] if matrix [i] fails, and the remaining
    matrices are still factored. *)

val getrf_batch_results :
  ?exec:Runtime_api.exec -> Mat.t array -> (int array, exn) result array
(** Partial-pivoting LU of every matrix; per-problem pivots or failure. *)

val potrf_batch : ?exec:Runtime_api.exec -> Mat.t array -> unit
(** Cholesky-factor every (small SPD) matrix in place, as independent
    tasks. Raises [Lapack.Singular] if any matrix fails (after the whole
    batch has run). *)

val getrf_batch : ?exec:Runtime_api.exec -> Mat.t array -> int array array
(** Partial-pivoting LU of every matrix; returns per-problem pivots. *)

val gemm_batch :
  ?exec:Runtime_api.exec -> alpha:float -> beta:float ->
  (Mat.t * Mat.t * Mat.t) array -> unit
(** [C_i <- alpha A_i B_i + beta C_i] for every triple. *)

val chol_solve_batch : ?exec:Runtime_api.exec -> Mat.t array -> Vec.t array -> Vec.t array
(** Factor-and-solve a batch of SPD systems (inputs preserved). *)

val tasks_potrf : Mat.t array -> Runtime_api.task list
(** The underlying task list (for scheduling experiments). *)

val batch_flops_potrf : Mat.t array -> float
