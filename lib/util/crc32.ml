let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let bytes (b : Bytes.t) =
  let table = Lazy.force table in
  let c = ref 0xFFFFFFFF in
  for i = 0 to Bytes.length b - 1 do
    c := table.((!c lxor Char.code (Bytes.unsafe_get b i)) land 0xFF) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

let string s = bytes (Bytes.unsafe_of_string s)
