type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* ---- parser ---- *)

type state = { src : string; mutable pos : int }

let fail st msg = failwith (Printf.sprintf "Json.parse: %s at offset %d" msg st.pos)
let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.src
    && match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some d when d = c -> st.pos <- st.pos + 1
  | _ -> fail st (Printf.sprintf "expected %C" c)

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "expected %s" word)

let hex_digit st c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> fail st "bad hex digit in \\u escape"

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    if st.pos >= String.length st.src then fail st "unterminated string";
    let c = st.src.[st.pos] in
    st.pos <- st.pos + 1;
    match c with
    | '"' -> Buffer.contents buf
    | '\\' -> begin
      if st.pos >= String.length st.src then fail st "unterminated escape";
      let e = st.src.[st.pos] in
      st.pos <- st.pos + 1;
      (match e with
      | '"' -> Buffer.add_char buf '"'
      | '\\' -> Buffer.add_char buf '\\'
      | '/' -> Buffer.add_char buf '/'
      | 'b' -> Buffer.add_char buf '\b'
      | 'f' -> Buffer.add_char buf '\012'
      | 'n' -> Buffer.add_char buf '\n'
      | 'r' -> Buffer.add_char buf '\r'
      | 't' -> Buffer.add_char buf '\t'
      | 'u' ->
        if st.pos + 4 > String.length st.src then fail st "truncated \\u escape";
        let v =
          (hex_digit st st.src.[st.pos] lsl 12)
          lor (hex_digit st st.src.[st.pos + 1] lsl 8)
          lor (hex_digit st st.src.[st.pos + 2] lsl 4)
          lor hex_digit st st.src.[st.pos + 3]
        in
        st.pos <- st.pos + 4;
        Buffer.add_char buf (if v < 128 then Char.chr v else '?')
      | _ -> fail st "bad escape");
      go ()
    end
    | c when Char.code c < 0x20 -> fail st "raw control character in string"
    | c ->
      Buffer.add_char buf c;
      go ()
  in
  go ()

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
  in
  while st.pos < String.length st.src && is_num_char st.src.[st.pos] do
    st.pos <- st.pos + 1
  done;
  let s = String.sub st.src start (st.pos - start) in
  match float_of_string_opt s with
  | Some f -> Num f
  | None -> fail st (Printf.sprintf "bad number %S" s)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '{' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    if peek st = Some '}' then begin
      st.pos <- st.pos + 1;
      Obj []
    end
    else begin
      let rec fields acc =
        skip_ws st;
        let key = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          st.pos <- st.pos + 1;
          fields ((key, v) :: acc)
        | Some '}' ->
          st.pos <- st.pos + 1;
          Obj (List.rev ((key, v) :: acc))
        | _ -> fail st "expected ',' or '}'"
      in
      fields []
    end
  | Some '[' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    if peek st = Some ']' then begin
      st.pos <- st.pos + 1;
      List []
    end
    else begin
      let rec elements acc =
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          st.pos <- st.pos + 1;
          elements (v :: acc)
        | Some ']' ->
          st.pos <- st.pos + 1;
          List (List.rev (v :: acc))
        | _ -> fail st "expected ',' or ']'"
      in
      elements []
    end
  | Some '"' -> Str (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st (Printf.sprintf "unexpected character %C" c)

let parse s =
  let st = { src = s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then fail st "trailing garbage";
  v

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None
