(** CRC-32 (IEEE 802.3 polynomial, reflected), table-driven.

    The integrity check shared by every self-validating binary file format
    in the library (checkpoint files, the kernel-tuning cache): a torn or
    bit-flipped payload fails the CRC and the loader reports a typed error
    instead of crashing on garbage. *)

val bytes : Bytes.t -> int
(** CRC-32 of the whole byte buffer, as a non-negative int in [0, 2^32). *)

val string : string -> int
(** CRC-32 of the whole string. *)
