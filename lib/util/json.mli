(** Minimal JSON: escaping for emitters and a strict recursive-descent
    parser for validating what we emit (Chrome traces, bench records,
    metrics snapshots) without an external dependency.

    Numbers are parsed as [float]; strings must be valid JSON strings
    (the [\uXXXX] escapes we never emit above the ASCII range decode only
    for code points < 128, others become ['?']). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val parse : string -> t
(** Raises [Failure] with a position message on malformed input, including
    trailing garbage after the first value. *)

val member : string -> t -> t option
(** Field lookup; [None] on missing field or non-object. *)

val escape : string -> string
(** Escape a string for embedding between double quotes in JSON output
    (quotes, backslashes, control characters). *)
