type kind =
  | Task_start
  | Task_finish
  | Steal
  | Steal_fail
  | Park
  | Unpark
  | Barrier_enter
  | Barrier_exit

type event = { kind : kind; t_ns : int; arg : int }

type t = { rings : Ring.t array; t0_ns : int }

let kind_to_int = function
  | Task_start -> 0
  | Task_finish -> 1
  | Steal -> 2
  | Steal_fail -> 3
  | Park -> 4
  | Unpark -> 5
  | Barrier_enter -> 6
  | Barrier_exit -> 7

let kind_of_int = function
  | 0 -> Task_start
  | 1 -> Task_finish
  | 2 -> Steal
  | 3 -> Steal_fail
  | 4 -> Park
  | 5 -> Unpark
  | 6 -> Barrier_enter
  | 7 -> Barrier_exit
  | k -> invalid_arg (Printf.sprintf "Tracer: unknown event kind %d" k)

let create ~domains ~capacity =
  if domains <= 0 then invalid_arg "Tracer.create: domains must be positive";
  {
    rings = Array.init domains (fun _ -> Ring.create ~capacity);
    t0_ns = Clock.now_ns ();
  }

let enabled_by_env () =
  match Sys.getenv_opt "XSC_TRACE" with
  | None | Some "" | Some "0" | Some "false" -> false
  | Some _ -> true

(* Drops surface on a metric immediately, not just in the post-hoc ring
   count: heavy tracing that overflows a ring shows up in the bench
   metrics object instead of silently truncating the trace. *)
let m_dropped = lazy (Metrics.counter "obs.trace.dropped")

let record t ~domain k ~arg =
  if not (Ring.record t.rings.(domain) ~kind:(kind_to_int k) ~t_ns:(Clock.now_ns ()) ~arg) then
    Metrics.incr (Lazy.force m_dropped)

let origin_ns t = t.t0_ns

let events t ~domain =
  let r = t.rings.(domain) in
  List.init (Ring.length r) (fun i ->
      let kind, t_ns, arg = Ring.get r i in
      { kind = kind_of_int kind; t_ns; arg })

let domains t = Array.length t.rings
let dropped t = Array.fold_left (fun acc r -> acc + Ring.dropped r) 0 t.rings
