(** Monotonic time source for all runtime telemetry.

    Wall-clock time ([Unix.gettimeofday]) is not monotonic — NTP steps and
    manual clock changes can make elapsed-time differences negative or
    wildly wrong mid-run — so every tracer timestamp and executor timing
    goes through [CLOCK_MONOTONIC] instead (C stub; QueryPerformanceCounter
    on Windows, [gettimeofday] only as a last-resort fallback). *)

val now_ns : unit -> int
(** Nanoseconds since an arbitrary fixed origin. Allocation-free; safe to
    call from any domain at event-recording frequency. *)

val now_s : unit -> float
(** [now_ns] in seconds. *)

val ns_to_s : int -> float
(** Convert a nanosecond count (or difference) to seconds. *)
