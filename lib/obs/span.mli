(** Causal spans: request-scoped segments that reassemble into a tree.

    A {!ctx} names a position in a request's causal history — the request
    id plus this segment's span id and its parent's. The server mints a
    root context at admission and derives children for every wait,
    dispatch attempt, executor task, injected fault and ABFT replay, so
    one request's full lifeline renders as a single lane in the exported
    Chrome trace even when its segments ran on different domains,
    batches, or retry attempts.

    Context travels two ways: explicitly inside {!record} values, and
    ambiently in domain-local storage ({!set_current}/{!current}) so
    layers below the server (executors, the fault harness, ABFT replay)
    can parent their segments onto whatever request is running without
    any API changes — they call {!note}, which is a no-op unless a
    collector is {!install}ed *and* an ambient context is set. *)

type ctx = { request : int; span : int; parent : int }

val fresh_id : unit -> int
(** Process-unique, strictly increasing span id. *)

val root : request:int -> ctx
(** New root context ([parent = -1]) for a request. *)

val child : ctx -> ctx
(** New context one level below [ctx] (same request, fresh span id,
    [parent = ctx.span]). *)

val current : unit -> ctx option
(** Ambient context of the calling domain. *)

val set_current : ctx option -> unit

val with_current : ctx option -> (unit -> 'a) -> 'a
(** Run with the ambient context replaced, restoring the previous one on
    return or raise. *)

type record = {
  request : int;
  span : int;
  parent : int;
  phase : string;  (** segment kind: ["request"], ["wait"], ["attempt"], ["task"], ["inject"], ["replay"] *)
  name : string;
  lane : int;  (** worker lane, or [-1] when no worker applies *)
  attempt : int;
  start_ns : int;
  finish_ns : int;
}

type collector
(** Bounded thread-safe sink of span records (drop-newest when full, like
    tracer rings, so parents survive for whatever children land). *)

val collector : ?capacity:int -> ?tee:(record -> unit) -> unit -> collector
(** [capacity] defaults to 65536 records. [tee] is invoked synchronously
    for every record {i before} the capacity check — the flight recorder
    hooks in here so its ring sees even records the collector sheds.
    Raises [Invalid_argument] if [capacity <= 0]. *)

val record : collector -> record -> unit

val records : collector -> record list
(** In record order. *)

val dropped : collector -> int
(** Records shed because the collector was full (also counted on the
    [obs.span.dropped] metric). *)

val install : collector option -> unit
(** Set (or clear) the process-wide collector used by {!note}. *)

val installed : unit -> collector option

val note :
  phase:string ->
  name:string ->
  lane:int ->
  attempt:int ->
  start_ns:int ->
  finish_ns:int ->
  unit
(** Record a child segment of the ambient context into the installed
    collector. No-op (one atomic read + one DLS read) when either is
    absent — the executors call this per task, so the disabled path must
    stay branch-cheap. *)

val active : unit -> bool
(** True when both a collector is installed and the calling domain has an
    ambient context — i.e. {!note} would actually record. Lets hot paths
    skip timestamp reads when spans are off. *)

val chrome_events : origin_ns:int -> record list -> string list
(** Chrome trace-event objects (strings): one ["X"] complete event per
    record on pid 1 / tid = request id, plus an ["s"]/["f"] flow-event
    pair (id = child span id) for every record whose parent is present,
    anchoring the arrow at the parent's start. Timestamps are relative to
    [origin_ns], in microseconds. *)

val to_chrome_json : origin_ns:int -> record list -> string
(** [chrome_events] wrapped in a JSON array; parses with
    [Xsc_util.Json.parse]. *)
