(* Structure-of-arrays so [record] is three unboxed int stores — no per-
   event allocation, hence no GC pressure from a traced hot loop. *)
type t = {
  kinds : int array;
  times : int array;
  args : int array;
  cap : int;
  mutable len : int;
  mutable lost : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  {
    kinds = Array.make capacity 0;
    times = Array.make capacity 0;
    args = Array.make capacity 0;
    cap = capacity;
    len = 0;
    lost = 0;
  }

let record r ~kind ~t_ns ~arg =
  let i = r.len in
  if i >= r.cap then begin
    r.lost <- r.lost + 1;
    false
  end
  else begin
    Array.unsafe_set r.kinds i kind;
    Array.unsafe_set r.times i t_ns;
    Array.unsafe_set r.args i arg;
    r.len <- i + 1;
    true
  end

let length r = r.len
let capacity r = r.cap
let dropped r = r.lost

let get r i =
  if i < 0 || i >= r.len then invalid_arg "Ring.get: index out of range";
  (r.kinds.(i), r.times.(i), r.args.(i))

let iter r ~f =
  for i = 0 to r.len - 1 do
    f ~kind:r.kinds.(i) ~t_ns:r.times.(i) ~arg:r.args.(i)
  done

let clear r =
  r.len <- 0;
  r.lost <- 0
