(** Domain-local event tracing for the real executors.

    A tracer owns one preallocated {!Ring} per worker domain. The worker
    records scheduling events (task start/finish, steal success/failure,
    park/unpark, barrier enter/exit) against the shared monotonic
    {!Clock}; because each ring has a single writer there is no
    synchronisation on the recording path, and the rings are merged into a
    [Trace.t] only after the domains have been joined.

    Tracing is runtime-toggleable: executors consult {!enabled_by_env}
    ([XSC_TRACE=1]) when the caller does not pass [~trace] explicitly, and
    when tracing is off the executors skip recording entirely (one branch
    per event site), keeping the disabled overhead within the <2% budget. *)

type kind =
  | Task_start  (** [arg] = task id *)
  | Task_finish  (** [arg] = task id; closure time only, excludes successor release *)
  | Steal  (** successful steal; [arg] = victim worker *)
  | Steal_fail  (** a full failed sweep over victims; [arg] = sweep number *)
  | Park  (** worker about to block on the idle condvar *)
  | Unpark  (** worker woken *)
  | Barrier_enter  (** fork-join level barrier; [arg] = level *)
  | Barrier_exit  (** [arg] = level *)

type event = { kind : kind; t_ns : int; arg : int }

type t

val create : domains:int -> capacity:int -> t
(** [capacity] is per-domain ring capacity. Raises [Invalid_argument] if
    either is non-positive. *)

val enabled_by_env : unit -> bool
(** True when [XSC_TRACE] is set to anything but [""], ["0"] or ["false"]. *)

val record : t -> domain:int -> kind -> arg:int -> unit
(** Timestamp the event now and append it to [domain]'s ring. Must only be
    called from the worker owning [domain]. *)

val origin_ns : t -> int
(** Monotonic timestamp taken at [create]; event times are reported
    relative to it. *)

val events : t -> domain:int -> event list
(** Recorded events of one domain in record order (timestamps absolute,
    nanoseconds). Only meaningful after the recording domains have been
    joined. *)

val domains : t -> int

val dropped : t -> int
(** Total events dropped across all rings; 0 means the trace is complete. *)
