(** GC/allocation telemetry: [Gc.quick_stat] snapshots, phase deltas into
    {!Metrics} gauges, and an allocation-free per-domain minor-words
    reader for hot-path allocation estimates (ROADMAP item 6's
    "zero-allocation steady state" made measurable). *)

type snap = {
  minor_words : float;  (** cumulative words allocated in the minor heap *)
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
  compactions : int;
  heap_words : int;  (** current major-heap size (not cumulative) *)
}

val snap : unit -> snap
(** [Gc.quick_stat] — exact for the calling domain, includes other
    domains' contributions as of their last slice boundary. *)

val delta : before:snap -> after:snap -> snap
(** Field-wise [after - before] for the cumulative fields; [heap_words]
    (a level, not a flow) is taken from [after]. *)

val minor_words : unit -> float
(** Words allocated in the minor heap by the {e calling domain} since
    program start ([Gc.minor_words]). Allocation-free: safe to call on
    the serve hot path without perturbing the quantity it measures. *)

val set_gauges : prefix:string -> snap -> unit
(** Publish a snapshot (usually a delta) as gauges
    [<prefix>.minor_words], [<prefix>.promoted_words],
    [<prefix>.major_words], [<prefix>.minor_collections],
    [<prefix>.major_collections], [<prefix>.heap_words]. *)

val sample : unit -> unit
(** [set_gauges ~prefix:"gc" (snap ())] — cumulative process totals. *)

val phase : string -> (unit -> 'a) -> 'a
(** [phase name f] runs [f] and publishes the allocation delta it caused
    under gauges [gc.<name>.*] (set even if [f] raises). *)
