(* Counters shard by domain id: Atomic.fetch_and_add is exact under any
   interleaving, and distinct domains usually land on distinct shards so
   the cache line bouncing of a single global cell is avoided. Gauges and
   histogram sums hold floats behind a CAS loop (OCaml [Atomic.t] on boxed
   floats compares the box physically, so a lost race is detected and
   retried). *)

type counter = { shards : int Atomic.t array; mask : int }
type gauge = { cell : float Atomic.t }

let n_buckets = 64

(* bucket i covers [2^(i-41), 2^(i-40)): frexp exponent e means the value
   is in [2^(e-1), 2^e) *)
type histogram = {
  buckets : int Atomic.t array;
  hsum : float Atomic.t;
  hcount : int Atomic.t;
}

type metric = C of counter | G of gauge | H of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let registry_mu = Mutex.create ()

let domain_index () = (Domain.self () :> int)

let rec next_pow2 n = if n land (n - 1) = 0 then n else next_pow2 (n + (n land -n))

let register name make describe =
  Mutex.lock registry_mu;
  let m =
    match Hashtbl.find_opt registry name with
    | Some existing -> existing
    | None ->
      let m = make () in
      Hashtbl.add registry name m;
      m
  in
  Mutex.unlock registry_mu;
  match describe m with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Metrics: %S already registered as another type" name)

let counter ?(shards = 16) name =
  if shards <= 0 then invalid_arg "Metrics.counter: shards must be positive";
  let shards = next_pow2 shards in
  register name
    (fun () -> C { shards = Array.init shards (fun _ -> Atomic.make 0); mask = shards - 1 })
    (function C c -> Some c | _ -> None)

let incr c = ignore (Atomic.fetch_and_add c.shards.(domain_index () land c.mask) 1)
let add c n = ignore (Atomic.fetch_and_add c.shards.(domain_index () land c.mask) n)
let add_to_shard c ~shard n = ignore (Atomic.fetch_and_add c.shards.(shard land c.mask) n)
let counter_value c = Array.fold_left (fun acc a -> acc + Atomic.get a) 0 c.shards

let gauge name =
  register name
    (fun () -> G { cell = Atomic.make 0.0 })
    (function G g -> Some g | _ -> None)

let set_gauge g v = Atomic.set g.cell v
let gauge_value g = Atomic.get g.cell

let rec atomic_add_float a x =
  let old = Atomic.get a in
  if not (Atomic.compare_and_set a old (old +. x)) then atomic_add_float a x

let histogram name =
  register name
    (fun () ->
      H
        {
          buckets = Array.init n_buckets (fun _ -> Atomic.make 0);
          hsum = Atomic.make 0.0;
          hcount = Atomic.make 0;
        })
    (function H h -> Some h | _ -> None)

let bucket_of v =
  if v <= 0.0 then 0
  else begin
    let _, e = Stdlib.frexp v in
    min (n_buckets - 1) (max 0 (e + 40))
  end

let bucket_upper i = ldexp 1.0 (i - 40)

let observe h v =
  ignore (Atomic.fetch_and_add h.buckets.(bucket_of v) 1);
  ignore (Atomic.fetch_and_add h.hcount 1);
  atomic_add_float h.hsum v

let observe_n h v ~n =
  if n < 0 then invalid_arg "Metrics.observe_n: negative count";
  if n > 0 then begin
    ignore (Atomic.fetch_and_add h.buckets.(bucket_of v) n);
    ignore (Atomic.fetch_and_add h.hcount n);
    atomic_add_float h.hsum (v *. float_of_int n)
  end

let histogram_count h = Atomic.get h.hcount
let histogram_sum h = Atomic.get h.hsum

let quantile h q =
  let total = histogram_count h in
  if total = 0 then 0.0
  else begin
    let target = max 1 (int_of_float (ceil (q *. float_of_int total))) in
    let acc = ref 0 and result = ref (bucket_upper (n_buckets - 1)) in
    (try
       for i = 0 to n_buckets - 1 do
         acc := !acc + Atomic.get h.buckets.(i);
         if !acc >= target then begin
           result := bucket_upper i;
           raise Exit
         end
       done
     with Exit -> ());
    !result
  end

type hist_summary = {
  count : int;
  sum : float;
  p50 : float;
  p95 : float;
  p99 : float;
  p999 : float;
}

type value =
  | Counter of int
  | Gauge of float
  | Histogram of hist_summary

let snapshot () =
  Mutex.lock registry_mu;
  let items = Hashtbl.fold (fun name m acc -> (name, m) :: acc) registry [] in
  Mutex.unlock registry_mu;
  items
  |> List.map (fun (name, m) ->
         let v =
           match m with
           | C c -> Counter (counter_value c)
           | G g -> Gauge (gauge_value g)
           | H h ->
             Histogram
               {
                 count = histogram_count h;
                 sum = histogram_sum h;
                 p50 = quantile h 0.5;
                 p95 = quantile h 0.95;
                 p99 = quantile h 0.99;
                 p999 = quantile h 0.999;
               }
         in
         (name, v))
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let delta ~before ~after =
  let prior = Hashtbl.create 64 in
  List.iter (fun (name, v) -> Hashtbl.replace prior name v) before;
  List.map
    (fun (name, v) ->
      let v' =
        match (v, Hashtbl.find_opt prior name) with
        | Counter a, Some (Counter b) -> Counter (a - b)
        | Histogram a, Some (Histogram b) ->
          (* count and sum subtract exactly; bucket quantiles are
             cumulative and cannot, so they stay the [after] estimates *)
          Histogram { a with count = a.count - b.count; sum = a.sum -. b.sum }
        | _ -> v (* gauges are levels, new instruments have no prior *)
      in
      (name, v'))
    after

let json_float f =
  if Float.is_finite f then Printf.sprintf "%.9g" f
  else "null" (* JSON has no inf/nan *)

let to_json () =
  let items = snapshot () in
  let section pick render =
    items
    |> List.filter_map (fun (name, v) -> Option.map (fun r -> (name, r)) (pick v))
    |> List.map (fun (name, r) -> Printf.sprintf "\"%s\": %s" (Xsc_util.Json.escape name) (render r))
    |> String.concat ", "
  in
  let counters = section (function Counter n -> Some n | _ -> None) string_of_int in
  let gauges = section (function Gauge f -> Some f | _ -> None) json_float in
  let histograms =
    section
      (function Histogram h -> Some h | _ -> None)
      (fun h ->
        Printf.sprintf
          {|{"count": %d, "sum": %s, "mean": %s, "p50": %s, "p95": %s, "p99": %s, "p999": %s}|}
          h.count (json_float h.sum)
          (json_float (if h.count = 0 then 0.0 else h.sum /. float_of_int h.count))
          (json_float h.p50) (json_float h.p95) (json_float h.p99)
          (json_float h.p999))
  in
  Printf.sprintf {|{"counters": {%s}, "gauges": {%s}, "histograms": {%s}}|} counters gauges
    histograms

let reset () =
  Mutex.lock registry_mu;
  Hashtbl.iter
    (fun _ m ->
      match m with
      | C c -> Array.iter (fun a -> Atomic.set a 0) c.shards
      | G g -> Atomic.set g.cell 0.0
      | H h ->
        Array.iter (fun a -> Atomic.set a 0) h.buckets;
        Atomic.set h.hsum 0.0;
        Atomic.set h.hcount 0)
    registry;
  Mutex.unlock registry_mu
