(** Preallocated single-writer event ring.

    One ring per domain: the owning worker records with three plain array
    stores and no allocation; readers walk it only after the owning domain
    has been joined, so no synchronisation is needed on the hot path.

    When full the ring stops recording and counts what it dropped
    (drop-newest): early events — the ones that pair task starts with
    finishes — survive, and [dropped] tells the consumer the trace is
    partial rather than silently truncating. *)

type t

val create : capacity:int -> t
(** All storage is allocated up front; [record] never allocates.
    Raises [Invalid_argument] if [capacity <= 0]. *)

val record : t -> kind:int -> t_ns:int -> arg:int -> bool
(** Append one event (a small-integer kind tag, a monotonic nanosecond
    timestamp and one payload word). Single writer only. Returns [false]
    when the ring was full and the event was dropped (and counted), so
    the caller can surface the drop on a metric without re-reading the
    ring. *)

val length : t -> int
val capacity : t -> int

val dropped : t -> int
(** Events discarded because the ring was full. *)

val get : t -> int -> int * int * int
(** [get r i] is the [i]-th recorded event as [(kind, t_ns, arg)], in
    record order. Raises [Invalid_argument] out of range. *)

val iter : t -> f:(kind:int -> t_ns:int -> arg:int -> unit) -> unit
(** In record order. *)

val clear : t -> unit
