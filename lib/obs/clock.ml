external monotonic_ns : unit -> int = "xsc_obs_monotonic_ns" [@@noalloc]

let now_ns () = monotonic_ns ()
let ns_to_s ns = float_of_int ns *. 1e-9
let now_s () = ns_to_s (monotonic_ns ())
