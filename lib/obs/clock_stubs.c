/* Monotonic clock for the telemetry layer.
 *
 * Returns nanoseconds since an arbitrary origin as an OCaml immediate int
 * (Val_long, so the [@@noalloc] external never touches the GC).  A 63-bit
 * nanosecond counter wraps after ~146 years of uptime, which is enough.
 *
 * CLOCK_MONOTONIC is immune to NTP steps and settimeofday; wall-clock
 * (gettimeofday) is only the fallback on platforms without it. */

#include <caml/mlvalues.h>

#if defined(_WIN32)
#include <windows.h>

CAMLprim value xsc_obs_monotonic_ns(value unit)
{
  static LARGE_INTEGER freq;
  LARGE_INTEGER now;
  if (freq.QuadPart == 0)
    QueryPerformanceFrequency(&freq);
  QueryPerformanceCounter(&now);
  return Val_long((intnat)((double)now.QuadPart * 1e9 / (double)freq.QuadPart));
}

#else
#include <time.h>
#include <sys/time.h>

CAMLprim value xsc_obs_monotonic_ns(value unit)
{
#if defined(CLOCK_MONOTONIC)
  struct timespec ts;
  if (clock_gettime(CLOCK_MONOTONIC, &ts) == 0)
    return Val_long((intnat)ts.tv_sec * 1000000000 + (intnat)ts.tv_nsec);
#endif
  {
    struct timeval tv;
    gettimeofday(&tv, 0);
    return Val_long((intnat)tv.tv_sec * 1000000000 + (intnat)tv.tv_usec * 1000);
  }
}
#endif
