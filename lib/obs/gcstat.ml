(* GC and allocation telemetry over Gc.quick_stat: cheap enough to take
   around every bench phase, and Gc.minor_words alone is allocation-free
   so the serve hot path can estimate per-request allocation without
   perturbing what it measures. *)

type snap = {
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
  compactions : int;
  heap_words : int;
}

let snap () =
  let s = Gc.quick_stat () in
  {
    (* quick_stat's minor_words only advances at slice boundaries on
       OCaml 5; Gc.minor_words reads the live allocation pointer, so
       phase deltas see allocation that hasn't triggered a minor GC yet *)
    minor_words = Gc.minor_words ();
    promoted_words = s.Gc.promoted_words;
    major_words = s.Gc.major_words;
    minor_collections = s.Gc.minor_collections;
    major_collections = s.Gc.major_collections;
    compactions = s.Gc.compactions;
    heap_words = s.Gc.heap_words;
  }

let delta ~before ~after =
  {
    minor_words = after.minor_words -. before.minor_words;
    promoted_words = after.promoted_words -. before.promoted_words;
    major_words = after.major_words -. before.major_words;
    minor_collections = after.minor_collections - before.minor_collections;
    major_collections = after.major_collections - before.major_collections;
    compactions = after.compactions - before.compactions;
    heap_words = after.heap_words;
  }

let minor_words = Gc.minor_words

let set_gauges ~prefix d =
  let g suffix v = Metrics.set_gauge (Metrics.gauge (prefix ^ suffix)) v in
  g ".minor_words" d.minor_words;
  g ".promoted_words" d.promoted_words;
  g ".major_words" d.major_words;
  g ".minor_collections" (float_of_int d.minor_collections);
  g ".major_collections" (float_of_int d.major_collections);
  g ".heap_words" (float_of_int d.heap_words)

let sample () = set_gauges ~prefix:"gc" (snap ())

let phase name f =
  let before = snap () in
  let finally () = set_gauges ~prefix:("gc." ^ name) (delta ~before ~after:(snap ())) in
  Fun.protect ~finally f
