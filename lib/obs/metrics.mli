(** Process-wide metrics registry: named counters, gauges and histograms
    with atomic per-domain shards.

    The registry replaces ad-hoc per-module statistics fields: a subsystem
    creates its instruments once by name ([counter]/[gauge]/[histogram] are
    find-or-create) and increments them from any domain. Counters shard
    their state by domain id so concurrent increments are exact yet mostly
    uncontended; reads sum the shards.

    Conventions: names are dot-separated ([runtime.steals],
    [blas.gemm.flops], [checkpoint.bytes_written]); counters are cumulative
    over the process lifetime, so per-run figures are before/after deltas
    (executor runs in one process are assumed not to overlap, which holds
    for the bench harness and tests). *)

type counter
type gauge
type histogram

val counter : ?shards:int -> string -> counter
(** Find or create. [shards] (default 16, rounded up to a power of two) is
    only used on first creation. Raises [Invalid_argument] if the name is
    already registered as a different instrument type. *)

val incr : counter -> unit
(** Add 1 to the calling domain's shard. *)

val add : counter -> int -> unit
(** Add [n] (>= 0 expected, not enforced) to the calling domain's shard. *)

val add_to_shard : counter -> shard:int -> int -> unit
(** Add to an explicit shard (reduced modulo the shard count) — lets a
    worker pool index shards by worker id for zero cross-worker contention
    regardless of domain-id assignment. *)

val counter_value : counter -> int
(** Sum over shards. Exact once concurrent writers have quiesced; a
    momentary under-count is possible while they run. *)

val gauge : string -> gauge
val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

val histogram : string -> histogram
(** Log2-bucketed (64 buckets spanning ~1e-12 .. 8e6): one value feeds one
    bucket plus an exact count and sum. *)

val observe : histogram -> float -> unit

val observe_n : histogram -> float -> n:int -> unit
(** [n] observations of one value in three atomic operations instead of
    [3n] — for callers that tally a batch with one representative value
    (per-request allocation shares, fleet sweep latencies). Raises
    [Invalid_argument] if [n < 0]; no-op when [n = 0]. *)

val histogram_count : histogram -> int
val histogram_sum : histogram -> float

val quantile : histogram -> float -> float
(** [quantile h q] for [q] in [0,1]: upper bound of the bucket containing
    the [q]-th observation (0.0 for an empty histogram).

    Bucket-resolution error: buckets are powers of two, so the true
    quantile lies in [(v/2, v]] where [v] is the reported value — the
    estimate overstates by at most 2x and never understates. That is the
    right bias for latency SLOs (a reported p999 under the budget
    guarantees the true p999 is too) at the price of up to one octave of
    pessimism; consumers needing exact tail values must keep raw samples
    (as {!Xsc_serve.Loadgen} does for its report). *)

type hist_summary = {
  count : int;
  sum : float;
  p50 : float;
  p95 : float;
  p99 : float;
  p999 : float;
}
(** Quantiles carry the bucket-resolution error documented at
    {!quantile}. *)

type value =
  | Counter of int
  | Gauge of float
  | Histogram of hist_summary

val snapshot : unit -> (string * value) list
(** All registered instruments, sorted by name. *)

val delta : before:(string * value) list -> after:(string * value) list -> (string * value) list
(** Per-run figures from two {!snapshot}s taken around the run: counters
    and histogram count/sum subtract; gauges (levels, not flows) and
    histogram quantile estimates (cumulative buckets) are taken from
    [after]; instruments absent from [before] pass through unchanged.
    This is the one call that replaces ad-hoc before/after counter
    reads. *)

val to_json : unit -> string
(** [{"counters": {...}, "gauges": {...}, "histograms": {...}}] — parses
    with [Xsc_util.Json.parse]. Histogram objects carry [count], [sum],
    [mean], and the [p50]/[p95]/[p99]/[p999] bucket-quantile estimates. *)

val reset : unit -> unit
(** Zero every instrument (registration survives). For benches and tests;
    not safe concurrently with writers. *)
