(* Causal spans: every record carries (request, span, parent) so a
   request's journey through admission, batching, dispatch, kernel tasks
   and retries can be reassembled as a tree no matter which domain each
   segment ran on. Span ids come from one process-wide atomic counter;
   the ambient context travels in domain-local storage and is re-seated
   explicitly when an executor hands work to freshly spawned domains. *)

type ctx = { request : int; span : int; parent : int }

let next_id = Atomic.make 1
let fresh_id () = Atomic.fetch_and_add next_id 1
let root ~request = { request; span = fresh_id (); parent = -1 }
let child c = { request = c.request; span = fresh_id (); parent = c.span }

(* ambient context, per domain *)
let dls_key : ctx option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)
let current () = Domain.DLS.get dls_key
let set_current c = Domain.DLS.set dls_key c

let with_current c f =
  let saved = current () in
  set_current c;
  Fun.protect ~finally:(fun () -> set_current saved) f

type record = {
  request : int;
  span : int;
  parent : int;
  phase : string;
  name : string;
  lane : int;
  attempt : int;
  start_ns : int;
  finish_ns : int;
}

(* Bounded multi-writer collector. Unlike the single-writer tracer rings
   this one takes a mutex: span recording happens once per request
   *segment* (admission, attempt, task), not per scheduler event, so the
   lock is off any per-element hot loop. Drop-newest like Ring — early
   records keep parents present for whatever children do land. *)
type collector = {
  mu : Mutex.t;
  mutable items : record list; (* newest first *)
  mutable count : int;
  capacity : int;
  mutable lost : int;
  tee : (record -> unit) option;
}

let m_dropped = lazy (Metrics.counter "obs.span.dropped")

let collector ?(capacity = 1 lsl 16) ?tee () =
  if capacity <= 0 then invalid_arg "Span.collector: capacity must be positive";
  { mu = Mutex.create (); items = []; count = 0; capacity; lost = 0; tee }

let record col (r : record) =
  (match col.tee with Some f -> f r | None -> ());
  Mutex.lock col.mu;
  if col.count >= col.capacity then begin
    col.lost <- col.lost + 1;
    Mutex.unlock col.mu;
    Metrics.incr (Lazy.force m_dropped)
  end
  else begin
    col.items <- r :: col.items;
    col.count <- col.count + 1;
    Mutex.unlock col.mu
  end

let records col =
  Mutex.lock col.mu;
  let items = col.items in
  Mutex.unlock col.mu;
  List.rev items

let dropped col =
  Mutex.lock col.mu;
  let n = col.lost in
  Mutex.unlock col.mu;
  n

(* Process-wide installed collector: executors and the fault harness sit
   below the server in the dependency order, so they reach the collector
   through this cell rather than a parameter threaded down every call. *)
let installed_cell : collector option Atomic.t = Atomic.make None
let install c = Atomic.set installed_cell c
let installed () = Atomic.get installed_cell

(* Record a child segment of the ambient context into the installed
   collector, if both exist. The common disabled case costs one atomic
   read and one DLS read. *)
let note ~phase ~name ~lane ~attempt ~start_ns ~finish_ns =
  match installed () with
  | None -> ()
  | Some col -> (
    match current () with
    | None -> ()
    | Some ctx ->
      let c = child ctx in
      record col
        {
          request = c.request;
          span = c.span;
          parent = c.parent;
          phase;
          name;
          lane;
          attempt;
          start_ns;
          finish_ns;
        })

let active () = (match installed () with None -> false | Some _ -> true) && current () <> None

(* ---- Chrome/Perfetto export ----
   One lane per request: pid 1 (the executor trace uses pid 0), tid =
   request id, so a request's whole lifeline — wait, attempts, tasks,
   replays — renders contiguously. Parenting is made explicit with flow
   events: an "s" anchored at the parent's start and an "f" (bp:"e") at
   the child's start, with id = the child's span id. *)

let esc = Xsc_util.Json.escape

let chrome_events ~origin_ns records =
  let by_span = Hashtbl.create 256 in
  List.iter (fun (r : record) -> Hashtbl.replace by_span r.span r) records;
  let us t_ns = float_of_int (t_ns - origin_ns) /. 1e3 in
  let buf_events = ref [] in
  let emit s = buf_events := s :: !buf_events in
  List.iter
    (fun (r : record) ->
      let dur = float_of_int (max 0 (r.finish_ns - r.start_ns)) /. 1e3 in
      emit
        (Printf.sprintf
           {|{"name": "%s", "cat": "%s", "ph": "X", "ts": %.3f, "dur": %.3f, "pid": 1, "tid": %d, "args": {"span": %d, "parent": %d, "lane": %d, "attempt": %d}}|}
           (esc r.name) (esc r.phase) (us r.start_ns) dur r.request r.span r.parent r.lane
           r.attempt);
      if r.parent >= 0 then
        match Hashtbl.find_opt by_span r.parent with
        | None -> ()
        | Some p ->
          emit
            (Printf.sprintf
               {|{"name": "causal", "cat": "span", "ph": "s", "id": %d, "ts": %.3f, "pid": 1, "tid": %d}|}
               r.span (us p.start_ns) p.request);
          emit
            (Printf.sprintf
               {|{"name": "causal", "cat": "span", "ph": "f", "bp": "e", "id": %d, "ts": %.3f, "pid": 1, "tid": %d}|}
               r.span (us r.start_ns) r.request))
    records;
  List.rev !buf_events

let to_chrome_json ~origin_ns records =
  "[" ^ String.concat ",\n " (chrome_events ~origin_ns records) ^ "]\n"
