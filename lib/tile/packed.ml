(* Tile-major packed storage: the whole n x n matrix lives in ONE flat
   Bigarray, tile (i, j) occupying the contiguous slice
   [((i*nt)+j) * nb*nb, ...) in row-major order. Every kernel then runs
   unit-stride over its operand tiles (Dongarra rule 1: flops are free,
   data movement is not — the strided Tile.t layout walks row-major views
   whose rows are nb doubles apart, evicting cache lines mid-tile).

   The sequential [potrf]/[getrf_nopiv] drivers below replay the exact
   program order of the Cholesky/LU task generators in lib/core, calling
   the Pblas kernels whose operation order matches the strided Blas/Lapack
   reference — so a packed factorization is bitwise identical (float64) to
   the Tile.t one, and the dataflow executor (any interleaving consistent
   with the DAG) is bitwise identical to both. *)

open Xsc_linalg
open Bigarray

module D = struct
  type t = { n : int; nb : int; nt : int; buf : Pblas.f64 }

  let tile_elems t = t.nb * t.nb
  let off t i j = ((i * t.nt) + j) * t.nb * t.nb

  let create ~n ~nb =
    if nb <= 0 then invalid_arg "Packed.create: nb must be positive";
    if n mod nb <> 0 then invalid_arg "Packed.create: n must be a multiple of nb";
    let nt = n / nb in
    let buf = Array1.create float64 c_layout (n * n) in
    Array1.fill buf 0.0;
    { n; nb; nt; buf }

  let copy t =
    let buf = Array1.create float64 c_layout (Array1.dim t.buf) in
    Array1.blit t.buf buf;
    { t with buf }

  let get t i j =
    let nb = t.nb in
    t.buf.{off t (i / nb) (j / nb) + ((i mod nb) * nb) + (j mod nb)}

  let set t i j x =
    let nb = t.nb in
    t.buf.{off t (i / nb) (j / nb) + ((i mod nb) * nb) + (j mod nb)} <- x

  let of_mat ~nb (a : Mat.t) =
    if a.Mat.rows <> a.Mat.cols then invalid_arg "Packed.of_mat: not square";
    let n = a.Mat.rows in
    let t = create ~n ~nb in
    let ad = a.Mat.data in
    for bi = 0 to t.nt - 1 do
      for bj = 0 to t.nt - 1 do
        let base = off t bi bj in
        for r = 0 to nb - 1 do
          let src = (((bi * nb) + r) * n) + (bj * nb) in
          let dst = base + (r * nb) in
          for c = 0 to nb - 1 do
            t.buf.{dst + c} <- ad.(src + c)
          done
        done
      done
    done;
    t

  let to_mat t =
    let n = t.n and nb = t.nb in
    let a = Mat.create n n in
    let ad = a.Mat.data in
    for bi = 0 to t.nt - 1 do
      for bj = 0 to t.nt - 1 do
        let base = off t bi bj in
        for r = 0 to nb - 1 do
          let dst = (((bi * nb) + r) * n) + (bj * nb) in
          let src = base + (r * nb) in
          for c = 0 to nb - 1 do
            ad.(dst + c) <- t.buf.{src + c}
          done
        done
      done
    done;
    a

  let of_tiled (tl : Tile.t) =
    if tl.Tile.mt <> tl.Tile.nt then invalid_arg "Packed.of_tiled: not square";
    let nb = tl.Tile.nb in
    let t = create ~n:tl.Tile.rows ~nb in
    for bi = 0 to t.nt - 1 do
      for bj = 0 to t.nt - 1 do
        let m = Tile.tile tl bi bj in
        let base = off t bi bj in
        for e = 0 to (nb * nb) - 1 do
          t.buf.{base + e} <- m.Mat.data.(e)
        done
      done
    done;
    t

  let to_tiled t =
    let nb = t.nb in
    let tl = Tile.create ~rows:t.n ~cols:t.n ~nb in
    for bi = 0 to t.nt - 1 do
      for bj = 0 to t.nt - 1 do
        let m = Tile.tile tl bi bj in
        let base = off t bi bj in
        for e = 0 to (nb * nb) - 1 do
          m.Mat.data.(e) <- t.buf.{base + e}
        done
      done
    done;
    tl

  (* Sequential packed Cholesky: identical program order to
     Cholesky.tasks (k: potrf; i-loop of trsm; i-loop of syrk with inner
     j-loop of gemm), so sequential packed == sequential strided bitwise,
     and any DAG-consistent parallel interleaving == both. *)
  let potrf t =
    let nb = t.nb in
    for k = 0 to t.nt - 1 do
      let okk = off t k k in
      Pblas.D.potrf t.buf okk ~nb;
      for i = k + 1 to t.nt - 1 do
        Pblas.D.trsm_rlt t.buf okk t.buf (off t i k) ~nb
      done;
      for i = k + 1 to t.nt - 1 do
        let oik = off t i k in
        Pblas.D.syrk_ln ~alpha:(-1.0) t.buf oik ~beta:1.0 t.buf (off t i i) ~nb;
        for j = k + 1 to i - 1 do
          Pblas.D.gemm_nt ~alpha:(-1.0) t.buf oik t.buf (off t j k) t.buf (off t i j) ~nb
        done
      done
    done

  (* Solve L Lᵀ x = b against the packed factor in place (no unpack to a
     dense Mat): forward then transposed-backward substitution, element
     order identical to Blas.trsv on the unpacked factor, so the result is
     bitwise equal to unpack-then-trsv. *)
  let potrs t b =
    let n = t.n in
    if Array.length b <> n then invalid_arg "Packed.D.potrs: dimension mismatch";
    let y = Array.copy b in
    for i = 0 to n - 1 do
      let acc = ref y.(i) in
      for j = 0 to i - 1 do
        acc := !acc -. (get t i j *. y.(j))
      done;
      y.(i) <- !acc /. get t i i
    done;
    for i = n - 1 downto 0 do
      let acc = ref y.(i) in
      for j = i + 1 to n - 1 do
        acc := !acc -. (get t j i *. y.(j))
      done;
      y.(i) <- !acc /. get t i i
    done;
    y

  (* Sequential packed unpivoted LU, mirroring Lu.tasks program order. *)
  let getrf_nopiv t =
    let nb = t.nb in
    for k = 0 to t.nt - 1 do
      let okk = off t k k in
      Pblas.D.getrf_nopiv t.buf okk ~nb;
      for j = k + 1 to t.nt - 1 do
        Pblas.D.trsm_llu t.buf okk t.buf (off t k j) ~nb
      done;
      for i = k + 1 to t.nt - 1 do
        Pblas.D.trsm_ru t.buf okk t.buf (off t i k) ~nb
      done;
      for i = k + 1 to t.nt - 1 do
        let oik = off t i k in
        for j = k + 1 to t.nt - 1 do
          Pblas.D.gemm_nn ~alpha:(-1.0) t.buf oik t.buf (off t k j) t.buf (off t i j) ~nb
        done
      done
    done

  (* Whole-matrix C <- alpha A B + beta C over packed tiles: the packed
     GEMM the bench races against the strided blocked kernel. *)
  let gemm ~alpha a b ~beta c =
    if a.n <> b.n || a.n <> c.n || a.nb <> b.nb || a.nb <> c.nb then
      invalid_arg "Packed.gemm: geometry mismatch";
    let nb = c.nb in
    for i = 0 to c.nt - 1 do
      for j = 0 to c.nt - 1 do
        let oc = off c i j in
        if beta <> 1.0 then
          for e = oc to oc + tile_elems c - 1 do
            c.buf.{e} <- beta *. c.buf.{e}
          done;
        for k = 0 to a.nt - 1 do
          Pblas.D.gemm_nn ~alpha a.buf (off a i k) b.buf (off b k j) c.buf oc ~nb
        done
      done
    done
end

module S = struct
  type t = { n : int; nb : int; nt : int; buf : Pblas.f32 }

  let off t i j = ((i * t.nt) + j) * t.nb * t.nb

  let create ~n ~nb =
    if nb <= 0 then invalid_arg "Packed.S.create: nb must be positive";
    if n mod nb <> 0 then invalid_arg "Packed.S.create: n must be a multiple of nb";
    let nt = n / nb in
    let buf = Array1.create float32 c_layout (n * n) in
    Array1.fill buf 0.0;
    { n; nb; nt; buf }

  (* Storing a double into a float32 Bigarray rounds to nearest single —
     this is the quantization step of the mixed-precision pipeline. *)
  let of_mat ~nb (a : Mat.t) =
    if a.Mat.rows <> a.Mat.cols then invalid_arg "Packed.S.of_mat: not square";
    let n = a.Mat.rows in
    let t = create ~n ~nb in
    let ad = a.Mat.data in
    for bi = 0 to t.nt - 1 do
      for bj = 0 to t.nt - 1 do
        let base = off t bi bj in
        for r = 0 to nb - 1 do
          let src = (((bi * nb) + r) * n) + (bj * nb) in
          let dst = base + (r * nb) in
          for c = 0 to nb - 1 do
            t.buf.{dst + c} <- ad.(src + c)
          done
        done
      done
    done;
    t

  (* Reading widens exactly: every float32 is representable in float64. *)
  let to_mat t =
    let n = t.n and nb = t.nb in
    let a = Mat.create n n in
    let ad = a.Mat.data in
    for bi = 0 to t.nt - 1 do
      for bj = 0 to t.nt - 1 do
        let base = off t bi bj in
        for r = 0 to nb - 1 do
          let dst = (((bi * nb) + r) * n) + (bj * nb) in
          let src = base + (r * nb) in
          for c = 0 to nb - 1 do
            ad.(dst + c) <- t.buf.{src + c}
          done
        done
      done
    done;
    a

  let get t i j =
    let nb = t.nb in
    t.buf.{off t (i / nb) (j / nb) + ((i mod nb) * nb) + (j mod nb)}

  (* Stores round to nearest float32, like of_mat. *)
  let set t i j x =
    let nb = t.nb in
    t.buf.{off t (i / nb) (j / nb) + ((i mod nb) * nb) + (j mod nb)} <- x

  (* Single-precision tiled Cholesky, same program order as D.potrf. All
     arithmetic is genuine float32 in the C kernels. *)
  let potrf t =
    let nb = t.nb in
    for k = 0 to t.nt - 1 do
      let okk = off t k k in
      Pblas.S.potrf t.buf okk ~nb;
      for i = k + 1 to t.nt - 1 do
        Pblas.S.trsm_rlt t.buf okk t.buf (off t i k) ~nb
      done;
      for i = k + 1 to t.nt - 1 do
        let oik = off t i k in
        Pblas.S.syrk_ln ~alpha:(-1.0) t.buf oik ~beta:1.0 t.buf (off t i i) ~nb;
        for j = k + 1 to i - 1 do
          Pblas.S.gemm_nt ~alpha:(-1.0) t.buf oik t.buf (off t j k) t.buf (off t i j) ~nb
        done
      done
    done

  (* Solve L Lᵀ x = b reading the float32 factor but accumulating in
     double: the correction solve of mixed-precision refinement (cheap
     O(n²) next to the O(n³) factorization, and the extra accumulator
     precision costs nothing — each f32 element widens exactly). *)
  let potrs t b =
    let n = t.n in
    if Array.length b <> n then invalid_arg "Packed.S.potrs: dimension mismatch";
    let y = Array.copy b in
    for i = 0 to n - 1 do
      let acc = ref y.(i) in
      for j = 0 to i - 1 do
        acc := !acc -. (get t i j *. y.(j))
      done;
      y.(i) <- !acc /. get t i i
    done;
    for i = n - 1 downto 0 do
      let acc = ref y.(i) in
      for j = i + 1 to n - 1 do
        acc := !acc -. (get t j i *. y.(j))
      done;
      y.(i) <- !acc /. get t i i
    done;
    y
end

(* Tile size elected by this host's kernel-tuning cache (loaded at startup
   by Kconfig.autoload / xsc tune); callers that would otherwise hard-code
   a default nb route it through here so a tuned host gets its tuned tile
   size everywhere packing happens. *)
let tuned_nb ~fallback =
  match Xsc_linalg.Kconfig.current () with
  | Some t when t.Xsc_linalg.Kconfig.nb > 0 -> t.Xsc_linalg.Kconfig.nb
  | _ -> fallback
