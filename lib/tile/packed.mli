(** Tile-major packed matrix storage.

    One flat Bigarray holds the whole [n x n] matrix; tile [(i, j)] is the
    contiguous slice starting at element [((i*nt)+j) * nb*nb], row-major
    inside the tile. Kernels run unit-stride over operand tiles — the data
    layout the strided {!Tile.t} (array-of-row-major-views) cannot offer.

    The float64 sequential drivers replay the exact program order of the
    lib/core task generators using {!Xsc_linalg.Pblas} kernels, so packed
    factorizations are bitwise identical to the strided reference. The
    float32 module is the real reduced-precision storage feeding
    [Precision.Ir]: quantization happens on pack (store rounds to nearest
    single), and [potrs] reads the f32 factor with double accumulation. *)

(** Double-precision packed matrix. *)
module D : sig
  type t = { n : int; nb : int; nt : int; buf : Xsc_linalg.Pblas.f64 }

  val create : n:int -> nb:int -> t
  (** Zero-filled packed matrix; [n] must be a multiple of [nb]. *)

  val copy : t -> t

  val off : t -> int -> int -> int
  (** Element offset of tile [(i, j)]'s first element in [buf]. *)

  val get : t -> int -> int -> float
  (** Element access by global (row, col) index. *)

  val set : t -> int -> int -> float -> unit

  val of_mat : nb:int -> Xsc_linalg.Mat.t -> t
  (** Pack a square dense matrix. Exact (a copy, no rounding). *)

  val to_mat : t -> Xsc_linalg.Mat.t
  (** Unpack; [to_mat (of_mat ~nb a)] round-trips bitwise. *)

  val of_tiled : Tile.t -> t
  (** Pack from strided tile storage (square only). Exact. *)

  val to_tiled : t -> Tile.t

  val potrf : t -> unit
  (** Sequential packed tiled Cholesky (lower), bitwise identical to the
      strided [Cholesky.factor] reference. Raises
      {!Xsc_linalg.Pblas.Singular} on a non-positive pivot. *)

  val potrs : t -> Xsc_linalg.Vec.t -> Xsc_linalg.Vec.t
  (** [potrs l b] solves [L Lᵀ x = b] against the packed factor in place
      (no unpack); element order matches {!Xsc_linalg.Blas.trsv}, so the
      result is bitwise equal to unpack-then-trsv. Returns a fresh
      solution vector. *)

  val getrf_nopiv : t -> unit
  (** Sequential packed tiled unpivoted LU, bitwise identical to the
      strided [Lu.factor] reference. Raises {!Xsc_linalg.Pblas.Singular}
      on a zero pivot. *)

  val gemm : alpha:float -> t -> t -> beta:float -> t -> unit
  (** Whole-matrix [C <- alpha A B + beta C] over packed tiles (all three
      matrices same [n] and [nb]). *)
end

(** Single-precision packed matrix — the real float32 path. *)
module S : sig
  type t = { n : int; nb : int; nt : int; buf : Xsc_linalg.Pblas.f32 }

  val create : n:int -> nb:int -> t

  val off : t -> int -> int -> int

  val of_mat : nb:int -> Xsc_linalg.Mat.t -> t
  (** Pack with rounding to nearest float32 (the quantization step of the
      mixed-precision pipeline). *)

  val to_mat : t -> Xsc_linalg.Mat.t
  (** Unpack, widening exactly (every float32 is a float64). *)

  val get : t -> int -> int -> float
  (** Element by global index, widened to double. *)

  val set : t -> int -> int -> float -> unit
  (** Store by global index, rounding to nearest float32 (used by the
      resilience fault injector to corrupt f32 state in place). *)

  val potrf : t -> unit
  (** Sequential packed tiled Cholesky in genuine float32 arithmetic.
      Raises {!Xsc_linalg.Pblas.Singular} on a non-positive pivot. *)

  val potrs : t -> Xsc_linalg.Vec.t -> Xsc_linalg.Vec.t
  (** [potrs l b] solves [L Lᵀ x = b] reading the float32 factor with
      double-precision accumulation; returns a fresh solution vector. *)
end

val tuned_nb : fallback:int -> int
(** The tile size elected by this host's kernel-tuning cache
    ({!Xsc_linalg.Kconfig.current}), or [fallback] when no cache is
    loaded. Drivers with a default [nb] consult this so [xsc tune]'s
    winner reaches every packing site without threading a parameter. *)
