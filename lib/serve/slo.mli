(** Per-class SLO monitors: latency targets with error budgets, tracked
    as burn rates.

    An {!objective} declares, per request kind, the latency a completed
    request should beat and the fraction of requests allowed to miss it
    (the error budget). Every completion feeds {!observe}; a request
    {e violates} when it failed or finished over target. The burn rate is
    [(violations/total) / error_budget]: 1.0 means the class consumes its
    budget exactly as fast as allowed, above 1.0 the class is in breach —
    the classic SRE burn-rate alarm evaluated over the run window.

    Violations and breach entries are also counted on the
    [serve.slo.violations] / [serve.slo.breaches] metrics, and the worst
    offender request ids are retained per class so a tripped monitor in a
    bench record names concrete requests to go look at (in the flight
    recorder, via their span chains). *)

type objective = {
  kind : string;  (** ["spd"], ["lu"], ["gemm"], or ["*"] for any kind *)
  latency_s : float;  (** per-request total-latency target *)
  error_budget : float;  (** allowed violating fraction, in (0,1] *)
}

type t

val create : objective list -> t
(** First matching objective wins ([kind] equal, or ["*"]); kinds with no
    objective are not monitored. Raises [Invalid_argument] on a
    non-positive latency or a budget outside (0,1]. *)

val observe : t -> kind:string -> id:int -> latency_s:float -> failed:bool -> bool
(** Feed one completion. Returns [true] when this observation {e newly}
    pushed the class over a burn rate of 1.0 — the edge on which callers
    trigger a flight-recorder dump. Thread-safe. *)

type report = {
  r_kind : string;
  r_latency_s : float;
  r_error_budget : float;
  total : int;
  violations : int;
  burn_rate : float;  (** [(violations/total) / error_budget]; > 1.0 = in breach *)
  breaches : int;  (** times the class entered breach *)
  worst : (int * float) list;  (** worst offender [(request id, latency_s)], worst first *)
}

val reports : t -> report list
(** One report per observed class, sorted by kind. *)

val breached : t -> bool
(** True when any class has ever entered breach. *)

val report_json : t -> string
(** The [serve.slo] record:
    [{"breached": ..., "classes": [{kind, latency_s, error_budget, total,
    violations, budget_consumed, breaches, worst: [{id, latency_s}]}]}] —
    parses with [Xsc_util.Json.parse]. *)
