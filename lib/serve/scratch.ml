(* Domain-local scratch pools for the serving layer: packed-matrix
   Bigarrays and float-array vectors recycled across same-class requests.

   Freelists live in Domain.DLS, so acquire/release are lock-free and a
   buffer never crosses domains *while in use* — it may be acquired by a
   pack task on one pool worker and released by a completion callback on
   another, in which case it simply joins the releasing domain's freelist
   (Chase-Lev-style migration: ownership follows release). Lists are
   bounded per (n, nb) class so a burst cannot pin unbounded memory.

   [set_enabled false] turns both pools into plain allocators — the A/B
   switch the isolation bench uses to demonstrate the steady-state
   allocation difference. *)

module PD = Xsc_tile.Packed.D
module Metrics = Xsc_obs.Metrics

let m_hits = Metrics.counter "serve.scratch.hits"
let m_misses = Metrics.counter "serve.scratch.misses"

let enabled = Atomic.make true
let set_enabled b = Atomic.set enabled b
let is_enabled () = Atomic.get enabled

(* per-(class) freelist bound: enough to cover a worker's plausible
   concurrent in-flight set, small enough to cap idle memory *)
let max_per_class = 8

type pools = {
  packed : (int * int, PD.t list) Hashtbl.t;  (* (n, nb) -> freelist *)
  vecs : (int, float array list) Hashtbl.t;  (* length -> freelist *)
}

let dls : pools Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { packed = Hashtbl.create 8; vecs = Hashtbl.create 8 })

let acquire_packed ~n ~nb =
  let p = Domain.DLS.get dls in
  match if is_enabled () then Hashtbl.find_opt p.packed (n, nb) else None with
  | Some (buf :: rest) ->
    Hashtbl.replace p.packed (n, nb) rest;
    Metrics.incr m_hits;
    buf
  | Some [] | None ->
    Metrics.incr m_misses;
    PD.create ~n ~nb

let release_packed (buf : PD.t) =
  if is_enabled () then begin
    let p = Domain.DLS.get dls in
    let key = (buf.PD.n, buf.PD.nb) in
    let fl = Option.value (Hashtbl.find_opt p.packed key) ~default:[] in
    if List.length fl < max_per_class then Hashtbl.replace p.packed key (buf :: fl)
  end

let acquire_vec len =
  let p = Domain.DLS.get dls in
  match if is_enabled () then Hashtbl.find_opt p.vecs len else None with
  | Some (v :: rest) ->
    Hashtbl.replace p.vecs len rest;
    Metrics.incr m_hits;
    v
  | Some [] | None ->
    Metrics.incr m_misses;
    Array.make len 0.0

let release_vec (v : float array) =
  if is_enabled () then begin
    let p = Domain.DLS.get dls in
    let len = Array.length v in
    let fl = Option.value (Hashtbl.find_opt p.vecs len) ~default:[] in
    if List.length fl < max_per_class then Hashtbl.replace p.vecs len (v :: fl)
  end

let hits () = Metrics.counter_value m_hits
let misses () = Metrics.counter_value m_misses
