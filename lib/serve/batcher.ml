(* Dynamic batching: coalesce compatible requests (same class_key — same
   kernel, same size) so one dispatch amortises per-call overhead across
   the batch, the `Batched` story applied to live traffic.

   Two flush triggers, as in continuous-batching inference servers:
   - size: a class reaching [max_batch] flushes immediately;
   - time: an open class flushes once its oldest member has lingered
     [linger_ns], or earlier when the most urgent member's deadline is
     within [linger_ns] — a near-deadline request must not sit waiting
     for company it may never get.

   Polymorphic in the request type: the live server batches
   [Request.t] values, the fleet simulator batches its own lightweight
   simulated requests through the exact same coalescing logic — the
   classifier and deadline accessor are supplied at [create_keyed].

   Not thread-safe by design: the owner (Server) calls it under its state
   lock; keeping the mutex out of this module keeps the invariants testable
   single-threaded. *)

type config = { max_batch : int; linger_ns : int }

let default = { max_batch = 8; linger_ns = 2_000_000 (* 2 ms *) }

type 'a batch = {
  seq : int;
  class_key : string;
  requests : 'a array;  (* arrival order — FIFO within the class *)
  deadline_ns : int;  (* min member deadline: the EDF key *)
  opened_ns : int;  (* when the oldest member entered the batcher *)
}

type 'a slot = {
  key : string;
  mutable items : 'a list;  (* newest first *)
  mutable count : int;
  mutable slot_opened_ns : int;
  mutable min_deadline_ns : int;
}

type 'a t = {
  cfg : config;
  classify : 'a -> string;
  deadline_of : 'a -> int;
  slots : (string, 'a slot) Hashtbl.t;
  mutable seq : int;
  mutable pending_n : int;
}

let create_keyed ~classify ~deadline_of cfg =
  if cfg.max_batch <= 0 then invalid_arg "Batcher.create: max_batch must be positive";
  if cfg.linger_ns < 0 then invalid_arg "Batcher.create: linger_ns must be >= 0";
  { cfg; classify; deadline_of; slots = Hashtbl.create 8; seq = 0; pending_n = 0 }

let create cfg =
  create_keyed
    ~classify:(fun (r : Request.t) -> Request.class_key r.Request.payload)
    ~deadline_of:(fun (r : Request.t) -> r.Request.deadline_ns)
    cfg

let pending t = t.pending_n

let flush_slot t slot =
  Hashtbl.remove t.slots slot.key;
  t.pending_n <- t.pending_n - slot.count;
  let requests = Array.of_list (List.rev slot.items) in
  let b =
    {
      seq = t.seq;
      class_key = slot.key;
      requests;
      deadline_ns = slot.min_deadline_ns;
      opened_ns = slot.slot_opened_ns;
    }
  in
  t.seq <- t.seq + 1;
  b

let add t ~now_ns r =
  let key = t.classify r in
  let slot =
    match Hashtbl.find_opt t.slots key with
    | Some s -> s
    | None ->
      let s =
        {
          key;
          items = [];
          count = 0;
          slot_opened_ns = now_ns;
          min_deadline_ns = max_int;
        }
      in
      Hashtbl.add t.slots key s;
      s
  in
  slot.items <- r :: slot.items;
  slot.count <- slot.count + 1;
  let deadline = t.deadline_of r in
  if deadline < slot.min_deadline_ns then slot.min_deadline_ns <- deadline;
  t.pending_n <- t.pending_n + 1;
  if slot.count >= t.cfg.max_batch then Some (flush_slot t slot) else None

let due slot ~cfg ~now_ns =
  now_ns - slot.slot_opened_ns >= cfg.linger_ns
  || slot.min_deadline_ns - now_ns <= cfg.linger_ns

(* oldest class first; the class key breaks open-time ties so flush order
   never depends on hash-table iteration order — replayed simulations must
   form identical batch seq numbers *)
let flush_order a b =
  match compare a.slot_opened_ns b.slot_opened_ns with
  | 0 -> compare a.key b.key
  | c -> c

let flush_due t ~now_ns =
  let ripe =
    Hashtbl.fold
      (fun _ slot acc -> if due slot ~cfg:t.cfg ~now_ns then slot :: acc else acc)
      t.slots []
  in
  ripe |> List.sort flush_order |> List.map (flush_slot t)

let flush_all t =
  let all = Hashtbl.fold (fun _ slot acc -> slot :: acc) t.slots [] in
  all |> List.sort flush_order |> List.map (flush_slot t)

let next_due_ns t =
  Hashtbl.fold
    (fun _ slot acc ->
      let due_at =
        min
          (slot.slot_opened_ns + t.cfg.linger_ns)
          (slot.min_deadline_ns - t.cfg.linger_ns)
      in
      match acc with
      | None -> Some due_at
      | Some a -> Some (min a due_at))
    t.slots None
