(* Request -> dataflow plan: the bridge between the serving layer and the
   shared task pool.

   A plan is the request's whole execution as data: a DAG whose first task
   packs the operand into a pooled tile-major buffer (acquired on the
   executing worker's domain, so scratch recycles inside the pool), the
   factorization as closure-free op tasks over that buffer, an interpreter
   binding the ops to the buffer, and a [finish]/[cleanup] pair run after
   the DAG drains. SPD solves route to the packed tiled Cholesky,
   diagonally dominant LU solves to the packed unpivoted LU; pivoting LU
   and GEMM (no op encoding) run as single-task closure DAGs — still
   pool-scheduled, deadline-tagged units, just without intra-request
   parallelism.

   Bitwise determinism is the contract that makes the shared pool
   testable: the packed kernels update each element along a fixed
   k-ascending chain, so any DAG-consistent interleaving — the pool under
   load, work stealing, preemption by urgent arrivals — produces results
   bitwise identical to [direct], the same plan executed sequentially on
   the calling domain. The isolation bench and the oracle tests lean on
   exactly this.

   Fault injection: with a harness, op-task plans wrap their interpreter
   in [Harness.wrap_interp_key] (first op of the attempt raises when the
   request id is targeted) and closure plans wrap the closure in
   [Harness.wrap_thunk] — same hash, same fired-set, so a seeded storm
   injects the same request set on every path. Build a fresh plan per
   attempt: a replan after a transient fault runs clean. *)

open Xsc_linalg
module Task = Xsc_runtime.Task
module Dag = Xsc_runtime.Dag
module PD = Xsc_tile.Packed.D
module Harness = Xsc_resilience.Harness
module Cg = Xsc_sparse.Cg
module Mg = Xsc_sparse.Mg

exception Non_convergence of string

let () =
  Printexc.register_printer (function
    | Non_convergence msg -> Some ("Route.Non_convergence: " ^ msg)
    | _ -> None)

type t = {
  dag : Dag.t;
  interp : (Task.op -> unit) option;
  finish : unit -> Request.solution;
  cleanup : unit -> unit;
  tiled : bool;
}

let default_nb () = Xsc_tile.Packed.tuned_nb ~fallback:64

(* Pack [a] (n x n) into the padded packed buffer, identity on the pad
   diagonal (harmless for SPD and for diagonally dominant LU), writing
   every element — pooled buffers come back dirty. *)
let pack_padded (p : PD.t) (a : Mat.t) =
  let n = a.Mat.rows in
  let nb = p.PD.nb in
  let ad = a.Mat.data in
  for bi = 0 to p.PD.nt - 1 do
    for bj = 0 to p.PD.nt - 1 do
      let base = PD.off p bi bj in
      for r = 0 to nb - 1 do
        let gi = (bi * nb) + r in
        let row = base + (r * nb) in
        for c = 0 to nb - 1 do
          let gj = (bj * nb) + c in
          p.PD.buf.{row + c} <-
            (if gi < n && gj < n then ad.((gi * n) + gj)
             else if gi = gj then 1.0
             else 0.0)
        done
      done
    done
  done

(* Padded forward/back substitution against a packed Cholesky factor:
   identity pad rows solve to b's pad (zero), so the head is unaffected. *)
let spd_finish cell n padded b () =
  let p = match !cell with Some p -> p | None -> assert false in
  let bp = Scratch.acquire_vec padded in
  Array.blit b 0 bp 0 n;
  Array.fill bp n (padded - n) 0.0;
  let y = PD.potrs p bp in
  Scratch.release_vec bp;
  Scratch.release_packed p;
  cell := None;
  Request.Vector (Array.sub y 0 n)

(* L U x = b against the packed unpivoted factor: unit-lower forward then
   upper backward substitution, element order matching Blas.trsv
   ([~diag:Unit] then [NonUnit]) on the unpacked factor. *)
let lu_solve_packed (p : PD.t) b =
  let n = p.PD.n in
  let y = Array.copy b in
  for i = 0 to n - 1 do
    let acc = ref y.(i) in
    for j = 0 to i - 1 do
      acc := !acc -. (PD.get p i j *. y.(j))
    done;
    y.(i) <- !acc
  done;
  for i = n - 1 downto 0 do
    let acc = ref y.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (PD.get p i j *. y.(j))
    done;
    y.(i) <- !acc /. PD.get p i i
  done;
  y

let lu_finish cell n padded b () =
  let p = match !cell with Some p -> p | None -> assert false in
  let bp = Scratch.acquire_vec padded in
  Array.blit b 0 bp 0 n;
  Array.fill bp n (padded - n) 0.0;
  let y = lu_solve_packed p bp in
  Scratch.release_vec bp;
  Scratch.release_packed p;
  cell := None;
  Request.Vector (Array.sub y 0 n)

let release_cell cell () =
  match !cell with
  | Some p ->
    Scratch.release_packed p;
    cell := None
  | None -> ()

(* Prepend the pack task (id 0, writes every tile) to an op task list
   (ids shifted by one; accesses use the same [stride = nt] datum ids, so
   Dag.build derives pack -> everything). *)
let with_pack_task ~nt ~nb ~padded pack ops =
  let datums = ref [] in
  for i = nt - 1 downto 0 do
    for j = nt - 1 downto 0 do
      datums := Task.Write (Task.datum i j ~stride:nt) :: !datums
    done
  done;
  let pack_task =
    Task.make ~id:0 ~name:"pack" ~flops:(float_of_int (padded * padded))
      ~bytes:(8.0 *. float_of_int (nb * nb)) ~run:pack !datums
  in
  let shifted =
    List.map
      (fun (t : Task.t) ->
        Task.make ~id:(t.Task.id + 1) ~name:t.Task.name ~flops:t.Task.flops
          ~bytes:t.Task.bytes ?run:t.Task.run ?op:t.Task.op t.Task.accesses)
      ops
  in
  Dag.build (pack_task :: shifted)

let wrap_interp harness ~key interp =
  match harness with
  | None -> interp
  | Some h -> Harness.wrap_interp_key h ~key interp

let tiled_plan ~harness ~key ~nb a ops_of interp_of finish_of =
  let n = a.Mat.rows in
  let padded = (n + nb - 1) / nb * nb in
  let nt = padded / nb in
  let cell : PD.t option ref = ref None in
  let pack () =
    let p = Scratch.acquire_packed ~n:padded ~nb in
    pack_padded p a;
    cell := Some p
  in
  let dag = with_pack_task ~nt ~nb ~padded pack (ops_of ~nt ~nb) in
  let interp0 op =
    match !cell with
    | Some p -> interp_of p op
    | None -> assert false (* every op task is a DAG successor of pack *)
  in
  {
    dag;
    interp = Some (wrap_interp harness ~key interp0);
    finish = finish_of cell ~padded;
    cleanup = release_cell cell;
    tiled = true;
  }

(* Pivoting LU and GEMM have no op encoding: one closure task computing
   into a cell. Deadline-tagged and pool-isolated like any job, just
   without intra-request parallelism. *)
let thunk_plan ~harness ~key compute =
  let cell = ref None in
  let body =
    match harness with
    | None -> fun () -> cell := Some (compute ())
    | Some h -> fun () -> cell := Some (Harness.wrap_thunk h ~key compute)
  in
  let task = Task.make ~id:0 ~name:"solve" ~flops:0.0 ~run:body [ Task.Write 0 ] in
  {
    dag = Dag.build [ task ];
    interp = None;
    finish =
      (fun () -> match !cell with Some s -> s | None -> assert false);
    cleanup = (fun () -> cell := None);
    tiled = false;
  }

(* Sparse iterative solves run as a sequential CHAIN of chunk tasks: task 0
   builds the resumable stepper, each later task advances it one chunk of
   iterations. Every task writes datum 0, so [Dag.build] serialises the
   chain in id order — any pool interleaving performs exactly the
   sequential solve's arithmetic, keeping the bitwise-oracle contract. The
   pool can still preempt BETWEEN chunks, which bounds the head-of-line
   blocking a long bandwidth-bound solve inflicts on dense traffic; the
   concurrency cap on sparse classes (Server.class_caps) leans on this.
   Fault injection wraps the setup body ([Harness.wrap_thunk], same
   hash/fired-set as the dense closure plans). *)
let chain_plan ~harness ~key ~name ~chunks ~setup ~chunk ~finish_of =
  let cell = ref None in
  let setup_body =
    match harness with
    | None -> fun () -> cell := Some (setup ())
    | Some h -> fun () -> cell := Some (Harness.wrap_thunk h ~key setup)
  in
  let chunk_body () =
    match !cell with
    | Some s -> chunk s
    | None -> assert false (* chained after setup via datum 0 *)
  in
  let tasks =
    Task.make ~id:0 ~name:(name ^ "-setup") ~flops:0.0 ~run:setup_body
      [ Task.Write 0 ]
    :: List.init chunks (fun i ->
           Task.make ~id:(i + 1) ~name:(name ^ "-chunk") ~flops:0.0
             ~run:chunk_body [ Task.Write 0 ])
  in
  {
    dag = Dag.build tasks;
    interp = None;
    finish =
      (fun () ->
        match !cell with
        | Some s ->
          let sol = finish_of s in
          cell := None;
          sol
        | None -> assert false);
    cleanup = (fun () -> cell := None);
    tiled = false;
  }

(* Chunk sizing: small enough that a dense arrival never waits long behind
   one chunk, large enough that the chain's task count stays modest. *)
let cg_chunk_iters = 32
let mg_chunk_cycles = 2
let max_chain_chunks = 64

let chunking ~budget ~per =
  let chunks = min max_chain_chunks ((budget + per - 1) / per) in
  let per_chunk = (budget + chunks - 1) / chunks in
  (chunks, per_chunk)

let cg_plan ~harness ~key ~a ~b ~tol ~max_iter =
  let chunks, per_chunk = chunking ~budget:max_iter ~per:cg_chunk_iters in
  chain_plan ~harness ~key ~name:"cg" ~chunks
    ~setup:(fun () -> Cg.stepper ~max_iter ~tol a b)
    ~chunk:(fun s -> Cg.step s per_chunk)
    ~finish_of:(fun s ->
      (* Cg.result recomputes the TRUE residual b - A x: a stagnated or
         corrupted solve fails typed here, never returns silently wrong. *)
      let r = Cg.result s in
      if not r.Cg.converged then
        raise
          (Non_convergence
             (Printf.sprintf "cg: residual %.3e after %d iterations (cap %d)"
                r.Cg.residual_norm r.Cg.iterations max_iter));
      Request.Vector r.Cg.x)

let mg_plan ~harness ~key ~grid ~levels ~b ~tol ~max_cycles =
  let chunks, per_chunk = chunking ~budget:max_cycles ~per:mg_chunk_cycles in
  chain_plan ~harness ~key ~name:"mg" ~chunks
    ~setup:(fun () ->
      let hier = Mg.create ~levels grid in
      Mg.stepper ~tol ~max_cycles hier b)
    ~chunk:(fun s -> Mg.step s per_chunk)
    ~finish_of:(fun s ->
      let x, cycles = Mg.solution s in
      if not (Mg.converged s) then
        raise
          (Non_convergence
             (Printf.sprintf "mg: no convergence after %d cycles (cap %d)"
                cycles max_cycles));
      Request.Vector x)

let strictly_diag_dominant (a : Mat.t) =
  let n = a.Mat.rows in
  let ok = ref true in
  for i = 0 to n - 1 do
    let off = ref 0.0 in
    for j = 0 to n - 1 do
      if j <> i then off := !off +. abs_float (Mat.get a i j)
    done;
    if abs_float (Mat.get a i i) <= !off then ok := false
  done;
  !ok

let plan ?harness ?nb ~key (payload : Request.payload) =
  let nb = match nb with Some nb -> nb | None -> default_nb () in
  match payload with
  | Request.Spd_solve (a, b) ->
    tiled_plan ~harness ~key ~nb a Xsc_core.Cholesky.tasks_ops
      Xsc_core.Cholesky.packed_interp
      (fun cell ~padded -> spd_finish cell a.Mat.rows padded b)
  | Request.Lu_solve (a, b) when strictly_diag_dominant a ->
    tiled_plan ~harness ~key ~nb a Xsc_core.Lu.tasks_ops Xsc_core.Lu.packed_interp
      (fun cell ~padded -> lu_finish cell a.Mat.rows padded b)
  | Request.Lu_solve (a, b) ->
    thunk_plan ~harness ~key (fun () -> Request.Vector (Lapack.lu_solve a b))
  | Request.Gemm (a, b) ->
    thunk_plan ~harness ~key (fun () ->
        let ra, _ = Mat.dims a and _, cb = Mat.dims b in
        let c = Mat.create ra cb in
        Blas.gemm ~alpha:1.0 a b ~beta:0.0 c;
        Request.Matrix c)
  | Request.Cg_solve { a; b; tol; max_iter } ->
    cg_plan ~harness ~key ~a ~b ~tol ~max_iter
  | Request.Mg_solve { grid; levels; b; tol; max_cycles } ->
    mg_plan ~harness ~key ~grid ~levels ~b ~tol ~max_cycles

(* The per-request oracle: the same plan, executed sequentially on the
   calling domain with no faults. Any pool execution of an equal plan is
   bitwise identical (packed kernels are schedule-independent). *)
let direct ?nb (payload : Request.payload) =
  let p = plan ?nb ~key:(-1) payload in
  match
    Array.iter
      (fun task -> Xsc_runtime.Real_exec.exec_body p.interp task)
      p.dag.Dag.tasks
  with
  | () -> p.finish ()
  | exception e ->
    p.cleanup ();
    raise e
