(** Earliest-deadline-first batch scheduler.

    A binary min-heap of flushed batches keyed by
    [(deadline_ns, formation seq)]: {!pop} always yields the most urgent
    ready batch, and equal deadlines dispatch FIFO in formation order —
    the classical EDF discipline, optimal for meeting deadlines on a
    single resource when the offered load is feasible.

    Polymorphic in the batched request type: the heap only reads the
    batch's EDF key, so the live {!Server} and the fleet simulator share
    one implementation.

    Not thread-safe: the owning {!Server} uses it under its state lock. *)

type 'a t

val create : unit -> 'a t
val push : 'a t -> 'a Batcher.batch -> unit

val pop : 'a t -> 'a Batcher.batch option
(** Earliest deadline, ties in formation order. *)

val pop_when : ('a Batcher.batch -> bool) -> 'a t -> 'a Batcher.batch option
(** EDF restricted to eligible batches: the most urgent batch satisfying
    the predicate, leaving ineligible ones queued (their EDF order
    preserved). The class-aware dispatch path uses this to hold back
    concurrency-capped bandwidth-bound classes without starving them of
    their place in line. *)

val length : 'a t -> int

val peek_deadline_ns : 'a t -> int option
(** Deadline of the batch {!pop} would return. *)
