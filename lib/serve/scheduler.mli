(** Earliest-deadline-first batch scheduler.

    A binary min-heap of flushed batches keyed by
    [(deadline_ns, formation seq)]: {!pop} always yields the most urgent
    ready batch, and equal deadlines dispatch FIFO in formation order —
    the classical EDF discipline, optimal for meeting deadlines on a
    single resource when the offered load is feasible.

    Not thread-safe: the owning {!Server} uses it under its state lock. *)

type t

val create : unit -> t
val push : t -> Batcher.batch -> unit

val pop : t -> Batcher.batch option
(** Earliest deadline, ties in formation order. *)

val length : t -> int

val peek_deadline_ns : t -> int option
(** Deadline of the batch {!pop} would return. *)
