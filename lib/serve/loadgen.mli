(** Seeded load generation and SLO reporting for the solver service.

    The arrival schedule (Poisson inter-arrival gaps) and every problem
    instance are pure functions of the seed, so a load run is exactly
    repeatable: same seed, same arrival times, same matrices, same request
    ids — which is what lets a seeded fault storm assert exactly which
    requests were injected.

    Report quantiles are exact sample percentiles over the run's completed
    requests (not the metrics registry's log2-bucket estimates — see
    {!Xsc_obs.Metrics.quantile} for that tradeoff). *)

type kind =
  | Spd  (** SPD solve via Cholesky *)
  | General  (** general solve via partial-pivoting LU *)
  | Product  (** dense GEMM *)
  | Cg  (** CG solve over a 7-point Poisson stencil — bandwidth-bound *)
  | Mg  (** multigrid solve over the 27-point stencil — bandwidth-bound *)

type config = {
  seed : int;
  rate_hz : float;  (** Poisson arrival rate *)
  count : int;  (** total requests offered *)
  n : int;
      (** problem size. Dense kinds: the matrix order. Sparse kinds
          ([Cg]/[Mg]): the GRID EDGE — the operator has [n^3] rows
          ([Mg] needs [n] even, for coarsening). Reusing one field keeps
          every existing full-literal [config] construction site valid. *)
  kinds : kind array;  (** drawn uniformly per arrival *)
  deadline_s : float;  (** per-request deadline *)
}

val default : config
(** seed 42, 500 req/s, 100 requests, n=48 SPD solves, 50 ms deadline. *)

type arrival = { at_s : float; kind : kind; problem_seed : int }

val schedule : config -> arrival array
(** Deterministic: equal configs yield element-wise equal schedules.
    Raises [Invalid_argument] on non-positive [count]/[rate_hz] or empty
    [kinds]. *)

val payload_of : config -> arrival -> Request.payload
(** The problem instance for an arrival — deterministic from
    [problem_seed]. Sparse instances carry fixed tolerance/iteration
    budgets generous enough that a fault-free solve always converges. *)

val reference : config -> arrival -> Request.solution
(** Direct (unserved) solution of the same instance through the same
    kernels: a fault-free served answer must be bitwise identical. Sparse
    instances run the sequential {!Route.direct} chain (the Slot path is
    the same call, so for them this coincides with {!reference_routed})
    and raise {!Route.Non_convergence} if the instance cannot meet its
    tolerance. *)

val reference_routed : ?nb:int -> config -> arrival -> Request.solution
(** {!Route.direct} on the same instance: the oracle for the shared-pool
    dispatch path ({!Server.Shared}). The packed kernels are bitwise
    schedule-independent, so a completed pool-served answer must equal
    this bit for bit — under any interleaving or seeded fault storm
    (replays re-run the same plan). *)

val solutions_bitwise_equal : Request.solution -> Request.solution -> bool

type report = {
  offered : int;
  admitted : int;
  rejected : int;
  completed : int;
  failed : int;
  retried : int;
  wall_s : float;
  offered_rate : float;  (** offered / wall, req/s *)
  throughput : float;  (** completed / wall, req/s *)
  goodput : float;  (** completed within deadline / wall, req/s *)
  reject_rate : float;  (** rejected / offered *)
  p50_ms : float;  (** exact sample percentiles of total latency *)
  p99_ms : float;
  p999_ms : float;
  mean_batch : float;  (** admitted / batches dispatched during the run *)
}

val run_open : Server.t -> config -> report
(** Open loop: submit at the scheduled arrival times whether or not the
    server keeps up (the honest overload model), await everything
    admitted. *)

val run_burst : Server.t -> config -> report
(** Every payload pre-generated, then offered back-to-back with no pacing:
    an effectively infinite arrival rate against the admission window. The
    deterministic overload point — backpressure must engage whenever
    [count] well exceeds the server's capacity, regardless of host
    speed. *)

val run_closed : Server.t -> outstanding:int -> config -> report
(** Closed loop: at most [outstanding] requests in flight; arrival times
    are ignored. Raises [Invalid_argument] if [outstanding <= 0]. *)

type large = {
  l_n : int;  (** large problem size *)
  l_deadline_s : float;
  l_seed : int;
}

val default_large : large
(** n=768 SPD, 5 s deadline, seed 7. *)

type isolation = {
  smalls : report;  (** the small class — what isolation gates on *)
  pairs : (arrival * Request.completion) list;
      (** every admitted small with its completion, for bitwise checks
          against {!reference_routed} *)
  larges_done : int;  (** large solves completed [Ok] during the run *)
  larges_failed : int;
  large_mean_s : float;  (** mean large total latency, 0 if none *)
}

val run_isolation : Server.t -> ?large:large -> config -> isolation
(** The multi-tenant latency-isolation mix. Smalls are offered open-loop
    at their Poisson times; the large (when given) streams closed-loop
    with exactly one outstanding — as soon as one completes the next is
    submitted, so large work occupies the server for the whole run.
    Without [large] this is the small class alone: the baseline point of
    the three-point isolation comparison. *)

type mixed = {
  m_dense : report;
  m_sparse : report;
  m_dense_pairs : (arrival * Request.completion) list;
      (** every admitted dense request with its completion *)
  m_sparse_pairs : (arrival * Request.completion) list;
      (** every admitted sparse request with its completion, for bitwise
          checks against {!reference_routed} *)
}

val run_mixed : Server.t -> dense:config -> sparse:config -> mixed
(** The mixed-workload run: both classes offered open-loop from one client
    thread, arrivals merged in time order, each submitted with its own
    config's deadline. Generation is deliberately asymmetric: dense
    instances are pre-generated before the clock starts (O(n^3) per
    instance — pricier than the solve, so inline generation would pace
    offered load below the service rate), while sparse instances are
    generated inline at submit time (stencil assembly and rhs are
    O(rows) — cheaper than a single solve chunk, and pre-generating
    hundreds of operators would dwarf the run's memory). Both reports
    share the run's batch total, so [mean_batch] is run-wide. *)

val report_json : report -> string
val report_human : report -> string
