(** Bounded multi-producer multi-consumer queue.

    The service's ingestion buffer: admission control is a [try_push] that
    answers {!Full} instead of blocking or growing, so offered load beyond
    capacity turns into typed rejections (backpressure), never unbounded
    memory. FIFO: elements pop in push order. The capacity bound holds
    under any interleaving of producers and consumers — admission is
    decided in the same critical section as the slot write. *)

type 'a t

type push_result =
  | Accepted
  | Full  (** at capacity — the caller should reject or shed load *)
  | Closed  (** queue closed ({!close}); no further pushes accepted *)

val create : capacity:int -> 'a t
(** Raises [Invalid_argument] if [capacity <= 0]. *)

val try_push : 'a t -> 'a -> push_result
(** Never blocks and never grows the queue past [capacity]. *)

val try_pop : 'a t -> 'a option
(** Oldest element, or [None] when empty (closed queues still drain). *)

val length : 'a t -> int
(** Momentary; at most [capacity]. *)

val capacity : 'a t -> int

val close : 'a t -> unit
(** Subsequent pushes answer {!Closed}; pending elements still pop. *)

val is_closed : 'a t -> bool
