(* Seeded load generation: the arrival schedule and every problem instance
   are pure functions of the seed (Xsc_util.Rng), so a load run is exactly
   repeatable — the property the fault-storm acceptance test leans on
   (same seed => same request ids => same injected set).

   Open loop: requests arrive at Poisson times regardless of completions —
   the honest overload model (offered load does not politely slow down when
   the server falls behind), which is what makes reject rates meaningful.
   Closed loop: a fixed number of outstanding requests, the classical
   concurrency-limited client.

   The report's latency quantiles are exact sample percentiles over the
   completed requests (Stats.percentile), not the log2-bucket estimates the
   metrics registry exports — the registry answers "is the SLO burning"
   cheaply and forever; the report answers "what was the p999 of this run"
   precisely. *)

open Xsc_linalg
module Rng = Xsc_util.Rng
module Stats = Xsc_util.Stats
module Clock = Xsc_obs.Clock

type kind =
  | Spd
  | General
  | Product
  | Cg
  | Mg

type config = {
  seed : int;
  rate_hz : float;
  count : int;
  n : int;
  kinds : kind array;
  deadline_s : float;
}

let default =
  {
    seed = 42;
    rate_hz = 500.0;
    count = 100;
    n = 48;
    kinds = [| Spd |];
    deadline_s = 0.05;
  }

type arrival = { at_s : float; kind : kind; problem_seed : int }

let schedule cfg =
  if cfg.count <= 0 then invalid_arg "Loadgen.schedule: count must be positive";
  if cfg.rate_hz <= 0.0 then invalid_arg "Loadgen.schedule: rate_hz must be positive";
  if Array.length cfg.kinds = 0 then invalid_arg "Loadgen.schedule: kinds must be non-empty";
  let rng = Rng.create cfg.seed in
  let t = ref 0.0 in
  Array.init cfg.count (fun _ ->
      t := !t +. Rng.exponential rng cfg.rate_hz;
      let kind = cfg.kinds.(Rng.int rng (Array.length cfg.kinds)) in
      { at_s = !t; kind; problem_seed = 1 + Rng.int rng 0x3FFFFFFF })

(* Sparse instances: [n] is reinterpreted as the GRID EDGE (n^3 unknowns),
   not the matrix order — a grid-16 CG solve is a 4096-row SpMV stream, the
   bandwidth-bound analogue of an n=48 dense solve's compute-bound kernel.
   Tolerances/budgets are fixed here so a generated instance always
   converges on a fault-free server (the bench gates rely on sparse
   failures meaning injected faults or deliberate cap-outs, not flaky
   generation). *)
let sparse_tol = 1e-8
let cg_max_iter n = 30 * n
let mg_max_cycles = 100
let mg_levels = 4

let payload_of cfg a =
  let rng = Rng.create a.problem_seed in
  match a.kind with
  | Spd -> Request.Spd_solve (Mat.random_spd rng cfg.n, Vec.random rng cfg.n)
  | General -> Request.Lu_solve (Mat.random_diag_dominant rng cfg.n, Vec.random rng cfg.n)
  | Product -> Request.Gemm (Mat.random rng cfg.n cfg.n, Mat.random rng cfg.n cfg.n)
  | Cg ->
    let rows = cfg.n * cfg.n * cfg.n in
    Request.Cg_solve
      {
        a = Xsc_sparse.Stencil.poisson_3d cfg.n;
        b = Vec.random rng rows;
        tol = sparse_tol;
        max_iter = cg_max_iter cfg.n;
      }
  | Mg ->
    let rows = cfg.n * cfg.n * cfg.n in
    Request.Mg_solve
      {
        grid = cfg.n;
        levels = mg_levels;
        b = Vec.random rng rows;
        tol = sparse_tol;
        max_cycles = mg_max_cycles;
      }

(* The oracle: the same kernels the server runs, called directly — the
   server's answer for a fault-free request must be bitwise identical. *)
let reference cfg a =
  match payload_of cfg a with
  | Request.Spd_solve (m, b) -> Request.Vector (Lapack.chol_solve m b)
  | Request.Lu_solve (m, b) -> Request.Vector (Lapack.lu_solve m b)
  | Request.Gemm (m, b) ->
    let ra, _ = Mat.dims m and _, cb = Mat.dims b in
    let c = Mat.create ra cb in
    Blas.gemm ~alpha:1.0 m b ~beta:0.0 c;
    Request.Matrix c
  | (Request.Cg_solve _ | Request.Mg_solve _) as p ->
    (* Sparse oracle: the identical sequential chain the router runs — for
       sparse payloads the Slot path IS [Route.direct], so this oracle and
       [reference_routed] coincide. Raises [Route.Non_convergence] when the
       instance cannot meet its tolerance; callers compare survivors only. *)
    Route.direct p

(* Oracle for the shared-pool dispatch path: the identical Route plan the
   server submits, executed sequentially. The packed kernels are bitwise
   schedule-independent, so a fault-free pool-served answer must equal
   this bit for bit — under any interleaving, steal pattern or storm. *)
let reference_routed ?nb cfg a = Route.direct ?nb (payload_of cfg a)

let bits_equal x y =
  Array.length x = Array.length y
  && (let ok = ref true in
      Array.iteri
        (fun i v -> if Int64.bits_of_float v <> Int64.bits_of_float y.(i) then ok := false)
        x;
      !ok)

let solutions_bitwise_equal a b =
  match (a, b) with
  | Request.Vector x, Request.Vector y -> bits_equal x y
  | Request.Matrix x, Request.Matrix y ->
    Mat.dims x = Mat.dims y
    && (let rx, cx = Mat.dims x in
        let ok = ref true in
        for i = 0 to rx - 1 do
          for j = 0 to cx - 1 do
            if Int64.bits_of_float (Mat.get x i j) <> Int64.bits_of_float (Mat.get y i j)
            then ok := false
          done
        done;
        !ok)
  | _ -> false

type report = {
  offered : int;
  admitted : int;
  rejected : int;
  completed : int;
  failed : int;
  retried : int;
  wall_s : float;
  offered_rate : float;
  throughput : float;
  goodput : float;
  reject_rate : float;
  p50_ms : float;
  p99_ms : float;
  p999_ms : float;
  mean_batch : float;
}

let percentile_ms samples p =
  if Array.length samples = 0 then 0.0 else Stats.percentile samples p *. 1e3

let report_of ~offered ~rejected ~wall_s ~batches (completions : Request.completion list) =
  let completed = List.length (List.filter (fun c -> Result.is_ok c.Request.outcome) completions) in
  let failed = List.length completions - completed in
  let retried = List.fold_left (fun acc c -> acc + c.Request.retries) 0 completions in
  let on_time =
    List.length
      (List.filter
         (fun c -> Result.is_ok c.Request.outcome && c.Request.met_deadline)
         completions)
  in
  let latencies =
    completions |> List.map (fun c -> c.Request.total_s) |> Array.of_list
  in
  Array.sort compare latencies;
  let admitted = List.length completions in
  {
    offered;
    admitted;
    rejected;
    completed;
    failed;
    retried;
    wall_s;
    offered_rate = (if wall_s > 0.0 then float_of_int offered /. wall_s else 0.0);
    throughput = (if wall_s > 0.0 then float_of_int completed /. wall_s else 0.0);
    goodput = (if wall_s > 0.0 then float_of_int on_time /. wall_s else 0.0);
    reject_rate = (if offered > 0 then float_of_int rejected /. float_of_int offered else 0.0);
    p50_ms = percentile_ms latencies 50.0;
    p99_ms = percentile_ms latencies 99.0;
    p999_ms = percentile_ms latencies 99.9;
    mean_batch =
      (if batches > 0 then float_of_int admitted /. float_of_int batches else 0.0);
  }

let rec wait_until target_s =
  let now = Clock.now_s () in
  if now < target_s then begin
    Unix.sleepf (Float.min 0.001 (target_s -. now));
    wait_until target_s
  end

let await_and_report srv cfg ~batches0 ~t0 tickets =
  let completions =
    Array.to_list tickets
    |> List.filter_map (function Ok tk -> Some (Server.await srv tk) | Error _ -> None)
  in
  let wall_s = Clock.now_s () -. t0 in
  let rejected =
    Array.fold_left (fun acc t -> if Result.is_error t then acc + 1 else acc) 0 tickets
  in
  let batches = (Server.counters srv).Server.batches - batches0 in
  report_of ~offered:cfg.count ~rejected ~wall_s ~batches completions

let run_open srv cfg =
  let arrivals = schedule cfg in
  let batches0 = (Server.counters srv).Server.batches in
  let t0 = Clock.now_s () in
  let tickets =
    Array.map
      (fun a ->
        wait_until (t0 +. a.at_s);
        Server.submit srv ~deadline_s:cfg.deadline_s (payload_of cfg a))
      arrivals
  in
  await_and_report srv cfg ~batches0 ~t0 tickets

let run_burst srv cfg =
  (* Payloads are generated up front: problem generation is O(n^3), pricier
     than the solve itself, so generating inline would pace the offered
     load below the service rate and overload could never be observed. *)
  let payloads = Array.map (payload_of cfg) (schedule cfg) in
  let batches0 = (Server.counters srv).Server.batches in
  let t0 = Clock.now_s () in
  let tickets =
    Array.map (fun p -> Server.submit srv ~deadline_s:cfg.deadline_s p) payloads
  in
  await_and_report srv cfg ~batches0 ~t0 tickets

let run_closed srv ~outstanding cfg =
  if outstanding <= 0 then invalid_arg "Loadgen.run_closed: outstanding must be positive";
  let arrivals = schedule cfg in
  let batches0 = (Server.counters srv).Server.batches in
  let t0 = Clock.now_s () in
  let completions = ref [] in
  let rejected = ref 0 in
  let window = Stdlib.Queue.create () in
  let submit a =
    match Server.submit srv ~deadline_s:cfg.deadline_s (payload_of cfg a) with
    | Ok tk -> Stdlib.Queue.add tk window
    | Error _ -> incr rejected
  in
  let drain_one () =
    if not (Stdlib.Queue.is_empty window) then
      completions := Server.await srv (Stdlib.Queue.pop window) :: !completions
  in
  Array.iter
    (fun a ->
      if Stdlib.Queue.length window >= outstanding then drain_one ();
      submit a)
    arrivals;
  while not (Stdlib.Queue.is_empty window) do
    drain_one ()
  done;
  let wall_s = Clock.now_s () -. t0 in
  let batches = (Server.counters srv).Server.batches - batches0 in
  report_of ~offered:cfg.count ~rejected:!rejected ~wall_s ~batches !completions

(* ---- the latency-isolation mix: Poisson smalls + a streaming large ---- *)

type large = {
  l_n : int;
  l_deadline_s : float;
  l_seed : int;
}

let default_large = { l_n = 768; l_deadline_s = 5.0; l_seed = 7 }

type isolation = {
  smalls : report;
  pairs : (arrival * Request.completion) list;
  larges_done : int;
  larges_failed : int;
  large_mean_s : float;
}

(* One client thread drives both loads: smalls open-loop at their Poisson
   times (offered load does not slow down for the large), the large
   closed-loop with exactly one outstanding — the moment one completes the
   next is submitted, so large work streams through the server for the
   whole run. The large instance is generated once and resubmitted
   (generation is O(n^3), pricier than the solve; regenerating would
   starve the stream). *)
let run_isolation srv ?large cfg =
  let arrivals = schedule cfg in
  let payloads = Array.map (payload_of cfg) arrivals in
  let large_payload =
    Option.map
      (fun l ->
        let rng = Rng.create l.l_seed in
        (l, Request.Spd_solve (Mat.random_spd rng l.l_n, Vec.random rng l.l_n)))
      large
  in
  let batches0 = (Server.counters srv).Server.batches in
  let large_tk = ref None in
  let larges = ref [] in
  let pump_large () =
    match large_payload with
    | None -> ()
    | Some (l, p) ->
      (match !large_tk with
      | Some tk -> (
        match Server.poll srv tk with
        | Some c ->
          larges := c :: !larges;
          large_tk := None
        | None -> ())
      | None -> ());
      if !large_tk = None then
        match Server.submit srv ~deadline_s:l.l_deadline_s p with
        | Ok tk -> large_tk := Some tk
        | Error _ -> ()
  in
  let t0 = Clock.now_s () in
  let tickets =
    Array.mapi
      (fun i a ->
        let rec wait () =
          pump_large ();
          let now = Clock.now_s () in
          if now < t0 +. a.at_s then begin
            Unix.sleepf (Float.min 0.0005 (t0 +. a.at_s -. now));
            wait ()
          end
        in
        wait ();
        Server.submit srv ~deadline_s:cfg.deadline_s payloads.(i))
      arrivals
  in
  let pairs =
    Array.to_list
      (Array.map2
         (fun a t ->
           match t with Ok tk -> Some (a, Server.await srv tk) | Error _ -> None)
         arrivals tickets)
    |> List.filter_map Fun.id
  in
  (match !large_tk with
  | Some tk ->
    larges := Server.await srv tk :: !larges;
    large_tk := None
  | None -> ());
  let wall_s = Clock.now_s () -. t0 in
  let rejected =
    Array.fold_left (fun acc t -> if Result.is_error t then acc + 1 else acc) 0 tickets
  in
  let batches = (Server.counters srv).Server.batches - batches0 in
  let larges_ok = List.filter (fun c -> Result.is_ok c.Request.outcome) !larges in
  {
    smalls = report_of ~offered:cfg.count ~rejected ~wall_s ~batches (List.map snd pairs);
    pairs;
    larges_done = List.length larges_ok;
    larges_failed = List.length !larges - List.length larges_ok;
    large_mean_s =
      (match larges_ok with
      | [] -> 0.0
      | l ->
        List.fold_left (fun acc c -> acc +. c.Request.total_s) 0.0 l
        /. float_of_int (List.length l));
  }

(* ---- the mixed-workload run: dense + sparse open-loop streams ---- *)

type mixed = {
  m_dense : report;
  m_sparse : report;
  m_dense_pairs : (arrival * Request.completion) list;
  m_sparse_pairs : (arrival * Request.completion) list;
}

(* One client thread drives both classes open-loop, arrivals merged in time
   order. Generation is asymmetric by design: dense instances are
   pre-generated before the clock starts (O(n^3) per instance, pricier than
   the solve itself — inline generation would pace offered load below the
   service rate), while sparse instances are generated inline at submit
   time (stencil assembly + rhs are O(rows), cheaper than a single solve
   chunk, so inline generation cannot distort the offered timing). Both
   reports share the run's batch count — [mean_batch] is run-wide, not
   per-class. *)
let run_mixed srv ~dense ~sparse =
  let da = schedule dense and sa = schedule sparse in
  let dense_payloads = Array.map (payload_of dense) da in
  let tagged =
    Array.append
      (Array.mapi (fun i a -> (a.at_s, `Dense, i, a)) da)
      (Array.mapi (fun i a -> (a.at_s, `Sparse, i, a)) sa)
  in
  Array.sort (fun (x, _, _, _) (y, _, _, _) -> compare x y) tagged;
  let placeholder = Error (Request.Rejected Request.Queue_full) in
  let dt = Array.make (Array.length da) placeholder in
  let st = Array.make (Array.length sa) placeholder in
  let batches0 = (Server.counters srv).Server.batches in
  let t0 = Clock.now_s () in
  Array.iter
    (fun (at, cls, i, a) ->
      wait_until (t0 +. at);
      match cls with
      | `Dense ->
        dt.(i) <- Server.submit srv ~deadline_s:dense.deadline_s dense_payloads.(i)
      | `Sparse ->
        st.(i) <- Server.submit srv ~deadline_s:sparse.deadline_s (payload_of sparse a))
    tagged;
  let pairs arrivals tickets =
    Array.to_list
      (Array.map2
         (fun a t ->
           match t with Ok tk -> Some (a, Server.await srv tk) | Error _ -> None)
         arrivals tickets)
    |> List.filter_map Fun.id
  in
  let dense_pairs = pairs da dt in
  let sparse_pairs = pairs sa st in
  let wall_s = Clock.now_s () -. t0 in
  let batches = (Server.counters srv).Server.batches - batches0 in
  let rejected ts =
    Array.fold_left (fun acc t -> if Result.is_error t then acc + 1 else acc) 0 ts
  in
  {
    m_dense =
      report_of ~offered:dense.count ~rejected:(rejected dt) ~wall_s ~batches
        (List.map snd dense_pairs);
    m_sparse =
      report_of ~offered:sparse.count ~rejected:(rejected st) ~wall_s ~batches
        (List.map snd sparse_pairs);
    m_dense_pairs = dense_pairs;
    m_sparse_pairs = sparse_pairs;
  }

let report_json r =
  Printf.sprintf
    "{\"offered\": %d, \"admitted\": %d, \"rejected\": %d, \"completed\": %d, \
     \"failed\": %d, \"retried\": %d, \"wall_s\": %.4f, \"offered_rate_hz\": %.1f, \
     \"throughput_hz\": %.1f, \"goodput_hz\": %.1f, \"reject_rate\": %.4f, \
     \"p50_ms\": %.4f, \"p99_ms\": %.4f, \"p999_ms\": %.4f, \"mean_batch\": %.2f}"
    r.offered r.admitted r.rejected r.completed r.failed r.retried r.wall_s
    r.offered_rate r.throughput r.goodput r.reject_rate r.p50_ms r.p99_ms r.p999_ms
    r.mean_batch

let report_human r =
  Printf.sprintf
    "offered %d (%.0f/s)  admitted %d  rejected %d (%.1f%%)\n\
     completed %d  failed %d  retried %d\n\
     throughput %.0f/s  goodput %.0f/s  latency p50 %.2f ms  p99 %.2f ms  p999 %.2f ms\n\
     mean batch %.2f  wall %.3f s"
    r.offered r.offered_rate r.admitted r.rejected (100.0 *. r.reject_rate) r.completed
    r.failed r.retried r.throughput r.goodput r.p50_ms r.p99_ms r.p999_ms r.mean_batch
    r.wall_s
