(** Solve requests and their typed outcomes.

    A request is one independent problem — the unit the serving layer
    admits, batches, schedules and isolates faults around. Dense payloads
    (compute-bound) reuse the library's strided kernels; sparse payloads
    (bandwidth-bound CG/multigrid over stencil operators) carry their own
    tolerance and iteration budget. The solution types own fresh storage,
    so a caller's inputs are never mutated by the service. *)

open Xsc_linalg

type payload =
  | Spd_solve of Mat.t * Vec.t  (** [x] with [A x = b], [A] SPD (Cholesky) *)
  | Lu_solve of Mat.t * Vec.t  (** [x] with [A x = b] (partial-pivoting LU) *)
  | Gemm of Mat.t * Mat.t  (** the product [A B] *)
  | Cg_solve of { a : Xsc_sparse.Csr.t; b : Vec.t; tol : float; max_iter : int }
      (** sparse SPD iterative solve (classic CG) — bandwidth-bound; a solve
          that fails to reach [tol] within [max_iter] iterations is a TYPED
          failure ({!Failed}), never a silently wrong answer *)
  | Mg_solve of { grid : int; levels : int; b : Vec.t; tol : float; max_cycles : int }
      (** stationary V-cycle multigrid on the [grid³] 27-point stencil
          operator ({!Xsc_sparse.Stencil.hpcg_27pt}; [grid] must be even,
          for coarsening) — same non-convergence contract as [Cg_solve] *)

type solution =
  | Vector of Vec.t
  | Matrix of Mat.t

type reject_reason =
  | Queue_full  (** admission window full — backpressure engaged *)
  | Shutting_down

type error =
  | Rejected of reject_reason
      (** refused at admission; the request was never queued *)
  | Failed of { attempts : int; error : string }
      (** the kernel failed on every attempt (e.g. a singular matrix, or a
          permanent injected fault); [error] is the final exception *)

type t = {
  id : int;  (** server-assigned, unique per server *)
  payload : payload;
  submit_ns : int;  (** monotonic admission timestamp *)
  deadline_ns : int;  (** absolute monotonic deadline (EDF key) *)
  span : Xsc_obs.Span.ctx;
      (** root of the request's causal span tree, minted at admission;
          every wait/attempt/task/replay segment parents onto it *)
}

val validate : payload -> unit
(** Raises [Invalid_argument] on dimension mismatches (checked at submit,
    so a malformed request can never reach a worker). *)

val kind_name : payload -> string
val size : payload -> int

val class_key : payload -> string
(** Batching-compatibility class ([spd:64], [lu:48], …): only requests of
    one class coalesce into a batch — same kernel, same size, so no member
    stalls behind a much larger sibling. *)

val reject_reason_name : reject_reason -> string
val error_message : error -> string

type completion = {
  request : t;
  outcome : (solution, error) result;
  retries : int;  (** re-executions after transient injected faults *)
  queue_wait_s : float;  (** admission to batch dispatch *)
  service_s : float;  (** dispatch to completion (includes retries) *)
  total_s : float;
  met_deadline : bool;
}
