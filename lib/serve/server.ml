(* The concurrent solver service: admission -> bounded ingress queue ->
   dynamic batcher -> EDF ready heap -> persistent worker pool.

   Concurrency structure: submit-side state is atomics (the admission
   window) plus the bounded ingress queue; batcher and EDF heap are owned
   by whichever worker holds the single state mutex, so they stay simple
   single-threaded data structures. Workers pull: each loop iteration
   drains the ingress into the batcher, flushes due batches into the heap,
   and either executes the most urgent batch or sleeps one poll interval
   (OCaml's [Condition] has no timed wait, so the time-triggered flush is
   polled; with a 200 us poll against a >= 1 ms linger the flush-time error
   is noise).

   Fault isolation is per request: batch members run as independent
   result-slots ([Batched.run_batch_results]), so one singular matrix or
   injected fault fails exactly one request with a typed error; transient
   injected faults are retried with exponential backoff on the same worker;
   the server itself never goes down from a request failure.

   The admission window counts a request from accept to completion
   (queued, staged in the batcher, or executing) — backpressure engages
   whenever service lags offered load, not only when the ingress ring
   itself is momentarily full, so total in-system memory is bounded by
   [capacity] end to end.

   In [Shared] mode the window is measured against actual in-flight work
   instead of raw request counts: occupancy is [Pool.live_jobs] (DAGs
   live in the shared pool) plus requests still travelling towards the
   pool (ingress/batcher/EDF heap). A request waiting out a transient
   retry backoff holds no pool lane, so it does not count against the
   window — admission keeps flowing while retries sleep, and in-system
   memory is bounded by [capacity] plus the (transient) backoff
   population. *)

open Xsc_linalg
module Clock = Xsc_obs.Clock
module Metrics = Xsc_obs.Metrics
module Span = Xsc_obs.Span
module Gcstat = Xsc_obs.Gcstat
module Trace = Xsc_runtime.Trace
module Real_exec = Xsc_runtime.Real_exec
module Pool = Xsc_runtime.Pool
module Harness = Xsc_resilience.Harness
module Flight = Xsc_resilience.Flight

let poll_s = 0.0002

let m_admitted = Metrics.counter "serve.admitted"
let m_rejected = Metrics.counter "serve.rejected"
let m_completed = Metrics.counter "serve.completed"
let m_failed = Metrics.counter "serve.failed"
let m_retried = Metrics.counter "serve.retried"
let m_batches = Metrics.counter "serve.batches"
let m_batch_size = Metrics.histogram "serve.batch_size"
let m_queue_wait = Metrics.histogram "serve.queue_wait_s"
let m_service = Metrics.histogram "serve.service_s"
let m_total = Metrics.histogram "serve.total_s"

(* per-request minor-heap allocation estimate (whole-batch delta on the
   executing domain divided by batch size): ROADMAP item 6's
   "zero-allocation steady state" as a benchmarked number *)
let m_alloc = Metrics.histogram "serve.alloc_minor_words_per_req"

(* Two dispatch modes share the whole admission -> batcher -> EDF front:
   [Slot] claims a worker domain per batch and runs requests to completion
   on it (the original design, kept as the isolation-bench ablation);
   [Shared n] routes every request's DAG into one shared deadline-aware
   task pool ({!Xsc_runtime.Pool}) on [n] persistent worker domains — no
   per-request executor, no per-request barrier, and the request's EDF
   deadline travels down to *task* granularity, so a small request entering
   while a large factorization streams waits ~one task, not the tail of
   the large DAG. *)
type dispatch =
  | Slot
  | Shared of int

type config = {
  workers : int;
  capacity : int;
  max_batch : int;
  linger_s : float;
  default_deadline_s : float;
  max_retries : int;
  retry_backoff_s : float;
  spans : bool;
  slos : Slo.objective list;
  flight_path : string option;
  dispatch : dispatch;
  class_caps : (string * int) list;
}

let default_config =
  {
    workers = 2;
    capacity = 64;
    max_batch = 8;
    linger_s = 0.002;
    default_deadline_s = 0.25;
    max_retries = 3;
    retry_backoff_s = 0.0005;
    spans = true;
    slos = [];
    flight_path = None;
    (* Shared became the default after soaking through PRs 8-9 CI: EDF to
       task granularity, admission against actual in-flight work. [Slot]
       stays selectable as the run-to-completion ablation. *)
    dispatch = Shared 2;
    class_caps = [];
  }

type ticket = {
  t_mu : Mutex.t;
  t_cv : Condition.t;
  mutable result : Request.completion option;
}

type counters = {
  admitted : int;
  rejected : int;
  completed : int;
  failed : int;
  retried : int;
  batches : int;
  cap_deferred : int;
}

(* Class-aware dispatch: a per-kind concurrency cap on how many of a
   class's DAGs may be live in the shared pool at once. [cc_live] counts
   attempt submissions (incremented before Pool.submit, decremented on the
   attempt's completion callback); a retry asleep in backoff holds no cap
   slot, mirroring the admission window's pool-depth accounting. *)
type class_cap = { cc_kind : string; cc_cap : int; cc_live : int Atomic.t }

(* A finished request's trace footprint: a queue-wait span on the virtual
   queue lane plus a service span on the executing worker's lane. *)
type span = { task : int; name : string; lane : int; start_ns : int; finish_ns : int }

(* A transiently-faulted request waiting out its retry backoff: the pump
   resubmits it when due instead of a pool worker sleeping in a callback
   (a sleeping callback would block a whole execution lane). *)
type retry_entry = {
  re_due_ns : int;
  re_req : Request.t;
  re_attempt : int;  (* attempts already consumed *)
  re_dispatch_ns : int;  (* first submit-to-pool time, held across retries *)
}

type t = {
  cfg : config;
  harness : Harness.t option;
  collector : Span.collector option;
  slo : Slo.t option;
  ingress : Request.t Queue.t;
  pool : Pool.t option;  (* Some iff [dispatch = Shared _] *)
  caps : class_cap array;  (* enforced by the Shared pump only *)
  c_cap_deferred : int Atomic.t;
  (* ---- shared worker state, under [mu] ---- *)
  mu : Mutex.t;
  batcher : Request.t Batcher.t;
  sched : Request.t Scheduler.t;
  tickets : (int, ticket) Hashtbl.t;
  mutable spans : span list;
  (* ---- retry queue (Shared mode), under [retry_mu] ---- *)
  retry_mu : Mutex.t;
  mutable retry_q : retry_entry list;
  (* ---- submit-side state ---- *)
  in_system : int Atomic.t;  (* admitted and not yet completed *)
  staged : int Atomic.t;
  (* Shared mode: admitted and not yet live in the pool (ingress, batcher,
     EDF heap, dispatch in flight). The admission occupancy is
     [staged + Pool.live_jobs]: work the pipeline is actually carrying.
     A retry sleeping out its backoff is in neither term — by design. *)
  next_id : int Atomic.t;
  stopping : bool Atomic.t;
  start_ns : int;
  c_admitted : int Atomic.t;
  c_rejected : int Atomic.t;
  c_completed : int Atomic.t;
  c_failed : int Atomic.t;
  c_retried : int Atomic.t;
  c_batches : int Atomic.t;
  mutable domains : unit Domain.t array;
}

(* lane layout in the exported trace: workers 0..lanes-1, queue-wait
   spans on one extra virtual lane *)
let exec_lanes cfg = match cfg.dispatch with Slot -> cfg.workers | Shared n -> n
let queue_lane cfg = exec_lanes cfg

(* ---- request execution ---- *)

let solve_payload = function
  | Request.Spd_solve (a, b) ->
    let f = Mat.copy a in
    Lapack.potrf f;
    let x = Array.copy b in
    Lapack.potrs f x;
    Request.Vector x
  | Request.Lu_solve (a, b) -> Request.Vector (Lapack.lu_solve a b)
  | Request.Gemm (a, b) ->
    let ra, _ = Mat.dims a and _, cb = Mat.dims b in
    let c = Mat.create ra cb in
    Blas.gemm ~alpha:1.0 a b ~beta:0.0 c;
    Request.Matrix c
  | (Request.Cg_solve _ | Request.Mg_solve _) as p ->
    (* sparse kinds run the same stepper chain sequentially: bitwise equal
       to the pooled chain by construction; non-convergence raises
       Route.Non_convergence, a deterministic typed failure (not retried) *)
    Route.direct p

let thunk_of t (r : Request.t) () =
  match t.harness with
  | None -> solve_payload r.Request.payload
  | Some h -> Harness.wrap_thunk h ~key:r.Request.id (fun () -> solve_payload r.Request.payload)

(* One dispatch attempt of one request: the solve runs under the
   request's ambient span context (so executor tasks, injected faults and
   ABFT replays parent onto this attempt), and the attempt itself is
   recorded whether it returns or raises — a retried request shows every
   attempt in its lane. *)
let run_attempt t worker (r : Request.t) ~attempt () =
  match t.collector with
  | None -> thunk_of t r ()
  | Some col ->
    let ctx = Span.child r.Request.span in
    let t0 = Clock.now_ns () in
    let note () =
      Span.record col
        {
          Span.request = r.Request.id;
          span = ctx.Span.span;
          parent = ctx.Span.parent;
          phase = "attempt";
          name = Request.class_key r.Request.payload;
          lane = worker;
          attempt;
          start_ns = t0;
          finish_ns = Clock.now_ns ();
        }
    in
    (match Span.with_current (Some ctx) (thunk_of t r) with
    | v ->
      note ();
      v
    | exception e ->
      note ();
      raise e)

let complete t (r : Request.t) outcome ~retries ~dispatch_ns ~worker =
  let finish_ns = Clock.now_ns () in
  let queue_wait_s = Clock.ns_to_s (dispatch_ns - r.Request.submit_ns) in
  let service_s = Clock.ns_to_s (finish_ns - dispatch_ns) in
  let total_s = Clock.ns_to_s (finish_ns - r.Request.submit_ns) in
  Metrics.observe m_queue_wait queue_wait_s;
  Metrics.observe m_service service_s;
  Metrics.observe m_total total_s;
  (match outcome with
  | Ok _ ->
    Atomic.incr t.c_completed;
    Metrics.incr m_completed
  | Error _ ->
    Atomic.incr t.c_failed;
    Metrics.incr m_failed);
  let completion =
    {
      Request.request = r;
      outcome;
      retries;
      queue_wait_s;
      service_s;
      total_s;
      met_deadline = finish_ns <= r.Request.deadline_ns;
    }
  in
  let key = Request.class_key r.Request.payload in
  Mutex.lock t.mu;
  t.spans <-
    {
      task = r.Request.id;
      name = Printf.sprintf "%s(%d)" key r.Request.id;
      lane = worker;
      start_ns = dispatch_ns;
      finish_ns;
    }
    :: {
         task = r.Request.id;
         name = Printf.sprintf "wait:%s(%d)" key r.Request.id;
         lane = queue_lane t.cfg;
         start_ns = r.Request.submit_ns;
         finish_ns = dispatch_ns;
       }
    :: t.spans;
  let ticket = Hashtbl.find_opt t.tickets r.Request.id in
  Hashtbl.remove t.tickets r.Request.id;
  Mutex.unlock t.mu;
  (* causal span records: the wait segment and the root request segment
     (attempt segments were recorded as they ran). The root closes last,
     so by the time a flight dump triggers below, the ring holds the
     request's whole chain. *)
  (match t.collector with
  | None -> ()
  | Some col ->
    let wait = Span.child r.Request.span in
    Span.record col
      {
        Span.request = r.Request.id;
        span = wait.Span.span;
        parent = wait.Span.parent;
        phase = "wait";
        name = Printf.sprintf "wait:%s" key;
        lane = queue_lane t.cfg;
        attempt = 0;
        start_ns = r.Request.submit_ns;
        finish_ns = dispatch_ns;
      };
    Span.record col
      {
        Span.request = r.Request.id;
        span = r.Request.span.Span.span;
        parent = -1;
        phase = "request";
        name = Printf.sprintf "%s(%d)" key r.Request.id;
        lane = -1;
        attempt = retries;
        start_ns = r.Request.submit_ns;
        finish_ns;
      });
  (* SLO burn-rate monitor; entering breach triggers a post-mortem dump *)
  (match t.slo with
  | None -> ()
  | Some slo ->
    let newly_breached =
      Slo.observe slo
        ~kind:(Request.kind_name r.Request.payload)
        ~id:r.Request.id ~latency_s:total_s
        ~failed:(Result.is_error outcome)
    in
    if newly_breached then
      match t.cfg.flight_path with
      | Some path ->
        ignore
          (Flight.dump_once ~path
             ~reason:
               (Printf.sprintf "slo-breach: class %s (request %d)"
                  (Request.kind_name r.Request.payload)
                  r.Request.id))
      | None -> ());
  (* permanent request failure: first one dumps the flight recorder *)
  (match (outcome, t.cfg.flight_path) with
  | Error (Request.Failed _), Some path ->
    ignore
      (Flight.dump_once ~path
         ~reason:(Printf.sprintf "permanent-failure: request %d after %d retries" r.Request.id retries))
  | _ -> ());
  (match ticket with
  | Some tk ->
    Mutex.lock tk.t_mu;
    tk.result <- Some completion;
    Condition.broadcast tk.t_cv;
    Mutex.unlock tk.t_mu
  | None -> ());
  (* last: only a fully completed request frees an admission slot *)
  ignore (Atomic.fetch_and_add t.in_system (-1))

let execute t worker (batch : Request.t Batcher.batch) =
  let dispatch_ns = Clock.now_ns () in
  Atomic.incr t.c_batches;
  Metrics.incr m_batches;
  Metrics.observe m_batch_size (float_of_int (Array.length batch.Batcher.requests));
  (* allocation estimate: whole-batch minor-words delta on this domain
     (solve + retries + completion bookkeeping), amortised per request.
     Gc.minor_words is allocation-free, so the probe doesn't feed itself. *)
  let minor0 = Gcstat.minor_words () in
  (* batch members run as independent result slots on this worker;
     parallelism comes from sibling workers executing other batches *)
  let results =
    Xsc_core.Batched.run_batch_results
      (Array.map (fun r -> run_attempt t worker r ~attempt:0) batch.Batcher.requests)
  in
  Array.iteri
    (fun i first ->
      let r = batch.Batcher.requests.(i) in
      let retries = ref 0 in
      (* Only injected (transient-model) faults are retried: a singular
         matrix is deterministic, so re-running it would burn service time
         to reproduce the same failure. *)
      let rec settle res =
        match res with
        | Ok sol -> Ok sol
        | Error (Harness.Injected _) when !retries < t.cfg.max_retries ->
          incr retries;
          Atomic.incr t.c_retried;
          Metrics.incr m_retried;
          Unix.sleepf (t.cfg.retry_backoff_s *. ldexp 1.0 (!retries - 1));
          settle (try Ok (run_attempt t worker r ~attempt:!retries ()) with e -> Error e)
        | Error e ->
          Error (Request.Failed { attempts = !retries + 1; error = Printexc.to_string e })
      in
      let outcome = settle first in
      complete t r outcome ~retries:!retries ~dispatch_ns ~worker)
    results;
  let n = Array.length batch.Batcher.requests in
  if n > 0 then begin
    let per_req = (Gcstat.minor_words () -. minor0) /. float_of_int n in
    Metrics.observe_n m_alloc per_req ~n
  end

(* ---- shared-pool dispatch ---- *)

(* One attempt of one request as a pool job: build a fresh plan (fresh
   scratch cell, fresh fault wrapping), submit its DAG with the request's
   deadline and attempt span context, and let the completion callback —
   running on the pool worker that drained the job — assemble the
   solution, queue a retry, or settle the request. No thread ever blocks
   per request; concurrency lives entirely in the shared pool. *)
let cap_for t kind =
  let n = Array.length t.caps in
  let rec go i =
    if i >= n then None
    else if t.caps.(i).cc_kind = kind then Some t.caps.(i)
    else go (i + 1)
  in
  go 0

let rec submit_to_pool t pool (r : Request.t) ~attempt ~dispatch_ns =
  (* the attempt's DAG counts in [Pool.live_jobs] once submitted; for the
     first attempt the [staged] slot claimed at admission is released just
     after Pool.submit returns, so the occupancy briefly double-counts
     (conservative) and never dips *)
  let m0 = Gcstat.minor_words () in
  let plan = Route.plan ?harness:t.harness ~key:r.Request.id r.Request.payload in
  let plan_alloc = Gcstat.minor_words () -. m0 in
  let actx = Option.map (fun _ -> Span.child r.Request.span) t.collector in
  let t0 = Clock.now_ns () in
  let note_attempt ~worker =
    match (t.collector, actx) with
    | Some col, Some ctx ->
      Span.record col
        {
          Span.request = r.Request.id;
          span = ctx.Span.span;
          parent = ctx.Span.parent;
          phase = "attempt";
          name = Request.class_key r.Request.payload;
          lane = worker;
          attempt;
          start_ns = t0;
          finish_ns = Clock.now_ns ();
        }
    | _ -> ()
  in
  let cap = cap_for t (Request.kind_name r.Request.payload) in
  (match cap with Some cc -> Atomic.incr cc.cc_live | None -> ());
  Pool.submit ?interp:plan.Route.interp ~deadline_ns:r.Request.deadline_ns ?sctx:actx
    pool plan.Route.dag ~on_done:(fun failure ~worker ->
      (* the attempt left the pool: free its class-cap slot first, so the
         pump can dispatch the class's next batch while we settle this one *)
      (match cap with Some cc -> ignore (Atomic.fetch_and_add cc.cc_live (-1)) | None -> ());
      note_attempt ~worker;
      match failure with
      | None -> (
        let m1 = Gcstat.minor_words () in
        match plan.Route.finish () with
        | sol ->
          (* per-request allocation: plan construction (pump domain) plus
             solve-and-release (this domain); the factorization tasks
             themselves run in place over pooled buffers *)
          Metrics.observe m_alloc (plan_alloc +. (Gcstat.minor_words () -. m1));
          complete t r (Ok sol) ~retries:attempt ~dispatch_ns ~worker
        | exception e ->
          plan.Route.cleanup ();
          complete t r
            (Error (Request.Failed { attempts = attempt + 1; error = Printexc.to_string e }))
            ~retries:attempt ~dispatch_ns ~worker)
      | Some f -> (
        plan.Route.cleanup ();
        match f.Real_exec.error with
        | Harness.Injected _ when attempt < t.cfg.max_retries ->
          (* transient: hand the request back to the pump with a due time
             instead of sleeping here — a sleeping callback would block
             one of the pool's execution lanes *)
          Atomic.incr t.c_retried;
          Metrics.incr m_retried;
          let backoff_ns =
            int_of_float (t.cfg.retry_backoff_s *. ldexp 1.0 attempt *. 1e9)
          in
          let entry =
            {
              re_due_ns = Clock.now_ns () + backoff_ns;
              re_req = r;
              re_attempt = attempt + 1;
              re_dispatch_ns = dispatch_ns;
            }
          in
          Mutex.lock t.retry_mu;
          t.retry_q <- entry :: t.retry_q;
          Mutex.unlock t.retry_mu
        | e ->
          complete t r
            (Error (Request.Failed { attempts = attempt + 1; error = Printexc.to_string e }))
            ~retries:attempt ~dispatch_ns ~worker));
  if attempt = 0 then ignore (Atomic.fetch_and_add t.staged (-1))

and service_retries t pool =
  let now = Clock.now_ns () in
  Mutex.lock t.retry_mu;
  let due, later = List.partition (fun e -> e.re_due_ns <= now) t.retry_q in
  t.retry_q <- later;
  Mutex.unlock t.retry_mu;
  List.iter
    (fun e ->
      submit_to_pool t pool e.re_req ~attempt:e.re_attempt ~dispatch_ns:e.re_dispatch_ns)
    (* oldest due first, so equal-backoff retries resubmit in fault order *)
    (List.sort (fun a b -> compare a.re_due_ns b.re_due_ns) due)

(* A claimed batch in Shared mode is a dispatch unit only: each member
   becomes its own DAG submission (sharing the batch's dispatch stamp),
   and the pool interleaves their tasks with everything else in flight. *)
let dispatch_batch_pool t pool (batch : Request.t Batcher.batch) =
  let dispatch_ns = Clock.now_ns () in
  Atomic.incr t.c_batches;
  Metrics.incr m_batches;
  Metrics.observe m_batch_size (float_of_int (Array.length batch.Batcher.requests));
  Array.iter
    (fun r -> submit_to_pool t pool r ~attempt:0 ~dispatch_ns)
    batch.Batcher.requests

(* ---- worker loop ---- *)

(* Pump admitted requests through the batcher into the EDF heap and claim
   the most urgent ready batch. One state lock covers ingress drain, flush
   and claim, so batches can never be claimed twice. [eligible] filters
   the claim (class-aware dispatch): ineligible batches keep their EDF
   place in the heap. *)
let next_batch ?(eligible = fun _ -> true) t =
  Mutex.lock t.mu;
  let now = Clock.now_ns () in
  let rec drain () =
    match Queue.try_pop t.ingress with
    | None -> ()
    | Some req ->
      (match Batcher.add t.batcher ~now_ns:now req with
      | Some b -> Scheduler.push t.sched b
      | None -> ());
      drain ()
  in
  drain ();
  List.iter (Scheduler.push t.sched) (Batcher.flush_due t.batcher ~now_ns:now);
  if Atomic.get t.stopping then
    (* no more company is coming: flush partial batches immediately *)
    List.iter (Scheduler.push t.sched) (Batcher.flush_all t.batcher);
  let b = Scheduler.pop_when eligible t.sched in
  Mutex.unlock t.mu;
  b

let kind_of_class_key key =
  match String.index_opt key ':' with
  | Some i -> String.sub key 0 i
  | None -> key

(* Class-aware eligibility for the Shared pump: a batch whose kind has a
   concurrency cap waits (keeping its EDF place) while the class already
   has [cap] attempts live in the pool. The cap is checked at batch
   granularity, so a batch may overshoot it by its own size minus one —
   per-class batching already keeps sparse batches separate, and the
   bench's sparse classes batch small. *)
let batch_eligible t (b : Request.t Batcher.batch) =
  match cap_for t (kind_of_class_key b.Batcher.class_key) with
  | None -> true
  | Some cc ->
    let ok = Atomic.get cc.cc_live < cc.cc_cap in
    if not ok then Atomic.incr t.c_cap_deferred;
    ok

let rec worker_loop t w =
  match next_batch t with
  | Some b ->
    execute t w b;
    worker_loop t w
  | None ->
    if Atomic.get t.stopping && Atomic.get t.in_system = 0 then ()
    else begin
      Unix.sleepf poll_s;
      worker_loop t w
    end

(* Shared mode runs ONE pump domain: it drains admission into the batcher,
   dispatches claimed batches into the pool without blocking on them, and
   resubmits due retries. It exits only when nothing is in-system — every
   admitted request has fully settled through its completion callback. *)
let rec pump_loop t pool =
  service_retries t pool;
  match next_batch ~eligible:(batch_eligible t) t with
  | Some b ->
    dispatch_batch_pool t pool b;
    pump_loop t pool
  | None ->
    if Atomic.get t.stopping && Atomic.get t.in_system = 0 then ()
    else begin
      Unix.sleepf poll_s;
      pump_loop t pool
    end

(* ---- lifecycle ---- *)

let start ?harness cfg =
  if cfg.workers < 1 then invalid_arg "Server.start: workers must be >= 1";
  if cfg.capacity < 1 then invalid_arg "Server.start: capacity must be >= 1";
  if cfg.max_batch < 1 then invalid_arg "Server.start: max_batch must be >= 1";
  if cfg.linger_s < 0.0 then invalid_arg "Server.start: linger_s must be >= 0";
  if cfg.default_deadline_s <= 0.0 then
    invalid_arg "Server.start: default_deadline_s must be positive";
  if cfg.max_retries < 0 then invalid_arg "Server.start: max_retries must be >= 0";
  if cfg.retry_backoff_s < 0.0 then invalid_arg "Server.start: retry_backoff_s must be >= 0";
  (match cfg.dispatch with
  | Slot -> ()
  | Shared n -> if n < 1 then invalid_arg "Server.start: Shared pool workers must be >= 1");
  List.iter
    (fun (kind, cap) ->
      if kind = "" then invalid_arg "Server.start: class_caps kind must be non-empty";
      if cap < 1 then invalid_arg "Server.start: class_caps cap must be >= 1")
    cfg.class_caps;
  let collector =
    if cfg.spans then
      (* tee into the flight recorder only when a dump could ever be
         written; the collector itself always keeps the trace *)
      Some
        (match cfg.flight_path with
        | Some _ -> Span.collector ~tee:Flight.note_span ()
        | None -> Span.collector ())
    else None
  in
  let pool =
    match cfg.dispatch with
    | Slot -> None
    | Shared n -> Some (Pool.create ~workers:n ())
  in
  let t =
    {
      cfg;
      harness;
      collector;
      slo = (match cfg.slos with [] -> None | slos -> Some (Slo.create slos));
      ingress = Queue.create ~capacity:cfg.capacity;
      pool;
      caps =
        Array.of_list
          (List.map
             (fun (kind, cap) ->
               { cc_kind = kind; cc_cap = cap; cc_live = Atomic.make 0 })
             cfg.class_caps);
      c_cap_deferred = Atomic.make 0;
      mu = Mutex.create ();
      batcher =
        Batcher.create
          { Batcher.max_batch = cfg.max_batch;
            linger_ns = int_of_float (cfg.linger_s *. 1e9) };
      sched = Scheduler.create ();
      tickets = Hashtbl.create 64;
      spans = [];
      retry_mu = Mutex.create ();
      retry_q = [];
      in_system = Atomic.make 0;
      staged = Atomic.make 0;
      next_id = Atomic.make 0;
      stopping = Atomic.make false;
      start_ns = Clock.now_ns ();
      c_admitted = Atomic.make 0;
      c_rejected = Atomic.make 0;
      c_completed = Atomic.make 0;
      c_failed = Atomic.make 0;
      c_retried = Atomic.make 0;
      c_batches = Atomic.make 0;
      domains = [||];
    }
  in
  (* install process-wide so layers below (executors, harness, ABFT)
     can parent their segments onto whatever request is ambient *)
  (match collector with Some _ -> Span.install collector | None -> ());
  (match pool with
  | None ->
    t.domains <- Array.init cfg.workers (fun w -> Domain.spawn (fun () -> worker_loop t w))
  | Some p ->
    (* execution concurrency lives in the pool; one pump feeds it *)
    t.domains <- [| Domain.spawn (fun () -> pump_loop t p) |]);
  t

let reject t reason =
  Atomic.incr t.c_rejected;
  Metrics.incr m_rejected;
  Error (Request.Rejected reason)

(* Admission occupancy against [capacity].

   [Slot]: requests in-system (accept -> completion), the only load signal
   a run-to-completion worker pool has.

   [Shared]: actual in-flight work — DAGs live in the shared pool
   ([Pool.live_jobs]) plus requests still travelling towards it
   ([staged]). A request asleep in the retry queue holds no pool lane and
   is counted by neither term, so a transient-fault storm does not wedge
   the admission window shut while everyone waits out backoff. *)
let occupancy t =
  match t.pool with
  | None -> Atomic.get t.in_system
  | Some p -> Atomic.get t.staged + Pool.live_jobs p

let submit t ?deadline_s payload =
  Request.validate payload;
  let deadline_s = Option.value deadline_s ~default:t.cfg.default_deadline_s in
  if deadline_s <= 0.0 then invalid_arg "Server.submit: deadline must be positive";
  if Atomic.get t.stopping then reject t Request.Shutting_down
  else begin
    (* the admission window: claim a slot before queueing, release on
       completion (Slot) or on going live in the pool (Shared) — over-claim
       is undone immediately, so occupancy never stays above capacity *)
    let admitted =
      match t.pool with
      | None ->
        let prev = Atomic.fetch_and_add t.in_system 1 in
        if prev >= t.cfg.capacity then begin
          ignore (Atomic.fetch_and_add t.in_system (-1));
          false
        end
        else true
      | Some p ->
        let prev = Atomic.fetch_and_add t.staged 1 in
        if prev + Pool.live_jobs p >= t.cfg.capacity then begin
          ignore (Atomic.fetch_and_add t.staged (-1));
          false
        end
        else begin
          ignore (Atomic.fetch_and_add t.in_system 1);
          true
        end
    in
    if not admitted then reject t Request.Queue_full
    else begin
      let id = Atomic.fetch_and_add t.next_id 1 in
      let now = Clock.now_ns () in
      let req =
        {
          Request.id;
          payload;
          submit_ns = now;
          deadline_ns = now + int_of_float (deadline_s *. 1e9);
          span = Span.root ~request:id;
        }
      in
      let tk = { t_mu = Mutex.create (); t_cv = Condition.create (); result = None } in
      Mutex.lock t.mu;
      Hashtbl.add t.tickets id tk;
      Mutex.unlock t.mu;
      match Queue.try_push t.ingress req with
      | Queue.Accepted ->
        Atomic.incr t.c_admitted;
        Metrics.incr m_admitted;
        Ok tk
      | (Queue.Full | Queue.Closed) as pr ->
        Mutex.lock t.mu;
        Hashtbl.remove t.tickets id;
        Mutex.unlock t.mu;
        ignore (Atomic.fetch_and_add t.in_system (-1));
        (match t.pool with
        | Some _ -> ignore (Atomic.fetch_and_add t.staged (-1))
        | None -> ());
        reject t
          (if pr = Queue.Closed then Request.Shutting_down else Request.Queue_full)
    end
  end

let await _t tk =
  Mutex.lock tk.t_mu;
  while tk.result = None do
    Condition.wait tk.t_cv tk.t_mu
  done;
  let r = Option.get tk.result in
  Mutex.unlock tk.t_mu;
  r

let poll _t tk =
  Mutex.lock tk.t_mu;
  let r = tk.result in
  Mutex.unlock tk.t_mu;
  r

let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    Queue.close t.ingress;
    Array.iter Domain.join t.domains;
    (* the pump exits only at in_system = 0, so shutdown finds the pool
       quiescent — this join is the worker domains, not a drain *)
    (match t.pool with Some p -> Pool.shutdown p | None -> ());
    (* final post-mortem: workers have quiesced, so the ring now holds
       every failing request's complete chain — overwrite any mid-storm
       first-failure dump with the full picture *)
    (match t.cfg.flight_path with
    | Some path when Atomic.get t.c_failed > 0 ->
      ignore
        (Flight.dump ~path
           ~reason:(Printf.sprintf "server-stop: %d request(s) failed" (Atomic.get t.c_failed)))
    | _ -> ());
    (* uninstall only if the process-wide collector is still ours *)
    match (t.collector, Span.installed ()) with
    | Some mine, Some cur when mine == cur -> Span.install None
    | _ -> ()
  end

let in_flight t = Atomic.get t.in_system

let counters t =
  {
    admitted = Atomic.get t.c_admitted;
    rejected = Atomic.get t.c_rejected;
    completed = Atomic.get t.c_completed;
    failed = Atomic.get t.c_failed;
    retried = Atomic.get t.c_retried;
    batches = Atomic.get t.c_batches;
    cap_deferred = Atomic.get t.c_cap_deferred;
  }

let class_live t kind =
  match cap_for t kind with None -> 0 | Some cc -> Atomic.get cc.cc_live

let origin_ns t = t.start_ns
let span_records t = match t.collector with None -> [] | Some col -> Span.records col
let span_dropped t = match t.collector with None -> 0 | Some col -> Span.dropped col

let span_chrome_events t = Span.chrome_events ~origin_ns:t.start_ns (span_records t)
let span_chrome_json t = Span.to_chrome_json ~origin_ns:t.start_ns (span_records t)

let slo_reports t = match t.slo with None -> [] | Some s -> Slo.reports s
let slo_breached t = match t.slo with None -> false | Some s -> Slo.breached s
let slo_report_json t = Option.map Slo.report_json t.slo

let trace t =
  Mutex.lock t.mu;
  let spans = t.spans in
  Mutex.unlock t.mu;
  let tr = Trace.create ~workers:(queue_lane t.cfg + 1) in
  List.iter
    (fun s ->
      Trace.add tr
        {
          Trace.task = s.task;
          name = s.name;
          worker = s.lane;
          start = Clock.ns_to_s (s.start_ns - t.start_ns);
          finish = Clock.ns_to_s (s.finish_ns - t.start_ns);
        })
    spans;
  tr
