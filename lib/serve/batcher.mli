(** Dynamic request batching (continuous-batching style).

    Requests of one compatibility class ({!Request.class_key}: same kernel,
    same size) coalesce into a batch so one dispatch amortises per-call
    overhead — the {!Xsc_core.Batched} argument applied to live traffic.
    A class flushes when it reaches [max_batch] (size trigger) or when its
    oldest member has lingered [linger_ns] / its most urgent member's
    deadline is within [linger_ns] (time trigger), so a lone request is
    delayed by at most the linger, never indefinitely.

    The batcher is polymorphic in the request type: {!create} builds the
    live server's [Request.t] batcher; {!create_keyed} lets other owners
    (the fleet simulator batches simulated requests in DES time) run the
    exact same coalescing logic over their own record type.

    Not thread-safe: the owning {!Server} calls it under its state lock. *)

type config = {
  max_batch : int;  (** size-triggered flush threshold *)
  linger_ns : int;  (** max time a request waits for batch company *)
}

val default : config
(** [max_batch = 8], [linger_ns = 2ms]. *)

type 'a batch = {
  seq : int;  (** formation order — the EDF tie-break, so equal-deadline
                  batches dispatch FIFO *)
  class_key : string;
  requests : 'a array;  (** arrival order within the class *)
  deadline_ns : int;  (** min member deadline: the EDF key *)
  opened_ns : int;
}

type 'a t

val create_keyed :
  classify:('a -> string) -> deadline_of:('a -> int) -> config -> 'a t
(** General form: [classify] is the batching-compatibility key, and
    [deadline_of] the absolute deadline (ns) feeding the batch's EDF key.
    Raises [Invalid_argument] if [max_batch <= 0] or [linger_ns < 0]. *)

val create : config -> Request.t t
(** {!create_keyed} specialised to live requests ({!Request.class_key} /
    [deadline_ns]). *)

val add : 'a t -> now_ns:int -> 'a -> 'a batch option
(** Stage a request; returns the flushed batch when this add fills the
    class to [max_batch]. *)

val flush_due : 'a t -> now_ns:int -> 'a batch list
(** Time-triggered flushes (linger expired or a member deadline within the
    linger), oldest class first (class-key tie-break, so flush order is
    deterministic — never hash-table iteration order). Call periodically. *)

val flush_all : 'a t -> 'a batch list
(** Drain everything (shutdown path), same deterministic order. *)

val pending : 'a t -> int
(** Requests staged and not yet flushed. *)

val next_due_ns : 'a t -> int option
(** Earliest future time-trigger among open classes ([None] when empty) —
    lets an idle dispatcher size its sleep instead of guessing. *)
