(** Dynamic request batching (continuous-batching style).

    Requests of one compatibility class ({!Request.class_key}: same kernel,
    same size) coalesce into a batch so one dispatch amortises per-call
    overhead — the {!Xsc_core.Batched} argument applied to live traffic.
    A class flushes when it reaches [max_batch] (size trigger) or when its
    oldest member has lingered [linger_ns] / its most urgent member's
    deadline is within [linger_ns] (time trigger), so a lone request is
    delayed by at most the linger, never indefinitely.

    Not thread-safe: the owning {!Server} calls it under its state lock. *)

type config = {
  max_batch : int;  (** size-triggered flush threshold *)
  linger_ns : int;  (** max time a request waits for batch company *)
}

val default : config
(** [max_batch = 8], [linger_ns = 2ms]. *)

type batch = {
  seq : int;  (** formation order — the EDF tie-break, so equal-deadline
                  batches dispatch FIFO *)
  class_key : string;
  requests : Request.t array;  (** arrival order within the class *)
  deadline_ns : int;  (** min member deadline: the EDF key *)
  opened_ns : int;
}

type t

val create : config -> t
(** Raises [Invalid_argument] if [max_batch <= 0] or [linger_ns < 0]. *)

val add : t -> now_ns:int -> Request.t -> batch option
(** Stage a request; returns the flushed batch when this add fills the
    class to [max_batch]. *)

val flush_due : t -> now_ns:int -> batch list
(** Time-triggered flushes (linger expired or a member deadline within the
    linger), oldest class first. Call periodically. *)

val flush_all : t -> batch list
(** Drain everything (shutdown path), oldest class first. *)

val pending : t -> int
(** Requests staged and not yet flushed. *)

val next_due_ns : t -> int option
(** Earliest future time-trigger among open classes ([None] when empty) —
    lets an idle dispatcher size its sleep instead of guessing. *)
