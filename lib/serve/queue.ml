(* Bounded MPMC ring under one mutex. The lock is held for a handful of
   instructions per operation — array slot write and index bump — so even
   on the ingestion fast path contention is on the order of an uncontended
   futex, far below the cost of the smallest solve. The hard invariant is
   the bound: [length] can never exceed [capacity] under any interleaving
   of producers, because admission is decided inside the same critical
   section as the slot write. *)

type 'a t = {
  buf : 'a option array;
  cap : int;
  mutable head : int;  (* next pop position *)
  mutable len : int;
  mutable closed : bool;
  mu : Mutex.t;
}

type push_result =
  | Accepted
  | Full
  | Closed

let create ~capacity =
  if capacity <= 0 then invalid_arg "Serve.Queue.create: capacity must be positive";
  {
    buf = Array.make capacity None;
    cap = capacity;
    head = 0;
    len = 0;
    closed = false;
    mu = Mutex.create ();
  }

let capacity t = t.cap

let try_push t x =
  Mutex.lock t.mu;
  let r =
    if t.closed then Closed
    else if t.len >= t.cap then Full
    else begin
      t.buf.((t.head + t.len) mod t.cap) <- Some x;
      t.len <- t.len + 1;
      Accepted
    end
  in
  Mutex.unlock t.mu;
  r

let try_pop t =
  Mutex.lock t.mu;
  let r =
    if t.len = 0 then None
    else begin
      let x = t.buf.(t.head) in
      t.buf.(t.head) <- None;
      (* free the slot for the GC *)
      t.head <- (t.head + 1) mod t.cap;
      t.len <- t.len - 1;
      x
    end
  in
  Mutex.unlock t.mu;
  r

let length t =
  Mutex.lock t.mu;
  let n = t.len in
  Mutex.unlock t.mu;
  n

let close t =
  Mutex.lock t.mu;
  t.closed <- true;
  Mutex.unlock t.mu

let is_closed t =
  Mutex.lock t.mu;
  let c = t.closed in
  Mutex.unlock t.mu;
  c
