(** Request -> dataflow plan: how the serving layer turns one request
    into a DAG submission for the shared task pool.

    SPD solves become [pack -> tiled packed Cholesky] op DAGs, diagonally
    dominant LU solves [pack -> tiled packed unpivoted LU]; pivoting LU
    and GEMM run as single-closure-task DAGs (no op encoding). The pack
    task acquires its tile-major buffer from {!Scratch} on the executing
    worker's domain and [finish]/[cleanup] release it, so buffers recycle
    inside the pool across same-class requests.

    Sparse iterative solves ([Cg_solve]/[Mg_solve]) become sequential
    CHAINS of chunk tasks over a resumable stepper (task 0 initialises,
    each later task advances a fixed chunk of iterations; all tasks write
    one datum so the chain serialises in id order). The pool preempts only
    between chunks, bounding the head-of-line blocking a bandwidth-bound
    solve can inflict on dense traffic.

    The packed kernels are bitwise schedule-independent, and sparse chains
    are totally ordered, so executing a plan's DAG under any
    DAG-consistent interleaving (the shared pool under load, steals,
    preemption) then calling [finish] yields results bitwise identical to
    {!direct} on an equal payload. *)

exception Non_convergence of string
(** Raised by a sparse plan's [finish] when the solve exhausted its
    iteration budget without reaching tolerance (checked against the TRUE
    residual [b - A x], never the recurrence). Deterministic for a given
    payload, so the server fails the request typed without retrying —
    non-convergence feeds the same retry→typed-reject lattice as a
    singular dense matrix, never a silently wrong answer. *)

type t = {
  dag : Xsc_runtime.Dag.t;
  interp : (Xsc_runtime.Task.op -> unit) option;
      (** binds op tasks to the plan's packed buffer; [None] for closure
          plans. Already harness-wrapped when the plan was built with one. *)
  finish : unit -> Request.solution;
      (** call exactly once after the DAG drained successfully; solves
          against the factor and releases the plan's scratch *)
  cleanup : unit -> unit;
      (** call instead of [finish] when the DAG failed or was abandoned;
          releases whatever scratch the partial run acquired. Idempotent. *)
  tiled : bool;  (** true when routed to a tiled op DAG *)
}

val plan :
  ?harness:Xsc_resilience.Harness.t -> ?nb:int -> key:int -> Request.payload -> t
(** Build one attempt's plan. [nb] defaults to the host's tuned tile size
    ({!Xsc_tile.Packed.tuned_nb}[ ~fallback:64]). With [harness], fault
    injection keyed by [key] (the request id) is baked in: op plans raise
    at the first op of the attempt when targeted
    ({!Xsc_resilience.Harness.wrap_interp_key}), closure plans through
    {!Xsc_resilience.Harness.wrap_thunk} — same hash, same fired-set.
    Build a fresh plan per attempt; a replan after a transient fault runs
    clean. *)

val direct : ?nb:int -> Request.payload -> Request.solution
(** The per-request oracle: build the same plan (no faults) and execute
    it sequentially on the calling domain. Raises whatever the kernels
    raise (e.g. singular-matrix errors). *)

val strictly_diag_dominant : Xsc_linalg.Mat.t -> bool
(** The routing predicate for LU payloads (exposed for tests). *)
