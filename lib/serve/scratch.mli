(** Domain-local scratch pools: packed-matrix Bigarrays and float-array
    vectors recycled across same-class requests.

    Freelists live in [Domain.DLS] — acquire/release are lock-free and
    per-domain. A buffer acquired on one domain may be released on
    another; it then joins the releasing domain's freelist (ownership
    follows release). Freelists are bounded per size class.

    Buffers are returned {e dirty}: callers must overwrite every element
    they read (the packing routines do — a pack writes the whole
    buffer). *)

val acquire_packed : n:int -> nb:int -> Xsc_tile.Packed.D.t
(** Pooled or fresh packed matrix of exactly ([n], [nb]); contents
    undefined. *)

val release_packed : Xsc_tile.Packed.D.t -> unit
(** Return a buffer to this domain's pool (dropped when the class list is
    full or pooling is disabled). The caller must not touch it again. *)

val acquire_vec : int -> float array
(** Pooled or fresh [float array] of exactly the given length; contents
    undefined. *)

val release_vec : float array -> unit

val set_enabled : bool -> unit
(** [false] turns both pools into plain allocators (acquire always
    allocates, release drops) — the A/B switch for allocation benches.
    Default [true]. *)

val is_enabled : unit -> bool

val hits : unit -> int
(** Pool hits so far (also the [serve.scratch.hits] counter). *)

val misses : unit -> int
(** Pool misses = fresh allocations ([serve.scratch.misses]). *)
