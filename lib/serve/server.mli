(** The concurrent solver service.

    Pipeline: admission control -> bounded ingress {!Queue} -> dynamic
    {!Batcher} -> earliest-deadline-first {!Scheduler} -> persistent
    worker-domain pool. Requests beyond the admission window are rejected
    with a typed error at submit (backpressure — total in-system memory is
    bounded by [capacity] end to end, counting queued, staged and executing
    requests); admitted requests always resolve to a typed
    {!Request.completion}.

    The window is measured differently per dispatch mode (see
    {!occupancy}): [Slot] counts requests in-system; [Shared] counts
    actual in-flight work — live pool jobs plus requests still travelling
    towards the pool — so a retry asleep in backoff frees its slot and
    in-system memory is bounded by [capacity] plus the transient backoff
    population.

    {2 Fault isolation}

    Batch members execute as independent result slots
    ({!Xsc_core.Batched.run_batch_results}): one singular matrix or one
    injected fault fails exactly that request — never its batch, never the
    server. Transient injected faults ({!Xsc_resilience.Harness.Injected}
    under a [transient] policy) are retried with exponential backoff up to
    [max_retries]; deterministic kernel failures fail fast.

    {2 Observability}

    Counters [serve.admitted\]/[rejected]/[completed]/[failed]/[retried]/
    [batches] and log2 histograms [serve.queue_wait_s]/[service_s]/
    [total_s]/[batch_size]/[alloc_minor_words_per_req] feed the
    {!Xsc_obs.Metrics} registry; {!trace} exports per-request queue-wait
    and service spans as a {!Xsc_runtime.Trace.t} (one lane per worker
    plus a queue lane), so a served run drops into the existing
    Chrome-trace pipeline.

    With [spans] on (the default), the server additionally keeps a causal
    {!Xsc_obs.Span} tree per request: a root span minted at admission,
    wait and per-attempt child spans, plus whatever executor tasks,
    injected faults and ABFT replays run under the attempt's ambient
    context. {!span_chrome_json} renders one contiguous lane per request
    (pid 1) with flow-event parent arrows — retries included. [slos]
    attaches per-class burn-rate monitors ({!Slo}); [flight_path] arms
    the crash {!Xsc_resilience.Flight} recorder, dumped on the first
    permanent request failure, on entering SLO breach, and at [stop] when
    any request failed. *)

(** How claimed batches execute.

    [Slot]: a worker domain claims a batch and runs its members to
    completion ({!Xsc_core.Batched.run_batch_results}) — request-granular
    occupancy: a large request holds its lane for its whole service time.

    [Shared n]: every request's tiled DAG is submitted into one shared
    deadline-aware task pool ({!Xsc_runtime.Pool}) on [n] persistent
    worker domains via {!Route}. No per-request executor or barrier; the
    request's EDF deadline reaches {e task} granularity (composite
    {!Xsc_runtime.Prio} key), so a small request entering while a large
    factorization streams preempts at the next task boundary — its wait
    is bounded by ~one task's service time, not the large DAG's tail.
    Fault isolation, transient-fault retry and span parentage carry over:
    a failing task aborts only its own job, retries resubmit after
    backoff (the pump holds them; no pool lane ever sleeps), and task
    spans parent onto the submitting request even when many requests
    interleave on one lane. *)
type dispatch =
  | Slot
  | Shared of int

type config = {
  workers : int;  (** persistent worker domains ([Slot] mode) *)
  capacity : int;  (** admission window: max requests in-system at once *)
  max_batch : int;  (** size-triggered batch flush *)
  linger_s : float;  (** time-triggered batch flush *)
  default_deadline_s : float;  (** deadline when [submit] passes none *)
  max_retries : int;  (** retry budget for transient injected faults *)
  retry_backoff_s : float;  (** base backoff, doubled per retry *)
  spans : bool;  (** keep causal span records per request *)
  slos : Slo.objective list;  (** per-class burn-rate monitors; [[]] = off *)
  flight_path : string option;  (** arm the flight recorder: dump here *)
  dispatch : dispatch;  (** batch execution mode (default [Shared 2]) *)
  class_caps : (string * int) list;
      (** class-aware dispatch ([Shared] mode only): at most [cap]
          attempts of kind [kind] (a {!Request.kind_name}, e.g. ["cg"])
          live in the pool at once. A capped class's batches wait in the
          EDF heap — keeping their place in line — while the class is at
          its cap, so a stream of long bandwidth-bound solves cannot
          occupy every pool lane and destroy compute-bound tail latency.
          Checked at batch granularity (a batch may overshoot its cap by
          its own size minus one); ignored under [Slot]. [[]] = uncapped. *)
}

val default_config : config
(** Shared-pool dispatch on 2 domains (the default since the Shared path
    soaked through PRs 8-9 CI; [workers] only applies when [Slot] is
    selected), capacity 64, batches of 8 with a 2 ms linger, 250 ms
    deadline, 3 retries from a 0.5 ms base backoff; spans on, no SLOs, no
    class caps, flight recorder unarmed. *)

type t
type ticket

type counters = {
  admitted : int;
  rejected : int;
  completed : int;  (** resolved [Ok] *)
  failed : int;  (** resolved [Error (Failed _)] *)
  retried : int;  (** re-executions after transient injected faults *)
  batches : int;  (** batches dispatched *)
  cap_deferred : int;
      (** class-aware dispatch deferral events: claims where a capped
          class's most-urgent batch was held back (one per pump claim
          attempt while blocked, so a diagnostic rate, not a batch count) *)
}

val start : ?harness:Xsc_resilience.Harness.t -> config -> t
(** Spawn the worker pool. [harness] injects per-request faults keyed by
    request id ({!Xsc_resilience.Harness.wrap_thunk}) — the seeded
    fault-storm hook. Raises [Invalid_argument] on nonsensical config. *)

val submit :
  t -> ?deadline_s:float -> Request.payload -> (ticket, Request.error) result
(** Admit a request (any domain). [Error (Rejected Queue_full)] when the
    admission window is full — the backpressure signal; the request was
    not queued and will never complete. Raises [Invalid_argument] on
    malformed payloads or non-positive deadlines (caller bugs, not load). *)

val await : t -> ticket -> Request.completion
(** Block until the request resolves. Every admitted request resolves,
    fault storms included. *)

val poll : t -> ticket -> Request.completion option
(** Non-blocking {!await}. *)

val stop : t -> unit
(** Graceful shutdown: stop admitting, flush partial batches, drain
    everything in-system, join the workers. Idempotent. *)

val counters : t -> counters
(** Per-server totals. Quiescent invariant (after [stop], or whenever no
    request is in flight): [admitted = completed + failed], with
    [rejected] counted separately. *)

val in_flight : t -> int
(** Momentary in-system count (admitted, not yet completed). *)

val class_live : t -> string -> int
(** Momentary live-in-pool attempt count of a capped kind (0 for kinds
    without a cap entry). Exposed for tests and the mixed-workload bench. *)

val occupancy : t -> int
(** Momentary admission-window occupancy, the quantity {!submit} compares
    against [capacity]. [Slot]: the in-system count. [Shared]: actual
    in-flight work — DAGs live in the shared pool
    ({!Xsc_runtime.Pool.live_jobs}) plus requests still travelling towards
    it; a request waiting out a transient retry backoff holds no pool
    lane and counts towards neither term, so admission keeps flowing
    while retries sleep. *)

val trace : t -> Xsc_runtime.Trace.t
(** Spans of every completed request: service spans on worker lanes
    [0..workers-1], queue-wait spans on lane [workers]. Feed to
    {!Xsc_runtime.Trace.to_chrome_json}. *)

val origin_ns : t -> int
(** Monotonic timestamp taken at [start]; span export rebases on it. *)

val span_records : t -> Xsc_obs.Span.record list
(** Causal span records of every completed request, in record order
    ([[]] when [spans] is off). *)

val span_dropped : t -> int
(** Span records shed by the bounded collector (0 = complete). *)

val span_chrome_events : t -> string list
(** {!Xsc_obs.Span.chrome_events} over {!span_records} — merge into a
    worker trace via {!Xsc_runtime.Trace.to_chrome_json_with}. *)

val span_chrome_json : t -> string
(** Standalone Chrome trace of the request lanes: one lane (tid) per
    request id on pid 1, retries and nested segments included, parent
    arrows as flow events. *)

val slo_reports : t -> Slo.report list
(** Burn-rate state per monitored class ([[]] when [slos] is empty). *)

val slo_breached : t -> bool

val slo_report_json : t -> string option
(** The [serve.slo] record ({!Slo.report_json}); [None] when [slos] is
    empty. *)
