open Xsc_linalg

type payload =
  | Spd_solve of Mat.t * Vec.t
  | Lu_solve of Mat.t * Vec.t
  | Gemm of Mat.t * Mat.t
  | Cg_solve of { a : Xsc_sparse.Csr.t; b : Vec.t; tol : float; max_iter : int }
  | Mg_solve of { grid : int; levels : int; b : Vec.t; tol : float; max_cycles : int }

type solution =
  | Vector of Vec.t
  | Matrix of Mat.t

type reject_reason =
  | Queue_full
  | Shutting_down

type error =
  | Rejected of reject_reason
  | Failed of { attempts : int; error : string }

type t = {
  id : int;
  payload : payload;
  submit_ns : int;
  deadline_ns : int;
  span : Xsc_obs.Span.ctx;
}

let validate payload =
  let square name (a : Mat.t) =
    let rows, cols = Mat.dims a in
    if rows <> cols then
      invalid_arg (Printf.sprintf "Request.%s: matrix must be square" name);
    rows
  in
  match payload with
  | Spd_solve (a, b) | Lu_solve (a, b) ->
    let n = square "solve" a in
    if Array.length b <> n then invalid_arg "Request.solve: rhs length mismatch"
  | Gemm (a, b) ->
    let _, k = Mat.dims a and rows_b, _ = Mat.dims b in
    if k <> rows_b then invalid_arg "Request.gemm: inner dimensions mismatch"
  | Cg_solve { a; b; tol; max_iter } ->
    if a.Xsc_sparse.Csr.rows <> a.Xsc_sparse.Csr.cols then
      invalid_arg "Request.cg: matrix must be square";
    if Array.length b <> a.Xsc_sparse.Csr.rows then
      invalid_arg "Request.cg: rhs length mismatch";
    if not (tol > 0.0) then invalid_arg "Request.cg: tol must be positive";
    if max_iter < 1 then invalid_arg "Request.cg: max_iter must be >= 1"
  | Mg_solve { grid; levels; b; tol; max_cycles } ->
    if grid < 2 then invalid_arg "Request.mg: grid must be >= 2";
    if grid land 1 <> 0 then invalid_arg "Request.mg: grid must be even (coarsening)";
    if levels < 1 then invalid_arg "Request.mg: levels must be >= 1";
    if Array.length b <> grid * grid * grid then
      invalid_arg "Request.mg: rhs length must be grid^3";
    if not (tol > 0.0) then invalid_arg "Request.mg: tol must be positive";
    if max_cycles < 1 then invalid_arg "Request.mg: max_cycles must be >= 1"

let kind_name = function
  | Spd_solve _ -> "spd"
  | Lu_solve _ -> "lu"
  | Gemm _ -> "gemm"
  | Cg_solve _ -> "cg"
  | Mg_solve _ -> "mg"

let size payload =
  match payload with
  | Spd_solve (a, _) | Lu_solve (a, _) | Gemm (a, _) -> fst (Mat.dims a)
  | Cg_solve { a; _ } -> a.Xsc_sparse.Csr.rows
  | Mg_solve { grid; _ } -> grid * grid * grid

(* Batching-compatibility class: same kernel and same problem size share
   per-call overhead; mixing sizes in one batch would let one big member
   stall the small ones. *)
let class_key payload = Printf.sprintf "%s:%d" (kind_name payload) (size payload)

let reject_reason_name = function
  | Queue_full -> "queue full"
  | Shutting_down -> "shutting down"

let error_message = function
  | Rejected r -> Printf.sprintf "rejected (%s)" (reject_reason_name r)
  | Failed { attempts; error } ->
    Printf.sprintf "failed after %d attempt%s: %s" attempts
      (if attempts = 1 then "" else "s")
      error

type completion = {
  request : t;
  outcome : (solution, error) result;
  retries : int;
  queue_wait_s : float;
  service_s : float;
  total_s : float;
  met_deadline : bool;
}
