open Xsc_linalg

type payload =
  | Spd_solve of Mat.t * Vec.t
  | Lu_solve of Mat.t * Vec.t
  | Gemm of Mat.t * Mat.t

type solution =
  | Vector of Vec.t
  | Matrix of Mat.t

type reject_reason =
  | Queue_full
  | Shutting_down

type error =
  | Rejected of reject_reason
  | Failed of { attempts : int; error : string }

type t = {
  id : int;
  payload : payload;
  submit_ns : int;
  deadline_ns : int;
  span : Xsc_obs.Span.ctx;
}

let validate payload =
  let square name (a : Mat.t) =
    let rows, cols = Mat.dims a in
    if rows <> cols then
      invalid_arg (Printf.sprintf "Request.%s: matrix must be square" name);
    rows
  in
  match payload with
  | Spd_solve (a, b) | Lu_solve (a, b) ->
    let n = square "solve" a in
    if Array.length b <> n then invalid_arg "Request.solve: rhs length mismatch"
  | Gemm (a, b) ->
    let _, k = Mat.dims a and rows_b, _ = Mat.dims b in
    if k <> rows_b then invalid_arg "Request.gemm: inner dimensions mismatch"

let kind_name = function
  | Spd_solve _ -> "spd"
  | Lu_solve _ -> "lu"
  | Gemm _ -> "gemm"

let size payload =
  match payload with
  | Spd_solve (a, _) | Lu_solve (a, _) | Gemm (a, _) -> fst (Mat.dims a)

(* Batching-compatibility class: same kernel and same problem size share
   per-call overhead; mixing sizes in one batch would let one big member
   stall the small ones. *)
let class_key payload = Printf.sprintf "%s:%d" (kind_name payload) (size payload)

let reject_reason_name = function
  | Queue_full -> "queue full"
  | Shutting_down -> "shutting down"

let error_message = function
  | Rejected r -> Printf.sprintf "rejected (%s)" (reject_reason_name r)
  | Failed { attempts; error } ->
    Printf.sprintf "failed after %d attempt%s: %s" attempts
      (if attempts = 1 then "" else "s")
      error

type completion = {
  request : t;
  outcome : (solution, error) result;
  retries : int;
  queue_wait_s : float;
  service_s : float;
  total_s : float;
  met_deadline : bool;
}
