(* Earliest-deadline-first ready queue: a binary min-heap of flushed
   batches keyed by (deadline_ns, seq). The seq tie-break makes dispatch
   FIFO within a deadline class — two batches due at the same instant run
   in formation order, so no request is overtaken by an equal-urgency
   latecomer. Polymorphic in the batched request type (the heap only
   reads the batch's EDF key), so the live server and the fleet
   simulator share one EDF implementation. Not thread-safe: owned by
   Server, used under its lock. *)

type 'a t = { mutable heap : 'a Batcher.batch array; mutable size : int }

let create () = { heap = [||]; size = 0 }

let length t = t.size

let before (a : 'a Batcher.batch) (b : 'a Batcher.batch) =
  a.Batcher.deadline_ns < b.Batcher.deadline_ns
  || (a.Batcher.deadline_ns = b.Batcher.deadline_ns && a.Batcher.seq < b.Batcher.seq)

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && before t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.size && before t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t b =
  if t.size = Array.length t.heap then begin
    let cap = max 8 (2 * t.size) in
    let heap = Array.make cap b in
    Array.blit t.heap 0 heap 0 t.size;
    t.heap <- heap
  end;
  t.heap.(t.size) <- b;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.heap.(0) <- t.heap.(t.size);
      sift_down t 0
    end;
    Some top
  end

(* EDF among eligible batches: pop minima, stashing ineligible ones, then
   push the stash back. The stash is at most the number of distinct
   cap-blocked classes deep in practice, so the extra heap traffic is
   O(blocked classes * log size) per claim. *)
let pop_when eligible t =
  let rec go stash =
    match pop t with
    | None -> (None, stash)
    | Some b -> if eligible b then (Some b, stash) else go (b :: stash)
  in
  let found, stash = go [] in
  List.iter (push t) stash;
  found

let peek_deadline_ns t = if t.size = 0 then None else Some t.heap.(0).Batcher.deadline_ns
