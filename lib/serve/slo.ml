(* Per-class SLO monitors: a latency target plus an error budget per
   request kind. A request "violates" when it failed or finished over
   target; the burn rate is the violating fraction divided by the budget
   — 1.0 means the class is consuming its budget exactly as fast as
   allowed, above 1.0 the class is in breach. Worst offenders are kept
   by id so a breach in a bench record points at concrete requests. *)

module Metrics = Xsc_obs.Metrics

type objective = {
  kind : string; (* "spd" | "lu" | "gemm", or "*" for any *)
  latency_s : float;
  error_budget : float; (* allowed violating fraction, in (0,1] *)
}

type class_state = {
  objective : objective;
  mutable total : int;
  mutable violations : int;
  mutable breaches : int; (* times the class entered breach *)
  mutable in_breach : bool;
  mutable worst : (int * float) list; (* (request id, latency), worst first *)
}

type t = {
  objectives : objective list;
  classes : (string, class_state) Hashtbl.t;
  mu : Mutex.t;
}

let worst_k = 3

let m_violations = Metrics.counter "serve.slo.violations"
let m_breaches = Metrics.counter "serve.slo.breaches"

let create objectives =
  List.iter
    (fun o ->
      if o.latency_s <= 0.0 then invalid_arg "Slo.create: latency_s must be positive";
      if o.error_budget <= 0.0 || o.error_budget > 1.0 then
        invalid_arg "Slo.create: error_budget must be in (0,1]")
    objectives;
  { objectives; classes = Hashtbl.create 8; mu = Mutex.create () }

(* first match wins; "*" is the catch-all *)
let objective_for t kind =
  List.find_opt (fun o -> o.kind = kind || o.kind = "*") t.objectives

let burn_rate_of st =
  if st.total = 0 then 0.0
  else float_of_int st.violations /. float_of_int st.total /. st.objective.error_budget

let observe t ~kind ~id ~latency_s ~failed =
  match objective_for t kind with
  | None -> false
  | Some o ->
    Mutex.lock t.mu;
    let st =
      match Hashtbl.find_opt t.classes kind with
      | Some st -> st
      | None ->
        let st =
          { objective = o; total = 0; violations = 0; breaches = 0; in_breach = false; worst = [] }
        in
        Hashtbl.add t.classes kind st;
        st
    in
    st.total <- st.total + 1;
    if failed || latency_s > o.latency_s then begin
      st.violations <- st.violations + 1;
      Metrics.incr m_violations;
      st.worst <-
        (id, latency_s) :: st.worst
        |> List.sort (fun (_, a) (_, b) -> compare b a)
        |> List.filteri (fun i _ -> i < worst_k)
    end;
    let burning = burn_rate_of st > 1.0 in
    let newly = burning && not st.in_breach in
    if newly then begin
      st.breaches <- st.breaches + 1;
      Metrics.incr m_breaches
    end;
    st.in_breach <- burning;
    Mutex.unlock t.mu;
    newly

type report = {
  r_kind : string;
  r_latency_s : float;
  r_error_budget : float;
  total : int;
  violations : int;
  burn_rate : float;
  breaches : int;
  worst : (int * float) list;
}

let reports t =
  Mutex.lock t.mu;
  let rs =
    Hashtbl.fold
      (fun kind st acc ->
        {
          r_kind = kind;
          r_latency_s = st.objective.latency_s;
          r_error_budget = st.objective.error_budget;
          total = st.total;
          violations = st.violations;
          burn_rate = burn_rate_of st;
          breaches = st.breaches;
          worst = st.worst;
        }
        :: acc)
      t.classes []
  in
  Mutex.unlock t.mu;
  List.sort (fun a b -> compare a.r_kind b.r_kind) rs

let breached t = List.exists (fun r -> r.breaches > 0) (reports t)

let report_json t =
  let rs = reports t in
  let num f = if Float.is_finite f then Printf.sprintf "%.9g" f else "null" in
  let class_json r =
    let worst =
      r.worst
      |> List.map (fun (id, lat) -> Printf.sprintf {|{"id": %d, "latency_s": %s}|} id (num lat))
      |> String.concat ", "
    in
    Printf.sprintf
      {|{"kind": "%s", "latency_s": %s, "error_budget": %s, "total": %d, "violations": %d, "budget_consumed": %s, "breaches": %d, "worst": [%s]}|}
      (Xsc_util.Json.escape r.r_kind)
      (num r.r_latency_s) (num r.r_error_budget) r.total r.violations (num r.burn_rate)
      r.breaches worst
  in
  Printf.sprintf {|{"breached": %b, "classes": [%s]}|} (breached t)
    (String.concat ", " (List.map class_json rs))
