open Xsc_linalg

type report = {
  x : Vec.t;
  iterations : int;
  converged : bool;
  backward_error : float;
  factor_flops : float;
  refine_flops : float;
  history : float list;
}

let backward_error a x b r =
  let na = Mat.norm_inf a and nx = Vec.norm_inf x and nb = Vec.norm_inf b in
  let denom = (na *. nx) +. nb in
  if denom = 0.0 then 0.0 else Vec.norm_inf r /. denom

(* Shared refinement loop: [solve_correction r] returns the low-precision
   solve of [A d = r]; residuals are computed in double. *)
let refine ~max_iter ~tol ~factor_flops ~per_iter_flops a b x0 solve_correction =
  let n = Array.length b in
  let x = Array.copy x0 in
  let r = Array.copy b in
  Blas.gemv ~alpha:(-1.0) a x ~beta:1.0 r;
  let be = ref (backward_error a x b r) in
  let history = ref [ !be ] in
  let iter = ref 0 in
  let converged = ref (!be <= tol) in
  while (not !converged) && !iter < max_iter do
    incr iter;
    let d = solve_correction r in
    Vec.axpy 1.0 d x;
    Array.blit b 0 r 0 n;
    Blas.gemv ~alpha:(-1.0) a x ~beta:1.0 r;
    be := backward_error a x b r;
    history := !be :: !history;
    converged := !be <= tol
  done;
  {
    x;
    iterations = !iter;
    converged = !converged;
    backward_error = !be;
    factor_flops;
    refine_flops = float_of_int !iter *. per_iter_flops;
    history = List.rev !history;
  }

let default_tol = 4.0 *. epsilon_float

let lu_ir ?(max_iter = 50) ?(tol = default_tol) ~precision a b =
  let module P = (val precision : Scalar.S) in
  let module G = Gblas.Make (P) in
  let n = a.Mat.rows in
  if n <> a.Mat.cols || Array.length b <> n then invalid_arg "Ir.lu_ir: dimension mismatch";
  let f = G.quantize_mat a in
  let ipiv = G.getrf f in
  (* Residuals shrink below the narrow format's representable range as the
     iteration converges, so scale to O(1) before converting and scale the
     correction back (the HPL-AI recipe). *)
  let solve r =
    let scale = Vec.norm_inf r in
    if scale = 0.0 then Array.make (Array.length r) 0.0
    else begin
      let d = G.quantize_vec (Array.map (fun x -> x /. scale) r) in
      G.getrs f ipiv d;
      Array.map (fun x -> x *. scale) d
    end
  in
  let x0 = solve b in
  let per_iter_flops = (2.0 *. float_of_int (n * n)) +. (2.0 *. float_of_int (n * n)) in
  refine ~max_iter ~tol ~factor_flops:(Lapack.getrf_flops n) ~per_iter_flops a b x0 solve

let chol_ir ?(max_iter = 50) ?(tol = default_tol) ~precision a b =
  let module P = (val precision : Scalar.S) in
  let module G = Gblas.Make (P) in
  let n = a.Mat.rows in
  if n <> a.Mat.cols || Array.length b <> n then
    invalid_arg "Ir.chol_ir: dimension mismatch";
  let f = G.quantize_mat a in
  G.potrf f;
  let solve r =
    let scale = Vec.norm_inf r in
    if scale = 0.0 then Array.make (Array.length r) 0.0
    else begin
      let d = G.quantize_vec (Array.map (fun x -> x /. scale) r) in
      G.potrs f d;
      Array.map (fun x -> x *. scale) d
    end
  in
  let x0 = solve b in
  let per_iter_flops = (2.0 *. float_of_int (n * n)) +. (2.0 *. float_of_int (n * n)) in
  refine ~max_iter ~tol ~factor_flops:(Lapack.potrf_flops n) ~per_iter_flops a b x0 solve

(* The real float32 pipeline: pad to a tile multiple, pack into float32
   tile-major storage (quantizing once), run the genuinely single-precision
   packed tiled Cholesky (Pblas C kernels — the one that measures ~2x the
   double rate from halved memory traffic and doubled SIMD lanes), then
   refine in double against the original matrix. Contrast with [chol_ir
   ~precision:fp32], which simulates reduced precision by rounding every
   double operation — correct for accuracy studies, useless for speed. *)
let chol_ir32 ?(max_iter = 50) ?(tol = default_tol) ?nb a b =
  let module Packed = Xsc_tile.Packed in
  (* default tile size: this host's tuned nb when a tuning cache is
     loaded, the historical 64 otherwise *)
  let nb = match nb with Some nb -> nb | None -> Packed.tuned_nb ~fallback:64 in
  let n = a.Mat.rows in
  if n <> a.Mat.cols || Array.length b <> n then
    invalid_arg "Ir.chol_ir32: dimension mismatch";
  let padded, _ = Xsc_tile.Tile.pad_to ~nb a in
  let np = padded.Mat.rows in
  let f = Packed.S.of_mat ~nb padded in
  Packed.S.potrf f;
  (* Scale the residual to O(1) before the f32-factor solve and scale the
     correction back (HPL-AI recipe): converged residuals fall below
     float32's representable range otherwise. The solve itself reads the
     f32 factor with double accumulation. *)
  let solve r =
    let scale = Vec.norm_inf r in
    if scale = 0.0 then Array.make (Array.length r) 0.0
    else begin
      let rp = Array.make np 0.0 in
      Array.iteri (fun i x -> rp.(i) <- x /. scale) r;
      let d = Packed.S.potrs f rp in
      Array.init n (fun i -> d.(i) *. scale)
    end
  in
  let x0 = solve b in
  let per_iter_flops = (2.0 *. float_of_int (n * n)) +. (2.0 *. float_of_int (n * n)) in
  refine ~max_iter ~tol ~factor_flops:(Lapack.potrf_flops n) ~per_iter_flops a b x0 solve

(* Dense GMRES on an operator closure (MGS Arnoldi + Givens), used to solve
   the preconditioned correction equation of gmres_ir. Returns the iterate
   after at most [restart] steps or when the implied residual passes [tol]
   (relative to ||b||). *)
let gmres_operator ~apply ~restart ~tol b =
  let n = Array.length b in
  let x = Array.make n 0.0 in
  let m = restart in
  let basis = Array.init (m + 1) (fun _ -> Array.make n 0.0) in
  let h = Array.make_matrix (m + 1) m 0.0 in
  let cs = Array.make m 0.0 and sn = Array.make m 0.0 in
  let g = Array.make (m + 1) 0.0 in
  let beta = Vec.nrm2 b in
  if beta = 0.0 then x
  else begin
    let target = tol *. beta in
    Array.blit b 0 basis.(0) 0 n;
    Vec.scal (1.0 /. beta) basis.(0);
    g.(0) <- beta;
    let j = ref 0 in
    let done_ = ref false in
    while not !done_ do
      let jj = !j in
      let w = apply basis.(jj) in
      for i = 0 to jj do
        let hij = Vec.dot w basis.(i) in
        h.(i).(jj) <- hij;
        Vec.axpy (-.hij) basis.(i) w
      done;
      let hnext = Vec.nrm2 w in
      h.(jj + 1).(jj) <- hnext;
      if hnext > 0.0 then begin
        Array.blit w 0 basis.(jj + 1) 0 n;
        Vec.scal (1.0 /. hnext) basis.(jj + 1)
      end;
      for i = 0 to jj - 1 do
        let t = (cs.(i) *. h.(i).(jj)) +. (sn.(i) *. h.(i + 1).(jj)) in
        h.(i + 1).(jj) <- (-.sn.(i) *. h.(i).(jj)) +. (cs.(i) *. h.(i + 1).(jj));
        h.(i).(jj) <- t
      done;
      let denom = sqrt ((h.(jj).(jj) ** 2.0) +. (h.(jj + 1).(jj) ** 2.0)) in
      if denom = 0.0 then begin
        cs.(jj) <- 1.0;
        sn.(jj) <- 0.0
      end
      else begin
        cs.(jj) <- h.(jj).(jj) /. denom;
        sn.(jj) <- h.(jj + 1).(jj) /. denom
      end;
      h.(jj).(jj) <- (cs.(jj) *. h.(jj).(jj)) +. (sn.(jj) *. h.(jj + 1).(jj));
      h.(jj + 1).(jj) <- 0.0;
      g.(jj + 1) <- -.sn.(jj) *. g.(jj);
      g.(jj) <- cs.(jj) *. g.(jj);
      if abs_float g.(jj + 1) <= target || jj = m - 1 || hnext = 0.0 then done_ := true
      else incr j
    done;
    let steps = !j + 1 in
    let y = Array.make steps 0.0 in
    for i = steps - 1 downto 0 do
      let acc = ref g.(i) in
      for l = i + 1 to steps - 1 do
        acc := !acc -. (h.(i).(l) *. y.(l))
      done;
      y.(i) <- !acc /. h.(i).(i)
    done;
    for i = 0 to steps - 1 do
      Vec.axpy y.(i) basis.(i) x
    done;
    x
  end

let gmres_ir ?(max_iter = 50) ?(tol = default_tol) ?(restart = 10) ~precision a b =
  let module P = (val precision : Scalar.S) in
  let module G = Gblas.Make (P) in
  let n = a.Mat.rows in
  if n <> a.Mat.cols || Array.length b <> n then
    invalid_arg "Ir.gmres_ir: dimension mismatch";
  let f = G.quantize_mat a in
  let ipiv = G.getrf f in
  (* the preconditioner solve uses the low-precision factors but applies
     them in double — the Carson-Higham recipe *)
  let msolve r =
    let d = Array.copy r in
    Lapack.getrs f ipiv d;
    d
  in
  let apply z =
    (* M^-1 A z, all in double *)
    let az = Array.make n 0.0 in
    Blas.gemv ~alpha:1.0 a z ~beta:0.0 az;
    msolve az
  in
  let solve r = gmres_operator ~apply ~restart ~tol:1e-4 (msolve r) in
  let x0 = solve b in
  let per_iter_flops =
    float_of_int restart *. 2.0 *. float_of_int (n * n) (* restart gemv's dominate *)
  in
  refine ~max_iter ~tol ~factor_flops:(Lapack.getrf_flops n) ~per_iter_flops a b x0 solve

let plain_solve_flops n = Lapack.getrf_flops n +. (2.0 *. float_of_int (n * n))

let ir_model_time ~n ~low_rate ~high_rate ~iterations =
  let factor = Lapack.getrf_flops n /. low_rate in
  let solves = 2.0 *. float_of_int (n * n) /. low_rate in
  let sweeps =
    float_of_int iterations *. 4.0 *. float_of_int (n * n) /. high_rate
  in
  factor +. solves +. sweeps
