(** Mixed-precision iterative refinement.

    The extreme-scale "rule": factorizations dominate the flops and run ~2x
    faster (4x for fp16 with tensor cores) at reduced precision; a handful of
    cheap refinement sweeps in double recovers full accuracy whenever the
    matrix is not too ill-conditioned (Langou et al. 2006, Carson & Higham
    2017). The factorization here uses genuinely rounded low-precision
    arithmetic ({!Xsc_linalg.Gblas}); residuals and updates are double. *)

open Xsc_linalg

type report = {
  x : Vec.t;  (** refined solution *)
  iterations : int;  (** refinement sweeps performed *)
  converged : bool;
  backward_error : float;
      (** final normwise relative backward error
          [||b - Ax||_inf / (||A||_inf ||x||_inf + ||b||_inf)] *)
  factor_flops : float;  (** flops spent in the low-precision factorization *)
  refine_flops : float;  (** flops spent in refinement sweeps *)
  history : float list;  (** backward error after each sweep, oldest first *)
}

val lu_ir :
  ?max_iter:int -> ?tol:float -> precision:(module Scalar.S) -> Mat.t -> Vec.t -> report
(** Solve a general system: LU with partial pivoting at [precision],
    refinement in double. [tol] defaults to a small multiple of double unit
    roundoff; [max_iter] defaults to 50. Raises [Lapack.Singular] if the
    low-precision factorization breaks down. *)

val chol_ir :
  ?max_iter:int -> ?tol:float -> precision:(module Scalar.S) -> Mat.t -> Vec.t -> report
(** Same for SPD systems with Cholesky. *)

val chol_ir32 : ?max_iter:int -> ?tol:float -> ?nb:int -> Mat.t -> Vec.t -> report
(** SPD solve through the {e real} float32 path: the matrix is packed into
    float32 tile-major storage ({!Xsc_tile.Packed.S}, quantizing once) and
    factored by the genuinely single-precision packed tiled Cholesky — the
    C kernel path whose ~2x rate over double the bench measures — then
    refined in double to full accuracy. [nb] is the tile size (default:
    this host's tuned size via {!Xsc_tile.Packed.tuned_nb}, 64 untuned;
    the matrix is identity-padded to a multiple). Raises
    [Xsc_linalg.Pblas.Singular] if the float32 factorization breaks down. *)

val gmres_ir :
  ?max_iter:int -> ?tol:float -> ?restart:int -> precision:(module Scalar.S) -> Mat.t ->
  Vec.t -> report
(** GMRES-based iterative refinement (Carson & Higham): each correction
    equation is solved by a few GMRES steps on the low-precision-LU
    preconditioned operator [U⁻¹L⁻¹PA] (applied in double), instead of a
    single triangular solve. Converges for condition numbers far beyond
    plain {!lu_ir}'s [1/eps_low] limit — the trick that makes fp16
    factorization usable on realistic matrices. [restart] is the GMRES
    basis size per correction (default 10). *)

val plain_solve_flops : int -> float
(** Flops of a plain double LU solve of size [n] — the baseline of the
    speedup model in FIG-4. *)

val ir_model_time : n:int -> low_rate:float -> high_rate:float -> iterations:int -> float
(** Machine-model time of an IR solve: factorization at [low_rate] flop/s
    plus [iterations] refinement sweeps ([O(n^2)] each) at [high_rate].
    Used to report the modelled speedup next to the measured accuracy. *)
