(* Tests for Xsc_simmachine: DES engine, topologies, network model, node and
   machine models, failure process, presets. *)

module Des = Xsc_simmachine.Des
module Topology = Xsc_simmachine.Topology
module Network = Xsc_simmachine.Network
module Node = Xsc_simmachine.Node
module Machine = Xsc_simmachine.Machine
module Failure = Xsc_simmachine.Failure
module Presets = Xsc_simmachine.Presets
module Rng = Xsc_util.Rng

let qcheck tc = QCheck_alcotest.to_alcotest tc

(* ---- Des ---- *)

let test_des_ordering () =
  let sim = Des.create () in
  let log = ref [] in
  Des.schedule sim 3.0 (fun () -> log := 3 :: !log);
  Des.schedule sim 1.0 (fun () -> log := 1 :: !log);
  Des.schedule sim 2.0 (fun () -> log := 2 :: !log);
  let final = Des.run sim in
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !log);
  Alcotest.(check (float 0.0)) "clock at last event" 3.0 final

let test_des_fifo_ties () =
  let sim = Des.create () in
  let log = ref [] in
  for i = 0 to 9 do
    Des.schedule sim 1.0 (fun () -> log := i :: !log)
  done;
  ignore (Des.run sim);
  Alcotest.(check (list int)) "FIFO among equal times" (List.init 10 (fun i -> i))
    (List.rev !log)

let test_des_cascading () =
  let sim = Des.create () in
  let count = ref 0 in
  let rec chain n = if n > 0 then Des.schedule_after sim 1.0 (fun () -> incr count; chain (n - 1)) in
  chain 5;
  let final = Des.run sim in
  Alcotest.(check int) "all ran" 5 !count;
  Alcotest.(check (float 0.0)) "clock advanced" 5.0 final

let test_des_until () =
  let sim = Des.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    Des.schedule sim (float_of_int i) (fun () -> incr count)
  done;
  let final = Des.run ~until:5.5 sim in
  Alcotest.(check int) "only first 5" 5 !count;
  Alcotest.(check (float 0.0)) "clock clamped" 5.5 final;
  Alcotest.(check int) "rest pending" 5 (Des.pending sim)

let test_des_stop () =
  let sim = Des.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    Des.schedule sim (float_of_int i) (fun () ->
        incr count;
        if !count = 3 then Des.stop sim)
  done;
  ignore (Des.run sim);
  Alcotest.(check int) "stopped after 3" 3 !count

let test_des_past_raises () =
  let sim = Des.create () in
  Des.schedule sim 5.0 (fun () ->
      Alcotest.check_raises "past" (Invalid_argument "Des.schedule: time in the past")
        (fun () -> Des.schedule sim 1.0 ignore));
  ignore (Des.run sim)

(* ---- Topology ---- *)

let test_ring_hops () =
  let t = Topology.Ring 10 in
  Alcotest.(check int) "adjacent" 1 (Topology.hops t 0 1);
  Alcotest.(check int) "wraparound" 1 (Topology.hops t 0 9);
  Alcotest.(check int) "across" 5 (Topology.hops t 0 5);
  Alcotest.(check int) "self" 0 (Topology.hops t 4 4);
  Alcotest.(check int) "diameter" 5 (Topology.diameter t)

let test_mesh_hops () =
  let t = Topology.Mesh2d (4, 4) in
  Alcotest.(check int) "manhattan" 6 (Topology.hops t 0 15);
  Alcotest.(check int) "diameter" 6 (Topology.diameter t)

let test_torus_hops () =
  let t = Topology.Torus3d (4, 4, 4) in
  (* opposite corner: wraparound makes each dim distance <= 2 *)
  Alcotest.(check int) "corner" 3 (Topology.hops t 0 63);
  Alcotest.(check int) "diameter" 6 (Topology.diameter t)

let test_fattree_hops () =
  let t = Topology.Fat_tree { arity = 2; levels = 3 } in
  Alcotest.(check int) "nodes" 8 (Topology.nodes t);
  Alcotest.(check int) "siblings" 2 (Topology.hops t 0 1);
  Alcotest.(check int) "cousins" 4 (Topology.hops t 0 2);
  Alcotest.(check int) "across root" 6 (Topology.hops t 0 7);
  Alcotest.(check int) "diameter" 6 (Topology.diameter t)

let test_dragonfly_hops () =
  let t = Topology.Dragonfly { groups = 3; routers_per_group = 2; nodes_per_router = 2 } in
  Alcotest.(check int) "nodes" 12 (Topology.nodes t);
  Alcotest.(check int) "same router" 2 (Topology.hops t 0 1);
  Alcotest.(check int) "same group" 3 (Topology.hops t 0 2);
  Alcotest.(check int) "cross group" 5 (Topology.hops t 0 11)

let test_alltoall () =
  let t = Topology.All_to_all 16 in
  Alcotest.(check int) "one hop" 1 (Topology.hops t 3 12);
  Alcotest.(check (float 0.0)) "avg" 1.0 (Topology.average_hops t)

let prop_hops_symmetric =
  QCheck.Test.make ~name:"hops symmetric and bounded by diameter" ~count:200
    QCheck.(triple (int_range 0 5) small_int small_int)
    (fun (which, a, b) ->
      let t =
        match which with
        | 0 -> Topology.Ring 12
        | 1 -> Topology.Mesh2d (3, 4)
        | 2 -> Topology.Torus3d (2, 3, 2)
        | 3 -> Topology.Fat_tree { arity = 2; levels = 3 }
        | 4 -> Topology.Dragonfly { groups = 3; routers_per_group = 2; nodes_per_router = 2 }
        | _ -> Topology.All_to_all 12
      in
      let n = Topology.nodes t in
      let a = a mod n and b = b mod n in
      Topology.hops t a b = Topology.hops t b a
      && Topology.hops t a b <= Topology.diameter t
      && (a <> b || Topology.hops t a b = 0))

let test_of_spec () =
  List.iter
    (fun kind ->
      let t = Topology.of_spec kind 100 in
      Alcotest.(check bool) (kind ^ " covers n") true (Topology.nodes t >= 100))
    [ "alltoall"; "ring"; "mesh2d"; "torus3d"; "fattree"; "dragonfly" ];
  Alcotest.check_raises "unknown" (Invalid_argument "Topology.of_spec: unknown topology star")
    (fun () -> ignore (Topology.of_spec "star" 4))

(* ---- Network ---- *)

let net () = Network.create ~alpha:1e-6 ~beta:1e-9 ~per_hop:1e-7 (Topology.Ring 16)

let test_ptp_components () =
  let n = net () in
  let t = Network.ptp_time n ~src:0 ~dst:1 ~bytes:1000.0 in
  Alcotest.(check (float 1e-15)) "alpha + hop + beta*b" (1e-6 +. 1e-7 +. 1e-6) t;
  Alcotest.(check (float 0.0)) "self is free" 0.0 (Network.ptp_time n ~src:3 ~dst:3 ~bytes:1e9)

let test_ptp_monotone_in_bytes () =
  let n = net () in
  Alcotest.(check bool) "monotone" true
    (Network.ptp_avg n ~bytes:1e6 > Network.ptp_avg n ~bytes:1e3)

let test_rounds () =
  Alcotest.(check int) "p=1" 0 (Network.rounds 1);
  Alcotest.(check int) "p=2" 1 (Network.rounds 2);
  Alcotest.(check int) "p=5" 3 (Network.rounds 5);
  Alcotest.(check int) "p=1024" 10 (Network.rounds 1024)

let test_collectives_scale_log () =
  let n = net () in
  let t16 = Network.allreduce_time n ~ranks:16 ~bytes:8.0 in
  let t256 = Network.allreduce_time n ~ranks:256 ~bytes:8.0 in
  Alcotest.(check (float 1e-12)) "log scaling: 8 rounds vs 4" (t16 *. 2.0) t256;
  Alcotest.(check bool) "bcast = reduce" true
    (Network.bcast_time n ~ranks:64 ~bytes:100.0 = Network.reduce_time n ~ranks:64 ~bytes:100.0)

let test_allgather_linear () =
  let n = net () in
  let t4 = Network.allgather_time n ~ranks:4 ~bytes_per_rank:8.0 in
  let t8 = Network.allgather_time n ~ranks:8 ~bytes_per_rank:8.0 in
  Alcotest.(check bool) "ring scaling (p-1)" true (abs_float ((t8 /. t4) -. (7.0 /. 3.0)) < 1e-9)

let test_barrier_positive () =
  let n = net () in
  Alcotest.(check bool) "positive" true (Network.barrier_time n ~ranks:64 > 0.0);
  Alcotest.(check (float 0.0)) "1 rank free" 0.0 (Network.barrier_time n ~ranks:1)

(* ---- Node ---- *)

let node () = Node.create ~cores:8 ~flops_fp64:1e10 ~mem_bandwidth:1e11 ~watts:100.0 ()

let test_node_rates () =
  let n = node () in
  Alcotest.(check (float 0.0)) "fp64 core" 1e10 (Node.core_rate n Node.FP64);
  Alcotest.(check (float 0.0)) "fp32 default 2x" 2e10 (Node.core_rate n Node.FP32);
  Alcotest.(check (float 0.0)) "fp16 default 4x" 4e10 (Node.core_rate n Node.FP16);
  Alcotest.(check (float 0.0)) "node rate" 8e10 (Node.node_rate n Node.FP64);
  Alcotest.(check (float 1e-9)) "balance" 0.8 (Node.machine_balance n)

let test_node_roofline () =
  let n = node () in
  (* low intensity: bandwidth bound *)
  Alcotest.(check (float 1e-3)) "bw bound" 1e10 (Node.roofline_rate n Node.FP64 ~intensity:0.1);
  (* high intensity: compute bound *)
  Alcotest.(check (float 1e-3)) "peak bound" 8e10
    (Node.roofline_rate n Node.FP64 ~intensity:100.0)

let test_node_times () =
  let n = node () in
  Alcotest.(check (float 1e-12)) "compute" 1.0 (Node.compute_time n Node.FP64 ~flops:1e10);
  Alcotest.(check (float 1e-12)) "stream" 1.0 (Node.stream_time n ~bytes:1e11)

(* ---- Machine ---- *)

let machine () =
  Machine.create ~name:"test" ~node:(node ()) ~node_count:100
    ~network:(net ()) ~node_mtbf:1e6 ()

let test_machine_aggregates () =
  let m = machine () in
  Alcotest.(check int) "cores" 800 (Machine.total_cores m);
  Alcotest.(check (float 0.0)) "peak" 8e12 (Machine.peak m Node.FP64);
  Alcotest.(check (float 1e-9)) "mtbf shrinks with scale" 1e4 (Machine.system_mtbf m);
  Alcotest.(check (float 0.0)) "power" 1e4 (Machine.power m);
  Alcotest.(check (float 0.0)) "energy" 3.6e7 (Machine.energy m ~seconds:3600.0)

let test_amdahl () =
  let m = machine () in
  let perfect = Machine.flops_to_time m Node.FP64 ~flops:8e12 ~parallel_fraction:1.0 in
  let serial = Machine.flops_to_time m Node.FP64 ~flops:8e12 ~parallel_fraction:0.0 in
  Alcotest.(check (float 1e-9)) "perfect" 1.0 perfect;
  Alcotest.(check (float 1e-6)) "serial" 800.0 serial;
  Alcotest.(check bool) "99% parallel is far from perfect at scale" true
    (Machine.flops_to_time m Node.FP64 ~flops:8e12 ~parallel_fraction:0.99 > 5.0)

(* ---- Failure ---- *)

let test_failure_mean_interarrival () =
  let rng = Rng.create 11 in
  let f = Failure.create rng ~rate:0.01 in
  let n = 20_000 in
  let acc = ref 0.0 and prev = ref 0.0 in
  for _ = 1 to n do
    let next = Failure.next_after f !prev in
    acc := !acc +. (next -. !prev);
    prev := next
  done;
  let mean = !acc /. float_of_int n in
  Alcotest.(check bool) "mean ~ 1/rate" true (abs_float (mean -. 100.0) < 3.0)

let test_failures_before () =
  let rng = Rng.create 13 in
  let f = Failure.create rng ~rate:0.1 in
  let failures = Failure.failures_before f ~horizon:1000.0 in
  Alcotest.(check bool) "ascending, within horizon" true
    (List.for_all (fun t -> t >= 0.0 && t < 1000.0) failures
    && List.sort compare failures = failures);
  Alcotest.(check bool) "count near expectation" true
    (abs_float (float_of_int (List.length failures) -. 100.0) < 40.0);
  Alcotest.(check (float 0.0)) "expectation" 100.0 (Failure.expected_failures f ~horizon:1000.0)

let test_failure_of_machine () =
  let rng = Rng.create 17 in
  let f = Failure.of_machine rng (machine ()) in
  Alcotest.(check (float 1e-9)) "rate = 1/system mtbf" 1e-4 (Failure.rate f)

let test_failures_before_seeded () =
  (* the fleet bench's replay gate leans on this: the same seed must give
     the bit-identical failure schedule, and a different seed must not *)
  let draw seed = Failure.failures_before (Failure.create (Rng.create seed) ~rate:0.05) ~horizon:2000.0 in
  Alcotest.(check bool) "same seed, bitwise schedule" true (draw 23 = draw 23);
  Alcotest.(check bool) "different seed, different storm" true (draw 23 <> draw 24)

let test_expected_vs_empirical () =
  (* average over many independent storms: the empirical count converges
     on [expected_failures] (Poisson mean rate*horizon = 50) *)
  let rate = 0.05 and horizon = 1000.0 in
  let trials = 400 in
  let total = ref 0 in
  for seed = 1 to trials do
    let f = Failure.create (Rng.create seed) ~rate in
    total := !total + List.length (Failure.failures_before f ~horizon)
  done;
  let mean = float_of_int !total /. float_of_int trials in
  let expect = Failure.expected_failures (Failure.create (Rng.create 0) ~rate) ~horizon in
  Alcotest.(check (float 0.0)) "expectation arithmetic" 50.0 expect;
  (* sigma of the trial mean is sqrt(50/400) ~ 0.35; allow 4 sigma *)
  Alcotest.(check bool)
    (Printf.sprintf "empirical mean %.2f ~ %.0f" mean expect)
    true
    (abs_float (mean -. expect) < 1.5)

let test_system_mtbf_at_paper_scale () =
  (* the paper's arithmetic on real fleets: a 2-year node MTBF collapses
     to under an hour at Titan scale and to minutes at exascale *)
  let two_years = 2.0 *. 365.25 *. 86400.0 in
  let mtbf nodes =
    let m =
      Machine.create ~name:"paper" ~node:(node ()) ~node_count:nodes
        ~network:(net ()) ~node_mtbf:two_years ()
    in
    Machine.system_mtbf m
  in
  Alcotest.(check (float 1e-6)) "titan-scale (18688 nodes)"
    (two_years /. 18688.0) (mtbf 18688);
  Alcotest.(check bool) "titan-scale under an hour" true (mtbf 18688 < 3600.0);
  Alcotest.(check bool) "exascale (100k nodes) minutes" true (mtbf 100_000 < 660.0)

(* ---- Presets ---- *)

let test_presets_sane () =
  List.iter
    (fun (name, m) ->
      Alcotest.(check string) "name matches" name m.Machine.name;
      Alcotest.(check bool) "peak positive" true (Machine.peak m Node.FP64 > 0.0);
      Alcotest.(check bool) "describe nonempty" true (String.length (Machine.describe m) > 10))
    Presets.all

let test_presets_ordering () =
  let peak name = Machine.peak (Presets.find name) Node.FP64 in
  Alcotest.(check bool) "workstation < cluster < titan < exascale" true
    (peak "workstation" < peak "cluster-2016"
    && peak "cluster-2016" < peak "titan-like"
    && peak "titan-like" < peak "exascale-2020");
  (* the exascale machine reaches ~1 Eflop/s *)
  Alcotest.(check bool) "exascale ~ 1e18" true (peak "exascale-2020" >= 0.9e18)

let test_exascale_mtbf_collapse () =
  let m = Presets.find "exascale-2020" in
  (* the paper's headline arithmetic: system MTBF under an hour *)
  Alcotest.(check bool) "MTBF below 1h" true (Machine.system_mtbf m < 3600.0)

let test_scale_nodes () =
  let m = Presets.scale_nodes (Presets.find "cluster-2016") 512 in
  Alcotest.(check int) "node count" 512 m.Machine.node_count;
  Alcotest.(check bool) "topology refit" true
    (Topology.nodes m.Machine.network.Network.topology >= 512)

let () =
  Alcotest.run "xsc_simmachine"
    [
      ( "des",
        [
          Alcotest.test_case "ordering" `Quick test_des_ordering;
          Alcotest.test_case "FIFO ties" `Quick test_des_fifo_ties;
          Alcotest.test_case "cascading" `Quick test_des_cascading;
          Alcotest.test_case "until" `Quick test_des_until;
          Alcotest.test_case "stop" `Quick test_des_stop;
          Alcotest.test_case "past raises" `Quick test_des_past_raises;
        ] );
      ( "topology",
        [
          Alcotest.test_case "ring" `Quick test_ring_hops;
          Alcotest.test_case "mesh" `Quick test_mesh_hops;
          Alcotest.test_case "torus" `Quick test_torus_hops;
          Alcotest.test_case "fat tree" `Quick test_fattree_hops;
          Alcotest.test_case "dragonfly" `Quick test_dragonfly_hops;
          Alcotest.test_case "all-to-all" `Quick test_alltoall;
          qcheck prop_hops_symmetric;
          Alcotest.test_case "of_spec" `Quick test_of_spec;
        ] );
      ( "network",
        [
          Alcotest.test_case "ptp components" `Quick test_ptp_components;
          Alcotest.test_case "ptp monotone" `Quick test_ptp_monotone_in_bytes;
          Alcotest.test_case "rounds" `Quick test_rounds;
          Alcotest.test_case "collectives log scaling" `Quick test_collectives_scale_log;
          Alcotest.test_case "allgather linear" `Quick test_allgather_linear;
          Alcotest.test_case "barrier" `Quick test_barrier_positive;
        ] );
      ( "node",
        [
          Alcotest.test_case "rates" `Quick test_node_rates;
          Alcotest.test_case "roofline" `Quick test_node_roofline;
          Alcotest.test_case "times" `Quick test_node_times;
        ] );
      ( "machine",
        [
          Alcotest.test_case "aggregates" `Quick test_machine_aggregates;
          Alcotest.test_case "amdahl" `Quick test_amdahl;
        ] );
      ( "failure",
        [
          Alcotest.test_case "mean interarrival" `Quick test_failure_mean_interarrival;
          Alcotest.test_case "failures_before" `Quick test_failures_before;
          Alcotest.test_case "of_machine" `Quick test_failure_of_machine;
          Alcotest.test_case "seeded schedule" `Quick test_failures_before_seeded;
          Alcotest.test_case "expected vs empirical" `Quick test_expected_vs_empirical;
          Alcotest.test_case "paper-scale MTBF" `Quick test_system_mtbf_at_paper_scale;
        ] );
      ( "presets",
        [
          Alcotest.test_case "sane" `Quick test_presets_sane;
          Alcotest.test_case "peak ordering" `Quick test_presets_ordering;
          Alcotest.test_case "exascale MTBF collapse" `Quick test_exascale_mtbf_collapse;
          Alcotest.test_case "scale_nodes" `Quick test_scale_nodes;
        ] );
    ]
