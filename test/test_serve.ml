(* Tests for Xsc_serve: bounded-queue invariants under concurrent
   producers, batcher flush triggers, EDF dispatch order, seeded loadgen
   determinism, end-to-end served correctness (bitwise vs the direct
   kernels), backpressure, and seeded fault storms through the server
   (transient faults retried, permanent faults typed, counters
   reconciling). *)

open Xsc_linalg
module Request = Xsc_serve.Request
module Queue = Xsc_serve.Queue
module Batcher = Xsc_serve.Batcher
module Scheduler = Xsc_serve.Scheduler
module Server = Xsc_serve.Server
module Loadgen = Xsc_serve.Loadgen
module Harness = Xsc_resilience.Harness
module Flight = Xsc_resilience.Flight
module Checkpoint = Xsc_resilience.Checkpoint
module Slo = Xsc_serve.Slo
module Span = Xsc_obs.Span
module Clock = Xsc_obs.Clock
module Rng = Xsc_util.Rng
module Json = Xsc_util.Json

(* ---- queue ---- *)

let test_queue_fifo () =
  let q = Queue.create ~capacity:8 in
  for i = 0 to 5 do
    Alcotest.(check bool) "accepted" true (Queue.try_push q i = Queue.Accepted)
  done;
  for i = 0 to 5 do
    Alcotest.(check (option int)) "FIFO pop" (Some i) (Queue.try_pop q)
  done;
  Alcotest.(check (option int)) "empty" None (Queue.try_pop q)

let test_queue_wraparound () =
  let q = Queue.create ~capacity:4 in
  (* push/pop across the ring seam several times *)
  let next = ref 0 and expect = ref 0 in
  for _ = 0 to 9 do
    for _ = 1 to 3 do
      Alcotest.(check bool) "push" true (Queue.try_push q !next = Queue.Accepted);
      incr next
    done;
    for _ = 1 to 3 do
      Alcotest.(check (option int)) "pop in order" (Some !expect) (Queue.try_pop q);
      incr expect
    done
  done

let test_queue_bounded () =
  let q = Queue.create ~capacity:3 in
  for i = 0 to 2 do
    ignore (Queue.try_push q i)
  done;
  Alcotest.(check bool) "full rejects" true (Queue.try_push q 99 = Queue.Full);
  Alcotest.(check int) "length capped" 3 (Queue.length q);
  ignore (Queue.try_pop q);
  Alcotest.(check bool) "accepts after pop" true (Queue.try_push q 3 = Queue.Accepted)

let test_queue_closed () =
  let q = Queue.create ~capacity:3 in
  ignore (Queue.try_push q 1);
  Queue.close q;
  Alcotest.(check bool) "closed rejects" true (Queue.try_push q 2 = Queue.Closed);
  Alcotest.(check (option int)) "closed still drains" (Some 1) (Queue.try_pop q)

(* Bound under concurrent producers and a concurrent consumer: every
   observed length stays within capacity, and accounting reconciles —
   accepted = popped at the end, accepted + rejected = offered. *)
let test_queue_concurrent_bound () =
  let capacity = 16 and producers = 4 and per_producer = 2000 in
  let q = Queue.create ~capacity in
  let accepted = Atomic.make 0 and rejected = Atomic.make 0 in
  let popped = Atomic.make 0 and over = Atomic.make false in
  let stop = Atomic.make false in
  let consumer =
    Domain.spawn (fun () ->
        let rec go () =
          if Queue.length q > capacity then Atomic.set over true;
          match Queue.try_pop q with
          | Some _ ->
            Atomic.incr popped;
            go ()
          | None -> if Atomic.get stop then () else go ()
        in
        go ())
  in
  let workers =
    Array.init producers (fun p ->
        Domain.spawn (fun () ->
            for i = 0 to per_producer - 1 do
              match Queue.try_push q ((p * per_producer) + i) with
              | Queue.Accepted -> Atomic.incr accepted
              | Queue.Full -> Atomic.incr rejected
              | Queue.Closed -> assert false
            done))
  in
  Array.iter Domain.join workers;
  Atomic.set stop true;
  Domain.join consumer;
  Alcotest.(check bool) "length never exceeded capacity" false (Atomic.get over);
  Alcotest.(check int) "offered = accepted + rejected" (producers * per_producer)
    (Atomic.get accepted + Atomic.get rejected);
  Alcotest.(check int) "accepted all popped" (Atomic.get accepted) (Atomic.get popped)

(* ---- batcher ---- *)

let req ~id ?(n = 4) ~submit_ns ~deadline_ns () =
  let rng = Rng.create (id + 1) in
  {
    Request.id;
    payload = Request.Spd_solve (Mat.random_spd rng n, Vec.random rng n);
    submit_ns;
    deadline_ns;
    span = Xsc_obs.Span.root ~request:id;
  }

let test_batcher_size_flush () =
  let b = Batcher.create { Batcher.max_batch = 3; linger_ns = 1_000_000_000 } in
  Alcotest.(check bool) "no flush at 1" true
    (Batcher.add b ~now_ns:0 (req ~id:0 ~submit_ns:0 ~deadline_ns:max_int ()) = None);
  Alcotest.(check bool) "no flush at 2" true
    (Batcher.add b ~now_ns:10 (req ~id:1 ~submit_ns:10 ~deadline_ns:max_int ()) = None);
  (match Batcher.add b ~now_ns:20 (req ~id:2 ~submit_ns:20 ~deadline_ns:max_int ()) with
  | None -> Alcotest.fail "expected size-triggered flush at max_batch"
  | Some batch ->
    Alcotest.(check int) "batch size" 3 (Array.length batch.Batcher.requests);
    Alcotest.(check (list int)) "arrival order kept" [ 0; 1; 2 ]
      (Array.to_list (Array.map (fun r -> r.Request.id) batch.Batcher.requests)));
  Alcotest.(check int) "nothing pending" 0 (Batcher.pending b)

let test_batcher_linger_flush () =
  let b = Batcher.create { Batcher.max_batch = 64; linger_ns = 1000 } in
  ignore (Batcher.add b ~now_ns:0 (req ~id:0 ~submit_ns:0 ~deadline_ns:max_int ()));
  Alcotest.(check int) "not due yet" 0 (List.length (Batcher.flush_due b ~now_ns:500));
  (* deadline-triggered: fires a partial batch without ever reaching max_batch *)
  match Batcher.flush_due b ~now_ns:1001 with
  | [ batch ] ->
    Alcotest.(check int) "partial batch of 1" 1 (Array.length batch.Batcher.requests)
  | other -> Alcotest.fail (Printf.sprintf "expected 1 flush, got %d" (List.length other))

let test_batcher_deadline_urgency_flush () =
  (* a member whose deadline is within the linger flushes early *)
  let b = Batcher.create { Batcher.max_batch = 64; linger_ns = 1_000_000 } in
  ignore (Batcher.add b ~now_ns:0 (req ~id:0 ~submit_ns:0 ~deadline_ns:1_200_000 ()));
  Alcotest.(check int) "urgent member flushes before linger" 1
    (List.length (Batcher.flush_due b ~now_ns:300_000))

let test_batcher_classes_separate () =
  let b = Batcher.create { Batcher.max_batch = 2; linger_ns = 1_000_000_000 } in
  ignore (Batcher.add b ~now_ns:0 (req ~id:0 ~n:4 ~submit_ns:0 ~deadline_ns:max_int ()));
  (* different size => different class => no size flush *)
  Alcotest.(check bool) "sizes do not mix" true
    (Batcher.add b ~now_ns:0 (req ~id:1 ~n:8 ~submit_ns:0 ~deadline_ns:max_int ()) = None);
  Alcotest.(check int) "both pending" 2 (Batcher.pending b);
  match Batcher.add b ~now_ns:0 (req ~id:2 ~n:4 ~submit_ns:0 ~deadline_ns:max_int ()) with
  | Some batch ->
    Alcotest.(check string) "n=4 class flushed" "spd:4" batch.Batcher.class_key
  | None -> Alcotest.fail "expected the n=4 class to flush at 2 members"

(* ---- scheduler ---- *)

let batch ~seq ~deadline_ns =
  {
    Batcher.seq;
    class_key = "spd:4";
    requests = [| req ~id:seq ~submit_ns:0 ~deadline_ns () |];
    deadline_ns;
    opened_ns = 0;
  }

let test_scheduler_edf_order () =
  let s = Scheduler.create () in
  List.iter (Scheduler.push s)
    [ batch ~seq:0 ~deadline_ns:30; batch ~seq:1 ~deadline_ns:10;
      batch ~seq:2 ~deadline_ns:20; batch ~seq:3 ~deadline_ns:10 ];
  let popped = List.init 4 (fun _ -> Option.get (Scheduler.pop s)) in
  Alcotest.(check (list int)) "EDF with FIFO tie-break" [ 1; 3; 2; 0 ]
    (List.map (fun b -> b.Batcher.seq) popped);
  Alcotest.(check bool) "drained" true (Scheduler.pop s = None)

let test_scheduler_fifo_within_class () =
  let s = Scheduler.create () in
  for seq = 0 to 9 do
    Scheduler.push s (batch ~seq ~deadline_ns:42)
  done;
  let order = List.init 10 (fun _ -> (Option.get (Scheduler.pop s)).Batcher.seq) in
  Alcotest.(check (list int)) "equal deadlines pop in formation order"
    (List.init 10 Fun.id) order

(* ---- loadgen determinism ---- *)

let test_loadgen_deterministic () =
  let cfg = { Loadgen.default with seed = 7; count = 64; rate_hz = 1000.0 } in
  let a = Loadgen.schedule cfg and b = Loadgen.schedule cfg in
  Alcotest.(check int) "same length" (Array.length a) (Array.length b);
  Array.iteri
    (fun i x ->
      Alcotest.(check bool)
        (Printf.sprintf "arrival %d identical" i)
        true
        (x.Loadgen.at_s = b.(i).Loadgen.at_s
        && x.Loadgen.kind = b.(i).Loadgen.kind
        && x.Loadgen.problem_seed = b.(i).Loadgen.problem_seed))
    a;
  let c = Loadgen.schedule { cfg with seed = 8 } in
  Alcotest.(check bool) "different seed, different schedule" true
    (Array.exists
       (fun i -> a.(i).Loadgen.at_s <> c.(i).Loadgen.at_s)
       (Array.init (Array.length a) Fun.id));
  (* arrivals are strictly increasing Poisson times *)
  Array.iteri
    (fun i x -> if i > 0 then Alcotest.(check bool) "monotone" true (x.Loadgen.at_s > a.(i - 1).Loadgen.at_s))
    a

let test_loadgen_payload_deterministic () =
  let cfg = { Loadgen.default with seed = 3; count = 4; n = 6 } in
  let a = (Loadgen.schedule cfg).(0) in
  match (Loadgen.payload_of cfg a, Loadgen.payload_of cfg a) with
  | Request.Spd_solve (m1, b1), Request.Spd_solve (m2, b2) ->
    Alcotest.(check bool) "same matrix" true (Mat.approx_equal ~tol:0.0 m1 m2);
    Alcotest.(check bool) "same rhs" true (Vec.approx_equal ~tol:0.0 b1 b2)
  | _ -> Alcotest.fail "expected SPD payloads"

(* ---- server: end-to-end ---- *)

let check_counters_reconcile name srv ~offered =
  let c = Server.counters srv in
  Alcotest.(check int)
    (name ^ ": admitted = completed + failed")
    c.Server.admitted
    (c.Server.completed + c.Server.failed);
  Alcotest.(check int) (name ^ ": offered = admitted + rejected") offered
    (c.Server.admitted + c.Server.rejected);
  Alcotest.(check int) (name ^ ": drained") 0 (Server.in_flight srv)

let test_server_serves_bitwise () =
  let cfg = { Loadgen.default with seed = 5; count = 40; rate_hz = 4000.0; n = 12;
              kinds = [| Loadgen.Spd; Loadgen.General; Loadgen.Product |] } in
  let srv =
    Server.start { Server.default_config with workers = 2; capacity = 64; linger_s = 0.0005 }
  in
  let arrivals = Loadgen.schedule cfg in
  let tickets =
    Array.map (fun a -> (a, Server.submit srv (Loadgen.payload_of cfg a))) arrivals
  in
  Array.iter
    (fun (a, tk) ->
      match tk with
      | Error e -> Alcotest.fail ("unexpected reject: " ^ Request.error_message e)
      | Ok tk -> (
        let c = Server.await srv tk in
        match c.Request.outcome with
        | Error e -> Alcotest.fail ("unexpected failure: " ^ Request.error_message e)
        | Ok sol ->
          Alcotest.(check bool) "bitwise identical to routed oracle" true
            (Loadgen.solutions_bitwise_equal sol (Loadgen.reference_routed cfg a));
          Alcotest.(check bool) "latencies measured" true
            (c.Request.total_s >= 0.0
            && c.Request.queue_wait_s >= 0.0
            && c.Request.service_s >= 0.0)))
    tickets;
  Server.stop srv;
  check_counters_reconcile "serve" srv ~offered:cfg.Loadgen.count;
  (* every completed request left a wait span and a service span *)
  let tr = Server.trace srv in
  Alcotest.(check int) "two spans per request"
    (2 * cfg.Loadgen.count)
    (List.length (Xsc_runtime.Trace.entries tr))

let test_server_isolates_singular () =
  (* one non-SPD matrix in a batch of SPD solves: that request fails
     typed, its batchmates complete *)
  let n = 8 in
  let rng = Rng.create 17 in
  let good () = (Mat.random_spd rng n, Vec.random rng n) in
  let bad =
    (* -I is definitely not SPD *)
    (Mat.init n n (fun i j -> if i = j then -1.0 else 0.0), Vec.random rng n)
  in
  let srv =
    Server.start
      { Server.default_config with workers = 1; max_batch = 8; linger_s = 0.001 }
  in
  let submit (a, b) = Result.get_ok (Server.submit srv (Request.Spd_solve (a, b))) in
  let g1 = submit (good ()) in
  let tb = submit bad in
  let g2 = submit (good ()) in
  let ok t =
    match (Server.await srv t).Request.outcome with Ok _ -> true | Error _ -> false
  in
  Alcotest.(check bool) "good before survives" true (ok g1);
  Alcotest.(check bool) "good after survives" true (ok g2);
  (match (Server.await srv tb).Request.outcome with
  | Error (Request.Failed { attempts; error }) ->
    Alcotest.(check int) "singular not retried" 1 attempts;
    Alcotest.(check bool) "carries the kernel error" true
      (String.length error > 0)
  | Error e -> Alcotest.fail ("expected Failed, got " ^ Request.error_message e)
  | Ok _ -> Alcotest.fail "singular solve cannot succeed");
  Server.stop srv;
  check_counters_reconcile "singular" srv ~offered:3

let test_server_backpressure () =
  (* capacity 4, instant burst of 50: the window must reject most, admit
     and complete the rest — and the bound is the admission window, so
     rejected + admitted = offered exactly. *)
  let n = 16 in
  let rng = Rng.create 23 in
  let srv =
    Server.start
      { Server.default_config with workers = 1; capacity = 4; max_batch = 4;
        linger_s = 0.02 }
  in
  let offered = 50 in
  let tickets =
    List.init offered (fun _ ->
        Server.submit srv (Request.Spd_solve (Mat.random_spd rng n, Vec.random rng n)))
  in
  let admitted = List.filter_map Result.to_option tickets in
  let rejected = offered - List.length admitted in
  Alcotest.(check bool) "backpressure engaged" true (rejected > 0);
  List.iter
    (fun tk ->
      match (Server.await srv tk).Request.outcome with
      | Ok _ -> ()
      | Error e -> Alcotest.fail ("admitted request failed: " ^ Request.error_message e))
    admitted;
  Server.stop srv;
  check_counters_reconcile "backpressure" srv ~offered;
  let c = Server.counters srv in
  Alcotest.(check int) "typed rejects counted" rejected c.Server.rejected

let test_server_rejects_after_stop () =
  let srv = Server.start { Server.default_config with workers = 1 } in
  Server.stop srv;
  let rng = Rng.create 3 in
  match Server.submit srv (Request.Spd_solve (Mat.random_spd rng 4, Vec.random rng 4)) with
  | Error (Request.Rejected Request.Shutting_down) -> ()
  | _ -> Alcotest.fail "expected Shutting_down reject"

(* ---- fault storms ---- *)

let storm_cfg =
  { Loadgen.default with seed = 31; count = 60; rate_hz = 5000.0; n = 10;
    deadline_s = 5.0 }

let test_server_fault_storm_transient () =
  let h =
    Harness.create { Harness.default with seed = 9; p_raise = 0.3; transient = true }
  in
  let srv =
    Server.start ~harness:h
      { Server.default_config with workers = 2; capacity = 128; max_retries = 3 }
  in
  let r = Loadgen.run_open srv storm_cfg in
  Server.stop srv;
  Alcotest.(check int) "no rejects at this window" 0 r.Loadgen.rejected;
  Alcotest.(check int) "every transient fault retried to success" 0 r.Loadgen.failed;
  Alcotest.(check int) "all completed" storm_cfg.Loadgen.count r.Loadgen.completed;
  Alcotest.(check bool) "faults actually fired" true (Harness.raised h > 0);
  Alcotest.(check int) "one retry per injected raise" (Harness.raised h)
    r.Loadgen.retried;
  check_counters_reconcile "transient storm" srv ~offered:storm_cfg.Loadgen.count

let test_server_fault_storm_permanent () =
  let h =
    Harness.create { Harness.default with seed = 9; p_raise = 0.3; transient = false }
  in
  let srv =
    Server.start ~harness:h
      { Server.default_config with workers = 2; capacity = 128; max_retries = 2 }
  in
  let arrivals = Loadgen.schedule storm_cfg in
  let tickets =
    Array.map
      (fun a -> (a, Result.get_ok (Server.submit srv (Loadgen.payload_of storm_cfg a))))
      arrivals
  in
  (* request ids are assigned in submission order: 0..count-1 — the
     injected set is exactly the keys the policy targets *)
  let injected = ref 0 in
  Array.iteri
    (fun i (a, tk) ->
      let c = Server.await srv tk in
      if Harness.targets_key h i then begin
        incr injected;
        match c.Request.outcome with
        | Error (Request.Failed { attempts; _ }) ->
          Alcotest.(check int) "permanent fault exhausts retries" 3 attempts
        | Error e -> Alcotest.fail ("expected Failed, got " ^ Request.error_message e)
        | Ok _ -> Alcotest.fail "permanently injected request cannot succeed"
      end
      else
        match c.Request.outcome with
        | Ok sol ->
          Alcotest.(check bool) "untouched requests bitwise correct" true
            (Loadgen.solutions_bitwise_equal sol (Loadgen.reference_routed storm_cfg a))
        | Error e ->
          Alcotest.fail ("uninjected request failed: " ^ Request.error_message e))
    tickets;
  Server.stop srv;
  Alcotest.(check bool) "storm injected something" true (!injected > 0);
  let c = Server.counters srv in
  Alcotest.(check int) "failed = injected" !injected c.Server.failed;
  check_counters_reconcile "permanent storm" srv ~offered:storm_cfg.Loadgen.count

(* ---- shared-pool dispatch ---- *)

module Route = Xsc_serve.Route
module Scratch = Xsc_serve.Scratch

let shared_cfg n =
  { Server.default_config with workers = 1; dispatch = Server.Shared n; capacity = 256 }

let shared_load =
  { Loadgen.seed = 61; count = 40; rate_hz = 5000.0; n = 24;
    kinds = [| Loadgen.Spd; Loadgen.General; Loadgen.Product |]; deadline_s = 5.0 }

(* Mixed payload kinds through the shared pool: SPD routes to a packed op
   DAG, general LU and GEMM to closure plans — every completion must be
   bitwise-identical to Route.direct on the same seeded instance, under
   whatever interleaving two pool workers produce. *)
let test_shared_dispatch_bitwise () =
  let srv = Server.start (shared_cfg 2) in
  let arrivals = Loadgen.schedule shared_load in
  let tickets =
    Array.map
      (fun a -> (a, Result.get_ok (Server.submit srv (Loadgen.payload_of shared_load a))))
      arrivals
  in
  Array.iter
    (fun (a, tk) ->
      match (Server.await srv tk).Request.outcome with
      | Ok sol ->
        Alcotest.(check bool) "bitwise vs routed oracle" true
          (Loadgen.solutions_bitwise_equal sol (Loadgen.reference_routed shared_load a))
      | Error e -> Alcotest.fail ("shared-dispatch request failed: " ^ Request.error_message e))
    tickets;
  Server.stop srv;
  check_counters_reconcile "shared dispatch" srv ~offered:shared_load.Loadgen.count

let test_shared_transient_storm () =
  let h =
    Harness.create { Harness.default with seed = 9; p_raise = 0.3; transient = true }
  in
  let srv = Server.start ~harness:h { (shared_cfg 2) with max_retries = 4 } in
  let arrivals = Loadgen.schedule shared_load in
  let tickets =
    Array.map
      (fun a -> (a, Result.get_ok (Server.submit srv (Loadgen.payload_of shared_load a))))
      arrivals
  in
  let retried = ref 0 in
  Array.iter
    (fun (a, tk) ->
      let c = Server.await srv tk in
      retried := !retried + c.Request.retries;
      match c.Request.outcome with
      | Ok sol ->
        Alcotest.(check bool) "replayed attempt still bitwise" true
          (Loadgen.solutions_bitwise_equal sol (Loadgen.reference_routed shared_load a))
      | Error e -> Alcotest.fail ("transient fault not retried: " ^ Request.error_message e))
    tickets;
  Server.stop srv;
  Alcotest.(check bool) "faults actually fired" true (Harness.raised h > 0);
  Alcotest.(check int) "one retry per injected raise" (Harness.raised h) !retried;
  check_counters_reconcile "shared transient storm" srv ~offered:shared_load.Loadgen.count

let test_shared_permanent_storm () =
  let h =
    Harness.create { Harness.default with seed = 9; p_raise = 0.3; transient = false }
  in
  let srv = Server.start ~harness:h { (shared_cfg 2) with max_retries = 2 } in
  let arrivals = Loadgen.schedule shared_load in
  let tickets =
    Array.map
      (fun a -> (a, Result.get_ok (Server.submit srv (Loadgen.payload_of shared_load a))))
      arrivals
  in
  let injected = ref 0 in
  Array.iteri
    (fun i (a, tk) ->
      let c = Server.await srv tk in
      if Harness.targets_key h i then begin
        incr injected;
        match c.Request.outcome with
        | Error (Request.Failed { attempts; _ }) ->
          Alcotest.(check int) "permanent fault exhausts retries" 3 attempts
        | Error e -> Alcotest.fail ("expected Failed, got " ^ Request.error_message e)
        | Ok _ -> Alcotest.fail "permanently injected request cannot succeed"
      end
      else
        match c.Request.outcome with
        | Ok sol ->
          Alcotest.(check bool) "untouched requests bitwise correct" true
            (Loadgen.solutions_bitwise_equal sol (Loadgen.reference_routed shared_load a))
        | Error e -> Alcotest.fail ("uninjected request failed: " ^ Request.error_message e))
    tickets;
  Server.stop srv;
  Alcotest.(check bool) "storm injected something" true (!injected > 0);
  check_counters_reconcile "shared permanent storm" srv ~offered:shared_load.Loadgen.count

let test_shared_isolates_singular () =
  (* a non-SPD matrix in flight with clean ones on the shared pool: the
     packed potrf raises Singular, aborting exactly that job *)
  let n = 8 in
  let rng = Rng.create 17 in
  let srv = Server.start (shared_cfg 2) in
  let good () =
    Result.get_ok
      (Server.submit srv (Request.Spd_solve (Mat.random_spd rng n, Vec.random rng n)))
  in
  let bad =
    Result.get_ok
      (Server.submit srv
         (Request.Spd_solve
            (Mat.init n n (fun i j -> if i = j then -1.0 else 0.0), Vec.random rng n)))
  in
  let g1 = good () and g2 = good () in
  let ok t =
    match (Server.await srv t).Request.outcome with Ok _ -> true | Error _ -> false
  in
  Alcotest.(check bool) "clean jobs survive" true (ok g1 && ok g2);
  (match (Server.await srv bad).Request.outcome with
  | Error (Request.Failed { attempts; error }) ->
    Alcotest.(check int) "deterministic failure not retried" 1 attempts;
    Alcotest.(check bool) "carries the kernel error" true (String.length error > 0)
  | Error e -> Alcotest.fail ("expected Failed, got " ^ Request.error_message e)
  | Ok _ -> Alcotest.fail "singular solve cannot succeed");
  Server.stop srv;
  check_counters_reconcile "shared singular" srv ~offered:3

let wait_for ~what ?(timeout_s = 5.0) f =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    if f () then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.fail ("timed out waiting for " ^ what)
    else begin
      Unix.sleepf 0.001;
      go ()
    end
  in
  go ()

(* Shared admission reads actual in-flight work (Pool.live_jobs plus
   requests travelling towards it), not the in-system count: a retry
   asleep in backoff holds no pool lane, so its window slot frees and a
   new request is admitted while it sleeps. Slot mode is the control —
   the same sleeping retry keeps the window full there. *)
let test_shared_admission_while_retry_sleeps () =
  let h =
    Harness.create { Harness.default with seed = 3; p_raise = 1.0; transient = true }
  in
  let cfg =
    { Server.default_config with workers = 1; dispatch = Server.Shared 2;
      capacity = 1; max_batch = 1; linger_s = 0.0; max_retries = 3;
      retry_backoff_s = 0.5 }
  in
  let srv = Server.start ~harness:h cfg in
  let rng = Rng.create 41 in
  let payload () = Request.Spd_solve (Mat.random_spd rng 6, Vec.random rng 6) in
  let t0 = Result.get_ok (Server.submit srv (payload ())) in
  (* p_raise 1.0 and transient: the first attempt raises, then backs off *)
  wait_for ~what:"first injected raise" (fun () -> Harness.raised h >= 1);
  wait_for ~what:"backoff frees the window" (fun () -> Server.occupancy srv = 0);
  let t1 =
    match Server.submit srv (payload ()) with
    | Ok t -> t
    | Error e ->
      Alcotest.fail ("rejected while the retry slept: " ^ Request.error_message e)
  in
  List.iter
    (fun t ->
      match (Server.await srv t).Request.outcome with
      | Ok _ -> ()
      | Error e -> Alcotest.fail ("request failed: " ^ Request.error_message e))
    [ t0; t1 ];
  Server.stop srv;
  check_counters_reconcile "shared sleeping retry" srv ~offered:2;
  (* control: Slot occupancy is the in-system count, so the identical
     sleeping retry keeps the window full and the second submit bounces *)
  let h2 =
    Harness.create { Harness.default with seed = 3; p_raise = 1.0; transient = true }
  in
  let srv2 = Server.start ~harness:h2 { cfg with dispatch = Server.Slot } in
  let t0 = Result.get_ok (Server.submit srv2 (payload ())) in
  wait_for ~what:"first injected raise (slot)" (fun () -> Harness.raised h2 >= 1);
  (match Server.submit srv2 (payload ()) with
  | Error (Request.Rejected Request.Queue_full) -> ()
  | Ok _ -> Alcotest.fail "Slot control admitted through a held window"
  | Error e -> Alcotest.fail ("expected Queue_full, got " ^ Request.error_message e));
  (match (Server.await srv2 t0).Request.outcome with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("slot request failed: " ^ Request.error_message e));
  Server.stop srv2;
  check_counters_reconcile "slot control" srv2 ~offered:2

(* Thousands of requests through the shared pool in closed-loop chunks:
   counters reconcile exactly, the span collector sheds nothing, and the
   submitting domain's allocation per chunk stays flat — a monotonic
   per-request growth (a leak in the staged-admission or span paths)
   would show as the later half allocating measurably more than the
   earlier half. *)
let test_shared_soak () =
  let total = 1600 and chunk = 200 in
  let srv =
    Server.start
      { Server.default_config with workers = 1; dispatch = Server.Shared 2;
        capacity = 256; max_batch = 8; linger_s = 0.0005 }
  in
  let rng = Rng.create 53 in
  let chunks = total / chunk in
  let per_chunk = Array.make chunks 0.0 in
  for c = 0 to chunks - 1 do
    let before = Xsc_obs.Gcstat.minor_words () in
    let tickets =
      Array.init chunk (fun _ ->
          Result.get_ok
            (Server.submit srv (Request.Spd_solve (Mat.random_spd rng 6, Vec.random rng 6))))
    in
    Array.iter
      (fun t ->
        match (Server.await srv t).Request.outcome with
        | Ok _ -> ()
        | Error e -> Alcotest.fail ("soak request failed: " ^ Request.error_message e))
      tickets;
    per_chunk.(c) <- Xsc_obs.Gcstat.minor_words () -. before
  done;
  Server.stop srv;
  check_counters_reconcile "soak" srv ~offered:total;
  let c = Server.counters srv in
  Alcotest.(check int) "all admitted" total c.Server.admitted;
  Alcotest.(check int) "all completed" total c.Server.completed;
  Alcotest.(check int) "zero span drops" 0 (Server.span_dropped srv);
  let sum a b = Array.fold_left ( +. ) 0.0 (Array.sub per_chunk a b) in
  let half = chunks / 2 in
  let first = sum 0 half and second = sum half (chunks - half) in
  Alcotest.(check bool)
    (Printf.sprintf "allocation flat across halves (%.0f vs %.0f words)" first second)
    true
    (second < first *. 1.5)

(* ---- sparse request classes ---- *)

module Stencil = Xsc_sparse.Stencil
module Csr = Xsc_sparse.Csr

(* Both bandwidth-bound kinds over an 8^3 operator: small enough that a
   CG solve is a handful of chunks, big enough that the chain actually
   chunks (cg_max_iter 240 over 32-iteration chunks). *)
let sparse_load =
  { Loadgen.seed = 67; count = 24; rate_hz = 5000.0; n = 8;
    kinds = [| Loadgen.Cg; Loadgen.Mg |]; deadline_s = 10.0 }

(* The tentpole oracle: a chunked solver chain on the shared pool resumes
   the same stepper the sequential solve drives, so every survivor is
   bitwise-identical to Route.direct on the same seeded instance — not
   merely close. *)
let test_sparse_serves_bitwise () =
  let srv = Server.start (shared_cfg 2) in
  let arrivals = Loadgen.schedule sparse_load in
  let tickets =
    Array.map
      (fun a -> (a, Result.get_ok (Server.submit srv (Loadgen.payload_of sparse_load a))))
      arrivals
  in
  Array.iter
    (fun (a, tk) ->
      match (Server.await srv tk).Request.outcome with
      | Ok sol ->
        Alcotest.(check bool) "chunked chain bitwise vs sequential solve" true
          (Loadgen.solutions_bitwise_equal sol (Loadgen.reference_routed sparse_load a))
      | Error e -> Alcotest.fail ("sparse request failed: " ^ Request.error_message e))
    tickets;
  Server.stop srv;
  check_counters_reconcile "sparse serve" srv ~offered:sparse_load.Loadgen.count

(* Non-convergence is a typed, deterministic failure: a budget the
   iteration cannot meet fails once (no retry — replaying the same chain
   reproduces the same residual) and never returns a silent wrong answer. *)
let test_sparse_non_convergence_typed () =
  let srv = Server.start { (shared_cfg 2) with Server.max_retries = 3 } in
  let rng = Rng.create 5 in
  let a = Stencil.poisson_3d 6 in
  let b = Vec.random rng a.Csr.rows in
  let check_fails what tk =
    match (Server.await srv tk).Request.outcome with
    | Error (Request.Failed { attempts; error }) ->
      Alcotest.(check int) (what ^ " fails deterministically, no retry") 1 attempts;
      Alcotest.(check bool) (what ^ " names the residual miss") true
        (String.length error > 0)
    | Error e -> Alcotest.fail ("expected Failed, got " ^ Request.error_message e)
    | Ok _ -> Alcotest.fail (what ^ ": an impossible tolerance cannot be met")
  in
  let t_cg =
    Result.get_ok
      (Server.submit srv (Request.Cg_solve { a; b; tol = 1e-12; max_iter = 2 }))
  in
  let t_mg =
    Result.get_ok
      (Server.submit srv
         (Request.Mg_solve { grid = 6; levels = 2; b; tol = 1e-14; max_cycles = 1 }))
  in
  check_fails "cg" t_cg;
  check_fails "mg" t_mg;
  Server.stop srv;
  check_counters_reconcile "non-convergence" srv ~offered:2

let test_sparse_validation () =
  let srv = Server.start (shared_cfg 1) in
  Fun.protect
    ~finally:(fun () -> Server.stop srv)
    (fun () ->
      let b = Array.make 343 1.0 in
      Alcotest.check_raises "odd multigrid grid rejected at submit"
        (Invalid_argument "Request.mg: grid must be even (coarsening)")
        (fun () ->
          ignore
            (Server.submit srv
               (Request.Mg_solve { grid = 7; levels = 2; b; tol = 1e-8; max_cycles = 4 })));
      let a = Stencil.poisson_3d 4 in
      Alcotest.check_raises "rhs length mismatch rejected at submit"
        (Invalid_argument "Request.cg: rhs length mismatch")
        (fun () ->
          ignore
            (Server.submit srv
               (Request.Cg_solve { a; b = Array.make 3 1.0; tol = 1e-8; max_iter = 10 }))))

(* Class-aware dispatch: with cap 1 on "cg", at most one cg batch is ever
   live in the pool no matter how many are queued, the held-back claims
   are counted, and everything still completes. *)
let test_sparse_class_cap () =
  let srv =
    Server.start
      { (shared_cfg 2) with Server.class_caps = [ ("cg", 1) ];
        max_batch = 1; linger_s = 0.0 }
  in
  let rng = Rng.create 7 in
  let a = Stencil.poisson_3d 8 in
  let mk () =
    Request.Cg_solve { a; b = Vec.random rng a.Csr.rows; tol = 1e-8; max_iter = 240 }
  in
  let tickets =
    List.init 6 (fun _ -> Result.get_ok (Server.submit srv (mk ())))
  in
  let over = ref 0 in
  let pending = ref tickets in
  while !pending <> [] do
    let live = Server.class_live srv "cg" in
    if live > 1 then incr over;
    pending := List.filter (fun t -> Server.poll srv t = None) !pending;
    Unix.sleepf 0.0002
  done;
  List.iter
    (fun t ->
      match (Server.await srv t).Request.outcome with
      | Ok _ -> ()
      | Error e -> Alcotest.fail ("capped request failed: " ^ Request.error_message e))
    tickets;
  Server.stop srv;
  Alcotest.(check int) "cap never exceeded" 0 !over;
  Alcotest.(check int) "uncapped kind reads zero" 0 (Server.class_live srv "spd");
  let c = Server.counters srv in
  Alcotest.(check bool) "held-back claims counted" true (c.Server.cap_deferred > 0);
  check_counters_reconcile "class cap" srv ~offered:6

(* run_mixed merges two seeded streams and reports them per class; each
   class's lattice must reconcile on its own and the survivors must match
   their own oracles. *)
let test_run_mixed_reconciles () =
  let srv =
    Server.start { (shared_cfg 2) with Server.class_caps = [ ("cg", 1) ] }
  in
  let dense =
    { Loadgen.default with seed = 5; count = 20; rate_hz = 2000.0; n = 12 }
  in
  let sparse =
    { Loadgen.seed = 67; count = 10; rate_hz = 1000.0; n = 8;
      kinds = [| Loadgen.Cg |]; deadline_s = 10.0 }
  in
  let m = Loadgen.run_mixed srv ~dense ~sparse in
  Server.stop srv;
  let class_ok what (r : Loadgen.report) ~count =
    Alcotest.(check int) (what ^ ": offered all") count r.Loadgen.offered;
    Alcotest.(check int)
      (what ^ ": offered = admitted + rejected")
      r.Loadgen.offered
      (r.Loadgen.admitted + r.Loadgen.rejected);
    Alcotest.(check int)
      (what ^ ": admitted = completed + failed")
      r.Loadgen.admitted
      (r.Loadgen.completed + r.Loadgen.failed)
  in
  class_ok "dense" m.Loadgen.m_dense ~count:dense.Loadgen.count;
  class_ok "sparse" m.Loadgen.m_sparse ~count:sparse.Loadgen.count;
  let bitwise cfg pairs =
    List.for_all
      (fun (a, (c : Request.completion)) ->
        match c.Request.outcome with
        | Ok sol ->
          Loadgen.solutions_bitwise_equal sol (Loadgen.reference_routed cfg a)
        | Error _ -> false)
      pairs
  in
  Alcotest.(check bool) "dense survivors bitwise" true
    (bitwise dense m.Loadgen.m_dense_pairs);
  Alcotest.(check bool) "sparse survivors bitwise" true
    (bitwise sparse m.Loadgen.m_sparse_pairs);
  check_counters_reconcile "run_mixed" srv
    ~offered:(dense.Loadgen.count + sparse.Loadgen.count)

(* ---- sparse fault storms (CG / GMRES / MG) ---- *)

(* Transient corruption mid-solve: every injected raise is retried and the
   replayed chain converges to the same bits — never a silent wrong
   answer. *)
let test_sparse_transient_storm () =
  let h =
    Harness.create { Harness.default with seed = 9; p_raise = 0.3; transient = true }
  in
  let srv = Server.start ~harness:h { (shared_cfg 2) with Server.max_retries = 4 } in
  let arrivals = Loadgen.schedule sparse_load in
  let tickets =
    Array.map
      (fun a -> (a, Result.get_ok (Server.submit srv (Loadgen.payload_of sparse_load a))))
      arrivals
  in
  let retried = ref 0 in
  Array.iter
    (fun (a, tk) ->
      let c = Server.await srv tk in
      retried := !retried + c.Request.retries;
      match c.Request.outcome with
      | Ok sol ->
        Alcotest.(check bool) "replayed solve still bitwise" true
          (Loadgen.solutions_bitwise_equal sol (Loadgen.reference_routed sparse_load a))
      | Error e ->
        Alcotest.fail ("transient sparse fault not retried: " ^ Request.error_message e))
    tickets;
  Server.stop srv;
  Alcotest.(check bool) "faults actually fired" true (Harness.raised h > 0);
  Alcotest.(check int) "one retry per injected raise" (Harness.raised h) !retried;
  check_counters_reconcile "sparse transient storm" srv
    ~offered:sparse_load.Loadgen.count

let test_sparse_permanent_storm () =
  let h =
    Harness.create { Harness.default with seed = 9; p_raise = 0.3; transient = false }
  in
  let srv = Server.start ~harness:h { (shared_cfg 2) with Server.max_retries = 2 } in
  let arrivals = Loadgen.schedule sparse_load in
  let tickets =
    Array.map
      (fun a -> (a, Result.get_ok (Server.submit srv (Loadgen.payload_of sparse_load a))))
      arrivals
  in
  let injected = ref 0 in
  Array.iteri
    (fun i (a, tk) ->
      let c = Server.await srv tk in
      if Harness.targets_key h i then begin
        incr injected;
        match c.Request.outcome with
        | Error (Request.Failed { attempts; _ }) ->
          Alcotest.(check int) "permanent fault exhausts retries" 3 attempts
        | Error e -> Alcotest.fail ("expected Failed, got " ^ Request.error_message e)
        | Ok _ -> Alcotest.fail "permanently injected solve cannot succeed"
      end
      else
        match c.Request.outcome with
        | Ok sol ->
          Alcotest.(check bool) "untouched solves bitwise correct" true
            (Loadgen.solutions_bitwise_equal sol (Loadgen.reference_routed sparse_load a))
        | Error e ->
          Alcotest.fail ("uninjected solve failed: " ^ Request.error_message e))
    tickets;
  Server.stop srv;
  Alcotest.(check bool) "storm injected something" true (!injected > 0);
  check_counters_reconcile "sparse permanent storm" srv
    ~offered:sparse_load.Loadgen.count

(* GMRES has no serving class yet, so its storm runs at the solver level:
   a transiently injected attempt raises, the bare retry reproduces the
   clean solve bit for bit — same discipline, one layer down. *)
let test_gmres_storm_retries_bitwise () =
  let rng = Rng.create 83 in
  let a = Stencil.convection_diffusion_2d 12 in
  let b = Vec.random rng a.Csr.rows in
  let clean = Xsc_sparse.Gmres.solve ~tol:1e-10 a b in
  Alcotest.(check bool) "clean gmres converges" true clean.Xsc_sparse.Gmres.converged;
  let h =
    Harness.create { Harness.default with seed = 5; p_raise = 1.0; transient = true }
  in
  let attempt () = Xsc_sparse.Gmres.solve ~tol:1e-10 a b in
  let rec with_retries budget =
    try Harness.wrap_thunk h ~key:0 attempt
    with Harness.Injected _ when budget > 0 -> with_retries (budget - 1)
  in
  let r = with_retries 3 in
  Alcotest.(check bool) "faults actually fired" true (Harness.raised h > 0);
  Alcotest.(check bool) "retried gmres bitwise vs clean" true
    (Loadgen.solutions_bitwise_equal (Request.Vector r.Xsc_sparse.Gmres.x)
       (Request.Vector clean.Xsc_sparse.Gmres.x))

(* ---- routing and scratch satellites ---- *)

let test_route_direct_vs_lapack () =
  (* Route.direct and the strided Lapack path are different kernel
     sequences over the same problem: equal to rounding, not bitwise *)
  let rng = Rng.create 71 in
  let n = 24 in
  let a = Mat.random_spd rng n and b = Vec.random rng n in
  let x_direct =
    match Route.direct (Request.Spd_solve (a, b)) with
    | Request.Vector x -> x
    | Request.Matrix _ -> Alcotest.fail "spd solve yields a vector"
  in
  let x_ref = Lapack.chol_solve (Mat.copy a) (Array.copy b) in
  Alcotest.(check bool) "solutions agree to rounding" true
    (Vec.dist_inf x_direct x_ref <= 1e-8 *. Vec.norm_inf x_ref);
  Alcotest.(check bool) "dd predicate accepts dominant" true
    (Route.strictly_diag_dominant (Mat.random_diag_dominant rng n));
  Alcotest.(check bool) "dd predicate rejects all-ones" false
    (Route.strictly_diag_dominant (Mat.init n n (fun _ _ -> 1.0)))

let test_scratch_reuse () =
  Scratch.set_enabled true;
  let h0 = Scratch.hits () in
  let a = Scratch.acquire_packed ~n:32 ~nb:16 in
  Scratch.release_packed a;
  let b = Scratch.acquire_packed ~n:32 ~nb:16 in
  Alcotest.(check bool) "same packed buffer back" true (a == b);
  Alcotest.(check bool) "hit counted" true (Scratch.hits () > h0);
  Scratch.release_packed b;
  let v = Scratch.acquire_vec 33 in
  Scratch.release_vec v;
  Alcotest.(check bool) "vector reused" true (Scratch.acquire_vec 33 == v);
  Scratch.set_enabled false;
  let c = Scratch.acquire_packed ~n:32 ~nb:16 in
  Alcotest.(check bool) "disabled pool allocates fresh" true (c != b);
  Scratch.set_enabled true

(* ---- batched results satellite ---- *)

let test_batched_results_isolation () =
  let rng = Rng.create 41 in
  let n = 6 in
  let batch =
    Array.init 5 (fun i ->
        if i = 2 then Mat.init n n (fun r c -> if r = c then -1.0 else 0.0)
        else Mat.random_spd rng n)
  in
  let results = Xsc_core.Batched.potrf_batch_results batch in
  Array.iteri
    (fun i r ->
      match (i, r) with
      | 2, Error (Lapack.Singular _) -> ()
      | 2, _ -> Alcotest.fail "slot 2 must fail Singular"
      | _, Ok () -> ()
      | _, Error _ -> Alcotest.fail (Printf.sprintf "slot %d poisoned by slot 2" i))
    results;
  (* raising wrapper still raises *)
  let batch2 =
    Array.init 3 (fun i ->
        if i = 1 then Mat.init n n (fun r c -> if r = c then -1.0 else 0.0)
        else Mat.random_spd rng n)
  in
  Alcotest.check_raises "raising wrapper keeps contract" (Lapack.Singular 0)
    (fun () ->
      try Xsc_core.Batched.potrf_batch batch2
      with Lapack.Singular _ -> raise (Lapack.Singular 0))

let test_harness_thunk_determinism () =
  let p = { Harness.default with seed = 5; p_raise = 0.4; transient = false } in
  let h1 = Harness.create p and h2 = Harness.create p in
  for key = 0 to 199 do
    Alcotest.(check bool)
      (Printf.sprintf "key %d decision reproducible" key)
      (Harness.targets_key h1 key) (Harness.targets_key h2 key)
  done;
  let hits = ref 0 in
  for key = 0 to 199 do
    if Harness.targets_key h1 key then incr hits
  done;
  Alcotest.(check bool) "rate in a plausible band" true (!hits > 40 && !hits < 120);
  (* transient: first call raises, second runs clean *)
  let ht = Harness.create { p with transient = true } in
  let key = ref 0 in
  while not (Harness.targets_key ht !key) do
    incr key
  done;
  Alcotest.check_raises "first attempt raises"
    (Harness.Injected (Printf.sprintf "req(%d)" !key))
    (fun () -> Harness.wrap_thunk ht ~key:!key (fun () -> ()));
  Alcotest.(check int) "retry runs clean" 7
    (Harness.wrap_thunk ht ~key:!key (fun () -> 7))

(* ---- causal spans through the server ---- *)

(* The span-propagation contract: a request's id survives batcher
   coalescing, EDF reordering and transient re-execution, and each
   execution attempt appears exactly once in the span records. A transient
   storm exercises all three at once (mixed classes coalesce, retries
   reorder completions). *)
let test_server_span_chains () =
  let h =
    Harness.create { Harness.default with seed = 9; p_raise = 0.3; transient = true }
  in
  let srv =
    Server.start ~harness:h
      { Server.default_config with workers = 2; capacity = 128; max_retries = 3 }
  in
  let arrivals = Loadgen.schedule storm_cfg in
  let tickets =
    Array.map
      (fun a -> Result.get_ok (Server.submit srv (Loadgen.payload_of storm_cfg a)))
      arrivals
  in
  let completions = Array.map (Server.await srv) tickets in
  Server.stop srv;
  Alcotest.(check bool) "retries actually happened" true (Harness.raised h > 0);
  Alcotest.(check int) "no span shed" 0 (Server.span_dropped srv);
  let by_key = Hashtbl.create 256 in
  List.iter
    (fun s -> Hashtbl.add by_key (s.Span.request, s.Span.phase) s)
    (Server.span_records srv);
  Array.iteri
    (fun i c ->
      let roots = Hashtbl.find_all by_key (i, "request") in
      Alcotest.(check int) "exactly one root per request" 1 (List.length roots);
      let root = List.hd roots in
      Alcotest.(check int) "one wait span" 1
        (List.length (Hashtbl.find_all by_key (i, "wait")));
      let atts = Hashtbl.find_all by_key (i, "attempt") in
      Alcotest.(check int) "one span per attempt" (c.Request.retries + 1)
        (List.length atts);
      let attempt_nos = List.sort_uniq compare (List.map (fun s -> s.Span.attempt) atts) in
      Alcotest.(check (list int)) "each attempt exactly once"
        (List.init (c.Request.retries + 1) Fun.id)
        attempt_nos;
      List.iter
        (fun s ->
          Alcotest.(check int) "attempts parent on the root" root.Span.span s.Span.parent)
        atts)
    completions

let test_server_spans_off () =
  let srv =
    Server.start { Server.default_config with workers = 1; spans = false }
  in
  let r = Loadgen.run_open srv { storm_cfg with Loadgen.count = 8 } in
  Server.stop srv;
  Alcotest.(check int) "all served" 8 r.Loadgen.completed;
  Alcotest.(check int) "no span records kept" 0
    (List.length (Server.span_records srv))

let test_server_span_chrome_lanes () =
  let srv = Server.start { Server.default_config with workers = 2 } in
  let count = 12 in
  let r = Loadgen.run_open srv { storm_cfg with Loadgen.count } in
  Server.stop srv;
  Alcotest.(check int) "all served" count r.Loadgen.completed;
  match Json.parse (Server.span_chrome_json srv) with
  | Json.List items ->
    Alcotest.(check bool) "events present" true (items <> []);
    let lanes = Hashtbl.create 16 in
    List.iter
      (fun it ->
        (match Json.member "pid" it with
        | Some (Json.Num 1.0) -> ()
        | _ -> Alcotest.fail "span event off pid 1");
        match (Json.member "ph" it, Json.member "tid" it) with
        | Some (Json.Str "X"), Some (Json.Num tid) ->
          Hashtbl.replace lanes (int_of_float tid) ()
        | _ -> ())
      items;
    (* one contiguous lane per request: every request id is a tid *)
    for i = 0 to count - 1 do
      Alcotest.(check bool)
        (Printf.sprintf "request %d has a lane" i)
        true (Hashtbl.mem lanes i)
    done
  | _ -> Alcotest.fail "span trace is not a JSON array"
  | exception Failure m -> Alcotest.failf "span trace unparseable: %s" m

(* ---- SLO monitors ---- *)

let test_slo_burn_rate () =
  let t = Slo.create [ { Slo.kind = "*"; latency_s = 0.1; error_budget = 0.25 } ] in
  let feed ~id ~latency_s ~failed =
    Slo.observe t ~kind:"spd" ~id ~latency_s ~failed
  in
  (* 3 clean observations: no violations, no breach *)
  for i = 0 to 2 do
    Alcotest.(check bool) "clean obs never breaches" false
      (feed ~id:i ~latency_s:0.01 ~failed:false)
  done;
  (* one slow request among four: exactly at budget, not over *)
  Alcotest.(check bool) "at budget is not a breach" false
    (feed ~id:3 ~latency_s:0.5 ~failed:false);
  (* a failure pushes past the budget: the breach edge fires once *)
  Alcotest.(check bool) "over budget breaches" true
    (feed ~id:4 ~latency_s:0.01 ~failed:true);
  Alcotest.(check bool) "already in breach: edge only fires once" false
    (feed ~id:5 ~latency_s:0.5 ~failed:false);
  Alcotest.(check bool) "breached latches" true (Slo.breached t);
  match Slo.reports t with
  | [ rep ] ->
    Alcotest.(check int) "totals" 6 rep.Slo.total;
    Alcotest.(check int) "violations" 3 rep.Slo.violations;
    Alcotest.(check int) "breach entries" 1 rep.Slo.breaches;
    Alcotest.(check bool) "burn rate over 1" true (rep.Slo.burn_rate > 1.0);
    Alcotest.(check bool) "worst offenders named" true
      (List.mem_assoc 3 rep.Slo.worst || List.mem_assoc 5 rep.Slo.worst);
    (* the serve.slo record parses as JSON *)
    (match Json.parse (Slo.report_json t) with
    | Json.Obj fields ->
      Alcotest.(check bool) "breached in record" true
        (List.assoc_opt "breached" fields = Some (Json.Bool true))
    | _ -> Alcotest.fail "report_json is not an object")
  | reps -> Alcotest.failf "expected one class report, got %d" (List.length reps)

let test_slo_validation () =
  Alcotest.check_raises "budget over 1"
    (Invalid_argument "Slo.create: error_budget must be in (0,1]") (fun () ->
      ignore (Slo.create [ { Slo.kind = "*"; latency_s = 0.1; error_budget = 1.5 } ]));
  Alcotest.check_raises "non-positive latency"
    (Invalid_argument "Slo.create: latency_s must be positive") (fun () ->
      ignore (Slo.create [ { Slo.kind = "*"; latency_s = 0.0; error_budget = 0.1 } ]))

(* ---- flight recorder through the server ---- *)

(* A permanent storm with the recorder armed: the dump must CRC-verify
   back through Flight.read and hold the failing request's whole causal
   chain — root, every exhausted attempt, and the per-attempt inject
   markers noted by the harness under the attempts' ambient context. *)
let test_server_flight_dump_on_permanent_failure () =
  let path = Filename.temp_file "xsc_serve_flight" ".bin" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      Flight.clear ();
      Flight.reset_dump_guard ();
      let h =
        Harness.create { Harness.default with seed = 9; p_raise = 0.3; transient = false }
      in
      let max_retries = 2 in
      let srv =
        Server.start ~harness:h
          { Server.default_config with
            workers = 2;
            capacity = 128;
            max_retries;
            slos = [ { Slo.kind = "*"; latency_s = 5.0; error_budget = 0.01 } ];
            flight_path = Some path;
          }
      in
      let arrivals = Loadgen.schedule storm_cfg in
      let tickets =
        Array.map
          (fun a -> Result.get_ok (Server.submit srv (Loadgen.payload_of storm_cfg a)))
          arrivals
      in
      let completions = Array.map (Server.await srv) tickets in
      Server.stop srv;
      let failing =
        Array.to_list completions
        |> List.mapi (fun i c -> (i, c))
        |> List.filter_map (fun (i, c) ->
               match c.Request.outcome with
               | Error (Request.Failed _) -> Some i
               | _ -> None)
      in
      Alcotest.(check bool) "storm produced failures" true (failing <> []);
      Alcotest.(check bool) "typed failures breach the tight budget" true
        (Server.slo_breached srv);
      match Flight.read path with
      | Error e -> Alcotest.failf "flight read: %s" (Checkpoint.describe_error e)
      | Ok d ->
        Alcotest.(check bool) "dump names a failure" true
          (d.Flight.reason <> "" && d.Flight.entries <> [||]);
        List.iter
          (fun id ->
            let mine =
              Array.to_list d.Flight.entries
              |> List.filter (fun (e : Flight.entry) -> e.Flight.request = id)
            in
            let count phase =
              List.length
                (List.filter (fun (e : Flight.entry) -> e.Flight.phase = phase) mine)
            in
            Alcotest.(check int)
              (Printf.sprintf "request %d root in dump" id)
              1 (count "request");
            Alcotest.(check int)
              (Printf.sprintf "request %d attempts in dump" id)
              (max_retries + 1) (count "attempt");
            Alcotest.(check int)
              (Printf.sprintf "request %d inject markers in dump" id)
              (max_retries + 1) (count "inject"))
          failing)

let () =
  Alcotest.run "xsc_serve"
    [
      ( "queue",
        [
          Alcotest.test_case "FIFO" `Quick test_queue_fifo;
          Alcotest.test_case "ring wraparound" `Quick test_queue_wraparound;
          Alcotest.test_case "bounded" `Quick test_queue_bounded;
          Alcotest.test_case "closed" `Quick test_queue_closed;
          Alcotest.test_case "bound under concurrent producers" `Quick
            test_queue_concurrent_bound;
        ] );
      ( "batcher",
        [
          Alcotest.test_case "size-triggered flush" `Quick test_batcher_size_flush;
          Alcotest.test_case "linger-triggered flush" `Quick test_batcher_linger_flush;
          Alcotest.test_case "deadline-urgency flush" `Quick
            test_batcher_deadline_urgency_flush;
          Alcotest.test_case "classes stay separate" `Quick test_batcher_classes_separate;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "EDF order" `Quick test_scheduler_edf_order;
          Alcotest.test_case "FIFO within deadline class" `Quick
            test_scheduler_fifo_within_class;
        ] );
      ( "loadgen",
        [
          Alcotest.test_case "seeded schedule deterministic" `Quick
            test_loadgen_deterministic;
          Alcotest.test_case "payloads deterministic" `Quick
            test_loadgen_payload_deterministic;
        ] );
      ( "server",
        [
          Alcotest.test_case "serves bitwise-correct solutions" `Quick
            test_server_serves_bitwise;
          Alcotest.test_case "isolates a singular request" `Quick
            test_server_isolates_singular;
          Alcotest.test_case "backpressure rejects typed" `Quick test_server_backpressure;
          Alcotest.test_case "rejects after stop" `Quick test_server_rejects_after_stop;
          Alcotest.test_case "fault storm: transient retried" `Quick
            test_server_fault_storm_transient;
          Alcotest.test_case "fault storm: permanent typed" `Quick
            test_server_fault_storm_permanent;
        ] );
      ( "shared",
        [
          Alcotest.test_case "mixed kinds bitwise vs routed oracle" `Quick
            test_shared_dispatch_bitwise;
          Alcotest.test_case "transient storm converges bitwise" `Quick
            test_shared_transient_storm;
          Alcotest.test_case "permanent storm fails typed" `Quick
            test_shared_permanent_storm;
          Alcotest.test_case "isolates a singular job" `Quick
            test_shared_isolates_singular;
          Alcotest.test_case "admits while a retry sleeps" `Quick
            test_shared_admission_while_retry_sleeps;
          Alcotest.test_case "soak: thousands of requests" `Slow test_shared_soak;
        ] );
      ( "sparse",
        [
          Alcotest.test_case "chains bitwise vs sequential solver" `Quick
            test_sparse_serves_bitwise;
          Alcotest.test_case "non-convergence fails typed" `Quick
            test_sparse_non_convergence_typed;
          Alcotest.test_case "malformed payloads rejected at submit" `Quick
            test_sparse_validation;
          Alcotest.test_case "class cap bounds live cg batches" `Quick
            test_sparse_class_cap;
          Alcotest.test_case "run_mixed reconciles per class" `Quick
            test_run_mixed_reconciles;
          Alcotest.test_case "transient storm converges bitwise" `Quick
            test_sparse_transient_storm;
          Alcotest.test_case "permanent storm fails typed" `Quick
            test_sparse_permanent_storm;
          Alcotest.test_case "gmres storm retries bitwise" `Quick
            test_gmres_storm_retries_bitwise;
        ] );
      ( "satellites",
        [
          Alcotest.test_case "batched per-problem results" `Quick
            test_batched_results_isolation;
          Alcotest.test_case "harness thunk determinism" `Quick
            test_harness_thunk_determinism;
          Alcotest.test_case "route direct vs lapack" `Quick test_route_direct_vs_lapack;
          Alcotest.test_case "scratch buffer reuse" `Quick test_scratch_reuse;
        ] );
      ( "spans",
        [
          Alcotest.test_case "id survives coalescing/EDF/retries" `Quick
            test_server_span_chains;
          Alcotest.test_case "spans off keeps nothing" `Quick test_server_spans_off;
          Alcotest.test_case "one chrome lane per request" `Quick
            test_server_span_chrome_lanes;
        ] );
      ( "slo",
        [
          Alcotest.test_case "burn rate and breach edge" `Quick test_slo_burn_rate;
          Alcotest.test_case "validation" `Quick test_slo_validation;
        ] );
      ( "flight",
        [
          Alcotest.test_case "permanent storm dumps failing chains" `Quick
            test_server_flight_dump_on_permanent_failure;
        ] );
    ]
