(* Tests for Xsc_obs: the monotonic clock, the per-domain event rings, the
   tracer and the metrics registry (exactness under concurrent domains). *)

module Clock = Xsc_obs.Clock
module Ring = Xsc_obs.Ring
module Tracer = Xsc_obs.Tracer
module Metrics = Xsc_obs.Metrics
module Json = Xsc_util.Json

(* ---- Clock ---- *)

let test_clock_monotonic () =
  let a = Clock.now_ns () in
  let b = Clock.now_ns () in
  let c = Clock.now_ns () in
  Alcotest.(check bool) "never goes backwards" true (a <= b && b <= c);
  Alcotest.(check bool) "positive" true (a > 0)

let test_clock_advances () =
  let t0 = Clock.now_ns () in
  (* ~1 ms of real work so even a coarse clock must tick *)
  let acc = ref 0.0 in
  while Clock.now_ns () - t0 < 1_000_000 do
    acc := !acc +. 1.0
  done;
  Alcotest.(check bool) "advanced by >= 1ms" true (Clock.now_ns () - t0 >= 1_000_000)

let test_clock_seconds () =
  let s = Clock.now_s () in
  Alcotest.(check bool) "seconds positive" true (s > 0.0);
  Alcotest.(check (float 1e-9)) "ns_to_s" 1.5 (Clock.ns_to_s 1_500_000_000)

(* ---- Ring ---- *)

let test_ring_basic () =
  let r = Ring.create ~capacity:8 in
  Alcotest.(check int) "capacity" 8 (Ring.capacity r);
  ignore (Ring.record r ~kind:1 ~t_ns:100 ~arg:7);
  ignore (Ring.record r ~kind:2 ~t_ns:200 ~arg:8);
  Alcotest.(check int) "length" 2 (Ring.length r);
  let k, t, a = Ring.get r 0 in
  Alcotest.(check (triple int int int)) "first record" (1, 100, 7) (k, t, a);
  let k, t, a = Ring.get r 1 in
  Alcotest.(check (triple int int int)) "second record" (2, 200, 8) (k, t, a)

let test_ring_overflow_drops_newest () =
  let r = Ring.create ~capacity:4 in
  for i = 0 to 9 do
    ignore (Ring.record r ~kind:0 ~t_ns:i ~arg:i)
  done;
  Alcotest.(check int) "full" 4 (Ring.length r);
  Alcotest.(check int) "dropped the overflow" 6 (Ring.dropped r);
  (* drop-newest: the oldest records survive, so the prefix is intact *)
  let _, t0, _ = Ring.get r 0 in
  let _, t3, _ = Ring.get r 3 in
  Alcotest.(check int) "oldest kept" 0 t0;
  Alcotest.(check int) "prefix kept" 3 t3

let test_ring_iter_clear () =
  let r = Ring.create ~capacity:8 in
  for i = 0 to 4 do
    ignore (Ring.record r ~kind:i ~t_ns:(10 * i) ~arg:0)
  done;
  let seen = ref [] in
  Ring.iter r ~f:(fun ~kind ~t_ns:_ ~arg:_ -> seen := kind :: !seen);
  Alcotest.(check (list int)) "iter in order" [ 0; 1; 2; 3; 4 ] (List.rev !seen);
  Ring.clear r;
  Alcotest.(check int) "cleared" 0 (Ring.length r);
  Alcotest.(check int) "dropped reset" 0 (Ring.dropped r)

(* ---- Tracer ---- *)

let test_tracer_records_events () =
  let t = Tracer.create ~domains:2 ~capacity:16 in
  Tracer.record t ~domain:0 Tracer.Task_start ~arg:5;
  Tracer.record t ~domain:0 Tracer.Task_finish ~arg:5;
  Tracer.record t ~domain:1 Tracer.Steal ~arg:0;
  let e0 = Tracer.events t ~domain:0 in
  let e1 = Tracer.events t ~domain:1 in
  Alcotest.(check int) "domain 0 events" 2 (List.length e0);
  Alcotest.(check int) "domain 1 events" 1 (List.length e1);
  (match e0 with
  | [ a; b ] ->
    Alcotest.(check bool) "kinds" true
      (a.Tracer.kind = Tracer.Task_start && b.Tracer.kind = Tracer.Task_finish);
    Alcotest.(check int) "arg" 5 a.Tracer.arg;
    Alcotest.(check bool) "timestamps ordered" true (a.Tracer.t_ns <= b.Tracer.t_ns);
    Alcotest.(check bool) "after origin" true (a.Tracer.t_ns >= Tracer.origin_ns t)
  | _ -> Alcotest.fail "expected two events");
  Alcotest.(check int) "domains" 2 (Tracer.domains t);
  Alcotest.(check int) "nothing dropped" 0 (Tracer.dropped t)

let test_tracer_env_toggle () =
  (* only the documented truthy values enable tracing *)
  Alcotest.(check bool) "unset -> off" true
    (match Sys.getenv_opt "XSC_TRACE" with None -> not (Tracer.enabled_by_env ()) | Some _ -> true)

(* ---- Metrics ---- *)

let test_counter_exact_concurrent () =
  Metrics.reset ();
  let c = Metrics.counter "test.concurrent" in
  let domains =
    Array.init 8 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 10_000 do
              Metrics.incr c
            done))
  in
  Array.iter Domain.join domains;
  Alcotest.(check int) "8 domains x 10000 incr" 80_000 (Metrics.counter_value c)

let test_counter_find_or_create () =
  let a = Metrics.counter "test.same" in
  let b = Metrics.counter "test.same" in
  Metrics.add a 3;
  Metrics.add b 4;
  Alcotest.(check int) "one underlying counter" 7 (Metrics.counter_value a)

let test_counter_shard_addressing () =
  let c = Metrics.counter ~shards:4 "test.sharded" in
  Metrics.add_to_shard c ~shard:0 5;
  Metrics.add_to_shard c ~shard:3 7;
  Metrics.add_to_shard c ~shard:4 1;
  (* wraps modulo shard count *)
  Alcotest.(check int) "sum over shards" 13 (Metrics.counter_value c)

let test_gauge () =
  let g = Metrics.gauge "test.gauge" in
  Metrics.set_gauge g 2.5;
  Alcotest.(check (float 0.0)) "set/get" 2.5 (Metrics.gauge_value g)

let test_histogram () =
  let h = Metrics.histogram "test.hist" in
  List.iter (Metrics.observe h) [ 0.001; 0.002; 0.004; 0.1 ];
  Alcotest.(check int) "count" 4 (Metrics.histogram_count h);
  Alcotest.(check (float 1e-9)) "sum" 0.107 (Metrics.histogram_sum h);
  let p50 = Metrics.quantile h 0.5 in
  Alcotest.(check bool) "p50 bracketed" true (p50 >= 0.002 && p50 <= 0.008);
  Alcotest.(check bool) "p100 >= max bucket lower bound" true (Metrics.quantile h 1.0 >= 0.1)

let test_name_type_clash () =
  ignore (Metrics.counter "test.clash");
  Alcotest.check_raises "counter vs gauge"
    (Invalid_argument "Metrics: \"test.clash\" already registered as another type")
    (fun () -> ignore (Metrics.gauge "test.clash"))

let test_snapshot_and_json () =
  Metrics.reset ();
  let c = Metrics.counter "test.json.counter" in
  Metrics.add c 42;
  let g = Metrics.gauge "test.json.gauge" in
  Metrics.set_gauge g 1.5;
  let h = Metrics.histogram "test.json.hist" in
  Metrics.observe h 0.25;
  let snap = Metrics.snapshot () in
  Alcotest.(check bool) "counter in snapshot" true
    (List.exists
       (fun (n, v) -> n = "test.json.counter" && v = Metrics.Counter 42)
       snap);
  (* the JSON export must be valid JSON with our values in place *)
  let json = Json.parse (Metrics.to_json ()) in
  (match Json.member "counters" json with
  | Some (Json.Obj fields) ->
    Alcotest.(check bool) "counter exported" true
      (List.mem_assoc "test.json.counter" fields
      && List.assoc "test.json.counter" fields = Json.Num 42.0)
  | _ -> Alcotest.fail "no counters object");
  match Json.member "histograms" json with
  | Some (Json.Obj fields) ->
    Alcotest.(check bool) "histogram exported" true (List.mem_assoc "test.json.hist" fields);
    (match List.assoc "test.json.hist" fields with
    | Json.Obj h ->
      List.iter
        (fun q ->
          Alcotest.(check bool) (q ^ " exported") true (List.mem_assoc q h))
        [ "p50"; "p95"; "p99"; "p999" ]
    | _ -> Alcotest.fail "histogram is not an object")
  | _ -> Alcotest.fail "no histograms object"

(* The bucket-quantile contract: the estimate is the bucket upper bound,
   so it never understates and overstates by at most 2x. *)
let test_histogram_tail_quantiles () =
  let h = Metrics.histogram "test.hist.tail" in
  (* 999 fast observations and one 1000x-slower outlier *)
  for _ = 1 to 999 do
    Metrics.observe h 0.001
  done;
  Metrics.observe h 1.0;
  let p50 = Metrics.quantile h 0.5
  and p99 = Metrics.quantile h 0.99
  and p999 = Metrics.quantile h 0.999
  and p1000 = Metrics.quantile h 1.0 in
  Alcotest.(check bool) "p50 brackets the mode" true (p50 >= 0.001 && p50 <= 0.002);
  Alcotest.(check bool) "p99 still in the mode bucket" true (p99 <= 0.002);
  Alcotest.(check bool) "p999 still in the mode bucket" true (p999 <= 0.002);
  Alcotest.(check bool) "p100 sees the outlier, never understates" true
    (p1000 >= 1.0 && p1000 <= 2.0)

let test_metrics_delta () =
  Metrics.reset ();
  let c = Metrics.counter "test.delta.counter" in
  let g = Metrics.gauge "test.delta.gauge" in
  let h = Metrics.histogram "test.delta.hist" in
  Metrics.add c 10;
  Metrics.set_gauge g 1.0;
  Metrics.observe h 0.5;
  let before = Metrics.snapshot () in
  Metrics.add c 7;
  Metrics.set_gauge g 9.0;
  Metrics.observe h 0.25;
  Metrics.observe h 0.25;
  let fresh = Metrics.counter "test.delta.fresh" in
  Metrics.add fresh 3;
  let d = Metrics.delta ~before ~after:(Metrics.snapshot ()) in
  (match List.assoc "test.delta.counter" d with
  | Metrics.Counter n -> Alcotest.(check int) "counter subtracts" 7 n
  | _ -> Alcotest.fail "counter kind changed");
  (match List.assoc "test.delta.gauge" d with
  | Metrics.Gauge v -> Alcotest.(check (float 0.0)) "gauge is a level: after wins" 9.0 v
  | _ -> Alcotest.fail "gauge kind changed");
  (match List.assoc "test.delta.hist" d with
  | Metrics.Histogram s ->
    Alcotest.(check int) "hist count subtracts" 2 s.Metrics.count;
    Alcotest.(check (float 1e-9)) "hist sum subtracts" 0.5 s.Metrics.sum
  | _ -> Alcotest.fail "histogram kind changed");
  match List.assoc "test.delta.fresh" d with
  | Metrics.Counter n -> Alcotest.(check int) "absent-from-before passes through" 3 n
  | _ -> Alcotest.fail "fresh counter kind changed"

(* ---- Span ---- *)

module Span = Xsc_obs.Span

let span_rec ?(request = 1) ?(span = 10) ?(parent = -1) ?(phase = "request")
    ?(start_ns = 100) ?(finish_ns = 200) () =
  { Span.request; span; parent; phase; name = "t"; lane = 0; attempt = 0;
    start_ns; finish_ns }

let test_span_ids_and_children () =
  let a = Span.root ~request:7 in
  let b = Span.child a in
  let c = Span.child b in
  Alcotest.(check int) "root has no parent" (-1) a.Span.parent;
  Alcotest.(check int) "child keeps the request" 7 b.Span.request;
  Alcotest.(check int) "child parents on root" a.Span.span b.Span.parent;
  Alcotest.(check int) "grandchild parents on child" b.Span.span c.Span.parent;
  Alcotest.(check bool) "ids strictly increase" true
    (a.Span.span < b.Span.span && b.Span.span < c.Span.span);
  let first = Span.fresh_id () in
  let second = Span.fresh_id () in
  Alcotest.(check bool) "fresh ids never repeat" true (first < second)

let test_span_ambient_restores () =
  Span.set_current None;
  let ctx = Span.root ~request:3 in
  Span.with_current (Some ctx) (fun () ->
      Alcotest.(check bool) "set inside" true (Span.current () = Some ctx));
  Alcotest.(check bool) "restored on return" true (Span.current () = None);
  (try
     Span.with_current (Some ctx) (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check bool) "restored on raise" true (Span.current () = None)

let test_span_collector_bounded_tee () =
  let teed = ref 0 in
  let c = Span.collector ~capacity:4 ~tee:(fun _ -> incr teed) () in
  for i = 0 to 9 do
    Span.record c (span_rec ~span:(100 + i) ())
  done;
  Alcotest.(check int) "bounded" 4 (List.length (Span.records c));
  Alcotest.(check int) "drop-newest counted" 6 (Span.dropped c);
  (* the tee fires before the capacity check: a flight ring sees shed
     records the collector itself never keeps *)
  Alcotest.(check int) "tee saw every record" 10 !teed;
  (* drop-newest: the oldest records survive *)
  match Span.records c with
  | first :: _ -> Alcotest.(check int) "oldest kept" 100 first.Span.span
  | [] -> Alcotest.fail "empty collector"

let test_span_note_ambient () =
  let c = Span.collector () in
  Span.install (Some c);
  Fun.protect
    ~finally:(fun () ->
      Span.install None;
      Span.set_current None)
    (fun () ->
      (* no ambient context: note must be a silent no-op *)
      Span.note ~phase:"task" ~name:"orphan" ~lane:0 ~attempt:0 ~start_ns:1 ~finish_ns:2;
      Alcotest.(check int) "no ambient, no record" 0 (List.length (Span.records c));
      Alcotest.(check bool) "inactive without ambient" false (Span.active ());
      let ctx = Span.root ~request:5 in
      Span.with_current (Some ctx) (fun () ->
          Alcotest.(check bool) "active with both" true (Span.active ());
          Span.note ~phase:"task" ~name:"k" ~lane:2 ~attempt:1 ~start_ns:10 ~finish_ns:20);
      match Span.records c with
      | [ r ] ->
        Alcotest.(check int) "request from ambient" 5 r.Span.request;
        Alcotest.(check int) "parented on ambient" ctx.Span.span r.Span.parent;
        Alcotest.(check string) "phase" "task" r.Span.phase;
        Alcotest.(check int) "lane" 2 r.Span.lane
      | rs -> Alcotest.failf "expected 1 record, got %d" (List.length rs))

let test_span_chrome_export () =
  let parent = span_rec ~request:9 ~span:50 ~parent:(-1) ~phase:"request" () in
  let child =
    span_rec ~request:9 ~span:51 ~parent:50 ~phase:"attempt" ~start_ns:120 ~finish_ns:180 ()
  in
  let events = Span.chrome_events ~origin_ns:100 [ parent; child ] in
  (* 2 complete events + an s/f flow pair for the parented child *)
  Alcotest.(check int) "2 X + 2 flow events" 4 (List.length events);
  let json = Json.parse (Span.to_chrome_json ~origin_ns:100 [ parent; child ]) in
  match json with
  | Json.List items ->
    Alcotest.(check int) "array arity" 4 (List.length items);
    let phases =
      List.filter_map
        (fun it ->
          match Json.member "ph" it with Some (Json.Str s) -> Some s | _ -> None)
        items
    in
    List.iter
      (fun ph ->
        Alcotest.(check bool) ("has ph " ^ ph) true (List.mem ph phases))
      [ "X"; "s"; "f" ];
    (* every event lands on the request's lane: pid 1, tid = request id *)
    List.iter
      (fun it ->
        match (Json.member "pid" it, Json.member "tid" it) with
        | Some (Json.Num 1.0), Some (Json.Num 9.0) -> ()
        | _ -> Alcotest.fail "event off the request lane")
      items
  | _ -> Alcotest.fail "not a JSON array"

(* ---- Gcstat ---- *)

module Gcstat = Xsc_obs.Gcstat

let test_gcstat_delta () =
  let before = Gcstat.snap () in
  (* allocate ~80k words so the minor-heap delta must move *)
  let keep = ref [] in
  for i = 0 to 9_999 do
    keep := (i, float_of_int i) :: !keep
  done;
  ignore (Sys.opaque_identity !keep);
  let after = Gcstat.snap () in
  let d = Gcstat.delta ~before ~after in
  Alcotest.(check bool) "minor words grew" true (d.Gcstat.minor_words > 40_000.0);
  Alcotest.(check bool) "heap_words is a level from after" true
    (d.Gcstat.heap_words = after.Gcstat.heap_words);
  Alcotest.(check bool) "collections non-negative" true (d.Gcstat.minor_collections >= 0)

let test_gcstat_phase_gauges () =
  Metrics.reset ();
  let out =
    Gcstat.phase "testphase" (fun () ->
        let keep = Array.init 20_000 (fun i -> float_of_int i) in
        Array.length (Sys.opaque_identity keep))
  in
  Alcotest.(check int) "phase returns the result" 20_000 out;
  Alcotest.(check bool) "phase gauge published" true
    (Metrics.gauge_value (Metrics.gauge "gc.testphase.minor_words") > 10_000.0);
  (* gauges are set even when the phase raises *)
  (try Gcstat.phase "testraise" (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check bool) "raise still publishes" true
    (List.mem_assoc "gc.testraise.minor_words" (Metrics.snapshot ()))

let () =
  Alcotest.run "xsc_obs"
    [
      ( "clock",
        [
          Alcotest.test_case "monotonic" `Quick test_clock_monotonic;
          Alcotest.test_case "advances" `Quick test_clock_advances;
          Alcotest.test_case "seconds" `Quick test_clock_seconds;
        ] );
      ( "ring",
        [
          Alcotest.test_case "basic" `Quick test_ring_basic;
          Alcotest.test_case "overflow drops newest" `Quick test_ring_overflow_drops_newest;
          Alcotest.test_case "iter/clear" `Quick test_ring_iter_clear;
        ] );
      ( "tracer",
        [
          Alcotest.test_case "records events" `Quick test_tracer_records_events;
          Alcotest.test_case "env toggle" `Quick test_tracer_env_toggle;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "exact under 8 domains" `Quick test_counter_exact_concurrent;
          Alcotest.test_case "find-or-create" `Quick test_counter_find_or_create;
          Alcotest.test_case "shard addressing" `Quick test_counter_shard_addressing;
          Alcotest.test_case "gauge" `Quick test_gauge;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "tail quantiles" `Quick test_histogram_tail_quantiles;
          Alcotest.test_case "name/type clash" `Quick test_name_type_clash;
          Alcotest.test_case "snapshot and JSON" `Quick test_snapshot_and_json;
          Alcotest.test_case "snapshot delta" `Quick test_metrics_delta;
        ] );
      ( "span",
        [
          Alcotest.test_case "ids and children" `Quick test_span_ids_and_children;
          Alcotest.test_case "ambient restores" `Quick test_span_ambient_restores;
          Alcotest.test_case "collector bounded + tee" `Quick
            test_span_collector_bounded_tee;
          Alcotest.test_case "note uses ambient context" `Quick test_span_note_ambient;
          Alcotest.test_case "chrome export" `Quick test_span_chrome_export;
        ] );
      ( "gcstat",
        [
          Alcotest.test_case "snap/delta" `Quick test_gcstat_delta;
          Alcotest.test_case "phase gauges" `Quick test_gcstat_phase_gauges;
        ] );
    ]
