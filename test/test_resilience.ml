(* Tests for Xsc_resilience: Young/Daly checkpointing, ABFT checksums,
   fault injection, the runtime fault harness, checkpoint file hardening. *)

open Xsc_linalg
module Checkpoint = Xsc_resilience.Checkpoint
module Flight = Xsc_resilience.Flight
module Abft = Xsc_resilience.Abft
module Inject = Xsc_resilience.Inject
module Harness = Xsc_resilience.Harness
module Task = Xsc_runtime.Task
module PkD = Xsc_tile.Packed.D
module PkS = Xsc_tile.Packed.S
module Rng = Xsc_util.Rng

let qcheck tc = QCheck_alcotest.to_alcotest tc

let counter_value name =
  match List.assoc_opt name (Xsc_obs.Metrics.snapshot ()) with
  | Some (Xsc_obs.Metrics.Counter n) -> n
  | _ -> 0

let params = { Checkpoint.work = 7200.0; checkpoint_cost = 15.0; restart_cost = 60.0; mtbf = 1800.0 }

(* ---- Checkpoint ---- *)

let test_young_formula () =
  Alcotest.(check (float 1e-9)) "sqrt(2CM)"
    (sqrt (2.0 *. 15.0 *. 1800.0))
    (Checkpoint.young_interval params)

let test_daly_close_to_young_when_c_small () =
  let p = { params with checkpoint_cost = 1.0; mtbf = 1e6 } in
  let young = Checkpoint.young_interval p and daly = Checkpoint.daly_interval p in
  Alcotest.(check bool) "within 2%" true (abs_float (daly -. young) /. young < 0.02)

let test_expected_time_exceeds_work () =
  let t = Checkpoint.expected_time params ~interval:(Checkpoint.daly_interval params) in
  Alcotest.(check bool) "overhead positive" true (t > params.Checkpoint.work)

let test_checkpoint_save_load_roundtrip () =
  let rng = Rng.create 31 in
  let m = Mat.random rng 17 23 in
  let path = Filename.temp_file "xsc_ckpt" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let writes0 = counter_value "checkpoint.writes" in
      let bytes = Checkpoint.save path m in
      Alcotest.(check bool) "non-trivial size" true (bytes > 17 * 23 * 8 / 2);
      Alcotest.(check int) "size matches the file" bytes
        (let ic = open_in_bin path in
         let n = in_channel_length ic in
         close_in ic;
         n);
      (match Checkpoint.load path with
      | Error e -> Alcotest.failf "load failed: %s" (Checkpoint.describe_error e)
      | Ok m' ->
        Alcotest.(check bool) "round-trips bitwise" true
          (m'.Mat.rows = m.Mat.rows && m'.Mat.cols = m.Mat.cols && m'.Mat.data = m.Mat.data));
      Alcotest.(check int) "write counted" (writes0 + 1) (counter_value "checkpoint.writes"))

let test_expected_time_convex_minimum () =
  (* the optimum beats both a too-short and a too-long interval *)
  let tau = Checkpoint.daly_interval params in
  let at x = Checkpoint.expected_time params ~interval:x in
  Alcotest.(check bool) "beats tau/8" true (at tau < at (tau /. 8.0));
  Alcotest.(check bool) "beats 8 tau" true (at tau < at (8.0 *. tau))

let test_simulation_matches_model () =
  let rng = Rng.create 42 in
  let tau = Checkpoint.daly_interval params in
  let sim = Checkpoint.simulate_mean ~runs:400 rng params ~interval:tau in
  let model = Checkpoint.expected_time params ~interval:tau in
  Alcotest.(check bool)
    (Printf.sprintf "sim %.0f within 15%% of model %.0f" sim model)
    true
    (abs_float (sim -. model) /. model < 0.15)

let test_simulation_minimum_near_daly () =
  (* simulated time at the Daly interval beats far-off intervals *)
  let rng = Rng.create 43 in
  let tau = Checkpoint.daly_interval params in
  let at x = Checkpoint.simulate_mean ~runs:300 rng params ~interval:x in
  let t_opt = at tau in
  Alcotest.(check bool) "beats tau/8" true (t_opt < at (tau /. 8.0));
  Alcotest.(check bool) "beats 8 tau" true (t_opt < at (8.0 *. tau))

let test_simulate_no_failures_limit () =
  (* with an enormous MTBF the run is just work + checkpoints *)
  let p = { params with mtbf = 1e15 } in
  let rng = Rng.create 44 in
  let t = Checkpoint.simulate rng p ~interval:720.0 in
  let segments = 7200.0 /. 720.0 in
  let expected = 7200.0 +. ((segments -. 1.0) *. 15.0) in
  Alcotest.(check (float 1.0)) "work + C per non-final segment" expected t

let test_efficiency_bounds () =
  let e = Checkpoint.efficiency params ~interval:(Checkpoint.daly_interval params) in
  Alcotest.(check bool) "in (0,1)" true (e > 0.0 && e < 1.0)

let test_checkpoint_validation () =
  Alcotest.check_raises "bad params" (Invalid_argument "Checkpoint: invalid parameters")
    (fun () -> ignore (Checkpoint.young_interval { params with mtbf = 0.0 }));
  Alcotest.check_raises "bad interval"
    (Invalid_argument "Checkpoint.expected_time: interval must be positive") (fun () ->
      ignore (Checkpoint.expected_time params ~interval:0.0))

(* ---- ABFT gemm ---- *)

let test_gemm_protected_clean () =
  let rng = Rng.create 1 in
  let a = Mat.random rng 8 6 and b = Mat.random rng 6 10 in
  let p = Abft.gemm_protected a b in
  Alcotest.(check (list (pair int int))) "no mismatches" [] (Abft.verify_product p);
  Alcotest.(check bool) "decodes to the product" true
    (Mat.approx_equal ~tol:1e-10 (Blas.gemm_new a b) (Abft.decode_product p))

let prop_gemm_single_error_corrected =
  QCheck.Test.make ~name:"single corrupted entry is located and corrected" ~count:50
    QCheck.(triple (int_range 0 7) (int_range 0 9) (float_range 0.5 100.0))
    (fun (i, j, delta) ->
      let rng = Rng.create ((i * 11) + j) in
      let a = Mat.random rng 8 6 and b = Mat.random rng 6 10 in
      let p = Abft.gemm_protected a b in
      Inject.corrupt_entry p.Abft.full i j ~delta;
      let located = Abft.verify_product p in
      let fixed = Abft.correct_product p in
      located = [ (i, j) ] && fixed = 1
      && Mat.approx_equal ~tol:1e-8 (Blas.gemm_new a b) (Abft.decode_product p))

let test_gemm_two_errors_distinct_rows_cols () =
  let rng = Rng.create 3 in
  let a = Mat.random rng 8 6 and b = Mat.random rng 6 10 in
  let p = Abft.gemm_protected a b in
  Inject.corrupt_entry p.Abft.full 1 2 ~delta:5.0;
  Inject.corrupt_entry p.Abft.full 4 7 ~delta:(-3.0);
  (* the row/col intersection now has 4 candidates; only the 2 real ones
     show matching row/col discrepancies and get fixed *)
  let fixed = Abft.correct_product p in
  Alcotest.(check int) "both corrected" 2 fixed;
  Alcotest.(check bool) "product restored" true
    (Mat.approx_equal ~tol:1e-8 (Blas.gemm_new a b) (Abft.decode_product p))

let test_gemm_correct_noop_when_clean () =
  let rng = Rng.create 4 in
  let a = Mat.random rng 5 5 and b = Mat.random rng 5 5 in
  let p = Abft.gemm_protected a b in
  Alcotest.(check int) "nothing to fix" 0 (Abft.correct_product p)

(* ---- ABFT cholesky ---- *)

let chol_fixture seed n =
  let rng = Rng.create seed in
  let a = Mat.random_spd rng n in
  let f = Mat.copy a in
  Lapack.potrf f;
  (a, Mat.lower f)

let test_verify_cholesky_clean () =
  let a, l = chol_fixture 5 24 in
  Alcotest.(check (option int)) "clean factor passes" None (Abft.verify_cholesky ~l a)

let prop_cholesky_corruption_detected_and_recovered =
  QCheck.Test.make ~name:"corrupted L entry detected at row <= j, lineage-recovered"
    ~count:30
    QCheck.(pair (int_range 1 23) (float_range 0.01 10.0))
    (fun (i, delta) ->
      let a, l = chol_fixture 7 24 in
      let j = i / 2 in
      Inject.corrupt_entry l i j ~delta;
      match Abft.verify_cholesky ~l a with
      | None -> false
      | Some row ->
        row <= j
        && begin
             Abft.recover_cholesky_rows ~a ~l ~from:row;
             Abft.verify_cholesky ~l a = None
           end)

let test_cholesky_bitflip_detected () =
  let a, l = chol_fixture 9 16 in
  let rng = Rng.create 77 in
  (* low-order flips fall below the numerical detection threshold, so the
     guarantee is that flips of consequential bits are caught: succeed if
     any flip within the attempt budget is detected *)
  let rec try_flip attempts =
    if attempts = 0 then false
    else begin
      let l' = Mat.copy l in
      let _ = Inject.flip_mantissa_bit rng l' in
      Abft.verify_cholesky ~l:l' a <> None || try_flip (attempts - 1)
    end
  in
  Alcotest.(check bool) "a significant bit flip is caught" true (try_flip 50)

let test_recover_rows_full_refactor () =
  (* recovery from row 0 recomputes the entire factor *)
  let a, l = chol_fixture 11 16 in
  let damaged = Mat.map (fun _ -> 0.0) l in
  Abft.recover_cholesky_rows ~a ~l:damaged ~from:0;
  Alcotest.(check bool) "matches potrf" true (Mat.approx_equal ~tol:1e-8 l damaged)

(* ---- ABFT LU ---- *)

let lu_fixture seed n =
  let rng = Rng.create seed in
  let a = Mat.random_diag_dominant rng n in
  let f = Mat.copy a in
  Lapack.getrf_nopiv f;
  (a, f)

let test_verify_lu_clean () =
  let a, lu = lu_fixture 31 20 in
  Alcotest.(check (option int)) "clean factor passes" None (Abft.verify_lu ~lu a)

let prop_lu_corruption_detected_and_recovered =
  QCheck.Test.make ~name:"corrupted LU entry detected and lineage-recovered" ~count:30
    QCheck.(triple (int_range 0 19) (int_range 0 19) (float_range 0.05 5.0))
    (fun (i, j, delta) ->
      let a, lu = lu_fixture 37 20 in
      let clean = Mat.copy lu in
      Inject.corrupt_entry lu i j ~delta;
      match Abft.verify_lu ~lu a with
      | None -> false
      | Some row ->
        Abft.recover_lu_rows ~a ~lu ~from:row;
        Abft.verify_lu ~lu a = None && Mat.approx_equal ~tol:1e-8 clean lu)

let test_recover_lu_full_refactor () =
  let a, lu = lu_fixture 41 16 in
  let damaged = Mat.map (fun _ -> 0.0) lu in
  Abft.recover_lu_rows ~a ~lu:damaged ~from:0;
  Alcotest.(check bool) "matches getrf_nopiv" true (Mat.approx_equal ~tol:1e-8 lu damaged)

let test_overhead_model () =
  (* one extra checksum tile row/col on an nt x nt tiled matrix *)
  Alcotest.(check bool) "shrinks with nt" true
    (Abft.overhead_model ~n:4096 ~nb:128 < Abft.overhead_model ~n:1024 ~nb:128);
  Alcotest.(check bool) "small at scale" true (Abft.overhead_model ~n:8192 ~nb:128 < 0.05)

(* ---- Inject ---- *)

let test_corrupt_random_entry () =
  let rng = Rng.create 21 in
  let m = Mat.create 6 6 in
  let i, j = Inject.corrupt_random_entry rng m ~magnitude:3.0 in
  Alcotest.(check (float 0.0)) "entry changed by +-magnitude" 3.0 (abs_float (Mat.get m i j))

let test_corrupt_lower_entry () =
  let rng = Rng.create 23 in
  for _ = 1 to 50 do
    let m = Mat.create 8 8 in
    let i, j = Inject.corrupt_lower_entry rng m ~magnitude:1.0 in
    Alcotest.(check bool) "strictly lower" true (i > j)
  done

let test_flip_mantissa_changes_value () =
  let rng = Rng.create 25 in
  let m = Mat.init 4 4 (fun _ _ -> 1.234) in
  let i, j = Inject.flip_mantissa_bit rng m in
  Alcotest.(check bool) "value changed, still finite" true
    (Mat.get m i j <> 1.234 && Float.is_finite (Mat.get m i j))

(* ---- ABFT recovery edge cases ---- *)

(* Recover until verification passes; [recover_*_rows ~from] recomputes a
   suffix of rows, so one pass from the first bad row should suffice — the
   budgeted loop keeps the test honest either way. *)
let recover_until_clean ~budget verify recover =
  let rec go budget =
    match verify () with
    | None -> ()
    | Some row ->
      if budget = 0 then Alcotest.fail "recovery did not converge";
      recover row;
      go (budget - 1)
  in
  go budget

let test_recover_cholesky_last_row () =
  let a, l = chol_fixture 13 16 in
  let damaged = Mat.copy l in
  Inject.corrupt_entry damaged 15 15 ~delta:3.0;
  recover_until_clean ~budget:2
    (fun () -> Abft.verify_cholesky ~l:damaged a)
    (fun row -> Abft.recover_cholesky_rows ~a ~l:damaged ~from:row);
  Alcotest.(check bool) "last diagonal entry recovered" true
    (Mat.approx_equal ~tol:1e-8 l damaged)

let test_recover_cholesky_multiple_rows () =
  let a, l = chol_fixture 17 20 in
  let damaged = Mat.copy l in
  Inject.corrupt_entry damaged 4 2 ~delta:2.0;
  Inject.corrupt_entry damaged 11 9 ~delta:(-4.0);
  Inject.corrupt_entry damaged 19 16 ~delta:1.5;
  recover_until_clean ~budget:4
    (fun () -> Abft.verify_cholesky ~l:damaged a)
    (fun row -> Abft.recover_cholesky_rows ~a ~l:damaged ~from:row);
  Alcotest.(check bool) "all three rows recovered" true
    (Mat.approx_equal ~tol:1e-8 l damaged)

let test_recover_lu_last_row () =
  let a, lu = lu_fixture 43 16 in
  let damaged = Mat.copy lu in
  Inject.corrupt_entry damaged 15 15 ~delta:2.0;
  recover_until_clean ~budget:2
    (fun () -> Abft.verify_lu ~lu:damaged a)
    (fun row -> Abft.recover_lu_rows ~a ~lu:damaged ~from:row);
  Alcotest.(check bool) "last row recovered" true
    (Mat.approx_equal ~tol:1e-8 lu damaged)

let test_recover_lu_multiple_rows () =
  let a, lu = lu_fixture 47 20 in
  let damaged = Mat.copy lu in
  Inject.corrupt_entry damaged 3 7 ~delta:1.0;
  Inject.corrupt_entry damaged 10 2 ~delta:(-2.0);
  Inject.corrupt_entry damaged 19 19 ~delta:0.5;
  recover_until_clean ~budget:4
    (fun () -> Abft.verify_lu ~lu:damaged a)
    (fun row -> Abft.recover_lu_rows ~a ~lu:damaged ~from:row);
  Alcotest.(check bool) "all three rows recovered" true
    (Mat.approx_equal ~tol:1e-8 lu damaged)

(* ---- packed-storage inject ---- *)

let test_packed_inject_entry () =
  let p = PkD.create ~n:18 ~nb:6 in
  let injected0 = counter_value "resilience.faults_injected" in
  Inject.corrupt_packed_entry p 7 11 ~delta:2.5;
  Alcotest.(check (float 0.0)) "entry bumped in place" 2.5 (PkD.get p 7 11);
  Alcotest.(check int) "fault tallied" (injected0 + 1)
    (counter_value "resilience.faults_injected")

let test_packed_inject_random_entry () =
  let rng = Rng.create 61 in
  let p = PkD.create ~n:18 ~nb:6 in
  let i, j = Inject.corrupt_random_packed_entry rng p ~magnitude:3.0 in
  Alcotest.(check bool) "coords in range" true (i >= 0 && i < 18 && j >= 0 && j < 18);
  Alcotest.(check (float 0.0)) "changed by +-magnitude" 3.0 (abs_float (PkD.get p i j))

let test_packed_inject_random_tile () =
  let rng = Rng.create 63 in
  let p = PkD.create ~n:18 ~nb:6 in
  let ti, tj = Inject.corrupt_random_packed_tile rng p ~magnitude:1.0 in
  Alcotest.(check bool) "tile coords in range" true
    (ti >= 0 && ti < p.PkD.nt && tj >= 0 && tj < p.PkD.nt);
  (* exactly one entry of that tile changed *)
  let changed = ref 0 in
  for r = ti * 6 to (ti * 6) + 5 do
    for c = tj * 6 to (tj * 6) + 5 do
      if PkD.get p r c <> 0.0 then incr changed
    done
  done;
  Alcotest.(check int) "one entry inside the tile" 1 !changed

let test_packed_flip_mantissa () =
  let p = PkD.create ~n:8 ~nb:4 in
  for i = 0 to 7 do
    for j = 0 to 7 do
      PkD.set p i j 1.234
    done
  done;
  let rng = Rng.create 65 in
  let i, j = Inject.flip_packed_mantissa_bit rng p in
  let v = PkD.get p i j in
  Alcotest.(check bool) "value changed, still finite" true
    (v <> 1.234 && Float.is_finite v)

let test_packed32_inject () =
  let p = PkS.create ~n:8 ~nb:4 in
  Inject.corrupt_packed32_entry p 3 5 ~delta:1.5;
  Alcotest.(check (float 0.0)) "f32 entry bumped (1.5 is exact)" 1.5 (PkS.get p 3 5);
  for i = 0 to 7 do
    for j = 0 to 7 do
      PkS.set p i j 1.25
    done
  done;
  let rng = Rng.create 67 in
  let i, j = Inject.flip_packed32_mantissa_bit rng p in
  let v = PkS.get p i j in
  Alcotest.(check bool) "f32 flip changed, still finite" true
    (v <> 1.25 && Float.is_finite v);
  let ti, tj = Inject.corrupt_random_packed32_tile rng p ~magnitude:0.5 in
  Alcotest.(check bool) "f32 tile coords in range" true
    (ti >= 0 && ti < 2 && tj >= 0 && tj < 2);
  let i, j = Inject.corrupt_random_packed32_entry rng p ~magnitude:2.0 in
  Alcotest.(check bool) "f32 entry coords in range" true (i >= 0 && i < 8 && j >= 0 && j < 8)

(* ---- fault harness ---- *)

(* The packed tiled Cholesky op stream, in program order. *)
let cholesky_ops nt =
  let acc = ref [] in
  for k = 0 to nt - 1 do
    acc := Task.Potrf k :: !acc;
    for i = k + 1 to nt - 1 do
      acc := Task.Trsm (k, i) :: !acc
    done;
    for i = k + 1 to nt - 1 do
      acc := Task.Syrk (i, k) :: !acc;
      for j = k + 1 to i - 1 do
        acc := Task.Gemm (i, j, k) :: !acc
      done
    done
  done;
  List.rev !acc

let run_harness_storm ~seed ~nt ~nb =
  let h =
    Harness.create
      { Harness.default with seed; p_raise = 0.1; p_corrupt = 0.2; magnitude = 0.5 }
  in
  let p = PkD.create ~n:(nt * nb) ~nb in
  let executed = ref [] in
  let interp op = executed := Task.op_name op :: !executed in
  List.iter
    (fun op ->
      match Harness.wrap_packed h p interp op with
      | () -> ()
      | exception Harness.Injected _ -> ())
    (cholesky_ops nt);
  (Harness.raised h, Harness.corrupted h, List.rev !executed)

let test_harness_deterministic () =
  (* same (seed, op) -> same decision: two fresh harnesses over the same op
     stream fire identical faults, independent of any shared RNG state *)
  let a = run_harness_storm ~seed:7 ~nt:6 ~nb:4 in
  let b = run_harness_storm ~seed:7 ~nt:6 ~nb:4 in
  Alcotest.(check bool) "identical decisions across runs" true (a = b);
  let raised, corrupted, _ = a in
  Alcotest.(check bool) "storm actually fired" true (raised > 0 && corrupted > 0);
  let raised', _, _ = run_harness_storm ~seed:8 ~nt:6 ~nb:4 in
  Alcotest.(check bool) "a different seed differs somewhere" true
    (run_harness_storm ~seed:8 ~nt:6 ~nb:4 <> a || raised' <> raised)

let test_harness_transient_vs_permanent () =
  let p = PkD.create ~n:4 ~nb:4 in
  let interp _ = () in
  let h = Harness.create { Harness.default with seed = 3; p_raise = 1.0 } in
  (match Harness.wrap_packed h p interp (Task.Potrf 0) with
  | () -> Alcotest.fail "expected an injected raise"
  | exception Harness.Injected _ -> ());
  (* transient (default): the same op runs clean on replay *)
  Harness.wrap_packed h p interp (Task.Potrf 0);
  Alcotest.(check int) "raised exactly once" 1 (Harness.raised h);
  let hp =
    Harness.create { Harness.default with seed = 3; p_raise = 1.0; transient = false }
  in
  let expect_raise () =
    match Harness.wrap_packed hp p interp (Task.Potrf 0) with
    | () -> Alcotest.fail "permanent fault must re-raise"
    | exception Harness.Injected _ -> ()
  in
  expect_raise ();
  expect_raise ();
  Alcotest.(check int) "permanent raised twice" 2 (Harness.raised hp)

let test_harness_zero_policy_is_noop () =
  let p = PkD.create ~n:8 ~nb:4 in
  let h = Harness.create Harness.default in
  let ran = ref 0 in
  List.iter (fun op -> Harness.wrap_packed h p (fun _ -> incr ran) op) (cholesky_ops 2);
  Alcotest.(check int) "every op executed" (List.length (cholesky_ops 2)) !ran;
  Alcotest.(check int) "nothing raised" 0 (Harness.raised h);
  Alcotest.(check int) "nothing corrupted" 0 (Harness.corrupted h);
  for i = 0 to 7 do
    for j = 0 to 7 do
      Alcotest.(check (float 0.0)) "matrix untouched" 0.0 (PkD.get p i j)
    done
  done

let test_harness_validation () =
  Alcotest.check_raises "probabilities must sum <= 1"
    (Invalid_argument "Harness.create: probabilities must be >= 0 and sum to <= 1")
    (fun () ->
      ignore (Harness.create { Harness.default with p_raise = 0.7; p_corrupt = 0.5 }))

(* ---- checkpoint file hardening ---- *)

(* Header layout: 7-byte magic, 1 version byte, 8-byte LE payload length,
   4-byte LE CRC-32, then the Marshal payload at offset 20. *)
let ckpt_payload_offset = 20

let with_temp_ckpt f =
  let path = Filename.temp_file "xsc_ckpt_hard" ".bin" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let b = Bytes.create len in
  really_input ic b 0 len;
  close_in ic;
  b

let write_file path b =
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc

let check_load_error name expected path =
  match Checkpoint.load path with
  | Error e when e = expected -> ()
  | Error e ->
    Alcotest.failf "%s: expected %s, got %s" name
      (Checkpoint.describe_error expected)
      (Checkpoint.describe_error e)
  | Ok _ -> Alcotest.failf "%s: damaged checkpoint was accepted" name

let test_load_missing_file () =
  check_load_error "missing" Checkpoint.No_such_file "/nonexistent/xsc_nope.bin"

let test_load_torn_write () =
  let rng = Rng.create 51 in
  let m = Mat.random rng 12 12 in
  with_temp_ckpt (fun path ->
      let bytes = Checkpoint.save path m in
      (* a crash mid-write: the file ends before the declared payload *)
      let b = read_file path in
      write_file path (Bytes.sub b 0 (bytes - 7));
      check_load_error "torn payload" Checkpoint.Truncated path;
      (* torn even earlier: shorter than the header itself *)
      write_file path (Bytes.sub b 0 5);
      check_load_error "torn header" Checkpoint.Truncated path)

let test_load_bad_magic () =
  with_temp_ckpt (fun path ->
      write_file path (Bytes.of_string "NOTCKPT0aaaaaaaabbbbpayloadpayload");
      check_load_error "garbage file" Checkpoint.Bad_magic path)

let test_load_bad_version () =
  let rng = Rng.create 53 in
  let m = Mat.random rng 6 6 in
  with_temp_ckpt (fun path ->
      ignore (Checkpoint.save path m);
      let b = read_file path in
      Bytes.set b 7 (Char.chr 9);
      write_file path b;
      check_load_error "future version" (Checkpoint.Bad_version 9) path)

let test_load_bad_crc () =
  let rng = Rng.create 55 in
  let m = Mat.random rng 10 10 in
  with_temp_ckpt (fun path ->
      ignore (Checkpoint.save path m);
      let b = read_file path in
      (* flip one payload bit: bit rot on disk *)
      let pos = Bytes.length b - 3 in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x40));
      write_file path b;
      check_load_error "bit rot" Checkpoint.Bad_crc path;
      (* damage inside the Marshal header region of the payload too *)
      let b2 = read_file path in
      Bytes.set b2 ckpt_payload_offset
        (Char.chr (Char.code (Bytes.get b2 ckpt_payload_offset) lxor 0xFF));
      write_file path b2;
      check_load_error "payload head damaged" Checkpoint.Bad_crc path)

let test_save_value_generic_roundtrip () =
  with_temp_ckpt (fun path ->
      let v = (42, [| "alpha"; "beta" |], 3.25) in
      let bytes = Checkpoint.save_value path v in
      Alcotest.(check bool) "no tmp residue after atomic rename" false
        (Sys.file_exists (path ^ ".tmp"));
      Alcotest.(check bool) "header + payload" true (bytes > ckpt_payload_offset);
      match Checkpoint.load_value path with
      | Ok v' -> Alcotest.(check bool) "round-trips structurally" true (v = v')
      | Error e -> Alcotest.failf "load_value: %s" (Checkpoint.describe_error e))

let test_save_overwrites_atomically () =
  with_temp_ckpt (fun path ->
      ignore (Checkpoint.save_value path "first");
      ignore (Checkpoint.save_value path "second");
      match Checkpoint.load_value path with
      | Ok s -> Alcotest.(check string) "latest value wins" "second" s
      | Error e -> Alcotest.failf "load_value: %s" (Checkpoint.describe_error e))

(* ---- Flight recorder ---- *)

let flight_entry ?(request = 0) ?(span = 1) ?(parent = -1) ?(t_ns = 1000) ?(domain = 0)
    ?(phase = "attempt") () =
  { Flight.t_ns; domain; request; span; parent; attempt = 0; phase;
    name = "test"; dur_ns = 10 }

let check_flight_error name expected path =
  match Flight.read path with
  | Error e when e = expected -> ()
  | Error e ->
    Alcotest.failf "%s: expected %s, got %s" name
      (Checkpoint.describe_error expected)
      (Checkpoint.describe_error e)
  | Ok _ -> Alcotest.failf "%s: damaged flight dump was accepted" name

let test_flight_roundtrip () =
  Flight.clear ();
  for i = 0 to 9 do
    Flight.record (flight_entry ~request:i ~span:(i + 1) ~t_ns:(1000 + i) ())
  done;
  with_temp_ckpt (fun path ->
      let _, dumped = Flight.dump ~path ~reason:"test" in
      Alcotest.(check int) "all entries dumped" 10 dumped;
      match Flight.read path with
      | Error e -> Alcotest.failf "read: %s" (Checkpoint.describe_error e)
      | Ok d ->
        Alcotest.(check string) "reason survives" "test" d.Flight.reason;
        Alcotest.(check int) "offered count" 10 d.Flight.recorded;
        Alcotest.(check int) "entries" 10 (Array.length d.Flight.entries);
        (* snapshot order: sorted by timestamp *)
        Array.iteri
          (fun i (e : Flight.entry) ->
            Alcotest.(check int) "time-sorted" (1000 + i) e.Flight.t_ns)
          d.Flight.entries)

let test_flight_overwrites_oldest () =
  (* the post-mortem bias: a full ring keeps the most recent entries,
     the opposite of the tracer rings' drop-newest *)
  Flight.configure ~capacity:8;
  Fun.protect
    ~finally:(fun () -> Flight.configure ~capacity:4096)
    (fun () ->
      (* capacity is total across the 8 domain shards: spread the writers
         so every shard fills and wraps *)
      for i = 0 to 99 do
        Flight.record (flight_entry ~t_ns:i ~domain:(i land 7) ())
      done;
      let entries, recorded = Flight.snapshot () in
      Alcotest.(check int) "all offered counted" 100 recorded;
      Alcotest.(check int) "bounded" 8 (Array.length entries);
      Array.iter
        (fun (e : Flight.entry) ->
          Alcotest.(check bool) "newest survive" true (e.Flight.t_ns >= 92))
        entries)

let test_flight_torn_write () =
  Flight.clear ();
  Flight.record (flight_entry ());
  with_temp_ckpt (fun path ->
      let bytes, _ = Flight.dump ~path ~reason:"torn" in
      let b = read_file path in
      write_file path (Bytes.sub b 0 (bytes - 5));
      check_flight_error "torn payload" Checkpoint.Truncated path;
      write_file path (Bytes.sub b 0 4);
      check_flight_error "torn header" Checkpoint.Truncated path)

let test_flight_bad_crc () =
  Flight.clear ();
  Flight.record (flight_entry ());
  with_temp_ckpt (fun path ->
      ignore (Flight.dump ~path ~reason:"rot");
      let b = read_file path in
      let pos = Bytes.length b - 2 in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x10));
      write_file path b;
      check_flight_error "bit rot" Checkpoint.Bad_crc path)

let test_flight_magic_separation () =
  (* a checkpoint file is not a flight dump, and vice versa: the shared
     header discipline must fail typed on the magic, never reach Marshal *)
  with_temp_ckpt (fun path ->
      ignore (Checkpoint.save_value path [ 1; 2; 3 ]);
      check_flight_error "checkpoint as flight" Checkpoint.Bad_magic path);
  Flight.clear ();
  Flight.record (flight_entry ());
  with_temp_ckpt (fun path ->
      ignore (Flight.dump ~path ~reason:"magic" : int * int);
      match Checkpoint.load_value path with
      | Error Checkpoint.Bad_magic -> ()
      | Error e ->
        Alcotest.failf "flight as checkpoint: expected bad magic, got %s"
          (Checkpoint.describe_error e)
      | Ok (_ : int list) -> Alcotest.fail "flight dump loaded as a checkpoint")

let test_flight_dump_once () =
  Flight.clear ();
  Flight.reset_dump_guard ();
  Flight.record (flight_entry ());
  with_temp_ckpt (fun path ->
      Alcotest.(check bool) "first dump writes" true
        (Flight.dump_once ~path ~reason:"first" <> None);
      Flight.record (flight_entry ~span:2 ~t_ns:2000 ());
      Alcotest.(check bool) "second dump suppressed" true
        (Flight.dump_once ~path ~reason:"second" = None);
      (match Flight.read path with
      | Ok d -> Alcotest.(check string) "first reason kept" "first" d.Flight.reason
      | Error e -> Alcotest.failf "read: %s" (Checkpoint.describe_error e));
      Flight.reset_dump_guard ();
      Alcotest.(check bool) "guard reset re-arms" true
        (Flight.dump_once ~path ~reason:"third" <> None))

let () =
  Alcotest.run "xsc_resilience"
    [
      ( "checkpoint",
        [
          Alcotest.test_case "young formula" `Quick test_young_formula;
          Alcotest.test_case "daly ~ young for small C" `Quick
            test_daly_close_to_young_when_c_small;
          Alcotest.test_case "expected time > work" `Quick test_expected_time_exceeds_work;
          Alcotest.test_case "save/load round-trip" `Quick test_checkpoint_save_load_roundtrip;
          Alcotest.test_case "model convex minimum" `Quick test_expected_time_convex_minimum;
          Alcotest.test_case "simulation matches model" `Quick test_simulation_matches_model;
          Alcotest.test_case "simulated minimum near Daly" `Quick
            test_simulation_minimum_near_daly;
          Alcotest.test_case "no-failure limit" `Quick test_simulate_no_failures_limit;
          Alcotest.test_case "efficiency bounds" `Quick test_efficiency_bounds;
          Alcotest.test_case "validation" `Quick test_checkpoint_validation;
        ] );
      ( "abft gemm",
        [
          Alcotest.test_case "clean verifies" `Quick test_gemm_protected_clean;
          qcheck prop_gemm_single_error_corrected;
          Alcotest.test_case "two errors" `Quick test_gemm_two_errors_distinct_rows_cols;
          Alcotest.test_case "correct is a no-op when clean" `Quick
            test_gemm_correct_noop_when_clean;
        ] );
      ( "abft cholesky",
        [
          Alcotest.test_case "clean verifies" `Quick test_verify_cholesky_clean;
          qcheck prop_cholesky_corruption_detected_and_recovered;
          Alcotest.test_case "bit flip detected" `Quick test_cholesky_bitflip_detected;
          Alcotest.test_case "recover from row 0 = refactor" `Quick
            test_recover_rows_full_refactor;
          Alcotest.test_case "recover last row" `Quick test_recover_cholesky_last_row;
          Alcotest.test_case "recover multiple rows" `Quick
            test_recover_cholesky_multiple_rows;
          Alcotest.test_case "overhead model" `Quick test_overhead_model;
        ] );
      ( "abft lu",
        [
          Alcotest.test_case "clean verifies" `Quick test_verify_lu_clean;
          qcheck prop_lu_corruption_detected_and_recovered;
          Alcotest.test_case "recover from row 0 = refactor" `Quick
            test_recover_lu_full_refactor;
          Alcotest.test_case "recover last row" `Quick test_recover_lu_last_row;
          Alcotest.test_case "recover multiple rows" `Quick test_recover_lu_multiple_rows;
        ] );
      ( "inject",
        [
          Alcotest.test_case "corrupt random entry" `Quick test_corrupt_random_entry;
          Alcotest.test_case "corrupt lower entry" `Quick test_corrupt_lower_entry;
          Alcotest.test_case "flip mantissa" `Quick test_flip_mantissa_changes_value;
          Alcotest.test_case "packed entry" `Quick test_packed_inject_entry;
          Alcotest.test_case "packed random entry" `Quick test_packed_inject_random_entry;
          Alcotest.test_case "packed random tile" `Quick test_packed_inject_random_tile;
          Alcotest.test_case "packed flip mantissa" `Quick test_packed_flip_mantissa;
          Alcotest.test_case "packed float32 variants" `Quick test_packed32_inject;
        ] );
      ( "harness",
        [
          Alcotest.test_case "seeded storm is deterministic" `Quick
            test_harness_deterministic;
          Alcotest.test_case "transient vs permanent" `Quick
            test_harness_transient_vs_permanent;
          Alcotest.test_case "zero policy is a no-op" `Quick
            test_harness_zero_policy_is_noop;
          Alcotest.test_case "validation" `Quick test_harness_validation;
        ] );
      ( "checkpoint files",
        [
          Alcotest.test_case "missing file" `Quick test_load_missing_file;
          Alcotest.test_case "torn write rejected" `Quick test_load_torn_write;
          Alcotest.test_case "bad magic rejected" `Quick test_load_bad_magic;
          Alcotest.test_case "bad version rejected" `Quick test_load_bad_version;
          Alcotest.test_case "bad crc rejected" `Quick test_load_bad_crc;
          Alcotest.test_case "generic value round-trip" `Quick
            test_save_value_generic_roundtrip;
          Alcotest.test_case "atomic overwrite" `Quick test_save_overwrites_atomically;
        ] );
      ( "flight recorder",
        [
          Alcotest.test_case "round-trip" `Quick test_flight_roundtrip;
          Alcotest.test_case "overwrites oldest" `Quick test_flight_overwrites_oldest;
          Alcotest.test_case "torn write rejected" `Quick test_flight_torn_write;
          Alcotest.test_case "bad crc rejected" `Quick test_flight_bad_crc;
          Alcotest.test_case "magic separation" `Quick test_flight_magic_separation;
          Alcotest.test_case "dump-once guard" `Quick test_flight_dump_once;
        ] );
    ]
