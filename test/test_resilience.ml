(* Tests for Xsc_resilience: Young/Daly checkpointing, ABFT checksums,
   fault injection. *)

open Xsc_linalg
module Checkpoint = Xsc_resilience.Checkpoint
module Abft = Xsc_resilience.Abft
module Inject = Xsc_resilience.Inject
module Rng = Xsc_util.Rng

let qcheck tc = QCheck_alcotest.to_alcotest tc

let counter_value name =
  match List.assoc_opt name (Xsc_obs.Metrics.snapshot ()) with
  | Some (Xsc_obs.Metrics.Counter n) -> n
  | _ -> 0

let params = { Checkpoint.work = 7200.0; checkpoint_cost = 15.0; restart_cost = 60.0; mtbf = 1800.0 }

(* ---- Checkpoint ---- *)

let test_young_formula () =
  Alcotest.(check (float 1e-9)) "sqrt(2CM)"
    (sqrt (2.0 *. 15.0 *. 1800.0))
    (Checkpoint.young_interval params)

let test_daly_close_to_young_when_c_small () =
  let p = { params with checkpoint_cost = 1.0; mtbf = 1e6 } in
  let young = Checkpoint.young_interval p and daly = Checkpoint.daly_interval p in
  Alcotest.(check bool) "within 2%" true (abs_float (daly -. young) /. young < 0.02)

let test_expected_time_exceeds_work () =
  let t = Checkpoint.expected_time params ~interval:(Checkpoint.daly_interval params) in
  Alcotest.(check bool) "overhead positive" true (t > params.Checkpoint.work)

let test_checkpoint_save_load_roundtrip () =
  let rng = Rng.create 31 in
  let m = Mat.random rng 17 23 in
  let path = Filename.temp_file "xsc_ckpt" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let writes0 = counter_value "checkpoint.writes" in
      let bytes = Checkpoint.save path m in
      Alcotest.(check bool) "non-trivial size" true (bytes > 17 * 23 * 8 / 2);
      Alcotest.(check int) "size matches the file" bytes
        (let ic = open_in_bin path in
         let n = in_channel_length ic in
         close_in ic;
         n);
      let m' = Checkpoint.load path in
      Alcotest.(check bool) "round-trips bitwise" true
        (m'.Mat.rows = m.Mat.rows && m'.Mat.cols = m.Mat.cols && m'.Mat.data = m.Mat.data);
      Alcotest.(check int) "write counted" (writes0 + 1) (counter_value "checkpoint.writes"))

let test_expected_time_convex_minimum () =
  (* the optimum beats both a too-short and a too-long interval *)
  let tau = Checkpoint.daly_interval params in
  let at x = Checkpoint.expected_time params ~interval:x in
  Alcotest.(check bool) "beats tau/8" true (at tau < at (tau /. 8.0));
  Alcotest.(check bool) "beats 8 tau" true (at tau < at (8.0 *. tau))

let test_simulation_matches_model () =
  let rng = Rng.create 42 in
  let tau = Checkpoint.daly_interval params in
  let sim = Checkpoint.simulate_mean ~runs:400 rng params ~interval:tau in
  let model = Checkpoint.expected_time params ~interval:tau in
  Alcotest.(check bool)
    (Printf.sprintf "sim %.0f within 15%% of model %.0f" sim model)
    true
    (abs_float (sim -. model) /. model < 0.15)

let test_simulation_minimum_near_daly () =
  (* simulated time at the Daly interval beats far-off intervals *)
  let rng = Rng.create 43 in
  let tau = Checkpoint.daly_interval params in
  let at x = Checkpoint.simulate_mean ~runs:300 rng params ~interval:x in
  let t_opt = at tau in
  Alcotest.(check bool) "beats tau/8" true (t_opt < at (tau /. 8.0));
  Alcotest.(check bool) "beats 8 tau" true (t_opt < at (8.0 *. tau))

let test_simulate_no_failures_limit () =
  (* with an enormous MTBF the run is just work + checkpoints *)
  let p = { params with mtbf = 1e15 } in
  let rng = Rng.create 44 in
  let t = Checkpoint.simulate rng p ~interval:720.0 in
  let segments = 7200.0 /. 720.0 in
  let expected = 7200.0 +. ((segments -. 1.0) *. 15.0) in
  Alcotest.(check (float 1.0)) "work + C per non-final segment" expected t

let test_efficiency_bounds () =
  let e = Checkpoint.efficiency params ~interval:(Checkpoint.daly_interval params) in
  Alcotest.(check bool) "in (0,1)" true (e > 0.0 && e < 1.0)

let test_checkpoint_validation () =
  Alcotest.check_raises "bad params" (Invalid_argument "Checkpoint: invalid parameters")
    (fun () -> ignore (Checkpoint.young_interval { params with mtbf = 0.0 }));
  Alcotest.check_raises "bad interval"
    (Invalid_argument "Checkpoint.expected_time: interval must be positive") (fun () ->
      ignore (Checkpoint.expected_time params ~interval:0.0))

(* ---- ABFT gemm ---- *)

let test_gemm_protected_clean () =
  let rng = Rng.create 1 in
  let a = Mat.random rng 8 6 and b = Mat.random rng 6 10 in
  let p = Abft.gemm_protected a b in
  Alcotest.(check (list (pair int int))) "no mismatches" [] (Abft.verify_product p);
  Alcotest.(check bool) "decodes to the product" true
    (Mat.approx_equal ~tol:1e-10 (Blas.gemm_new a b) (Abft.decode_product p))

let prop_gemm_single_error_corrected =
  QCheck.Test.make ~name:"single corrupted entry is located and corrected" ~count:50
    QCheck.(triple (int_range 0 7) (int_range 0 9) (float_range 0.5 100.0))
    (fun (i, j, delta) ->
      let rng = Rng.create ((i * 11) + j) in
      let a = Mat.random rng 8 6 and b = Mat.random rng 6 10 in
      let p = Abft.gemm_protected a b in
      Inject.corrupt_entry p.Abft.full i j ~delta;
      let located = Abft.verify_product p in
      let fixed = Abft.correct_product p in
      located = [ (i, j) ] && fixed = 1
      && Mat.approx_equal ~tol:1e-8 (Blas.gemm_new a b) (Abft.decode_product p))

let test_gemm_two_errors_distinct_rows_cols () =
  let rng = Rng.create 3 in
  let a = Mat.random rng 8 6 and b = Mat.random rng 6 10 in
  let p = Abft.gemm_protected a b in
  Inject.corrupt_entry p.Abft.full 1 2 ~delta:5.0;
  Inject.corrupt_entry p.Abft.full 4 7 ~delta:(-3.0);
  (* the row/col intersection now has 4 candidates; only the 2 real ones
     show matching row/col discrepancies and get fixed *)
  let fixed = Abft.correct_product p in
  Alcotest.(check int) "both corrected" 2 fixed;
  Alcotest.(check bool) "product restored" true
    (Mat.approx_equal ~tol:1e-8 (Blas.gemm_new a b) (Abft.decode_product p))

let test_gemm_correct_noop_when_clean () =
  let rng = Rng.create 4 in
  let a = Mat.random rng 5 5 and b = Mat.random rng 5 5 in
  let p = Abft.gemm_protected a b in
  Alcotest.(check int) "nothing to fix" 0 (Abft.correct_product p)

(* ---- ABFT cholesky ---- *)

let chol_fixture seed n =
  let rng = Rng.create seed in
  let a = Mat.random_spd rng n in
  let f = Mat.copy a in
  Lapack.potrf f;
  (a, Mat.lower f)

let test_verify_cholesky_clean () =
  let a, l = chol_fixture 5 24 in
  Alcotest.(check (option int)) "clean factor passes" None (Abft.verify_cholesky ~l a)

let prop_cholesky_corruption_detected_and_recovered =
  QCheck.Test.make ~name:"corrupted L entry detected at row <= j, lineage-recovered"
    ~count:30
    QCheck.(pair (int_range 1 23) (float_range 0.01 10.0))
    (fun (i, delta) ->
      let a, l = chol_fixture 7 24 in
      let j = i / 2 in
      Inject.corrupt_entry l i j ~delta;
      match Abft.verify_cholesky ~l a with
      | None -> false
      | Some row ->
        row <= j
        && begin
             Abft.recover_cholesky_rows ~a ~l ~from:row;
             Abft.verify_cholesky ~l a = None
           end)

let test_cholesky_bitflip_detected () =
  let a, l = chol_fixture 9 16 in
  let rng = Rng.create 77 in
  (* low-order flips fall below the numerical detection threshold, so the
     guarantee is that flips of consequential bits are caught: succeed if
     any flip within the attempt budget is detected *)
  let rec try_flip attempts =
    if attempts = 0 then false
    else begin
      let l' = Mat.copy l in
      let _ = Inject.flip_mantissa_bit rng l' in
      Abft.verify_cholesky ~l:l' a <> None || try_flip (attempts - 1)
    end
  in
  Alcotest.(check bool) "a significant bit flip is caught" true (try_flip 50)

let test_recover_rows_full_refactor () =
  (* recovery from row 0 recomputes the entire factor *)
  let a, l = chol_fixture 11 16 in
  let damaged = Mat.map (fun _ -> 0.0) l in
  Abft.recover_cholesky_rows ~a ~l:damaged ~from:0;
  Alcotest.(check bool) "matches potrf" true (Mat.approx_equal ~tol:1e-8 l damaged)

(* ---- ABFT LU ---- *)

let lu_fixture seed n =
  let rng = Rng.create seed in
  let a = Mat.random_diag_dominant rng n in
  let f = Mat.copy a in
  Lapack.getrf_nopiv f;
  (a, f)

let test_verify_lu_clean () =
  let a, lu = lu_fixture 31 20 in
  Alcotest.(check (option int)) "clean factor passes" None (Abft.verify_lu ~lu a)

let prop_lu_corruption_detected_and_recovered =
  QCheck.Test.make ~name:"corrupted LU entry detected and lineage-recovered" ~count:30
    QCheck.(triple (int_range 0 19) (int_range 0 19) (float_range 0.05 5.0))
    (fun (i, j, delta) ->
      let a, lu = lu_fixture 37 20 in
      let clean = Mat.copy lu in
      Inject.corrupt_entry lu i j ~delta;
      match Abft.verify_lu ~lu a with
      | None -> false
      | Some row ->
        Abft.recover_lu_rows ~a ~lu ~from:row;
        Abft.verify_lu ~lu a = None && Mat.approx_equal ~tol:1e-8 clean lu)

let test_recover_lu_full_refactor () =
  let a, lu = lu_fixture 41 16 in
  let damaged = Mat.map (fun _ -> 0.0) lu in
  Abft.recover_lu_rows ~a ~lu:damaged ~from:0;
  Alcotest.(check bool) "matches getrf_nopiv" true (Mat.approx_equal ~tol:1e-8 lu damaged)

let test_overhead_model () =
  (* one extra checksum tile row/col on an nt x nt tiled matrix *)
  Alcotest.(check bool) "shrinks with nt" true
    (Abft.overhead_model ~n:4096 ~nb:128 < Abft.overhead_model ~n:1024 ~nb:128);
  Alcotest.(check bool) "small at scale" true (Abft.overhead_model ~n:8192 ~nb:128 < 0.05)

(* ---- Inject ---- *)

let test_corrupt_random_entry () =
  let rng = Rng.create 21 in
  let m = Mat.create 6 6 in
  let i, j = Inject.corrupt_random_entry rng m ~magnitude:3.0 in
  Alcotest.(check (float 0.0)) "entry changed by +-magnitude" 3.0 (abs_float (Mat.get m i j))

let test_corrupt_lower_entry () =
  let rng = Rng.create 23 in
  for _ = 1 to 50 do
    let m = Mat.create 8 8 in
    let i, j = Inject.corrupt_lower_entry rng m ~magnitude:1.0 in
    Alcotest.(check bool) "strictly lower" true (i > j)
  done

let test_flip_mantissa_changes_value () =
  let rng = Rng.create 25 in
  let m = Mat.init 4 4 (fun _ _ -> 1.234) in
  let i, j = Inject.flip_mantissa_bit rng m in
  Alcotest.(check bool) "value changed, still finite" true
    (Mat.get m i j <> 1.234 && Float.is_finite (Mat.get m i j))

let () =
  Alcotest.run "xsc_resilience"
    [
      ( "checkpoint",
        [
          Alcotest.test_case "young formula" `Quick test_young_formula;
          Alcotest.test_case "daly ~ young for small C" `Quick
            test_daly_close_to_young_when_c_small;
          Alcotest.test_case "expected time > work" `Quick test_expected_time_exceeds_work;
          Alcotest.test_case "save/load round-trip" `Quick test_checkpoint_save_load_roundtrip;
          Alcotest.test_case "model convex minimum" `Quick test_expected_time_convex_minimum;
          Alcotest.test_case "simulation matches model" `Quick test_simulation_matches_model;
          Alcotest.test_case "simulated minimum near Daly" `Quick
            test_simulation_minimum_near_daly;
          Alcotest.test_case "no-failure limit" `Quick test_simulate_no_failures_limit;
          Alcotest.test_case "efficiency bounds" `Quick test_efficiency_bounds;
          Alcotest.test_case "validation" `Quick test_checkpoint_validation;
        ] );
      ( "abft gemm",
        [
          Alcotest.test_case "clean verifies" `Quick test_gemm_protected_clean;
          qcheck prop_gemm_single_error_corrected;
          Alcotest.test_case "two errors" `Quick test_gemm_two_errors_distinct_rows_cols;
          Alcotest.test_case "correct is a no-op when clean" `Quick
            test_gemm_correct_noop_when_clean;
        ] );
      ( "abft cholesky",
        [
          Alcotest.test_case "clean verifies" `Quick test_verify_cholesky_clean;
          qcheck prop_cholesky_corruption_detected_and_recovered;
          Alcotest.test_case "bit flip detected" `Quick test_cholesky_bitflip_detected;
          Alcotest.test_case "recover from row 0 = refactor" `Quick
            test_recover_rows_full_refactor;
          Alcotest.test_case "overhead model" `Quick test_overhead_model;
        ] );
      ( "abft lu",
        [
          Alcotest.test_case "clean verifies" `Quick test_verify_lu_clean;
          qcheck prop_lu_corruption_detected_and_recovered;
          Alcotest.test_case "recover from row 0 = refactor" `Quick
            test_recover_lu_full_refactor;
        ] );
      ( "inject",
        [
          Alcotest.test_case "corrupt random entry" `Quick test_corrupt_random_entry;
          Alcotest.test_case "corrupt lower entry" `Quick test_corrupt_lower_entry;
          Alcotest.test_case "flip mantissa" `Quick test_flip_mantissa_changes_value;
        ] );
    ]
