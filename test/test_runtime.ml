(* Tests for Xsc_runtime: task accesses, DAG dependence inference, schedule
   simulation, the work-stealing deque, real multicore execution, traces. *)

module Task = Xsc_runtime.Task
module Dag = Xsc_runtime.Dag
module Sim_exec = Xsc_runtime.Sim_exec
module Real_exec = Xsc_runtime.Real_exec
module Deque = Xsc_runtime.Deque
module Trace = Xsc_runtime.Trace
module Rng = Xsc_util.Rng

let qcheck tc = QCheck_alcotest.to_alcotest tc

let task ?(flops = 1e6) ?run id accesses = Task.make ~id ~name:(string_of_int id) ~flops ?run accesses

(* ---- Task ---- *)

let test_task_reads_writes () =
  let t = task 0 [ Task.Read 1; Task.Write 2; Task.Read_write 3 ] in
  Alcotest.(check (list int)) "reads" [ 1; 3 ] (List.sort compare (Task.reads t));
  Alcotest.(check (list int)) "writes" [ 2; 3 ] (List.sort compare (Task.writes t))

let test_task_datum () =
  Alcotest.(check int) "linearised" 23 (Task.datum 2 3 ~stride:10)

let test_task_negative_flops () =
  Alcotest.check_raises "negative" (Invalid_argument "Task.make: negative weight") (fun () ->
      ignore (Task.make ~id:0 ~name:"t" ~flops:(-1.0) []))

(* ---- Dag dependence inference ---- *)

let test_dag_raw () =
  (* t0 writes d, t1 reads d: RAW edge *)
  let d = Dag.build [ task 0 [ Task.Write 0 ]; task 1 [ Task.Read 0 ] ] in
  Alcotest.(check (list int)) "edge 0->1" [ 1 ] d.Dag.succs.(0);
  Alcotest.(check int) "depth 2" 2 (Dag.depth d)

let test_dag_war () =
  (* t0 reads d, t1 writes d: WAR edge *)
  let d = Dag.build [ task 0 [ Task.Read 0 ]; task 1 [ Task.Write 0 ] ] in
  Alcotest.(check (list int)) "edge 0->1" [ 1 ] d.Dag.succs.(0)

let test_dag_waw () =
  let d = Dag.build [ task 0 [ Task.Write 0 ]; task 1 [ Task.Write 0 ] ] in
  Alcotest.(check (list int)) "edge 0->1" [ 1 ] d.Dag.succs.(0)

let test_dag_independent_readers () =
  (* two readers of the same datum are NOT ordered *)
  let d =
    Dag.build
      [ task 0 [ Task.Write 0 ]; task 1 [ Task.Read 0 ]; task 2 [ Task.Read 0 ] ]
  in
  Alcotest.(check int) "depth 2" 2 (Dag.depth d);
  Alcotest.(check (list int)) "both readers in level 1" [ 1; 2 ] d.Dag.levels.(1)

let test_dag_independent_data () =
  let d = Dag.build [ task 0 [ Task.Write 0 ]; task 1 [ Task.Write 1 ] ] in
  Alcotest.(check int) "no edges" 0 (Dag.n_edges d);
  Alcotest.(check int) "depth 1" 1 (Dag.depth d)

let test_dag_rw_chain () =
  (* accumulations serialise *)
  let d =
    Dag.build
      [ task 0 [ Task.Read_write 0 ]; task 1 [ Task.Read_write 0 ]; task 2 [ Task.Read_write 0 ] ]
  in
  Alcotest.(check int) "chain depth" 3 (Dag.depth d)

let test_dag_diamond () =
  (* 0 -> {1, 2} -> 3 *)
  let d =
    Dag.build
      [
        task 0 [ Task.Write 0 ];
        task 1 [ Task.Read 0; Task.Write 1 ];
        task 2 [ Task.Read 0; Task.Write 2 ];
        task 3 [ Task.Read 1; Task.Read 2 ];
      ]
  in
  Alcotest.(check int) "edges" 4 (Dag.n_edges d);
  Alcotest.(check int) "depth" 3 (Dag.depth d);
  Alcotest.(check (list int)) "sources" [ 0 ] (Dag.sources d);
  Alcotest.(check (list int)) "indegree of join" [ 1; 2 ]
    (List.sort compare d.Dag.preds.(3))

let test_dag_numbering_check () =
  Alcotest.check_raises "bad ids" (Invalid_argument "Dag.build: tasks must be numbered in order")
    (fun () -> ignore (Dag.build [ task 5 [] ]))

let test_dag_flops () =
  let d =
    Dag.build
      [ task ~flops:10.0 0 [ Task.Write 0 ]; task ~flops:20.0 1 [ Task.Read 0 ];
        task ~flops:5.0 2 [ Task.Write 9 ] ]
  in
  Alcotest.(check (float 0.0)) "total" 35.0 (Dag.total_flops d);
  Alcotest.(check (float 0.0)) "critical path" 30.0 (Dag.critical_path_flops d);
  let bl = Dag.bottom_level d in
  Alcotest.(check (float 0.0)) "bottom level source" 30.0 bl.(0);
  Alcotest.(check (float 0.0)) "bottom level sink" 20.0 bl.(1)

let test_dag_to_dot () =
  let d =
    Dag.build [ task 0 [ Task.Write 0 ]; task 1 [ Task.Read 0 ]; task 2 [ Task.Read 0 ] ]
  in
  let dot = Dag.to_dot d in
  Alcotest.(check bool) "digraph wrapper" true
    (String.length dot > 10 && String.sub dot 0 7 = "digraph");
  let contains sub =
    let rec go i =
      i + String.length sub <= String.length dot
      && (String.sub dot i (String.length sub) = sub || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "edges present" true (contains "t0 -> t1" && contains "t0 -> t2");
  Alcotest.(check bool) "rank groups" true (contains "rank=same");
  let big = Dag.build (List.init 600 (fun id -> task id [ Task.Write id ])) in
  Alcotest.check_raises "size guard"
    (Invalid_argument "Dag.to_dot: 600 tasks exceeds max_nodes=500") (fun () ->
      ignore (Dag.to_dot big))

let test_validate_schedule () =
  let d =
    Dag.build [ task 0 [ Task.Write 0 ]; task 1 [ Task.Read 0 ]; task 2 [ Task.Write 5 ] ]
  in
  Alcotest.(check bool) "valid order" true (Dag.validate_schedule d ~order:[ 2; 0; 1 ]);
  Alcotest.(check bool) "violates dependence" false (Dag.validate_schedule d ~order:[ 1; 0; 2 ]);
  Alcotest.(check bool) "missing task" false (Dag.validate_schedule d ~order:[ 0; 1 ]);
  Alcotest.(check bool) "duplicate" false (Dag.validate_schedule d ~order:[ 0; 0; 1 ])

(* random DAG generator for property tests: random accesses over few data *)
let random_tasks seed n =
  let rng = Rng.create seed in
  List.init n (fun id ->
      let n_acc = 1 + Rng.int rng 3 in
      let accesses =
        List.init n_acc (fun _ ->
            let d = Rng.int rng 6 in
            match Rng.int rng 3 with
            | 0 -> Task.Read d
            | 1 -> Task.Write d
            | _ -> Task.Read_write d)
      in
      task ~flops:(1e5 +. Rng.float rng 1e6) id accesses)

let prop_policies_produce_valid_schedules =
  QCheck.Test.make ~name:"every policy yields a valid topological order" ~count:40
    QCheck.(pair (int_range 1 60) (int_range 1 32))
    (fun (n, workers) ->
      let dag = Dag.build (random_tasks (n * 7) n) in
      let cfg = Sim_exec.config ~workers ~rate:1e9 () in
      List.for_all
        (fun policy ->
          let r = Sim_exec.run cfg policy dag in
          Dag.validate_schedule dag ~order:r.Sim_exec.order)
        [ Sim_exec.Bsp; Sim_exec.List_critical_path; Sim_exec.List_fifo; Sim_exec.Work_stealing 3 ])

let prop_makespan_bounds =
  QCheck.Test.make ~name:"makespan >= max(throughput bound, span bound)" ~count:40
    QCheck.(pair (int_range 1 60) (int_range 1 16))
    (fun (n, workers) ->
      let dag = Dag.build (random_tasks (n * 13) n) in
      let cfg = Sim_exec.config ~task_overhead:0.0 ~barrier_cost:0.0 ~workers ~rate:1e9 () in
      List.for_all
        (fun policy ->
          let r = Sim_exec.run cfg policy dag in
          r.Sim_exec.makespan +. 1e-12 >= Sim_exec.perfect_time cfg dag
          && r.Sim_exec.makespan +. 1e-12 >= Sim_exec.critical_time cfg dag)
        [ Sim_exec.Bsp; Sim_exec.List_critical_path; Sim_exec.List_fifo ])

let test_single_worker_serialises () =
  let dag = Dag.build (random_tasks 99 20) in
  let cfg = Sim_exec.config ~task_overhead:0.0 ~barrier_cost:0.0 ~workers:1 ~rate:1e9 () in
  let r = Sim_exec.run cfg Sim_exec.List_fifo dag in
  Alcotest.(check (float 1e-9)) "makespan = total work" (Sim_exec.perfect_time cfg dag)
    r.Sim_exec.makespan;
  Alcotest.(check bool) "utilization ~ 1" true (r.Sim_exec.utilization > 0.999)

let test_dag_beats_bsp_on_cholesky_shape () =
  (* a wide, staircase-dependent DAG: list scheduling should beat BSP *)
  let nt = 8 in
  let t = Xsc_tile.Tile.create ~rows:(nt * 8) ~cols:(nt * 8) ~nb:8 in
  let dag = Xsc_core.Cholesky.dag ~with_closures:false t in
  let cfg = Sim_exec.config ~workers:8 ~rate:1e9 () in
  let bsp = Sim_exec.run cfg Sim_exec.Bsp dag in
  let dyn = Sim_exec.run cfg Sim_exec.List_critical_path dag in
  Alcotest.(check bool) "dataflow at least as fast" true
    (dyn.Sim_exec.makespan <= bsp.Sim_exec.makespan);
  Alcotest.(check int) "bsp barrier count = depth" (Dag.depth dag) bsp.Sim_exec.barriers

let test_comm_cost_slows_things () =
  let dag = Dag.build (random_tasks 7 40) in
  let free = Sim_exec.config ~workers:4 ~rate:1e9 () in
  let costly =
    Sim_exec.config ~comm_cost:(fun ~bytes:_ -> 1e-3) ~workers:4 ~rate:1e9 ()
  in
  let r_free = Sim_exec.run free Sim_exec.List_critical_path dag in
  let r_costly = Sim_exec.run costly Sim_exec.List_critical_path dag in
  Alcotest.(check bool) "comm increases makespan" true
    (r_costly.Sim_exec.makespan >= r_free.Sim_exec.makespan);
  Alcotest.(check (float 0.0)) "no comm time when free" 0.0 r_free.Sim_exec.comm_time

let test_work_stealing_deterministic_per_seed () =
  let dag = Dag.build (random_tasks 21 50) in
  let cfg = Sim_exec.config ~workers:4 ~rate:1e9 () in
  let r1 = Sim_exec.run cfg (Sim_exec.Work_stealing 5) dag in
  let r2 = Sim_exec.run cfg (Sim_exec.Work_stealing 5) dag in
  Alcotest.(check (float 0.0)) "same seed same makespan" r1.Sim_exec.makespan r2.Sim_exec.makespan

(* ---- Deque ---- *)

let test_deque_owner_lifo () =
  (* capacity 4 forces several growths along the way *)
  let d = Deque.create ~capacity:4 () in
  for i = 0 to 99 do
    Deque.push d i
  done;
  Alcotest.(check int) "size" 100 (Deque.size d);
  let popped = List.init 100 (fun _ -> Option.get (Deque.pop d)) in
  Alcotest.(check (list int)) "LIFO order" (List.init 100 (fun i -> 99 - i)) popped;
  Alcotest.(check bool) "drained" true (Deque.pop d = None)

let test_deque_steal_fifo () =
  let d = Deque.create () in
  for i = 0 to 49 do
    Deque.push d i
  done;
  let stolen =
    List.init 50 (fun _ ->
        match Deque.steal d with Deque.Stolen v -> v | Deque.Empty | Deque.Abort -> -1)
  in
  Alcotest.(check (list int)) "FIFO order" (List.init 50 (fun i -> i)) stolen;
  Alcotest.(check bool) "empty after" true (Deque.steal d = Deque.Empty)

let test_deque_mixed_ends () =
  let d = Deque.create ~capacity:2 () in
  Deque.push d 1;
  Deque.push d 2;
  Deque.push d 3;
  Alcotest.(check (option int)) "pop takes newest" (Some 3) (Deque.pop d);
  (match Deque.steal d with
  | Deque.Stolen v -> Alcotest.(check int) "steal takes oldest" 1 v
  | Deque.Empty | Deque.Abort -> Alcotest.fail "steal failed on non-empty deque");
  Alcotest.(check (option int)) "pop takes the survivor" (Some 2) (Deque.pop d);
  Alcotest.(check (option int)) "drained" None (Deque.pop d);
  Alcotest.(check bool) "empty to thieves too" true (Deque.steal d = Deque.Empty)

(* Concurrency property: with an owner pushing/popping and several thief
   domains stealing, every pushed id is consumed exactly once — nothing
   lost, nothing duplicated. *)
let prop_deque_concurrent_thieves =
  QCheck.Test.make ~name:"deque: no lost or duplicated items under concurrent thieves"
    ~count:5
    QCheck.(pair (int_range 200 2000) (int_range 1 4))
    (fun (n, nthieves) ->
      let d = Deque.create ~capacity:8 () in
      let stop = Atomic.make false in
      let thief () =
        let acc = ref [] in
        let rec go () =
          match Deque.steal d with
          | Deque.Stolen v ->
            acc := v :: !acc;
            go ()
          | Deque.Abort -> go ()
          | Deque.Empty ->
            if Atomic.get stop then !acc
            else begin
              Domain.cpu_relax ();
              go ()
            end
        in
        go ()
      in
      let thieves = List.init nthieves (fun _ -> Domain.spawn thief) in
      let owner_acc = ref [] in
      for i = 0 to n - 1 do
        Deque.push d i;
        (* interleave pops so the owner also races thieves for the bottom *)
        if i land 3 = 0 then
          match Deque.pop d with Some v -> owner_acc := v :: !owner_acc | None -> ()
      done;
      let rec drain () =
        match Deque.pop d with
        | Some v ->
          owner_acc := v :: !owner_acc;
          drain ()
        | None -> ()
      in
      drain ();
      Atomic.set stop true;
      let stolen = List.concat_map Domain.join thieves in
      let all = List.sort compare (!owner_acc @ stolen) in
      all = List.init n (fun i -> i))

(* ---- Real executor ---- *)

(* build a DAG of tasks with real closures: each task appends its id to a
   shared per-datum cell with the dependences enforcing a unique final
   value; then compare against sequential execution. *)
let accumulation_dag n =
  let cells = Array.make 4 0.0 in
  let tasks =
    List.init n (fun id ->
        let d = id mod 4 in
        let run () =
          (* non-commutative update makes ordering violations visible *)
          cells.(d) <- (cells.(d) *. 1.000001) +. float_of_int id
        in
        Task.make ~id ~name:(string_of_int id) ~flops:1.0 ~run
          [ Task.Read_write d ])
  in
  (Dag.build tasks, cells)

let test_real_sequential () =
  let dag, cells = accumulation_dag 40 in
  let stats = Real_exec.run_sequential dag in
  Alcotest.(check int) "all tasks ran" 40 stats.Real_exec.tasks;
  let dag2, cells2 = accumulation_dag 40 in
  ignore (Real_exec.run_sequential dag2);
  Alcotest.(check (array (float 0.0))) "deterministic" cells cells2

let test_real_dataflow_matches_sequential () =
  let dag_seq, cells_seq = accumulation_dag 60 in
  ignore (Real_exec.run_sequential dag_seq);
  let dag_par, cells_par = accumulation_dag 60 in
  let stats = Real_exec.run_dataflow ~workers:4 dag_par in
  Alcotest.(check int) "all tasks ran" 60 stats.Real_exec.tasks;
  (* per-datum chains are serialised by Read_write dependences, so the
     result must be bitwise identical to sequential execution *)
  Alcotest.(check (array (float 0.0))) "same result in parallel" cells_seq cells_par

let test_real_forkjoin_matches_sequential () =
  let dag_seq, cells_seq = accumulation_dag 60 in
  ignore (Real_exec.run_sequential dag_seq);
  let dag_par, cells_par = accumulation_dag 60 in
  let stats = Real_exec.run_forkjoin ~workers:4 dag_par in
  Alcotest.(check int) "all tasks ran" 60 stats.Real_exec.tasks;
  Alcotest.(check (array (float 0.0))) "same result" cells_seq cells_par

let test_real_dataflow_parallel_independent () =
  (* independent tasks with real work: all must complete *)
  let counter = Atomic.make 0 in
  let tasks =
    List.init 32 (fun id ->
        Task.make ~id ~name:"inc" ~flops:1.0
          ~run:(fun () -> Atomic.incr counter)
          [ Task.Write id ])
  in
  let stats = Real_exec.run_dataflow ~workers:4 (Dag.build tasks) in
  Alcotest.(check int) "all ran exactly once" 32 (Atomic.get counter);
  Alcotest.(check bool) "elapsed sane" true (stats.Real_exec.elapsed >= 0.0)

let test_real_missing_closure () =
  let dag = Dag.build [ Task.make ~id:0 ~name:"bare" ~flops:1.0 [ Task.Write 0 ] ] in
  Alcotest.check_raises "no body" (Invalid_argument "Real_exec: task without body: bare")
    (fun () -> ignore (Real_exec.run_dataflow ~workers:2 dag))

(* Closure-free dispatch: op-encoded tasks run through a single interpreter
   with no per-task closures, on every executor. The Gemm coordinates are
   folded non-commutatively so ordering violations would change the sum. *)
let op_dag n =
  List.init n (fun id ->
      let d = id mod 4 in
      Task.make ~id ~name:(Task.op_name (Task.Gemm (id, d, 0))) ~flops:1.0
        ~op:(Task.Gemm (id, d, 0))
        [ Task.Read_write d ])
  |> Dag.build

let run_op_dag run =
  let cells = Array.make 4 0.0 in
  let interp = function
    | Task.Gemm (i, d, _) -> cells.(d) <- (cells.(d) *. 1.000001) +. float_of_int i
    | op -> invalid_arg (Task.op_name op)
  in
  let stats = run ~interp (op_dag 60) in
  (stats, cells)

let test_op_dispatch_all_executors () =
  let seq, cells_seq = run_op_dag (fun ~interp d -> Real_exec.run_sequential ~interp d) in
  Alcotest.(check int) "sequential ran all" 60 seq.Real_exec.tasks;
  let df, cells_df =
    run_op_dag (fun ~interp d -> Real_exec.run_dataflow ~interp ~workers:4 d)
  in
  Alcotest.(check int) "dataflow ran all" 60 df.Real_exec.tasks;
  Alcotest.(check (array (float 0.0))) "dataflow matches sequential" cells_seq cells_df;
  let fj, cells_fj =
    run_op_dag (fun ~interp d -> Real_exec.run_forkjoin ~interp ~workers:4 d)
  in
  Alcotest.(check int) "forkjoin ran all" 60 fj.Real_exec.tasks;
  Alcotest.(check (array (float 0.0))) "forkjoin matches sequential" cells_seq cells_fj

let test_op_without_interp_rejected () =
  (* an op-encoded task has no closure: running without an interpreter must
     fail up front, not mid-flight *)
  let dag = Dag.build [ Task.make ~id:0 ~name:"op" ~flops:1.0 ~op:(Task.Potrf 0) [ Task.Write 0 ] ] in
  Alcotest.check_raises "no interp" (Invalid_argument "Real_exec: task without body: op")
    (fun () -> ignore (Real_exec.run_dataflow ~workers:2 dag))

let test_op_name () =
  Alcotest.(check string) "potrf" "potrf(2,2)" (Task.op_name (Task.Potrf 2));
  Alcotest.(check string) "trsm" "trsm(3,1)" (Task.op_name (Task.Trsm (1, 3)));
  Alcotest.(check string) "gemm" "gemm(3,2,1)" (Task.op_name (Task.Gemm (3, 2, 1)));
  Alcotest.(check string) "trsm_l" "trsm_l(0,2)" (Task.op_name (Task.Trsm_l (0, 2)))

let test_real_empty_dag () =
  let stats = Real_exec.run_dataflow ~workers:4 (Dag.build []) in
  Alcotest.(check int) "no tasks" 0 stats.Real_exec.tasks

let test_default_workers () =
  let w = Real_exec.default_workers () in
  Alcotest.(check bool) "1..8" true (w >= 1 && w <= 8)

(* ---- executor fault paths: a raising task body must abort the run
   cleanly (ready queues dropped, parked workers woken, domains joined) and
   surface as Task_failed carrying the task's identity ---- *)

let failing_chain n fail_at =
  let counter = Atomic.make 0 in
  let tasks =
    List.init n (fun id ->
        let run () = if id = fail_at then failwith "boom" else Atomic.incr counter in
        Task.make ~id ~name:(Printf.sprintf "t%d" id) ~flops:1.0 ~run [ Task.Read_write 0 ])
  in
  (Dag.build tasks, counter)

let check_task_failed name run =
  let dag, counter = failing_chain 50 25 in
  match run dag with
  | (_ : Real_exec.stats) -> Alcotest.failf "%s: expected Task_failed" name
  | exception Real_exec.Task_failed f ->
    Alcotest.(check int) (name ^ ": failing task id") 25 f.Real_exec.failed_task;
    Alcotest.(check string) (name ^ ": failing task name") "t25" f.Real_exec.failed_name;
    (match f.Real_exec.error with
    | Failure m -> Alcotest.(check string) (name ^ ": original exn kept") "boom" m
    | e -> Alcotest.failf "%s: unexpected error %s" name (Printexc.to_string e));
    (* the chain serialises everything, so exactly the 25 predecessors ran
       and no dependent of the failed task ever started *)
    Alcotest.(check int) (name ^ ": frontier stopped at the fault") 25 (Atomic.get counter)

let test_task_failed_sequential () =
  check_task_failed "sequential" (fun d -> Real_exec.run_sequential d)

let test_task_failed_dataflow () =
  (* repeated runs shake out lost-wakeup races in the abort path: the chain
     keeps at most one task ready, so three of the four workers are parked
     on the idle condvar when the failure fires — a missed broadcast would
     deadlock the join *)
  for _ = 1 to 20 do
    check_task_failed "dataflow" (fun d -> Real_exec.run_dataflow ~workers:4 d)
  done

let test_task_failed_forkjoin () =
  for _ = 1 to 20 do
    check_task_failed "forkjoin" (fun d -> Real_exec.run_forkjoin ~workers:4 d)
  done

let test_task_failed_wide_dataflow () =
  (* failure while independent work is genuinely in flight on other
     workers: the run must still terminate and report the failure *)
  for _ = 1 to 10 do
    let tasks =
      List.init 64 (fun id ->
          let run () = if id = 40 then failwith "mid" else () in
          Task.make ~id ~name:(Printf.sprintf "w%d" id) ~flops:1.0 ~run [ Task.Write id ])
    in
    match Real_exec.run_dataflow ~workers:4 (Dag.build tasks) with
    | _ -> Alcotest.fail "expected Task_failed"
    | exception Real_exec.Task_failed f ->
      Alcotest.(check int) "failed id" 40 f.Real_exec.failed_task
  done

let test_executor_reusable_after_failure () =
  (* an aborted run must leave no residue that breaks the next run *)
  let dag, _ = failing_chain 20 10 in
  (try ignore (Real_exec.run_dataflow ~workers:4 dag) with Real_exec.Task_failed _ -> ());
  let dag_ok, cells = accumulation_dag 40 in
  let stats = Real_exec.run_dataflow ~workers:4 dag_ok in
  Alcotest.(check int) "clean run completes" 40 stats.Real_exec.tasks;
  let dag_ref, cells_ref = accumulation_dag 40 in
  ignore (Real_exec.run_sequential dag_ref);
  Alcotest.(check (array (float 0.0))) "clean run correct" cells_ref cells

let test_task_failures_counted () =
  let value () =
    match List.assoc_opt "runtime.task_failures" (Xsc_obs.Metrics.snapshot ()) with
    | Some (Xsc_obs.Metrics.Counter n) -> n
    | _ -> 0
  in
  let before = value () in
  let dag, _ = failing_chain 10 5 in
  (try ignore (Real_exec.run_sequential dag) with Real_exec.Task_failed _ -> ());
  Alcotest.(check int) "failure tallied" (before + 1) (value ())

(* qcheck oracle over random accumulation DAGs: the work-stealing executor
   (with and without a priority hook) must reproduce sequential results
   bit-for-bit at any worker count. *)
let prop_dataflow_bitwise_oracle =
  QCheck.Test.make ~name:"dataflow = sequential bitwise on random DAGs" ~count:15
    QCheck.(triple (int_range 8 80) (int_range 1 8) bool)
    (fun (n, workers, with_priority) ->
      let dag_seq, cells_seq = accumulation_dag n in
      ignore (Real_exec.run_sequential dag_seq);
      let dag_par, cells_par = accumulation_dag n in
      let priority = if with_priority then Some (fun id -> n - id) else None in
      let stats = Real_exec.run_dataflow ?priority ~workers dag_par in
      stats.Real_exec.tasks = n && cells_seq = cells_par)

(* ---- oracle: tiled factorizations on real domains ---- *)

module Tile = Xsc_tile.Tile
module Mat = Xsc_linalg.Mat

let tiles_bitwise_equal (a : Tile.t) (b : Tile.t) =
  a.Tile.mt = b.Tile.mt && a.Tile.nt = b.Tile.nt
  &&
  let ok = ref true in
  for i = 0 to a.Tile.mt - 1 do
    for j = 0 to a.Tile.nt - 1 do
      (* structural equality on the float arrays: bit-for-bit, not approx *)
      if (Tile.tile a i j).Mat.data <> (Tile.tile b i j).Mat.data then ok := false
    done
  done;
  !ok

(* For each factorization, run the sequential oracle once, then check every
   executor variant at workers in {1, 2, 4, 8} reproduces the exact same
   tiles: the dependence edges serialise every numerically non-commuting
   pair of kernels, so any scheduling bug shows up as a bitwise diff. *)
let factorization_oracle ~name ~dag_of ~make_input sizes =
  List.iter
    (fun (nt, nb) ->
      let input = make_input ~nt ~nb in
      let seq_tiles = Tile.of_mat ~nb input in
      ignore (Real_exec.run_sequential (dag_of seq_tiles));
      let check_variant variant_name run =
        let tiles = Tile.of_mat ~nb input in
        ignore (run (dag_of tiles));
        Alcotest.(check bool)
          (Printf.sprintf "%s nt=%d nb=%d %s" name nt nb variant_name)
          true
          (tiles_bitwise_equal seq_tiles tiles)
      in
      List.iter
        (fun workers ->
          let w = string_of_int workers in
          check_variant ("dataflow w=" ^ w) (Real_exec.run_dataflow ~workers);
          check_variant
            ("dataflow+cp w=" ^ w)
            (fun dag ->
              Real_exec.run_dataflow
                ~priority:(Xsc_core.Runtime_api.critical_path_priority dag)
                ~workers dag);
          check_variant ("forkjoin w=" ^ w) (Real_exec.run_forkjoin ~workers))
        [ 1; 2; 4; 8 ])
    sizes

let test_oracle_cholesky () =
  let rng = Rng.create 42 in
  factorization_oracle ~name:"cholesky"
    ~dag_of:(fun t -> Xsc_core.Cholesky.dag t)
    ~make_input:(fun ~nt ~nb -> Mat.random_spd rng (nt * nb))
    [ (4, 8); (6, 4) ]

let test_oracle_lu () =
  let rng = Rng.create 43 in
  factorization_oracle ~name:"lu"
    ~dag_of:(fun t -> Xsc_core.Lu.dag t)
    ~make_input:(fun ~nt ~nb -> Mat.random_diag_dominant rng (nt * nb))
    [ (4, 8); (6, 4) ]

let test_dataflow_stats_reported () =
  (* a wide independent DAG at 4 workers: the run must report non-negative
     steal/park counters and complete every task *)
  let counter = Atomic.make 0 in
  let tasks =
    List.init 64 (fun id ->
        Task.make ~id ~name:"inc" ~flops:1.0
          ~run:(fun () -> Atomic.incr counter)
          [ Task.Write id ])
  in
  let stats = Real_exec.run_dataflow ~workers:4 (Dag.build tasks) in
  Alcotest.(check int) "all ran" 64 (Atomic.get counter);
  Alcotest.(check bool) "steals >= 0" true (stats.Real_exec.steals >= 0);
  Alcotest.(check bool) "parks >= 0" true (stats.Real_exec.parks >= 0)

(* ---- Trace ---- *)

let test_trace_metrics () =
  let t = Trace.create ~workers:2 in
  Trace.add t { Trace.task = 0; name = "a"; worker = 0; start = 0.0; finish = 2.0 };
  Trace.add t { Trace.task = 1; name = "b"; worker = 1; start = 1.0; finish = 2.0 };
  Alcotest.(check (float 0.0)) "makespan" 2.0 (Trace.makespan t);
  Alcotest.(check (float 0.0)) "busy" 3.0 (Trace.busy_time t);
  Alcotest.(check (float 1e-12)) "utilization" 0.75 (Trace.utilization t);
  Alcotest.(check int) "entries sorted by start" 0
    (List.hd (Trace.entries t)).Trace.task

let test_trace_gantt () =
  let t = Trace.create ~workers:2 in
  Trace.add t { Trace.task = 0; name = "a"; worker = 0; start = 0.0; finish = 1.0 };
  let g = Trace.gantt ~width:20 t in
  Alcotest.(check bool) "has rows" true (String.length g > 20);
  Alcotest.(check bool) "busy marker present" true (String.contains g '#')

let test_trace_validation () =
  let t = Trace.create ~workers:1 in
  Alcotest.check_raises "bad worker" (Invalid_argument "Trace.add: bad worker") (fun () ->
      Trace.add t { Trace.task = 0; name = "x"; worker = 3; start = 0.0; finish = 1.0 })

let test_trace_chrome_json () =
  let t = Trace.create ~workers:2 in
  Trace.add t { Trace.task = 5; name = "gemm(1,\"2\")"; worker = 1; start = 1e-3; finish = 2e-3 };
  let json = Trace.to_chrome_json t in
  Alcotest.(check bool) "is an array" true
    (json.[0] = '[' && json.[String.length json - 1] = ']');
  Alcotest.(check bool) "has the event" true
    (let sub = {|"ph":"X"|} in
     let rec contains i =
       i + String.length sub <= String.length json
       && (String.sub json i (String.length sub) = sub || contains (i + 1))
     in
     contains 0);
  Alcotest.(check bool) "quotes escaped" true
    (let sub = {|\"2\"|} in
     let rec contains i =
       i + String.length sub <= String.length json
       && (String.sub json i (String.length sub) = sub || contains (i + 1))
     in
     contains 0)

let test_trace_by_kernel () =
  let t = Trace.create ~workers:2 in
  Trace.add t { Trace.task = 0; name = "gemm(0,0,0)"; worker = 0; start = 0.0; finish = 2.0 };
  Trace.add t { Trace.task = 1; name = "gemm(1,0,0)"; worker = 1; start = 0.0; finish = 3.0 };
  Trace.add t { Trace.task = 2; name = "potrf(0)"; worker = 0; start = 2.0; finish = 3.0 };
  (match Trace.by_kernel t with
  | [ ("gemm", gt, gc); ("potrf", pt, pc) ] ->
    Alcotest.(check (float 0.0)) "gemm time" 5.0 gt;
    Alcotest.(check int) "gemm count" 2 gc;
    Alcotest.(check (float 0.0)) "potrf time" 1.0 pt;
    Alcotest.(check int) "potrf count" 1 pc
  | other ->
    Alcotest.failf "unexpected profile (%d families)" (List.length other))

let test_trace_utilization_zero_makespan () =
  (* regression: a trace whose entries all have zero duration must not
     divide by zero *)
  let t = Trace.create ~workers:4 in
  Alcotest.(check (float 0.0)) "empty trace" 0.0 (Trace.utilization t);
  Trace.add t { Trace.task = 0; name = "x"; worker = 0; start = 0.0; finish = 0.0 };
  Alcotest.(check (float 0.0)) "zero-makespan trace" 0.0 (Trace.utilization t);
  Alcotest.(check bool) "gantt survives too" true
    (String.length (Trace.gantt t) > 0)

let test_trace_by_kernel_rates () =
  let t = Trace.create ~workers:1 in
  Trace.add t { Trace.task = 0; name = "gemm(0)"; worker = 0; start = 0.0; finish = 2.0 };
  Trace.add t { Trace.task = 1; name = "gemm(1)"; worker = 0; start = 2.0; finish = 4.0 };
  let flops_of = function 0 -> 6.0 | 1 -> 2.0 | _ -> 0.0 in
  match Trace.by_kernel_rates t ~flops_of with
  | [ ("gemm", busy, 2, rate) ] ->
    Alcotest.(check (float 0.0)) "busy" 4.0 busy;
    Alcotest.(check (float 1e-12)) "rate = flops / busy" 2.0 rate
  | other -> Alcotest.failf "unexpected rates (%d families)" (List.length other)

(* ---- Telemetry on real runs ---- *)

module Json = Xsc_util.Json

let traced_cholesky ~seed ~executor () =
  let rng = Rng.create seed in
  let a = Mat.random_spd rng 32 in
  let tiles = Tile.of_mat ~nb:8 a in
  let dag = Xsc_core.Cholesky.dag tiles in
  let stats =
    match executor with
    | `Dataflow -> Real_exec.run_dataflow ~trace:true ~workers:4 dag
    | `Forkjoin -> Real_exec.run_forkjoin ~trace:true ~workers:4 dag
  in
  (dag, stats)

let test_traced_run_bitwise_identical () =
  (* tracing must observe, never perturb: the traced factorization is
     bit-for-bit the untraced one *)
  let rng = Rng.create 11 in
  let a = Mat.random_spd rng 32 in
  let t_off = Tile.of_mat ~nb:8 a in
  let t_on = Tile.of_mat ~nb:8 a in
  ignore (Real_exec.run_dataflow ~trace:false ~workers:4 (Xsc_core.Cholesky.dag t_off));
  let s = Real_exec.run_dataflow ~trace:true ~workers:4 (Xsc_core.Cholesky.dag t_on) in
  Alcotest.(check bool) "trace present when asked" true (s.Real_exec.trace <> None);
  Alcotest.(check bool) "factorization bitwise identical" true
    (tiles_bitwise_equal t_off t_on)

let test_untraced_has_no_trace () =
  let rng = Rng.create 13 in
  let a = Mat.random_spd rng 16 in
  let s = Real_exec.run_dataflow ~workers:2 (Xsc_core.Cholesky.dag (Tile.of_mat ~nb:8 a)) in
  match Sys.getenv_opt "XSC_TRACE" with
  | None -> Alcotest.(check bool) "no trace by default" true (s.Real_exec.trace = None)
  | Some _ -> ()

let test_real_trace_contents () =
  let dag, stats = traced_cholesky ~seed:12 ~executor:`Dataflow () in
  match stats.Real_exec.trace with
  | None -> Alcotest.fail "expected a trace"
  | Some tr ->
    Alcotest.(check int) "one entry per task" (Dag.n_tasks dag)
      (List.length (Trace.entries tr));
    Alcotest.(check bool) "positive makespan" true (Trace.makespan tr > 0.0);
    let u = Trace.utilization tr in
    Alcotest.(check bool) "utilization in (0,1]" true (u > 0.0 && u <= 1.0)

let test_real_chrome_json_roundtrip () =
  (* the emitted Chrome trace must parse as JSON: an array with one complete
     ("ph":"X") event per task, each with name/ts/dur and a worker tid *)
  let dag, stats = traced_cholesky ~seed:14 ~executor:`Dataflow () in
  let tr = Option.get stats.Real_exec.trace in
  match Json.parse (Trace.to_chrome_json tr) with
  | Json.List events ->
    Alcotest.(check int) "one event per task" (Dag.n_tasks dag) (List.length events);
    List.iter
      (fun ev ->
        let str k =
          match Json.member k ev with
          | Some (Json.Str s) -> s
          | _ -> Alcotest.failf "event missing string %S" k
        in
        let num k =
          match Json.member k ev with
          | Some (Json.Num f) -> f
          | _ -> Alcotest.failf "event missing number %S" k
        in
        Alcotest.(check string) "complete event" "X" (str "ph");
        Alcotest.(check bool) "has a kernel name" true (String.length (str "name") > 0);
        Alcotest.(check bool) "ts >= 0" true (num "ts" >= 0.0);
        Alcotest.(check bool) "dur >= 0" true (num "dur" >= 0.0);
        let tid = int_of_float (num "tid") in
        Alcotest.(check bool) "tid is a worker" true (tid >= 0 && tid < 4))
      events
  | _ -> Alcotest.fail "chrome trace is not a JSON array"

let test_steal_attempts_and_park_time () =
  let counter = Atomic.make 0 in
  let tasks =
    List.init 64 (fun id ->
        Task.make ~id ~name:"inc" ~flops:1.0
          ~run:(fun () -> Atomic.incr counter)
          [ Task.Write id ])
  in
  let s = Real_exec.run_dataflow ~workers:4 (Dag.build tasks) in
  Alcotest.(check bool) "attempts cover successes" true
    (s.Real_exec.steal_attempts >= s.Real_exec.steals);
  Alcotest.(check bool) "park time non-negative" true (s.Real_exec.park_time >= 0.0);
  Alcotest.(check bool) "park time consistent with parks" true
    (s.Real_exec.parks > 0 || s.Real_exec.park_time = 0.0)

let test_forkjoin_trace_and_barrier_wait () =
  let dag, stats = traced_cholesky ~seed:15 ~executor:`Forkjoin () in
  (match stats.Real_exec.trace with
  | None -> Alcotest.fail "expected a trace"
  | Some tr ->
    Alcotest.(check int) "one entry per task" (Dag.n_tasks dag)
      (List.length (Trace.entries tr)));
  Alcotest.(check bool) "barrier wait accounted" true (stats.Real_exec.park_time >= 0.0)

(* ---- Hetero ---- *)

module Hetero = Xsc_runtime.Hetero

let hetero_dag () =
  let t = Xsc_tile.Tile.create ~rows:64 ~cols:64 ~nb:8 in
  Xsc_core.Cholesky.dag ~with_closures:false t

let test_hetero_schedules_valid () =
  let dag = hetero_dag () in
  let cfg = Hetero.config ~rates:(Hetero.two_tier ~fast:2 ~slow:4 ~fast_rate:4e9 ~slow_rate:1e9) () in
  List.iter
    (fun r -> Alcotest.(check bool) "valid order" true (Dag.validate_schedule dag ~order:r.Hetero.order))
    [ Hetero.run_bsp cfg dag; Hetero.run_bsp_oblivious cfg dag; Hetero.run_dataflow cfg dag ]

let test_hetero_dataflow_beats_oblivious () =
  let dag = hetero_dag () in
  let cfg = Hetero.config ~rates:(Hetero.two_tier ~fast:1 ~slow:1 ~fast_rate:10e9 ~slow_rate:1e9) () in
  let naive = Hetero.run_bsp_oblivious cfg dag in
  let dyn = Hetero.run_dataflow cfg dag in
  Alcotest.(check bool) "dataflow faster on skewed rates" true
    (dyn.Hetero.makespan < naive.Hetero.makespan);
  Alcotest.(check bool) "above the throughput bound" true
    (dyn.Hetero.makespan >= Hetero.ideal_time cfg dag)

let test_hetero_uniform_matches_homogeneous_shape () =
  (* with equal rates, the heterogeneous scheduler reduces to ordinary list
     scheduling: makespan within task-overhead noise of Sim_exec *)
  let dag = hetero_dag () in
  let hcfg = Hetero.config ~task_overhead:0.0 ~rates:(Array.make 4 1e9) () in
  let scfg = Sim_exec.config ~task_overhead:0.0 ~workers:4 ~rate:1e9 () in
  let h = Hetero.run_dataflow hcfg dag in
  let s = Sim_exec.run scfg Sim_exec.List_critical_path dag in
  let ratio = h.Hetero.makespan /. s.Sim_exec.makespan in
  Alcotest.(check bool) "within 10%" true (ratio > 0.9 && ratio < 1.1)

let test_hetero_faster_rates_help () =
  let dag = hetero_dag () in
  let slow = Hetero.config ~task_overhead:0.0 ~barrier_cost:0.0 ~rates:(Array.make 4 1e9) () in
  let fast = Hetero.config ~task_overhead:0.0 ~barrier_cost:0.0 ~rates:(Array.make 4 4e9) () in
  Alcotest.(check bool) "4x rates shrink the makespan" true
    ((Hetero.run_dataflow fast dag).Hetero.makespan
    < (Hetero.run_dataflow slow dag).Hetero.makespan /. 2.0)

let test_hetero_validation () =
  Alcotest.check_raises "no workers" (Invalid_argument "Hetero.config: no workers") (fun () ->
      ignore (Hetero.config ~rates:[||] ()));
  Alcotest.check_raises "bad rate" (Invalid_argument "Hetero.config: rates must be positive")
    (fun () -> ignore (Hetero.config ~rates:[| 1e9; 0.0 |] ()))

(* ---- composite priority key ---- *)

module Prio = Xsc_runtime.Prio
module Pqueue = Xsc_runtime.Pqueue
module Pool = Xsc_runtime.Pool
module PD = Xsc_tile.Packed.D

let pk ?(bl = 0) ?(seq = 0) ?(tid = 0) d = Prio.make ~deadline_ns:d ~bl ~seq ~tid

let test_prio_edf_dominates () =
  (* an earlier deadline beats any critical-path depth *)
  Alcotest.(check bool) "earlier deadline wins" true
    (Prio.before (pk ~bl:0 ~seq:99 ~tid:99 10) (pk ~bl:1_000_000 20));
  Alcotest.(check bool) "strict order" false
    (Prio.before (pk ~bl:1_000_000 20) (pk ~bl:0 ~seq:99 ~tid:99 10))

let test_prio_bl_breaks_ties () =
  (* equal deadlines fall to flops-weighted bottom level, deeper first *)
  Alcotest.(check bool) "deeper critical path first" true
    (Prio.before (pk ~bl:900_000 ~seq:7 ~tid:3 10) (pk ~bl:100_000 10));
  Alcotest.(check bool) "shallower loses" false
    (Prio.before (pk ~bl:100_000 10) (pk ~bl:900_000 ~seq:7 ~tid:3 10))

let test_prio_fifo_ties () =
  Alcotest.(check bool) "equal (deadline, bl): job FIFO by seq" true
    (Prio.before (pk ~bl:5 ~seq:1 ~tid:9 10) (pk ~bl:5 ~seq:2 10));
  Alcotest.(check bool) "same job: program order by tid" true
    (Prio.before (pk ~bl:5 ~seq:1 ~tid:0 10) (pk ~bl:5 ~seq:1 ~tid:1 10));
  Alcotest.(check int) "identical keys compare equal" 0
    (Prio.compare (pk ~bl:2 ~seq:3 ~tid:4 1) (pk ~bl:2 ~seq:3 ~tid:4 1))

let test_prio_bl_ranks () =
  (* chain 0 -> 1 -> 2 with flops 10/20/30: bottom levels 60/50/30 over a
     critical path of 60, normalised to the 0..1e6 scale *)
  let t id flops access = Task.make ~id ~name:"t" ~flops ~run:(fun () -> ()) access in
  let d =
    Dag.build
      [
        t 0 10.0 [ Task.Write 0 ];
        t 1 20.0 [ Task.Read 0; Task.Write 1 ];
        t 2 30.0 [ Task.Read 1; Task.Write 2 ];
      ]
  in
  let r = Prio.bl_ranks d in
  Alcotest.(check int) "source carries the critical path" 1_000_000 r.(0);
  Alcotest.(check int) "mid" (int_of_float (1e6 *. 50.0 /. 60.0)) r.(1);
  Alcotest.(check int) "sink" 500_000 r.(2)

(* ---- injection queue ---- *)

let test_pqueue_pop_order () =
  let q = Pqueue.create () in
  List.iteri (fun i k -> Pqueue.push q k i)
    [ pk 30; pk ~bl:1 10; pk ~bl:9 10; pk 20 ];
  Alcotest.(check int) "length" 4 (Pqueue.length q);
  Alcotest.(check int) "cached min deadline" 10 (Pqueue.min_deadline q);
  let handles = List.init 4 (fun _ -> snd (Option.get (Pqueue.pop q))) in
  (* within deadline 10 the deeper bottom level first, then 20, then 30 *)
  Alcotest.(check (list int)) "priority order" [ 2; 1; 3; 0 ] handles;
  Alcotest.(check bool) "drained" true (Pqueue.is_empty q);
  Alcotest.(check int) "empty min deadline" max_int (Pqueue.min_deadline q);
  Alcotest.(check bool) "pop on empty" true (Pqueue.pop q = None)

let test_pqueue_deadline_gate () =
  let q = Pqueue.create () in
  Pqueue.push q (pk 100) 7;
  Alcotest.(check bool) "equal deadline does not preempt" true
    (Pqueue.pop_if_deadline_before q 100 = None);
  Alcotest.(check bool) "strictly later local deadline yields" true
    (match Pqueue.pop_if_deadline_before q 101 with Some (_, 7) -> true | _ -> false);
  Alcotest.(check bool) "empty queue never pops" true
    (Pqueue.pop_if_deadline_before q max_int = None)

(* ---- shared deadline-aware task pool ---- *)

let wait_for ?(timeout_s = 30.0) pred =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    pred ()
    || (Unix.gettimeofday () -. t0 < timeout_s
       && begin
            Unix.sleepf 0.001;
            go ()
          end)
  in
  go ()

let pbuf_equal (a : PD.t) (b : PD.t) =
  let da = a.PD.buf and db = b.PD.buf in
  let dim = Bigarray.Array1.dim da in
  let rec go i =
    i >= dim
    || (Int64.equal (Int64.bits_of_float da.{i}) (Int64.bits_of_float db.{i}) && go (i + 1))
  in
  Bigarray.Array1.dim db = dim && go 0

(* Six factorizations of three geometries in flight at once on two pool
   workers, every result bitwise-identical to its own sequential run: the
   composite key may interleave them any way it likes, the dependence
   edges still serialise every non-commuting kernel pair. *)
let test_pool_concurrent_jobs_bitwise () =
  let pool = Pool.create ~workers:2 () in
  let jobs =
    List.init 6 (fun i ->
        let nt = 3 + (i mod 3) and nb = 8 in
        let rng = Rng.create (50 + i) in
        let a = Mat.random_spd rng (nt * nb) in
        let dag = Xsc_core.Cholesky.dag_ops ~nt ~nb in
        let reference = PD.of_mat ~nb a in
        ignore
          (Real_exec.run_sequential
             ~interp:(Xsc_core.Cholesky.packed_interp reference)
             dag);
        (dag, reference, PD.of_mat ~nb a))
  in
  let left = Atomic.make (List.length jobs) in
  let failures = Atomic.make 0 in
  List.iteri
    (fun i (dag, _, p) ->
      Pool.submit
        ~interp:(Xsc_core.Cholesky.packed_interp p)
        ~deadline_ns:(1000 + i) pool dag
        ~on_done:(fun f ~worker:_ ->
          (match f with Some _ -> Atomic.incr failures | None -> ());
          Atomic.decr left))
    jobs;
  Alcotest.(check bool) "all jobs completed" true (wait_for (fun () -> Atomic.get left = 0));
  Alcotest.(check int) "no failures" 0 (Atomic.get failures);
  Alcotest.(check int) "no live jobs" 0 (Pool.live_jobs pool);
  List.iteri
    (fun i (_, reference, p) ->
      Alcotest.(check bool) (Printf.sprintf "job %d bitwise" i) true (pbuf_equal reference p))
    jobs;
  Pool.shutdown pool

let test_pool_failure_isolation () =
  let pool = Pool.create ~workers:2 () in
  let boom_after = Atomic.make 0 in
  let boom_dag =
    Dag.build
      [
        Task.make ~id:0 ~name:"ok0" ~flops:1.0 ~run:(fun () -> ()) [ Task.Write 0 ];
        Task.make ~id:1 ~name:"boom" ~flops:1.0
          ~run:(fun () -> failwith "boom")
          [ Task.Read 0; Task.Write 1 ];
        Task.make ~id:2 ~name:"after" ~flops:1.0
          ~run:(fun () -> Atomic.incr boom_after)
          [ Task.Read 1; Task.Write 2 ];
      ]
  in
  let cell = Atomic.make 0 in
  let clean_dag () =
    Dag.build
      [ Task.make ~id:0 ~name:"inc" ~flops:1.0 ~run:(fun () -> Atomic.incr cell) [ Task.Write 0 ] ]
  in
  let fail_name = ref None and fail_seen = Atomic.make false and ok_seen = Atomic.make false in
  Pool.submit pool boom_dag ~on_done:(fun f ~worker:_ ->
      (match f with Some f -> fail_name := Some f.Real_exec.failed_name | None -> ());
      Atomic.set fail_seen true);
  Pool.submit pool (clean_dag ()) ~on_done:(fun f ~worker:_ ->
      if f = None then Atomic.set ok_seen true);
  Alcotest.(check bool) "both callbacks fired exactly once" true
    (wait_for (fun () -> Atomic.get fail_seen && Atomic.get ok_seen));
  Alcotest.(check (option string)) "failure names the task" (Some "boom") !fail_name;
  Alcotest.(check int) "successor of failed task drained, body skipped" 0
    (Atomic.get boom_after);
  Alcotest.(check int) "concurrent clean job untouched" 1 (Atomic.get cell);
  (* the pool survives the failure: blocking runs still work *)
  ignore (Pool.run pool (clean_dag ()));
  Alcotest.(check int) "post-failure run" 2 (Atomic.get cell);
  Pool.shutdown pool

let test_pool_dynamic_insertion () =
  let pool = Pool.create ~workers:2 () in
  let order = Atomic.make [] in
  let push x =
    let rec go () =
      let l = Atomic.get order in
      if not (Atomic.compare_and_set order l (x :: l)) then go ()
    in
    go ()
  in
  let mk name =
    Dag.build
      [ Task.make ~id:0 ~name ~flops:1.0 ~run:(fun () -> push name) [ Task.Write 0 ] ]
  in
  let finished = Atomic.make false in
  (* a completion callback may submit the follow-up job directly *)
  Pool.submit pool (mk "first") ~on_done:(fun _ ~worker:_ ->
      Pool.submit pool (mk "second") ~on_done:(fun _ ~worker:_ -> Atomic.set finished true));
  Alcotest.(check bool) "chained jobs completed" true
    (wait_for (fun () -> Atomic.get finished));
  Alcotest.(check (list string)) "ran in submission order" [ "second"; "first" ]
    (Atomic.get order);
  Pool.shutdown pool

let test_pool_edf_between_jobs () =
  (* one worker, a deadline-less 20-task job mid-flight: an urgent job
     submitted after it must complete before the slow job drains, because
     every injection-queue pop follows the composite key *)
  let pool = Pool.create ~workers:1 () in
  let slow_done = Atomic.make false and urgent_preempted = Atomic.make false in
  let slow =
    Dag.build
      (List.init 20 (fun id ->
           Task.make ~id ~name:"slow" ~flops:1.0
             ~run:(fun () -> Unix.sleepf 0.002)
             [ Task.Write id ]))
  in
  Pool.submit pool slow ~on_done:(fun _ ~worker:_ -> Atomic.set slow_done true);
  Unix.sleepf 0.004;
  let urgent =
    Dag.build [ Task.make ~id:0 ~name:"urgent" ~flops:1.0 ~run:(fun () -> ()) [ Task.Write 0 ] ]
  in
  Pool.submit ~deadline_ns:1 pool urgent ~on_done:(fun _ ~worker:_ ->
      Atomic.set urgent_preempted (not (Atomic.get slow_done)));
  Alcotest.(check bool) "both jobs completed" true
    (wait_for (fun () -> Atomic.get slow_done));
  Alcotest.(check bool) "urgent job finished before the slow job drained" true
    (Atomic.get urgent_preempted);
  Pool.shutdown pool

let test_pool_run_and_lifecycle () =
  let pool = Pool.create ~workers:1 () in
  let hits = Atomic.make 0 in
  let dag () =
    Dag.build
      (List.init 16 (fun id ->
           Task.make ~id ~name:"inc" ~flops:1.0
             ~run:(fun () -> Atomic.incr hits)
             [ Task.Write id ]))
  in
  ignore (Pool.run pool (dag ()));
  Alcotest.(check int) "blocking run executed every task" 16 (Atomic.get hits);
  let boom =
    Dag.build
      [ Task.make ~id:0 ~name:"boom" ~flops:1.0 ~run:(fun () -> failwith "x") [ Task.Write 0 ] ]
  in
  (match Pool.run pool boom with
  | _ -> Alcotest.fail "expected Task_failed"
  | exception Real_exec.Task_failed f ->
    Alcotest.(check string) "failure names the task" "boom" f.Real_exec.failed_name);
  let inline_worker = ref 99 in
  Pool.submit pool (Dag.build []) ~on_done:(fun _ ~worker -> inline_worker := worker);
  Alcotest.(check int) "empty dag completes inline" (-1) !inline_worker;
  Pool.shutdown pool;
  Pool.shutdown pool;
  (* idempotent *)
  Alcotest.(check bool) "submit after shutdown refused" true
    (match Pool.submit pool (dag ()) ~on_done:(fun _ ~worker:_ -> ()) with
    | () -> false
    | exception Invalid_argument _ -> true)

let () =
  Alcotest.run "xsc_runtime"
    [
      ( "task",
        [
          Alcotest.test_case "reads/writes" `Quick test_task_reads_writes;
          Alcotest.test_case "datum" `Quick test_task_datum;
          Alcotest.test_case "negative flops" `Quick test_task_negative_flops;
        ] );
      ( "dag",
        [
          Alcotest.test_case "RAW" `Quick test_dag_raw;
          Alcotest.test_case "WAR" `Quick test_dag_war;
          Alcotest.test_case "WAW" `Quick test_dag_waw;
          Alcotest.test_case "independent readers" `Quick test_dag_independent_readers;
          Alcotest.test_case "independent data" `Quick test_dag_independent_data;
          Alcotest.test_case "RW chain" `Quick test_dag_rw_chain;
          Alcotest.test_case "diamond" `Quick test_dag_diamond;
          Alcotest.test_case "numbering check" `Quick test_dag_numbering_check;
          Alcotest.test_case "flops/critical path" `Quick test_dag_flops;
          Alcotest.test_case "to_dot" `Quick test_dag_to_dot;
          Alcotest.test_case "validate_schedule" `Quick test_validate_schedule;
        ] );
      ( "sim_exec",
        [
          qcheck prop_policies_produce_valid_schedules;
          qcheck prop_makespan_bounds;
          Alcotest.test_case "single worker" `Quick test_single_worker_serialises;
          Alcotest.test_case "dag beats bsp" `Quick test_dag_beats_bsp_on_cholesky_shape;
          Alcotest.test_case "comm cost" `Quick test_comm_cost_slows_things;
          Alcotest.test_case "work stealing deterministic" `Quick
            test_work_stealing_deterministic_per_seed;
        ] );
      ( "deque",
        [
          Alcotest.test_case "owner LIFO" `Quick test_deque_owner_lifo;
          Alcotest.test_case "steal FIFO" `Quick test_deque_steal_fifo;
          Alcotest.test_case "mixed ends" `Quick test_deque_mixed_ends;
          qcheck prop_deque_concurrent_thieves;
        ] );
      ( "real_exec",
        [
          Alcotest.test_case "sequential" `Quick test_real_sequential;
          Alcotest.test_case "dataflow = sequential" `Quick
            test_real_dataflow_matches_sequential;
          Alcotest.test_case "forkjoin = sequential" `Quick
            test_real_forkjoin_matches_sequential;
          Alcotest.test_case "parallel independent" `Quick
            test_real_dataflow_parallel_independent;
          Alcotest.test_case "missing closure" `Quick test_real_missing_closure;
          Alcotest.test_case "op dispatch all executors" `Quick
            test_op_dispatch_all_executors;
          Alcotest.test_case "op without interp rejected" `Quick
            test_op_without_interp_rejected;
          Alcotest.test_case "op names" `Quick test_op_name;
          Alcotest.test_case "empty dag" `Quick test_real_empty_dag;
          Alcotest.test_case "default workers" `Quick test_default_workers;
          Alcotest.test_case "task failure: sequential" `Quick test_task_failed_sequential;
          Alcotest.test_case "task failure: dataflow (parked workers)" `Quick
            test_task_failed_dataflow;
          Alcotest.test_case "task failure: forkjoin" `Quick test_task_failed_forkjoin;
          Alcotest.test_case "task failure: dataflow in flight" `Quick
            test_task_failed_wide_dataflow;
          Alcotest.test_case "executor reusable after failure" `Quick
            test_executor_reusable_after_failure;
          Alcotest.test_case "task failures counted" `Quick test_task_failures_counted;
          qcheck prop_dataflow_bitwise_oracle;
          Alcotest.test_case "oracle: tiled cholesky" `Quick test_oracle_cholesky;
          Alcotest.test_case "oracle: tiled LU" `Quick test_oracle_lu;
          Alcotest.test_case "scheduler stats" `Quick test_dataflow_stats_reported;
        ] );
      ( "trace",
        [
          Alcotest.test_case "metrics" `Quick test_trace_metrics;
          Alcotest.test_case "gantt" `Quick test_trace_gantt;
          Alcotest.test_case "validation" `Quick test_trace_validation;
          Alcotest.test_case "chrome json" `Quick test_trace_chrome_json;
          Alcotest.test_case "by_kernel profile" `Quick test_trace_by_kernel;
          Alcotest.test_case "utilization zero makespan" `Quick
            test_trace_utilization_zero_makespan;
          Alcotest.test_case "by_kernel rates" `Quick test_trace_by_kernel_rates;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "traced run bitwise identical" `Quick
            test_traced_run_bitwise_identical;
          Alcotest.test_case "untraced has no trace" `Quick test_untraced_has_no_trace;
          Alcotest.test_case "real trace contents" `Quick test_real_trace_contents;
          Alcotest.test_case "chrome json round-trip" `Quick
            test_real_chrome_json_roundtrip;
          Alcotest.test_case "steal attempts and park time" `Quick
            test_steal_attempts_and_park_time;
          Alcotest.test_case "forkjoin trace and barrier wait" `Quick
            test_forkjoin_trace_and_barrier_wait;
        ] );
      ( "prio",
        [
          Alcotest.test_case "EDF dominates critical path" `Quick test_prio_edf_dominates;
          Alcotest.test_case "bottom level breaks deadline ties" `Quick
            test_prio_bl_breaks_ties;
          Alcotest.test_case "FIFO tie-breaks" `Quick test_prio_fifo_ties;
          Alcotest.test_case "bl ranks normalised" `Quick test_prio_bl_ranks;
        ] );
      ( "pqueue",
        [
          Alcotest.test_case "pop order" `Quick test_pqueue_pop_order;
          Alcotest.test_case "deadline gate" `Quick test_pqueue_deadline_gate;
        ] );
      ( "pool",
        [
          Alcotest.test_case "concurrent jobs bitwise" `Quick
            test_pool_concurrent_jobs_bitwise;
          Alcotest.test_case "per-job failure isolation" `Quick test_pool_failure_isolation;
          Alcotest.test_case "dynamic insertion from on_done" `Quick
            test_pool_dynamic_insertion;
          Alcotest.test_case "EDF between jobs" `Quick test_pool_edf_between_jobs;
          Alcotest.test_case "blocking run and lifecycle" `Quick
            test_pool_run_and_lifecycle;
        ] );
      ( "hetero",
        [
          Alcotest.test_case "valid schedules" `Quick test_hetero_schedules_valid;
          Alcotest.test_case "dataflow beats oblivious BSP" `Quick
            test_hetero_dataflow_beats_oblivious;
          Alcotest.test_case "uniform ~ homogeneous" `Quick
            test_hetero_uniform_matches_homogeneous_shape;
          Alcotest.test_case "faster rates help" `Quick test_hetero_faster_rates_help;
          Alcotest.test_case "validation" `Quick test_hetero_validation;
        ] );
    ]
