(* Tests for Xsc_linalg: Mat/Vec, BLAS kernels, LAPACK factorizations,
   scalar precision emulation, generic BLAS. *)

open Xsc_linalg
module Rng = Xsc_util.Rng

let qcheck tc = QCheck_alcotest.to_alcotest tc

let check_close ?(tol = 1e-10) msg a b =
  Alcotest.(check bool)
    (Printf.sprintf "%s (|%g - %g| <= %g)" msg a b tol)
    true
    (abs_float (a -. b) <= tol)

let check_mat ?(tol = 1e-10) msg a b =
  Alcotest.(check bool) (msg ^ Printf.sprintf " (dist %g)" (Mat.dist_max a b)) true
    (Mat.approx_equal ~tol a b)

(* naive reference gemm *)
let ref_gemm ?(transa = Blas.NoTrans) ?(transb = Blas.NoTrans) a b =
  let ga i j = match transa with Blas.NoTrans -> Mat.get a i j | Blas.Trans -> Mat.get a j i in
  let gb i j = match transb with Blas.NoTrans -> Mat.get b i j | Blas.Trans -> Mat.get b j i in
  let m = match transa with Blas.NoTrans -> a.Mat.rows | Blas.Trans -> a.Mat.cols in
  let k = match transa with Blas.NoTrans -> a.Mat.cols | Blas.Trans -> a.Mat.rows in
  let n = match transb with Blas.NoTrans -> b.Mat.cols | Blas.Trans -> b.Mat.rows in
  Mat.init m n (fun i j ->
      let acc = ref 0.0 in
      for l = 0 to k - 1 do
        acc := !acc +. (ga i l *. gb l j)
      done;
      !acc)

(* ---- Vec ---- *)

let test_vec_ops () =
  let x = [| 1.0; 2.0; 3.0 |] and y = [| 4.0; 5.0; 6.0 |] in
  check_close "dot" 32.0 (Vec.dot x y);
  check_close "nrm2" (sqrt 14.0) (Vec.nrm2 x);
  check_close "norm_inf" 3.0 (Vec.norm_inf x);
  let z = Array.copy y in
  Vec.axpy 2.0 x z;
  Alcotest.(check (array (float 1e-12))) "axpy" [| 6.0; 9.0; 12.0 |] z;
  Vec.scal 0.5 z;
  Alcotest.(check (array (float 1e-12))) "scal" [| 3.0; 4.5; 6.0 |] z;
  Alcotest.(check (array (float 1e-12))) "add" [| 5.0; 7.0; 9.0 |] (Vec.add x y);
  Alcotest.(check (array (float 1e-12))) "sub" [| -3.0; -3.0; -3.0 |] (Vec.sub x y);
  check_close "dist_inf" 3.0 (Vec.dist_inf x y)

let test_vec_dim_checks () =
  Alcotest.check_raises "dot" (Invalid_argument "Vec.dot: length mismatch") (fun () ->
      ignore (Vec.dot [| 1.0 |] [| 1.0; 2.0 |]))

(* ---- Mat basics ---- *)

let test_mat_init_get_set () =
  let m = Mat.init 3 4 (fun i j -> float_of_int ((10 * i) + j)) in
  check_close "get" 23.0 (Mat.get m 2 3);
  Mat.set m 2 3 99.0;
  check_close "set" 99.0 (Mat.get m 2 3);
  Alcotest.(check (pair int int)) "dims" (3, 4) (Mat.dims m)

let test_mat_identity_transpose () =
  let i5 = Mat.identity 5 in
  check_mat "identity symmetric" i5 (Mat.transpose i5);
  let rng = Rng.create 2 in
  let a = Mat.random rng 4 7 in
  check_mat "transpose involution" a (Mat.transpose (Mat.transpose a))

let test_mat_blocks () =
  let m = Mat.init 6 6 (fun i j -> float_of_int ((i * 6) + j)) in
  let blk = Mat.sub_block m ~row:2 ~col:3 ~rows:2 ~cols:2 in
  check_close "block 0,0" 15.0 (Mat.get blk 0 0);
  check_close "block 1,1" 22.0 (Mat.get blk 1 1);
  let dst = Mat.create 6 6 in
  Mat.blit_block ~src:m ~dst ~src_row:0 ~src_col:0 ~dst_row:0 ~dst_col:0 ~rows:6 ~cols:6;
  check_mat "blit full copy" m dst;
  Alcotest.check_raises "oob" (Invalid_argument "Mat.sub_block: block out of bounds")
    (fun () -> ignore (Mat.sub_block m ~row:5 ~col:5 ~rows:3 ~cols:3))

let test_mat_norms () =
  let m = Mat.of_arrays [| [| 1.0; -2.0 |]; [| -3.0; 4.0 |] |] in
  check_close "frobenius" (sqrt 30.0) (Mat.frobenius m);
  check_close "inf norm" 7.0 (Mat.norm_inf m);
  check_close "one norm" 6.0 (Mat.norm_one m);
  check_close "max abs" 4.0 (Mat.max_abs m)

let test_mat_row_col_diag () =
  let m = Mat.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  Alcotest.(check (array (float 0.0))) "row" [| 3.0; 4.0 |] (Mat.row m 1);
  Alcotest.(check (array (float 0.0))) "col" [| 2.0; 4.0 |] (Mat.col m 1);
  Alcotest.(check (array (float 0.0))) "diag" [| 1.0; 4.0 |] (Mat.diag m)

let test_mat_generators () =
  let rng = Rng.create 11 in
  let spd = Mat.random_spd rng 20 in
  check_mat ~tol:1e-12 "spd symmetric" spd (Mat.transpose spd);
  (* positive definite: Cholesky must succeed *)
  let c = Mat.copy spd in
  Lapack.potrf c;
  let dd = Mat.random_diag_dominant rng 20 in
  for i = 0 to 19 do
    let off = ref 0.0 in
    for j = 0 to 19 do
      if i <> j then off := !off +. abs_float (Mat.get dd i j)
    done;
    Alcotest.(check bool) "diag dominant" true (abs_float (Mat.get dd i i) > !off)
  done

let test_mat_triangles () =
  let m = Mat.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  check_mat "lower" (Mat.of_arrays [| [| 1.0; 0.0 |]; [| 3.0; 4.0 |] |]) (Mat.lower m);
  check_mat "lower unit" (Mat.of_arrays [| [| 1.0; 0.0 |]; [| 3.0; 1.0 |] |])
    (Mat.lower ~unit_diag:true m);
  check_mat "upper" (Mat.of_arrays [| [| 1.0; 2.0 |]; [| 0.0; 4.0 |] |]) (Mat.upper m)

let test_mat_mul_vec () =
  let m = Mat.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  Alcotest.(check (array (float 1e-12))) "mul_vec" [| 5.0; 11.0 |]
    (Mat.mul_vec m [| 1.0; 2.0 |])

(* ---- Blas ---- *)

let prop_gemm_all_transposes =
  QCheck.Test.make ~name:"gemm matches naive for all transpose combos" ~count:60
    QCheck.(triple (int_range 1 8) (int_range 1 8) (int_range 1 8))
    (fun (m, n, k) ->
      let rng = Rng.create ((m * 100) + (n * 10) + k) in
      List.for_all
        (fun (ta, tb) ->
          let a =
            match ta with Blas.NoTrans -> Mat.random rng m k | Blas.Trans -> Mat.random rng k m
          in
          let b =
            match tb with Blas.NoTrans -> Mat.random rng k n | Blas.Trans -> Mat.random rng n k
          in
          let c = Mat.random rng m n in
          let expected =
            Mat.add (Mat.scale 2.0 (ref_gemm ~transa:ta ~transb:tb a b)) (Mat.scale 0.5 c)
          in
          Blas.gemm ~transa:ta ~transb:tb ~alpha:2.0 a b ~beta:0.5 c;
          Mat.approx_equal ~tol:1e-10 expected c)
        [
          (Blas.NoTrans, Blas.NoTrans);
          (Blas.NoTrans, Blas.Trans);
          (Blas.Trans, Blas.NoTrans);
          (Blas.Trans, Blas.Trans);
        ])

let test_gemm_dim_check () =
  let a = Mat.create 2 3 and b = Mat.create 2 3 and c = Mat.create 2 3 in
  Alcotest.check_raises "inner" (Invalid_argument "Blas.gemm: inner dimension mismatch")
    (fun () -> Blas.gemm ~alpha:1.0 a b ~beta:0.0 c)

(* ---- blocked gemm (Kernel) against the unblocked oracle ---- *)

let blocked_vs_unblocked ~m ~n ~k transb =
  let rng = Rng.create ((m * 100003) + (n * 1009) + k) in
  let a = Mat.random rng m k in
  let b =
    match transb with Blas.NoTrans -> Mat.random rng k n | Blas.Trans -> Mat.random rng n k
  in
  let c0 = Mat.random rng m n in
  let c_ref = Mat.copy c0 and c_blk = Mat.copy c0 in
  Blas.gemm_unblocked ~transb ~alpha:(-1.0) a b ~beta:1.0 c_ref;
  Blas.gemm ~transb ~alpha:(-1.0) a b ~beta:1.0 c_blk;
  Mat.dist_max c_ref c_blk

let test_gemm_blocked_shapes () =
  (* shapes chosen to straddle the blocking parameters: just under/over the
     cutoff, exact MR/NR/KC multiples, ragged fringes in every dimension,
     the nb=72 tile size, and k crossing a KC panel boundary *)
  List.iter
    (fun (m, n, k) ->
      List.iter
        (fun transb ->
          let d = blocked_vs_unblocked ~m ~n ~k transb in
          Alcotest.(check bool)
            (Printf.sprintf "blocked=naive m=%d n=%d k=%d %s (dist %g)" m n k
               (match transb with Blas.NoTrans -> "NN" | Blas.Trans -> "NT")
               d)
            true (d <= 1e-12))
        [ Blas.NoTrans; Blas.Trans ])
    [
      (47, 47, 47);
      (48, 48, 48);
      (49, 50, 51);
      (64, 64, 64);
      (72, 72, 72);
      (61, 130, 48);
      (130, 61, 53);
      (97, 101, 259);
      (128, 128, 256);
      (129, 133, 300);
    ]

let prop_gemm_blocked_matches_unblocked =
  QCheck.Test.make ~name:"blocked gemm matches unblocked to 1e-12 on random shapes"
    ~count:30
    QCheck.(triple (int_range 1 140) (int_range 1 140) (int_range 1 140))
    (fun (m, n, k) ->
      blocked_vs_unblocked ~m ~n ~k Blas.NoTrans <= 1e-12
      && blocked_vs_unblocked ~m ~n ~k Blas.Trans <= 1e-12)

let test_kernel_dim_check () =
  let a = Mat.create 4 5 and b = Mat.create 4 5 and c = Mat.create 4 5 in
  Alcotest.check_raises "inner"
    (Invalid_argument "Kernel.add_matmul: inner dimension mismatch") (fun () ->
      Kernel.add_matmul ~trans_b:false ~alpha:1.0 a b c);
  Alcotest.(check bool) "cutoff positive" true (Kernel.cutoff > 0);
  Alcotest.(check bool) "microkernel fits panels" true
    (Kernel.mc mod Kernel.mr = 0 && Kernel.nc mod Kernel.nr = 0)

let test_gemv () =
  let rng = Rng.create 4 in
  let a = Mat.random rng 5 3 in
  let x = Vec.random rng 3 and y = Vec.random rng 5 in
  let expected = Array.copy y in
  for i = 0 to 4 do
    let acc = ref 0.0 in
    for j = 0 to 2 do
      acc := !acc +. (Mat.get a i j *. x.(j))
    done;
    expected.(i) <- (2.0 *. !acc) +. (3.0 *. y.(i))
  done;
  Blas.gemv ~alpha:2.0 a x ~beta:3.0 y;
  Alcotest.(check bool) "gemv" true (Vec.approx_equal ~tol:1e-12 expected y)

let test_gemv_trans () =
  let rng = Rng.create 6 in
  let a = Mat.random rng 5 3 in
  let x = Vec.random rng 5 in
  let y = Array.make 3 0.0 in
  Blas.gemv ~trans:Blas.Trans ~alpha:1.0 a x ~beta:0.0 y;
  let expected = Mat.mul_vec (Mat.transpose a) x in
  Alcotest.(check bool) "gemv trans" true (Vec.approx_equal ~tol:1e-12 expected y)

let test_ger () =
  let a = Mat.create 2 3 in
  Blas.ger ~alpha:2.0 [| 1.0; 2.0 |] [| 3.0; 4.0; 5.0 |] a;
  check_mat "ger" (Mat.of_arrays [| [| 6.0; 8.0; 10.0 |]; [| 12.0; 16.0; 20.0 |] |]) a

let test_syrk_matches_gemm () =
  let rng = Rng.create 8 in
  let a = Mat.random rng 6 4 in
  let c = Mat.create 6 6 in
  Blas.syrk ~uplo:Blas.Lower ~alpha:1.0 a ~beta:0.0 c;
  let full = ref_gemm ~transb:Blas.Trans a a in
  for i = 0 to 5 do
    for j = 0 to i do
      check_close ~tol:1e-12 "syrk lower entry" (Mat.get full i j) (Mat.get c i j)
    done
  done;
  (* upper triangle untouched (zero) *)
  for i = 0 to 5 do
    for j = i + 1 to 5 do
      check_close ~tol:0.0 "upper untouched" 0.0 (Mat.get c i j)
    done
  done

let test_syrk_trans () =
  let rng = Rng.create 9 in
  let a = Mat.random rng 4 6 in
  let c = Mat.create 6 6 in
  Blas.syrk ~uplo:Blas.Upper ~trans:Blas.Trans ~alpha:1.0 a ~beta:0.0 c;
  let full = ref_gemm ~transa:Blas.Trans a a in
  for i = 0 to 5 do
    for j = i to 5 do
      check_close ~tol:1e-12 "syrk^T upper entry" (Mat.get full i j) (Mat.get c i j)
    done
  done

(* trsm: check op(A)^-1 against explicitly multiplying back *)
let trsm_case side uplo trans diag =
  let rng = Rng.create 77 in
  let n = 6 in
  let a = Mat.random_diag_dominant rng n in
  let tri =
    Mat.init n n (fun i j ->
        let inside = match uplo with Blas.Lower -> i >= j | Blas.Upper -> i <= j in
        if i = j then (match diag with Blas.Unit -> Mat.get a i j | Blas.NonUnit -> Mat.get a i i)
        else if inside then Mat.get a i j
        else 0.0)
  in
  let b0 = Mat.random rng (match side with Blas.Left -> n | Blas.Right -> 4)
             (match side with Blas.Left -> 4 | Blas.Right -> n) in
  let x = Mat.copy b0 in
  Blas.trsm ~side ~uplo ~trans ~diag ~alpha:1.0 tri x;
  (* multiply back: op(T) X (Left) or X op(T) (Right) must equal b0;
     with Unit diag the solver treats the diagonal as 1 *)
  let eff =
    Mat.init n n (fun i j ->
        let v = match trans with Blas.NoTrans -> Mat.get tri i j | Blas.Trans -> Mat.get tri j i in
        let on_diag = i = j in
        if on_diag then (match diag with Blas.Unit -> 1.0 | Blas.NonUnit -> v) else v)
  in
  let back = match side with Blas.Left -> ref_gemm eff x | Blas.Right -> ref_gemm x eff in
  Mat.approx_equal ~tol:1e-8 b0 back

let test_trsm_all_variants () =
  List.iter
    (fun side ->
      List.iter
        (fun uplo ->
          List.iter
            (fun trans ->
              List.iter
                (fun diag ->
                  Alcotest.(check bool) "trsm variant solves" true
                    (trsm_case side uplo trans diag))
                [ Blas.Unit; Blas.NonUnit ])
            [ Blas.NoTrans; Blas.Trans ])
        [ Blas.Lower; Blas.Upper ])
    [ Blas.Left; Blas.Right ]

let test_trsv_matches_trsm () =
  let rng = Rng.create 21 in
  let n = 8 in
  let a = Mat.random_diag_dominant rng n in
  List.iter
    (fun (uplo, trans, diag) ->
      let b = Vec.random rng n in
      let x_vec = Array.copy b in
      Blas.trsv ~uplo ~trans ~diag a x_vec;
      let bm = Mat.init n 1 (fun i _ -> b.(i)) in
      Blas.trsm ~side:Blas.Left ~uplo ~trans ~diag ~alpha:1.0 a bm;
      for i = 0 to n - 1 do
        check_close ~tol:1e-10 "trsv = trsm column" (Mat.get bm i 0) x_vec.(i)
      done)
    [
      (Blas.Lower, Blas.NoTrans, Blas.NonUnit);
      (Blas.Lower, Blas.Trans, Blas.NonUnit);
      (Blas.Upper, Blas.NoTrans, Blas.Unit);
      (Blas.Upper, Blas.Trans, Blas.NonUnit);
    ]

let test_trmm_inverts_trsm () =
  let rng = Rng.create 31 in
  let n = 5 in
  let a = Mat.random_diag_dominant rng n in
  let b0 = Mat.random rng n 3 in
  let x = Mat.copy b0 in
  Blas.trsm ~uplo:Blas.Lower ~alpha:1.0 a x;
  Blas.trmm ~uplo:Blas.Lower ~alpha:1.0 a x;
  check_mat ~tol:1e-8 "trmm . trsm = id" b0 x

(* ---- Lapack ---- *)

let test_potrf_reconstruct () =
  let rng = Rng.create 41 in
  let a = Mat.random_spd rng 16 in
  let f = Mat.copy a in
  Lapack.potrf f;
  let l = Mat.lower f in
  check_mat ~tol:1e-8 "L L^T = A" a (ref_gemm ~transb:Blas.Trans l l)

let test_potrf_not_spd () =
  let m = Mat.of_arrays [| [| 1.0; 2.0 |]; [| 2.0; 1.0 |] |] in
  Alcotest.check_raises "singular" (Lapack.Singular 1) (fun () -> Lapack.potrf m)

let test_potrs () =
  let rng = Rng.create 43 in
  let a = Mat.random_spd rng 12 in
  let x_true = Vec.random rng 12 in
  let b = Mat.mul_vec a x_true in
  let f = Mat.copy a in
  Lapack.potrf f;
  let x = Array.copy b in
  Lapack.potrs f x;
  Alcotest.(check bool) "solves" true (Vec.approx_equal ~tol:1e-8 x_true x)

let test_getrf_reconstruct () =
  let rng = Rng.create 47 in
  let n = 12 in
  let a = Mat.random rng n n in
  let f = Mat.copy a in
  let ipiv = Lapack.getrf f in
  let l = Mat.lower ~unit_diag:true f in
  let u = Mat.upper f in
  let lu = ref_gemm l u in
  (* apply the same row swaps to A: P A = L U *)
  let pa = Mat.copy a in
  Lapack.laswp pa ipiv;
  check_mat ~tol:1e-9 "P A = L U" pa lu

let test_getrf_pivots_bounds () =
  let rng = Rng.create 53 in
  let n = 10 in
  let f = Mat.random rng n n in
  let ipiv = Lapack.getrf f in
  Array.iteri
    (fun k p -> Alcotest.(check bool) "pivot in range" true (p >= k && p < n))
    ipiv

let test_getrs_solves () =
  let rng = Rng.create 59 in
  let n = 15 in
  let a = Mat.random rng n n in
  let x_true = Vec.random rng n in
  let b = Mat.mul_vec a x_true in
  let x = Lapack.lu_solve a b in
  Alcotest.(check bool) "solves" true (Vec.approx_equal ~tol:1e-8 x_true x)

let test_getrf_nopiv_diag_dominant () =
  let rng = Rng.create 61 in
  let n = 12 in
  let a = Mat.random_diag_dominant rng n in
  let f = Mat.copy a in
  Lapack.getrf_nopiv f;
  let l = Mat.lower ~unit_diag:true f and u = Mat.upper f in
  check_mat ~tol:1e-9 "A = L U (no pivot)" a (ref_gemm l u);
  let x_true = Vec.random rng n in
  let b = Mat.mul_vec a x_true in
  let x = Array.copy b in
  Lapack.getrs_nopiv f x;
  Alcotest.(check bool) "nopiv solve" true (Vec.approx_equal ~tol:1e-8 x_true x)

let test_getrf_singular () =
  let m = Mat.create 3 3 in
  Alcotest.check_raises "singular" (Lapack.Singular 0) (fun () -> ignore (Lapack.getrf m))

let prop_getrf_blocked_matches_unblocked =
  QCheck.Test.make ~name:"blocked LU = unblocked LU (factors and pivots)" ~count:30
    QCheck.(pair (int_range 1 40) (int_range 1 4))
    (fun (n, nb_sel) ->
      let nb = [| 3; 8; 16; 64 |].(nb_sel - 1) in
      let rng = Rng.create ((n * 7) + nb) in
      let a = Mat.random rng n n in
      let f1 = Mat.copy a and f2 = Mat.copy a in
      let p1 = Lapack.getrf f1 in
      let p2 = Lapack.getrf_blocked ~nb f2 in
      p1 = p2 && Mat.approx_equal ~tol:1e-10 f1 f2)

let test_getrf_blocked_solves () =
  let rng = Rng.create 101 in
  let n = 60 in
  let a = Mat.random rng n n in
  let x_true = Vec.random rng n in
  let b = Mat.mul_vec a x_true in
  let f = Mat.copy a in
  let ipiv = Lapack.getrf_blocked ~nb:16 f in
  let x = Array.copy b in
  Lapack.getrs f ipiv x;
  Alcotest.(check bool) "solves" true (Vec.approx_equal ~tol:1e-8 x_true x)

let test_getrf_blocked_validation () =
  Alcotest.check_raises "nb" (Invalid_argument "Lapack.getrf_blocked: nb must be positive")
    (fun () -> ignore (Lapack.getrf_blocked ~nb:0 (Mat.identity 4)))

let prop_qr_orthonormal_and_reconstructs =
  QCheck.Test.make ~name:"geqrf: Q orthonormal and Q R = A" ~count:40
    QCheck.(pair (int_range 2 12) (int_range 1 8))
    (fun (m, n) ->
      QCheck.assume (m >= n);
      let rng = Rng.create ((m * 31) + n) in
      let a = Mat.random rng m n in
      let w = Mat.copy a in
      let tau = Lapack.geqrf w in
      let q = Lapack.orgqr ~a:w ~tau in
      let r = Mat.init n n (fun i j -> if j >= i then Mat.get w i j else 0.0) in
      let qtq = ref_gemm ~transa:Blas.Trans q q in
      Mat.approx_equal ~tol:1e-8 qtq (Mat.identity n)
      && Mat.approx_equal ~tol:1e-8 a (ref_gemm q r))

let test_ormqr_roundtrip () =
  (* applying Q then Q^T is the identity *)
  let rng = Rng.create 67 in
  let a = Mat.random rng 10 6 in
  let w = Mat.copy a in
  let tau = Lapack.geqrf w in
  let c0 = Mat.random rng 10 3 in
  let c = Mat.copy c0 in
  Lapack.ormqr ~trans:Blas.Trans ~a:w ~tau c;
  Lapack.ormqr ~trans:Blas.NoTrans ~a:w ~tau c;
  check_mat ~tol:1e-9 "Q Q^T C = C" c0 c

let test_gels_matches_normal_equations () =
  let rng = Rng.create 71 in
  let m = 20 and n = 6 in
  let a = Mat.random rng m n in
  let b = Vec.random rng m in
  let x = Lapack.gels a b in
  (* normal equations: A^T A x = A^T b *)
  let ata = ref_gemm ~transa:Blas.Trans a a in
  let atb = Mat.mul_vec (Mat.transpose a) b in
  let x_ref = Lapack.lu_solve ata atb in
  Alcotest.(check bool) "matches normal equations" true
    (Vec.approx_equal ~tol:1e-8 x_ref x)

let test_inverse () =
  let rng = Rng.create 73 in
  let a = Mat.random_diag_dominant rng 8 in
  let inv = Lapack.inverse a in
  check_mat ~tol:1e-9 "A A^-1 = I" (Mat.identity 8) (ref_gemm a inv)

let test_flop_counts () =
  check_close "potrf" (1000.0 /. 3.0) (Lapack.potrf_flops 10);
  check_close "getrf" (2000.0 /. 3.0) (Lapack.getrf_flops 10);
  check_close "geqrf square" (2000.0 *. 2.0 /. 3.0) (Lapack.geqrf_flops 10 10);
  check_close "gemm" 2000.0 (Blas.gemm_flops 10 10 10)

(* ---- Eigen ---- *)

let test_eigen_2x2_known () =
  let m = Mat.of_arrays [| [| 2.0; 1.0 |]; [| 1.0; 2.0 |] |] in
  let d = Eigen.eigenvalues m in
  check_close ~tol:1e-12 "lambda_0" 1.0 d.(0);
  check_close ~tol:1e-12 "lambda_1" 3.0 d.(1)

let test_eigen_diagonal () =
  let m = Mat.init 5 5 (fun i j -> if i = j then float_of_int (5 - i) else 0.0) in
  let d = Eigen.eigenvalues m in
  Alcotest.(check (array (float 1e-12))) "sorted ascending" [| 1.0; 2.0; 3.0; 4.0; 5.0 |] d

let prop_eigen_decomposition =
  QCheck.Test.make ~name:"symmetric eigendecomposition: A Z = Z D, Z orthonormal" ~count:20
    QCheck.(int_range 2 24)
    (fun n ->
      let rng = Rng.create (n * 13) in
      let a = Mat.symmetrize (Mat.random rng n n) in
      let d, z = Eigen.symmetric a in
      let az = ref_gemm a z in
      let zd = Mat.init n n (fun i j -> Mat.get z i j *. d.(j)) in
      let ztz = ref_gemm ~transa:Blas.Trans z z in
      let sorted = Array.for_all (fun ok -> ok) (Array.init (n - 1) (fun i -> d.(i) <= d.(i + 1))) in
      Mat.approx_equal ~tol:1e-8 az zd
      && Mat.approx_equal ~tol:1e-8 ztz (Mat.identity n)
      && sorted)

let test_eigen_trace_invariant () =
  let rng = Rng.create 301 in
  let a = Mat.random_spd rng 20 in
  let d = Eigen.eigenvalues a in
  let trace = Array.fold_left ( +. ) 0.0 (Mat.diag a) in
  let sum = Array.fold_left ( +. ) 0.0 d in
  check_close ~tol:1e-9 "trace = sum of eigenvalues" trace sum

let test_eigen_tridiagonalize () =
  let rng = Rng.create 303 in
  let a = Mat.symmetrize (Mat.random rng 12 12) in
  let d, e, q = Eigen.tridiagonalize a in
  (* rebuild T and check A = Q T Q^T *)
  let n = 12 in
  let t = Mat.create n n in
  for i = 0 to n - 1 do
    Mat.set t i i d.(i);
    if i < n - 1 then begin
      Mat.set t (i + 1) i e.(i);
      Mat.set t i (i + 1) e.(i)
    end
  done;
  let qtqt = ref_gemm (ref_gemm q t) (Mat.transpose q) in
  Alcotest.(check bool) "A = Q T Q^T" true (Mat.approx_equal ~tol:1e-9 a qtqt);
  let qtq = ref_gemm ~transa:Blas.Trans q q in
  Alcotest.(check bool) "Q orthonormal" true (Mat.approx_equal ~tol:1e-9 qtq (Mat.identity n))

let test_eigen_condition_spd () =
  (* diag(1..4): condition 4 *)
  let m = Mat.init 4 4 (fun i j -> if i = j then float_of_int (i + 1) else 0.0) in
  check_close ~tol:1e-10 "cond" 4.0 (Eigen.condition_spd m);
  Alcotest.check_raises "indefinite rejected"
    (Invalid_argument "Eigen.condition_spd: matrix not positive definite") (fun () ->
      ignore (Eigen.condition_spd (Mat.scale (-1.0) (Mat.identity 3))))

(* ---- Gallery ---- *)

let test_gallery_orthogonal () =
  let rng = Rng.create 401 in
  let q = Gallery.random_orthogonal rng 15 in
  check_mat ~tol:1e-10 "Q^T Q = I" (Mat.identity 15) (ref_gemm ~transa:Blas.Trans q q)

let test_gallery_spectrum () =
  let rng = Rng.create 403 in
  let want = [| 0.5; 1.0; 2.0; 4.0; 8.0 |] in
  let a = Gallery.with_spectrum rng want in
  let got = Eigen.eigenvalues a in
  Array.iteri (fun i w -> check_close ~tol:1e-9 "eigenvalue recovered" w got.(i)) want

let test_gallery_cond () =
  let rng = Rng.create 405 in
  let a = Gallery.spd_with_cond rng 20 ~cond:1e4 in
  check_close ~tol:1.0 "condition number" 1e4 (Eigen.condition_spd a)

let test_gallery_hilbert () =
  let h = Gallery.hilbert 4 in
  check_close ~tol:0.0 "entry (0,0)" 1.0 (Mat.get h 0 0);
  check_close ~tol:0.0 "entry (2,3)" (1.0 /. 6.0) (Mat.get h 2 3);
  (* SPD (potrf succeeds) and already badly conditioned at n=8 *)
  Lapack.potrf (Mat.copy h);
  Alcotest.(check bool) "ill-conditioned" true
    (Eigen.condition_spd (Gallery.hilbert 8) > 1e8)

let test_gallery_toeplitz_eigenvalues () =
  let n = 9 in
  let t = Gallery.tridiagonal_toeplitz n ~diag:2.0 ~off:(-1.0) in
  let got = Eigen.eigenvalues t in
  let expected =
    Array.init n (fun k ->
        2.0 -. (2.0 *. cos (float_of_int (k + 1) *. Float.pi /. float_of_int (n + 1))))
  in
  Array.sort compare expected;
  Array.iteri (fun i e -> check_close ~tol:1e-10 "closed form" e got.(i)) expected

(* ---- Scalar precision emulation ---- *)

let test_fp32_round () =
  let x = 1.0 +. 1e-12 in
  Alcotest.(check (float 0.0)) "rounds to 1" 1.0 (Scalar.Fp32.round x);
  Alcotest.(check (float 0.0)) "idempotent" (Scalar.Fp32.round 0.1)
    (Scalar.Fp32.round (Scalar.Fp32.round 0.1));
  Alcotest.(check bool) "0.1 not exact in fp32" true (Scalar.Fp32.round 0.1 <> 0.1)

let test_fp32_eps () =
  Alcotest.(check (float 0.0)) "1 + eps distinct" (1.0 +. (2.0 *. Scalar.Fp32.eps))
    (Scalar.Fp32.round (1.0 +. (2.0 *. Scalar.Fp32.eps)));
  Alcotest.(check (float 0.0)) "1 + eps/2 collapses" 1.0
    (Scalar.Fp32.round (1.0 +. (Scalar.Fp32.eps /. 2.0)))

let test_fp16_known_values () =
  Alcotest.(check (float 0.0)) "1.5 exact" 1.5 (Scalar.Fp16.round 1.5);
  Alcotest.(check (float 0.0)) "2048 exact" 2048.0 (Scalar.Fp16.round 2048.0);
  (* ulp at 2048 is 2: 2049 ties to even -> 2048 *)
  Alcotest.(check (float 0.0)) "tie to even down" 2048.0 (Scalar.Fp16.round 2049.0);
  Alcotest.(check (float 0.0)) "tie to even up" 2052.0 (Scalar.Fp16.round 2051.0);
  Alcotest.(check (float 0.0)) "overflow to inf" infinity (Scalar.Fp16.round 1e30);
  Alcotest.(check (float 0.0)) "underflow to zero" 0.0 (Scalar.Fp16.round 1e-30);
  Alcotest.(check (float 0.0)) "negative" (-1.5) (Scalar.Fp16.round (-1.5))

let prop_fp16_idempotent =
  QCheck.Test.make ~name:"fp16 rounding idempotent" ~count:500
    (QCheck.float_range (-70000.0) 70000.0)
    (fun x ->
      let r = Scalar.Fp16.round x in
      Scalar.Fp16.round r = r)

let prop_fp16_error_bound =
  QCheck.Test.make ~name:"fp16 relative error <= eps" ~count:500
    (QCheck.float_range 1e-10 60000.0)
    (fun x ->
      let r = Scalar.Fp16.round x in
      if x >= 0x1.0p-14 then abs_float (r -. x) <= Scalar.Fp16.eps *. x
      else abs_float (r -. x) <= 0x1.0p-25)

let test_bf16_known_values () =
  Alcotest.(check (float 0.0)) "1.0" 1.0 (Scalar.Bf16.round 1.0);
  (* bf16 has 7 mantissa bits: ulp at 1 is 2^-7; 1 + 2^-8 is a tie -> even *)
  Alcotest.(check (float 0.0)) "1+2^-7 exact" (1.0 +. 0x1.0p-7)
    (Scalar.Bf16.round (1.0 +. 0x1.0p-7));
  Alcotest.(check (float 0.0)) "1+2^-8 ties to even" 1.0 (Scalar.Bf16.round (1.0 +. 0x1.0p-8));
  Alcotest.(check (float 0.0)) "1+2^-10 collapses" 1.0 (Scalar.Bf16.round (1.0 +. 0x1.0p-10))

let test_scalar_of_name () =
  List.iter
    (fun name ->
      let m = Scalar.of_name name in
      let module P = (val m : Scalar.S) in
      Alcotest.(check string) "name" name P.name)
    [ "fp64"; "fp32"; "fp16"; "bf16" ];
  Alcotest.check_raises "unknown" (Invalid_argument "Scalar.of_name: unknown format fp8")
    (fun () -> ignore (Scalar.of_name "fp8"))

(* ---- Gblas ---- *)

let test_gblas_fp64_matches_native () =
  let module G = Gblas.Make (Scalar.Fp64) in
  let rng = Rng.create 83 in
  let a = Mat.random rng 6 6 and b = Mat.random rng 6 6 in
  let c1 = Mat.create 6 6 and c2 = Mat.create 6 6 in
  G.gemm ~alpha:1.0 a b ~beta:0.0 c1;
  Blas.gemm ~alpha:1.0 a b ~beta:0.0 c2;
  (* identical loop order: bitwise equal *)
  Alcotest.(check bool) "gemm close" true (Mat.approx_equal ~tol:1e-13 c1 c2)

let test_gblas_fp32_solve_accuracy () =
  let module G = Gblas.Make (Scalar.Fp32) in
  let rng = Rng.create 89 in
  let n = 24 in
  let a = Mat.random_spd rng n in
  let x_true = Vec.random rng n in
  let b = Mat.mul_vec a x_true in
  let f = G.quantize_mat a in
  G.potrf f;
  let x = G.quantize_vec b in
  G.potrs f x;
  let err = Vec.dist_inf x x_true /. Vec.norm_inf x_true in
  Alcotest.(check bool) "fp32-level accuracy" true (err > 1e-14 && err < 1e-2)

let test_gblas_getrf_solves () =
  let module G = Gblas.Make (Scalar.Fp32) in
  let rng = Rng.create 97 in
  let n = 16 in
  let a = Mat.random_diag_dominant rng n in
  let x_true = Vec.random rng n in
  let b = Mat.mul_vec a x_true in
  let f = G.quantize_mat a in
  let ipiv = G.getrf f in
  let x = G.quantize_vec b in
  G.getrs f ipiv x;
  Alcotest.(check bool) "fp32 LU solve" true (Vec.dist_inf x x_true < 1e-2)

let () =
  Alcotest.run "xsc_linalg"
    [
      ( "vec",
        [
          Alcotest.test_case "ops" `Quick test_vec_ops;
          Alcotest.test_case "dim checks" `Quick test_vec_dim_checks;
        ] );
      ( "mat",
        [
          Alcotest.test_case "init/get/set" `Quick test_mat_init_get_set;
          Alcotest.test_case "identity/transpose" `Quick test_mat_identity_transpose;
          Alcotest.test_case "blocks" `Quick test_mat_blocks;
          Alcotest.test_case "norms" `Quick test_mat_norms;
          Alcotest.test_case "row/col/diag" `Quick test_mat_row_col_diag;
          Alcotest.test_case "generators" `Quick test_mat_generators;
          Alcotest.test_case "triangles" `Quick test_mat_triangles;
          Alcotest.test_case "mul_vec" `Quick test_mat_mul_vec;
        ] );
      ( "blas",
        [
          qcheck prop_gemm_all_transposes;
          Alcotest.test_case "gemm dim check" `Quick test_gemm_dim_check;
          Alcotest.test_case "blocked gemm boundary shapes" `Quick test_gemm_blocked_shapes;
          qcheck prop_gemm_blocked_matches_unblocked;
          Alcotest.test_case "kernel checks" `Quick test_kernel_dim_check;
          Alcotest.test_case "gemv" `Quick test_gemv;
          Alcotest.test_case "gemv trans" `Quick test_gemv_trans;
          Alcotest.test_case "ger" `Quick test_ger;
          Alcotest.test_case "syrk lower" `Quick test_syrk_matches_gemm;
          Alcotest.test_case "syrk trans upper" `Quick test_syrk_trans;
          Alcotest.test_case "trsm all 16 variants" `Quick test_trsm_all_variants;
          Alcotest.test_case "trsv = trsm column" `Quick test_trsv_matches_trsm;
          Alcotest.test_case "trmm inverts trsm" `Quick test_trmm_inverts_trsm;
        ] );
      ( "lapack",
        [
          Alcotest.test_case "potrf reconstruct" `Quick test_potrf_reconstruct;
          Alcotest.test_case "potrf rejects non-SPD" `Quick test_potrf_not_spd;
          Alcotest.test_case "potrs" `Quick test_potrs;
          Alcotest.test_case "getrf reconstruct" `Quick test_getrf_reconstruct;
          Alcotest.test_case "getrf pivot bounds" `Quick test_getrf_pivots_bounds;
          Alcotest.test_case "getrs solves" `Quick test_getrs_solves;
          Alcotest.test_case "getrf_nopiv" `Quick test_getrf_nopiv_diag_dominant;
          Alcotest.test_case "getrf singular" `Quick test_getrf_singular;
          qcheck prop_getrf_blocked_matches_unblocked;
          Alcotest.test_case "getrf_blocked solves" `Quick test_getrf_blocked_solves;
          Alcotest.test_case "getrf_blocked validation" `Quick test_getrf_blocked_validation;
          qcheck prop_qr_orthonormal_and_reconstructs;
          Alcotest.test_case "ormqr roundtrip" `Quick test_ormqr_roundtrip;
          Alcotest.test_case "gels vs normal equations" `Quick
            test_gels_matches_normal_equations;
          Alcotest.test_case "inverse" `Quick test_inverse;
          Alcotest.test_case "flop counts" `Quick test_flop_counts;
        ] );
      ( "eigen",
        [
          Alcotest.test_case "2x2 known" `Quick test_eigen_2x2_known;
          Alcotest.test_case "diagonal" `Quick test_eigen_diagonal;
          qcheck prop_eigen_decomposition;
          Alcotest.test_case "trace invariant" `Quick test_eigen_trace_invariant;
          Alcotest.test_case "tridiagonalize" `Quick test_eigen_tridiagonalize;
          Alcotest.test_case "condition spd" `Quick test_eigen_condition_spd;
        ] );
      ( "gallery",
        [
          Alcotest.test_case "orthogonal" `Quick test_gallery_orthogonal;
          Alcotest.test_case "spectrum" `Quick test_gallery_spectrum;
          Alcotest.test_case "condition" `Quick test_gallery_cond;
          Alcotest.test_case "hilbert" `Quick test_gallery_hilbert;
          Alcotest.test_case "toeplitz eigenvalues" `Quick test_gallery_toeplitz_eigenvalues;
        ] );
      ( "scalar",
        [
          Alcotest.test_case "fp32 rounding" `Quick test_fp32_round;
          Alcotest.test_case "fp32 eps" `Quick test_fp32_eps;
          Alcotest.test_case "fp16 known values" `Quick test_fp16_known_values;
          qcheck prop_fp16_idempotent;
          qcheck prop_fp16_error_bound;
          Alcotest.test_case "bf16 known values" `Quick test_bf16_known_values;
          Alcotest.test_case "of_name" `Quick test_scalar_of_name;
        ] );
      ( "gblas",
        [
          Alcotest.test_case "fp64 = native" `Quick test_gblas_fp64_matches_native;
          Alcotest.test_case "fp32 chol accuracy" `Quick test_gblas_fp32_solve_accuracy;
          Alcotest.test_case "fp32 LU solve" `Quick test_gblas_getrf_solves;
        ] );
    ]
