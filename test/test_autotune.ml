(* Tests for Xsc_autotune: search strategies, the measurement harness,
   the persisted kernel-tuning cache and its typed failure modes. *)

module Search = Xsc_autotune.Search
module Tuner = Xsc_autotune.Tuner
module KT = Xsc_autotune.Kernel_tune
module Kconfig = Xsc_linalg.Kconfig
module P = Xsc_linalg.Pblas

let qcheck tc = QCheck_alcotest.to_alcotest tc

(* ---- Search ---- *)

let test_grid_finds_minimum () =
  let f x = float_of_int ((x - 7) * (x - 7)) in
  let evals, best = Search.grid ~candidates:(List.init 20 (fun i -> i)) ~f in
  Alcotest.(check int) "evaluated all" 20 (List.length evals);
  Alcotest.(check int) "best candidate" 7 best.Search.candidate;
  Alcotest.(check (float 0.0)) "best cost" 0.0 best.Search.cost

let test_grid_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Search.grid: no candidates") (fun () ->
      ignore (Search.grid ~candidates:[] ~f:(fun _ -> 0.0)))

let test_grid_preserves_order () =
  let evals, _ = Search.grid ~candidates:[ 3; 1; 2 ] ~f:float_of_int in
  Alcotest.(check (list int)) "input order" [ 3; 1; 2 ]
    (List.map (fun e -> e.Search.candidate) evals)

let test_hill_climb_convex () =
  let f x = ((x -. 5.0) ** 2.0) +. 1.0 in
  let neighbours x = [ x -. 1.0; x +. 1.0 ] in
  let best = Search.hill_climb ~neighbours ~start:0.0 f in
  Alcotest.(check (float 0.0)) "finds the minimum" 5.0 best.Search.candidate;
  Alcotest.(check (float 0.0)) "minimum value" 1.0 best.Search.cost

let test_hill_climb_respects_max_steps () =
  let f x = -.x in
  (* unbounded descent *)
  let best = Search.hill_climb ~max_steps:10 ~neighbours:(fun x -> [ x +. 1.0 ]) ~start:0.0 f in
  Alcotest.(check (float 0.0)) "stopped at budget" 10.0 best.Search.candidate

let test_hill_climb_local_optimum () =
  (* two baseins; hill climbing from 0 gets stuck in the local one *)
  let f x = if x < 5.0 then abs_float (x -. 2.0) else abs_float (x -. 8.0) -. 10.0 in
  let best = Search.hill_climb ~neighbours:(fun x -> [ x -. 1.0; x +. 1.0 ]) ~start:0.0 f in
  Alcotest.(check (float 0.0)) "stuck at local min" 2.0 best.Search.candidate

let test_hill_climb_no_neighbours () =
  let best = Search.hill_climb ~neighbours:(fun _ -> []) ~start:42 (fun _ -> 3.0) in
  Alcotest.(check int) "returns start" 42 best.Search.candidate

let test_successive_halving_picks_best () =
  (* cost improves with budget but ordering is stable: the true best wins *)
  let f c ~budget = (float_of_int c *. 10.0) +. (100.0 /. float_of_int budget) in
  let best = Search.successive_halving ~candidates:[ 5; 3; 1; 4; 2 ] ~budget0:1 f in
  Alcotest.(check int) "best survives" 1 best.Search.candidate

let test_successive_halving_single () =
  let best = Search.successive_halving ~candidates:[ 9 ] ~budget0:4 (fun _ ~budget -> float_of_int budget) in
  Alcotest.(check int) "sole candidate" 9 best.Search.candidate

let test_successive_halving_budget_grows () =
  let budgets = ref [] in
  let f _ ~budget =
    if not (List.mem budget !budgets) then budgets := budget :: !budgets;
    0.0
  in
  ignore (Search.successive_halving ~candidates:[ 1; 2; 3; 4 ] ~budget0:2 f);
  Alcotest.(check bool) "budget doubled at least once" true (List.mem 4 !budgets)

let test_successive_halving_validation () =
  Alcotest.check_raises "eta" (Invalid_argument "Search.successive_halving: eta must be >= 2")
    (fun () ->
      ignore (Search.successive_halving ~eta:1 ~candidates:[ 1 ] ~budget0:1 (fun _ ~budget:_ -> 0.0)))

let test_simulated_annealing_escapes_local_minimum () =
  (* the landscape that traps hill climbing in test_hill_climb_local_optimum *)
  let f x = if x < 5.0 then abs_float (x -. 2.0) else abs_float (x -. 8.0) -. 10.0 in
  let neighbours x = [ x -. 1.0; x +. 1.0 ] in
  let stuck = Search.hill_climb ~neighbours ~start:0.0 f in
  Alcotest.(check (float 0.0)) "hill climbing is stuck" 2.0 stuck.Search.candidate;
  let sa =
    Search.simulated_annealing ~steps:2000 ~temperature:5.0 ~cooling:0.999 ~seed:7
      ~neighbours ~start:0.0 f
  in
  Alcotest.(check (float 0.0)) "annealing escapes" 8.0 sa.Search.candidate;
  Alcotest.(check (float 0.0)) "global cost" (-10.0) sa.Search.cost

let test_simulated_annealing_deterministic_per_seed () =
  let f x = (x -. 3.0) ** 2.0 in
  let neighbours x = [ x -. 1.0; x +. 1.0 ] in
  let a = Search.simulated_annealing ~seed:5 ~neighbours ~start:10.0 f in
  let b = Search.simulated_annealing ~seed:5 ~neighbours ~start:10.0 f in
  Alcotest.(check (float 0.0)) "same seed, same result" a.Search.cost b.Search.cost

(* The neighbour pick is array-indexed (one uniform draw), so a large
   option list must stay deterministic per seed — the regression this
   guards is the O(n) List.nth walk it replaced silently changing the
   draw-to-candidate mapping. *)
let test_simulated_annealing_many_neighbours_deterministic () =
  let f x = abs_float (float_of_int (x - 137)) in
  let neighbours x = List.init 100 (fun i -> x + i - 50) in
  let a = Search.simulated_annealing ~steps:500 ~seed:11 ~neighbours ~start:0 f in
  let b = Search.simulated_annealing ~steps:500 ~seed:11 ~neighbours ~start:0 f in
  Alcotest.(check int) "same seed, same winner" a.Search.candidate b.Search.candidate;
  Alcotest.(check (float 0.0)) "same seed, same cost" a.Search.cost b.Search.cost

let test_simulated_annealing_validation () =
  Alcotest.check_raises "cooling" (Invalid_argument "Search.simulated_annealing: cooling must be in (0, 1)")
    (fun () ->
      ignore
        (Search.simulated_annealing ~cooling:1.5 ~seed:1 ~neighbours:(fun _ -> []) ~start:0
           (fun _ -> 0.0)))

let prop_grid_best_is_minimum =
  QCheck.Test.make ~name:"grid best has minimal cost" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 30) (float_range (-100.0) 100.0))
    (fun costs ->
      let candidates = List.mapi (fun i _ -> i) costs in
      let f i = List.nth costs i in
      let evals, best = Search.grid ~candidates ~f in
      List.for_all (fun e -> best.Search.cost <= e.Search.cost) evals)

(* ---- Tuner ---- *)

let test_time_thunk_measures () =
  let t = Tuner.time_thunk ~warmup:0 ~repeats:3 (fun () -> ignore (Sys.opaque_identity (Array.make 1000 0.0))) in
  Alcotest.(check bool) "non-negative" true (t >= 0.0)

let test_time_thunk_counts_runs () =
  let count = ref 0 in
  ignore (Tuner.time_thunk ~warmup:2 ~repeats:3 (fun () -> incr count));
  Alcotest.(check int) "warmup + repeats" 5 !count

let test_sweep_picks_fastest () =
  (* simulate work proportional to the parameter *)
  let bench p () =
    let acc = ref 0.0 in
    for i = 1 to p * 20000 do
      acc := !acc +. float_of_int i
    done;
    ignore (Sys.opaque_identity !acc)
  in
  let measurements, best =
    Tuner.sweep ~warmup:0 ~repeats:3 ~candidates:[ 16; 1; 8 ] ~flops:float_of_int ~bench ()
  in
  Alcotest.(check int) "three measurements" 3 (List.length measurements);
  Alcotest.(check int) "fastest param" 1 best.Tuner.param

let test_sweep_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Tuner.sweep: no candidates") (fun () ->
      ignore (Tuner.sweep ~candidates:[] ~flops:float_of_int ~bench:(fun _ () -> ()) ()))

(* ---- Kconfig: the persisted host-keyed tuning cache ---- *)

let sample_cache () =
  {
    Kconfig.host_key = Kconfig.host_key ();
    nb = 96;
    search_seconds = 1.25;
    entries =
      [
        {
          Kconfig.prec = P.F64;
          kernel = P.Gemm_nn;
          cfg = { P.shape = 3; pack = true; prefetch = false };
          default_gflops = 10.0;
          tuned_gflops = 12.5;
        };
        {
          Kconfig.prec = P.F32;
          kernel = P.Trsm_rlt;
          cfg = { P.default_cfg with pack = false };
          default_gflops = 5.0;
          tuned_gflops = 5.0;
        };
      ];
  }

let with_tmp_cache f =
  let path = Filename.temp_file "xsc-ktune" ".bin" in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove path with Sys_error _ -> ());
      P.reset_cfgs ())
    (fun () -> f path)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc s)

let check_load_error name expected got =
  let show = function
    | Ok _ -> "Ok _"
    | Error e -> "Error: " ^ Kconfig.describe_error e
  in
  Alcotest.(check string) name (show (Error expected)) (show got)

let test_cache_roundtrip () =
  with_tmp_cache (fun path ->
      let c = sample_cache () in
      Kconfig.save ~path c;
      match Kconfig.load ~path () with
      | Error e -> Alcotest.fail ("load failed: " ^ Kconfig.describe_error e)
      | Ok c' ->
          Alcotest.(check bool) "round-trips exactly" true (c = c'))

let test_cache_host_mismatch () =
  with_tmp_cache (fun path ->
      let foreign = "other-host|Imaginary CPU @ 9.9GHz|64" in
      Kconfig.save ~path { (sample_cache ()) with Kconfig.host_key = foreign };
      check_load_error "host mismatch is typed"
        (Kconfig.Host_mismatch
           { expected = Kconfig.host_key (); found = foreign })
        (Kconfig.load ~path ());
      (* a foreign cache must not install anything *)
      P.reset_cfgs ();
      Alcotest.(check bool) "autoload refuses" false (Kconfig.autoload ~path ());
      Alcotest.(check bool) "configs stay default" true
        (P.cfg P.F64 P.Gemm_nn = P.default_cfg))

let test_cache_truncated () =
  with_tmp_cache (fun path ->
      Kconfig.save ~path (sample_cache ());
      let whole = read_file path in
      (* torn write: payload cut short *)
      write_file path (String.sub whole 0 (String.length whole - 10));
      check_load_error "torn payload" Kconfig.Truncated (Kconfig.load ~path ());
      (* shorter than the fixed header *)
      write_file path (String.sub whole 0 5);
      check_load_error "torn header" Kconfig.Truncated (Kconfig.load ~path ()))

let test_cache_bitflip () =
  with_tmp_cache (fun path ->
      Kconfig.save ~path (sample_cache ());
      let b = Bytes.of_string (read_file path) in
      let pos = Bytes.length b - 3 in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x40));
      write_file path (Bytes.to_string b);
      check_load_error "bit flip" Kconfig.Bad_crc (Kconfig.load ~path ()))

let test_cache_bad_magic_and_version () =
  with_tmp_cache (fun path ->
      Kconfig.save ~path (sample_cache ());
      let whole = read_file path in
      write_file path ("NOTCACHE" ^ String.sub whole 8 (String.length whole - 8));
      check_load_error "bad magic" Kconfig.Bad_magic (Kconfig.load ~path ());
      let b = Bytes.of_string whole in
      Bytes.set b 8 (Char.chr 99);
      write_file path (Bytes.to_string b);
      check_load_error "future version" (Kconfig.Bad_version 99)
        (Kconfig.load ~path ()))

(* CRC-valid but semantically absurd payload: corrupt a field AND patch the
   checksum so only the decoder's own validation can catch it. *)
let test_cache_malformed_payload () =
  with_tmp_cache (fun path ->
      Kconfig.save ~path (sample_cache ());
      let b = Bytes.of_string (read_file path) in
      let header_len = 8 + 1 + 8 + 4 in
      let key_len = String.length (Kconfig.host_key ()) in
      (* entry 0's shape byte: keylen/nb/seconds/count then prec+kernel *)
      let shape_pos = header_len + 4 + key_len + 4 + 8 + 4 + 2 in
      Bytes.set b shape_pos (Char.chr 200);
      let payload = Bytes.sub b header_len (Bytes.length b - header_len) in
      let crc = Xsc_util.Crc32.bytes payload in
      for i = 0 to 3 do
        Bytes.set b (17 + i) (Char.chr ((crc lsr (8 * i)) land 0xFF))
      done;
      write_file path (Bytes.to_string b);
      check_load_error "valid CRC, absurd shape id" Kconfig.Bad_crc
        (Kconfig.load ~path ()))

let test_cache_no_such_file_and_fallback () =
  let path = Filename.concat (Filename.get_temp_dir_name ()) "xsc-ktune-absent.bin" in
  (try Sys.remove path with Sys_error _ -> ());
  check_load_error "absent file" Kconfig.No_such_file (Kconfig.load ~path ());
  P.reset_cfgs ();
  Alcotest.(check bool) "autoload falls back" false (Kconfig.autoload ~path ());
  List.iter
    (fun prec ->
      List.iter
        (fun k ->
          Alcotest.(check bool)
            (P.prec_name prec ^ " " ^ P.kernel_name k ^ " stays default")
            true
            (P.cfg prec k = P.default_cfg))
        P.all_kernels)
    P.all_precs

let test_cache_apply_installs () =
  with_tmp_cache (fun path ->
      let c = sample_cache () in
      Kconfig.save ~path c;
      P.reset_cfgs ();
      Alcotest.(check bool) "autoload succeeds" true (Kconfig.autoload ~path ());
      Alcotest.(check bool) "f64 gemm_nn installed" true
        (P.cfg P.F64 P.Gemm_nn = { P.shape = 3; pack = true; prefetch = false });
      Alcotest.(check bool) "f32 trsm installed" true
        (P.cfg P.F32 P.Trsm_rlt = { P.default_cfg with pack = false });
      Alcotest.(check bool) "untouched kernel stays default" true
        (P.cfg P.F64 P.Syrk_ln = P.default_cfg);
      match Kconfig.current () with
      | Some t -> Alcotest.(check int) "current reflects the load" 96 t.Kconfig.nb
      | None -> Alcotest.fail "current () empty after autoload")

(* ---- Kernel_tune: tune once per host, every later process loads ---- *)

let test_ensure_tunes_once () =
  with_tmp_cache (fun path ->
      Sys.remove path;
      (match KT.ensure ~quick:true ~path () with
      | `Tuned (r, c) ->
          Alcotest.(check int) "one entry per kernel x precision" 8
            (List.length c.Kconfig.entries);
          Alcotest.(check bool) "search actually ran" true (r.KT.evaluations > 0);
          List.iter
            (fun e ->
              Alcotest.(check bool)
                (P.prec_name e.Kconfig.prec ^ " " ^ P.kernel_name e.Kconfig.kernel
               ^ " tuned >= default")
                true
                (e.Kconfig.tuned_gflops >= e.Kconfig.default_gflops))
            c.Kconfig.entries
      | `Loaded _ -> Alcotest.fail "first ensure must tune");
      match KT.ensure ~quick:true ~path () with
      | `Loaded t ->
          Alcotest.(check string) "loaded cache is this host's"
            (Kconfig.host_key ()) t.Kconfig.host_key
      | `Tuned _ -> Alcotest.fail "second ensure must load, not re-search")

let test_measure_pair_restores_cfg () =
  Fun.protect ~finally:P.reset_cfgs (fun () ->
      let other = { P.default_cfg with prefetch = true } in
      P.set_cfg P.F64 P.Gemm_nn other;
      let ra, rb =
        KT.measure_pair ~rounds:2 ~nb:32 P.F64 P.Gemm_nn P.default_cfg
          { P.default_cfg with pack = true }
      in
      Alcotest.(check bool) "rates positive" true (ra > 0.0 && rb > 0.0);
      Alcotest.(check bool) "installed config restored" true
        (P.cfg P.F64 P.Gemm_nn = other))

let () =
  Alcotest.run "xsc_autotune"
    [
      ( "search",
        [
          Alcotest.test_case "grid minimum" `Quick test_grid_finds_minimum;
          Alcotest.test_case "grid empty" `Quick test_grid_empty;
          Alcotest.test_case "grid order" `Quick test_grid_preserves_order;
          Alcotest.test_case "hill climb convex" `Quick test_hill_climb_convex;
          Alcotest.test_case "hill climb budget" `Quick test_hill_climb_respects_max_steps;
          Alcotest.test_case "hill climb local optimum" `Quick test_hill_climb_local_optimum;
          Alcotest.test_case "hill climb isolated" `Quick test_hill_climb_no_neighbours;
          Alcotest.test_case "halving picks best" `Quick test_successive_halving_picks_best;
          Alcotest.test_case "halving single" `Quick test_successive_halving_single;
          Alcotest.test_case "halving budget grows" `Quick test_successive_halving_budget_grows;
          Alcotest.test_case "halving validation" `Quick test_successive_halving_validation;
          Alcotest.test_case "annealing escapes local min" `Quick
            test_simulated_annealing_escapes_local_minimum;
          Alcotest.test_case "annealing deterministic" `Quick
            test_simulated_annealing_deterministic_per_seed;
          Alcotest.test_case "annealing deterministic, many neighbours" `Quick
            test_simulated_annealing_many_neighbours_deterministic;
          Alcotest.test_case "annealing validation" `Quick test_simulated_annealing_validation;
          qcheck prop_grid_best_is_minimum;
        ] );
      ( "tuner",
        [
          Alcotest.test_case "time_thunk" `Quick test_time_thunk_measures;
          Alcotest.test_case "run counting" `Quick test_time_thunk_counts_runs;
          Alcotest.test_case "sweep picks fastest" `Quick test_sweep_picks_fastest;
          Alcotest.test_case "sweep empty" `Quick test_sweep_empty;
        ] );
      ( "kconfig",
        [
          Alcotest.test_case "round trip" `Quick test_cache_roundtrip;
          Alcotest.test_case "host mismatch" `Quick test_cache_host_mismatch;
          Alcotest.test_case "truncated" `Quick test_cache_truncated;
          Alcotest.test_case "bit flip" `Quick test_cache_bitflip;
          Alcotest.test_case "bad magic / version" `Quick
            test_cache_bad_magic_and_version;
          Alcotest.test_case "malformed payload" `Quick test_cache_malformed_payload;
          Alcotest.test_case "absent file fallback" `Quick
            test_cache_no_such_file_and_fallback;
          Alcotest.test_case "apply installs" `Quick test_cache_apply_installs;
        ] );
      ( "kernel_tune",
        [
          Alcotest.test_case "ensure tunes once" `Slow test_ensure_tunes_once;
          Alcotest.test_case "measure_pair restores cfg" `Quick
            test_measure_pair_restores_cfg;
        ] );
    ]
