(* Tests for Xsc_tile.Packed and the Pblas C kernels: pack/unpack round
   trips are exact, and packed factorizations are bitwise identical to the
   strided Tile/Blas/Lapack reference — the reproducibility contract that
   lets the packed layout replace the strided one without changing a single
   bit of any float64 result. *)

open Xsc_linalg
module Tile = Xsc_tile.Tile
module Packed = Xsc_tile.Packed
module Cholesky = Xsc_core.Cholesky
module Lu = Xsc_core.Lu
module Rng = Xsc_util.Rng

let qcheck tc = QCheck_alcotest.to_alcotest tc

(* The nb values from the acceptance criteria: 32 exercises the unblocked
   strided gemm, 48 and 72 the cache-blocked Kernel path — the packed C
   kernels must agree bitwise with both. *)
let nbs = [| 32; 48; 72 |]

let prop_roundtrip_f64 =
  QCheck.Test.make ~name:"D.of_mat . to_mat is bitwise identity" ~count:20
    QCheck.(pair (int_range 1 4) (int_range 0 2))
    (fun (nt, nbi) ->
      let nb = nbs.(nbi) in
      let n = nt * nb in
      let rng = Rng.create ((nt * 100) + nb) in
      let a = Mat.random rng n n in
      Mat.approx_equal ~tol:0.0 a (Packed.D.to_mat (Packed.D.of_mat ~nb a)))

let prop_roundtrip_f32 =
  QCheck.Test.make ~name:"S pack rounds once; unpack . pack is exact" ~count:20
    QCheck.(pair (int_range 1 4) (int_range 0 2))
    (fun (nt, nbi) ->
      let nb = nbs.(nbi) in
      let n = nt * nb in
      let rng = Rng.create ((nt * 101) + nb) in
      let a = Mat.random rng n n in
      let p = Packed.S.of_mat ~nb a in
      let u = Packed.S.to_mat p in
      (* each unpacked element is the correctly-rounded f32 of the source *)
      let rounded_once = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          let expect = Int32.float_of_bits (Int32.bits_of_float (Mat.get a i j)) in
          if Mat.get u i j <> expect then rounded_once := false
        done
      done;
      (* and re-packing the unpacked matrix loses nothing *)
      let p2 = Packed.S.of_mat ~nb u in
      let stable = Mat.approx_equal ~tol:0.0 u (Packed.S.to_mat p2) in
      !rounded_once && stable)

let test_tiled_conversions () =
  let rng = Rng.create 21 in
  let a = Mat.random rng 96 96 in
  let t = Tile.of_mat ~nb:32 a in
  let p = Packed.D.of_tiled t in
  Alcotest.(check bool) "of_tiled matches of_mat" true
    (Mat.approx_equal ~tol:0.0 a (Packed.D.to_mat p));
  let t2 = Packed.D.to_tiled p in
  Alcotest.(check bool) "to_tiled round-trips" true (Tile.approx_equal ~tol:0.0 t t2)

let test_offsets_and_access () =
  let p = Packed.D.create ~n:8 ~nb:4 in
  Alcotest.(check int) "tile (1,1) offset" 48 (Packed.D.off p 1 1);
  Packed.D.set p 5 6 42.0;
  Alcotest.(check (float 0.0)) "global get" 42.0 (Packed.D.get p 5 6);
  Alcotest.(check (float 0.0)) "raw slot" 42.0 p.Packed.D.buf.{48 + (1 * 4) + 2}

(* Strided sequential Cholesky vs packed sequential Cholesky: same program
   order, kernels contracted to identical operation order => bitwise. *)
let test_potrf_bitwise nb () =
  let nt = 3 in
  let n = nt * nb in
  let rng = Rng.create (1000 + nb) in
  let a = Mat.random_spd rng n in
  let t = Tile.of_mat ~nb a in
  Cholesky.factor t;
  let p = Packed.D.of_mat ~nb a in
  Packed.D.potrf p;
  Alcotest.(check bool)
    (Printf.sprintf "packed potrf bitwise at nb=%d" nb)
    true
    (Mat.approx_equal ~tol:0.0 (Tile.to_mat t) (Packed.D.to_mat p))

let test_getrf_bitwise nb () =
  let nt = 3 in
  let n = nt * nb in
  let rng = Rng.create (2000 + nb) in
  (* diagonally dominant => nopiv LU is stable and pivot-free *)
  let a = Mat.random rng n n in
  for i = 0 to n - 1 do
    Mat.set a i i (Mat.get a i i +. float_of_int n)
  done;
  let t = Tile.of_mat ~nb a in
  Lu.factor t;
  let p = Packed.D.of_mat ~nb a in
  Packed.D.getrf_nopiv p;
  Alcotest.(check bool)
    (Printf.sprintf "packed getrf bitwise at nb=%d" nb)
    true
    (Mat.approx_equal ~tol:0.0 (Tile.to_mat t) (Packed.D.to_mat p))

(* Executor identity over the closure-free op DAG: every executor drives
   the same packed interpreter, and any DAG-consistent interleaving applies
   each tile update in the same per-element order — so Sequential, Dataflow
   and Forkjoin must agree bitwise with the strided reference. *)
let test_factor_packed_executors_bitwise () =
  let nb = 32 in
  let nt = 4 in
  let n = nt * nb in
  let rng = Rng.create 4001 in
  let a = Mat.random_spd rng n in
  let t = Tile.of_mat ~nb a in
  Cholesky.factor t;
  let reference = Tile.to_mat t in
  List.iter
    (fun (label, exec) ->
      let p = Packed.D.of_mat ~nb a in
      Cholesky.factor_packed ~exec p;
      Alcotest.(check bool)
        ("cholesky " ^ label ^ " bitwise")
        true
        (Mat.approx_equal ~tol:0.0 reference (Packed.D.to_mat p)))
    [
      ("sequential", Xsc_core.Runtime_api.Sequential);
      ("dataflow", Xsc_core.Runtime_api.Dataflow 4);
      ("forkjoin", Xsc_core.Runtime_api.Forkjoin 4);
    ]

let test_lu_packed_executors_bitwise () =
  let nb = 32 in
  let nt = 4 in
  let n = nt * nb in
  let rng = Rng.create 4002 in
  let a = Mat.random rng n n in
  for i = 0 to n - 1 do
    Mat.set a i i (Mat.get a i i +. float_of_int n)
  done;
  let t = Tile.of_mat ~nb a in
  Lu.factor t;
  let reference = Tile.to_mat t in
  List.iter
    (fun (label, exec) ->
      let p = Packed.D.of_mat ~nb a in
      Lu.factor_packed ~exec p;
      Alcotest.(check bool)
        ("lu " ^ label ^ " bitwise")
        true
        (Mat.approx_equal ~tol:0.0 reference (Packed.D.to_mat p)))
    [
      ("sequential", Xsc_core.Runtime_api.Sequential);
      ("dataflow", Xsc_core.Runtime_api.Dataflow 4);
      ("forkjoin", Xsc_core.Runtime_api.Forkjoin 4);
    ]

(* The op DAG must be byte-for-byte the same shape as the closure DAG:
   same task count, names, program order and dependence structure. *)
let test_op_dag_matches_closure_dag () =
  let nb = 16 and nt = 4 in
  let t = Tile.create ~rows:(nt * nb) ~cols:(nt * nb) ~nb in
  let closure_tasks = Cholesky.tasks ~with_closures:false t in
  let op_tasks = Cholesky.tasks_ops ~nt ~nb in
  Alcotest.(check int) "same count" (List.length closure_tasks) (List.length op_tasks);
  List.iter2
    (fun (a : Xsc_runtime.Task.t) (b : Xsc_runtime.Task.t) ->
      Alcotest.(check string) "same name" a.Xsc_runtime.Task.name b.Xsc_runtime.Task.name;
      Alcotest.(check bool) "same accesses" true
        (a.Xsc_runtime.Task.accesses = b.Xsc_runtime.Task.accesses);
      Alcotest.(check bool) "op has no closure" true
        (b.Xsc_runtime.Task.run = None && b.Xsc_runtime.Task.op <> None))
    closure_tasks op_tasks;
  Alcotest.(check int) "lu counts" (List.length (Lu.tasks ~with_closures:false t))
    (List.length (Lu.tasks_ops ~nt ~nb))

let test_gemm_matches_reference () =
  let n = 96 and nb = 32 in
  let rng = Rng.create 31 in
  let a = Mat.random rng n n and b = Mat.random rng n n in
  let c = Mat.create n n in
  Blas.gemm ~alpha:1.0 a b ~beta:0.0 c;
  let pa = Packed.D.of_mat ~nb a and pb = Packed.D.of_mat ~nb b in
  let pc = Packed.D.create ~n ~nb in
  Packed.D.gemm ~alpha:1.0 pa pb ~beta:0.0 pc;
  Alcotest.(check bool) "packed gemm ~ reference" true
    (Mat.approx_equal ~tol:1e-10 c (Packed.D.to_mat pc))

let test_potrf_singular () =
  let p = Packed.D.create ~n:4 ~nb:4 in
  (* zero matrix: first pivot fails *)
  Alcotest.check_raises "singular" (Pblas.Singular 0) (fun () -> Packed.D.potrf p)

(* Float32 Cholesky: genuine single-precision arithmetic, so the factor
   carries O(eps_32) error relative to the double factor — present (it is
   a real f32 computation, not double-in-disguise) but bounded. *)
let test_potrf_f32_accuracy () =
  let nb = 32 in
  let nt = 3 in
  let n = nt * nb in
  let rng = Rng.create 3032 in
  let a = Mat.random_spd rng n in
  let pd = Packed.D.of_mat ~nb a in
  Packed.D.potrf pd;
  let ld = Packed.D.to_mat pd in
  let ps = Packed.S.of_mat ~nb a in
  Packed.S.potrf ps;
  let ls = Packed.S.to_mat ps in
  let max_rel = ref 0.0 and differs = ref false in
  for i = 0 to n - 1 do
    for j = 0 to i do
      let d = Mat.get ld i j and s = Mat.get ls i j in
      if d <> s then differs := true;
      let scale = Float.max 1.0 (Float.abs d) in
      max_rel := Float.max !max_rel (Float.abs (d -. s) /. scale)
    done
  done;
  Alcotest.(check bool) "f32 factor differs from f64 (real low precision)" true !differs;
  Alcotest.(check bool)
    (Printf.sprintf "f32 factor within 1e-3 of f64 (got %g)" !max_rel)
    true (!max_rel < 1e-3)

(* ---- kernel variants: the autotuner's correctness contract ----

   Every runtime-selectable kernel config (micro-tile shape x pack
   strategy x prefetch) must compute bit-identical results: a variant
   only changes which independent k-ascending accumulator chains run
   concurrently, never the operation order within a chain. The tuner
   relies on this to search over speed alone, so sweep the FULL config
   space — all shapes, both pack strategies, prefetch on and off — and
   demand tol 0.0 against the fixed references. *)

let all_cfgs () =
  List.concat_map
    (fun shape ->
      List.concat_map
        (fun pack ->
          List.map (fun prefetch -> { Pblas.shape; pack; prefetch }) [ false; true ])
        [ true; false ])
    (List.init (Array.length Pblas.shapes) Fun.id)

let cfg_label cfg =
  let mr, nr = Pblas.shapes.(cfg.Pblas.shape) in
  Printf.sprintf "%dx%d pack=%b pf=%b" mr nr cfg.Pblas.pack cfg.Pblas.prefetch

let with_cfg prec cfg f =
  Fun.protect ~finally:Pblas.reset_cfgs (fun () ->
      List.iter (fun k -> Pblas.set_cfg prec k cfg) Pblas.all_kernels;
      f ())

(* potrf exercises gemm_nt/syrk_ln/trsm_rlt, getrf_nopiv exercises
   gemm_nn plus the fixed triangular kernels — together every tunable
   dispatch point, judged against the strided Tile/Blas/Lapack path. *)
let test_variants_bitwise_f64 () =
  let nb = 32 in
  let n = 3 * nb in
  let rng = Rng.create 5001 in
  let a = Mat.random_spd rng n in
  let t = Tile.of_mat ~nb a in
  Cholesky.factor t;
  let ref_chol = Tile.to_mat t in
  let d = Mat.random rng n n in
  for i = 0 to n - 1 do
    Mat.set d i i (Mat.get d i i +. float_of_int n)
  done;
  let t2 = Tile.of_mat ~nb d in
  Lu.factor t2;
  let ref_lu = Tile.to_mat t2 in
  List.iter
    (fun cfg ->
      with_cfg Pblas.F64 cfg (fun () ->
          let p = Packed.D.of_mat ~nb a in
          Packed.D.potrf p;
          Alcotest.(check bool)
            ("potrf bitwise " ^ cfg_label cfg)
            true
            (Mat.approx_equal ~tol:0.0 ref_chol (Packed.D.to_mat p));
          let q = Packed.D.of_mat ~nb d in
          Packed.D.getrf_nopiv q;
          Alcotest.(check bool)
            ("getrf bitwise " ^ cfg_label cfg)
            true
            (Mat.approx_equal ~tol:0.0 ref_lu (Packed.D.to_mat q))))
    (all_cfgs ())

(* f32 has no strided reference, so the contract is variant-vs-variant:
   every config reproduces the default config's factor exactly. *)
let test_variants_bitwise_f32 () =
  let nb = 32 in
  let n = 3 * nb in
  let rng = Rng.create 5002 in
  let a = Mat.random_spd rng n in
  Pblas.reset_cfgs ();
  let p0 = Packed.S.of_mat ~nb a in
  Packed.S.potrf p0;
  let reference = Packed.S.to_mat p0 in
  List.iter
    (fun cfg ->
      with_cfg Pblas.F32 cfg (fun () ->
          let p = Packed.S.of_mat ~nb a in
          Packed.S.potrf p;
          Alcotest.(check bool)
            ("f32 potrf bitwise " ^ cfg_label cfg)
            true
            (Mat.approx_equal ~tol:0.0 reference (Packed.S.to_mat p))))
    (all_cfgs ())

(* nb=72 leaves a 72 mod 32 j-remainder and i-remainders for every
   mr > 1 — the tail cascade must be bitwise too, not just full tiles. *)
let test_variants_bitwise_remainders () =
  let nb = 72 in
  let n = 2 * nb in
  let rng = Rng.create 5003 in
  let a = Mat.random_spd rng n in
  let t = Tile.of_mat ~nb a in
  Cholesky.factor t;
  let reference = Tile.to_mat t in
  List.iter
    (fun cfg ->
      with_cfg Pblas.F64 cfg (fun () ->
          let p = Packed.D.of_mat ~nb a in
          Packed.D.potrf p;
          Alcotest.(check bool)
            ("potrf nb=72 bitwise " ^ cfg_label cfg)
            true
            (Mat.approx_equal ~tol:0.0 reference (Packed.D.to_mat p))))
    (all_cfgs ())

let test_set_cfg_validation () =
  Fun.protect ~finally:Pblas.reset_cfgs (fun () ->
      Alcotest.check_raises "shape out of range"
        (Invalid_argument "Pblas.set_cfg: shape id out of range") (fun () ->
          Pblas.set_cfg Pblas.F64 Pblas.Gemm_nn
            { Pblas.shape = Array.length Pblas.shapes; pack = true; prefetch = false });
      Pblas.set_cfg Pblas.F32 Pblas.Syrk_ln
        { Pblas.default_cfg with prefetch = true };
      Alcotest.(check bool) "mirror tracks the C side" true
        (Pblas.cfg Pblas.F32 Pblas.Syrk_ln
        = { Pblas.default_cfg with prefetch = true });
      Pblas.reset_cfgs ();
      Alcotest.(check bool) "reset restores default" true
        (Pblas.cfg Pblas.F32 Pblas.Syrk_ln = Pblas.default_cfg))

let test_potrs_f32 () =
  let nb = 32 in
  let n = 2 * nb in
  let rng = Rng.create 77 in
  let a = Mat.random_spd rng n in
  let x_true = Array.init n (fun i -> 1.0 +. (float_of_int i /. float_of_int n)) in
  let b = Array.make n 0.0 in
  Blas.gemv ~alpha:1.0 a x_true ~beta:0.0 b;
  let p = Packed.S.of_mat ~nb a in
  Packed.S.potrf p;
  let x = Packed.S.potrs p b in
  let max_err = ref 0.0 in
  for i = 0 to n - 1 do
    max_err := Float.max !max_err (Float.abs (x.(i) -. x_true.(i)))
  done;
  (* single-precision factor: expect ~1e-4 forward error, far from exact
     but good enough to contract as a refinement solver *)
  Alcotest.(check bool)
    (Printf.sprintf "f32 solve near truth (err %g)" !max_err)
    true (!max_err < 1e-2)

let () =
  Alcotest.run "xsc_packed"
    [
      ( "layout",
        [
          qcheck prop_roundtrip_f64;
          qcheck prop_roundtrip_f32;
          Alcotest.test_case "tiled conversions" `Quick test_tiled_conversions;
          Alcotest.test_case "offsets and access" `Quick test_offsets_and_access;
        ] );
      ( "bitwise",
        Array.to_list
          (Array.map
             (fun nb ->
               Alcotest.test_case
                 (Printf.sprintf "potrf nb=%d" nb)
                 `Quick (test_potrf_bitwise nb))
             nbs)
        @ Array.to_list
            (Array.map
               (fun nb ->
                 Alcotest.test_case
                   (Printf.sprintf "getrf nb=%d" nb)
                   `Quick (test_getrf_bitwise nb))
               nbs) );
      ( "executors",
        [
          Alcotest.test_case "cholesky bitwise across executors" `Quick
            test_factor_packed_executors_bitwise;
          Alcotest.test_case "lu bitwise across executors" `Quick
            test_lu_packed_executors_bitwise;
          Alcotest.test_case "op dag matches closure dag" `Quick
            test_op_dag_matches_closure_dag;
        ] );
      ( "kernels",
        [
          Alcotest.test_case "gemm vs reference" `Quick test_gemm_matches_reference;
          Alcotest.test_case "potrf singular" `Quick test_potrf_singular;
        ] );
      ( "float32",
        [
          Alcotest.test_case "potrf accuracy" `Quick test_potrf_f32_accuracy;
          Alcotest.test_case "potrs solve" `Quick test_potrs_f32;
        ] );
      ( "variants",
        [
          Alcotest.test_case "f64 sweep bitwise" `Quick test_variants_bitwise_f64;
          Alcotest.test_case "f32 sweep bitwise" `Quick test_variants_bitwise_f32;
          Alcotest.test_case "remainder sweep bitwise" `Quick
            test_variants_bitwise_remainders;
          Alcotest.test_case "set_cfg validation" `Quick test_set_cfg_validation;
        ] );
    ]
