(* Fault-storm tests for Xsc_core.Ft: seeded runtime fault injection over
   real executor runs of packed tiled Cholesky/LU, with ABFT detection,
   bitwise cone-replay repair, and checkpoint/restart.

   The whole suite runs under a watchdog domain: a deadlocked executor (the
   bug class the exception-safe abort path exists to prevent) would hang CI
   forever without it — the watchdog turns a hang into a hard exit 124. *)

open Xsc_linalg
module PD = Xsc_tile.Packed.D
module Ft = Xsc_core.Ft
module Harness = Xsc_resilience.Harness
module Rng = Xsc_util.Rng
module Runtime_api = Xsc_core.Runtime_api
module Real_exec = Xsc_runtime.Real_exec

let watchdog_done = Atomic.make false

let spawn_watchdog ~seconds =
  Domain.spawn (fun () ->
      let left = ref seconds in
      while (not (Atomic.get watchdog_done)) && !left > 0.0 do
        Unix.sleepf 0.25;
        left := !left -. 0.25
      done;
      if not (Atomic.get watchdog_done) then begin
        prerr_endline "test_ft: WATCHDOG TIMEOUT — an executor run failed to terminate";
        exit 124
      end)

let spd_packed seed n nb =
  let rng = Rng.create seed in
  PD.of_mat ~nb (Mat.random_spd rng n)

let dd_packed seed n nb =
  let rng = Rng.create seed in
  PD.of_mat ~nb (Mat.random_diag_dominant rng n)

let buf_equal (a : PD.t) (b : PD.t) =
  let da = a.PD.buf and db = b.PD.buf in
  let dim = Bigarray.Array1.dim da in
  let rec go i =
    i >= dim
    || (Int64.equal (Int64.bits_of_float da.{i}) (Int64.bits_of_float db.{i}) && go (i + 1))
  in
  Bigarray.Array1.dim db = dim && go 0

let max_abs_diff (a : PD.t) (b : PD.t) =
  let d = ref 0.0 in
  for i = 0 to Bigarray.Array1.dim a.PD.buf - 1 do
    let x = abs_float (a.PD.buf.{i} -. b.PD.buf.{i}) in
    if x > !d then d := x
  done;
  !d

(* factored references, computed once per geometry *)
let fixture ~gen ~seed n nb =
  let pristine = gen seed n nb in
  let reference = PD.copy pristine in
  (match gen == dd_packed with
  | true -> PD.getrf_nopiv reference
  | false -> PD.potrf reference);
  (pristine, reference)

let chol_432_48 = lazy (fixture ~gen:spd_packed ~seed:101 432 48)
let chol_432_72 = lazy (fixture ~gen:spd_packed ~seed:101 432 72)
let chol_216_72 = lazy (fixture ~gen:spd_packed ~seed:131 216 72)
let lu_240_48 = lazy (fixture ~gen:dd_packed ~seed:109 240 48)

(* ---- clean runs: the FT driver is the plain factorization, bitwise ---- *)

let test_clean_cholesky_bitwise () =
  List.iter
    (fun lz ->
      let pristine, reference = Lazy.force lz in
      let p = PD.copy pristine in
      let r = Ft.potrf_ft p in
      Alcotest.(check bool)
        (Printf.sprintf "n=%d nb=%d bitwise" p.PD.n p.PD.nb)
        true (buf_equal p reference);
      Alcotest.(check int) "nothing detected" 0 r.Ft.detected;
      Alcotest.(check int) "nothing repaired" 0 r.Ft.repaired_tiles;
      Alcotest.(check int) "no restarts" 0 r.Ft.restarts)
    [ chol_432_48; chol_432_72; chol_216_72 ]

let test_clean_lu_bitwise () =
  let pristine, reference = Lazy.force lu_240_48 in
  let p = PD.copy pristine in
  let r = Ft.getrf_ft p in
  Alcotest.(check bool) "bitwise" true (buf_equal p reference);
  Alcotest.(check int) "nothing detected" 0 r.Ft.detected

(* ---- the acceptance storm: >= 50 seeded corruption runs at n = 432 ----

   Every injected silent corruption must be detected by the in-DAG
   checksums and repaired by cone replay; because replay recomputes the
   clean kernel sequence exactly, the repaired factor must be bitwise
   identical to a fault-free factorization (backward error 0 <= 1e-12). *)

let corruption_storm_runs = 26 (* per block size; 52 total *)

let test_corruption_storm () =
  let total = ref 0 in
  List.iter
    (fun lz ->
      let pristine, reference = Lazy.force lz in
      let nb = pristine.PD.nb in
      for seed = 1 to corruption_storm_runs do
        let p = PD.copy pristine in
        let h =
          Harness.create { Harness.default with seed; p_corrupt = 0.12; magnitude = 1.0 }
        in
        let r = Ft.potrf_ft ~harness:h p in
        let injected = Harness.corrupted h in
        if injected > 0 && r.Ft.detected = 0 then
          Alcotest.failf "seed %d nb %d: %d corruptions escaped detection" seed nb injected;
        if not (buf_equal p reference) then
          Alcotest.failf "seed %d nb %d: repaired factor differs from clean run (max diff %g)"
            seed nb (max_abs_diff p reference);
        total := !total + injected
      done)
    [ chol_432_48; chol_432_72 ];
  (* the probabilities make a fault-free storm astronomically unlikely; a
     zero here means the harness is not firing at all *)
  Alcotest.(check bool)
    (Printf.sprintf "storm injected faults (%d)" !total)
    true (!total > 100)

(* ---- exception storms: crashes must terminate, never deadlock ---- *)

let exception_storm_one ~exec ~exact ~seed =
  let pristine, reference = Lazy.force chol_432_72 in
  let p = PD.copy pristine in
  let h = Harness.create { Harness.default with seed; p_raise = 0.08; magnitude = 1.0 } in
  let r = Ft.potrf_ft ~exec ~harness:h p in
  Alcotest.(check bool)
    (Printf.sprintf "seed %d: bitwise after %d restarts" seed r.Ft.restarts)
    true (buf_equal p reference);
  if exact then
    (* sequential runs abort at the first raise, so raises and restarts
       pair up exactly; parallel workers can each raise before the abort
       flag propagates, so there restarts <= raises *)
    Alcotest.(check int)
      (Printf.sprintf "seed %d: one restart per raise" seed)
      (Harness.raised h) r.Ft.restarts
  else
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: restarts (%d) <= raises (%d)" seed r.Ft.restarts
         (Harness.raised h))
      true
      (r.Ft.restarts <= Harness.raised h)

let test_exception_storm_sequential () =
  for seed = 1 to 8 do
    exception_storm_one ~exec:Runtime_api.Sequential ~exact:true ~seed
  done

let test_exception_storm_dataflow () =
  for seed = 1 to 5 do
    exception_storm_one ~exec:(Runtime_api.Dataflow 2) ~exact:false ~seed
  done

let test_exception_storm_forkjoin () =
  for seed = 1 to 5 do
    exception_storm_one ~exec:(Runtime_api.Forkjoin 2) ~exact:false ~seed
  done

(* The shared task pool as the FT executor: one long-lived pool serves
   every step sub-DAG of every restart, and ABFT cone replay on top of it
   still lands bitwise — including across injected exceptions, where the
   per-job abort must not poison later submissions to the same pool. *)
let test_clean_pooled_bitwise () =
  let pool = Xsc_runtime.Pool.create ~workers:2 () in
  Fun.protect
    ~finally:(fun () -> Xsc_runtime.Pool.shutdown pool)
    (fun () ->
      let pristine, reference = Lazy.force chol_216_72 in
      let p = PD.copy pristine in
      let r = Ft.potrf_ft ~exec:(Runtime_api.Pooled pool) p in
      Alcotest.(check bool) "bitwise" true (buf_equal p reference);
      Alcotest.(check int) "nothing detected" 0 r.Ft.detected;
      Alcotest.(check int) "no restarts" 0 r.Ft.restarts)

let test_exception_storm_pooled () =
  let pool = Xsc_runtime.Pool.create ~workers:2 () in
  Fun.protect
    ~finally:(fun () -> Xsc_runtime.Pool.shutdown pool)
    (fun () ->
      for seed = 1 to 5 do
        exception_storm_one ~exec:(Runtime_api.Pooled pool) ~exact:false ~seed
      done)

let test_corruption_storm_pooled () =
  let pool = Xsc_runtime.Pool.create ~workers:2 () in
  Fun.protect
    ~finally:(fun () -> Xsc_runtime.Pool.shutdown pool)
    (fun () ->
      let pristine, reference = Lazy.force chol_216_72 in
      let total = ref 0 in
      for seed = 1 to 8 do
        let p = PD.copy pristine in
        let h =
          Harness.create { Harness.default with seed; p_corrupt = 0.12; magnitude = 1.0 }
        in
        let r = Ft.potrf_ft ~exec:(Runtime_api.Pooled pool) ~harness:h p in
        let injected = Harness.corrupted h in
        if injected > 0 && r.Ft.detected = 0 then
          Alcotest.failf "seed %d: %d corruptions escaped detection on the pool" seed
            injected;
        if not (buf_equal p reference) then
          Alcotest.failf "seed %d: pooled replayed factor differs from clean run" seed;
        total := !total + injected
      done;
      Alcotest.(check bool)
        (Printf.sprintf "pooled storm injected faults (%d)" !total)
        true (!total > 0))

(* combined raises + corruption, still bitwise *)
let test_mixed_storm () =
  let pristine, reference = Lazy.force chol_432_72 in
  for seed = 1 to 10 do
    let p = PD.copy pristine in
    let h =
      Harness.create
        { Harness.default with seed; p_raise = 0.05; p_corrupt = 0.10; magnitude = 1.0 }
    in
    let r = Ft.potrf_ft ~harness:h p in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: bitwise (detected %d, restarts %d)" seed r.Ft.detected
         r.Ft.restarts)
      true (buf_equal p reference)
  done

let test_lu_corruption_storm () =
  let pristine, reference = Lazy.force lu_240_48 in
  for seed = 1 to 15 do
    let p = PD.copy pristine in
    let h =
      Harness.create { Harness.default with seed; p_corrupt = 0.12; magnitude = 1.0 }
    in
    let r = Ft.getrf_ft ~harness:h p in
    if Harness.corrupted h > 0 && r.Ft.detected = 0 then
      Alcotest.failf "seed %d: LU corruptions escaped detection" seed;
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: LU bitwise" seed)
      true (buf_equal p reference)
  done

(* a permanent (non-transient) raise exhausts max_restarts and fail-stops *)
let test_fail_stop_after_max_restarts () =
  let p = spd_packed 113 144 48 in
  let h =
    Harness.create { Harness.default with seed = 1; p_raise = 1.0; transient = false }
  in
  match Ft.potrf_ft ~harness:h ~max_restarts:3 p with
  | _ -> Alcotest.fail "expected Task_failed after exhausting restarts"
  | exception Real_exec.Task_failed f ->
    Alcotest.(check bool) "failure carries the task name" true
      (String.length f.Real_exec.failed_name > 0)

(* ---- checkpoint/restart ---- *)

(* run with max_restarts:0 until a seed fails after at least one checkpoint
   was persisted; returns that harness for the resume leg *)
let fail_after_checkpoint ~pristine ~checkpoint ~path =
  let rec attempt seed =
    if seed > 300 then
      Alcotest.fail "no seed produced a mid-run failure after a checkpoint"
    else begin
      let p = PD.copy pristine in
      let h = Harness.create { Harness.default with seed; p_raise = 0.04; magnitude = 1.0 } in
      match Ft.potrf_ft ?checkpoint ~max_restarts:0 ~harness:h p with
      | _ ->
        (* no raise fired for this seed: clean completion removed the file *)
        attempt (seed + 1)
      | exception Real_exec.Task_failed _ ->
        if Sys.file_exists path then h else attempt (seed + 1)
    end
  in
  attempt 1

let test_checkpoint_resume () =
  let pristine, reference = Lazy.force chol_432_72 in
  let path = Filename.temp_file "xsc_ft_ckpt" ".bin" in
  Sys.remove path;
  let checkpoint = Some { Ft.path = Some path; every = 1 } in
  let h = fail_after_checkpoint ~pristine ~checkpoint ~path in
  (* resume: fresh copy of the same input, same harness (transient raises
     that already fired run clean on replay) *)
  let p = PD.copy pristine in
  let r = Ft.potrf_ft ?checkpoint ~harness:h p in
  Alcotest.(check bool) "resumed from the checkpoint" true r.Ft.resumed;
  Alcotest.(check bool) "bitwise after resume" true (buf_equal p reference);
  Alcotest.(check bool) "checkpoint consumed on success" false (Sys.file_exists path)

let test_checkpoint_foreign_matrix_rejected () =
  let pristine, _ = Lazy.force chol_432_72 in
  let path = Filename.temp_file "xsc_ft_ckpt2" ".bin" in
  Sys.remove path;
  let checkpoint = Some { Ft.path = Some path; every = 1 } in
  ignore (fail_after_checkpoint ~pristine ~checkpoint ~path);
  (* resuming with a different matrix must be rejected by the fingerprint *)
  let pb_pristine, pb_reference = Lazy.force chol_216_72 in
  let pb = PD.copy pb_pristine in
  let r = Ft.potrf_ft ?checkpoint pb in
  Alcotest.(check bool) "foreign checkpoint not resumed" false r.Ft.resumed;
  Alcotest.(check bool) "correct result anyway" true (buf_equal pb pb_reference);
  if Sys.file_exists path then Sys.remove path

let test_auto_every () =
  (* Young: sqrt(2 * 0.5 * 800) = ~28.3 steps of 1s *)
  Alcotest.(check int) "young cadence" 28
    (Ft.auto_every ~step_seconds:1.0 ~checkpoint_seconds:0.5 ~mtbf:800.0);
  Alcotest.(check int) "clamped to 1" 1
    (Ft.auto_every ~step_seconds:100.0 ~checkpoint_seconds:0.001 ~mtbf:1.0)

let () =
  let watchdog = spawn_watchdog ~seconds:480.0 in
  let finally () =
    Atomic.set watchdog_done true;
    Domain.join watchdog
  in
  Fun.protect ~finally (fun () ->
      Alcotest.run ~and_exit:false "xsc_ft"
        [
          ( "clean",
            [
              Alcotest.test_case "cholesky bitwise" `Quick test_clean_cholesky_bitwise;
              Alcotest.test_case "lu bitwise" `Quick test_clean_lu_bitwise;
            ] );
          ( "corruption storm",
            [
              Alcotest.test_case "52 seeded runs, n=432, nb in {48,72}" `Quick
                test_corruption_storm;
              Alcotest.test_case "lu storm" `Quick test_lu_corruption_storm;
            ] );
          ( "exception storm",
            [
              Alcotest.test_case "sequential" `Quick test_exception_storm_sequential;
              Alcotest.test_case "dataflow" `Quick test_exception_storm_dataflow;
              Alcotest.test_case "forkjoin" `Quick test_exception_storm_forkjoin;
              Alcotest.test_case "shared pool: clean bitwise" `Quick
                test_clean_pooled_bitwise;
              Alcotest.test_case "shared pool: exception storm" `Quick
                test_exception_storm_pooled;
              Alcotest.test_case "shared pool: corruption storm + ABFT replay" `Quick
                test_corruption_storm_pooled;
              Alcotest.test_case "mixed raise+corrupt" `Quick test_mixed_storm;
              Alcotest.test_case "fail-stop after max restarts" `Quick
                test_fail_stop_after_max_restarts;
            ] );
          ( "checkpoint",
            [
              Alcotest.test_case "mid-run failure resumes from disk" `Quick
                test_checkpoint_resume;
              Alcotest.test_case "foreign matrix rejected" `Quick
                test_checkpoint_foreign_matrix_rejected;
              Alcotest.test_case "auto_every" `Quick test_auto_every;
            ] );
        ])
